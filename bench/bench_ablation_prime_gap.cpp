// Ablation A1 — why sampling gaps must be prime (paper Section II.B.1).
//
// Adversary: object allocation striped across threads with a power-of-two
// period.  With a power-of-two gap, gcd(gap, period) > 1 and the sampled set
// collapses onto a few threads' residue classes, skewing the TCM; the
// nearest-prime gap keeps selection uniform.  We compare TCM accuracy under
// both choices at equal sampling effort.
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

SquareMatrix run_cyclic_tcm(std::uint32_t gap_override, bool use_prime) {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kLocalOnly;

  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  SyntheticParams p;
  p.pattern = SharingPattern::kCyclic;
  p.objects = 32768;
  p.cyclic_period = 32;  // allocation stripes align with gap 32
  p.rounds = 3;
  p.accesses_per_round = 8192;
  SyntheticWorkload w(p);
  w.build(djvm);

  // Override the gap AFTER build: either the raw power of two or the
  // nearest prime the paper mandates.
  auto& plan = djvm.plan();
  const ClassId cls = w.object_class();
  if (use_prime) {
    plan.set_nominal_gap(cls, gap_override);  // derives the nearest prime
  } else {
    // Force the literal power-of-two gap by bypassing the prime rule: pick
    // a nominal whose nearest prime IS itself impossible, so instead we
    // assign the raw gap through two steps (set then verify).
    plan.set_nominal_gap(cls, gap_override);
    auto& k = djvm.registry().at(cls);
    k.sampling.real_gap = gap_override;  // the ablation: no prime correction
  }
  plan.resample_all();

  w.run(djvm);
  djvm.pump_daemon();
  return djvm.daemon().build_full();
}

SquareMatrix run_cyclic_ground_truth() {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  SyntheticParams p;
  p.pattern = SharingPattern::kCyclic;
  p.objects = 32768;
  p.cyclic_period = 32;
  p.rounds = 3;
  p.accesses_per_round = 8192;
  SyntheticWorkload w(p);
  w.build(djvm);
  w.run(djvm);
  djvm.pump_daemon();
  return djvm.daemon().build_full();
}

}  // namespace

int main() {
  std::cout << "=== Ablation A1: prime vs power-of-two sampling gaps ===\n";
  std::cout << "(cyclic allocation, stripe period 32, 8 threads)\n\n";

  const SquareMatrix truth = run_cyclic_ground_truth();

  TextTable t({"Gap choice", "Real gap", "ABS accuracy vs full", "EUC accuracy"});
  for (std::uint32_t nominal : {32u, 64u}) {
    const SquareMatrix pow2 = run_cyclic_tcm(nominal, /*use_prime=*/false);
    const SquareMatrix prime = run_cyclic_tcm(nominal, /*use_prime=*/true);
    t.add_row({"power-of-two " + std::to_string(nominal), std::to_string(nominal),
               TextTable::cell_pct(accuracy_from_error(absolute_error(pow2, truth))),
               TextTable::cell_pct(accuracy_from_error(euclidean_error(pow2, truth)))});
    t.add_row({"nearest prime of " + std::to_string(nominal),
               std::to_string(nominal == 32 ? 31 : 67),
               TextTable::cell_pct(accuracy_from_error(absolute_error(prime, truth))),
               TextTable::cell_pct(accuracy_from_error(euclidean_error(prime, truth)))});
  }
  t.print(std::cout);
  std::cout << "\nExpected shape: the prime gap's accuracy is far higher — the\n"
               "power-of-two gap aliases with the allocation stripes and samples\n"
               "a thread-biased subset of the heap.\n";
  return 0;
}
