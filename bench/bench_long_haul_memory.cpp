// Long-haul memory: retention (decay/compact) on vs off under object churn.
//
// A whole-run TCM accumulator on a server that runs for weeks tracks every
// object the workload ever touched; a churning workload (caches, request
// buffers, sliding datasets) makes that unbounded.  This bench drives the
// accumulator with a sliding object population — every epoch folds a fresh
// window of objects and never revisits old ones — and compares:
//
//   retention-on  — advance_epoch + compact(idle_epochs, decay) each epoch:
//                   tracked objects and payload bytes must plateau at
//                   O(live windows), and the map restricted to live objects
//                   must equal the from-scratch reference exactly (1e-9);
//   retention-off — the pre-retention behavior: tracked objects grow
//                   monotonically with every window ever seen.
//
// The retention-on phase runs FIRST: peak RSS (VmHWM) only ever grows within
// a process, so ordering the small-memory phase first lets the second
// phase's growth show up in the delta.
#include <iostream>

#include "common/rng.hpp"
#include "harness.hpp"
#include "profiling/tcm.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kThreads = 16;
constexpr int kEpochs = 150;
constexpr std::uint64_t kWindow = 2000;   // fresh object ids per epoch
constexpr int kRecordsPerEpoch = 200;
constexpr int kEntriesPerRecord = 20;
constexpr std::uint32_t kIdleEpochs = 4;
constexpr double kDecay = 0.0;  // drop outright (decay>0 only delays the drop)

std::vector<IntervalRecord> epoch_batch(int epoch) {
  SplitMix64 rng(0xC0FFEE ^ static_cast<std::uint64_t>(epoch));
  std::vector<IntervalRecord> out;
  const ObjectId base = static_cast<ObjectId>(epoch) * kWindow;
  for (int r = 0; r < kRecordsPerEpoch; ++r) {
    IntervalRecord rec;
    rec.thread = static_cast<ThreadId>(rng.next_below(kThreads));
    rec.interval = static_cast<IntervalId>(epoch * kRecordsPerEpoch + r);
    for (int e = 0; e < kEntriesPerRecord; ++e) {
      OalEntry entry;
      entry.obj = base + rng.next_below(kWindow);
      entry.klass = 0;
      entry.bytes = static_cast<std::uint32_t>(16 + rng.next_below(240));
      entry.gap = static_cast<std::uint32_t>(1 + rng.next_below(8));
      rec.entries.push_back(entry);
    }
    out.push_back(std::move(rec));
  }
  return out;
}

struct PhaseResult {
  std::vector<std::size_t> objects_per_epoch;
  std::size_t mem_quarter = 0;   ///< memory_bytes at the 1/4 mark
  std::size_t mem_final = 0;
  std::size_t objects_final = 0;
  std::uint64_t rss_after_kb = 0;
  SquareMatrix final_map;
};

PhaseResult run_phase(bool retention) {
  PhaseResult out;
  TcmAccumulator acc(kThreads);
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    acc.add(epoch_batch(epoch));
    if (retention) {
      acc.advance_epoch();
      acc.compact(kIdleEpochs, kDecay);
    }
    out.objects_per_epoch.push_back(acc.objects_tracked());
    if (epoch == kEpochs / 4) out.mem_quarter = acc.memory_bytes();
  }
  out.mem_final = acc.memory_bytes();
  out.objects_final = acc.objects_tracked();
  out.final_map = acc.dense();
  out.rss_after_kb = peak_rss_kb();
  return out;
}

/// Reference map over the records retention keeps: windows young enough to
/// survive the final compact (age = kEpochs - epoch < kIdleEpochs).
SquareMatrix live_reference() {
  std::vector<IntervalRecord> live;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    if (kEpochs - epoch < static_cast<int>(kIdleEpochs)) {
      auto batch = epoch_batch(epoch);
      live.insert(live.end(), std::make_move_iterator(batch.begin()),
                  std::make_move_iterator(batch.end()));
    }
  }
  return TcmBuilder::build_reference(live, kThreads);
}

double max_abs_diff(const SquareMatrix& a, const SquareMatrix& b) {
  double worst = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      worst = std::max(worst, std::abs(a.at(i, j) - b.at(i, j)));
    }
  }
  return worst;
}

}  // namespace

int main() {
  std::cout << "=== Long-haul accumulator memory: retention on vs off ===\n"
            << "(" << kEpochs << " epochs, " << kWindow
            << " fresh objects/epoch, idle bound " << kIdleEpochs
            << " epochs)\n\n";

  // Retention first: VmHWM is monotone, see file comment.
  const PhaseResult ret = run_phase(/*retention=*/true);
  const PhaseResult off = run_phase(/*retention=*/false);

  TextTable t({"Run", "Objects @25%", "Objects final", "Payload @25%",
               "Payload final", "Peak RSS after (KB)"});
  const auto row = [&](const char* name, const PhaseResult& p) {
    t.add_row({name,
               TextTable::cell(static_cast<std::uint64_t>(
                   p.objects_per_epoch[kEpochs / 4])),
               TextTable::cell(static_cast<std::uint64_t>(p.objects_final)),
               TextTable::cell(static_cast<std::uint64_t>(p.mem_quarter)),
               TextTable::cell(static_cast<std::uint64_t>(p.mem_final)),
               TextTable::cell(p.rss_after_kb)});
  };
  row("retention-on", ret);
  row("retention-off", off);
  t.print(std::cout);

  // Monotone growth without retention (every epoch adds a fresh window).
  bool off_monotone = true;
  for (int e = 1; e < kEpochs; ++e) {
    off_monotone &= off.objects_per_epoch[e] > off.objects_per_epoch[e - 1];
  }
  // Plateau with retention: bounded by the live-window count everywhere
  // after warmup, and no payload growth past the quarter mark.
  std::size_t ret_max_after_warmup = 0;
  for (int e = static_cast<int>(kIdleEpochs); e < kEpochs; ++e) {
    ret_max_after_warmup =
        std::max(ret_max_after_warmup, ret.objects_per_epoch[e]);
  }
  const double accuracy_err = max_abs_diff(ret.final_map, live_reference());

  std::cout << "\nretention-off monotone growth: "
            << (off_monotone ? "yes" : "NO") << "\n"
            << "retention-on max tracked after warmup: " << ret_max_after_warmup
            << " (bound " << (kIdleEpochs + 1) * kWindow << ")\n"
            << "retention map vs live-records reference, max |diff|: "
            << accuracy_err << "\n\n";

  BenchReport report("long_haul_memory");
  report.metric("retention_objects_final",
                static_cast<double>(ret.objects_final), "min", 0.10);
  report.metric("full_objects_final", static_cast<double>(off.objects_final));
  report.metric("retention_payload_final_bytes",
                static_cast<double>(ret.mem_final), "min", 0.25);
  report.metric("full_payload_final_bytes",
                static_cast<double>(off.mem_final));
  report.metric("payload_ratio_full_over_retention",
                static_cast<double>(off.mem_final) /
                    static_cast<double>(ret.mem_final),
                "max", 0.25);
  report.metric("retention_rss_after_kb",
                static_cast<double>(ret.rss_after_kb));
  report.metric("full_rss_after_kb", static_cast<double>(off.rss_after_kb));
  report.metric("accuracy_max_abs_diff", accuracy_err);

  report.check("retention-off tracked objects grow monotonically",
               off_monotone, off_monotone ? 1 : 0, 1, "==");
  report.check("retention-on tracked objects plateau at the live-window bound",
               ret_max_after_warmup <= (kIdleEpochs + 1) * kWindow,
               static_cast<double>(ret_max_after_warmup),
               static_cast<double>((kIdleEpochs + 1) * kWindow), "<=");
  report.check("retention-on payload stops growing after warmup",
               ret.mem_final <= ret.mem_quarter,
               static_cast<double>(ret.mem_final),
               static_cast<double>(ret.mem_quarter), "<=");
  report.check("retention-off holds >5x the retention payload",
               off.mem_final > 5 * ret.mem_final,
               static_cast<double>(off.mem_final),
               static_cast<double>(5 * ret.mem_final), ">");
  report.check("retention map matches live-records reference at 1e-9",
               accuracy_err <= 1e-9, accuracy_err, 1e-9, "<=");
  report.check("peak RSS did not regress during the retention phase "
               "(retention ran first; VmHWM is monotone)",
               ret.rss_after_kb <= off.rss_after_kb,
               static_cast<double>(ret.rss_after_kb),
               static_cast<double>(off.rss_after_kb), "<=");
  return report.finish();
}
