// Cached-copy vs home-node sampling-cost attribution (ISSUE 3 acceptance).
//
// A sharing-skewed cluster: node 1's thread pair (1,5) churns through large
// "Junk" and "Signal" pools that are homed on nodes 2 and 3 — node 1 only
// *caches* them — with little compute per access, while the other nodes'
// pairs scan modest locally-homed "Cold" pools with heavy compute.  The
// profiling cost (OAL log service, wire shipping) is paid by the accessing
// node, so node 1 runs far over its per-node budget.
//
// Two governed runs over identical traffic, both with per-node worst-offender
// enforcement armed; only the sampling-cost attribution model differs:
//   home — the pre-fix model (CostAttribution::kHomeNode): one cluster-wide
//          sampled bit per object, keyed to the *home* node's gap shift.
//          The governor correctly fingers node 1 and bumps its shifts, but
//          the bits it needs to coarsen belong to homes on nodes 2/3: the
//          backoff resamples nothing node 1 reads, its logging never drops,
//          and it stays over the ceiling for the whole run;
//   copy — the paper's model (default): every caching node keeps its copy's
//          bit under its own effective gap and the backoff walks exactly the
//          copies node 1 caches, so the same controller holds every node
//          inside the budgeted band.
// Plus a full-sampling oracle as the accuracy reference.
//
// Acceptance: home attribution leaves the heavy-caching node over its
// per-node ceiling while copy attribution holds every node under budget, at
// equal (+-5% absolute TCM distance) accuracy, with the backoff confined to
// the caching node and the resampling cost billed to the node that walked.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "governor/governor.hpp"
#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kThreads = 8;  // thread t lives on node t % 4
constexpr NodeId kCachingNode = 1;     // threads 1 and 5; caches all hot pools
constexpr NodeId kHomeA = 2;           // junk halves + signal are homed here...
constexpr NodeId kHomeB = 3;           // ...and here: node 1 holds only copies
constexpr std::uint32_t kEpochs = 16;
constexpr std::uint32_t kTail = 4;

constexpr std::uint32_t kJunkCount = 16384;   // 64 B, disjoint halves
constexpr std::uint32_t kSignalCount = 2048;  // 1 KB, shared by the hot pair
constexpr std::uint32_t kColdCount = 256;     // 2 KB, shared per cold pair
constexpr SimTime kHotCompute = 500;          // ns of app work per hot access
constexpr SimTime kColdCompute = 100000;      // heavy compute on cold nodes

constexpr std::uint32_t kJunkGap = 32;
constexpr std::uint32_t kSignalGap = 4;
constexpr std::uint32_t kColdGap = 4;

constexpr double kBudget = 0.012;      // per-node and cluster budget
constexpr double kHysteresis = 0.25;   // dead band: enforcement above 1.5%
constexpr double kCeiling = kBudget * (1.0 + kHysteresis);

enum class RunMode { kHomeAttribution, kCopyAttribution, kOracle };

struct RunLog {
  std::vector<std::vector<double>> node_frac;  // [node][epoch] rolling frac
  SquareMatrix final_tcm;
  std::uint32_t junk_shift = 0;    // caching node's final Junk gap shift
  std::uint32_t signal_shift = 0;
  std::uint32_t other_shift_total = 0;  // shifts on any other (node, class)
  std::uint32_t cold_gap_final = 0;
  std::uint64_t visits_caching_node = 0;  // resample visits billed to node 1
  std::uint64_t visits_homes = 0;         // ...and to the home nodes 2+3
};

RunLog run(RunMode mode) {
  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  cfg.cost_attribution = mode == RunMode::kHomeAttribution
                             ? CostAttribution::kHomeNode
                             : CostAttribution::kCachedCopy;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(kThreads);

  const ClassId junk = djvm.registry().register_class("Junk", 64);
  const ClassId signal = djvm.registry().register_class("Signal", 1024);
  const ClassId cold = djvm.registry().register_class("Cold", 2048);

  // The hot pools live on nodes 2 and 3; node 1 will only ever cache them.
  std::vector<ObjectId> junk_pool, signal_pool;
  for (std::uint32_t i = 0; i < kJunkCount; ++i) {
    junk_pool.push_back(djvm.gos().alloc(junk, i < kJunkCount / 2 ? kHomeA : kHomeB));
  }
  for (std::uint32_t i = 0; i < kSignalCount; ++i) {
    signal_pool.push_back(djvm.gos().alloc(signal, i % 2 == 0 ? kHomeA : kHomeB));
  }
  // Cold pools live on nodes 0, 2, 3; each is scanned by that node's pair.
  std::vector<std::vector<ObjectId>> cold_pools(kNodes);
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n == kCachingNode) continue;
    for (std::uint32_t i = 0; i < kColdCount; ++i) {
      cold_pools[n].push_back(djvm.gos().alloc(cold, n));
    }
  }

  if (mode != RunMode::kOracle) {
    djvm.plan().set_nominal_gap(junk, kJunkGap);
    djvm.plan().set_nominal_gap(signal, kSignalGap);
    djvm.plan().set_nominal_gap(cold, kColdGap);
    djvm.plan().resample_all();
    GovernorConfig gcfg;
    gcfg.overhead_budget = kBudget;
    gcfg.hysteresis = kHysteresis;
    gcfg.per_node = true;
    // The workload is deterministic: watch the sentinel at the converged
    // rates so the steady-state budget comparison is not blurred by extra
    // coarsening.
    gcfg.sentinel_coarsen_shifts = 0;
    djvm.governor().arm(gcfg);
  }

  RunLog log;
  log.node_frac.resize(kNodes);
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (ThreadId t = 0; t < kThreads; ++t) {
      const NodeId node = static_cast<NodeId>(t % kNodes);
      std::uint64_t accesses = 0;
      if (node == kCachingNode) {
        // Disjoint Junk halves: profiling cost with no correlation value.
        const std::size_t half = kJunkCount / 2;
        const std::size_t begin = t < kNodes ? 0 : half;
        for (std::size_t i = begin; i < begin + half; ++i) {
          djvm.read(t, junk_pool[i]);
          ++accesses;
        }
        for (ObjectId o : signal_pool) {
          djvm.read(t, o);
          ++accesses;
        }
        djvm.gos().clock(t).advance(accesses * kHotCompute);
      } else {
        for (ObjectId o : cold_pools[node]) {
          djvm.read(t, o);
          ++accesses;
        }
        djvm.gos().clock(t).advance(accesses * kColdCompute);
      }
    }
    djvm.barrier_all();

    djvm.run_governed_epoch();
    for (NodeId n = 0; n < kNodes; ++n) {
      log.node_frac[n].push_back(djvm.governor().meter().node_rolling_fraction(n));
    }
  }

  log.final_tcm = djvm.daemon().latest();
  log.junk_shift = djvm.plan().node_gap_shift(kCachingNode, junk);
  log.signal_shift = djvm.plan().node_gap_shift(kCachingNode, signal);
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n == kCachingNode) continue;
    log.other_shift_total += djvm.plan().node_gap_shift(n, junk) +
                             djvm.plan().node_gap_shift(n, signal) +
                             djvm.plan().node_gap_shift(n, cold);
  }
  log.cold_gap_final = djvm.plan().nominal_gap(cold);
  log.visits_caching_node = djvm.plan().resample_visits(kCachingNode);
  log.visits_homes =
      djvm.plan().resample_visits(kHomeA) + djvm.plan().resample_visits(kHomeB);
  return log;
}

double tail_mean(const std::vector<double>& v, std::size_t tail) {
  double sum = 0.0;
  for (std::size_t i = v.size() - tail; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(tail);
}

double tail_max(const std::vector<double>& v, std::size_t tail) {
  double m = 0.0;
  for (std::size_t i = v.size() - tail; i < v.size(); ++i) m = std::max(m, v[i]);
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Cached-copy vs home-node sampling-cost attribution ===\n";
  std::cout << "(node " << kCachingNode << " caches hot pools homed on nodes "
            << kHomeA << "/" << kHomeB << "; per-node budget " << kBudget * 100
            << "% of each node's app time, band ceiling " << kCeiling * 100
            << "%, " << kEpochs << " epochs)\n\n";

  const RunLog home = run(RunMode::kHomeAttribution);
  const RunLog copy = run(RunMode::kCopyAttribution);
  const RunLog oracle = run(RunMode::kOracle);

  TextTable t({"Epoch", "Home-attr caching%", "Home-attr homes-max%",
               "Copy-attr caching%", "Copy-attr homes-max%"});
  for (std::uint32_t i = 0; i < kEpochs; ++i) {
    t.add_row({TextTable::cell(static_cast<std::uint64_t>(i)),
               TextTable::cell_pct(home.node_frac[kCachingNode][i], 3),
               TextTable::cell_pct(std::max(home.node_frac[kHomeA][i],
                                            home.node_frac[kHomeB][i]), 3),
               TextTable::cell_pct(copy.node_frac[kCachingNode][i], 3),
               TextTable::cell_pct(std::max(copy.node_frac[kHomeA][i],
                                            copy.node_frac[kHomeB][i]), 3)});
  }
  t.print(std::cout);

  const double hot_tail_home = tail_mean(home.node_frac[kCachingNode], kTail);
  const double hot_tail_copy = tail_max(copy.node_frac[kCachingNode], kTail);
  double all_nodes_tail_copy = 0.0;
  for (NodeId n = 0; n < kNodes; ++n) {
    all_nodes_tail_copy =
        std::max(all_nodes_tail_copy, tail_max(copy.node_frac[n], kTail));
  }
  const double err_home = absolute_error(home.final_tcm, oracle.final_tcm);
  const double err_copy = absolute_error(copy.final_tcm, oracle.final_tcm);
  const double accuracy_gap = std::abs(err_copy - err_home);

  std::cout << "\nCaching-node tail overhead: home attribution "
            << hot_tail_home * 100 << "%, copy attribution "
            << hot_tail_copy * 100 << "% (ceiling " << kCeiling * 100 << "%)\n";
  std::cout << "Worst node under copy attribution: " << all_nodes_tail_copy * 100
            << "%\n";
  std::cout << "Final map error vs oracle: home " << err_home << ", copy "
            << err_copy << " (gap " << accuracy_gap << ")\n";
  std::cout << "Caching-node shifts: home attr junk " << home.junk_shift
            << " (ineffective), copy attr junk " << copy.junk_shift
            << " signal " << copy.signal_shift << "; other-node shifts "
            << copy.other_shift_total << ", cold base gap "
            << copy.cold_gap_final << "\n";
  std::cout << "Resample visits billed (copy attr): caching node "
            << copy.visits_caching_node << ", home nodes " << copy.visits_homes
            << "; (home attr): caching node " << home.visits_caching_node
            << ", home nodes " << home.visits_homes << "\n\n";

  BenchReport report("governor_cached_copy");
  report.metric("hot_tail_home_attr", hot_tail_home);
  report.metric("hot_tail_copy_attr", hot_tail_copy, "min", 0.30, 0.002);
  report.metric("all_nodes_tail_copy_attr", all_nodes_tail_copy, "min", 0.30, 0.002);
  report.metric("oracle_error_home_attr", err_home, "min", 0.50, 0.01);
  report.metric("oracle_error_copy_attr", err_copy, "min", 0.50, 0.01);
  report.metric("accuracy_gap", accuracy_gap, "min", 0.50, 0.01);
  report.metric("copy_junk_shift", static_cast<double>(copy.junk_shift));
  report.metric("copy_other_shift_total",
                static_cast<double>(copy.other_shift_total));
  report.metric("copy_visits_caching_node",
                static_cast<double>(copy.visits_caching_node));

  report.check(
      "home attribution leaves the heavy-caching node over its ceiling",
      hot_tail_home > kCeiling, hot_tail_home, kCeiling, ">");
  report.check(
      "home attribution bumped the caching node's shifts to no effect",
      home.junk_shift >= 1 && hot_tail_home > kCeiling,
      static_cast<double>(home.junk_shift), 1, ">=");
  report.check("copy attribution holds the caching node inside the ceiling",
               hot_tail_copy <= kCeiling, hot_tail_copy, kCeiling, "<=");
  report.check("copy attribution holds every node inside the ceiling",
               all_nodes_tail_copy <= kCeiling, all_nodes_tail_copy, kCeiling,
               "<=");
  report.check("TCM accuracy equal within +-5% absolute distance",
               accuracy_gap <= 0.05, accuracy_gap, 0.05, "<=");
  report.check("copy attribution map stays close to the oracle",
               err_copy <= 0.05, err_copy, 0.05, "<=");
  report.check("backoff targeted the caching node's junk copies",
               copy.junk_shift >= 1, static_cast<double>(copy.junk_shift), 1,
               ">=");
  report.check("no other node's rates moved (no shifts, base gap unchanged)",
               copy.other_shift_total == 0 && copy.cold_gap_final == kColdGap,
               static_cast<double>(copy.other_shift_total), 0, "==");
  report.check(
      "resampling cost billed to the node that walked its own copies",
      copy.visits_caching_node > copy.visits_homes,
      static_cast<double>(copy.visits_caching_node),
      static_cast<double>(copy.visits_homes), ">");
  return report.finish();  // nonzero fails the CI acceptance step
}
