// Ablation A3 — TCM construction scaling (paper Section II.A).
//
// OAL reorganization is O(MN) and TCM accrual O(MN^2) in shared objects M
// and threads N; the paper flags TCM computation as a potential scalability
// bottleneck and the reason adaptive sampling exists (sampling reduces M).
// This bench measures build time as M and N grow and as the sampling rate
// shrinks M.
#include <chrono>
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

std::vector<IntervalRecord> synth_records(std::uint32_t objects,
                                          std::uint32_t threads,
                                          std::uint32_t readers_per_object) {
  // Every object read by `readers_per_object` consecutive threads.
  std::vector<IntervalRecord> records(threads);
  for (ThreadId t = 0; t < threads; ++t) {
    records[t].thread = t;
    records[t].interval = 0;
  }
  for (ObjectId o = 0; o < objects; ++o) {
    for (std::uint32_t r = 0; r < readers_per_object; ++r) {
      const ThreadId t = static_cast<ThreadId>((o + r) % threads);
      records[t].entries.push_back(OalEntry{o, 0, 64, 1});
    }
  }
  return records;
}

double time_build(const std::vector<IntervalRecord>& records, std::uint32_t threads) {
  const auto t0 = std::chrono::steady_clock::now();
  const SquareMatrix tcm = TcmBuilder::build(records, threads);
  const double dt =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
  (void)tcm;
  return dt;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A3: TCM construction cost, O(MN) + O(MN^2) ===\n\n";

  std::cout << "Scaling in M (objects), N = 16 threads, 4 readers/object:\n";
  TextTable tm({"M (objects)", "Build time (ms)"});
  for (std::uint32_t m : {10000u, 20000u, 40000u, 80000u, 160000u}) {
    tm.add_row({TextTable::cell(std::uint64_t{m}),
                TextTable::cell(time_build(synth_records(m, 16, 4), 16) * 1e3, 2)});
  }
  tm.print(std::cout);

  std::cout << "\nScaling in N (threads), M = 40000, all threads share all objects\n"
               "(worst case: every object contributes N^2/2 pair updates):\n";
  TextTable tn({"N (threads)", "Build time (ms)"});
  for (std::uint32_t n : {4u, 8u, 16u, 32u, 64u}) {
    tn.add_row({TextTable::cell(std::uint64_t{n}),
                TextTable::cell(time_build(synth_records(40000, n, n), n) * 1e3, 2)});
  }
  tn.print(std::cout);

  std::cout << "\nSampling reduces M: Barnes-Hut records at descending rates\n"
               "(16 threads), showing why the daemon tunes the rate down when\n"
               "TCM time becomes apparent:\n";
  TextTable ts({"Rate", "OAL entries", "Build time (ms)"});
  for (std::uint32_t rate : {0u, 16u, 4u, 1u}) {
    Config cfg;
    cfg.nodes = 8;
    cfg.threads = 16;
    cfg.oal_transfer = OalTransfer::kLocalOnly;
    cfg.sampling_rate_x = rate;
    RunOutput out = run_once(cfg, barnes_hut_spec(2048, 2).make);
    out.djvm->pump_daemon();
    const auto t0 = std::chrono::steady_clock::now();
    out.djvm->daemon().build_full();
    const double dt =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
    ts.add_row({rate == 0 ? "Full" : std::to_string(rate) + "X",
                TextTable::cell(out.djvm->daemon().total_entries()),
                TextTable::cell(dt * 1e3, 2)});
  }
  ts.print(std::cout);

  std::cout << "\nExpected shape: ~linear in M, ~quadratic in N under all-share,\n"
               "and entries/build-time dropping with the sampling rate.\n";
  return 0;
}
