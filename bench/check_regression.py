#!/usr/bin/env python3
"""Gate a bench run against its checked-in baseline.

Usage: check_regression.py BASELINE.json CURRENT.json

Both files are `BENCH_<name>.json` artifacts emitted by bench/harness.hpp's
BenchReport.  The gate fails (exit 1) when:

  * any acceptance check in CURRENT has "pass": false, or
  * a metric whose baseline carries a regression goal moved the wrong way:
      goal "min": current > baseline * (1 + slack) + abs_slack
      goal "max": current < baseline * (1 - slack) - abs_slack
    (goal "none" metrics are informational), or

    A *ratio* metric (speedup, improvement factor — parity is 1.0) may
    additionally carry "min_improvement" (>= 0) in the baseline: on top of
    the slack bound, the current value must clear a parity floor —
      goal "max": current >= 1 + min_improvement
      goal "min": current <= 1 - min_improvement
    Slack alone lets "barely above 1.0x" drift to parity one slack-width at
    a time across baseline regenerations; the floor is absolute, so the
    improvement claim itself stays gated.  Or:

    A baseline metric may instead carry "lower_is_better": true/false —
    shorthand for goal "min"/"max" with a *default* slack of 10% when the
    baseline does not spell one out.  Latency/throughput metrics use this
    (wall-clock numbers need tolerance); accuracy metrics keep the explicit
    goal form, whose slack defaults to 0 (exact compare).  Or:
  * a goal-carrying baseline metric is missing from CURRENT (a silently
    dropped metric must not read as "no regression") — unless the baseline
    lists the metric name in its top-level "allowed_missing" array, the
    explicit opt-out for metrics that only exist on some platforms or
    configurations (the absence is then reported but does not gate), or
  * any metric value in either artifact is missing or non-finite
    (BenchReport writes nan/inf as JSON null; a hand-edited NaN literal
    parses to float('nan'), which compares false against every bound and
    would otherwise slip through a goal check silently).

Tolerances (goal/slack/abs_slack) are read from the BASELINE file, so the
checked-in baseline is the single source of truth for what gates.  To
regenerate a baseline intentionally (after a change that legitimately moves
the numbers), copy the fresh artifact over bench/baselines/BENCH_<name>.json
and explain the shift in the commit message.
"""

import json
import math
import sys


def fail(msg: str) -> None:
    print(f"[REGRESSION] {msg}")


def nonfinite_metrics(label: str, doc: dict) -> int:
    """Counts (and reports) metric values that are not finite numbers."""
    bad = 0
    for key, metric in doc.get("metrics", {}).items():
        value = metric.get("value")
        if not isinstance(value, (int, float)) or isinstance(value, bool) \
                or not math.isfinite(value):
            fail(f"{label} metric {key!r} has non-finite value {value!r}")
            bad += 1
    return bad


def main() -> int:
    if len(sys.argv) != 3:
        print(__doc__)
        return 2
    with open(sys.argv[1]) as f:
        baseline = json.load(f)
    with open(sys.argv[2]) as f:
        current = json.load(f)

    if baseline.get("bench") != current.get("bench"):
        fail(f"bench name mismatch: baseline {baseline.get('bench')!r} "
             f"vs current {current.get('bench')!r}")
        return 1

    failures = 0
    failures += nonfinite_metrics("baseline", baseline)
    failures += nonfinite_metrics("current", current)

    for check in current.get("checks", []):
        if check.get("pass") is not True:
            fail(f"acceptance check failed: {check.get('name')} "
                 f"(value {check.get('value')} {check.get('op')} "
                 f"{check.get('threshold')} does not hold)")
            failures += 1

    allowed_missing = baseline.get("allowed_missing", [])
    if not (isinstance(allowed_missing, list)
            and all(isinstance(k, str) for k in allowed_missing)):
        fail(f"baseline 'allowed_missing' must be a list of metric names, "
             f"got {allowed_missing!r}")
        return 1

    cur_metrics = current.get("metrics", {})
    for key, base in baseline.get("metrics", {}).items():
        goal = base.get("goal", "none")
        lower_is_better = base.get("lower_is_better")
        default_slack = 0.0
        if lower_is_better is not None:
            # Tolerance shorthand for latency-style metrics: direction from
            # the boolean, slack defaulting to +/-10% unless spelled out.
            goal = "min" if lower_is_better else "max"
            default_slack = 0.10
        if goal == "none":
            continue
        if key not in cur_metrics:
            if key in allowed_missing:
                print(f"  {key}: missing from current run "
                      f"(allowed_missing: not gating)")
                continue
            fail(f"gated metric {key!r} missing from current run")
            failures += 1
            continue
        base_v = base.get("value")
        cur_v = cur_metrics[key].get("value")
        if base_v is None or cur_v is None:
            fail(f"metric {key!r} is non-finite (baseline {base_v}, "
                 f"current {cur_v})")
            failures += 1
            continue
        slack = base.get("slack")
        slack = default_slack if slack is None else slack
        abs_slack = base.get("abs_slack", 0.0) or 0.0
        min_improvement = base.get("min_improvement")
        if min_improvement is not None and (
                not isinstance(min_improvement, (int, float))
                or isinstance(min_improvement, bool)
                or not math.isfinite(min_improvement)
                or min_improvement < 0):
            fail(f"metric {key!r} has invalid min_improvement "
                 f"{min_improvement!r}")
            failures += 1
            continue
        if goal == "min":
            bound = base_v * (1.0 + slack) + abs_slack
            if min_improvement is not None:
                # Parity floor for ratio metrics: the improvement claim
                # gates absolutely, not just relative to the baseline.
                bound = min(bound, 1.0 - min_improvement)
            ok = cur_v <= bound
            direction = "above"
        elif goal == "max":
            bound = base_v * (1.0 - slack) - abs_slack
            if min_improvement is not None:
                bound = max(bound, 1.0 + min_improvement)
            ok = cur_v >= bound
            direction = "below"
        else:
            fail(f"metric {key!r} has unknown goal {goal!r}")
            failures += 1
            continue
        status = "ok" if ok else "REGRESSED"
        print(f"  {key}: current {cur_v:.6g} vs baseline {base_v:.6g} "
              f"(bound {bound:.6g}, goal {goal}) -> {status}")
        if not ok:
            fail(f"metric {key!r} regressed {direction} its bound: "
                 f"current {cur_v:.6g}, baseline {base_v:.6g}, "
                 f"bound {bound:.6g}")
            failures += 1

    name = current.get("bench", "?")
    if failures:
        print(f"{name}: {failures} regression(s) vs {sys.argv[1]}")
        return 1
    print(f"{name}: no regressions vs {sys.argv[1]}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
