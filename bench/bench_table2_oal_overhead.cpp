// Table II — overhead of OAL collection (profiling cost O1).
//
// Methodology per the paper: a single thread per application with OAL
// transfer over the network disabled, isolating the CPU cost of generating
// the access lists.  Each cell is the median run wall time with the
// percentage increase over the no-tracking baseline.  "N/A" marks rates that
// degenerate to full sampling for the application's object granularity
// (SOR's multi-KB rows are always sampled; 16X does the same to
// Water-Spatial's 512-byte molecules).
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

int main() {
  std::cout << "=== Table II: Overhead of OAL collection ===\n";
  std::cout << "(single thread, OAL transfer disabled; median of 3 runs; ms)\n\n";

  TextTable t({"Benchmark", "No Tracking", "1X", "4X", "16X", "Full"});
  const std::uint32_t rates[] = {1, 4, 16, 0};

  for (const AppSpec& app : overhead_apps()) {
    Config base;
    base.nodes = 1;
    base.threads = 1;
    base.oal_transfer = OalTransfer::kDisabled;

    const double baseline = median_run_seconds(base, app.make);

    std::vector<std::string> row{app.name, ms_cell(baseline)};
    for (std::uint32_t rate : rates) {
      const bool degenerate =
          rate != 0 && rate_degenerates_to_full(base, app.make, rate);
      if (degenerate) {
        row.push_back(TextTable::na());
        continue;
      }
      Config cfg = base;
      cfg.oal_transfer = OalTransfer::kLocalOnly;
      cfg.sampling_rate_x = rate;
      const double with = median_run_seconds(cfg, app.make);
      row.push_back(ms_pct_cell(with, baseline));
    }
    t.add_row(std::move(row));
  }

  t.print(std::cout);
  std::cout << "\nPaper reference (Gideon-300 cluster, wall ms): overhead is minimal\n"
               "at every rate; Barnes-Hut full sampling costs ~1.1%.  Shape to\n"
               "check: Full >= 16X >= 4X >= 1X, all within a few percent.\n";
  return 0;
}
