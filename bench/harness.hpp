// Shared glue for the bench harnesses that regenerate the paper's tables and
// figures.  Each bench binary prints the same rows/series the paper reports;
// EXPERIMENTS.md records the paper-vs-measured comparison.
//
// Benches that gate CI additionally emit a machine-readable
// `BENCH_<name>.json` (metrics + pass/fail checks) via BenchReport; the
// regression gate (bench/check_regression.py) compares those files against
// the checked-in baselines in bench/baselines/.
#pragma once

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <functional>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "apps/barnes_hut.hpp"
#include "apps/sor.hpp"
#include "apps/synthetic.hpp"
#include "apps/water_spatial.hpp"
#include "apps/workload.hpp"
#include "common/stats.hpp"
#include "common/table.hpp"
#include "core/djvm.hpp"
#include "profiling/accuracy.hpp"

namespace djvm::bench {

/// Factory for a fresh workload instance (each run needs its own state).
using WorkloadFactory = std::function<std::unique_ptr<Workload>()>;

/// A named application at bench scale.  Paper-scale datasets keep every
/// bench run under a couple of minutes; the overhead *ratios* are what we
/// compare, as discussed in DESIGN.md.
struct AppSpec {
  std::string name;
  WorkloadFactory make;
};

inline AppSpec sor_spec(std::uint32_t rows = 2048, std::uint32_t cols = 2048,
                        std::uint32_t rounds = 10) {
  return {"SOR", [=] {
            SorParams p;
            p.rows = rows;
            p.cols = cols;
            p.rounds = rounds;
            return std::make_unique<SorWorkload>(p);
          }};
}

inline AppSpec barnes_hut_spec(std::uint32_t bodies = 4096, std::uint32_t rounds = 5) {
  return {"Barnes-Hut", [=] {
            BarnesHutParams p;
            p.bodies = bodies;
            p.rounds = rounds;
            return std::make_unique<BarnesHutWorkload>(p);
          }};
}

inline AppSpec water_spec(std::uint32_t molecules = 512, std::uint32_t rounds = 5) {
  return {"Water-Spatial", [=] {
            WaterParams p;
            p.molecules = molecules;
            p.rounds = rounds;
            return std::make_unique<WaterSpatialWorkload>(p);
          }};
}

/// The paper's three benchmarks at paper-scale problem sizes.
inline std::vector<AppSpec> paper_apps() {
  return {sor_spec(), barnes_hut_spec(), water_spec()};
}

/// Variant for the wall-clock overhead tables: Water gets more rounds so its
/// run lasts long enough for stable percentage deltas (its 512-molecule
/// problem finishes in a few ms of native compute; the paper's Kaffe JIT
/// took ~30 s over the same rounds).
inline std::vector<AppSpec> overhead_apps() {
  return {sor_spec(), barnes_hut_spec(), water_spec(512, 25)};
}

/// Reduced sizes for the heavier sweeps (Fig. 9 runs 10 rates x 3 apps).
inline std::vector<AppSpec> sweep_apps() {
  return {sor_spec(512, 1024, 4), barnes_hut_spec(2048, 3), water_spec(512, 3)};
}

/// One complete run: fresh Djvm, threads spawned, workload built + run.
struct RunOutput {
  RunMetrics metrics;
  std::unique_ptr<Djvm> djvm;       ///< kept alive for post-run inspection
  std::unique_ptr<Workload> workload;
};

inline RunOutput run_once(Config cfg, const WorkloadFactory& make) {
  RunOutput out;
  out.djvm = std::make_unique<Djvm>(cfg);
  out.djvm->spawn_threads_round_robin(cfg.threads);
  out.workload = make();
  out.metrics = execute_workload(*out.djvm, *out.workload);
  return out;
}

/// Median run() wall time, with extra repetitions for sub-50 ms runs so the
/// small percentage deltas in the overhead tables are stable.
inline double median_run_seconds(const Config& cfg, const WorkloadFactory& make,
                                 int reps = 3) {
  std::vector<double> times;
  const double probe = run_once(cfg, make).metrics.run_seconds;
  times.push_back(probe);
  if (probe < 0.05) reps = 15;
  for (int i = 1; i < reps; ++i) {
    times.push_back(run_once(cfg, make).metrics.run_seconds);
  }
  return median(times);
}

/// Runs with correlation tracking and returns the whole-run weighted TCM.
inline SquareMatrix run_tcm(Config cfg, const WorkloadFactory& make) {
  cfg.oal_transfer = cfg.oal_transfer == OalTransfer::kDisabled
                         ? OalTransfer::kLocalOnly
                         : cfg.oal_transfer;
  RunOutput out = run_once(cfg, make);
  out.djvm->pump_daemon();
  return out.djvm->daemon().build_full();
}

/// True when rate `rate_x` degenerates to (effectively) full sampling for
/// this application — the paper's "N/A" cells: object granularity so coarse
/// that every object is sampled anyway (e.g. SOR's multi-KB rows).
inline bool rate_degenerates_to_full(const Config& base, const WorkloadFactory& make,
                                     std::uint32_t rate_x) {
  Config cfg = base;
  cfg.oal_transfer = OalTransfer::kDisabled;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  auto w = make();
  w->build(djvm);
  djvm.plan().set_rate_all(rate_x);
  // Fraction of heap *bytes* whose objects are sampled.
  std::uint64_t total = 0, covered = 0;
  for (ObjectId o = 0; o < djvm.heap().object_count(); ++o) {
    const auto sz = djvm.heap().meta(o).size_bytes;
    total += sz;
    if (djvm.plan().is_sampled(o)) covered += sz;
  }
  return total > 0 && static_cast<double>(covered) / static_cast<double>(total) > 0.99;
}

/// Milliseconds with two decimals.
inline std::string ms_cell(double seconds) {
  return TextTable::cell(seconds * 1e3, 2);
}

/// Peak resident set size (VmHWM) in KiB from /proc/self/status, or 0 when
/// unavailable (non-Linux, restricted /proc).  High-water-mark, so it only
/// grows within a process — benches that compare two phases must run the
/// phase expected to use *less* memory second.
inline std::uint64_t peak_rss_kb() {
  std::ifstream status("/proc/self/status");
  std::string line;
  while (std::getline(status, line)) {
    if (line.rfind("VmHWM:", 0) == 0) {
      std::uint64_t kb = 0;
      std::istringstream is(line.substr(6));
      is >> kb;
      return kb;
    }
  }
  return 0;
}

/// "12.34 (+5.67%)" relative to a baseline in seconds.
inline std::string ms_pct_cell(double seconds, double baseline_seconds) {
  return TextTable::cell_with_pct(seconds * 1e3, baseline_seconds * 1e3, 2);
}

/// Machine-readable bench output: named metrics plus pass/fail acceptance
/// checks, written as `BENCH_<name>.json` next to the human-readable tables.
///
/// Metrics carry a regression *goal* so the CI gate knows how to compare a
/// fresh run against the checked-in baseline without bench-specific logic:
///   "min"  — lower is better; regression when current > baseline*(1+slack)
///   "max"  — higher is better; regression when current < baseline*(1-slack)
///   "none" — informational only (default)
/// Baselines are just previously emitted JSONs (bench/baselines/), so
/// regenerating one intentionally is a copy of the fresh artifact.
class BenchReport {
 public:
  explicit BenchReport(std::string name)
      : name_(std::move(name)), start_(std::chrono::steady_clock::now()) {}

  /// `slack` is relative to the baseline value; `abs_slack` is an additive
  /// floor so near-zero metrics (error distances) don't gate on FP dust.
  /// `min_improvement` (when >= 0) marks a *ratio* metric (parity = 1.0)
  /// and adds an absolute parity floor on top of the slack bound: goal
  /// "max" requires value >= 1 + m, goal "min" requires value <= 1 - m.
  /// Use for speedup metrics whose whole point is beating a reference
  /// column — slack alone would let them drift to parity across baseline
  /// regenerations.
  void metric(const std::string& key, double value,
              const std::string& goal = "none", double slack = 0.0,
              double abs_slack = 0.0, double min_improvement = -1.0) {
    metrics_.push_back({key, value, goal, slack, abs_slack, min_improvement, -1});
  }

  /// Latency-style metric gated via the `lower_is_better` shorthand: the
  /// regression gate compares directionally and applies a default +-10%
  /// slack when `slack` is negative (the field is then omitted from the
  /// JSON and the gate's default rules).  Accuracy metrics should keep the
  /// explicit `metric()` goal form, whose slack defaults to 0 (exact
  /// compare).
  void latency_metric(const std::string& key, double value, double slack = -1.0,
                      bool lower_is_better = true) {
    metrics_.push_back(
        {key, value, "none", slack, 0.0, -1.0, lower_is_better ? 1 : 0});
  }

  /// Declares a gated metric as allowed to be absent from a run (a
  /// platform- or configuration-dependent column the bench sometimes
  /// skips).  Emitted as the artifact's top-level `allowed_missing` array,
  /// which the regression gate honors — declare it unconditionally, even on
  /// runs that do emit the metric, so a regenerated baseline keeps the
  /// opt-out.
  void allow_missing(const std::string& key) { allowed_missing_.push_back(key); }

  /// Records an acceptance check and prints the usual [PASS]/[FAIL] line.
  bool check(const std::string& what, bool ok, double value, double threshold,
             const std::string& op) {
    std::cout << (ok ? "[PASS] " : "[FAIL] ") << what << "\n";
    checks_.push_back({what, ok, value, threshold, op});
    if (!ok) ++failures_;
    return ok;
  }

  [[nodiscard]] int failures() const noexcept { return failures_; }

  /// Writes BENCH_<name>.json into $DJVM_BENCH_JSON_DIR (or the cwd) and
  /// returns the failure count — benches `return report.finish();`.
  int finish() const {
    std::string dir = ".";
    if (const char* env = std::getenv("DJVM_BENCH_JSON_DIR")) dir = env;
    const std::string path = dir + "/BENCH_" + name_ + ".json";
    std::ofstream f(path, std::ios::trunc);
    if (f) {
      f << json();
      std::cout << "\nwrote " << path << "\n";
    } else {
      std::cout << "\n[WARN] could not write " << path << "\n";
    }
    return failures_;
  }

  [[nodiscard]] std::string json() const {
    std::ostringstream os;
    os.precision(17);
    os << "{\n  \"bench\": \"" << esc(name_) << "\",\n";
    if (!allowed_missing_.empty()) {
      os << "  \"allowed_missing\": [";
      for (std::size_t i = 0; i < allowed_missing_.size(); ++i) {
        os << "\"" << esc(allowed_missing_[i]) << "\""
           << (i + 1 < allowed_missing_.size() ? ", " : "");
      }
      os << "],\n";
    }
    os << "  \"metrics\": {\n";
    for (std::size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      os << "    \"" << esc(m.key) << "\": {\"value\": " << num(m.value);
      if (m.lower_is_better >= 0) {
        os << ", \"lower_is_better\": " << (m.lower_is_better ? "true" : "false");
        if (m.slack >= 0.0) os << ", \"slack\": " << num(m.slack);
      } else {
        os << ", \"goal\": \"" << esc(m.goal) << "\", \"slack\": " << num(m.slack)
           << ", \"abs_slack\": " << num(m.abs_slack);
        if (m.min_improvement >= 0.0) {
          os << ", \"min_improvement\": " << num(m.min_improvement);
        }
      }
      os << "},\n";
    }
    // Resource footprint of the bench process itself, always recorded as
    // informational metrics (goal "none", so the regression gate only reports
    // them if a baseline chooses to carry them with a real goal).
    const double wall = std::chrono::duration<double>(
                            std::chrono::steady_clock::now() - start_)
                            .count();
    os << "    \"wall_seconds\": {\"value\": " << num(wall)
       << ", \"goal\": \"none\", \"slack\": 0, \"abs_slack\": 0},\n";
    os << "    \"peak_rss_kb\": {\"value\": "
       << num(static_cast<double>(peak_rss_kb()))
       << ", \"goal\": \"none\", \"slack\": 0, \"abs_slack\": 0}\n";
    os << "  },\n  \"checks\": [\n";
    for (std::size_t i = 0; i < checks_.size(); ++i) {
      const Check& c = checks_[i];
      os << "    {\"name\": \"" << esc(c.what) << "\", \"pass\": "
         << (c.ok ? "true" : "false") << ", \"value\": " << num(c.value)
         << ", \"op\": \"" << esc(c.op) << "\", \"threshold\": " << num(c.threshold)
         << "}" << (i + 1 < checks_.size() ? "," : "") << "\n";
    }
    os << "  ]\n}\n";
    return os.str();
  }

 private:
  struct Metric {
    std::string key;
    double value;
    std::string goal;
    double slack;
    double abs_slack;
    double min_improvement;  ///< < 0 = no ratchet (field omitted from JSON)
    int lower_is_better;  ///< -1 = goal form, 0/1 = lower_is_better shorthand
  };
  struct Check {
    std::string what;
    bool ok;
    double value;
    double threshold;
    std::string op;
  };

  /// Check labels are arbitrary prose: escape them so one stray quote can't
  /// make the regression gate choke on malformed JSON.
  static std::string esc(const std::string& s) {
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
      switch (c) {
        case '"': out += "\\\""; break;
        case '\\': out += "\\\\"; break;
        case '\n': out += "\\n"; break;
        case '\t': out += "\\t"; break;
        default:
          if (static_cast<unsigned char>(c) < 0x20) {
            char buf[8];
            std::snprintf(buf, sizeof(buf), "\\u%04x", c);
            out += buf;
          } else {
            out += c;
          }
      }
    }
    return out;
  }

  /// JSON has no inf/nan literals; clamp non-finite values to null.
  static std::string num(double v) {
    if (!std::isfinite(v)) return "null";
    std::ostringstream os;
    os.precision(17);
    os << v;
    return os.str();
  }

  std::string name_;
  std::chrono::steady_clock::time_point start_;
  std::vector<std::string> allowed_missing_;
  std::vector<Metric> metrics_;
  std::vector<Check> checks_;
  int failures_ = 0;
};

/// Compact ASCII heat map of a correlation matrix (for Fig. 1).
inline void print_heatmap(std::ostream& os, const SquareMatrix& m,
                          const std::string& title) {
  os << title << " (" << m.size() << "x" << m.size() << ")\n";
  double maxv = 0.0;
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) maxv = std::max(maxv, m.at(i, j));
  }
  static const char* shades = " .:-=+*#%@";
  for (std::size_t i = 0; i < m.size(); ++i) {
    for (std::size_t j = 0; j < m.size(); ++j) {
      const double v = maxv > 0 ? m.at(i, j) / maxv : 0.0;
      const int s = std::min(9, static_cast<int>(v * 9.999));
      os << shades[s] << shades[s];
    }
    os << '\n';
  }
}

}  // namespace djvm::bench
