// Closed-loop migration execution vs static homes (PR 8 acceptance).
//
// The workload is four partner pairs on four nodes, placed adversarially:
// pair k's even thread sits on node k next to the pair's shared pool, its
// odd partner one node over.  Every epoch each thread sweeps the pair pool
// and writes part of it; the barrier's invalidations then make the split
// partner re-fault the pool remotely each epoch, forever — unless the
// execution stage moves it (home accesses stay local however often the
// copies are invalidated).
//
// Three columns over the identical access sequence:
//   static    — Config::balance off (the PR 5 loop): the planner never
//               runs, homes and threads stay where they started;
//   executed  — the execution stage applies the planner's suggestions
//               mid-run (cap 2/epoch, cooldown 2): split partners migrate
//               to their pool's node within the first epochs and all
//               later epochs run fault-free;
//   dry-run   — plans and logs the same moves but executes nothing: the
//               ablation pins the speedup on the moves themselves, not on
//               any side effect of running the planner.
//
// Acceptance: executed beats static on simulated wall-clock (max thread
// clock) by >= 5% — gated as a ratio metric with a min_improvement parity
// floor — while the dry-run column stays within 2% of static.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "governor/governor.hpp"
#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kThreads = 8;       // pair P_k = {2k, 2k+1}
constexpr std::uint32_t kPairs = kThreads / 2;
constexpr std::uint32_t kEpochs = 16;
constexpr std::uint32_t kPoolCount = 96;    // 256 B objects per pair pool
constexpr std::uint32_t kRounds = 4;        // pool sweeps per thread per epoch
constexpr SimTime kComputePerRead = 500;

enum class Mode { kStatic, kExecuted, kDryRun };

struct Outcome {
  SimTime wall = 0;                  // max thread clock at the end
  std::uint64_t migrations = 0;      // executed (governor history counter)
  std::uint64_t faults = 0;
  std::uint64_t fault_bytes = 0;
  std::uint32_t first_move_epoch = kEpochs;  // first epoch with an executed move
  std::size_t pending = 0;           // planned moves still deferred at the end
};

Outcome run(Mode mode) {
  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  if (mode != Mode::kStatic) {
    cfg.balance.max_migrations_per_epoch = 2;
    cfg.balance.min_score = 1.0;
    cfg.balance.cooldown_epochs = 2;
    cfg.balance.dry_run = mode == Mode::kDryRun;
  }
  Djvm djvm(cfg);
  // Pair k: even thread on node k (with the pool), odd partner one node over.
  for (std::uint32_t p = 0; p < kPairs; ++p) {
    djvm.spawn_thread(static_cast<NodeId>(p));
    djvm.spawn_thread(static_cast<NodeId>((p + 1) % kNodes));
  }
  const ClassId k = djvm.registry().register_class("PairPool", 256);
  std::vector<std::vector<ObjectId>> pools(kPairs);
  for (std::uint32_t p = 0; p < kPairs; ++p) {
    for (std::uint32_t i = 0; i < kPoolCount; ++i) {
      pools[p].push_back(djvm.gos().alloc(k, static_cast<NodeId>(p)));
    }
  }

  Outcome out;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (ThreadId t = 0; t < kThreads; ++t) {
      const auto& pool = pools[t / 2];
      for (std::uint32_t r = 0; r < kRounds; ++r) {
        for (ObjectId o : pool) djvm.read(t, o);
      }
      // The even partner updates the pool: the barrier's invalidations make
      // every later epoch re-fault remotely unless the pair is co-located.
      if ((t & 1u) == 0) {
        for (ObjectId o : pool) djvm.write(t, o);
      }
      djvm.gos().clock(t).advance(
          static_cast<SimTime>(kPoolCount) * kRounds * kComputePerRead);
    }
    djvm.barrier_all();
    const EpochResult res = djvm.run_governed_epoch();
    for (const auto& m : res.migrations) {
      if (m.executed && out.first_move_epoch == kEpochs) {
        out.first_move_epoch = epoch;
      }
    }
  }
  for (ThreadId t = 0; t < kThreads; ++t) {
    out.wall = std::max(out.wall, djvm.gos().clock(t).now());
  }
  out.migrations = djvm.governor().migrations_executed();
  out.faults = djvm.gos().stats().object_faults;
  out.fault_bytes = djvm.gos().stats().fault_bytes;
  out.pending = djvm.planned_moves_pending();
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Closed-loop migration execution vs static homes ===\n";
  std::cout << "(" << kThreads << " threads on " << kNodes << " nodes, "
            << kPairs << " split partner pairs, " << kEpochs
            << " epochs; cap 2 moves/epoch, cooldown 2)\n\n";

  const Outcome stat = run(Mode::kStatic);
  const Outcome exec = run(Mode::kExecuted);
  const Outcome dry = run(Mode::kDryRun);

  TextTable t({"Variant", "Wall (sim ms)", "Migrations", "Faults",
               "Fault MB", "First move epoch"});
  const auto row = [&](const char* name, const Outcome& o) {
    t.add_row({name, TextTable::cell(static_cast<double>(o.wall) / 1e6, 2),
               TextTable::cell(o.migrations), TextTable::cell(o.faults),
               TextTable::cell(static_cast<double>(o.fault_bytes) / 1e6, 2),
               o.first_move_epoch < kEpochs
                   ? TextTable::cell(std::uint64_t{o.first_move_epoch})
                   : std::string("-")});
  };
  row("Static homes", stat);
  row("Executed", exec);
  row("Dry-run ablation", dry);
  t.print(std::cout);

  const double speedup =
      exec.wall > 0 ? static_cast<double>(stat.wall) / static_cast<double>(exec.wall)
                    : 0.0;
  const double dry_ratio =
      stat.wall > 0 ? static_cast<double>(dry.wall) / static_cast<double>(stat.wall)
                    : 0.0;
  std::cout << "\nExecuted wall speedup over static: x" << speedup
            << "  (dry-run/static ratio " << dry_ratio << ")\n";
  std::cout << "Expected shape: the execution stage co-locates every split\n"
               "pair within the first epochs, the remote re-fault traffic\n"
               "disappears for the rest of the run, and the dry-run column —\n"
               "same planner, no moves — stays at the static wall-clock.\n";

  BenchReport report("governor_migration");
  report.metric("wall_speedup_executed", speedup, "max", 0.10, 0.0, 0.05);
  report.metric("dry_run_wall_ratio", dry_ratio);
  report.metric("migrations_executed", static_cast<double>(exec.migrations),
                "max", 0.0, 0.0);
  report.metric("static_fault_mb", static_cast<double>(stat.fault_bytes) / 1e6);
  report.metric("executed_fault_mb",
                static_cast<double>(exec.fault_bytes) / 1e6, "min", 0.10, 0.0);

  report.check("executed migrations beat static homes by >= 5% wall-clock",
               speedup >= 1.05, speedup, 1.05, ">=");
  report.check("dry-run ablation stays within 2% of the static wall-clock",
               std::fabs(dry_ratio - 1.0) <= 0.02, std::fabs(dry_ratio - 1.0),
               0.02, "<=");
  report.check("every split pair was migrated (one move per odd partner)",
               exec.migrations >= kPairs - 1,
               static_cast<double>(exec.migrations),
               static_cast<double>(kPairs - 1), ">=");
  report.check("dry-run executed nothing",
               dry.migrations == 0, static_cast<double>(dry.migrations), 0.0,
               "<=");
  report.check("no admitted move left pending at the end",
               exec.pending == 0, static_cast<double>(exec.pending), 0.0,
               "<=");
  return report.finish();  // nonzero fails the CI acceptance step
}
