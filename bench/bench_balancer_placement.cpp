// Ablation A5 — correlation-driven thread placement vs round-robin
// (the paper's intended downstream use of the TCM; its stated future work).
//
// Build the TCM from a profiled run, compute a correlation-aware placement,
// and compare the cross-node shared volume and an actual re-run's remote
// traffic against the round-robin baseline.
#include <iostream>

#include "harness.hpp"
#include "balance/load_balancer.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

/// Runs Barnes-Hut with threads placed per `p`; returns object-data bytes.
std::uint64_t run_with_placement(const Placement& p) {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 16;
  Djvm djvm(cfg);
  for (std::uint32_t t = 0; t < cfg.threads; ++t) {
    djvm.spawn_thread(p.node_of_thread[t]);
  }
  BarnesHutParams bp;
  bp.bodies = 2048;
  bp.rounds = 3;
  BarnesHutWorkload w(bp);
  const RunMetrics m = execute_workload(djvm, w);
  return m.traffic.bytes_of(MsgCategory::kObjectData);
}

}  // namespace

int main() {
  std::cout << "=== Ablation A5: correlation-driven placement vs round-robin ===\n";
  std::cout << "(Barnes-Hut, 16 threads on 4 nodes)\n\n";

  // Phase 1: profile under round-robin to obtain the TCM.
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 16;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  RunOutput prof = run_once(cfg, barnes_hut_spec(2048, 3).make);
  prof.djvm->pump_daemon();
  const SquareMatrix tcm = prof.djvm->daemon().build_full();

  // Phase 2: placements.
  const Placement rr = round_robin_placement(cfg.threads, cfg.nodes);
  const Placement corr = correlation_placement(tcm, cfg.nodes);

  TextTable t({"Placement", "Cross-node shared bytes (TCM)", "Local shared bytes",
               "Re-run object-data traffic (KB)"});
  t.add_row({"Round-robin", TextTable::cell(remote_shared_bytes(tcm, rr), 0),
             TextTable::cell(local_shared_bytes(tcm, rr), 0),
             TextTable::cell(static_cast<double>(run_with_placement(rr)) / 1024.0, 0)});
  t.add_row({"Correlation-driven", TextTable::cell(remote_shared_bytes(tcm, corr), 0),
             TextTable::cell(local_shared_bytes(tcm, corr), 0),
             TextTable::cell(static_cast<double>(run_with_placement(corr)) / 1024.0, 0)});
  t.print(std::cout);

  // Phase 3: migration planning on top of the round-robin placement.
  std::vector<ClassFootprint> fps(cfg.threads);
  std::vector<std::uint64_t> ctx(cfg.threads, 2048);
  const auto plans = plan_migrations(tcm, rr, fps, ctx, prof.djvm->cost_model(),
                                     cfg.nodes, cfg.costs.bytes_per_ns, 1);
  std::cout << "\nMigration planner proposals from the round-robin placement: "
            << plans.size() << "\n";
  TextTable pt({"Thread", "From", "To", "Gain (bytes)", "Modeled cost (ms)"});
  for (std::size_t i = 0; i < std::min<std::size_t>(5, plans.size()); ++i) {
    const auto& s = plans[i];
    pt.add_row({TextTable::cell(std::uint64_t{s.thread}),
                TextTable::cell(std::uint64_t{s.from}),
                TextTable::cell(std::uint64_t{s.to}),
                TextTable::cell(s.gain_bytes, 0),
                TextTable::cell(static_cast<double>(s.cost) / 1e6, 2)});
  }
  pt.print(std::cout);

  std::cout << "\nExpected shape: correlation-driven placement keeps most shared\n"
               "bytes node-local (same-galaxy threads collocated) and the re-run\n"
               "moves fewer object-data bytes than round-robin.\n";
  return 0;
}
