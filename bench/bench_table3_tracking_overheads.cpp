// Table III — correlation tracking overheads on the cluster (O1 + O2 + O3).
//
// Methodology per the paper: 8 nodes, one thread each, OALs collected AND
// shipped to the coordinator.  Reports, per sampling rate: execution time
// (and % over no-tracking), OAL message volume in KB (and % of the GOS
// message volume), and the CPU time the central daemon spends computing the
// TCM from the collected OALs.
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

struct Cell {
  bool na = true;
  double run_seconds = 0.0;
  double oal_kb = 0.0;
  double oal_share = 0.0;  ///< of GOS volume
  double tcm_ms = 0.0;
};

}  // namespace

int main() {
  std::cout << "=== Table III: Correlation tracking overheads ===\n";
  std::cout << "(8 nodes x 1 thread; OALs collected + sent; median of 3 runs)\n\n";

  const std::uint32_t rates[] = {1, 4, 16, 0};
  const char* rate_names[] = {"1X", "4X", "16X", "Full"};

  TextTable exec({"Benchmark", "No Tracking (ms)", "1X", "4X", "16X", "Full"});
  TextTable vol({"Benchmark", "GOS Volume (KB)", "OAL 1X", "OAL 4X", "OAL 16X",
                 "OAL Full"});
  TextTable tcm({"Benchmark", "TCM 1X (ms)", "TCM 4X", "TCM 16X", "TCM Full"});

  for (const AppSpec& app : overhead_apps()) {
    Config base;
    base.nodes = 8;
    base.threads = 8;
    base.oal_transfer = OalTransfer::kDisabled;

    const double baseline = median_run_seconds(base, app.make);
    // GOS volume from the baseline run (object data + control).
    RunOutput base_run = run_once(base, app.make);
    const double gos_kb =
        static_cast<double>(
            base_run.metrics.traffic.bytes_of(MsgCategory::kObjectData) +
            base_run.metrics.traffic.bytes_of(MsgCategory::kControl)) /
        1024.0;

    std::vector<Cell> cells(4);
    for (int i = 0; i < 4; ++i) {
      const std::uint32_t rate = rates[i];
      if (rate != 0 && rate_degenerates_to_full(base, app.make, rate)) continue;
      Config cfg = base;
      cfg.oal_transfer = OalTransfer::kSend;
      cfg.sampling_rate_x = rate;
      RunOutput out = run_once(cfg, app.make);
      Cell& c = cells[static_cast<std::size_t>(i)];
      c.na = false;
      c.run_seconds = median_run_seconds(cfg, app.make);
      c.oal_kb = static_cast<double>(
                     out.metrics.traffic.bytes_of(MsgCategory::kOal)) /
                 1024.0;
      const double gos_bytes_kb =
          static_cast<double>(
              out.metrics.traffic.bytes_of(MsgCategory::kObjectData) +
              out.metrics.traffic.bytes_of(MsgCategory::kControl)) /
          1024.0;
      c.oal_share = gos_bytes_kb > 0 ? c.oal_kb / gos_bytes_kb : 0.0;
      // O3: central TCM construction time over the whole run's records.
      out.djvm->pump_daemon();
      out.djvm->daemon().build_full();
      c.tcm_ms = out.djvm->daemon().total_build_seconds() * 1e3;
    }

    std::vector<std::string> erow{app.name, ms_cell(baseline)};
    std::vector<std::string> vrow{app.name, TextTable::cell(gos_kb, 0)};
    std::vector<std::string> trow{app.name};
    for (int i = 0; i < 4; ++i) {
      const Cell& c = cells[static_cast<std::size_t>(i)];
      (void)rate_names;
      if (c.na) {
        erow.push_back(TextTable::na());
        vrow.push_back(TextTable::na());
        trow.push_back(TextTable::na());
      } else {
        erow.push_back(ms_pct_cell(c.run_seconds, baseline));
        vrow.push_back(TextTable::cell(c.oal_kb, 0) + " (" +
                       TextTable::cell_pct(c.oal_share) + ")");
        trow.push_back(TextTable::cell(c.tcm_ms, 2));
      }
    }
    exec.add_row(std::move(erow));
    vol.add_row(std::move(vrow));
    tcm.add_row(std::move(trow));
  }

  std::cout << "Execution time with collect + send OALs:\n";
  exec.print(std::cout);
  std::cout << "\nMessage volumes (OAL KB and share of GOS protocol volume):\n";
  vol.print(std::cout);
  std::cout << "\nTCM computing time at the coordinator (dedicated machine, O3):\n";
  tcm.print(std::cout);
  std::cout << "\nPaper reference: OAL share 2-4% below 16X, 8-22% at full\n"
               "sampling (SOR worst: large arrays).  TCM time grows with rate\n"
               "and is the heaviest overhead; exec-time increase stays under\n"
               "~6% except SOR full.\n";
  return 0;
}
