// Ablation A2 — amortized array sampling vs whole-array logging (paper
// Section II.B.3).
//
// Scenario from the paper: T1 and T2 share a small array while T2 and T3
// share a large array (accessing different element ranges).  Logging the
// full array size makes the (T2, T3) correlation dominate; the amortized
// scheme keeps the estimate proportional to what is actually shared.
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

int main() {
  std::cout << "=== Ablation A2: amortized vs whole-array sample sizes ===\n\n";

  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 3;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  Djvm djvm(cfg);
  // Observational record tap: the naive-replay column below rewrites the
  // logged entries, which needs materialized records alongside the fold.
  djvm.gos().set_record_tap(true);
  djvm.spawn_threads_round_robin(cfg.threads);

  auto& reg = djvm.registry();
  const ClassId arr = reg.register_array_class("double[]", 8);
  djvm.plan().set_nominal_gap(arr, 31);

  // Small shared array (T1, T2) and large shared array (T2, T3).
  const ObjectId small = djvm.gos().alloc_array(arr, 0, 64);     // 512 B
  const ObjectId big = djvm.gos().alloc_array(arr, 1, 16384);    // 128 KB
  djvm.plan().resample_all();

  for (int round = 0; round < 3; ++round) {
    djvm.read(0, small);
    djvm.read(1, small);
    djvm.read(1, big);
    djvm.read(2, big);
    djvm.barrier_all();
  }
  djvm.pump_daemon();

  // Amortized (the paper's scheme): entry bytes = sampled elements x size,
  // HT-weighted back to the true array sizes.
  const SquareMatrix amortized = djvm.daemon().build_full();

  // Naive whole-array logging: replay the same records but substitute each
  // array's FULL size as the logged bytes, unweighted (what a scheme without
  // amortization would accrue).
  std::vector<IntervalRecord> naive_records;
  for (const IntervalRecord& r : djvm.gos().drain_records()) {
    IntervalRecord n = r;
    for (OalEntry& e : n.entries) {
      e.bytes = djvm.heap().meta(e.obj).size_bytes;
      e.gap = 1;
    }
    naive_records.push_back(std::move(n));
  }
  const SquareMatrix naive = TcmBuilder::build(naive_records, cfg.threads, false);

  TextTable t({"Scheme", "TCM(T1,T2)", "TCM(T2,T3)", "(T2,T3)/(T1,T2) ratio"});
  auto ratio = [](const SquareMatrix& m) {
    return m.at(0, 1) > 0 ? m.at(1, 2) / m.at(0, 1) : 0.0;
  };
  t.add_row({"Amortized (paper)", TextTable::cell(amortized.at(0, 1), 0),
             TextTable::cell(amortized.at(1, 2), 0),
             TextTable::cell(ratio(amortized), 1)});
  t.add_row({"Whole-array (naive)", TextTable::cell(naive.at(0, 1), 0),
             TextTable::cell(naive.at(1, 2), 0),
             TextTable::cell(ratio(naive), 1)});
  t.print(std::cout);

  std::cout << "\nTrue size ratio big/small = " << (16384.0 / 64.0) << ".\n"
            << "Both schemes see the size difference, but only the amortized\n"
               "one remains faithful under gap changes and bounded per-entry\n"
               "cost; the naive scheme is also what makes page-size-crossing\n"
               "arrays vulnerable to false sharing (Section II.B.3).\n";

  // Second scenario: gap robustness.  Under amortization the estimate of the
  // big array's contribution stays ~stable across gaps.
  TextTable t2({"Gap", "Amortized estimate of big array (bytes)"});
  for (std::uint32_t gap : {17u, 31u, 67u, 127u}) {
    djvm.plan().set_nominal_gap(arr, gap);
    djvm.plan().resample_all();
    t2.add_row({std::to_string(djvm.plan().real_gap(arr)),
                TextTable::cell(static_cast<double>(
                                    djvm.plan().estimated_full_bytes(big)),
                                0)});
  }
  std::cout << '\n';
  t2.print(std::cout);
  std::cout << "\nExpected: estimates hover near the true 131072 bytes at every gap.\n";
  return 0;
}
