// Table IV (the paper's "Overhead of sticky-set footprint profiling" table) —
// runtime cost of the three sticky-set profiling components:
//   (C1) stack sampling at 4 ms / 16 ms gaps, immediate vs lazy extraction;
//   (C2) sticky-set footprinting, nonstop vs 100 ms timer, 4X vs full;
//   (C3) sticky-set resolution, run eagerly at every interval close (the
//        paper's ad-hoc methodology; in production it runs only at migration).
// Single thread per application; each overhead isolated per the paper.
#include <iostream>

#include "harness.hpp"
#include "sticky/resolution.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

std::vector<AppSpec> table4_apps() {
  // The paper uses SOR 1K x 1K here (vs 2K x 2K elsewhere).
  return {sor_spec(1024, 1024, 10), barnes_hut_spec(4096, 5), water_spec(512, 5)};
}

double run_with_resolution(const Config& cfg, const WorkloadFactory& make) {
  std::vector<double> times;
  for (int rep = 0; rep < 3; ++rep) {
    Djvm djvm(cfg);
    djvm.spawn_threads_round_robin(cfg.threads);
    // Eager resolution at the end of each HLRC interval (ad-hoc measurement
    // mode; the cost normally vanishes across intervals without migrations).
    djvm.add_interval_observer([&djvm](ThreadId t) {
      const auto roots = djvm.invariants(t);
      const ClassFootprint fp = djvm.footprints().footprint(t);
      if (!roots.empty() && fp.total() > 0.0) {
        resolve_sticky_set(djvm.heap(), djvm.plan(), roots, fp,
                           djvm.config().landmark_tolerance);
      }
    });
    auto w = make();
    times.push_back(execute_workload(djvm, *w).run_seconds);
  }
  return median(times);
}

}  // namespace

int main() {
  std::cout << "=== Table IV: Overhead of sticky-set footprint profiling ===\n";
  std::cout << "(single thread; median of 3 runs; ms and % over baseline)\n\n";

  TextTable stack_t({"Benchmark", "Baseline", "Immediate 4ms", "Immediate 16ms",
                     "Lazy 4ms", "Lazy 16ms"});
  TextTable fp_t({"Benchmark", "Nonstop 4X", "Nonstop Full", "Timer(100ms) 4X",
                  "Timer(100ms) Full"});
  TextTable res_t({"Benchmark", "+ Sticky-set Resolution"});

  for (const AppSpec& app : table4_apps()) {
    Config base;
    base.nodes = 1;
    base.threads = 1;
    const double baseline = median_run_seconds(base, app.make);

    // --- C1: stack sampling, object sampling and tracking disabled ----------
    std::vector<std::string> srow{app.name, ms_cell(baseline)};
    for (ExtractionMode mode : {ExtractionMode::kImmediate, ExtractionMode::kLazy}) {
      for (SimTime gap : {sim_ms(4), sim_ms(16)}) {
        Config cfg = base;
        cfg.stack_sampling = true;
        cfg.stack_sampling_gap = gap;
        cfg.extraction = mode;
        srow.push_back(ms_pct_cell(median_run_seconds(cfg, app.make), baseline));
      }
    }
    stack_t.add_row(std::move(srow));

    // --- C2: footprinting, stack sampling and tracking disabled -------------
    std::vector<std::string> frow{app.name};
    for (FootprintTimerMode timer :
         {FootprintTimerMode::kNonstop, FootprintTimerMode::kTimerBased}) {
      for (std::uint32_t rate : {4u, 0u}) {
        Config cfg = base;
        cfg.footprinting = true;
        cfg.footprint_timer = timer;
        cfg.sampling_rate_x = rate;
        frow.push_back(ms_pct_cell(median_run_seconds(cfg, app.make), baseline));
      }
    }
    fp_t.add_row(std::move(frow));

    // --- C3: resolution, eagerly at every interval close ---------------------
    Config rescfg = base;
    rescfg.footprinting = true;
    rescfg.footprint_timer = FootprintTimerMode::kTimerBased;
    rescfg.sampling_rate_x = 4;
    rescfg.stack_sampling = true;
    const double without = median_run_seconds(rescfg, app.make);
    const double with = run_with_resolution(rescfg, app.make);
    res_t.add_row({app.name, ms_pct_cell(with, without)});
  }

  std::cout << "Stack sampling overhead (C1):\n";
  stack_t.print(std::cout);
  std::cout << "\nSticky-set footprinting overhead (C2):\n";
  fp_t.print(std::cout);
  std::cout << "\nSticky-set resolution overhead (C3, eager per-interval):\n";
  res_t.print(std::cout);
  std::cout << "\nPaper reference: stack sampling negligible for SOR/Water,\n"
               "slightly higher for Barnes-Hut (recursive traversal); lazy\n"
               "extraction beats immediate almost everywhere; full-sampling\n"
               "nonstop footprinting is the costliest (up to ~9%); the 100 ms\n"
               "timer at 4X makes it minimal; resolution adds a few percent.\n";
  return 0;
}
