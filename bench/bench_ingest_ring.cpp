// Ingest transport at thread scale: real producer threads handing closed
// intervals to one consumer through (a) the legacy transport — one
// heap-materialized IntervalRecord per interval pushed into a shared batch
// vector under a mutex, the seed's records_/submit() hand-off made
// thread-safe the obvious way — and (b) the lock-free path — per-thread OAL
// arenas published over SPSC rings (profiling/ingest.hpp).
//
// The timed section is the transport itself (producer hand-off + consumer
// drain, including the legacy side's per-record frees), not the TCM fold,
// which is identical work on both sides and would only dilute the ratio
// under test.  The sweep varies interval density: the legacy path pays a
// malloc + mutex + free per *interval* regardless of how few entries it
// carries, so the sparse point — one sampled entry per interval, the
// governed steady state once rates are backed off — is where the redesign
// matters most and is the point that gates (>= 5x).  Denser intervals
// amortize the fixed costs over more copied bytes and the ratio compresses
// toward the memcpy floor; those points are reported for the curve.
//
// The loss invariant gates alongside throughput: every appended entry must
// come out the consumer end, counted — the ring path has no drop branch,
// and backpressure shows up in the counters instead of in missing entries.
//
// A separate correctness phase drives the same interval stream through two
// hubs at opposite arena geometries — roomy arenas that never split vs tiny
// ones that split constantly under shallow-ring backpressure — and requires
// identical full-run maps (<= 1e-9): the transport chunking must be
// invisible to the fold.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "harness.hpp"
#include "profiling/accuracy.hpp"
#include "profiling/correlation_daemon.hpp"
#include "profiling/ingest.hpp"

namespace djvm {
namespace {

constexpr std::uint32_t kProducers = 4;

struct Shape {
  std::uint64_t intervals_per_producer;
  std::uint32_t entries_per_interval;

  [[nodiscard]] std::uint64_t expected_entries() const {
    return static_cast<std::uint64_t>(kProducers) * intervals_per_producer *
           entries_per_interval;
  }
};

/// Pregenerated per-producer entry stream (entries_per_interval per
/// interval, contiguous).  Synthesis runs before the clock starts so the
/// timed section measures the transport, not the workload that feeds it.
std::vector<OalEntry> make_stream(const Shape& shape, std::uint32_t producer) {
  std::vector<OalEntry> stream;
  stream.reserve(shape.intervals_per_producer * shape.entries_per_interval);
  for (std::uint64_t i = 0; i < shape.intervals_per_producer; ++i) {
    for (std::uint32_t e = 0; e < shape.entries_per_interval; ++e) {
      stream.push_back({/*obj=*/(i + e * 7 + producer) % 512,
                        /*klass=*/0, /*bytes=*/64, /*gap=*/1});
    }
  }
  return stream;
}

std::span<const OalEntry> interval_slice(const Shape& shape,
                                         const std::vector<OalEntry>& stream,
                                         std::uint64_t interval) {
  return {stream.data() + interval * shape.entries_per_interval,
          shape.entries_per_interval};
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// Legacy transport (kept as the bench baseline after submit()'s
/// retirement): materialize a record per interval, lock, push.
double run_legacy(const Shape& shape, std::uint64_t& entries_out) {
  std::mutex mu;
  std::vector<IntervalRecord> shared;
  std::atomic<std::uint32_t> live{kProducers};
  std::uint64_t drained = 0;

  std::vector<std::vector<OalEntry>> streams;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    streams.push_back(make_stream(shape, p));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < shape.intervals_per_producer; ++i) {
        const std::span<const OalEntry> oal =
            interval_slice(shape, streams[p], i);
        IntervalRecord r;
        r.thread = p;
        r.interval = i;
        r.node = static_cast<NodeId>(p);
        // The legacy API forces a per-interval heap vector: this allocation
        // and copy are what the arena path designs away.
        r.entries.assign(oal.begin(), oal.end());
        std::lock_guard<std::mutex> lock(mu);
        shared.push_back(std::move(r));
      }
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  std::vector<IntervalRecord> local;
  auto drain = [&] {
    {
      std::lock_guard<std::mutex> lock(mu);
      local.swap(shared);
    }
    for (const IntervalRecord& r : local) drained += r.entries.size();
    local.clear();  // per-record frees: the flip side of the per-record mallocs
  };
  while (live.load(std::memory_order_acquire) != 0) {
    drain();
    if (drained == 0) std::this_thread::yield();
  }
  for (std::thread& t : producers) t.join();
  drain();
  const double dt = seconds_since(t0);
  entries_out = drained;
  return dt;
}

/// Lock-free transport: arena append, SPSC publish, pop + recycle.
double run_ring(const Shape& shape, std::uint64_t& entries_out,
                IngestCounters& counters_out) {
  IngestConfig cfg;
  cfg.arena_entries = 4096;
  cfg.ring_depth = 8;
  IngestHub hub(cfg);
  hub.ensure_lanes(kProducers);
  std::atomic<std::uint32_t> live{kProducers};
  std::uint64_t drained = 0;

  std::vector<std::vector<OalEntry>> streams;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    streams.push_back(make_stream(shape, p));
  }

  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> producers;
  for (std::uint32_t p = 0; p < kProducers; ++p) {
    producers.emplace_back([&, p] {
      for (std::uint64_t i = 0; i < shape.intervals_per_producer; ++i) {
        hub.append(p, p, i, static_cast<NodeId>(p), 0, 0,
                   interval_slice(shape, streams[p], i));
      }
      hub.flush(p);
      live.fetch_sub(1, std::memory_order_release);
    });
  }
  auto consume = [&](OalArena* a) {
    drained += a->entries.size();
    hub.recycle(a);
  };
  while (live.load(std::memory_order_acquire) != 0) {
    OalArena* a = hub.try_pop();
    if (a != nullptr) {
      consume(a);
    } else {
      std::this_thread::yield();
    }
  }
  for (std::thread& t : producers) t.join();
  while (OalArena* a = hub.try_pop()) consume(a);
  for (OalArena* s : hub.take_stranded()) consume(s);
  const double dt = seconds_since(t0);
  entries_out = drained;
  counters_out = hub.counters();
  return dt;
}

struct PointResult {
  double ratio = 0.0;
  double ring_seconds = 0.0;
  double legacy_seconds = 0.0;
  std::uint64_t lost = 0;
  bool counts_ok = false;
};

PointResult run_point(const Shape& shape) {
  PointResult out;
  out.legacy_seconds = 1e300;
  out.ring_seconds = 1e300;
  std::uint64_t legacy_entries = 0;
  std::uint64_t ring_entries = 0;
  // Best of three: the ratio gates, so both sides get their best schedule.
  for (int rep = 0; rep < 3; ++rep) {
    std::uint64_t n = 0;
    out.legacy_seconds = std::min(out.legacy_seconds, run_legacy(shape, n));
    legacy_entries = n;
    IngestCounters c{};
    out.ring_seconds = std::min(out.ring_seconds, run_ring(shape, n, c));
    ring_entries = n;
    out.lost += c.entries_published - c.entries_drained;
  }
  out.ratio = out.ring_seconds > 0.0 ? out.legacy_seconds / out.ring_seconds : 0.0;
  out.counts_ok = legacy_entries == shape.expected_entries() &&
                  ring_entries == shape.expected_entries();
  return out;
}

/// Correctness: the same stream through opposite arena geometries must
/// yield the same full-run map.
double map_error() {
  KlassRegistry reg;
  Heap heap(reg, 2);
  SamplingPlan plan(heap);
  const ClassId klass = reg.register_class("X", 64);

  constexpr std::uint32_t kThreads = 8;
  CorrelationDaemon via_roomy(plan, kThreads);
  CorrelationDaemon via_splitty(plan, kThreads);
  IngestConfig roomy;  // default 4096-entry arenas: no interval ever splits
  IngestConfig splitty;
  splitty.arena_entries = 64;  // force splits and many arenas
  splitty.ring_depth = 2;
  IngestHub roomy_hub(roomy);
  IngestHub splitty_hub(splitty);
  roomy_hub.ensure_lanes(kThreads);
  splitty_hub.ensure_lanes(kThreads);

  for (std::uint64_t epoch = 0; epoch < 4; ++epoch) {
    std::vector<IntervalRecord> batch;
    for (ThreadId t = 0; t < kThreads; ++t) {
      for (std::uint64_t i = 0; i < 50; ++i) {
        IntervalRecord r;
        r.thread = t;
        r.interval = epoch * 50 + i;
        r.node = static_cast<NodeId>(t % 3);
        for (std::uint64_t e = 0; e < 5 + (t + i) % 4; ++e) {
          r.entries.push_back({(epoch + t + i * 3 + e) % 96, klass, 64,
                               1 + static_cast<std::uint32_t>(e % 2)});
        }
        batch.push_back(std::move(r));
      }
    }
    for (const IntervalRecord& r : batch) {
      roomy_hub.append(r.thread, r.thread, r.interval, r.node, r.start_pc,
                       r.end_pc, r.entries);
      splitty_hub.append(r.thread, r.thread, r.interval, r.node, r.start_pc,
                         r.end_pc, r.entries);
    }
    via_roomy.ingest(roomy_hub);
    via_splitty.ingest(splitty_hub);
    via_roomy.run_epoch();
    via_splitty.run_epoch();
  }
  return absolute_error(via_splitty.build_full(), via_roomy.build_full());
}

}  // namespace
}  // namespace djvm

int main() {
  using namespace djvm;
  bench::BenchReport report("ingest_ring");

  // Sparse first (the gated point), then the density curve.
  const std::vector<Shape> sweep = {
      {400'000, 1},  // governed steady state: rates backed off, tiny OALs
      {100'000, 4},
      {25'000, 16},
  };

  std::printf("%10s %10s %12s %12s %9s\n", "intervals", "entries/iv",
              "legacy_ms", "ring_ms", "ratio");
  PointResult gated;
  std::uint64_t lost_total = 0;
  bool counts_ok = true;
  for (const Shape& s : sweep) {
    const PointResult r = run_point(s);
    std::printf("%10llu %10u %12.3f %12.3f %8.2fx\n",
                static_cast<unsigned long long>(s.intervals_per_producer *
                                                kProducers),
                s.entries_per_interval, r.legacy_seconds * 1e3,
                r.ring_seconds * 1e3, r.ratio);
    if (&s == &sweep.front()) gated = r;
    lost_total += r.lost;
    counts_ok = counts_ok && r.counts_ok;
  }
  const double err = map_error();

  report.latency_metric("ring_seconds_sparse", gated.ring_seconds, 0.35);
  report.metric("legacy_seconds_sparse", gated.legacy_seconds);
  report.metric("throughput_ratio_sparse", gated.ratio, "max", 0.30);
  report.metric("entries_lost", static_cast<double>(lost_total), "min", 0.0,
                0.0);
  report.metric("map_abs_error", err, "min", 0.0, 1e-9);

  report.check(
      "ring ingest >= 5x the record+mutex submit transport at one entry per "
      "interval (backed-off steady state)",
      gated.ratio >= 5.0, gated.ratio, 5.0, ">=");
  report.check("no path loses entries (published == drained, counts exact)",
               lost_total == 0 && counts_ok, static_cast<double>(lost_total),
               0.0, "==");
  report.check("full-run maps agree across arena geometries within 1e-9",
               err <= 1e-9, err, 1e-9, "<=");
  return report.finish();
}
