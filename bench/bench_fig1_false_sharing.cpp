// Fig. 1 — false-sharing effect on correlation tracking preciseness.
//
// Barnes-Hut with 32 threads: the *inherent* pattern (object-grain tracking)
// shows two bright same-galaxy blocks; the *induced* pattern (page-grain
// tracking, as a D-CVM-style system would observe) loses most of that
// structure because unrelated sub-100-byte bodies share 4 KB pages.
#include <iostream>

#include "harness.hpp"
#include "baseline/page_dsm.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

/// Mean same-galaxy cell over mean cross-galaxy cell.
double galaxy_contrast(const SquareMatrix& m) {
  const std::size_t n = m.size();
  const std::size_t half = n / 2;
  double same = 0.0, cross = 0.0;
  std::size_t sn = 0, cn = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if ((i < half) == (j < half)) {
        same += m.at(i, j);
        ++sn;
      } else {
        cross += m.at(i, j);
        ++cn;
      }
    }
  }
  const double cross_mean = cn ? cross / static_cast<double>(cn) : 0.0;
  const double same_mean = sn ? same / static_cast<double>(sn) : 0.0;
  return cross_mean > 0 ? same_mean / cross_mean : same_mean;
}

}  // namespace

int main() {
  std::cout << "=== Fig. 1: Inherent vs induced sharing pattern (Barnes-Hut) ===\n";
  std::cout << "(32 threads, 4K bodies; heat maps normalized per matrix)\n\n";

  Config cfg;
  cfg.nodes = 8;
  cfg.threads = 32;
  cfg.oal_transfer = OalTransfer::kLocalOnly;  // full object-grain tracking

  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  PageCorrelationTracker pages(djvm.heap(), cfg.threads);
  djvm.add_access_observer(
      [&](ThreadId t, ObjectId o, bool) { pages.on_access(t, o); });
  djvm.add_interval_observer([&](ThreadId t) { pages.on_interval_close(t); });

  BarnesHutParams p;
  p.bodies = 4096;
  p.rounds = 2;
  BarnesHutWorkload w(p);
  execute_workload(djvm, w);
  djvm.pump_daemon();

  const SquareMatrix inherent = djvm.daemon().build_full();
  const SquareMatrix induced = pages.build_tcm();

  print_heatmap(std::cout, inherent, "(a) Inherent pattern — object-grain TCM");
  std::cout << '\n';
  print_heatmap(std::cout, induced, "(b) Induced pattern — page-grain TCM");

  TextTable t({"Pattern", "Same-galaxy / cross-galaxy contrast"});
  t.add_row({"Inherent (object-grain)", TextTable::cell(galaxy_contrast(inherent), 2)});
  t.add_row({"Induced (page-grain)", TextTable::cell(galaxy_contrast(induced), 2)});
  std::cout << '\n';
  t.print(std::cout);
  std::cout << "\nPaper reference: the induced map \"contains very little hint of\n"
               "locality between threads of the same galaxy\" — the inherent map's\n"
               "contrast must be much higher than the induced map's.\n";
  return 0;
}
