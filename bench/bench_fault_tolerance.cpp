// Fault tolerance under the governed loop (PR 9 acceptance).
//
// One deterministic pair-sharing workload (four partner pairs over four
// nodes, the even partner writing its pool each epoch so the barrier's
// invalidations keep remote re-fault traffic alive) runs in five columns:
//
//   clean      — faults disabled: the reference wall-clock and TCM;
//   quiet      — injector attached with an all-zero plan: must be
//                bit-identical to clean (same wall, same map, zero retry
//                arithmetic) — the fault layer costs nothing when idle,
//                which is the "no regression on fault-free columns" half
//                of the acceptance;
//   faulty     — seeded per-category drops, latency spikes + jitter,
//                transient stalls, and a timed kill of node 2 mid-run:
//                the TCM restricted to surviving threads must stay within
//                a fixed band of clean (the killed node's un-shipped
//                arena slices die with it — the daemon's node filter
//                drops them at ingest), and the post-kill fault spike
//                must decay back to the steady state within the epoch
//                bound; the survivors' `entries_published ==
//                entries_drained` ring invariant is checked on this same
//                run (ingest is the only delivery path now);
//   faulty×2   — the identical faulty config re-run: the schedule hash,
//                wall-clock, and full map must match bit for bit (a
//                failure found in CI replays locally from the seed);
//   partition  — a two-epoch partition window across the node cut instead
//                of a kill: cross-cut sends drop and retry, the run
//                completes, and the map still lands inside the band.
//                Skipped when DJVM_FT_SKIP_PARTITION is set; the
//                baseline lists its metric under `allowed_missing` so the
//                gate tolerates the skip (the per-fault-mode column is
//                diagnostic, not load-bearing).
#include <algorithm>
#include <cstdint>
#include <cstdlib>
#include <iostream>
#include <vector>

#include "harness.hpp"
#include "net/faults.hpp"
#include "profiling/accuracy.hpp"
#include "profiling/ingest.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kThreads = 8;  // pair P_k = {2k, 2k+1}
constexpr std::uint32_t kPairs = kThreads / 2;
constexpr std::uint32_t kEpochs = 12;
constexpr std::uint64_t kKillEpoch = 6;
constexpr NodeId kKillNode = 2;
constexpr std::uint32_t kPoolCount = 48;  // 256 B objects per pair pool
constexpr std::uint32_t kRounds = 2;      // pool sweeps per thread per epoch
/// Fresh objects each pair shares in exactly one epoch.  The whole-run map
/// is a union over windows — a pair that shares the same pool every epoch
/// loses nothing when one epoch's records die with a node — so these
/// epoch-unique objects are what make the kill's data loss *visible*: the
/// dead node's threads carry their kill-epoch uniques out of the map.
constexpr std::uint32_t kUniquePerEpoch = 8;
constexpr SimTime kComputePerRead = 500;
constexpr std::uint32_t kRecoveryBound = 3;  // epochs after the kill

enum class Mode { kClean, kQuiet, kFaulty, kPartition };

FaultKnobs plan_for(Mode mode) {
  FaultKnobs f;
  switch (mode) {
    case Mode::kClean:
      break;  // enabled stays false: no injector at all
    case Mode::kQuiet:
      f.enabled = true;  // injector attached, every knob at zero
      break;
    case Mode::kFaulty:
      f.enabled = true;
      f.drop_object_data = 0.05;
      f.drop_oal = 0.15;
      f.drop_control = 0.05;
      f.drop_migration = 0.05;
      f.spike_probability = 0.05;
      f.spike_ns = sim_us(200);
      f.jitter_ns = sim_us(50);
      f.stall_probability = 0.05;
      f.stall_ns = sim_us(100);
      f.kill_node = kKillNode;
      f.kill_epoch = kKillEpoch;
      f.max_retries = 6;
      f.retry_backoff_ns = sim_us(100);
      break;
    case Mode::kPartition:
      f.enabled = true;
      f.partition_begin = 4;
      f.partition_end = 6;  // half-open two-epoch window
      f.partition_cut = 2;  // {0,1} vs {2,3}
      f.max_retries = 6;
      f.retry_backoff_ns = sim_us(100);
      break;
  }
  return f;
}

struct Outcome {
  SimTime wall = 0;  // max thread clock at the end
  SquareMatrix map;  // whole-run weighted TCM
  std::uint64_t ring_published = 0;
  std::uint64_t ring_drained = 0;
  std::uint64_t dropped = 0;
  std::uint64_t retries = 0;
  std::uint64_t backoff_ns = 0;
  std::uint64_t schedule_hash = 0;        // 0 when no injector attached
  int first_degraded = -1;                // epoch index, -1 = never
  std::vector<NodeId> lost;               // union across epochs
  std::vector<std::uint64_t> fault_delta; // per-epoch object faults
};

/// Every column rides the arena ingest path (the only delivery path): a
/// dead node's un-shipped slices die with it at the daemon's node filter,
/// so the kill costs real map mass and the survivor band measures
/// something, while the published/drained ring invariant holds on the very
/// same run — drained counts slices the consumer saw, filtered or not.
Outcome run(Mode mode) {
  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  cfg.faults = plan_for(mode);

  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(kThreads);
  const ClassId k = djvm.registry().register_class("PairPool", 256);
  std::vector<std::vector<ObjectId>> pools(kPairs);
  for (std::uint32_t p = 0; p < kPairs; ++p) {
    for (std::uint32_t i = 0; i < kPoolCount; ++i) {
      pools[p].push_back(djvm.gos().alloc(k, static_cast<NodeId>(p % kNodes)));
    }
  }
  // uniques[e][p]: objects pair p shares only during epoch e.
  std::vector<std::vector<std::vector<ObjectId>>> uniques(kEpochs);
  for (std::uint32_t e = 0; e < kEpochs; ++e) {
    uniques[e].resize(kPairs);
    for (std::uint32_t p = 0; p < kPairs; ++p) {
      for (std::uint32_t i = 0; i < kUniquePerEpoch; ++i) {
        uniques[e][p].push_back(
            djvm.gos().alloc(k, static_cast<NodeId>(p % kNodes)));
      }
    }
  }

  Outcome out;
  std::uint64_t faults_before = 0;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (ThreadId t = 0; t < kThreads; ++t) {
      const auto& pool = pools[t / 2];
      for (std::uint32_t r = 0; r < kRounds; ++r) {
        for (ObjectId o : pool) djvm.read(t, o);
      }
      for (ObjectId o : uniques[epoch][t / 2]) djvm.read(t, o);
      if ((t & 1u) == 0) {
        for (ObjectId o : pool) djvm.write(t, o);
      }
      djvm.gos().clock(t).advance(
          static_cast<SimTime>(kPoolCount) * kRounds * kComputePerRead);
    }
    djvm.barrier_all();
    const EpochResult res = djvm.run_governed_epoch();
    if (res.degraded && out.first_degraded < 0) {
      out.first_degraded = static_cast<int>(epoch);
    }
    for (NodeId n : res.lost_nodes) {
      if (std::find(out.lost.begin(), out.lost.end(), n) == out.lost.end()) {
        out.lost.push_back(n);
      }
    }
    const std::uint64_t faults_now = djvm.gos().stats().object_faults;
    out.fault_delta.push_back(faults_now - faults_before);
    faults_before = faults_now;
  }

  djvm.pump_daemon();
  out.map = djvm.daemon().build_full();
  for (ThreadId t = 0; t < kThreads; ++t) {
    out.wall = std::max(out.wall, djvm.gos().clock(t).now());
  }
  if (const IngestHub* hub = djvm.ingest_hub()) {
    const IngestCounters c = hub->counters();
    out.ring_published = c.entries_published;
    out.ring_drained = c.entries_drained;
  }
  out.dropped = djvm.net().stats().total_dropped();
  out.retries = djvm.net().stats().total_retries();
  out.backoff_ns = djvm.net().stats().total_backoff_ns();
  if (const FaultInjector* inj = djvm.fault_injector()) {
    out.schedule_hash = inj->schedule_hash();
  }
  return out;
}

/// Submatrix over the threads that never lived on the killed node (initial
/// round-robin placement: thread t starts on node t % kNodes).
SquareMatrix survivor_submap(const SquareMatrix& full) {
  std::vector<std::size_t> keep;
  for (ThreadId t = 0; t < kThreads; ++t) {
    if (t % kNodes != kKillNode) keep.push_back(t);
  }
  SquareMatrix sub(keep.size());
  for (std::size_t i = 0; i < keep.size(); ++i) {
    for (std::size_t j = 0; j < keep.size(); ++j) {
      sub.at(i, j) = full.at(keep[i], keep[j]);
    }
  }
  return sub;
}

/// Epochs after the kill until the per-epoch object-fault rate returns to
/// the pre-kill steady state (the re-homed pools settling on the
/// survivors), or kEpochs when it never does.
std::uint32_t recovery_epochs(const Outcome& o) {
  // Steady state: the mean over the settled pre-kill epochs.
  std::uint64_t steady_sum = 0, steady_n = 0;
  for (std::uint64_t e = 2; e < kKillEpoch; ++e) {
    steady_sum += o.fault_delta[e];
    ++steady_n;
  }
  const std::uint64_t steady = steady_n > 0 ? steady_sum / steady_n : 0;
  const std::uint64_t bound = steady + steady / 2 + 32;
  for (std::uint64_t e = kKillEpoch + 1; e < kEpochs; ++e) {
    if (o.fault_delta[e] <= bound) {
      return static_cast<std::uint32_t>(e - kKillEpoch);
    }
  }
  return kEpochs;
}

std::string lost_cell(const std::vector<NodeId>& lost) {
  if (lost.empty()) return "-";
  std::string s;
  for (NodeId n : lost) {
    if (!s.empty()) s += ",";
    s += std::to_string(n);
  }
  return s;
}

}  // namespace

int main() {
  std::cout << "=== Profiling under faults: drops, spikes, a mid-run node "
               "kill, a partition window ===\n";
  std::cout << "(" << kThreads << " threads on " << kNodes << " nodes, "
            << kPairs << " partner pairs, " << kEpochs << " epochs; node "
            << kKillNode << " dies at epoch " << kKillEpoch << ")\n\n";

  const bool skip_partition =
      std::getenv("DJVM_FT_SKIP_PARTITION") != nullptr;

  const Outcome clean = run(Mode::kClean);
  const Outcome quiet = run(Mode::kQuiet);
  const Outcome faulty = run(Mode::kFaulty);
  const Outcome replay = run(Mode::kFaulty);
  Outcome part;
  if (!skip_partition) part = run(Mode::kPartition);

  const double full_err = absolute_error(faulty.map, clean.map);
  const double survivor_err =
      absolute_error(survivor_submap(faulty.map), survivor_submap(clean.map));
  const double part_err =
      skip_partition ? 0.0 : absolute_error(part.map, clean.map);
  const std::uint32_t recovery = recovery_epochs(faulty);
  const std::uint64_t ring_lost = faulty.ring_published - faulty.ring_drained;
  const double fault_tax =
      clean.wall > 0
          ? static_cast<double>(faulty.wall) / static_cast<double>(clean.wall)
          : 0.0;

  TextTable t({"Variant", "Wall (sim ms)", "Map err", "Dropped", "Retries",
               "Backoff ms", "Degraded@", "Lost"});
  const auto row = [&](const char* name, const Outcome& o, double err) {
    t.add_row({name, TextTable::cell(static_cast<double>(o.wall) / 1e6, 2),
               TextTable::cell(err, 4), TextTable::cell(o.dropped),
               TextTable::cell(o.retries),
               TextTable::cell(static_cast<double>(o.backoff_ns) / 1e6, 2),
               o.first_degraded >= 0 ? std::to_string(o.first_degraded)
                                     : std::string("-"),
               lost_cell(o.lost)});
  };
  row("Fault-free", clean, 0.0);
  row("Armed, zero plan", quiet, absolute_error(quiet.map, clean.map));
  row("Faulty + kill", faulty, full_err);
  row("Faulty replay", replay, absolute_error(replay.map, clean.map));
  if (!skip_partition) row("Partition window", part, part_err);
  t.print(std::cout);

  std::cout << "\nSurvivor-thread map error vs fault-free: " << survivor_err
            << "  (full map " << full_err << ")\n";
  std::cout << "Post-kill fault-rate recovery: " << recovery
            << " epoch(s); fault wall tax x" << fault_tax << "\n\n";

  BenchReport report("fault_tolerance");
  // The partition column is diagnostic and skippable (DJVM_FT_SKIP_PARTITION);
  // declared unconditionally so regenerated baselines keep the opt-out.
  report.allow_missing("partition_cross_cut_drops");
  report.metric("clean_wall_sim_ms", static_cast<double>(clean.wall) / 1e6,
                "min", 0.10);
  report.metric("faulty_wall_sim_ms", static_cast<double>(faulty.wall) / 1e6,
                "min", 0.10);
  report.metric("fault_wall_tax", fault_tax);
  report.metric("survivor_map_abs_error", survivor_err, "min", 0.0, 0.02);
  report.metric("full_map_abs_error", full_err);
  report.metric("recovery_epochs", static_cast<double>(recovery), "min", 0.0,
                1.0);
  report.metric("ring_entries_lost", static_cast<double>(ring_lost), "min",
                0.0, 0.0);
  report.metric("faulty_retries", static_cast<double>(faulty.retries));
  if (!skip_partition) {
    // Diagnostic per-fault-mode column; the baseline lists this metric in
    // `allowed_missing` so a DJVM_FT_SKIP_PARTITION run still gates.
    report.metric("partition_cross_cut_drops",
                  static_cast<double>(part.dropped), "max", 0.90);
  }

  report.check(
      "armed injector with an all-zero plan is bit-identical to fault-free "
      "(same wall, same map, no retry arithmetic)",
      quiet.wall == clean.wall && quiet.map == clean.map &&
          quiet.dropped + quiet.retries + quiet.backoff_ns == 0,
      static_cast<double>(quiet.wall > clean.wall ? quiet.wall - clean.wall
                                                  : clean.wall - quiet.wall),
      0.0, "<=");
  report.check(
      "identical fault seed replays bit-identically (schedule hash, wall, "
      "full map)",
      replay.schedule_hash == faulty.schedule_hash &&
          replay.wall == faulty.wall && replay.map == faulty.map,
      static_cast<double>(replay.schedule_hash == faulty.schedule_hash ? 0 : 1),
      0.0, "<=");
  report.check(
      "survivor ring invariant holds under drops + kill (published == "
      "drained, entries flowed)",
      ring_lost == 0 && faulty.ring_published > 0,
      static_cast<double>(ring_lost), 0.0, "<=");
  report.check("surviving-thread map accuracy stays within the fixed band "
               "of the fault-free run",
               survivor_err <= 0.10, survivor_err, 0.10, "<=");
  report.check(
      "the kill's data loss is real but confined to the dead node's threads "
      "(full-map error nonzero, survivor error at most half the band)",
      full_err > 0.0 && survivor_err <= 0.05, full_err, 0.0, ">");
  report.check("post-kill fault rate recovers within the epoch bound",
               recovery <= kRecoveryBound, static_cast<double>(recovery),
               static_cast<double>(kRecoveryBound), "<=");
  report.check(
      "the kill is reported: first degraded epoch is the kill epoch and the "
      "dead node is named",
      faulty.first_degraded == static_cast<int>(kKillEpoch) &&
          faulty.lost == std::vector<NodeId>{kKillNode},
      static_cast<double>(faulty.first_degraded),
      static_cast<double>(kKillEpoch), "==");
  report.check("the fault plan was actually exercised (drops, retries, and "
               "backoff all nonzero)",
               faulty.dropped > 0 && faulty.retries > 0 &&
                   faulty.backoff_ns > 0,
               static_cast<double>(faulty.dropped), 0.0, ">");
  if (!skip_partition) {
    report.check("partition window drops cross-cut traffic yet the run "
                 "completes inside the map band",
                 part.dropped > 0 && part_err <= 0.10,
                 part_err, 0.10, "<=");
  }
  return report.finish();
}
