// Closed-loop governor under a workload phase change.
//
// A synthetic workload runs two correlation phases:
//   Phase A (epochs 0..19):  thread pairs (0,1),(2,3),... deterministically
//       scan shared pools of bulky 2 KB records — a stable, cheap-to-profile
//       structure that converges almost immediately.
//   Phase B (epochs 20..39): the pairing *shifts* to (7,0),(1,2),(3,4),(5,6)
//       and sharing moves to pools of small 64 B objects touched in random
//       35% subsets each epoch — a structure that needs much finer sampling
//       before successive TCMs agree.
//
// Three identical-traffic runs are compared:
//   governed — the closed-loop governor (budgeted, bidirectional, sentinel
//              phase detection);
//   legacy   — the seed's one-way convergence loop, which freezes after
//              phase A and never reacts to the flip;
//   oracle   — full sampling, no adaptation: the accuracy reference.
//
// Acceptance (ISSUE 1): the governor (a) keeps measured overhead within
// 1.5x of the configured budget across both phases, and (b) re-converges
// the TCM after the mid-run phase change, while the legacy path does not.
#include <iostream>

#include "common/rng.hpp"
#include "governor/governor.hpp"
#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kThreads = 8;
constexpr std::uint32_t kPhaseEpochs = 20;
constexpr std::uint32_t kEpochs = 2 * kPhaseEpochs;
constexpr std::uint32_t kPools = kThreads / 2;
constexpr std::uint32_t kHotPerPool = 4096;   // 64 B objects
constexpr std::uint32_t kBulkyPerPool = 512;  // 2 KB records
constexpr double kAccessProb = 0.35;         // phase B random subset
constexpr SimTime kComputePerAccess = 2000;  // 2 us of app work per access
constexpr std::uint32_t kStartGap = 256;      // both runs start coarse
constexpr double kBudget = 0.04;
constexpr double kThreshold = 0.20;
constexpr std::uint64_t kSeed = 42;

enum class RunMode { kGoverned, kLegacy, kOracle };

const char* action_name(GovernorAction a) {
  switch (a) {
    case GovernorAction::kNone: return "-";
    case GovernorAction::kTighten: return "tighten";
    case GovernorAction::kBackOff: return "backoff";
    case GovernorAction::kConverge: return "converge";
    case GovernorAction::kRearm: return "REARM";
  }
  return "?";
}

struct EpochLog {
  double overhead = 0.0;
  double distance = -1.0;  // -1: first epoch (no previous map)
  GovernorAction action = GovernorAction::kNone;
  std::uint32_t hot_gap = 0;
  std::uint32_t bulky_gap = 0;
};

struct RunLog {
  std::vector<EpochLog> epochs;
  SquareMatrix final_tcm;
  bool converged_flag = false;
  std::size_t rearms = 0;
  GovernorState final_state = GovernorState::kIdle;
  std::uint32_t hot_gap_at_flip = 0;
  std::uint32_t hot_gap_final = 0;
  double wall_seconds = 0.0;
  std::uint64_t timeline_lines = 0;  ///< export runs: lines queued
  bool export_ok = false;            ///< export runs: every write landed
};

RunLog run(RunMode mode, bool with_export = false) {
  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  if (with_export) {
    // Snapshot + timeline every epoch through the async writer; the export
    // acceptance gates on this costing (almost) nothing per epoch.
    cfg.export_.snapshot_path = "/tmp/bench_governor_phases_snapshot.bin";
    cfg.export_.timeline_path = "/tmp/bench_governor_phases_timeline.jsonl";
  }
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(kThreads);

  const ClassId hot = djvm.registry().register_class("Hot", 64);
  const ClassId bulky = djvm.registry().register_class("Bulky", 2048);
  std::vector<std::vector<ObjectId>> hot_pools(kPools), bulky_pools(kPools);
  for (std::uint32_t p = 0; p < kPools; ++p) {
    for (std::uint32_t i = 0; i < kHotPerPool; ++i) {
      hot_pools[p].push_back(djvm.gos().alloc(hot, static_cast<NodeId>(p % kNodes)));
    }
    for (std::uint32_t i = 0; i < kBulkyPerPool; ++i) {
      bulky_pools[p].push_back(
          djvm.gos().alloc(bulky, static_cast<NodeId>(p % kNodes)));
    }
  }

  switch (mode) {
    case RunMode::kGoverned: {
      djvm.plan().set_nominal_gap(hot, kStartGap);
      djvm.plan().set_nominal_gap(bulky, kStartGap);
      djvm.plan().resample_all();
      GovernorConfig gcfg;
      gcfg.overhead_budget = kBudget;
      gcfg.distance_threshold = kThreshold;
      // Phase B is inherently noisy at coarse rates: watch the sentinel at
      // only 2x the converged gap and demand a 4x-threshold spike so the
      // sentinel's own sampling noise cannot masquerade as a phase change.
      gcfg.sentinel_coarsen_shifts = 1;
      gcfg.phase_spike_factor = 4.0;
      djvm.governor().arm(gcfg);
      break;
    }
    case RunMode::kLegacy:
      djvm.plan().set_nominal_gap(hot, kStartGap);
      djvm.plan().set_nominal_gap(bulky, kStartGap);
      djvm.plan().resample_all();
      djvm.daemon().governor().arm(djvm::GovernorConfig::legacy(kThreshold));
      break;
    case RunMode::kOracle:
      break;  // full sampling (gap 1), governor disarmed
  }

  RunLog log;
  const auto wall_start = std::chrono::steady_clock::now();
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    const bool phase_b = epoch >= kPhaseEpochs;
    if (epoch == kPhaseEpochs) {
      log.hot_gap_at_flip = djvm.plan().nominal_gap(hot);
    }
    for (ThreadId t = 0; t < kThreads; ++t) {
      djvm.gos().set_phase(t, phase_b ? 2 : 1);
      std::uint64_t accesses = 0;
      if (!phase_b) {
        // Deterministic scan of the pair's bulky pool.
        for (ObjectId o : bulky_pools[t / 2]) {
          djvm.read(t, o);
          ++accesses;
        }
      } else {
        // Shifted pairing, random subset of the pair's hot pool.
        SplitMix64 rng(kSeed ^ (epoch * 0x9E3779B97F4A7C15ULL) ^
                       (t * 0x85EBCA6B0ULL));
        for (ObjectId o : hot_pools[((t + 1) % kThreads) / 2]) {
          if (rng.next_double() < kAccessProb) {
            djvm.read(t, o);
            ++accesses;
          }
        }
      }
      djvm.gos().clock(t).advance(accesses * kComputePerAccess);
    }
    djvm.barrier_all();

    const EpochResult e = djvm.run_governed_epoch();
    EpochLog el;
    el.overhead = e.overhead_fraction;
    el.distance = e.rel_distance.value_or(-1.0);
    el.action = e.action;
    el.hot_gap = djvm.plan().nominal_gap(hot);
    el.bulky_gap = djvm.plan().nominal_gap(bulky);
    log.epochs.push_back(el);
  }

  log.wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();
  if (with_export) {
    SnapshotWriter* w = djvm.snapshot_writer();
    w->flush();
    log.timeline_lines = w->appended();
    log.export_ok = w->all_ok() && w->submitted() == kEpochs;
  }
  log.final_tcm = djvm.daemon().latest();
  log.converged_flag = djvm.daemon().converged();
  log.rearms = djvm.governor().rearms();
  log.final_state = djvm.governor().state();
  log.hot_gap_final = djvm.plan().nominal_gap(hot);
  return log;
}

double mean_tail_distance(const RunLog& log, std::size_t tail) {
  double sum = 0.0;
  std::size_t n = 0;
  for (std::size_t i = log.epochs.size() - tail; i < log.epochs.size(); ++i) {
    if (log.epochs[i].distance >= 0.0) {
      sum += log.epochs[i].distance;
      ++n;
    }
  }
  return n ? sum / static_cast<double>(n) : 0.0;
}

}  // namespace

int main() {
  std::cout << "=== Governor under a mid-run phase change ===\n";
  std::cout << "(budget " << kBudget * 100 << "% of app time, distance threshold "
            << kThreshold << ", phase flip at epoch " << kPhaseEpochs << ")\n\n";

  const RunLog governed = run(RunMode::kGoverned);
  const RunLog legacy = run(RunMode::kLegacy);
  const RunLog oracle = run(RunMode::kOracle);
  // Identical governed run with per-epoch snapshot + timeline export: the
  // async writer must not stall the epoch loop.
  const RunLog exported = run(RunMode::kGoverned, /*with_export=*/true);

  TextTable t({"Epoch", "Phase", "Gov ovh%", "Gov dist", "Gov action",
               "Gov hot gap", "Leg dist", "Leg hot gap"});
  for (std::uint32_t i = 0; i < kEpochs; ++i) {
    const EpochLog& g = governed.epochs[i];
    const EpochLog& l = legacy.epochs[i];
    t.add_row({TextTable::cell(static_cast<std::uint64_t>(i)),
               i < kPhaseEpochs ? "A" : "B",
               TextTable::cell_pct(g.overhead, 3),
               g.distance < 0 ? TextTable::na() : TextTable::cell(g.distance, 3),
               action_name(g.action),
               TextTable::cell(static_cast<std::uint64_t>(g.hot_gap)),
               l.distance < 0 ? TextTable::na() : TextTable::cell(l.distance, 3),
               TextTable::cell(static_cast<std::uint64_t>(l.hot_gap))});
  }
  t.print(std::cout);

  // --- acceptance (a): overhead stays within 1.5x of the budget ------------
  double max_overhead = 0.0;
  for (const EpochLog& e : governed.epochs) {
    max_overhead = std::max(max_overhead, e.overhead);
  }
  std::cout << "\nGoverned max rolling overhead: " << max_overhead * 100
            << "% (budget " << kBudget * 100 << "%, bound "
            << kBudget * 150 << "%)\n";

  // --- acceptance (b): re-convergence after the flip ------------------------
  const double gov_tail = mean_tail_distance(governed, 4);
  const double leg_tail = mean_tail_distance(legacy, 4);
  const double gov_err = absolute_error(governed.final_tcm, oracle.final_tcm);
  const double leg_err = absolute_error(legacy.final_tcm, oracle.final_tcm);
  std::cout << "Mean TCM distance over last 4 epochs: governed " << gov_tail
            << ", legacy " << leg_tail << "\n";
  std::cout << "Final map error vs full-sampling oracle: governed " << gov_err
            << ", legacy " << leg_err << "\n";
  std::cout << "Legacy hot gap at flip " << legacy.hot_gap_at_flip
            << " -> final " << legacy.hot_gap_final
            << " (converged flag stayed "
            << (legacy.converged_flag ? "true" : "false") << ")\n\n";

  BenchReport report("governor_phases");
  report.metric("max_rolling_overhead", max_overhead, "min", 0.30);
  report.metric("budget", kBudget);
  report.metric("rearms", static_cast<double>(governed.rearms));
  report.metric("governed_tail_distance", gov_tail, "min", 0.35);
  report.metric("legacy_tail_distance", leg_tail);
  report.metric("governed_oracle_error", gov_err, "min", 0.35);
  report.metric("legacy_oracle_error", leg_err);
  // Best-of-3 walls: the epoch loop runs ~15 ms, so single-shot timings are
  // at the mercy of scheduler noise on shared CI runners.
  double bare_wall = governed.wall_seconds;
  double export_wall = exported.wall_seconds;
  for (int i = 0; i < 2; ++i) {
    bare_wall = std::min(bare_wall, run(RunMode::kGoverned).wall_seconds);
    export_wall = std::min(
        export_wall, run(RunMode::kGoverned, /*with_export=*/true).wall_seconds);
  }
  const double export_ratio = bare_wall > 0.0 ? export_wall / bare_wall : 1.0;
  std::cout << "Governed epoch-loop wall (best of 3): " << bare_wall * 1e3
            << " ms bare, " << export_wall * 1e3
            << " ms with per-epoch export (ratio " << export_ratio << ")\n\n";
  report.metric("export_on_wall_ratio", export_ratio, "min", 0.40);

  report.check("per-epoch export (snapshot + timeline) never stalls the epoch loop",
               export_ratio <= 1.5 && exported.export_ok, export_ratio, 1.5,
               "<=");
  report.check("export run queued one timeline line per epoch",
               exported.timeline_lines == kEpochs,
               static_cast<double>(exported.timeline_lines), kEpochs, "==");
  report.check("governed overhead stays within 1.5x of budget across both phases",
               max_overhead <= 1.5 * kBudget, max_overhead, 1.5 * kBudget, "<=");
  report.check("governor detected the phase change (1 re-arm)",
               governed.rearms == 1, static_cast<double>(governed.rearms), 1, "==");
  report.check("governor re-converged after the flip (sentinel state, settled map)",
               governed.final_state == GovernorState::kSentinel &&
                   gov_tail <= 1.5 * kThreshold,
               gov_tail, 1.5 * kThreshold, "<=");
  report.check("legacy one-way path froze at phase-A rates and did not re-converge",
               legacy.converged_flag &&
                   legacy.hot_gap_final == legacy.hot_gap_at_flip &&
                   leg_tail > 1.5 * kThreshold,
               leg_tail, 1.5 * kThreshold, ">");
  report.check("governed final map is closer to the full-sampling oracle than legacy",
               gov_err < leg_err, gov_err, leg_err, "<");
  return report.finish();  // nonzero fails the CI acceptance step
}
