// Table V (the paper's "Accuracy of sticky-set footprint" table) —
// class-level sticky-set footprint at full sampling vs the average
// difference when footprinting at 4X, per application (8 threads).
#include <iostream>
#include <map>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

std::vector<AppSpec> table5_apps() {
  return {sor_spec(1024, 1024, 5), barnes_hut_spec(4096, 3), water_spec(512, 3)};
}

/// Mean per-class footprint across all threads.
std::map<std::string, double> mean_footprints(Djvm& djvm) {
  std::map<std::string, double> by_class;
  const std::uint32_t threads = djvm.thread_count();
  for (ThreadId t = 0; t < threads; ++t) {
    const ClassFootprint fp = djvm.footprints().footprint(t);
    for (const auto& [cid, bytes] : fp.bytes) {
      by_class[djvm.registry().at(cid).name] += bytes / threads;
    }
  }
  return by_class;
}

std::map<std::string, double> run_footprints(std::uint32_t rate,
                                             const WorkloadFactory& make) {
  Config cfg;
  cfg.nodes = 8;
  cfg.threads = 8;
  cfg.footprinting = true;
  cfg.footprint_timer = FootprintTimerMode::kNonstop;
  cfg.sampling_rate_x = rate;
  cfg.footprint_rearm = sim_ms(5);
  RunOutput out = run_once(cfg, make);
  return mean_footprints(*out.djvm);
}

}  // namespace

int main() {
  std::cout << "=== Table V: Accuracy of sticky-set footprint ===\n";
  std::cout << "(8 threads; average per-class footprint, full vs 4X sampling)\n\n";

  for (const AppSpec& app : table5_apps()) {
    const auto full = run_footprints(0, app.make);
    const auto sampled = run_footprints(4, app.make);

    TextTable t({"Class", "Avg SS footprint @ full (bytes)", "Avg diff @ 4X (bytes)",
                 "Accuracy"});
    for (const auto& [name, full_bytes] : full) {
      if (full_bytes <= 0.0) continue;
      const double s = sampled.count(name) ? sampled.at(name) : 0.0;
      const double diff = std::abs(s - full_bytes);
      const double acc = 1.0 - diff / full_bytes;
      t.add_row({name, TextTable::cell(full_bytes, 0), TextTable::cell(diff, 0),
                 TextTable::cell_pct(std::max(0.0, acc))});
    }
    std::cout << "--- " << app.name << " ---\n";
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper reference: SOR perfect (its rows always sampled);\n"
               "Barnes-Hut and Water classes consistently > 92% accurate.\n";
  return 0;
}
