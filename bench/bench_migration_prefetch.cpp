// Ablation A4 — thread migration with vs without sticky-set prefetch, and
// validation of the cost model's fault prediction against the oracle.
//
// The paper's motivation (Section III): the indirect cost of a migration —
// remote object faults on the sticky set — dominates the direct context
// transfer, and prefetching the resolved sticky set absorbs it into one bulk
// message.
//
// The governed column drives the same mechanism through the closed loop
// instead of a manual engine call: shared mass homed at the partners' node
// pulls a thread off the node holding its private working set, the
// execution stage of run_governed_epoch migrates it (resolution prefetch +
// follow-the-thread homes rescue the private pool), and the post-migration
// replay of that pool must then run fault-free.
#include <algorithm>
#include <iostream>
#include <unordered_set>

#include "governor/governor.hpp"
#include "harness.hpp"
#include "migration/cost_model.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

struct Outcome {
  std::uint64_t post_faults = 0;
  std::uint64_t post_fault_bytes = 0;
  std::uint64_t prefetched = 0;
  SimTime sim_cost = 0;
  double predicted_faults = 0.0;
  std::uint64_t oracle_sticky = 0;
};

Outcome run(bool prefetch) {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 2;
  cfg.footprinting = true;
  cfg.footprint_timer = FootprintTimerMode::kNonstop;
  cfg.footprint_rearm = sim_us(500);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);

  SorParams p;
  p.rows = 256;
  p.cols = 2048;
  p.rounds = 2;
  SorWorkload w(p);
  w.build(djvm);

  // Oracle: record thread 0's accesses to detect the true sticky set of the
  // replayed window (accessed before AND after the migration point).
  std::unordered_set<ObjectId> before, after;
  bool migrated = false;
  djvm.add_access_observer([&](ThreadId t, ObjectId o, bool) {
    if (t != 0) return;
    (migrated ? after : before).insert(o);
  });

  w.run(djvm);

  Outcome out;
  const ClassFootprint fp = djvm.footprints().footprint(0);
  const MigrationCostModel model = djvm.cost_model();
  JavaStack& stack = djvm.stack(0);
  stack.push(1, 2);
  out.predicted_faults =
      static_cast<double>(model.estimate(stack.context_bytes(), fp).predicted_fault_count);

  // Migrate thread 0 mid-"interval" and replay its row block (the accesses a
  // migrant performs after moving).
  migrated = true;
  const auto& stats = djvm.gos().stats();
  if (prefetch) {
    // The matrix root is SOR's stack invariant: resolution walks root -> rows.
    std::vector<ObjectId> roots{w.matrix_root()};
    const MigrationOutcome mo = djvm.migration().migrate_with_resolution(
        0, 1, stack, roots, fp, cfg.landmark_tolerance);
    out.prefetched = mo.prefetched_objects;
    out.sim_cost = mo.sim_cost;
  } else {
    const MigrationOutcome mo = djvm.migration().migrate(0, 1, stack);
    out.sim_cost = mo.sim_cost;
  }
  const std::uint64_t faults0 = stats.object_faults;
  const std::uint64_t bytes0 = stats.fault_bytes;
  const SimTime clock0 = djvm.gos().clock(0).now();
  for (std::uint32_t r = 1; r <= 128; ++r) djvm.gos().read(0, w.row_object(r));
  out.post_faults = stats.object_faults - faults0;
  out.post_fault_bytes = stats.fault_bytes - bytes0;
  out.sim_cost += djvm.gos().clock(0).now() - clock0;
  stack.pop();

  for (ObjectId o : after) {
    if (before.contains(o)) ++out.oracle_sticky;
  }
  return out;
}

struct GovernedOutcome {
  std::uint64_t migrations = 0;       // executed by the loop
  std::uint64_t prefetched_objects = 0;
  std::uint64_t prefetched_bytes = 0;
  std::uint64_t homes_migrated = 0;
  std::uint64_t replay_faults = 0;    // pool re-read after a barrier, post-move
  bool co_located = false;
};

/// The execution stage performs the migration itself.  Thread 0 (node 0)
/// shares a pool homed at node 1 with TWO partners living there, so the
/// planner's pair mass at node 1 (2x the pool) beats the mover's modeled
/// cost (which charges its whole footprint) and pulls it *toward* the
/// shared mass — *away* from its private ref-chained working set, which
/// stays homed at node 0, carries no pair mass, and is exactly what the
/// sticky-set machinery must rescue: the stack invariant root resolves
/// it, prefetch ships it, and follow-the-thread home migration re-homes
/// it at the destination.
GovernedOutcome run_governed() {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 3;
  cfg.oal_transfer = OalTransfer::kSend;
  cfg.footprinting = true;
  cfg.footprint_timer = FootprintTimerMode::kNonstop;
  cfg.footprint_rearm = sim_us(500);
  cfg.stack_sampling = true;
  cfg.stack_sampling_gap = sim_us(20);
  cfg.balance.max_migrations_per_epoch = 1;
  cfg.balance.min_score = 1.0;
  cfg.balance.cooldown_epochs = 2;
  Djvm djvm(cfg);
  djvm.spawn_thread(0);  // the migrant
  djvm.spawn_thread(1);  // partners at the pool's home
  djvm.spawn_thread(1);

  // Shared pool homed at node 1, read by everyone: thread 0's pair mass at
  // node 1 is twice the pool bytes — enough to out-score its migration
  // cost, which the model charges at the full footprint.
  const ClassId shared_k = djvm.registry().register_class("SharedPool", 256);
  std::vector<ObjectId> shared;
  for (int i = 0; i < 64; ++i) shared.push_back(djvm.gos().alloc(shared_k, 1));
  // Thread 0's private working set, homed at node 0 and chained from one
  // root so resolution can walk it.  No other thread touches it, so the
  // planner's map never sees it — only the sticky-set machinery can keep
  // it close to the migrant.
  const ClassId priv_k = djvm.registry().register_class("PrivatePool", 256);
  std::vector<ObjectId> priv;
  for (int i = 0; i < 32; ++i) priv.push_back(djvm.gos().alloc(priv_k, 0));
  for (std::size_t i = 1; i < priv.size(); ++i) {
    djvm.heap().add_ref(priv[0], priv[i]);
  }
  // Thread 0 holds the private root in a live frame: the stack sampler
  // mines it as an invariant, which the execution stage feeds to resolution.
  JavaStack& stk0 = djvm.stack(0);
  stk0.push(1, 2);
  stk0.top().set_ref(0, priv[0]);
  djvm.stack(1).push(1, 2);
  djvm.stack(2).push(1, 2);

  GovernedOutcome out;
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (ThreadId t = 0; t < 3; ++t) {
      for (int r = 0; r < 4; ++r) {
        for (ObjectId o : shared) djvm.read(t, o);
        if (t == 0) {
          for (ObjectId o : priv) djvm.read(t, o);
        }
        // Advance inside the round so the stack sampler fires repeatedly
        // per epoch (invariants need min_rounds stable comparisons before
        // the first migration executes).
        djvm.gos().clock(t).advance(shared.size() * 4000);
      }
      // A home-side partner updates the shared pool: every epoch's barrier
      // invalidates thread 0's copies, keeping the pull current.
      if (t == 1) {
        for (ObjectId o : shared) djvm.write(t, o);
      }
    }
    djvm.barrier_all();
    const EpochResult res = djvm.run_governed_epoch();
    for (const auto& m : res.migrations) {
      if (!m.executed) continue;
      out.prefetched_bytes += m.prefetched_bytes;
      out.homes_migrated += m.homes_migrated;
    }
  }
  out.migrations = djvm.governor().migrations_executed();
  out.prefetched_objects = out.prefetched_bytes / 256;
  out.co_located = djvm.gos().thread_node(0) == djvm.gos().thread_node(1);

  // Replay thread 0's private set after a barrier: fault-free only if the
  // sticky homes followed the migrant to node 1.
  djvm.barrier_all();
  const std::uint64_t faults0 = djvm.gos().stats().object_faults;
  for (ObjectId o : priv) djvm.gos().read(0, o);
  out.replay_faults = djvm.gos().stats().object_faults - faults0;
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A4: migration cost with vs without SS prefetch ===\n";
  std::cout << "(SOR 256x2K, thread 0 migrates node 0 -> 1, replays its block)\n\n";

  const Outcome without = run(false);
  const Outcome with = run(true);

  TextTable t({"Variant", "Post-mig faults", "Fault bytes", "Prefetched objs",
               "Sim cost (ms)"});
  t.add_row({"No prefetch", TextTable::cell(without.post_faults),
             TextTable::cell(without.post_fault_bytes),
             TextTable::cell(std::uint64_t{0}),
             TextTable::cell(static_cast<double>(without.sim_cost) / 1e6, 2)});
  t.add_row({"Sticky-set prefetch", TextTable::cell(with.post_faults),
             TextTable::cell(with.post_fault_bytes),
             TextTable::cell(with.prefetched),
             TextTable::cell(static_cast<double>(with.sim_cost) / 1e6, 2)});
  t.print(std::cout);

  std::cout << "\nCost-model validation:\n";
  TextTable v({"Quantity", "Value"});
  v.add_row({"Predicted post-migration faults",
             TextTable::cell(without.predicted_faults, 0)});
  v.add_row({"Measured faults (no prefetch)", TextTable::cell(without.post_faults)});
  v.add_row({"Oracle sticky-set size (before & after)",
             TextTable::cell(without.oracle_sticky)});
  v.print(std::cout);

  const GovernedOutcome gov = run_governed();
  std::cout << "\nGoverned mode (execution stage performs the migration):\n";
  TextTable g({"Quantity", "Value"});
  g.add_row({"Migrations executed by the loop", TextTable::cell(gov.migrations)});
  g.add_row({"Prefetched objects", TextTable::cell(gov.prefetched_objects)});
  g.add_row({"Homes migrated (follow-the-thread)",
             TextTable::cell(gov.homes_migrated)});
  g.add_row({"Partners co-located", gov.co_located ? "yes" : "no"});
  g.add_row({"Post-move replay faults", TextTable::cell(gov.replay_faults)});
  g.print(std::cout);

  std::cout << "\nExpected shape: prefetch absorbs the resolved sticky set (faults\n"
               "drop by about the prefetched count) and lowers total simulated\n"
               "cost; the prediction lands within ~2x of the measured faults and\n"
               "is bounded by the oracle sticky-set size.  The residual gap is\n"
               "the footprint's conservatism: it only counts objects re-touched\n"
               "at distinct re-arm ticks, the paper's accuracy/cost trade-off.\n"
               "The governed column reaches the same fault-free replay through\n"
               "the closed loop alone.\n";

  BenchReport report("migration_prefetch");
  report.metric("post_faults_no_prefetch",
                static_cast<double>(without.post_faults));
  report.metric("post_faults_prefetch", static_cast<double>(with.post_faults),
                "min", 0.0, 2.0);
  report.metric("prefetched_objects", static_cast<double>(with.prefetched),
                "max", 0.10, 0.0);
  report.metric("governed_migrations", static_cast<double>(gov.migrations),
                "max", 0.0, 0.0);
  report.metric("governed_replay_faults",
                static_cast<double>(gov.replay_faults), "min", 0.0, 0.0);
  report.metric("governed_prefetched_objects",
                static_cast<double>(gov.prefetched_objects), "max", 0.10, 0.0);
  report.metric("governed_homes_migrated",
                static_cast<double>(gov.homes_migrated), "max", 0.10, 0.0);

  report.check("prefetch cuts post-migration faults below the bare migrate",
               with.post_faults < without.post_faults,
               static_cast<double>(with.post_faults),
               static_cast<double>(without.post_faults), "<");
  report.check("fault prediction lands within 2x of the measured faults",
               without.predicted_faults <=
                   2.0 * static_cast<double>(without.post_faults) + 1.0,
               without.predicted_faults,
               2.0 * static_cast<double>(without.post_faults) + 1.0, "<=");
  report.check("the governed loop executed the migration itself",
               gov.migrations >= 1, static_cast<double>(gov.migrations), 1.0,
               ">=");
  report.check("resolution prefetched the migrant's private pool",
               gov.prefetched_objects >= 1,
               static_cast<double>(gov.prefetched_objects), 1.0, ">=");
  report.check("follow-homes re-homed the private pool at the destination",
               gov.homes_migrated >= 1,
               static_cast<double>(gov.homes_migrated), 1.0, ">=");
  report.check("the governed loop co-located the partner pair",
               gov.co_located, gov.co_located ? 1.0 : 0.0, 1.0, ">=");
  report.check("the governed replay runs fault-free",
               gov.replay_faults == 0, static_cast<double>(gov.replay_faults),
               0.0, "<=");
  return report.finish();  // nonzero fails the CI acceptance step
}
