// Ablation A4 — thread migration with vs without sticky-set prefetch, and
// validation of the cost model's fault prediction against the oracle.
//
// The paper's motivation (Section III): the indirect cost of a migration —
// remote object faults on the sticky set — dominates the direct context
// transfer, and prefetching the resolved sticky set absorbs it into one bulk
// message.
#include <iostream>
#include <unordered_set>

#include "harness.hpp"
#include "migration/cost_model.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

struct Outcome {
  std::uint64_t post_faults = 0;
  std::uint64_t post_fault_bytes = 0;
  std::uint64_t prefetched = 0;
  SimTime sim_cost = 0;
  double predicted_faults = 0.0;
  std::uint64_t oracle_sticky = 0;
};

Outcome run(bool prefetch) {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 2;
  cfg.footprinting = true;
  cfg.footprint_timer = FootprintTimerMode::kNonstop;
  cfg.footprint_rearm = sim_us(500);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);

  SorParams p;
  p.rows = 256;
  p.cols = 2048;
  p.rounds = 2;
  SorWorkload w(p);
  w.build(djvm);

  // Oracle: record thread 0's accesses to detect the true sticky set of the
  // replayed window (accessed before AND after the migration point).
  std::unordered_set<ObjectId> before, after;
  bool migrated = false;
  djvm.add_access_observer([&](ThreadId t, ObjectId o, bool) {
    if (t != 0) return;
    (migrated ? after : before).insert(o);
  });

  w.run(djvm);

  Outcome out;
  const ClassFootprint fp = djvm.footprints().footprint(0);
  const MigrationCostModel model = djvm.cost_model();
  JavaStack& stack = djvm.stack(0);
  stack.push(1, 2);
  out.predicted_faults =
      static_cast<double>(model.estimate(stack.context_bytes(), fp).predicted_fault_count);

  // Migrate thread 0 mid-"interval" and replay its row block (the accesses a
  // migrant performs after moving).
  migrated = true;
  const auto& stats = djvm.gos().stats();
  if (prefetch) {
    // The matrix root is SOR's stack invariant: resolution walks root -> rows.
    std::vector<ObjectId> roots{w.matrix_root()};
    const MigrationOutcome mo = djvm.migration().migrate_with_resolution(
        0, 1, stack, roots, fp, cfg.landmark_tolerance);
    out.prefetched = mo.prefetched_objects;
    out.sim_cost = mo.sim_cost;
  } else {
    const MigrationOutcome mo = djvm.migration().migrate(0, 1, stack);
    out.sim_cost = mo.sim_cost;
  }
  const std::uint64_t faults0 = stats.object_faults;
  const std::uint64_t bytes0 = stats.fault_bytes;
  const SimTime clock0 = djvm.gos().clock(0).now();
  for (std::uint32_t r = 1; r <= 128; ++r) djvm.gos().read(0, w.row_object(r));
  out.post_faults = stats.object_faults - faults0;
  out.post_fault_bytes = stats.fault_bytes - bytes0;
  out.sim_cost += djvm.gos().clock(0).now() - clock0;
  stack.pop();

  for (ObjectId o : after) {
    if (before.contains(o)) ++out.oracle_sticky;
  }
  return out;
}

}  // namespace

int main() {
  std::cout << "=== Ablation A4: migration cost with vs without SS prefetch ===\n";
  std::cout << "(SOR 256x2K, thread 0 migrates node 0 -> 1, replays its block)\n\n";

  const Outcome without = run(false);
  const Outcome with = run(true);

  TextTable t({"Variant", "Post-mig faults", "Fault bytes", "Prefetched objs",
               "Sim cost (ms)"});
  t.add_row({"No prefetch", TextTable::cell(without.post_faults),
             TextTable::cell(without.post_fault_bytes),
             TextTable::cell(std::uint64_t{0}),
             TextTable::cell(static_cast<double>(without.sim_cost) / 1e6, 2)});
  t.add_row({"Sticky-set prefetch", TextTable::cell(with.post_faults),
             TextTable::cell(with.post_fault_bytes),
             TextTable::cell(with.prefetched),
             TextTable::cell(static_cast<double>(with.sim_cost) / 1e6, 2)});
  t.print(std::cout);

  std::cout << "\nCost-model validation:\n";
  TextTable v({"Quantity", "Value"});
  v.add_row({"Predicted post-migration faults",
             TextTable::cell(without.predicted_faults, 0)});
  v.add_row({"Measured faults (no prefetch)", TextTable::cell(without.post_faults)});
  v.add_row({"Oracle sticky-set size (before & after)",
             TextTable::cell(without.oracle_sticky)});
  v.print(std::cout);

  std::cout << "\nExpected shape: prefetch absorbs the resolved sticky set (faults\n"
               "drop by about the prefetched count) and lowers total simulated\n"
               "cost; the prediction lands within ~2x of the measured faults and\n"
               "is bounded by the oracle sticky-set size.  The residual gap is\n"
               "the footprint's conservatism: it only counts objects re-touched\n"
               "at distinct re-arm ticks, the paper's accuracy/cost trade-off.\n";
  return 0;
}
