// Ablation A6 — google-benchmark micro-costs of the hot paths the overhead
// tables aggregate: the inlined access check (fast path), the correlation
// fault (OAL logging), sampling-state queries, and stack-sample primitives.
//
// Beyond the console table, the run emits BENCH_micro_access_check.json so
// the CI regression gate can hold the fast-path ns/op against the checked-in
// baseline (lower_is_better latency metrics with cross-runner slack).
#include <benchmark/benchmark.h>

#include <limits>
#include <map>
#include <memory>
#include <string>

#include "common/primes.hpp"
#include "dsm/gos.hpp"
#include "harness.hpp"
#include "stackprof/stack_sampler.hpp"

namespace djvm {
namespace {

struct Fixture {
  Config cfg;
  KlassRegistry reg;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SamplingPlan> plan;
  std::unique_ptr<Network> net;
  std::unique_ptr<Gos> gos;
  ClassId klass = kInvalidClass;
  std::vector<ObjectId> objs;

  explicit Fixture(OalTransfer tracking, std::uint32_t rate = 0) {
    cfg.nodes = 2;
    cfg.threads = 2;
    cfg.oal_transfer = tracking;
    heap = std::make_unique<Heap>(reg, cfg.nodes);
    plan = std::make_unique<SamplingPlan>(*heap);
    net = std::make_unique<Network>(cfg.costs);
    gos = std::make_unique<Gos>(*heap, *net, *plan, cfg);
    gos->spawn_thread(0);
    gos->spawn_thread(1);
    klass = reg.register_class("X", 64);
    plan->set_rate(klass, rate);
    for (int i = 0; i < 4096; ++i) objs.push_back(gos->alloc(klass, 0));
    // Warm the cache of thread 0 (home accesses) so reads are pure fast path.
    for (ObjectId o : objs) gos->read(0, o);
  }
};

void BM_AccessFastPath_NoTracking(benchmark::State& state) {
  Fixture f(OalTransfer::kDisabled);
  std::size_t i = 0;
  for (auto _ : state) {
    f.gos->read(0, f.objs[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessFastPath_NoTracking);

void BM_AccessFastPath_TrackingArmed(benchmark::State& state) {
  // Tracking on, but each object already logged this interval: the check is
  // the at-most-once stamp comparison.
  Fixture f(OalTransfer::kLocalOnly);
  for (ObjectId o : f.objs) f.gos->read(0, o);  // log everything once
  std::size_t i = 0;
  for (auto _ : state) {
    f.gos->read(0, f.objs[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AccessFastPath_TrackingArmed);

void BM_CorrelationFault_LogService(benchmark::State& state) {
  // Fresh interval per batch so every access takes the logging slow path.
  Fixture f(OalTransfer::kLocalOnly);
  std::size_t i = 0;
  for (auto _ : state) {
    if ((i & 4095) == 0) {
      state.PauseTiming();
      f.gos->barrier_all();  // opens a new interval, re-arming the overlay
      state.ResumeTiming();
    }
    f.gos->read(0, f.objs[i++ & 4095]);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_CorrelationFault_LogService);

void BM_SamplingQuery(benchmark::State& state) {
  Fixture f(OalTransfer::kDisabled, 4);
  std::size_t i = 0;
  std::uint64_t acc = 0;
  for (auto _ : state) {
    acc += f.plan->is_sampled(f.objs[i++ & 4095]);
  }
  benchmark::DoNotOptimize(acc);
}
BENCHMARK(BM_SamplingQuery);

void BM_ResamplePass(benchmark::State& state) {
  Fixture f(OalTransfer::kDisabled, 4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(f.plan->resample_all());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) * 4096);
}
BENCHMARK(BM_ResamplePass);

void BM_NearestPrime(benchmark::State& state) {
  std::uint64_t n = 2;
  for (auto _ : state) {
    benchmark::DoNotOptimize(nearest_prime(n));
    n = (n * 2) % 100000 + 2;
  }
}
BENCHMARK(BM_NearestPrime);

void BM_StackSample_LazyDeepStack(benchmark::State& state) {
  KlassRegistry reg;
  Heap heap(reg, 1);
  const ClassId klass = reg.register_class("X", 16);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 64; ++i) objs.push_back(heap.alloc(klass, 0));
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack stack;
  for (int d = 0; d < 32; ++d) {
    stack.push(static_cast<MethodId>(d), 8);
    stack.top().set_ref(0, objs[static_cast<std::size_t>(d)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(stack));
  }
}
BENCHMARK(BM_StackSample_LazyDeepStack);

void BM_StackSample_ImmediateDeepStack(benchmark::State& state) {
  KlassRegistry reg;
  Heap heap(reg, 1);
  const ClassId klass = reg.register_class("X", 16);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 64; ++i) objs.push_back(heap.alloc(klass, 0));
  StackSampler sampler(heap, ExtractionMode::kImmediate, 2);
  JavaStack stack;
  for (int d = 0; d < 32; ++d) {
    stack.push(static_cast<MethodId>(d), 8);
    stack.top().set_ref(0, objs[static_cast<std::size_t>(d)]);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(sampler.sample(stack));
  }
}
BENCHMARK(BM_StackSample_ImmediateDeepStack);

/// Console output as usual, plus a capture of every benchmark's per-iteration
/// CPU time (ns) for the machine-readable report.
class CaptureReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& r : runs) {
      ns_[r.run_name.str()] = r.GetAdjustedCPUTime();
    }
    ConsoleReporter::ReportRuns(runs);
  }

  [[nodiscard]] bool has(const std::string& name) const {
    return ns_.count(name) != 0;
  }
  [[nodiscard]] double ns(const std::string& name) const {
    const auto it = ns_.find(name);
    return it != ns_.end() ? it->second
                           : std::numeric_limits<double>::quiet_NaN();
  }

 private:
  std::map<std::string, double> ns_;
};

}  // namespace
}  // namespace djvm

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  djvm::CaptureReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);

  djvm::bench::BenchReport report("micro_access_check");
  const double fast_none = reporter.ns("BM_AccessFastPath_NoTracking");
  const double fast_armed = reporter.ns("BM_AccessFastPath_TrackingArmed");
  const double query = reporter.ns("BM_SamplingQuery");

  // Raw ns/op gates carry +35% slack: CI runners differ from the machine
  // the baseline was recorded on; the ratio check below is hardware-free.
  report.latency_metric("fast_path_no_tracking_ns", fast_none, 0.35);
  report.latency_metric("fast_path_tracking_armed_ns", fast_armed, 0.35);
  report.latency_metric("sampling_query_ns", query, 0.35);
  report.metric("log_service_ns", reporter.ns("BM_CorrelationFault_LogService"));
  report.metric("resample_pass_ns", reporter.ns("BM_ResamplePass"));
  report.metric("stack_sample_lazy_ns",
                reporter.ns("BM_StackSample_LazyDeepStack"));
  const double armed_ratio = fast_none > 0.0 ? fast_armed / fast_none : 0.0;
  report.metric("armed_over_untracked_ratio", armed_ratio);

  const bool captured_all = reporter.has("BM_AccessFastPath_NoTracking") &&
                            reporter.has("BM_AccessFastPath_TrackingArmed") &&
                            reporter.has("BM_SamplingQuery");
  report.check("captured the gated fast-path benchmarks", captured_all,
               captured_all ? 1.0 : 0.0, 1.0, "==");
  // The armed check is one merged-bookkeeping stamp compare on top of the
  // untracked path; 3x is generous headroom on any hardware.
  report.check("tracking-armed fast path stays within 3x of untracked",
               armed_ratio > 0.0 && armed_ratio <= 3.0, armed_ratio, 3.0,
               "<=");
  return report.finish();
}
