// Influence-weighted vs bytes-per-entry back-off scoring (ISSUE 5 acceptance).
//
// The workload has three sharing structures with deliberately inverted
// benefit/cost signals:
//   Noise  — big (1 KB) per-pair pools shared only *within* each co-located
//            thread pair: huge bytes-per-entry score, huge entry cost, and
//            zero placement influence (its cells never cross the partition
//            cut; the balancer would never act on them);
//   Signal — small (64 B) per-group pools shared across the node boundary by
//            the thread groups the balancer *should* co-locate: the lowest
//            bytes-per-entry score in the run, but ~2/3 of its mass sits on
//            the partition cut;
//   Halo   — one small pool everybody reads (nonzero cut under any
//            placement, and the tie-breaking mass that misgroups threads
//            once Signal's cells vanish).
//
// The application's compute per access decays each epoch, so profiling
// pressure rises steadily and the governor must keep shedding entries.
// Bytes-per-entry scoring doubles Signal's gap first on every over-budget
// epoch (it always scores worst) until Signal's small pools carry zero
// sampled objects — the map the balancer consumes loses exactly the cells
// that determined the good placement.  Influence-weighted scoring sheds
// Noise instead (floor x bytes-per-entry, since its influence is zero) and
// holds Signal's cells, at the same overhead budget.
//
// Acceptance: placements derived from each governed run's final map are
// evaluated against the full-sampling oracle map; influence scoring keeps
// remote_shared_bytes within 2% of the oracle placement while bytes-per-
// entry scoring measurably degrades it, at equal (band-bounded) overhead.
#include <algorithm>
#include <cmath>
#include <iostream>

#include "balance/load_balancer.hpp"
#include "governor/governor.hpp"
#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kThreads = 16;  // pair P_k = {2k, 2k+1}, node k/2
constexpr std::uint32_t kPairs = kThreads / 2;
constexpr std::uint32_t kGroups = 4;    // scrambled pair-of-pairs, cross-node
constexpr std::uint32_t kEpochs = 24;
constexpr std::uint32_t kTail = 4;

constexpr std::uint32_t kNoiseCount = 3072;   // per pair pool, 1 KB objects
constexpr std::uint32_t kSignalCount = 128;   // per group pool, 64 B objects
constexpr std::uint32_t kHaloCount = 12;      // one pool, 512 B objects

constexpr std::uint32_t kNoiseGap0 = 1;
constexpr std::uint32_t kSignalGap0 = 8;
constexpr std::uint32_t kHaloGap0 = 1;

constexpr double kBudget = 0.02;
constexpr double kHysteresis = 0.25;
constexpr double kCeiling = kBudget * (1.0 + kHysteresis);
constexpr std::uint32_t kMaxGap = 2048;

/// Per-access app compute at epoch 0, decaying by kDecay each epoch down to
/// a floor: the app's compute per byte shrinks as the run scales, so
/// profiling pressure rises and the governor must keep picking back-off
/// victims — but the endgame stays satisfiable (the floor is reachable with
/// the low-influence classes shed and the signal class intact).
constexpr SimTime kCompute0 = 18000;
constexpr double kDecay = 0.82;
constexpr double kComputeFloorFactor = 0.05;  // decay stops at 5% of epoch 0

/// Signal pools span kGroups * kSignalCount = 512 sequence numbers (class
/// sequences start at 1): a nominal gap of 512 (real 509) leaves a single
/// sampled object, and 1024 (real 1021) none — the group cells vanish.
constexpr std::uint32_t kSignalDeadGap = 512;
constexpr std::uint32_t kSignalAliveGap = 64;

enum class RunMode { kInfluence, kBytesPerEntry, kOracle };

NodeId node_of_thread(ThreadId t) { return static_cast<NodeId>(t / 4); }

/// Pair k's signal group: G0 = {P0,P5}, G1 = {P1,P7}, G2 = {P2,P4},
/// G3 = {P3,P6} — a scrambled pairing chosen so the balancer's
/// index-ordered first-fit fallback (all that remains once the signal
/// cells vanish from the map) reconstructs a different, worse grouping no
/// matter which single group pool survives at a coarse gap.
constexpr std::uint32_t kGroupOfPair[kPairs] = {0, 1, 2, 3, 2, 0, 3, 1};
std::uint32_t group_of_pair(std::uint32_t pair) { return kGroupOfPair[pair]; }

struct RunLog {
  SquareMatrix final_tcm;
  std::vector<double> frac;          // cluster rolling fraction per epoch
  std::vector<std::uint32_t> signal_gaps;  // per epoch
  std::vector<std::uint32_t> noise_gaps;
  std::uint32_t noise_gap = 0;
  std::uint32_t signal_gap = 0;
  std::uint32_t halo_gap = 0;
  double signal_influence = 0.0;     // governor's decayed share at the end
  double noise_influence = 0.0;
};

RunLog run(RunMode mode) {
  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  Djvm djvm(cfg);
  for (ThreadId t = 0; t < kThreads; ++t) djvm.spawn_thread(node_of_thread(t));

  const ClassId noise = djvm.registry().register_class("Noise", 1024);
  const ClassId signal = djvm.registry().register_class("Signal", 64);
  const ClassId halo = djvm.registry().register_class("Halo", 512);

  // Noise pools: one per pair, homed at the pair's node (cells never cross).
  std::vector<std::vector<ObjectId>> noise_pools(kPairs);
  for (std::uint32_t p = 0; p < kPairs; ++p) {
    for (std::uint32_t i = 0; i < kNoiseCount; ++i) {
      noise_pools[p].push_back(
          djvm.gos().alloc(noise, node_of_thread(static_cast<ThreadId>(2 * p))));
    }
  }
  // Signal pools: one per group, homed at the group's first pair's node —
  // the group's far half only caches them (home-affinity mass).
  std::vector<std::vector<ObjectId>> signal_pools(kGroups);
  for (std::uint32_t g = 0; g < kGroups; ++g) {
    for (std::uint32_t i = 0; i < kSignalCount; ++i) {
      signal_pools[g].push_back(
          djvm.gos().alloc(signal, node_of_thread(static_cast<ThreadId>(2 * g))));
    }
  }
  std::vector<ObjectId> halo_pool;
  for (std::uint32_t i = 0; i < kHaloCount; ++i) {
    halo_pool.push_back(djvm.gos().alloc(halo, 0));
  }

  if (mode != RunMode::kOracle) {
    djvm.plan().set_nominal_gap(noise, kNoiseGap0);
    djvm.plan().set_nominal_gap(signal, kSignalGap0);
    djvm.plan().set_nominal_gap(halo, kHaloGap0);
    djvm.plan().resample_all();
    GovernorConfig gcfg;
    gcfg.overhead_budget = kBudget;
    gcfg.hysteresis = kHysteresis;
    gcfg.per_node = false;
    gcfg.meter_window = 2;
    gcfg.max_nominal_gap = kMaxGap;
    // The workload is structurally steady (only its compute density decays):
    // watch the sentinel at the converged gaps, no extra coarsening.
    gcfg.sentinel_coarsen_shifts = 0;
    gcfg.scoring = mode == RunMode::kInfluence
                       ? BackoffScoring::kInfluenceWeighted
                       : BackoffScoring::kBytesPerEntry;
    djvm.governor().arm(gcfg);
  }

  RunLog log;
  double compute = static_cast<double>(kCompute0);
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (ThreadId t = 0; t < kThreads; ++t) {
      std::uint64_t accesses = 0;
      for (ObjectId o : noise_pools[t / 2]) {
        djvm.read(t, o);
        ++accesses;
      }
      const std::uint32_t group = group_of_pair(t / 2);
      for (ObjectId o : signal_pools[group]) {
        djvm.read(t, o);
        ++accesses;
      }
      for (ObjectId o : halo_pool) {
        djvm.read(t, o);
        ++accesses;
      }
      djvm.gos().clock(t).advance(
          static_cast<SimTime>(static_cast<double>(accesses) * compute));
    }
    djvm.barrier_all();
    djvm.run_governed_epoch();
    log.frac.push_back(djvm.governor().meter().rolling_fraction());
    log.signal_gaps.push_back(djvm.plan().nominal_gap(signal));
    log.noise_gaps.push_back(djvm.plan().nominal_gap(noise));
    compute = std::max(compute * kDecay,
                       static_cast<double>(kCompute0) * kComputeFloorFactor);
  }

  log.final_tcm = djvm.daemon().latest();
  log.noise_gap = djvm.plan().nominal_gap(noise);
  log.signal_gap = djvm.plan().nominal_gap(signal);
  log.halo_gap = djvm.plan().nominal_gap(halo);
  log.signal_influence = djvm.governor().influence_share(signal);
  log.noise_influence = djvm.governor().influence_share(noise);
  return log;
}

double tail_max(const std::vector<double>& v, std::size_t tail) {
  double m = 0.0;
  for (std::size_t i = v.size() - tail; i < v.size(); ++i) m = std::max(m, v[i]);
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Influence-weighted vs bytes-per-entry back-off scoring ===\n";
  std::cout << "(" << kThreads << " threads on " << kNodes
            << " nodes; budget " << kBudget * 100 << "% with band ceiling "
            << kCeiling * 100 << "%, compute density decaying x" << kDecay
            << " per epoch over " << kEpochs << " epochs)\n\n";

  const RunLog influence = run(RunMode::kInfluence);
  const RunLog bpe = run(RunMode::kBytesPerEntry);
  const RunLog oracle = run(RunMode::kOracle);

  TextTable t({"Epoch", "Infl overhead%", "Infl noise/signal gap",
               "B/E overhead%", "B/E noise/signal gap"});
  for (std::uint32_t i = 0; i < kEpochs; ++i) {
    t.add_row({TextTable::cell(static_cast<std::uint64_t>(i)),
               TextTable::cell_pct(influence.frac[i], 3),
               TextTable::cell(std::uint64_t{influence.noise_gaps[i]}) + "/" +
                   TextTable::cell(std::uint64_t{influence.signal_gaps[i]}),
               TextTable::cell_pct(bpe.frac[i], 3),
               TextTable::cell(std::uint64_t{bpe.noise_gaps[i]}) + "/" +
                   TextTable::cell(std::uint64_t{bpe.signal_gaps[i]})});
  }
  t.print(std::cout);

  // Evaluate the placement each run's final map induces against the
  // full-sampling oracle map: cut quality is what the balancer cares about.
  const SquareMatrix& truth = oracle.final_tcm;
  const Placement p_oracle = correlation_placement(truth, kNodes);
  const Placement p_influence = correlation_placement(influence.final_tcm, kNodes);
  const Placement p_bpe = correlation_placement(bpe.final_tcm, kNodes);
  const double cut_oracle = remote_shared_bytes(truth, p_oracle);
  const double cut_influence = remote_shared_bytes(truth, p_influence);
  const double cut_bpe = remote_shared_bytes(truth, p_bpe);
  const double ratio_influence = cut_oracle > 0 ? cut_influence / cut_oracle : 0;
  const double ratio_bpe = cut_oracle > 0 ? cut_bpe / cut_oracle : 0;

  const double tail_influence = tail_max(influence.frac, kTail);
  const double tail_bpe = tail_max(bpe.frac, kTail);

  const auto placement_str = [](const Placement& p) {
    std::string s;
    for (NodeId n : p.node_of_thread) s += static_cast<char>('0' + n % 10);
    return s;
  };
  std::cout << "\nPlacement cut (remote shared bytes on the oracle map):\n"
            << "  oracle placement      " << cut_oracle << "  ["
            << placement_str(p_oracle) << "]\n"
            << "  influence scoring     " << cut_influence << " (x"
            << ratio_influence << ")  [" << placement_str(p_influence) << "]\n"
            << "  bytes/entry scoring   " << cut_bpe << " (x" << ratio_bpe
            << ")  [" << placement_str(p_bpe) << "]\n";
  std::cout << "Final gaps: influence run noise " << influence.noise_gap
            << " signal " << influence.signal_gap << " halo "
            << influence.halo_gap << "; bytes/entry run noise "
            << bpe.noise_gap << " signal " << bpe.signal_gap << " halo "
            << bpe.halo_gap << "\n";
  std::cout << "Governor influence shares (influence run): signal "
            << influence.signal_influence << ", noise "
            << influence.noise_influence << "\n";
  std::cout << "Tail overhead: influence " << tail_influence * 100
            << "%, bytes/entry " << tail_bpe * 100 << "% (ceiling "
            << kCeiling * 100 << "%)\n\n";

  BenchReport report("governor_influence");
  report.metric("cut_ratio_influence", ratio_influence, "min", 0.0, 0.02);
  report.metric("cut_ratio_bytes_per_entry", ratio_bpe);
  report.metric("cut_degradation_bpe_over_influence",
                ratio_influence > 0 ? ratio_bpe / ratio_influence : 0, "max",
                0.10, 0.0);
  report.metric("signal_gap_influence",
                static_cast<double>(influence.signal_gap), "min", 0.0, 0.0);
  report.metric("signal_gap_bytes_per_entry",
                static_cast<double>(bpe.signal_gap));
  report.metric("noise_gap_influence", static_cast<double>(influence.noise_gap));
  report.metric("tail_overhead_influence", tail_influence, "min", 0.30, 0.002);
  report.metric("tail_overhead_bytes_per_entry", tail_bpe, "min", 0.30, 0.002);
  report.metric("signal_influence_share", influence.signal_influence, "max",
                0.30, 0.0);

  report.check(
      "influence scoring holds the cut within 2% of the full-sampling oracle",
      ratio_influence <= 1.02, ratio_influence, 1.02, "<=");
  report.check(
      "bytes-per-entry scoring measurably degrades the cut at equal overhead",
      ratio_bpe >= 1.10, ratio_bpe, 1.10, ">=");
  report.check("influence scoring kept the signal class observable",
               influence.signal_gap <= kSignalAliveGap,
               static_cast<double>(influence.signal_gap), kSignalAliveGap,
               "<=");
  report.check("bytes-per-entry scoring starved the signal class",
               bpe.signal_gap >= kSignalDeadGap,
               static_cast<double>(bpe.signal_gap), kSignalDeadGap, ">=");
  report.check("influence scoring shed the zero-influence noise instead",
               influence.noise_gap > influence.signal_gap,
               static_cast<double>(influence.noise_gap),
               static_cast<double>(influence.signal_gap), ">");
  report.check("influence run stays inside the overhead band",
               tail_influence <= kCeiling * 1.05, tail_influence,
               kCeiling * 1.05, "<=");
  report.check("bytes-per-entry run pays no less overhead",
               tail_bpe <= kCeiling * 1.05, tail_bpe, kCeiling * 1.05, "<=");
  report.check("governor learned signal's influence exceeds noise's",
               influence.signal_influence > influence.noise_influence,
               influence.signal_influence, influence.noise_influence, ">");
  return report.finish();  // nonzero fails the CI acceptance step
}
