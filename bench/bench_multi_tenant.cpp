// Multi-tenant request serving under one cluster overhead ceiling (PR 10
// acceptance).
//
// Three tenant DJVMs share a 0.2% global profiling budget.  Tenant 0 is a
// hot request-serving tenant — Zipf-skewed session traffic whose full-rate
// profiling costs ~0.12% of its application time, nearly twice the 0.067%
// even split.  Tenants 1 and 2 are compute-quiet: plenty of application
// time, almost no profiled accesses.
//
// Three runs over identical hot-tenant traffic:
//   arbitrated — the ClusterCoordinator's BudgetArbiter re-divides the
//                global budget every epoch: the quiet tenants lend down to
//                their starvation floor and the hot tenant borrows enough
//                headroom to keep sampling at full rate;
//   even-split — each tenant's governor is pinned to the static fair share
//                (global/3).  The hot tenant blows its slice, the governor
//                coarsens its gaps, and the correlation map pays for it;
//   oracle     — the hot tenant ungoverned at full sampling: the accuracy
//                reference.
//
// Acceptance: the hot tenant borrows above its fair share in the steady
// tail while every grant stays at or above the floor and the granted total
// never exceeds the global budget; both governed runs hold the cluster
// ceiling (equal total overhead), but the arbitrated hot map lands much
// closer to the oracle than the even-split map; and a quiet single-tenant
// run through the tenant API reproduces the legacy entry point bit-for-bit.
#include <algorithm>
#include <iostream>
#include <limits>

#include "apps/request_serving.hpp"
#include "cluster/coordinator.hpp"
#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kTenants = 3;
constexpr std::uint32_t kEpochs = 24;
constexpr std::uint32_t kTail = 6;
constexpr std::uint32_t kThreads = 4;
constexpr double kGlobalBudget = 2e-3;
constexpr double kFairShare = kGlobalBudget / kTenants;
constexpr double kHysteresis = 0.25;  // the governor's default dead band

Config tenant_config(TenantId id) {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  cfg.governor.enabled = true;
  cfg.tenant.id = id;
  return cfg;
}

RequestServingParams hot_params() {
  RequestServingParams p;
  p.hot_objects = 256;
  p.sessions_per_epoch = 128;
  p.session_ops = 16;
  p.phase_period = 16;  // one diurnal shift inside the run
  return p;
}

/// One compute-quiet epoch: application time advances, almost nothing is
/// profiled, so the tenant's overhead fraction sits far under its share.
void quiet_epoch(Djvm& vm) {
  for (ThreadId t = 0; t < vm.thread_count(); ++t) {
    vm.gos().clock(t).advance(sim_ms(5));
  }
  vm.barrier_all();
}

struct RunLog {
  std::vector<double> hot_frac;      ///< hot tenant rolling fraction per epoch
  std::vector<double> hot_grant;     ///< hot tenant granted budget per epoch
  std::vector<double> cluster_frac;  ///< shared-meter aggregate per epoch
  SquareMatrix hot_map;
  std::uint32_t borrow_rounds = 0;  ///< rounds the hot grant beat fair share
  double min_grant = std::numeric_limits<double>::infinity();
  double max_granted_total = 0.0;
};

RunLog run_arbitrated() {
  ArbiterKnobs knobs;
  knobs.global_budget = kGlobalBudget;
  ClusterCoordinator cluster(knobs);
  for (TenantId id = 0; id < kTenants; ++id) {
    TenantContext t = cluster.add_tenant(tenant_config(id));
    t.vm().spawn_threads_round_robin(kThreads);
  }
  RequestServingApp app(hot_params());
  app.build(cluster.vm(0));

  RunLog log;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    app.serve_epoch(cluster.vm(0));
    quiet_epoch(cluster.vm(1));
    quiet_epoch(cluster.vm(2));
    const ClusterCoordinator::ClusterEpoch round = cluster.run_epoch();
    log.hot_frac.push_back(cluster.meter().rolling_fraction(0));
    log.hot_grant.push_back(round.arbitration.leases[0].granted_budget);
    log.cluster_frac.push_back(round.cluster_overhead);
    if (round.arbitration.leases[0].granted_budget > kFairShare + 1e-12) {
      ++log.borrow_rounds;
    }
    for (const auto& lease : round.arbitration.leases) {
      log.min_grant = std::min(log.min_grant, lease.granted_budget);
    }
    log.max_granted_total =
        std::max(log.max_granted_total, round.arbitration.granted_total);
  }
  log.hot_map = cluster.vm(0).daemon().build_full();
  return log;
}

RunLog run_even_split() {
  std::vector<std::unique_ptr<Djvm>> vms;
  for (TenantId id = 0; id < kTenants; ++id) {
    Config cfg = tenant_config(id);
    cfg.governor.budget = kFairShare;  // static fair split, no arbitration
    vms.push_back(std::make_unique<Djvm>(cfg));
    vms.back()->spawn_threads_round_robin(kThreads);
  }
  RequestServingApp app(hot_params());
  app.build(*vms[0]);
  OverheadMeter meter({}, 4);  // same window as the coordinator's

  RunLog log;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    app.serve_epoch(*vms[0]);
    quiet_epoch(*vms[1]);
    quiet_epoch(*vms[2]);
    for (auto& vm : vms) {
      const EpochResult r = vm->run_epoch(EpochRequest{});
      meter.record(r.sample);
    }
    log.hot_frac.push_back(meter.rolling_fraction(0));
    log.hot_grant.push_back(kFairShare);
    log.cluster_frac.push_back(meter.rolling_fraction());
  }
  log.hot_map = vms[0]->daemon().build_full();
  return log;
}

SquareMatrix run_oracle() {
  Config cfg = tenant_config(0);
  cfg.governor.enabled = false;  // no back-off
  Djvm vm(cfg);
  vm.spawn_threads_round_robin(kThreads);
  RequestServingApp app(hot_params());
  app.build(vm);
  // Classes seed size-derived gaps; force full sampling for the reference.
  for (ClassId c = 0; c < vm.registry().size(); ++c) {
    vm.plan().set_nominal_gap(c, 1);
  }
  vm.plan().resample_all();
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    app.serve_epoch(vm);
    vm.run_epoch(EpochRequest{});
  }
  return vm.daemon().build_full();
}

/// The quiet single-tenant equivalence probe: the same workload through the
/// deprecated legacy entry point and through the tenant API must produce
/// bit-identical correlation maps.
double api_equivalence_error() {
  SquareMatrix maps[2];
  for (int side = 0; side < 2; ++side) {
    Djvm vm(tenant_config(0));
    vm.spawn_threads_round_robin(kThreads);
    RequestServingApp app(hot_params());
    app.build(vm);
    TenantContext tenant = vm.tenant();
    for (std::uint32_t epoch = 0; epoch < 8; ++epoch) {
      app.serve_epoch(vm);
      if (side == 0) {
        vm.run_governed_epoch();
      } else {
        tenant.run_epoch();
      }
    }
    maps[side] = vm.daemon().build_full();
  }
  return absolute_error(maps[0], maps[1]);
}

/// Normalizes a map to unit mass: what the balancer consumes is the
/// *relative* sharing structure, and gap-weighted estimates under different
/// back-off histories scale the whole map differently — comparing raw mass
/// would measure that scale, not fidelity.
SquareMatrix unit_mass(SquareMatrix m) {
  const double total = m.total();
  if (total > 0.0) {
    for (double& v : m.raw()) v /= total;
  }
  return m;
}

double tail_mean(const std::vector<double>& v, std::size_t tail) {
  double sum = 0.0;
  for (std::size_t i = v.size() - tail; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(tail);
}

}  // namespace

int main() {
  std::cout << "=== Multi-tenant serving under one cluster ceiling ("
            << kTenants << " tenants, global budget " << kGlobalBudget * 100
            << "%, fair share " << kFairShare * 100 << "%) ===\n\n";

  const RunLog arb = run_arbitrated();
  const RunLog even = run_even_split();
  const SquareMatrix oracle = run_oracle();
  const double api_error = api_equivalence_error();

  TextTable t({"Epoch", "Arb hot%", "Arb grant%", "Arb cluster%",
               "Even hot%", "Even cluster%"});
  for (std::uint32_t i = 0; i < kEpochs; ++i) {
    t.add_row({TextTable::cell(static_cast<std::uint64_t>(i)),
               TextTable::cell_pct(arb.hot_frac[i], 4),
               TextTable::cell_pct(arb.hot_grant[i], 4),
               TextTable::cell_pct(arb.cluster_frac[i], 4),
               TextTable::cell_pct(even.hot_frac[i], 4),
               TextTable::cell_pct(even.cluster_frac[i], 4)});
  }
  t.print(std::cout);

  const double hot_tail_grant = tail_mean(arb.hot_grant, kTail);
  const double hot_tail_frac = tail_mean(arb.hot_frac, kTail);
  const double cluster_tail_arb = tail_mean(arb.cluster_frac, kTail);
  const double cluster_tail_even = tail_mean(even.cluster_frac, kTail);
  const SquareMatrix oracle_unit = unit_mass(oracle);
  const double err_arb = absolute_error(unit_mass(arb.hot_map), oracle_unit);
  const double err_even = absolute_error(unit_mass(even.hot_map), oracle_unit);
  const double global_ceiling = kGlobalBudget * (1.0 + kHysteresis);

  std::cout << "\nHot tenant tail: granted " << hot_tail_grant * 100
            << "% (fair " << kFairShare * 100 << "%), overhead "
            << hot_tail_frac * 100 << "%\n";
  std::cout << "Cluster tail overhead: arbitrated " << cluster_tail_arb * 100
            << "%, even-split " << cluster_tail_even * 100 << "% (ceiling "
            << global_ceiling * 100 << "%)\n";
  std::cout << "Hot map error vs oracle: arbitrated " << err_arb
            << ", even-split " << err_even << "\n";
  std::cout << "Borrow rounds " << arb.borrow_rounds << "/" << kEpochs
            << ", min grant " << arb.min_grant * 100 << "%, max granted total "
            << arb.max_granted_total * 100 << "%\n";
  std::cout << "Tenant-API equivalence error: " << api_error << "\n\n";

  BenchReport report("multi_tenant");
  report.metric("hot_tail_granted", hot_tail_grant);
  report.metric("hot_tail_overhead", hot_tail_frac);
  report.metric("cluster_tail_arbitrated", cluster_tail_arb);
  report.metric("cluster_tail_even_split", cluster_tail_even);
  report.metric("oracle_error_arbitrated", err_arb, "min", 0.50, 0.01);
  report.metric("oracle_error_even_split", err_even);
  report.metric("borrow_rounds", static_cast<double>(arb.borrow_rounds));
  report.metric("api_equivalence_error", api_error, "min", 0.0, 0.0);

  report.check("hot tenant borrows above its fair share in the steady tail",
               hot_tail_grant > kFairShare, hot_tail_grant, kFairShare, ">");
  report.check("every grant stays at or above the starvation floor",
               arb.min_grant >= 0.25 * kFairShare - 1e-12, arb.min_grant,
               0.25 * kFairShare, ">=");
  report.check("granted total never exceeds the global budget",
               arb.max_granted_total <= kGlobalBudget + 1e-12,
               arb.max_granted_total, kGlobalBudget, "<=");
  report.check("arbitrated cluster overhead holds the global ceiling",
               cluster_tail_arb <= global_ceiling, cluster_tail_arb,
               global_ceiling, "<=");
  report.check("even-split cluster overhead holds the same ceiling "
               "(equal-total-overhead comparison)",
               cluster_tail_even <= global_ceiling, cluster_tail_even,
               global_ceiling, "<=");
  report.check("arbitrated hot map beats the even-split map at equal overhead",
               err_arb < 0.5 * err_even, err_arb, 0.5 * err_even, "<");
  report.check("tenant API reproduces the legacy entry point bit-for-bit",
               api_error == 0.0, api_error, 0.0, "==");
  return report.finish();  // nonzero fails the CI acceptance step
}
