// TCM construction at scale: dense-from-scratch vs the incremental sparse
// accumulator, swept over threads x objects x reader skew.
//
// Protocol per sweep point: a profiling run delivers B record batches; after
// each batch the master wants the whole-run correlation map fresh (what
// CorrelationDaemon::build_full feeds the balancer).  The dense-from-scratch
// pipeline (`TcmBuilder::build_reference`, the seed's hash-map reorganize +
// dense accrual) re-accrues the entire run-so-far on every delivery; the
// incremental pipeline folds just the new batch into a persistent
// TcmAccumulator and densifies on demand.  Both sides produce the same map
// after every batch (checked to 1e-9); only the work to get there differs.
//
// The largest sweep point (64 threads x 120k objects x 12 batches, skewed
// readers) gates CI: incremental-sparse must hold a >= 5x speedup, and the
// equality check must stay within 1e-9.
//
// A separate arena-scale phase stretches to 256 threads x 1M objects — the
// regime the lock-free ingest path exists for — with the records packed into
// fixed 4096-entry OalArenas (the ingest hand-off unit).  The per-batch
// dense rebuild protocol is deliberately not run there (it is the very
// O(run-so-far) wall the sweep above already prices); instead the phase
// gates that both arena consumers — the incremental fold
// (TcmAccumulator::add(OalArena)) and the one-shot CSR pipeline
// (DistributedTcmReducer::build) — match one final build_reference to 1e-9.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "harness.hpp"
#include "profiling/accuracy.hpp"
#include "profiling/distributed_tcm.hpp"
#include "profiling/ingest.hpp"
#include "profiling/tcm.hpp"

namespace djvm {
namespace {

struct SweepPoint {
  std::uint32_t threads;
  ObjectId objects;
  int batches;
};

/// Skewed reader distribution: ~0.1% of objects are hot (every thread reads
/// them — shared pools, barriers' metadata), the tail is read by one thread
/// plus an occasional second (neighbour exchange).  Byte values are stable
/// across batches except every 16th object, whose observed size keeps
/// growing — exercising the accumulator's max-combining update path.
std::vector<std::vector<IntervalRecord>> make_batches(const SweepPoint& p) {
  const ObjectId hot = std::max<ObjectId>(1, p.objects / 1000);
  std::vector<std::vector<IntervalRecord>> batches(
      static_cast<std::size_t>(p.batches));
  IntervalId next_interval = 0;
  for (int b = 0; b < p.batches; ++b) {
    std::vector<IntervalRecord>& recs = batches[static_cast<std::size_t>(b)];
    recs.resize(p.threads);
    for (ThreadId t = 0; t < p.threads; ++t) {
      recs[t].thread = t;
      recs[t].node = static_cast<NodeId>(t % 8);
      recs[t].interval = next_interval++;
    }
    for (ObjectId o = 0; o < p.objects; ++o) {
      const std::uint32_t grow = (o % 16 == 0) ? static_cast<std::uint32_t>(b) : 0u;
      const OalEntry e{o, /*klass=*/0,
                       /*bytes=*/8 + static_cast<std::uint32_t>(o % 61) + grow,
                       /*gap=*/1 + static_cast<std::uint32_t>(o % 7)};
      if (o < hot) {
        for (ThreadId t = 0; t < p.threads; ++t) recs[t].entries.push_back(e);
      } else {
        recs[o % p.threads].entries.push_back(e);
        if (o % 3 == 0) {
          recs[(o * 5 + 1) % p.threads].entries.push_back(e);
        }
      }
    }
  }
  return batches;
}

double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

struct PointResult {
  double dense_seconds = 0.0;
  double incr_seconds = 0.0;
  double max_rel_error = 0.0;
};

PointResult run_point(const SweepPoint& p) {
  const auto batches = make_batches(p);
  PointResult out;

  // Dense-from-scratch: after each delivery, rebuild the run-so-far map.
  std::vector<SquareMatrix> dense_maps;
  {
    std::vector<IntervalRecord> window;
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& batch : batches) {
      window.insert(window.end(), batch.begin(), batch.end());
      dense_maps.push_back(
          TcmBuilder::build_reference(window, p.threads, /*weighted=*/true));
    }
    out.dense_seconds = seconds_since(t0);
  }

  // Incremental-sparse: fold the new batch, densify on demand.  The densify
  // is part of the measured cost; the equality check is not.
  std::vector<SquareMatrix> incr_maps;
  {
    TcmAccumulator acc(p.threads, /*weighted=*/true);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& batch : batches) {
      acc.add(batch);
      incr_maps.push_back(acc.dense());
    }
    out.incr_seconds = seconds_since(t0);
  }

  for (std::size_t b = 0; b < incr_maps.size(); ++b) {
    out.max_rel_error =
        std::max(out.max_rel_error, absolute_error(incr_maps[b], dense_maps[b]));
  }
  return out;
}

/// Packs records into fixed-capacity arenas exactly the way IngestHub::append
/// splits a closing interval across them (each slice carries a full header).
std::vector<std::unique_ptr<OalArena>> pack_arenas(
    std::span<const IntervalRecord> records, std::uint32_t capacity) {
  std::vector<std::unique_ptr<OalArena>> arenas;
  for (const IntervalRecord& r : records) {
    std::size_t off = 0;
    while (off < r.entries.size()) {
      if (arenas.empty() || arenas.back()->entries.size() >= capacity) {
        arenas.push_back(std::make_unique<OalArena>());
        arenas.back()->entries.reserve(capacity);
      }
      OalArena& a = *arenas.back();
      const std::size_t take = std::min<std::size_t>(
          capacity - a.entries.size(), r.entries.size() - off);
      const auto begin = static_cast<std::uint32_t>(a.entries.size());
      a.entries.insert(a.entries.end(), r.entries.begin() + off,
                       r.entries.begin() + off + take);
      a.intervals.push_back(ArenaInterval{r.thread, r.interval, r.node,
                                          r.start_pc, r.end_pc, begin,
                                          static_cast<std::uint32_t>(begin + take)});
      off += take;
    }
  }
  return arenas;
}

struct ArenaScaleResult {
  double incr_seconds = 0.0;
  double csr_seconds = 0.0;
  double reference_seconds = 0.0;
  double incr_error = 0.0;
  double csr_error = 0.0;
};

ArenaScaleResult run_arena_scale(const SweepPoint& p) {
  const auto batches = make_batches(p);
  std::vector<std::vector<std::unique_ptr<OalArena>>> packed;
  packed.reserve(batches.size());
  for (const auto& batch : batches) {
    packed.push_back(pack_arenas(batch, /*capacity=*/4096));
  }

  ArenaScaleResult out;

  // Incremental fold, batch-at-a-time with a fresh map per delivery — the
  // daemon's steady state, just fed arenas instead of records.
  SquareMatrix incr;
  {
    TcmAccumulator acc(p.threads, /*weighted=*/true);
    const auto t0 = std::chrono::steady_clock::now();
    for (const auto& batch : packed) {
      for (const auto& a : batch) acc.add(*a);
      incr = acc.dense();
    }
    out.incr_seconds = seconds_since(t0);
  }

  // One-shot CSR pipeline over every arena of the run.
  SquareMatrix csr;
  {
    std::vector<const OalArena*> all;
    for (const auto& batch : packed) {
      for (const auto& a : batch) all.push_back(a.get());
    }
    const auto t0 = std::chrono::steady_clock::now();
    csr = DistributedTcmReducer::build(std::span<const OalArena* const>(all),
                                       p.threads, /*weighted=*/true);
    out.csr_seconds = seconds_since(t0);
  }

  // One final dense-from-scratch oracle over the concatenated run.
  {
    std::vector<IntervalRecord> window;
    for (const auto& batch : batches) {
      window.insert(window.end(), batch.begin(), batch.end());
    }
    const auto t0 = std::chrono::steady_clock::now();
    const SquareMatrix ref =
        TcmBuilder::build_reference(window, p.threads, /*weighted=*/true);
    out.reference_seconds = seconds_since(t0);
    out.incr_error = absolute_error(incr, ref);
    out.csr_error = absolute_error(csr, ref);
  }
  return out;
}

}  // namespace
}  // namespace djvm

int main() {
  using namespace djvm;
  bench::BenchReport report("tcm_scale");

  const std::vector<SweepPoint> sweep = {
      {8, 20'000, 8},
      {16, 50'000, 8},
      {32, 100'000, 8},
      {64, 120'000, 12},
  };

  std::printf("%8s %10s %8s %12s %12s %9s %12s\n", "threads", "objects",
              "batches", "dense_ms", "incr_ms", "speedup", "max_rel_err");
  PointResult largest;
  double largest_speedup = 0.0;
  for (const SweepPoint& p : sweep) {
    // Best of two runs: the ratio is what gates, but both numerator and
    // denominator deserve a warm cache.
    PointResult r = run_point(p);
    const PointResult r2 = run_point(p);
    r.dense_seconds = std::min(r.dense_seconds, r2.dense_seconds);
    r.incr_seconds = std::min(r.incr_seconds, r2.incr_seconds);
    r.max_rel_error = std::max(r.max_rel_error, r2.max_rel_error);
    const double speedup =
        r.incr_seconds > 0.0 ? r.dense_seconds / r.incr_seconds : 0.0;
    std::printf("%8u %10llu %8d %12.2f %12.2f %8.2fx %12.3g\n", p.threads,
                static_cast<unsigned long long>(p.objects), p.batches,
                r.dense_seconds * 1e3, r.incr_seconds * 1e3, speedup,
                r.max_rel_error);
    if (&p == &sweep.back()) {
      largest = r;
      largest_speedup = speedup;
    }
  }

  // Arena-scale phase: the ingest hand-off unit at its target scale.
  const SweepPoint big{256, 1'000'000, 6};
  const ArenaScaleResult arena = run_arena_scale(big);
  std::printf(
      "arena scale %u threads x %llu objects x %d batches: "
      "incr %.2fs  csr %.2fs  reference %.2fs  err incr %.3g / csr %.3g\n",
      big.threads, static_cast<unsigned long long>(big.objects), big.batches,
      arena.incr_seconds, arena.csr_seconds, arena.reference_seconds,
      arena.incr_error, arena.csr_error);

  // Wall-clock seconds gate with latency tolerance (lower_is_better, +35%
  // headroom for runner-to-runner variance); the speedup ratio and the
  // equality bound are the primary acceptance criteria.
  report.latency_metric("incr_seconds_largest", largest.incr_seconds, 0.35);
  report.metric("dense_seconds_largest", largest.dense_seconds);
  report.metric("speedup_largest", largest_speedup, "max", 0.25);
  report.metric("max_rel_error", largest.max_rel_error, "min", 0.0, 1e-9);
  report.latency_metric("arena_incr_seconds_256t_1m", arena.incr_seconds, 0.35);
  report.latency_metric("arena_csr_seconds_256t_1m", arena.csr_seconds, 0.35);
  report.metric("arena_reference_seconds_256t_1m", arena.reference_seconds);
  report.metric("arena_incr_abs_error", arena.incr_error, "min", 0.0, 1e-9);
  report.metric("arena_csr_abs_error", arena.csr_error, "min", 0.0, 1e-9);

  report.check(
      "incremental-sparse >= 5x over dense-from-scratch at 64 threads x 120k "
      "objects (skewed readers)",
      largest_speedup >= 5.0, largest_speedup, 5.0, ">=");
  report.check("incremental and dense maps agree within 1e-9",
               largest.max_rel_error <= 1e-9, largest.max_rel_error, 1e-9,
               "<=");
  report.check(
      "arena incremental fold matches build_reference at 256 threads x 1M "
      "objects (<= 1e-9)",
      arena.incr_error <= 1e-9, arena.incr_error, 1e-9, "<=");
  report.check(
      "arena CSR pipeline matches build_reference at 256 threads x 1M "
      "objects (<= 1e-9)",
      arena.csr_error <= 1e-9, arena.csr_error, 1e-9, "<=");
  return report.finish();
}
