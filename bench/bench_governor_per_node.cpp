// Per-node overhead budgets under a skewed cluster (ISSUE 2 acceptance).
//
// One worker node is ~10x hotter than the rest: node 1's thread pair (1,5)
// churns through a large pool of small "Junk" objects (single-reader halves
// — pure profiling cost, zero correlation information) plus a shared
// "Signal" pool, with little compute per access; the other three nodes'
// pairs deterministically scan modest "Cold" pools with heavy compute.  The
// profiling cost each node pays is local (access checks, OAL wire,
// resampling), so node 1's overhead *fraction* runs far over budget while
// the cluster-wide average — diluted by the cold nodes' application time —
// sits comfortably inside it.
//
// Two governed runs over identical traffic:
//   cluster  — PR 1's cluster-aggregate policy (per_node off): the average
//              never crosses the band, so node 1 is left blowing its local
//              budget for the whole run;
//   per-node — worst-offender enforcement: the governor backs off only the
//              classes dominating node 1's cost (per-(node,class) gap
//              shifts), holding node 1 inside the budgeted band while the
//              cold nodes' rates — and the correlation map — stay intact.
// Plus a full-sampling oracle as the accuracy reference.
//
// Acceptance: the hot node's tail overhead fraction exceeds the budget
// ceiling under the cluster policy and stays within it under per-node
// control, with a converged TCM no worse (vs the oracle) than the cluster
// policy produced, and the backoff confined to the hot node's classes.
#include <algorithm>
#include <iostream>

#include "governor/governor.hpp"
#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

constexpr std::uint32_t kNodes = 4;
constexpr std::uint32_t kThreads = 8;     // thread t lives on node t % 4
constexpr NodeId kHotNode = 1;            // threads 1 and 5 (node 0 hosts the
                                          // coordinator: its OAL wire is free)
constexpr std::uint32_t kEpochs = 16;
constexpr std::uint32_t kTail = 4;

constexpr std::uint32_t kJunkCount = 16384;   // 64 B, disjoint halves
constexpr std::uint32_t kSignalCount = 2048;  // 1 KB, shared by the hot pair
constexpr std::uint32_t kColdCount = 256;     // 2 KB, shared per cold pair
constexpr SimTime kHotCompute = 500;          // ns of app work per hot access
constexpr SimTime kColdCompute = 100000;      // heavy compute on cold nodes

constexpr std::uint32_t kJunkGap = 32;
constexpr std::uint32_t kSignalGap = 4;
constexpr std::uint32_t kColdGap = 4;

constexpr double kBudget = 0.012;      // per-node and cluster budget
constexpr double kHysteresis = 0.25;   // dead band: enforcement above 1.5%
constexpr double kCeiling = kBudget * (1.0 + kHysteresis);

enum class RunMode { kClusterPolicy, kPerNode, kOracle };

struct RunLog {
  std::vector<double> hot_frac;      // node 1 rolling fraction per epoch
  std::vector<double> cluster_frac;  // cluster rolling fraction per epoch
  SquareMatrix final_tcm;
  std::uint32_t junk_shift = 0;      // hot node's final Junk gap shift
  std::uint32_t signal_shift = 0;
  std::uint32_t cold_shift_total = 0;  // shifts on any cold (node, class)
  std::uint32_t cold_gap_final = 0;
};

RunLog run(RunMode mode) {
  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(kThreads);

  const ClassId junk = djvm.registry().register_class("Junk", 64);
  const ClassId signal = djvm.registry().register_class("Signal", 1024);
  const ClassId cold = djvm.registry().register_class("Cold", 2048);

  std::vector<ObjectId> junk_pool, signal_pool;
  for (std::uint32_t i = 0; i < kJunkCount; ++i) {
    junk_pool.push_back(djvm.gos().alloc(junk, kHotNode));
  }
  for (std::uint32_t i = 0; i < kSignalCount; ++i) {
    signal_pool.push_back(djvm.gos().alloc(signal, kHotNode));
  }
  // Cold pools live on nodes 0, 2, 3; each is scanned by that node's pair.
  std::vector<std::vector<ObjectId>> cold_pools(kNodes);
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n == kHotNode) continue;
    for (std::uint32_t i = 0; i < kColdCount; ++i) {
      cold_pools[n].push_back(djvm.gos().alloc(cold, n));
    }
  }

  if (mode != RunMode::kOracle) {
    djvm.plan().set_nominal_gap(junk, kJunkGap);
    djvm.plan().set_nominal_gap(signal, kSignalGap);
    djvm.plan().set_nominal_gap(cold, kColdGap);
    djvm.plan().resample_all();
    GovernorConfig gcfg;
    gcfg.overhead_budget = kBudget;
    gcfg.hysteresis = kHysteresis;
    gcfg.per_node = mode == RunMode::kPerNode;
    // The workload is deterministic: watch the sentinel at the converged
    // rates so the steady-state budget comparison is not blurred by extra
    // coarsening.
    gcfg.sentinel_coarsen_shifts = 0;
    djvm.governor().arm(gcfg);
  }

  RunLog log;
  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    for (ThreadId t = 0; t < kThreads; ++t) {
      const NodeId node = static_cast<NodeId>(t % kNodes);
      std::uint64_t accesses = 0;
      if (node == kHotNode) {
        // Disjoint Junk halves: profiling cost with no correlation value.
        const std::size_t half = kJunkCount / 2;
        const std::size_t begin = t < kNodes ? 0 : half;
        for (std::size_t i = begin; i < begin + half; ++i) {
          djvm.read(t, junk_pool[i]);
          ++accesses;
        }
        for (ObjectId o : signal_pool) {
          djvm.read(t, o);
          ++accesses;
        }
        djvm.gos().clock(t).advance(accesses * kHotCompute);
      } else {
        for (ObjectId o : cold_pools[node]) {
          djvm.read(t, o);
          ++accesses;
        }
        djvm.gos().clock(t).advance(accesses * kColdCompute);
      }
    }
    djvm.barrier_all();

    const EpochResult e = djvm.run_governed_epoch();
    log.hot_frac.push_back(
        djvm.governor().meter().node_rolling_fraction(kHotNode));
    log.cluster_frac.push_back(e.overhead_fraction);
  }

  log.final_tcm = djvm.daemon().latest();
  log.junk_shift = djvm.plan().node_gap_shift(kHotNode, junk);
  log.signal_shift = djvm.plan().node_gap_shift(kHotNode, signal);
  for (NodeId n = 0; n < kNodes; ++n) {
    if (n == kHotNode) continue;
    log.cold_shift_total += djvm.plan().node_gap_shift(n, junk) +
                            djvm.plan().node_gap_shift(n, signal) +
                            djvm.plan().node_gap_shift(n, cold);
  }
  log.cold_gap_final = djvm.plan().nominal_gap(cold);
  return log;
}

double tail_mean(const std::vector<double>& v, std::size_t tail) {
  double sum = 0.0;
  for (std::size_t i = v.size() - tail; i < v.size(); ++i) sum += v[i];
  return sum / static_cast<double>(tail);
}

double tail_max(const std::vector<double>& v, std::size_t tail) {
  double m = 0.0;
  for (std::size_t i = v.size() - tail; i < v.size(); ++i) m = std::max(m, v[i]);
  return m;
}

}  // namespace

int main() {
  std::cout << "=== Per-node budgets under a skewed cluster (node " << kHotNode
            << " ~10x hotter) ===\n";
  std::cout << "(budget " << kBudget * 100 << "% of each node's app time, band ceiling "
            << kCeiling * 100 << "%, " << kEpochs << " epochs)\n\n";

  const RunLog cluster = run(RunMode::kClusterPolicy);
  const RunLog per_node = run(RunMode::kPerNode);
  const RunLog oracle = run(RunMode::kOracle);

  TextTable t({"Epoch", "Cluster-policy hot%", "Cluster-policy avg%",
               "Per-node hot%", "Per-node avg%"});
  for (std::uint32_t i = 0; i < kEpochs; ++i) {
    t.add_row({TextTable::cell(static_cast<std::uint64_t>(i)),
               TextTable::cell_pct(cluster.hot_frac[i], 3),
               TextTable::cell_pct(cluster.cluster_frac[i], 3),
               TextTable::cell_pct(per_node.hot_frac[i], 3),
               TextTable::cell_pct(per_node.cluster_frac[i], 3)});
  }
  t.print(std::cout);

  const double hot_tail_cluster = tail_mean(cluster.hot_frac, kTail);
  const double hot_tail_per_node = tail_max(per_node.hot_frac, kTail);
  const double avg_tail_cluster = tail_mean(cluster.cluster_frac, kTail);
  const double err_cluster = absolute_error(cluster.final_tcm, oracle.final_tcm);
  const double err_per_node = absolute_error(per_node.final_tcm, oracle.final_tcm);

  std::cout << "\nHot-node tail overhead: cluster policy "
            << hot_tail_cluster * 100 << "%, per-node " << hot_tail_per_node * 100
            << "% (ceiling " << kCeiling * 100 << "%)\n";
  std::cout << "Cluster average under cluster policy: " << avg_tail_cluster * 100
            << "% (the aggregate hides the hot node)\n";
  std::cout << "Final map error vs oracle: cluster " << err_cluster
            << ", per-node " << err_per_node << "\n";
  std::cout << "Hot-node shifts: junk " << per_node.junk_shift << ", signal "
            << per_node.signal_shift << "; cold-node shifts "
            << per_node.cold_shift_total << ", cold base gap "
            << per_node.cold_gap_final << "\n\n";

  BenchReport report("governor_per_node");
  report.metric("hot_tail_cluster_policy", hot_tail_cluster);
  report.metric("hot_tail_per_node", hot_tail_per_node, "min", 0.30, 0.002);
  report.metric("cluster_avg_cluster_policy", avg_tail_cluster);
  report.metric("oracle_error_cluster_policy", err_cluster, "min", 0.50, 0.01);
  report.metric("oracle_error_per_node", err_per_node, "min", 0.50, 0.01);
  report.metric("hot_junk_shift", static_cast<double>(per_node.junk_shift));
  report.metric("cold_shift_total", static_cast<double>(per_node.cold_shift_total));

  report.check(
      "cluster-wide policy leaves the hot node over its per-node budget ceiling",
      hot_tail_cluster > kCeiling, hot_tail_cluster, kCeiling, ">");
  report.check(
      "cluster-wide policy never trips on the aggregate (hot node hidden)",
      avg_tail_cluster <= kCeiling, avg_tail_cluster, kCeiling, "<=");
  report.check("per-node policy holds the hot node inside the budget ceiling",
               hot_tail_per_node <= kCeiling, hot_tail_per_node, kCeiling, "<=");
  report.check("per-node converged map no worse than the cluster policy's",
               err_per_node <= err_cluster + 0.02, err_per_node,
               err_cluster + 0.02, "<=");
  report.check("per-node converged map stays close to the oracle",
               err_per_node <= 0.05, err_per_node, 0.05, "<=");
  report.check("backoff targeted the hot node's junk class",
               per_node.junk_shift >= 1,
               static_cast<double>(per_node.junk_shift), 1, ">=");
  report.check("cold nodes kept their rates (no shifts, base gap unchanged)",
               per_node.cold_shift_total == 0 &&
                   per_node.cold_gap_final == kColdGap,
               static_cast<double>(per_node.cold_shift_total), 0, "==");
  return report.finish();  // nonzero fails the CI acceptance step
}
