// Table I — application benchmark characteristics: problem sizes and sharing
// properties of the three workloads, plus measured object statistics from a
// built heap (our addition, to verify the granularity claims hold in code).
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

int main() {
  std::cout << "=== Table I: Application benchmark characteristics ===\n\n";

  TextTable t({"Benchmark", "Data set", "Rounds", "Granularity", "Object size"});
  TextTable measured({"Benchmark", "Objects", "Classes", "Heap bytes",
                      "Median object bytes"});

  for (const AppSpec& app : paper_apps()) {
    Config cfg;
    cfg.nodes = 8;
    cfg.threads = 8;
    Djvm djvm(cfg);
    djvm.spawn_threads_round_robin(cfg.threads);
    auto w = app.make();
    const WorkloadInfo info = w->info();
    t.add_row({info.name, info.dataset, TextTable::cell(std::uint64_t{info.rounds}),
               info.granularity, info.object_size_desc});

    w->build(djvm);
    std::vector<double> sizes;
    std::uint64_t bytes = 0;
    for (ObjectId o = 0; o < djvm.heap().object_count(); ++o) {
      sizes.push_back(static_cast<double>(djvm.heap().meta(o).size_bytes));
      bytes += djvm.heap().meta(o).size_bytes;
    }
    measured.add_row({info.name, TextTable::cell(djvm.heap().object_count()),
                      TextTable::cell(djvm.registry().size()),
                      TextTable::cell(bytes), TextTable::cell(median(sizes), 0)});
  }

  t.print(std::cout);
  std::cout << "\nMeasured heap statistics after build (verifying granularity):\n";
  measured.print(std::cout);
  return 0;
}
