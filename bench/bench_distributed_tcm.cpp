// Ablation A7 — distributed TCM reduction vs the centralized coordinator
// (the paper's future work, Section VI: "distributed algorithms for deducing
// correlation maps in a more scalable way").
//
// Compares (a) build time of the centralized O(MN^2) accrual vs the
// tree-reduced + sharded pipeline, and (b) the OAL bytes a coordinator-based
// scheme ships vs the deduplicated partials moving up the reduction tree.
#include <chrono>
#include <iostream>

#include "harness.hpp"
#include "profiling/accuracy.hpp"
#include "profiling/distributed_tcm.hpp"

using namespace djvm;
using namespace djvm::bench;

namespace {

double time_seconds(const std::function<void()>& fn) {
  const auto t0 = std::chrono::steady_clock::now();
  fn();
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}

}  // namespace

int main() {
  std::cout << "=== Ablation A7: distributed vs centralized TCM reduction ===\n";
  std::cout << "(Barnes-Hut, 32 threads on 8 nodes, full sampling)\n\n";

  Config cfg;
  cfg.nodes = 8;
  cfg.threads = 32;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  RunOutput out;
  out.djvm = std::make_unique<Djvm>(cfg);
  // Observational record tap: the reduction pipeline consumes materialized
  // IntervalRecords, which the arena ingest path no longer produces.
  out.djvm->gos().set_record_tap(true);
  out.djvm->spawn_threads_round_robin(cfg.threads);
  out.workload = barnes_hut_spec(4096, 3).make();
  out.metrics = execute_workload(*out.djvm, *out.workload);
  out.djvm->pump_daemon();
  const std::vector<IntervalRecord> records = out.djvm->gos().drain_records();

  std::uint64_t raw_oal_bytes = 0;
  std::size_t entries = 0;
  for (const IntervalRecord& r : records) {
    raw_oal_bytes += r.wire_bytes();
    entries += r.entries.size();
  }
  std::cout << records.size() << " interval records, " << entries << " entries ("
            << raw_oal_bytes / 1024 << " KB raw OAL wire volume)\n\n";

  SquareMatrix central, dist;
  const double t_central =
      time_seconds([&] { central = TcmBuilder::build(records, cfg.threads, true); });

  TextTable t({"Scheme", "Coordinator time (ms)", "Reduction traffic (KB)",
               "ABS distance to centralized"});
  t.add_row({"Centralized (coordinator)", TextTable::cell(t_central * 1e3, 2),
             TextTable::cell(raw_oal_bytes / 1024.0, 0), "0"});

  // Phase 1 runs AT the worker nodes in the real system, so only the merge +
  // accrual phases land on the coordinator.
  for (unsigned workers : {1u, 2u, 4u, 8u}) {
    Network net(cfg.costs);
    auto partials = DistributedTcmReducer::local_reduce(records, true);
    NodePartial merged;
    const double dt = time_seconds([&] {
      merged = DistributedTcmReducer::tree_reduce(std::move(partials), &net);
      dist = DistributedTcmReducer::accrue_parallel(merged.summaries, cfg.threads,
                                                    workers);
    });
    t.add_row({"Tree-reduce, " + std::to_string(workers) + " shard(s)",
               TextTable::cell(dt * 1e3, 2),
               TextTable::cell(
                   static_cast<double>(net.stats().bytes_of(MsgCategory::kOal)) /
                       1024.0,
                   0),
               TextTable::cell(absolute_error(dist, central), 9)});
  }
  t.print(std::cout);

  std::cout << "\nExpected shape: identical maps (distance ~0).  The reduction\n"
               "tree ships fewer bytes than raw per-interval OALs — the saving\n"
               "grows with intervals per node, since local deduplication folds\n"
               "re-logged objects (see test_distributed_tcm's 4x case).  The\n"
               "coordinator sheds the whole O(entries) reorganize phase to the\n"
               "worker nodes; what remains is the merge + accrual, whose cost\n"
               "is bounded by unique (object, thread) pairs, not raw entries.\n";
  return 0;
}
