// Fig. 9 — accuracy of correlation tracking with adaptive object sampling.
//
// Methodology per the paper: 16 threads per application; starting from the
// maximum per-class rate and halving it each step (512X ... 1X), compute
//   * absolute accuracy — sampled TCM vs the full-sampling TCM,
//   * relative accuracy — sampled TCM vs the next-higher rate's TCM,
// under both the absolute-distance (eq. 2) and Euclidean (eq. 1) metrics.
// The paper's findings to reproduce: ABS is more stable than EUC, relative
// tracks absolute closely, and almost all rates stay >= 95% accurate.
#include <iostream>

#include "harness.hpp"

using namespace djvm;
using namespace djvm::bench;

int main() {
  std::cout << "=== Fig. 9: Accuracy of correlation tracking ===\n";
  std::cout << "(16 threads; weighted TCMs; accuracy = 1 - distance)\n\n";

  const std::uint32_t rates[] = {512, 256, 128, 64, 32, 16, 8, 4, 2, 1};

  for (const AppSpec& app : sweep_apps()) {
    Config cfg;
    cfg.nodes = 8;
    cfg.threads = 16;
    cfg.oal_transfer = OalTransfer::kLocalOnly;

    Config full_cfg = cfg;
    full_cfg.sampling_rate_x = 0;
    const SquareMatrix full = run_tcm(full_cfg, app.make);

    TextTable t({"Rate", "Absolute/ABS", "Relative/ABS", "Absolute/EUC",
                 "Relative/EUC"});
    SquareMatrix prev = full;  // the next-higher rate of 512X is full sampling
    for (std::uint32_t rate : rates) {
      Config rcfg = cfg;
      rcfg.sampling_rate_x = rate;
      const SquareMatrix tcm = run_tcm(rcfg, app.make);
      t.add_row({std::to_string(rate) + "X",
                 TextTable::cell_pct(accuracy_from_error(absolute_error(tcm, full))),
                 TextTable::cell_pct(accuracy_from_error(absolute_error(tcm, prev))),
                 TextTable::cell_pct(accuracy_from_error(euclidean_error(tcm, full))),
                 TextTable::cell_pct(accuracy_from_error(euclidean_error(tcm, prev)))});
      prev = tcm;
    }
    std::cout << "--- " << app.name << " ---\n";
    t.print(std::cout);
    std::cout << '\n';
  }

  std::cout << "Paper reference: almost all rates show >= 95% accuracy; the\n"
               "ABS metric is more stable and consistently above EUC; relative\n"
               "accuracy is a usable online proxy for absolute accuracy.\n";
  return 0;
}
