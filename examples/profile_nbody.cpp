// Adaptive profiling of a real workload: run Barnes-Hut under the
// correlation daemon's convergence loop and watch the sampling rate adapt.
//
// The daemon starts at a coarse rate, compares successive epoch TCMs under
// the ABS metric, and halves every class's gap until the maps agree within
// the threshold — the online procedure of paper Section II.B.2.
//
// Build & run:  ./examples/profile_nbody
#include <iostream>

#include "apps/barnes_hut.hpp"
#include "common/table.hpp"
#include "core/djvm.hpp"
#include "profiling/accuracy.hpp"

using namespace djvm;

int main() {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kSend;
  cfg.sampling_rate_x = 1;  // start coarse: 1 sampled object per page
  cfg.adapt_threshold = 0.08;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  djvm.daemon().governor().arm(djvm::GovernorConfig::legacy(cfg.adapt_threshold));

  BarnesHutParams p;
  p.bodies = 2048;
  p.rounds = 1;
  BarnesHutWorkload w(p);
  w.build(djvm);
  djvm.plan().set_rate_all(cfg.sampling_rate_x);  // classes are loaded now

  std::cout << "Adaptive correlation profiling of Barnes-Hut (" << p.bodies
            << " bodies, " << cfg.threads << " threads)\n\n";
  std::cout << "epoch | intervals | entries | rel.ABS distance | action\n";
  std::cout << "------+-----------+---------+------------------+-----------------\n";

  const ClassId body = *djvm.registry().find("Body");
  for (int epoch = 0; epoch < 6; ++epoch) {
    w.run(djvm);  // one more simulation round per epoch
    djvm.pump_daemon();
    const EpochResult e = djvm.daemon().run_epoch();
    printf("%5d | %9zu | %7zu | %16s | %s (Body gap %u)\n", epoch, e.intervals,
           e.entries,
           e.rel_distance ? TextTable::cell(*e.rel_distance, 4).c_str() : "-",
           e.rate_changed       ? "tightened gaps"
           : djvm.daemon().converged() ? "converged"
                                       : "first epoch",
           djvm.plan().real_gap(body));
    if (djvm.daemon().converged()) break;
  }

  std::cout << "\nFinal per-class sampling gaps:\n";
  for (const Klass& k : djvm.registry().all()) {
    if (k.instances == 0) continue;
    std::cout << "  " << k.name << ": nominal " << k.sampling.nominal_gap
              << ", real (prime) " << k.sampling.real_gap << ", " << k.instances
              << " instances\n";
  }

  const SquareMatrix tcm = djvm.daemon().latest();
  std::cout << "\nSame-galaxy vs cross-galaxy sharing (threads 0-3 vs 4-7):\n";
  double same = 0, cross = 0;
  for (std::size_t i = 0; i < 8; ++i) {
    for (std::size_t j = i + 1; j < 8; ++j) {
      ((i < 4) == (j < 4) ? same : cross) += tcm.at(i, j);
    }
  }
  printf("  same-galaxy: %.0f KB, cross-galaxy: %.0f KB (ratio %.1fx)\n",
         same / 1024, cross / 1024, cross > 0 ? same / cross : 0.0);
  return 0;
}
