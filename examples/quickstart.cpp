// Quickstart: a 60-line tour of the distributed JVM profiling API.
//
//   1. Stand up a 4-node cluster with correlation tracking at rate 4X,
//      governed by the closed-loop profiling controller.
//   2. Allocate shared objects and drive accesses from 8 threads.
//   3. Pull the thread correlation map out of the coordinator daemon.
//
// Build & run:  ./examples/quickstart
#include <iostream>

#include "core/djvm.hpp"
#include "profiling/accuracy.hpp"

using namespace djvm;

int main() {
  // --- 1. cluster ------------------------------------------------------------
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kSend;  // ship OALs to the coordinator
  cfg.sampling_rate_x = 4;                // "4 sampled objects per page"
  // The three-line governor setup: keep profiling under 2% of app time,
  // treat a 5% TCM movement as "still converging", adapt both directions.
  cfg.governor.enabled = true;
  cfg.governor.budget = 0.02;
  cfg.adapt_threshold = 0.05;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);

  // --- 2. shared data ----------------------------------------------------------
  // A class of 256-byte records; thread pairs (0,1), (2,3), ... share a pool.
  const ClassId record = djvm.registry().register_class("Record", 256);
  std::vector<std::vector<ObjectId>> pools(cfg.threads / 2);
  for (std::size_t pool = 0; pool < pools.size(); ++pool) {
    for (int i = 0; i < 128; ++i) {
      pools[pool].push_back(
          djvm.gos().alloc(record, static_cast<NodeId>(pool % cfg.nodes)));
    }
  }

  for (int round = 0; round < 4; ++round) {
    for (ThreadId t = 0; t < cfg.threads; ++t) {
      for (ObjectId obj : pools[t / 2]) {
        if (t % 2 == 0) {
          djvm.write(t, obj);
        } else {
          djvm.read(t, obj);
        }
      }
    }
    djvm.barrier_all();  // closes every thread's interval, shipping OALs
    // One governed epoch per round: the daemon rebuilds the TCM and the
    // governor adapts the sampling rates against its overhead budget.
    djvm.run_governed_epoch();
  }

  // --- 3. the thread correlation map -----------------------------------------
  djvm.pump_daemon();
  const SquareMatrix tcm = djvm.daemon().build_full();

  std::cout << "Thread correlation map (KB shared per thread pair):\n    ";
  for (ThreadId j = 0; j < cfg.threads; ++j) std::cout << " T" << j << "   ";
  std::cout << '\n';
  for (ThreadId i = 0; i < cfg.threads; ++i) {
    std::cout << "T" << i << ": ";
    for (ThreadId j = 0; j < cfg.threads; ++j) {
      printf("%5.1f ", tcm.at(i, j) / 1024.0);
    }
    std::cout << '\n';
  }

  std::cout << "\nProtocol: " << djvm.gos().stats().object_faults
            << " object faults, " << djvm.gos().stats().oal_entries
            << " OAL entries, "
            << djvm.net().stats().bytes_of(MsgCategory::kOal) << " OAL bytes\n";
  std::cout << "Governor: profiling overhead "
            << djvm.governor().meter().rolling_fraction() * 100.0
            << "% of app time (budget "
            << djvm.governor().config().overhead_budget * 100.0 << "%), "
            << (djvm.governor().converged() ? "converged" : "adapting") << "\n";
  std::cout << "Expected: strong diagonal pairs (T0,T1), (T2,T3), ... and ~zero "
               "elsewhere.\n";
  return 0;
}
