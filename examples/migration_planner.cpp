// Migration planning end-to-end: profile SOR with footprinting + stack
// sampling, mine stack invariants, resolve each thread's sticky set, and let
// the load balancer propose migrations whose locality gain beats the modeled
// cost — then execute the best one with sticky-set prefetch and show the
// post-migration fault savings.
//
// Build & run:  ./examples/migration_planner
#include <iostream>

#include "apps/sor.hpp"
#include "balance/load_balancer.hpp"
#include "common/table.hpp"
#include "core/djvm.hpp"
#include "sticky/resolution.hpp"

using namespace djvm;

int main() {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  cfg.footprinting = true;
  cfg.footprint_timer = FootprintTimerMode::kTimerBased;
  cfg.footprint_rearm = sim_ms(2);
  cfg.stack_sampling = true;
  cfg.stack_sampling_gap = sim_ms(8);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);

  SorParams p;
  p.rows = 512;
  p.cols = 2048;
  p.rounds = 4;
  SorWorkload w(p);
  std::cout << "Profiling SOR (" << p.rows << "x" << p.cols << ", "
            << cfg.threads << " threads on " << cfg.nodes << " nodes)...\n\n";
  execute_workload(djvm, w);
  djvm.pump_daemon();
  const SquareMatrix tcm = djvm.daemon().build_full();

  // --- per-thread profiles -----------------------------------------------------
  TextTable prof({"Thread", "Node", "SS footprint (KB)", "Stack invariants",
                  "Stack samples"});
  std::vector<ClassFootprint> footprints(cfg.threads);
  std::vector<std::uint64_t> contexts(cfg.threads);
  for (ThreadId t = 0; t < cfg.threads; ++t) {
    footprints[t] = djvm.footprints().footprint(t);
    contexts[t] = djvm.stack(t).context_bytes() + 1024;
    prof.add_row({TextTable::cell(std::uint64_t{t}),
                  TextTable::cell(std::uint64_t{djvm.gos().thread_node(t)}),
                  TextTable::cell(footprints[t].total() / 1024.0, 1),
                  TextTable::cell(std::uint64_t{djvm.last_invariants(t).size()}),
                  TextTable::cell(djvm.stack_samplers().stats(t).samples)});
  }
  prof.print(std::cout);

  // --- planning ------------------------------------------------------------------
  Placement current;
  current.node_of_thread.resize(cfg.threads);
  for (ThreadId t = 0; t < cfg.threads; ++t) {
    current.node_of_thread[t] = djvm.gos().thread_node(t);
  }
  const auto suggestions =
      plan_migrations(tcm, current, footprints, contexts, djvm.cost_model(),
                      cfg.nodes, cfg.costs.bytes_per_ns, 1);
  std::cout << "\nPlanner proposals (gain must beat modeled migration cost): "
            << suggestions.size() << '\n';
  if (suggestions.empty()) {
    std::cout << "  (none profitable: SOR's sticky sets outweigh its "
                 "boundary-row sharing,\n   so staying put is the right "
                 "call -- the cost model doing its job)\n";
  }
  TextTable st({"Thread", "From", "To", "Gain (KB)", "Cost (sim ms)", "Score"});
  for (const auto& s : suggestions) {
    st.add_row({TextTable::cell(std::uint64_t{s.thread}),
                TextTable::cell(std::uint64_t{s.from}),
                TextTable::cell(std::uint64_t{s.to}),
                TextTable::cell(s.gain_bytes / 1024.0, 1),
                TextTable::cell(static_cast<double>(s.cost) / 1e6, 2),
                TextTable::cell(s.score, 1)});
  }
  st.print(std::cout);

  // --- execute one migration with sticky-set prefetch -----------------------------
  const ThreadId migrant = suggestions.empty() ? 1 : suggestions.front().thread;
  const NodeId dest = suggestions.empty()
                          ? static_cast<NodeId>((djvm.gos().thread_node(1) + 1) %
                                                cfg.nodes)
                          : suggestions.front().to;
  JavaStack& stack = djvm.stack(migrant);
  stack.push(99, 2);
  stack.top().set_ref(0, w.row_object(1));
  std::vector<ObjectId> roots = djvm.last_invariants(migrant);
  if (roots.empty()) roots.push_back(w.row_object(1));

  const auto before = djvm.gos().stats().object_faults;
  const MigrationOutcome out = djvm.migration().migrate_with_resolution(
      migrant, dest, stack, roots, footprints[migrant], cfg.landmark_tolerance);
  // Replay the migrant's block to expose the residual faults.
  for (std::uint32_t r = 1; r <= p.rows / cfg.threads; ++r) {
    djvm.gos().read(migrant, w.row_object(r));
  }
  stack.pop();

  std::cout << "\nExecuted migration of thread " << migrant << " -> node " << dest
            << ":\n  context " << out.context_bytes << " B, prefetched "
            << out.prefetched_objects << " objects (" << out.prefetched_bytes
            << " B), resolution visited " << out.resolution.objects_visited
            << " objects, residual faults "
            << djvm.gos().stats().object_faults - before << '\n';
  return 0;
}
