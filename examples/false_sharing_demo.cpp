// Why fine-grained tracking matters: the same workload profiled at object
// grain (this system) and at page grain (a D-CVM-style page-based DSM).
//
// Threads share 64-byte counters in a strict pairwise pattern, but the
// counters of *different* pairs sit on the same 4 KB pages — a page-grain
// profiler reports heavy correlation between unrelated threads (false
// sharing), while the object-grain profile recovers the true structure.
//
// Build & run:  ./examples/false_sharing_demo
#include <cstdio>
#include <iostream>

#include "baseline/page_dsm.hpp"
#include "core/djvm.hpp"

using namespace djvm;

namespace {

void print_map(const char* title, const SquareMatrix& m) {
  std::cout << title << '\n';
  for (std::size_t i = 0; i < m.size(); ++i) {
    std::cout << "  ";
    for (std::size_t j = 0; j < m.size(); ++j) {
      printf("%7.0f", m.at(i, j));
    }
    std::cout << '\n';
  }
}

}  // namespace

int main() {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 6;
  cfg.oal_transfer = OalTransfer::kLocalOnly;  // full object-grain tracking
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);

  PageCorrelationTracker pages(djvm.heap(), cfg.threads);
  djvm.add_access_observer(
      [&](ThreadId t, ObjectId o, bool) { pages.on_access(t, o); });
  djvm.add_interval_observer([&](ThreadId t) { pages.on_interval_close(t); });

  // 64-byte counters, all allocated back-to-back on node 0: counters of all
  // three pairs interleave within each page.
  const ClassId counter = djvm.registry().register_class("Counter", 64);
  std::vector<std::vector<ObjectId>> pool(cfg.threads / 2);
  for (int i = 0; i < 64; ++i) {
    for (std::size_t pair = 0; pair < pool.size(); ++pair) {
      pool[pair].push_back(djvm.gos().alloc(counter, 0));
    }
  }

  for (int round = 0; round < 3; ++round) {
    for (ThreadId t = 0; t < cfg.threads; ++t) {
      for (ObjectId obj : pool[t / 2]) djvm.read(t, obj);
    }
    djvm.barrier_all();
  }
  djvm.pump_daemon();

  print_map("Object-grain (inherent) TCM — bytes shared per pair:",
            djvm.daemon().build_full());
  std::cout << '\n';
  print_map("Page-grain (induced) TCM — what a page-based DSM sees:",
            pages.build_tcm());

  std::cout << "\nThe object-grain map is block-diagonal: pairs (0,1), (2,3), "
               "(4,5).\nThe page-grain map is nearly uniform: every page mixes "
               "all pairs'\ncounters, so unrelated threads appear correlated — "
               "exactly the\ndistortion of the paper's Fig. 1(b).\n";
  return 0;
}
