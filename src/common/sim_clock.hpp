// Simulated time base.
//
// The simulator advances two clocks: real wall time (measured around runs for
// overhead percentages, because the profiling code paths are real code) and
// *simulated* time, which models the 2002-era cluster the paper used and
// drives the deterministic timer-based samplers (stack sampling gap,
// footprinting on/off phases).  Simulated time is tracked per thread and
// synchronised at barriers/locks.
#pragma once

#include <cstdint>

namespace djvm {

/// Simulated nanoseconds.
using SimTime = std::uint64_t;

inline constexpr SimTime sim_us(std::uint64_t us) noexcept { return us * 1000; }
inline constexpr SimTime sim_ms(std::uint64_t ms) noexcept { return ms * 1000 * 1000; }

/// Per-thread simulated clock.  Threads advance independently between
/// synchronisation points; barrier/lock implementations align them.
class SimClock {
 public:
  [[nodiscard]] SimTime now() const noexcept { return now_; }
  void advance(SimTime dt) noexcept { now_ += dt; }
  /// Moves the clock forward to `t` if `t` is later (never backwards).
  void align_to(SimTime t) noexcept {
    if (t > now_) now_ = t;
  }
  void reset() noexcept { now_ = 0; }

 private:
  SimTime now_ = 0;
};

/// Simulated machine cost model, loosely calibrated to the paper's testbed
/// (P4 2 GHz nodes, Fast Ethernet).  All constants are knobs in Config; these
/// are the defaults.
struct SimCosts {
  SimTime access_fast_path = 5;        ///< inlined state check, cache hit
  SimTime access_fault_fixed = 2000;   ///< GOS service routine entry, bookkeeping
  /// Simulated nanoseconds per workload "flop".  100 ns/flop reproduces the
  /// paper's single-thread execution times within ~2x (Kaffe JIT on a P4
  /// 2 GHz: their 2K x 2K SOR runs 24 s; ours simulates ~25 s at this rate).
  SimTime compute_per_flop = 100;
  SimTime message_latency = sim_us(100);  ///< one-way small-message latency
  double bytes_per_ns = 0.0125;        ///< 12.5 MB/s Fast Ethernet payload rate
  /// Transfer time of a `bytes`-sized payload, excluding latency.
  [[nodiscard]] SimTime transfer_time(std::uint64_t bytes) const noexcept {
    return static_cast<SimTime>(static_cast<double>(bytes) / bytes_per_ns);
  }
};

}  // namespace djvm
