// Deterministic pseudo-random number generation for workloads and tests.
//
// Every stochastic choice in the simulator (body positions, molecule
// velocities, synthetic sharing patterns) flows through SplitMix64 so that a
// given seed reproduces byte-identical traffic counts and correlation maps.
#pragma once

#include <cstdint>

namespace djvm {

/// SplitMix64: tiny, fast, and statistically solid for simulation purposes.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  /// Next raw 64-bit value.
  std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  /// Uniform double in [0, 1).
  double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) noexcept {
    return lo + (hi - lo) * next_double();
  }

  /// Uniform integer in [0, bound) for bound > 0.
  std::uint64_t next_below(std::uint64_t bound) noexcept {
    return next() % bound;
  }

 private:
  std::uint64_t state_;
};

}  // namespace djvm
