// Prime-number helpers for sampling-gap selection.
//
// The paper (Section II.B.1) assigns each class a *nominal* sampling gap that
// is a power of two and then uses the nearest prime as the *real* gap:
// "31, 67 and 127 would be chosen as the real sampling gaps for nominal
// sampling gaps of 32, 64 and 128 respectively."  Prime gaps avoid
// non-uniform sampling under cyclic allocation behaviours (an allocator that
// hands out objects in a repeating pattern of period p would otherwise sample
// a biased residue class whenever gcd(gap, p) > 1).
#pragma once

#include <cstdint>

namespace djvm {

/// Deterministic primality test valid for all 64-bit inputs.
[[nodiscard]] bool is_prime(std::uint64_t n) noexcept;

/// Returns the prime nearest to `n`; equidistant ties break toward the
/// *larger* prime (61 and 67 are both distance 3 from 64; the paper picks
/// 67).  So nearest_prime(32) == 31 and nearest_prime(64) == 67.
/// For n <= 2 returns 2.  nearest_prime(1) == 2 by convention; a gap of 1
/// (full sampling) is handled by callers before consulting this function.
[[nodiscard]] std::uint64_t nearest_prime(std::uint64_t n) noexcept;

/// Largest prime <= n (returns 2 for n < 2).
[[nodiscard]] std::uint64_t prime_at_most(std::uint64_t n) noexcept;

/// Smallest prime >= n.
[[nodiscard]] std::uint64_t prime_at_least(std::uint64_t n) noexcept;

}  // namespace djvm
