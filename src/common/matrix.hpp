// Dense square matrix used for thread correlation maps (TCMs), plus the
// flat upper-triangular pair accumulator the sparse TCM pipeline sums into.
//
// A TCM is an N x N histogram where cell (i, j) accumulates the bytes of
// shared objects accessed in common by thread i and thread j within the
// profiled window (paper Section II).  The matrix is symmetric with an unused
// diagonal by construction, but this container is a plain dense matrix so it
// can also serve page-grain induced maps and test fixtures.
#pragma once

#include <cassert>
#include <cstddef>
#include <utility>
#include <vector>

namespace djvm {

/// Row-major dense square matrix of doubles.
class SquareMatrix {
 public:
  SquareMatrix() = default;
  explicit SquareMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  double& at(std::size_t i, std::size_t j) {
    assert(i < n_ && j < n_);
    return data_[i * n_ + j];
  }
  double at(std::size_t i, std::size_t j) const {
    assert(i < n_ && j < n_);
    return data_[i * n_ + j];
  }

  /// Adds `v` symmetrically to cells (i, j) and (j, i).
  void add_symmetric(std::size_t i, std::size_t j, double v) {
    at(i, j) += v;
    if (i != j) at(j, i) += v;
  }

  /// Sum of all cells.
  [[nodiscard]] double total() const noexcept {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
  }

  /// Multiplies every cell by `factor` (used for Horvitz-Thompson scaling).
  void scale(double factor) noexcept {
    for (double& v : data_) v *= factor;
  }

  void fill(double v) noexcept {
    for (double& c : data_) c = v;
  }

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& raw() noexcept { return data_; }

  bool operator==(const SquareMatrix& other) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

/// Strictly-upper-triangular pair accumulator over N endpoints: N(N-1)/2
/// cells in one flat buffer instead of a dense N x N matrix.  TCM accrual is
/// symmetric with an unused diagonal, so this is the natural shape for the
/// sparse pipeline's partial sums — half the memory of SquareMatrix, O(1)
/// unordered-pair updates with no hashing, and cheap `operator+=` merges of
/// partials (distributed shards, per-worker accumulators).  Densify to a
/// symmetric SquareMatrix only when a consumer needs the full map.
class UpperTriangle {
 public:
  UpperTriangle() = default;
  explicit UpperTriangle(std::size_t n)
      : n_(n), cells_(n > 1 ? n * (n - 1) / 2 : 0, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }
  [[nodiscard]] std::size_t cell_count() const noexcept { return cells_.size(); }

  /// Flat index of the unordered pair {i, j}, i != j, both < size().
  [[nodiscard]] std::size_t index(std::size_t i, std::size_t j) const {
    if (i > j) std::swap(i, j);
    assert(i < j && j < n_);
    return i * n_ - i * (i + 1) / 2 + (j - i - 1);
  }

  /// Adds `v` to the unordered pair {i, j} (i != j).
  void add(std::size_t i, std::size_t j, double v) { cells_[index(i, j)] += v; }

  [[nodiscard]] double at(std::size_t i, std::size_t j) const {
    return cells_[index(i, j)];
  }

  /// Merges another accumulator of the same dimension (partial sums add).
  UpperTriangle& operator+=(const UpperTriangle& other) {
    assert(n_ == other.n_);
    for (std::size_t k = 0; k < cells_.size(); ++k) cells_[k] += other.cells_[k];
    return *this;
  }

  /// Zeroes every cell, keeping the allocation.
  void clear() noexcept {
    for (double& c : cells_) c = 0.0;
  }

  /// Expands to the symmetric dense map (the on-demand densify step).
  [[nodiscard]] SquareMatrix densify() const {
    SquareMatrix m(n_);
    std::size_t k = 0;
    for (std::size_t i = 0; i < n_; ++i) {
      for (std::size_t j = i + 1; j < n_; ++j, ++k) {
        const double v = cells_[k];
        if (v != 0.0) {
          m.at(i, j) = v;
          m.at(j, i) = v;
        }
      }
    }
    return m;
  }

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return cells_; }

 private:
  std::size_t n_ = 0;
  std::vector<double> cells_;
};

}  // namespace djvm
