// Dense square matrix used for thread correlation maps (TCMs).
//
// A TCM is an N x N histogram where cell (i, j) accumulates the bytes of
// shared objects accessed in common by thread i and thread j within the
// profiled window (paper Section II).  The matrix is symmetric with an unused
// diagonal by construction, but this container is a plain dense matrix so it
// can also serve page-grain induced maps and test fixtures.
#pragma once

#include <cassert>
#include <cstddef>
#include <vector>

namespace djvm {

/// Row-major dense square matrix of doubles.
class SquareMatrix {
 public:
  SquareMatrix() = default;
  explicit SquareMatrix(std::size_t n) : n_(n), data_(n * n, 0.0) {}

  [[nodiscard]] std::size_t size() const noexcept { return n_; }

  double& at(std::size_t i, std::size_t j) {
    assert(i < n_ && j < n_);
    return data_[i * n_ + j];
  }
  double at(std::size_t i, std::size_t j) const {
    assert(i < n_ && j < n_);
    return data_[i * n_ + j];
  }

  /// Adds `v` symmetrically to cells (i, j) and (j, i).
  void add_symmetric(std::size_t i, std::size_t j, double v) {
    at(i, j) += v;
    if (i != j) at(j, i) += v;
  }

  /// Sum of all cells.
  [[nodiscard]] double total() const noexcept {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
  }

  /// Multiplies every cell by `factor` (used for Horvitz-Thompson scaling).
  void scale(double factor) noexcept {
    for (double& v : data_) v *= factor;
  }

  void fill(double v) noexcept {
    for (double& c : data_) c = v;
  }

  [[nodiscard]] const std::vector<double>& raw() const noexcept { return data_; }
  [[nodiscard]] std::vector<double>& raw() noexcept { return data_; }

  bool operator==(const SquareMatrix& other) const = default;

 private:
  std::size_t n_ = 0;
  std::vector<double> data_;
};

}  // namespace djvm
