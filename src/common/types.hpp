// Strong identifier types shared by every subsystem of the distributed JVM.
//
// The simulator models a cluster of worker JVMs ("nodes"), each hosting Java
// threads that allocate objects into a Global Object Space.  Identifiers are
// plain integral types wrapped in distinct aliases; invalid sentinels are the
// all-ones value of the underlying type.
#pragma once

#include <cstdint>
#include <limits>

namespace djvm {

/// Index of a worker JVM in the cluster (the master/coordinator is node 0 in
/// most experiment setups, matching the "master JVM" of JESSICA2's Fig. 2).
using NodeId = std::uint16_t;

/// Cluster-unique Java thread identifier.
using ThreadId = std::uint32_t;

/// Identifier of a loaded class (index into the KlassRegistry).
using ClassId = std::uint32_t;

/// Cluster-unique identifier of a heap object (scalar or array).
using ObjectId = std::uint64_t;

/// Identifier of an HLRC interval (monotonic per thread).
using IntervalId = std::uint64_t;

/// Identifier of a distributed lock.
using LockId = std::uint32_t;

/// Monotonic identifier of a stack frame instance (never reused, so popped
/// frames can be distinguished from fresh frames at the same depth).
using FrameId = std::uint64_t;

/// Identifier of a tenant: one governed workload sharing the cluster with
/// others under the budget arbiter (see governor/arbiter.hpp).  Single-tenant
/// runs use tenant 0 throughout.
using TenantId = std::uint32_t;

inline constexpr NodeId kInvalidNode = std::numeric_limits<NodeId>::max();
inline constexpr ThreadId kInvalidThread = std::numeric_limits<ThreadId>::max();
inline constexpr ClassId kInvalidClass = std::numeric_limits<ClassId>::max();
inline constexpr ObjectId kInvalidObject = std::numeric_limits<ObjectId>::max();
inline constexpr FrameId kInvalidFrame = std::numeric_limits<FrameId>::max();
inline constexpr TenantId kInvalidTenant = std::numeric_limits<TenantId>::max();

/// Size of a virtual-memory page; the paper expresses sampling rates as
/// "nX" = n sampled objects per page of this size.
inline constexpr std::size_t kPageSize = 4096;

/// Machine word size assumed by the paper's "1024X = full sampling for the
/// smallest possible object" argument (4-byte words on the Gideon cluster).
inline constexpr std::size_t kWordSize = 4;

}  // namespace djvm
