#include "common/config.hpp"

#include <sstream>

namespace djvm {

std::string Config::summary() const {
  std::ostringstream os;
  os << "nodes=" << nodes << " threads=" << threads << " seed=" << seed;
  os << " oal=";
  switch (oal_transfer) {
    case OalTransfer::kDisabled: os << "off"; break;
    case OalTransfer::kLocalOnly: os << "local"; break;
    case OalTransfer::kSend: os << "send"; break;
  }
  if (sampling_rate_x == 0) {
    os << " rate=full";
  } else {
    os << " rate=" << sampling_rate_x << "X";
  }
  if (stack_sampling) {
    os << " stack_gap=" << stack_sampling_gap / 1000000 << "ms"
       << (extraction == ExtractionMode::kLazy ? "/lazy" : "/immediate");
  }
  if (footprinting) {
    os << " footprint="
       << (footprint_timer == FootprintTimerMode::kNonstop ? "nonstop" : "timer");
  }
  if (governor.enabled) {
    os << " governor=" << governor.budget * 100.0 << "%";
    if (governor.per_node) {
      os << "/node";
      if (governor.node_budget > 0.0) {
        os << "=" << governor.node_budget * 100.0 << "%";
      }
    }
  }
  os << " ingest=arena" << ingest.arena_entries << "x" << ingest.ring_depth;
  if (tenant.id != 0 || !tenant.name.empty()) {
    os << " tenant=" << (tenant.name.empty()
                             ? "tenant-" + std::to_string(tenant.id)
                             : tenant.name)
       << "/tier" << tenant.tier;
  }
  if (balance.max_migrations_per_epoch > 0) {
    os << " balance=" << balance.max_migrations_per_epoch << "/epoch";
    if (balance.dry_run) os << "(dry)";
  }
  return os.str();
}

}  // namespace djvm
