// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320), dependency-free.
//
// Used as the integrity footer on governor snapshots (format v6+): the
// encoder appends crc32(bytes[0..n)) and the parser refuses any blob whose
// footer does not match, so a torn write or bit flip can never decode into a
// plausible-but-wrong governor state.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace djvm {

namespace detail {
inline constexpr std::array<std::uint32_t, 256> make_crc32_table() noexcept {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}
inline constexpr auto kCrc32Table = make_crc32_table();
}  // namespace detail

/// CRC of `size` bytes starting at `data`, continuing from `seed` (pass the
/// previous return value to checksum a buffer in chunks; default starts a
/// fresh checksum).
[[nodiscard]] inline std::uint32_t crc32(const void* data, std::size_t size,
                                         std::uint32_t seed = 0) noexcept {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = detail::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace djvm
