// Small statistics helpers shared by the profilers and the bench harnesses.
#pragma once

#include <cstddef>
#include <span>
#include <string>
#include <vector>

namespace djvm {

/// Arithmetic mean of a sample (0 for an empty span).
[[nodiscard]] double mean(std::span<const double> xs) noexcept;

/// Population standard deviation (0 for fewer than two samples).
[[nodiscard]] double stddev(std::span<const double> xs) noexcept;

/// Median (0 for an empty span); copies and sorts internally.
[[nodiscard]] double median(std::span<const double> xs);

/// Relative difference |a - b| / |b| (0 when both are 0; +inf when only b is).
[[nodiscard]] double relative_diff(double a, double b) noexcept;

/// Running accumulator for means/extrema without storing the samples.
class RunningStats {
 public:
  void add(double x) noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? sum_ / static_cast<double>(n_) : 0.0; }
  [[nodiscard]] double sum() const noexcept { return sum_; }
  [[nodiscard]] double min() const noexcept { return min_; }
  [[nodiscard]] double max() const noexcept { return max_; }

 private:
  std::size_t n_ = 0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Fixed-width bucket histogram over [lo, hi); values outside are clamped
/// into the edge buckets.  Used by tests to check sampling uniformity.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);
  void add(double x) noexcept;
  [[nodiscard]] std::size_t bucket_count() const noexcept { return counts_.size(); }
  [[nodiscard]] std::uint64_t count(std::size_t b) const { return counts_.at(b); }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  /// Coefficient of variation of bucket counts (0 = perfectly uniform).
  [[nodiscard]] double uniformity_cv() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace djvm
