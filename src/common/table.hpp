// Plain-text table printer used by the bench harnesses to emit rows in the
// shape of the paper's tables (aligned columns, "N/A" cells, percent deltas).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace djvm {

/// Column-aligned text table.  Cells are strings; helpers format the common
/// cell shapes that appear in the paper's tables.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> header);

  void add_row(std::vector<std::string> cells);

  /// Renders with column padding and a separator line under the header.
  void print(std::ostream& os) const;

  [[nodiscard]] std::size_t rows() const noexcept { return rows_.size(); }

  // --- cell formatting helpers --------------------------------------------
  /// "1234" style integer cell.
  static std::string cell(std::uint64_t v);
  /// Fixed-point double with `digits` decimals.
  static std::string cell(double v, int digits = 2);
  /// "12345 (3.21%)" — a measurement plus its delta vs a baseline.
  static std::string cell_with_pct(double value, double baseline, int digits = 0);
  /// "97.42%" percentage cell.
  static std::string cell_pct(double fraction, int digits = 2);
  /// The literal "N/A" used where a configuration does not apply.
  static std::string na();

 private:
  std::vector<std::string> header_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace djvm
