#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace djvm {

double mean(std::span<const double> xs) noexcept {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) noexcept {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double acc = 0.0;
  for (double x : xs) acc += (x - m) * (x - m);
  return std::sqrt(acc / static_cast<double>(xs.size()));
}

double median(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  std::vector<double> v(xs.begin(), xs.end());
  std::sort(v.begin(), v.end());
  const std::size_t mid = v.size() / 2;
  if (v.size() % 2 == 1) return v[mid];
  return 0.5 * (v[mid - 1] + v[mid]);
}

double relative_diff(double a, double b) noexcept {
  if (a == b) return 0.0;
  if (b == 0.0) return std::numeric_limits<double>::infinity();
  return std::abs(a - b) / std::abs(b);
}

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  sum_ += x;
  ++n_;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0) {}

void Histogram::add(double x) noexcept {
  if (counts_.empty()) return;
  double t = (x - lo_) / (hi_ - lo_);
  t = std::clamp(t, 0.0, 1.0);
  auto b = static_cast<std::size_t>(t * static_cast<double>(counts_.size()));
  if (b >= counts_.size()) b = counts_.size() - 1;
  ++counts_[b];
  ++total_;
}

double Histogram::uniformity_cv() const {
  if (counts_.empty() || total_ == 0) return 0.0;
  std::vector<double> xs(counts_.begin(), counts_.end());
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

}  // namespace djvm
