#include "common/table.hpp"

#include <algorithm>
#include <iomanip>
#include <ostream>
#include <sstream>

namespace djvm {

TextTable::TextTable(std::vector<std::string> header) : header_(std::move(header)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(header_.size());
  rows_.push_back(std::move(cells));
}

void TextTable::print(std::ostream& os) const {
  std::vector<std::size_t> widths(header_.size(), 0);
  for (std::size_t c = 0; c < header_.size(); ++c) widths[c] = header_[c].size();
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      widths[c] = std::max(widths[c], row[c].size());
    }
  }
  auto print_row = [&](const std::vector<std::string>& row) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      os << std::left << std::setw(static_cast<int>(widths[c]) + 2) << row[c];
    }
    os << '\n';
  };
  print_row(header_);
  std::size_t total = 0;
  for (std::size_t w : widths) total += w + 2;
  os << std::string(total, '-') << '\n';
  for (const auto& row : rows_) print_row(row);
}

std::string TextTable::cell(std::uint64_t v) { return std::to_string(v); }

std::string TextTable::cell(double v, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << v;
  return os.str();
}

std::string TextTable::cell_with_pct(double value, double baseline, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << value;
  if (baseline > 0.0) {
    const double pct = (value - baseline) / baseline * 100.0;
    os << " (" << std::showpos << std::setprecision(2) << pct << std::noshowpos << "%)";
  }
  return os.str();
}

std::string TextTable::cell_pct(double fraction, int digits) {
  std::ostringstream os;
  os << std::fixed << std::setprecision(digits) << fraction * 100.0 << '%';
  return os.str();
}

std::string TextTable::na() { return "N/A"; }

}  // namespace djvm
