#include "common/primes.hpp"

namespace djvm {
namespace {

// Deterministic Miller-Rabin witness set covering all 64-bit integers.
constexpr std::uint64_t kWitnesses[] = {2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37};

std::uint64_t mulmod(std::uint64_t a, std::uint64_t b, std::uint64_t m) noexcept {
  return static_cast<std::uint64_t>((static_cast<__uint128_t>(a) * b) % m);
}

std::uint64_t powmod(std::uint64_t base, std::uint64_t exp, std::uint64_t m) noexcept {
  std::uint64_t result = 1;
  base %= m;
  while (exp > 0) {
    if (exp & 1) result = mulmod(result, base, m);
    base = mulmod(base, base, m);
    exp >>= 1;
  }
  return result;
}

}  // namespace

bool is_prime(std::uint64_t n) noexcept {
  if (n < 2) return false;
  for (std::uint64_t p : kWitnesses) {
    if (n == p) return true;
    if (n % p == 0) return false;
  }
  std::uint64_t d = n - 1;
  int r = 0;
  while ((d & 1) == 0) {
    d >>= 1;
    ++r;
  }
  for (std::uint64_t a : kWitnesses) {
    std::uint64_t x = powmod(a, d, n);
    if (x == 1 || x == n - 1) continue;
    bool composite = true;
    for (int i = 0; i < r - 1; ++i) {
      x = mulmod(x, x, n);
      if (x == n - 1) {
        composite = false;
        break;
      }
    }
    if (composite) return false;
  }
  return true;
}

std::uint64_t prime_at_most(std::uint64_t n) noexcept {
  if (n < 2) return 2;
  for (std::uint64_t c = n;; --c) {
    if (is_prime(c)) return c;
    if (c == 2) return 2;
  }
}

std::uint64_t prime_at_least(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  for (std::uint64_t c = n;; ++c) {
    if (is_prime(c)) return c;
  }
}

std::uint64_t nearest_prime(std::uint64_t n) noexcept {
  if (n <= 2) return 2;
  const std::uint64_t lo = prime_at_most(n);
  const std::uint64_t hi = prime_at_least(n);
  const std::uint64_t dlo = n - lo;
  const std::uint64_t dhi = hi - n;
  // Ties break toward the larger prime: the paper maps nominal 64 -> 67
  // (61 and 67 are equidistant from 64).
  return (dhi <= dlo) ? hi : lo;
}

}  // namespace djvm
