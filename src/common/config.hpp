// Central configuration for a DJVM simulation instance.
//
// Every experiment in the paper varies a handful of knobs: number of nodes
// and threads, per-class sampling rates (nX), whether OALs are shipped to the
// coordinator, stack-sampling gap, footprinting timer, etc.  Config gathers
// them so bench harnesses can express each table cell as a Config delta.
#pragma once

#include <cstdint>
#include <string>

#include "common/sim_clock.hpp"
#include "common/types.hpp"

namespace djvm {

/// How the access profiler treats OALs at interval close.
enum class OalTransfer : std::uint8_t {
  kDisabled,   ///< no OAL collection at all (baseline runs)
  kLocalOnly,  ///< collect OALs but never ship them (isolates CPU cost O1)
  kSend,       ///< ship OALs to the coordinator (adds network cost O2 + O3)
};

/// Stack-sample frame-content extraction strategy (paper Section III.B.3).
enum class ExtractionMode : std::uint8_t {
  kImmediate,  ///< extract slot contents on first visit
  kLazy,       ///< keep raw snapshot; extract on second visit only
};

/// Sticky-set footprinting scheduling (paper Section III.A.1).
enum class FootprintTimerMode : std::uint8_t {
  kNonstop,     ///< track during the whole interval
  kTimerBased,  ///< alternate on/off phases of `footprint_phase` length
};

/// How the governor scores classes when picking back-off victims.
enum class BackoffScoring : std::uint8_t {
  /// Legacy heuristic: estimated shared bytes per logged entry — treats all
  /// correlation mass as equally valuable, blind to whether the balancer
  /// would ever act on it (kept for ablation benches).
  kBytesPerEntry,
  /// Paper-thesis closing of the loop (default): weight each class's
  /// bytes-per-entry by its *placement influence* — the share of the class's
  /// pair mass the balancer actually acts on (contribution to the
  /// co-location partition cut, accepted migration-suggestion gains, remote
  /// thread-home-affinity mass), with exponential-decay memory across
  /// epochs.  Backoff then sheds the cells the balancer ignores anyway.
  kInfluenceWeighted,
};

/// Which node owns (and pays for) an object's sampling decision.
enum class CostAttribution : std::uint8_t {
  /// Legacy model: the object's *home* node owns one cluster-wide sampled
  /// bit and all resampling visits are billed to homes — a node caching
  /// many hot remote objects pays real cost the governor cannot see.
  kHomeNode,
  /// Paper model (default): every caching node keeps its copy's bit under
  /// its own effective gap and pays for resampling the copies it caches.
  kCachedCopy,
};

/// Profiling-governor knobs (Config::governor).
struct GovernorKnobs {
  /// Arm the closed-loop governor (budgeted bidirectional rate control with
  /// phase detection) when the profiling config is applied.  Off by default:
  /// the legacy one-way loop stays opt-in via
  /// governor().arm(GovernorConfig::legacy(threshold)).
  bool enabled = false;
  /// Overhead budget as a fraction of application time (0.02 = 2%).
  double budget = 0.02;
  /// Enforce the budget per worker node (Atys-style bounded local cost):
  /// back off only the classes dominating the worst offending node's cost,
  /// tighten cluster-wide only when every node is under budget.  On by
  /// default — the cluster-aggregate policy lets one hot node run far over
  /// budget while the average looks fine; set false to reproduce it.
  bool per_node = true;
  /// Per-node overhead budget as a fraction of that node's application
  /// time; 0 = inherit `budget`.
  double node_budget = 0.0;
};

/// Long-haul retention knobs for the daemon's whole-run accumulator
/// (Config::retention; see TcmAccumulator::compact).
struct RetentionKnobs {
  /// Evict or decay objects untouched for this many epochs (0 = retention
  /// off, the unbounded pre-retention behavior).
  std::uint32_t idle_epochs = 0;
  /// Stale-object byte decay per retention pass in [0, 1); 0 drops stale
  /// objects outright.
  double decay = 0.0;
  /// Run the retention compact pass every this many epochs.
  std::uint32_t compact_period = 4;
};

/// Observability-export knobs (Config::export_; the trailing underscore
/// dodges the keyword).
struct ExportKnobs {
  /// When non-empty, every run_governed_epoch() hands the fresh governor
  /// state + TCM to a background double-buffered snapshot writer targeting
  /// this path (crash-recovery snapshots without stalling the epoch loop;
  /// a slow disk coalesces queued snapshots, latest wins).
  std::string snapshot_path;
  /// When non-empty, every run_governed_epoch() appends one JSON metrics
  /// line (see export/timeline.hpp for the schema) to this path through the
  /// same async writer — the epoch loop never blocks on the log disk.  The
  /// file is truncated at construction, so each run starts a fresh log.
  std::string timeline_path;
  /// Influence entries per timeline line (largest shares first).
  std::uint32_t timeline_top_k = 4;
};

/// Mid-run migration-execution knobs (Config::balance): the execution stage
/// of Djvm::run_governed_epoch, which applies the migration planner's
/// top-scoring suggestions batched per epoch instead of only scoring them
/// for governor influence.
struct BalanceKnobs {
  /// Suggestions executed per governed epoch; 0 (default) disables the
  /// execution stage entirely — the planner still runs for influence
  /// scoring, the PR 5 behavior.
  std::uint32_t max_migrations_per_epoch = 0;
  /// Minimum planner score (locality gain over modeled migration cost) a
  /// suggestion needs before it executes; suggestions already require
  /// gain > cost (score > 1), so this adds safety margin on top.
  double min_score = 1.25;
  /// Epochs a migrated thread sits out before it may migrate again
  /// (dampens planner oscillation between near-equal placements).
  std::uint32_t cooldown_epochs = 4;
  /// Ablation: plan, score, and apply the cooldown/cap/min-score filters
  /// but execute nothing — reproduces the PR 5-era influence-only loop
  /// while paying the same planner cost as the executing run.
  bool dry_run = false;
  /// After a thread migrates, also migrate the homes of its resolved
  /// sticky-set objects still homed at the source node (their affinity
  /// mass follows the migrant), batched into one transfer.
  bool follow_homes = true;
  /// Cap on follow-the-thread home migrations per executed migration.
  std::uint32_t max_home_migrations = 64;
};

/// Fault-injection and reliable-transport knobs (Config::faults; see
/// net/faults.hpp).  Every stochastic decision derives from `seed` alone, so
/// one seed reproduces a bit-identical fault schedule — a failure seen in CI
/// replays locally from the same Config.
struct FaultKnobs {
  /// Attach the fault injector to the Network.  Off by default: with no
  /// injector attached, every transport path is bit-identical to the
  /// fault-free build (no RNG draws, no retry arithmetic).
  bool enabled = false;
  /// Seed for the fault schedule (independent of the workload seed, so
  /// faults can be varied against a fixed workload and vice versa).
  std::uint64_t fault_seed = 0xFA175EEDULL;
  /// Per-category message drop probability in [0, 1), indexed like
  /// MsgCategory (object-data, oal, control, migration).
  double drop_object_data = 0.0;
  double drop_oal = 0.0;
  double drop_control = 0.0;
  double drop_migration = 0.0;
  /// Probability a non-local message pays a latency spike, and its size.
  double spike_probability = 0.0;
  SimTime spike_ns = 0;
  /// Uniform extra jitter in [0, jitter_ns) added to each spike.
  SimTime jitter_ns = 0;
  /// Per-(node, epoch) probability the node spends the epoch stalled;
  /// every message it sends or receives pays `stall_ns` extra.
  double stall_probability = 0.0;
  SimTime stall_ns = 0;
  /// Timed full-node failure: at epoch `kill_epoch`, `kill_node` dies (all
  /// its messages drop until the run ends).  kInvalidNode = never.
  NodeId kill_node = kInvalidNode;
  std::uint64_t kill_epoch = ~0ull;
  /// Partition window [partition_begin, partition_end): nodes < partition_cut
  /// cannot reach nodes >= partition_cut and vice versa.
  std::uint64_t partition_begin = ~0ull;
  std::uint64_t partition_end = 0;
  NodeId partition_cut = 0;
  /// Reliable-transport policy: attempts beyond the first for round trips,
  /// reduction-tree partial exchanges, and migration/snapshot control
  /// messages; backoff doubles from `retry_backoff_ns` per retry and the
  /// wait is billed into the sender's overhead sample.
  std::uint32_t max_retries = 4;
  SimTime retry_backoff_ns = sim_us(200);
};

/// Lock-free OAL ingest knobs (Config::ingest; see profiling/ingest.hpp).
/// The arena transport is the only ingest path now — the legacy `enabled`
/// toggle (and the record-vector submit() hand-off it selected) retired with
/// CorrelationDaemon::submit().
struct IngestKnobs {
  /// Entries per log arena.
  std::uint32_t arena_entries = 4096;
  /// Arenas per ring (rounded up to a power of two).
  std::uint32_t ring_depth = 8;
};

/// Tenant identity knobs (Config::tenant): how this Djvm instance presents
/// itself to a cluster-level budget arbiter.  Defaults describe a standalone
/// single-tenant run; the ClusterCoordinator fills them in per tenant.
struct TenantKnobs {
  /// Tenant identifier; 0 for standalone runs.
  TenantId id = 0;
  /// Human-readable name for timelines and logs (empty = "tenant-<id>").
  std::string name;
  /// Priority tier for budget arbitration: lower tiers borrow first and are
  /// reclaimed from last (0 = most important).
  std::uint32_t tier = 0;
  /// Fair-share weight within the arbiter's global budget (relative to the
  /// other registered tenants' weights).
  double weight = 1.0;
};

/// Cluster budget-arbitration knobs (ArbiterKnobs; see governor/arbiter.hpp).
/// Not nested in Config — one arbiter spans many tenant Configs.
struct ArbiterKnobs {
  /// Global overhead ceiling across all tenants, as a fraction of cluster
  /// application time (the sum of per-tenant grants never exceeds this).
  double global_budget = 0.02;
  /// Guaranteed floor as a fraction of a tenant's fair share: even a maximal
  /// borrower cannot push a tenant below floor_share * fair.  Prevents
  /// priority-tier starvation.
  double floor_share = 0.25;
  /// Cap on any tenant's grant as a multiple of its fair share (bounds how
  /// much one hot tenant can absorb from the lending pool).
  double max_boost = 4.0;
  /// A tenant lends budget when its rolling overhead uses less than this
  /// fraction of its fair share; at or above the same line it qualifies as
  /// hot and may borrow from the pool.
  double lend_threshold = 0.60;
  /// Fraction of a lender's idle headroom actually offered to the pool per
  /// epoch (the rest is kept as slack so a waking tenant reclaims smoothly).
  double lend_ratio = 0.75;
};

/// The configuration state; Config derives from this.  Everything in the
/// tree reads and writes the nested knob names.
struct ConfigData {
  // --- cluster shape -------------------------------------------------------
  std::uint32_t nodes = 8;
  std::uint32_t threads = 8;
  std::uint64_t seed = 42;

  // --- correlation tracking ------------------------------------------------
  OalTransfer oal_transfer = OalTransfer::kDisabled;
  /// Sampling rate expressed as the paper's nX notation: objects per page.
  /// 0 means "full sampling" (gap 1).  The per-class gap is derived as
  /// nearest_prime(page / (instance_size * rate)).
  std::uint32_t sampling_rate_x = 0;
  /// TCM accrual period: rebuild after this many collected intervals.
  std::uint32_t tcm_epoch_intervals = 64;
  /// Convergence threshold on relative ABS distance for the adaptive
  /// rate controller.
  double adapt_threshold = 0.05;
  /// Piggyback OAL messages on lock/barrier traffic when destinations match.
  bool piggyback_oals = true;
  /// Who owns a shared object's sampling decision and pays its resampling
  /// cost (see CostAttribution; kHomeNode reproduces the pre-fix
  /// misattribution for ablation benches).
  CostAttribution cost_attribution = CostAttribution::kCachedCopy;

  // --- profiling governor --------------------------------------------------
  GovernorKnobs governor{};
  /// Back-off victim scoring (see BackoffScoring; kBytesPerEntry reproduces
  /// the pre-influence heuristic for ablation benches).
  BackoffScoring backoff_scoring = BackoffScoring::kInfluenceWeighted;

  // --- migration execution -------------------------------------------------
  BalanceKnobs balance{};

  // --- observability -------------------------------------------------------
  ExportKnobs export_{};
  RetentionKnobs retention{};

  // --- OAL ingest path -----------------------------------------------------
  IngestKnobs ingest{};

  // --- multi-tenant identity -----------------------------------------------
  TenantKnobs tenant{};

  // --- fault injection / reliable transport --------------------------------
  FaultKnobs faults{};

  // --- stack sampling ------------------------------------------------------
  bool stack_sampling = false;
  SimTime stack_sampling_gap = sim_ms(16);
  ExtractionMode extraction = ExtractionMode::kLazy;
  /// Minimum consecutive surviving comparisons before a slot counts as a
  /// stack-invariant reference.
  std::uint32_t invariant_min_rounds = 2;

  // --- sticky-set footprinting --------------------------------------------
  bool footprinting = false;
  FootprintTimerMode footprint_timer = FootprintTimerMode::kTimerBased;
  SimTime footprint_phase = sim_ms(100);
  /// Re-arm period for repeated in-interval tracking of sampled objects.
  SimTime footprint_rearm = sim_ms(10);
  /// Lower bound on the footprinting sampling gap (the paper bounds it to
  /// keep repeated tracking cheap).
  std::uint32_t footprint_min_gap = 1;
  /// Landmark tolerance `t` for sticky-set resolution (paper: t > 1).
  double landmark_tolerance = 2.0;

  // --- simulated machine ---------------------------------------------------
  SimCosts costs{};
};

/// Central configuration.  The deprecated flat aliases for the nested knob
/// names (the PR 7 `[[deprecated]]` reference shim) served their one-release
/// notice and are gone; everything reads and writes the nested names.
struct Config : ConfigData {
  /// Human-readable one-line summary for logs.
  [[nodiscard]] std::string summary() const;
};

}  // namespace djvm
