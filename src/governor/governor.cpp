#include "governor/governor.hpp"

#include <algorithm>
#include <cmath>

#include "balance/balancer_feedback.hpp"
#include "runtime/klass.hpp"

namespace djvm {

namespace {
/// Influence floor added to every class's normalized share so
/// zero-influence classes keep plain bytes-per-entry as their tiebreak
/// (and a class the balancer ignores is still backed off in benefit order,
/// not arbitrarily).
constexpr double kInfluenceScoreFloor = 0.01;
}  // namespace

Governor::Governor(SamplingPlan& plan, GovernorConfig cfg)
    : plan_(plan), cfg_(cfg), meter_(cfg.costs, cfg.meter_window) {}

void Governor::reset_controller_state(GovernorState state) {
  // Per-node backoff state is convergence progress too: a re-arm (or a
  // switch to a mode that can never relax shifts, like legacy) must drop the
  // shifts AND recompute the affected classes under the restored cluster
  // view, or the previously hot nodes stay silently under-sampled.
  if (plan_.has_node_gap_shifts()) {
    std::vector<std::uint8_t> affected(plan_.heap().registry().size(), 0);
    for (std::size_t n = 0; n < plan_.shift_node_count(); ++n) {
      for (const Klass& k : plan_.heap().registry().all()) {
        if (plan_.node_gap_shift(static_cast<NodeId>(n), k.id) != 0) {
          affected[static_cast<std::size_t>(k.id)] = 1;
        }
      }
    }
    plan_.clear_node_gap_shifts();
    std::vector<ClassId> ids;
    for (std::size_t c = 0; c < affected.size(); ++c) {
      if (affected[c] != 0) ids.push_back(static_cast<ClassId>(c));
    }
    plan_.resample_classes(ids);
  }
  meter_ = OverheadMeter(cfg_.costs, cfg_.meter_window);
  state_ = state;
  epochs_ = 0;
  rearms_ = 0;
  grace_ = 0;
  node_settle_ = 0;
  converged_gaps_.clear();
  influence_.clear();
  influence_seen_ = false;
}

void Governor::arm(GovernorConfig cfg) {
  // Keep the runtime within the same bounds the snapshot decoder enforces
  // (a shift >= 64 would be UB in enter_sentinel; 32..63 would produce
  // snapshots the same build then refuses to load).
  cfg.sentinel_coarsen_shifts = std::min<std::uint32_t>(cfg.sentinel_coarsen_shifts, 31);
  cfg.max_nominal_gap = std::max<std::uint32_t>(cfg.max_nominal_gap, 1);
  // A decay outside [0, 1] would amplify instead of remember.
  cfg.influence_decay = std::clamp(cfg.influence_decay, 0.0, 1.0);
  cfg_ = cfg;
  if (cfg_.legacy_one_way) {
    // The seed's one-way loop: same entry point, same reset semantics; only
    // the distance threshold matters to legacy_step.
    mode_ = GovernorMode::kLegacyOneWay;
  } else {
    mode_ = GovernorMode::kClosedLoop;
  }
  reset_controller_state(GovernorState::kAdapting);
}

void Governor::arm_legacy(double threshold) {
  cfg_.distance_threshold = threshold;
  cfg_.legacy_one_way = true;
  mode_ = GovernorMode::kLegacyOneWay;
  reset_controller_state(GovernorState::kAdapting);
}

void Governor::disarm() {
  // Keeps the terminal state: the seed API reported converged() == true
  // even after adaptation was switched off, and callers freeze-then-poll.
  mode_ = GovernorMode::kDisarmed;
}

void Governor::reset() {
  switch (mode_) {
    case GovernorMode::kDisarmed:
      // Unlike disarm() (freeze: terminal state stays pollable), a reset
      // discards convergence progress and measurements even when nothing
      // is armed — symmetric with the armed branches re-arming below.
      reset_controller_state(GovernorState::kIdle);
      break;
    case GovernorMode::kLegacyOneWay:
      arm_legacy(cfg_.distance_threshold);
      break;
    case GovernorMode::kClosedLoop:
      arm(cfg_);
      break;
  }
}

Governor::EpochOutcome Governor::on_epoch(std::optional<double> rel_distance,
                                          const OverheadSample& sample) {
  meter_.record(sample);
  ++epochs_;
  EpochOutcome out;
  switch (mode_) {
    case GovernorMode::kDisarmed:
      out.overhead_fraction = meter_.rolling_fraction();
      break;
    case GovernorMode::kLegacyOneWay:
      out = legacy_step(rel_distance);
      break;
    case GovernorMode::kClosedLoop:
      // An unmeasured sample (standalone daemon, no pump hook) carries no
      // app time: the overhead fraction is meaningless, so budget
      // enforcement is suspended and only distance-driven decisions run.
      out = closed_loop_step(rel_distance, sample.measured);
      break;
  }
  if (const std::optional<NodeId> worst = worst_live_node()) {
    out.offender = worst;
    out.offender_fraction = meter_.node_rolling_fraction(*worst);
  }
  return out;
}

void Governor::quarantine_node(NodeId node) {
  if (is_quarantined(node)) return;
  quarantined_.insert(
      std::upper_bound(quarantined_.begin(), quarantined_.end(), node), node);
}

std::optional<NodeId> Governor::worst_live_node() const {
  if (quarantined_.empty()) return meter_.worst_node();
  std::optional<NodeId> worst;
  double worst_frac = -1.0;
  for (std::size_t n = 0; n < meter_.node_count(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    if (is_quarantined(node)) continue;
    const double frac = meter_.node_rolling_fraction(node);
    if (frac > worst_frac) {
      worst_frac = frac;
      worst = node;
    }
  }
  return worst;
}

Governor::EpochOutcome Governor::legacy_step(std::optional<double> rel_distance) {
  EpochOutcome out;
  out.overhead_fraction = meter_.rolling_fraction();
  if (state_ != GovernorState::kAdapting || !rel_distance.has_value()) return out;
  if (*rel_distance > cfg_.distance_threshold) {
    bool any = false;
    out.resampled_objects = tighten(any);
    if (any) {
      out.rate_changed = true;
      out.action = GovernorAction::kTighten;
    } else {
      state_ = GovernorState::kConverged;  // everything already at full sampling
      out.action = GovernorAction::kConverge;
    }
  } else {
    state_ = GovernorState::kConverged;
    out.action = GovernorAction::kConverge;
  }
  return out;
}

Governor::EpochOutcome Governor::closed_loop_step(std::optional<double> rel_distance,
                                                  bool budget_known) {
  EpochOutcome out;
  const double frac = meter_.rolling_fraction();
  out.overhead_fraction = frac;
  const double hi = cfg_.overhead_budget * (1.0 + cfg_.hysteresis);
  const double lo = cfg_.overhead_budget * (1.0 - cfg_.hysteresis);

  // Phase detection: a distance spike while watching the sentinel means the
  // workload's sharing structure changed — restore the converged rates and
  // re-enter full adaptation.  The grace epoch skips the spurious spike the
  // sentinel's own rate change induces right after convergence.
  if (state_ == GovernorState::kSentinel && rel_distance.has_value()) {
    if (grace_ > 0) {
      --grace_;
    } else if (*rel_distance >
               cfg_.phase_spike_factor * cfg_.distance_threshold) {
      out.resampled_objects = restore_converged_gaps();
      state_ = GovernorState::kAdapting;
      ++rearms_;
      out.rate_changed = out.resampled_objects > 0;
      out.action = GovernorAction::kRearm;
      return out;
    }
  }

  // Budget enforcement wins over accuracy chasing — except against a phase
  // spike, which returned above: a stale map misdirects the balancer, so
  // re-arming is worth one more expensive epoch before the budget reins the
  // restored rates back in.  The latest epoch must also be over the bound:
  // the rolling window lags, and
  // repeating the back-off while only a past spike keeps the window high
  // would over-coarsen well past the budget.  Coarsening can only shrink
  // the *reducible* share (entry CPU, wire, resampling) — if the overshoot
  // comes from rate-independent costs (stack-sampling timers), backing off
  // further would destroy the correlation map without restoring the
  // budget, so the back-off stops once the reducible share is negligible.
  //
  // Per-node enforcement runs first: the worst offending node is held to
  // the node budget against its *own* application progress, and only the
  // classes dominating that node's cost are coarsened (via gap shifts that
  // leave every other node's rates alone).  The cluster-aggregate check
  // stays as a second line for the non-per-node policy and for a separately
  // configured cluster budget.
  const bool per_node = cfg_.per_node && meter_.node_count() > 0;
  const double node_budget = cfg_.effective_node_budget();
  const double node_hi = node_budget * (1.0 + cfg_.hysteresis);
  if (budget_known && per_node && node_settle_ > 0) {
    // Settle epoch: last epoch's per-node back-off resampled the offender's
    // heap slice, and that one-off cost is in this epoch's sample.
    --node_settle_;
  } else if (budget_known && per_node) {
    // Quarantined nodes never compete: their meter rows are ghosts of
    // pre-failure epochs, and coarsening a dead node's classes would shed
    // live accuracy to pay a bill nobody is running up.
    if (const std::optional<NodeId> worst = worst_live_node()) {
      const double nfrac = meter_.node_rolling_fraction(*worst);
      const double nred = meter_.node_rolling_reducible_fraction(*worst);
      if (nfrac > node_hi && meter_.node_epoch_fraction(*worst) > node_hi &&
          nred > 0.1 * node_budget) {
        const double fixed_share = std::isfinite(nfrac) ? nfrac - nred : 0.0;
        const double headroom = std::max(0.0, node_budget - fixed_share);
        const double shrink = std::isfinite(nred) && nred > 0.0
                                  ? headroom / nred
                                  : 0.0;
        out.resampled_objects = back_off_node(*worst, shrink);
        if (out.resampled_objects > 0) {
          if (state_ == GovernorState::kSentinel) grace_ = 1;
          node_settle_ = 1;
          out.rate_changed = true;
          out.action = GovernorAction::kBackOff;
          return out;
        }
      }
    }
  }
  const double reducible = meter_.rolling_reducible_fraction();
  if (budget_known && frac > hi && meter_.epoch_fraction() > hi &&
      reducible > 0.1 * cfg_.overhead_budget) {
    const double fixed_share = std::isfinite(frac) ? frac - reducible : 0.0;
    const double headroom = std::max(0.0, cfg_.overhead_budget - fixed_share);
    const double shrink = std::isfinite(reducible) && reducible > 0.0
                              ? headroom / reducible
                              : 0.0;
    out.resampled_objects = back_off(shrink);
    if (out.resampled_objects > 0) {
      // The rate change itself moves the next map; in sentinel that must
      // not read as a phase change (same reason enter_sentinel sets grace).
      if (state_ == GovernorState::kSentinel) grace_ = 1;
      out.rate_changed = true;
      out.action = GovernorAction::kBackOff;
      return out;
    }
  }

  // A node that backed off during a hot phase and has since cooled well
  // under the node budget gets its shifts decayed back toward the cluster
  // view (one decrement per class per epoch; the x2 margin inside
  // relax_node_shifts keeps the decay from oscillating against the
  // back-off above).  Runs in sentinel too — a cooled node should not stay
  // coarse just because the map converged in the meantime.
  if (budget_known && per_node && plan_.has_node_gap_shifts()) {
    bool any = false;
    const std::size_t visited = relax_node_shifts(any);
    if (any) {
      if (state_ == GovernorState::kSentinel) grace_ = 1;
      out.resampled_objects = visited;
      out.rate_changed = true;
      out.action = GovernorAction::kTighten;
      return out;
    }
  }

  if (state_ == GovernorState::kAdapting && rel_distance.has_value()) {
    // Cluster-wide tightening halves every class's gap — roughly doubling
    // every node's entry cost — so with per-node budgets it additionally
    // requires every node to sit under its own lower band.
    bool all_nodes_under = true;
    if (per_node) {
      const double node_lo = node_budget * (1.0 - cfg_.hysteresis);
      for (std::size_t n = 0; n < meter_.node_count(); ++n) {
        // A quarantined node abstains from the quorum: it will never report
        // "under budget" again, and letting it vote would freeze the whole
        // cluster's rates at the moment of its death.
        if (is_quarantined(static_cast<NodeId>(n))) continue;
        if (meter_.node_rolling_fraction(static_cast<NodeId>(n)) >= node_lo) {
          all_nodes_under = false;
          break;
        }
      }
    }
    if (*rel_distance <= cfg_.distance_threshold) {
      capture_converged_gaps();
      out.resampled_objects = enter_sentinel();
      out.rate_changed = out.resampled_objects > 0;
      out.action = GovernorAction::kConverge;
    } else if (!budget_known || (frac < lo && all_nodes_under)) {
      bool any = false;
      out.resampled_objects = tighten(any);
      if (any) {
        out.rate_changed = true;
        out.action = GovernorAction::kTighten;
      } else {
        // Full sampling everywhere and the map still moves: the workload is
        // inherently noisy at this rate; settle into the sentinel watch.
        capture_converged_gaps();
        out.resampled_objects = enter_sentinel();
        out.rate_changed = out.resampled_objects > 0;
        out.action = GovernorAction::kConverge;
      }
    }
  }
  return out;
}

void Governor::observe_balancer_feedback(const BalancerFeedback& fb) {
  if (!fb.valid) return;
  const std::size_t classes = std::max(fb.influence.size(), fb.mass.size());
  if (influence_.size() < classes) influence_.resize(classes, 0.0);
  const double decay = cfg_.influence_decay;
  for (std::size_t c = 0; c < classes; ++c) {
    const double observed = fb.share(static_cast<ClassId>(c));
    influence_[c] = influence_seen_
                        ? decay * influence_[c] + (1.0 - decay) * observed
                        : observed;  // first observation seeds, not halves
  }
  // Classes beyond this epoch's feedback decay toward zero: the balancer
  // saw cells and none of them were theirs.
  for (std::size_t c = classes; c < influence_.size(); ++c) {
    influence_[c] *= decay;
  }
  influence_seen_ = true;
}

void Governor::record_migration(const ExecutedMigration& m) {
  ++migrations_executed_;
  migration_history_.push_back(m);
  if (migration_history_.size() > kMigrationHistoryCap) {
    migration_history_.erase(
        migration_history_.begin(),
        migration_history_.end() -
            static_cast<std::ptrdiff_t>(kMigrationHistoryCap));
  }
  if (m.thread == kInvalidThread) return;
  if (last_migration_epoch_.size() <= m.thread) {
    last_migration_epoch_.resize(static_cast<std::size_t>(m.thread) + 1,
                                 kNeverMigrated);
  }
  last_migration_epoch_[m.thread] = m.epoch;
}

bool Governor::in_cooldown(ThreadId thread,
                           std::uint32_t cooldown_epochs) const noexcept {
  if (cooldown_epochs == 0) return false;
  if (thread >= last_migration_epoch_.size()) return false;
  const std::uint64_t stamp = last_migration_epoch_[thread];
  if (stamp == kNeverMigrated) return false;
  const auto now = static_cast<std::uint64_t>(epochs_);
  return now >= stamp && now - stamp < cooldown_epochs;
}

bool Governor::allow_migration_work() const noexcept {
  if (mode_ != GovernorMode::kClosedLoop) return true;
  return meter_.rolling_fraction() <=
         cfg_.overhead_budget * (1.0 + cfg_.hysteresis);
}

double Governor::backoff_score(ClassId id, const ClassEpochStats& stats) const {
  const double bytes_per_entry = static_cast<double>(stats.estimated_bytes) /
                                 static_cast<double>(stats.entries);
  if (cfg_.scoring != BackoffScoring::kInfluenceWeighted || !influence_seen_) {
    return bytes_per_entry;
  }
  return (kInfluenceScoreFloor + influence_share(id)) * bytes_per_entry;
}

std::size_t Governor::back_off(double shrink_to) {
  struct Candidate {
    ClassId id;
    double score;  ///< influence-weighted bytes per logged entry (benefit/cost)
    std::uint64_t entries;
  };
  const std::vector<ClassEpochStats>& stats = plan_.epoch_stats();
  std::vector<Candidate> candidates;
  double total_entries = 0.0;
  for (const Klass& k : plan_.heap().registry().all()) {
    const std::size_t idx = static_cast<std::size_t>(k.id);
    if (idx >= stats.size() || stats[idx].entries == 0) continue;
    total_entries += static_cast<double>(stats[idx].entries);
    if (k.sampling.nominal_gap >= cfg_.max_nominal_gap) continue;
    candidates.push_back({k.id, backoff_score(k.id, stats[idx]),
                          stats[idx].entries});
  }
  if (candidates.empty() || total_entries <= 0.0) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score != b.score ? a.score < b.score : a.id < b.id;
            });
  // Doubling a class's gap roughly halves its future entry cost.  Coarsen
  // worst-scored classes (at most one doubling each per epoch, to keep the
  // loop stable) until the projected cost fits the budget.
  const double target = std::clamp(shrink_to, 0.0, 1.0) * total_entries;
  double projected = total_entries;
  std::vector<ClassId> changed;
  for (const Candidate& c : candidates) {
    if (projected <= target) break;
    const std::uint64_t doubled =
        2ull * plan_.heap().registry().at(c.id).sampling.nominal_gap;
    plan_.set_nominal_gap(c.id, static_cast<std::uint32_t>(std::min<std::uint64_t>(
                                    doubled, cfg_.max_nominal_gap)));
    changed.push_back(c.id);
    projected -= static_cast<double>(c.entries) / 2.0;
  }
  return plan_.resample_classes(changed);
}

std::size_t Governor::back_off_node(NodeId node, double shrink_to) {
  const std::vector<std::vector<ClassEpochStats>>& by_node = plan_.node_epoch_stats();
  if (static_cast<std::size_t>(node) >= by_node.size()) return 0;
  const std::vector<ClassEpochStats>& stats = by_node[node];
  struct Candidate {
    ClassId id;
    double score;  ///< influence-weighted bytes per logged entry (benefit/cost)
    std::uint64_t entries;
  };
  std::vector<Candidate> candidates;
  double total_entries = 0.0;
  for (const Klass& k : plan_.heap().registry().all()) {
    const std::size_t idx = static_cast<std::size_t>(k.id);
    if (idx >= stats.size() || stats[idx].entries == 0) continue;
    total_entries += static_cast<double>(stats[idx].entries);
    if (plan_.effective_nominal_gap(node, k.id) >= cfg_.max_nominal_gap) continue;
    candidates.push_back({k.id, backoff_score(k.id, stats[idx]),
                          stats[idx].entries});
  }
  if (candidates.empty() || total_entries <= 0.0) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score != b.score ? a.score < b.score : a.id < b.id;
            });
  // Same projection as the cluster back_off, but doublings land on the
  // node's gap *shift*: only the offender's own copy view coarsens (the
  // resample walks exactly the copies it caches — remote-homed hot objects
  // included), and the cluster view the other nodes sample under stays
  // untouched.
  const double target = std::clamp(shrink_to, 0.0, 1.0) * total_entries;
  double projected = total_entries;
  std::vector<ClassId> changed;
  for (const Candidate& c : candidates) {
    if (projected <= target) break;
    plan_.set_node_gap_shift(node, c.id, plan_.node_gap_shift(node, c.id) + 1);
    changed.push_back(c.id);
    projected -= static_cast<double>(c.entries) / 2.0;
  }
  return plan_.resample_classes_on_node(node, changed);
}

std::size_t Governor::relax_node_shifts(bool& any) {
  any = false;
  std::size_t visited = 0;
  const double node_budget = cfg_.effective_node_budget();
  for (std::size_t n = 0; n < plan_.shift_node_count(); ++n) {
    const NodeId node = static_cast<NodeId>(n);
    // A dead node's fractions read as cooled only because nothing runs
    // there; leave its shifts frozen rather than "relaxing" a ghost.
    if (is_quarantined(node)) continue;
    // One decrement doubles the node's entry cost on the relaxed classes:
    // only relax when even the doubled cost would sit under the budget, so
    // the decay cannot ping-pong with the back-off across the dead band.
    if (meter_.node_rolling_fraction(node) * 2.0 >= node_budget) continue;
    if (meter_.node_epoch_fraction(node) * 2.0 >= node_budget) continue;
    std::vector<ClassId> changed;
    for (const Klass& k : plan_.heap().registry().all()) {
      const std::uint32_t shift = plan_.node_gap_shift(node, k.id);
      if (shift == 0) continue;
      plan_.set_node_gap_shift(node, k.id, shift - 1);
      changed.push_back(k.id);
    }
    if (!changed.empty()) {
      any = true;
      visited += plan_.resample_classes_on_node(node, changed);
    }
  }
  return visited;
}

std::size_t Governor::tighten(bool& any) {
  std::vector<ClassId> changed;
  for (Klass& k : plan_.heap().registry().all()) {
    if (k.sampling.nominal_gap > 1) {
      plan_.halve_gap(k.id);
      changed.push_back(k.id);
    }
  }
  any = !changed.empty();
  return plan_.resample_classes(changed);
}

void Governor::capture_converged_gaps() {
  const std::vector<Klass>& all = plan_.heap().registry().all();
  converged_gaps_.assign(all.size(), 0);  // 0 = not captured
  for (const Klass& k : all) {
    // A class with no rate assigned yet (registered, nothing allocated)
    // has a placeholder gap, not a converged one.
    if (!k.sampling.initialized) continue;
    converged_gaps_[static_cast<std::size_t>(k.id)] = k.sampling.nominal_gap;
  }
}

std::size_t Governor::enter_sentinel() {
  state_ = GovernorState::kSentinel;
  grace_ = 1;
  std::vector<ClassId> changed;
  for (const Klass& k : plan_.heap().registry().all()) {
    // Never-rated classes must stay uninitialized so their first allocation
    // still inherits the cluster default rate (set_nominal_gap would mark
    // them initialized and pin the placeholder gap).
    if (!k.sampling.initialized) continue;
    const std::uint64_t coarse = static_cast<std::uint64_t>(k.sampling.nominal_gap)
                                 << cfg_.sentinel_coarsen_shifts;
    const auto next = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(coarse, cfg_.max_nominal_gap));
    if (next != k.sampling.nominal_gap) {
      plan_.set_nominal_gap(k.id, next);
      changed.push_back(k.id);
    }
  }
  return plan_.resample_classes(changed);
}

std::size_t Governor::restore_converged_gaps() {
  std::vector<ClassId> changed;
  for (const Klass& k : plan_.heap().registry().all()) {
    const std::size_t idx = static_cast<std::size_t>(k.id);
    // 0 = never captured (class registered after convergence, or absent
    // from a decoded snapshot): leave its current gap alone rather than
    // clamping it to full sampling.
    if (idx >= converged_gaps_.size() || converged_gaps_[idx] == 0) continue;
    if (k.sampling.nominal_gap != converged_gaps_[idx]) {
      plan_.set_nominal_gap(k.id, converged_gaps_[idx]);
      changed.push_back(k.id);
    }
  }
  return plan_.resample_classes(changed);
}

}  // namespace djvm
