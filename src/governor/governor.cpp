#include "governor/governor.hpp"

#include <algorithm>
#include <cmath>

#include "runtime/klass.hpp"

namespace djvm {

Governor::Governor(SamplingPlan& plan, GovernorConfig cfg)
    : plan_(plan), cfg_(cfg), meter_(cfg.costs, cfg.meter_window) {}

void Governor::reset_controller_state(GovernorState state) {
  meter_ = OverheadMeter(cfg_.costs, cfg_.meter_window);
  state_ = state;
  epochs_ = 0;
  rearms_ = 0;
  grace_ = 0;
  converged_gaps_.clear();
}

void Governor::arm(GovernorConfig cfg) {
  // Keep the runtime within the same bounds the snapshot decoder enforces
  // (a shift >= 64 would be UB in enter_sentinel; 32..63 would produce
  // snapshots the same build then refuses to load).
  cfg.sentinel_coarsen_shifts = std::min<std::uint32_t>(cfg.sentinel_coarsen_shifts, 31);
  cfg.max_nominal_gap = std::max<std::uint32_t>(cfg.max_nominal_gap, 1);
  cfg_ = cfg;
  mode_ = GovernorMode::kClosedLoop;
  reset_controller_state(GovernorState::kAdapting);
}

void Governor::arm_legacy(double threshold) {
  cfg_.distance_threshold = threshold;
  mode_ = GovernorMode::kLegacyOneWay;
  reset_controller_state(GovernorState::kAdapting);
}

void Governor::disarm() {
  // Keeps the terminal state: the seed API reported converged() == true
  // even after adaptation was switched off, and callers freeze-then-poll.
  mode_ = GovernorMode::kDisarmed;
}

void Governor::reset() {
  switch (mode_) {
    case GovernorMode::kDisarmed:
      // Unlike disarm() (freeze: terminal state stays pollable), a reset
      // discards convergence progress and measurements even when nothing
      // is armed — symmetric with the armed branches re-arming below.
      reset_controller_state(GovernorState::kIdle);
      break;
    case GovernorMode::kLegacyOneWay:
      arm_legacy(cfg_.distance_threshold);
      break;
    case GovernorMode::kClosedLoop:
      arm(cfg_);
      break;
  }
}

Governor::EpochOutcome Governor::on_epoch(std::optional<double> rel_distance,
                                          const OverheadSample& sample) {
  meter_.record(sample);
  ++epochs_;
  switch (mode_) {
    case GovernorMode::kDisarmed: {
      EpochOutcome out;
      out.overhead_fraction = meter_.rolling_fraction();
      return out;
    }
    case GovernorMode::kLegacyOneWay:
      return legacy_step(rel_distance);
    case GovernorMode::kClosedLoop:
      // An unmeasured sample (standalone daemon, no pump hook) carries no
      // app time: the overhead fraction is meaningless, so budget
      // enforcement is suspended and only distance-driven decisions run.
      return closed_loop_step(rel_distance, sample.measured);
  }
  return {};
}

Governor::EpochOutcome Governor::legacy_step(std::optional<double> rel_distance) {
  EpochOutcome out;
  out.overhead_fraction = meter_.rolling_fraction();
  if (state_ != GovernorState::kAdapting || !rel_distance.has_value()) return out;
  if (*rel_distance > cfg_.distance_threshold) {
    bool any = false;
    out.resampled_objects = tighten(any);
    if (any) {
      out.rate_changed = true;
      out.action = GovernorAction::kTighten;
    } else {
      state_ = GovernorState::kConverged;  // everything already at full sampling
      out.action = GovernorAction::kConverge;
    }
  } else {
    state_ = GovernorState::kConverged;
    out.action = GovernorAction::kConverge;
  }
  return out;
}

Governor::EpochOutcome Governor::closed_loop_step(std::optional<double> rel_distance,
                                                  bool budget_known) {
  EpochOutcome out;
  const double frac = meter_.rolling_fraction();
  out.overhead_fraction = frac;
  const double hi = cfg_.overhead_budget * (1.0 + cfg_.hysteresis);
  const double lo = cfg_.overhead_budget * (1.0 - cfg_.hysteresis);

  // Phase detection: a distance spike while watching the sentinel means the
  // workload's sharing structure changed — restore the converged rates and
  // re-enter full adaptation.  The grace epoch skips the spurious spike the
  // sentinel's own rate change induces right after convergence.
  if (state_ == GovernorState::kSentinel && rel_distance.has_value()) {
    if (grace_ > 0) {
      --grace_;
    } else if (*rel_distance >
               cfg_.phase_spike_factor * cfg_.distance_threshold) {
      out.resampled_objects = restore_converged_gaps();
      state_ = GovernorState::kAdapting;
      ++rearms_;
      out.rate_changed = out.resampled_objects > 0;
      out.action = GovernorAction::kRearm;
      return out;
    }
  }

  // Budget enforcement wins over accuracy chasing — except against a phase
  // spike, which returned above: a stale map misdirects the balancer, so
  // re-arming is worth one more expensive epoch before the budget reins the
  // restored rates back in.  The latest epoch must also be over the bound:
  // the rolling window lags, and
  // repeating the back-off while only a past spike keeps the window high
  // would over-coarsen well past the budget.  Coarsening can only shrink
  // the *reducible* share (entry CPU, wire, resampling) — if the overshoot
  // comes from rate-independent costs (stack-sampling timers), backing off
  // further would destroy the correlation map without restoring the
  // budget, so the back-off stops once the reducible share is negligible.
  const double reducible = meter_.rolling_reducible_fraction();
  if (budget_known && frac > hi && meter_.epoch_fraction() > hi &&
      reducible > 0.1 * cfg_.overhead_budget) {
    const double fixed_share = std::isfinite(frac) ? frac - reducible : 0.0;
    const double headroom = std::max(0.0, cfg_.overhead_budget - fixed_share);
    const double shrink = std::isfinite(reducible) && reducible > 0.0
                              ? headroom / reducible
                              : 0.0;
    out.resampled_objects = back_off(shrink);
    if (out.resampled_objects > 0) {
      // The rate change itself moves the next map; in sentinel that must
      // not read as a phase change (same reason enter_sentinel sets grace).
      if (state_ == GovernorState::kSentinel) grace_ = 1;
      out.rate_changed = true;
      out.action = GovernorAction::kBackOff;
      return out;
    }
  }

  if (state_ == GovernorState::kAdapting && rel_distance.has_value()) {
    if (*rel_distance <= cfg_.distance_threshold) {
      capture_converged_gaps();
      out.resampled_objects = enter_sentinel();
      out.rate_changed = out.resampled_objects > 0;
      out.action = GovernorAction::kConverge;
    } else if (!budget_known || frac < lo) {
      bool any = false;
      out.resampled_objects = tighten(any);
      if (any) {
        out.rate_changed = true;
        out.action = GovernorAction::kTighten;
      } else {
        // Full sampling everywhere and the map still moves: the workload is
        // inherently noisy at this rate; settle into the sentinel watch.
        capture_converged_gaps();
        out.resampled_objects = enter_sentinel();
        out.rate_changed = out.resampled_objects > 0;
        out.action = GovernorAction::kConverge;
      }
    }
  }
  return out;
}

std::size_t Governor::back_off(double shrink_to) {
  struct Candidate {
    ClassId id;
    double score;  ///< estimated shared bytes per logged entry (benefit/cost)
    std::uint64_t entries;
  };
  const std::vector<ClassEpochStats>& stats = plan_.epoch_stats();
  std::vector<Candidate> candidates;
  double total_entries = 0.0;
  for (const Klass& k : plan_.heap().registry().all()) {
    const std::size_t idx = static_cast<std::size_t>(k.id);
    if (idx >= stats.size() || stats[idx].entries == 0) continue;
    total_entries += static_cast<double>(stats[idx].entries);
    if (k.sampling.nominal_gap >= cfg_.max_nominal_gap) continue;
    candidates.push_back({k.id,
                          static_cast<double>(stats[idx].estimated_bytes) /
                              static_cast<double>(stats[idx].entries),
                          stats[idx].entries});
  }
  if (candidates.empty() || total_entries <= 0.0) return 0;
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& a, const Candidate& b) {
              return a.score != b.score ? a.score < b.score : a.id < b.id;
            });
  // Doubling a class's gap roughly halves its future entry cost.  Coarsen
  // worst-scored classes (at most one doubling each per epoch, to keep the
  // loop stable) until the projected cost fits the budget.
  const double target = std::clamp(shrink_to, 0.0, 1.0) * total_entries;
  double projected = total_entries;
  std::vector<ClassId> changed;
  for (const Candidate& c : candidates) {
    if (projected <= target) break;
    const std::uint64_t doubled =
        2ull * plan_.heap().registry().at(c.id).sampling.nominal_gap;
    plan_.set_nominal_gap(c.id, static_cast<std::uint32_t>(std::min<std::uint64_t>(
                                    doubled, cfg_.max_nominal_gap)));
    changed.push_back(c.id);
    projected -= static_cast<double>(c.entries) / 2.0;
  }
  return plan_.resample_classes(changed);
}

std::size_t Governor::tighten(bool& any) {
  std::vector<ClassId> changed;
  for (Klass& k : plan_.heap().registry().all()) {
    if (k.sampling.nominal_gap > 1) {
      plan_.halve_gap(k.id);
      changed.push_back(k.id);
    }
  }
  any = !changed.empty();
  return plan_.resample_classes(changed);
}

void Governor::capture_converged_gaps() {
  const std::vector<Klass>& all = plan_.heap().registry().all();
  converged_gaps_.assign(all.size(), 0);  // 0 = not captured
  for (const Klass& k : all) {
    // A class with no rate assigned yet (registered, nothing allocated)
    // has a placeholder gap, not a converged one.
    if (!k.sampling.initialized) continue;
    converged_gaps_[static_cast<std::size_t>(k.id)] = k.sampling.nominal_gap;
  }
}

std::size_t Governor::enter_sentinel() {
  state_ = GovernorState::kSentinel;
  grace_ = 1;
  std::vector<ClassId> changed;
  for (const Klass& k : plan_.heap().registry().all()) {
    // Never-rated classes must stay uninitialized so their first allocation
    // still inherits the cluster default rate (set_nominal_gap would mark
    // them initialized and pin the placeholder gap).
    if (!k.sampling.initialized) continue;
    const std::uint64_t coarse = static_cast<std::uint64_t>(k.sampling.nominal_gap)
                                 << cfg_.sentinel_coarsen_shifts;
    const auto next = static_cast<std::uint32_t>(
        std::min<std::uint64_t>(coarse, cfg_.max_nominal_gap));
    if (next != k.sampling.nominal_gap) {
      plan_.set_nominal_gap(k.id, next);
      changed.push_back(k.id);
    }
  }
  return plan_.resample_classes(changed);
}

std::size_t Governor::restore_converged_gaps() {
  std::vector<ClassId> changed;
  for (const Klass& k : plan_.heap().registry().all()) {
    const std::size_t idx = static_cast<std::size_t>(k.id);
    // 0 = never captured (class registered after convergence, or absent
    // from a decoded snapshot): leave its current gap alone rather than
    // clamping it to full sampling.
    if (idx >= converged_gaps_.size() || converged_gaps_[idx] == 0) continue;
    if (k.sampling.nominal_gap != converged_gaps_[idx]) {
      plan_.set_nominal_gap(k.id, converged_gaps_[idx]);
      changed.push_back(k.id);
    }
  }
  return plan_.resample_classes(changed);
}

}  // namespace djvm
