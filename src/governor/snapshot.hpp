// Binary profile snapshots: governor state + converged TCM + per-class gaps.
//
// A restarted run pays the full convergence ramp again — epochs of
// over-sampling (wasted overhead) or under-sampling (wrong correlation map)
// until the controller settles.  A snapshot taken after convergence lets the
// next run warm-start at the converged rates and seed the daemon with the
// converged TCM, the distributed analog of a single-process profiler's
// `sample.prof` dump.
//
// Format v7, host-endian, fixed-width fields (round-trips bit-exactly on
// the writing host; a foreign-endian reader rejects the file at the magic
// check and cold-starts rather than misreading it):
//   u32 magic 'DJGV'   u32 version
//   u8 mode            u8 state
//   u8 flags (bit 0: per-node budget enforcement)   u8 reserved
//   f64 overhead_budget   f64 distance_threshold
//   f64 hysteresis        f64 phase_spike_factor
//   f64 node_budget (0 = inherit overhead_budget)          [v2+]
//   u32 sentinel_coarsen_shifts   u32 max_nominal_gap
//   u64 epochs_seen       u64 rearms
//   u32 class_count
//     class_count x { u32 class_id, u32 nominal_gap, u32 real_gap,
//                     u32 converged_nominal (0 = not captured),
//                     u32 flags (bit 0: rate was ever assigned; unset =
//                     placeholder gaps, left untouched on load so the
//                     class still inherits the cluster default rate) }
//   u32 shift_node_count                                    [v2+]
//     shift_node_count x class_count x u8 per-node gap shift [v2+]
//   u32 copy_node_count                                     [v3+]
//     copy_node_count x { u64 copy_registrations,           [v3+]
//                         u64 resample_visits }
//   u8 backoff_scoring   u8 influence_seen   u16 reserved   [v4]
//   f64 influence_decay                                     [v4]
//   u32 influence_count                                     [v4]
//     influence_count x { u32 class_id, f64 influence }     [v4]
//   u64 migrations_executed                                 [v5]
//   u32 migration_count                                     [v5]
//     migration_count x { u64 epoch, u32 thread,            [v5]
//                         u16 from_node, u16 to_node,
//                         f64 gain_bytes, f64 sim_cost_seconds,
//                         u64 prefetched_bytes }
//   u8 has_lease (0/1)                                      [v7]
//     if has_lease: { u32 tenant, u32 tier,                  [v7]
//                     f64 weight, f64 granted_budget,
//                     f64 fair_share, f64 floor,
//                     u64 borrowed_epochs, u64 lent_epochs }
//   u64 tcm_dimension
//     dimension^2 x f64 (row-major)
//   u32 crc32 over every preceding byte                      [v6]
//
// The v3 copy summary records the cached-copy sampling bookkeeping — how
// many copy bits each node has registered (fault-ins, prefetches) and how
// many resampling copy visits it has paid — so a warm-started run continues
// the counters that tell where sampling cost was actually incurred.
//
// The v4 influence table persists the governor's decayed balancer-influence
// shares (the fraction of each class's correlation mass placement decisions
// act on) plus the scoring mode and decay, so a warm-started run backs off
// the right classes immediately instead of re-learning influence from
// scratch.  Zero-influence classes are trimmed (bit-exact re-encode).
//
// The v5 migration history persists the facade's executed-migration log
// (see Governor::record_migration): per-thread cooldown stamps are rebuilt
// from the entries on load, so a warm-started run neither re-migrates a
// thread the previous run just moved nor forgets which moves the influence
// table already credits.
//
// The v6 CRC32 footer (common/crc32.hpp, IEEE polynomial) covers every
// preceding byte.  Files are always written temp-then-atomic-rename, so a
// crash mid-write leaves the previous good snapshot in place; the footer
// closes the remaining hole — a torn or bit-flipped blob that still *looks*
// structurally plausible is rejected at the checksum before any field is
// trusted.  v1–v5 files carry no footer and still load.
//
// v1 files (no flags byte meaning — it was reserved padding — and none of
// the [v2+] fields) still load: the restored governor keeps its
// machine-local per-node policy knobs and every node is seeded from the
// cluster view (all gap shifts zero), so a pre-per-node snapshot
// warm-starts a per-node governor cleanly.  v2 files load the same way
// minus the copy summary (counters start at zero).  v3 files additionally
// keep the live governor's machine-local scoring mode and influence table
// (pre-v4 snapshots have no opinion on either), and v4 files keep the
// history the live governor has already accumulated (pre-v5 snapshots
// carry no migration log).  The v7 tenant lease persists the arbiter grant
// governing the instance (identity, granted budget, fair share, floor,
// borrow/lend epoch counters) so a recovered tenant resumes under its last
// grant instead of snapping back to the static config budget; pre-v7 files
// leave the live governor's lease untouched.  Loading resamples only the
// classes whose gaps
// or shifts actually differ from the live plan, so restoring a snapshot
// into an already-warm world is not a full resample storm.
#pragma once

#include <condition_variable>
#include <cstdint>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "common/matrix.hpp"
#include "governor/governor.hpp"

namespace djvm {

inline constexpr std::uint32_t kSnapshotMagic = 0x56474A44;  // "DJGV"
/// Version written by encode_snapshot; decode also accepts the older
/// kSnapshotVersionV1..V6 layouts (read compatibility).
inline constexpr std::uint32_t kSnapshotVersion = 7;
inline constexpr std::uint32_t kSnapshotVersionV1 = 1;
inline constexpr std::uint32_t kSnapshotVersionV2 = 2;
inline constexpr std::uint32_t kSnapshotVersionV3 = 3;
/// Decode gates each section on its own pinned constant (never on the
/// moving kSnapshotVersion), so bumping the current version cannot silently
/// drop an older section from files that carry it.
inline constexpr std::uint32_t kSnapshotVersionV4 = 4;
inline constexpr std::uint32_t kSnapshotVersionV5 = 5;
/// First version carrying the CRC32 integrity footer.
inline constexpr std::uint32_t kSnapshotVersionV6 = 6;
/// First version carrying the tenant budget lease.
inline constexpr std::uint32_t kSnapshotVersionV7 = 7;

/// Serializes the governor's state, the plan's per-class gaps, and `tcm`
/// (pass the daemon's latest converged map).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Governor& gov,
                                                        const SquareMatrix& tcm);

/// Restores governor state and per-class gaps into `gov` (and its plan) and
/// writes the stored map into `tcm`.  The class registry must already hold
/// the snapshot's classes (warm starts re-register classes
/// deterministically).  Returns false on bad magic/version/truncation or
/// unknown class ids; the governor is unchanged on failure.
[[nodiscard]] bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                                   Governor& gov, SquareMatrix& tcm);

/// File convenience wrappers.  save_snapshot writes temp-then-atomic-rename
/// (shared with the async writer), so a crash mid-save never destroys the
/// previous good file.
[[nodiscard]] bool save_snapshot(const std::string& path, const Governor& gov,
                                 const SquareMatrix& tcm);
[[nodiscard]] bool load_snapshot(const std::string& path, Governor& gov,
                                 SquareMatrix& tcm);

/// Crash recovery: tries each candidate path in order (pass newest first)
/// and restores the first snapshot that loads — missing files and blobs the
/// decoder rejects (bad magic, truncation, failed v6 checksum) are skipped,
/// not fatal.  Returns the index of the candidate that loaded, or nullopt
/// for a cold start; the governor is untouched until a candidate validates
/// fully.
[[nodiscard]] std::optional<std::size_t> recover_snapshot(
    const std::vector<std::string>& candidates, Governor& gov,
    SquareMatrix& tcm);

/// Reads a JSONL timeline (one JSON object per '\n'-terminated line, as
/// written through SnapshotWriter::append_async) for post-crash analysis.
/// A torn final line — the crash landed mid-append, leaving bytes without
/// their terminating newline — is dropped rather than returned as garbage;
/// `torn`, when non-null, reports whether that happened.  Returns every
/// complete line in file order (empty on a missing or empty file).
[[nodiscard]] std::vector<std::string> recover_timeline(
    const std::string& path, bool* torn = nullptr);

/// Registry-independent view of one decoded snapshot, for offline tooling
/// (src/export/ and tools/djvm_export).  decode_snapshot applies a file to a
/// *live* governor and validates class ids against the live registry;
/// parse_snapshot checks structure only, so any v1–v7 file from any run can
/// be converted to pprof/flamegraph/JSON without reconstructing the run.
/// Kept next to the encoder because this file owns the format: a layout
/// change must update encode, decode, and parse together.
struct SnapshotInfo {
  std::uint32_t version = 0;
  std::uint8_t mode = 0;
  std::uint8_t state = 0;
  bool per_node = false;
  double overhead_budget = 0.0;
  double distance_threshold = 0.0;
  double hysteresis = 0.0;
  double phase_spike_factor = 0.0;
  double node_budget = 0.0;  ///< v2+ (0 on v1 files)
  std::uint32_t sentinel_coarsen_shifts = 0;
  std::uint32_t max_nominal_gap = 0;
  std::uint64_t epochs_seen = 0;
  std::uint64_t rearms = 0;

  struct ClassGap {
    std::uint32_t id = 0;
    std::uint32_t nominal_gap = 0;
    std::uint32_t real_gap = 0;
    std::uint32_t converged_gap = 0;  ///< 0 = not captured
    bool rated = false;               ///< flags bit 0: rate ever assigned
  };
  std::vector<ClassGap> classes;

  /// Per-(node, class) gap shifts, row-major `[node * classes.size() + c]`
  /// over `shift_nodes` rows (v2+; empty on v1 files).
  std::uint32_t shift_nodes = 0;
  std::vector<std::uint8_t> node_gap_shifts;

  struct CopyNode {
    std::uint64_t registrations = 0;
    std::uint64_t resample_visits = 0;
  };
  std::vector<CopyNode> copy_nodes;  ///< v3+ cached-copy bookkeeping

  std::uint8_t backoff_scoring = 0;  ///< v4+
  bool influence_seen = false;
  double influence_decay = 0.0;
  std::vector<std::pair<std::uint32_t, double>> influence;  ///< ascending ids

  std::uint64_t migrations_executed = 0;  ///< v5+ total (counts past the cap)
  struct Migration {
    std::uint64_t epoch = 0;
    std::uint32_t thread = 0;
    std::uint16_t from = 0;
    std::uint16_t to = 0;
    double gain_bytes = 0.0;
    double sim_cost_seconds = 0.0;
    std::uint64_t prefetched_bytes = 0;
  };
  std::vector<Migration> migrations;  ///< v5+ history, chronological

  bool has_lease = false;  ///< v7+ tenant budget lease present
  struct Lease {
    std::uint32_t tenant = 0;
    std::uint32_t tier = 0;
    double weight = 0.0;
    double granted_budget = 0.0;
    double fair_share = 0.0;
    double floor = 0.0;
    std::uint64_t borrowed_epochs = 0;
    std::uint64_t lent_epochs = 0;
  };
  Lease lease;  ///< meaningful only when has_lease

  SquareMatrix tcm;

  /// Shift of one (node, class-index) pair; 0 past the stored table.
  [[nodiscard]] std::uint8_t shift_at(std::size_t node,
                                      std::size_t class_index) const noexcept {
    const std::size_t i = node * classes.size() + class_index;
    return node < shift_nodes && i < node_gap_shifts.size()
               ? node_gap_shifts[i]
               : 0;
  }
};

/// Parses a snapshot without touching any live state.  Returns false on bad
/// magic/version, truncation, structural corruption (counts that cannot
/// fit the remaining bytes, out-of-range enums, non-finite knobs), or a
/// failed v6 CRC32 footer check; `out` is unspecified on failure.  Never
/// throws, never reads out of bounds.
[[nodiscard]] bool parse_snapshot(const std::vector<std::uint8_t>& bytes,
                                  SnapshotInfo& out);

/// Asynchronous double-buffered snapshot writer.
///
/// `save_snapshot` blocks the caller on the file write, so a daemon that
/// wants a crash-recovery snapshot every epoch stalls its epoch loop on
/// disk.  This writer encodes on the calling thread (the governor/plan state
/// must be read synchronously anyway) into a reused *back* buffer, then
/// hands the bytes to a background thread which owns the *front* buffer and
/// the file I/O.  At most one snapshot is queued: submitting while one is
/// still waiting replaces it (latest wins — an older crash-recovery
/// snapshot is strictly less useful than the newer one), so a slow disk
/// back-pressures into coalesced writes instead of an unbounded queue.
/// Buffer capacities circulate between the two slots, so steady-state
/// snapshotting allocates nothing.
class SnapshotWriter {
 public:
  SnapshotWriter();
  /// Drains the queued write (if any) and joins the worker.
  ~SnapshotWriter();
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;

  /// Encodes governor + TCM into the back buffer and queues it for `path`.
  void save_async(const std::string& path, const Governor& gov,
                  const SquareMatrix& tcm);

  /// Queues `line` for appending to `path` (the caller includes any trailing
  /// newline).  Unlike snapshots, appends are never coalesced away — they
  /// accumulate in a buffer the worker drains in one append-mode write, so a
  /// slow disk batches lines instead of dropping them.  One append path per
  /// writer: changing `path` mid-run redirects subsequent lines.
  void append_async(const std::string& path, std::string_view line);

  /// Blocks until every submitted snapshot and appended line has been
  /// written (or coalesced away) and the worker is idle.
  void flush();

  /// Snapshots submitted via save_async.
  [[nodiscard]] std::uint64_t submitted() const noexcept;
  /// File writes actually performed.
  [[nodiscard]] std::uint64_t completed() const noexcept;
  /// Queued snapshots replaced by a newer one before reaching disk.
  [[nodiscard]] std::uint64_t coalesced() const noexcept;
  /// Lines submitted via append_async.
  [[nodiscard]] std::uint64_t appended() const noexcept;
  /// Append-mode file writes performed (≤ appended(): lines batch).
  [[nodiscard]] std::uint64_t append_writes() const noexcept;
  /// False once any completed write failed (disk full, bad path).
  [[nodiscard]] bool all_ok() const noexcept;

 private:
  void worker_loop();

  mutable std::mutex mu_;
  std::condition_variable work_cv_;   ///< worker wakeups (pending or stop)
  std::condition_variable idle_cv_;   ///< flush wakeups (queue drained)
  std::string pending_path_;
  std::vector<std::uint8_t> pending_;  ///< queued bytes (empty = nothing queued)
  bool has_pending_ = false;
  std::string append_path_;
  std::string append_pending_;  ///< accumulated lines awaiting one append
  bool has_append_ = false;
  bool writing_ = false;
  bool stop_ = false;
  std::uint64_t submitted_ = 0;
  std::uint64_t completed_ = 0;
  std::uint64_t coalesced_ = 0;
  std::uint64_t appended_ = 0;
  std::uint64_t append_writes_ = 0;
  bool all_ok_ = true;
  std::vector<std::uint8_t> back_;  ///< encode buffer (caller side)
  std::thread worker_;
};

}  // namespace djvm
