// Binary profile snapshots: governor state + converged TCM + per-class gaps.
//
// A restarted run pays the full convergence ramp again — epochs of
// over-sampling (wasted overhead) or under-sampling (wrong correlation map)
// until the controller settles.  A snapshot taken after convergence lets the
// next run warm-start at the converged rates and seed the daemon with the
// converged TCM, the distributed analog of a single-process profiler's
// `sample.prof` dump.
//
// Format v3, host-endian, fixed-width fields (round-trips bit-exactly on
// the writing host; a foreign-endian reader rejects the file at the magic
// check and cold-starts rather than misreading it):
//   u32 magic 'DJGV'   u32 version
//   u8 mode            u8 state
//   u8 flags (bit 0: per-node budget enforcement)   u8 reserved
//   f64 overhead_budget   f64 distance_threshold
//   f64 hysteresis        f64 phase_spike_factor
//   f64 node_budget (0 = inherit overhead_budget)          [v2+]
//   u32 sentinel_coarsen_shifts   u32 max_nominal_gap
//   u64 epochs_seen       u64 rearms
//   u32 class_count
//     class_count x { u32 class_id, u32 nominal_gap, u32 real_gap,
//                     u32 converged_nominal (0 = not captured),
//                     u32 flags (bit 0: rate was ever assigned; unset =
//                     placeholder gaps, left untouched on load so the
//                     class still inherits the cluster default rate) }
//   u32 shift_node_count                                    [v2+]
//     shift_node_count x class_count x u8 per-node gap shift [v2+]
//   u32 copy_node_count                                     [v3]
//     copy_node_count x { u64 copy_registrations,           [v3]
//                         u64 resample_visits }
//   u64 tcm_dimension
//     dimension^2 x f64 (row-major)
//
// The v3 copy summary records the cached-copy sampling bookkeeping — how
// many copy bits each node has registered (fault-ins, prefetches) and how
// many resampling copy visits it has paid — so a warm-started run continues
// the counters that tell where sampling cost was actually incurred.
//
// v1 files (no flags byte meaning — it was reserved padding — and none of
// the [v2+] fields) still load: the restored governor keeps its
// machine-local per-node policy knobs and every node is seeded from the
// cluster view (all gap shifts zero), so a pre-per-node snapshot
// warm-starts a per-node governor cleanly.  v2 files load the same way
// minus the copy summary (counters start at zero).  Loading resamples only
// the classes whose gaps or shifts actually differ from the live plan, so
// restoring a snapshot into an already-warm world is not a full resample
// storm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "governor/governor.hpp"

namespace djvm {

inline constexpr std::uint32_t kSnapshotMagic = 0x56474A44;  // "DJGV"
/// Version written by encode_snapshot; decode also accepts the older
/// kSnapshotVersionV1/V2 layouts (read compatibility).
inline constexpr std::uint32_t kSnapshotVersion = 3;
inline constexpr std::uint32_t kSnapshotVersionV1 = 1;
inline constexpr std::uint32_t kSnapshotVersionV2 = 2;

/// Serializes the governor's state, the plan's per-class gaps, and `tcm`
/// (pass the daemon's latest converged map).
[[nodiscard]] std::vector<std::uint8_t> encode_snapshot(const Governor& gov,
                                                        const SquareMatrix& tcm);

/// Restores governor state and per-class gaps into `gov` (and its plan) and
/// writes the stored map into `tcm`.  The class registry must already hold
/// the snapshot's classes (warm starts re-register classes
/// deterministically).  Returns false on bad magic/version/truncation or
/// unknown class ids; the governor is unchanged on failure.
[[nodiscard]] bool decode_snapshot(const std::vector<std::uint8_t>& bytes,
                                   Governor& gov, SquareMatrix& tcm);

/// File convenience wrappers.
[[nodiscard]] bool save_snapshot(const std::string& path, const Governor& gov,
                                 const SquareMatrix& tcm);
[[nodiscard]] bool load_snapshot(const std::string& path, Governor& gov,
                                 SquareMatrix& tcm);

}  // namespace djvm
