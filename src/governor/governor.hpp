// Closed-loop profiling governor (the feedback controller the paper's
// Section II.B.2 convergence loop grows into).
//
// The seed's CorrelationDaemon only ratchets rates *up* — halve gaps until
// successive TCMs agree — and then freezes forever, so a workload phase
// change after convergence silently profiles the wrong correlation map at
// the wrong cost.  The governor replaces that with a hysteresis controller
// supervising the whole profiling stack:
//
//  * over budget   -> double gaps on the classes with the worst
//                     benefit/cost score — estimated shared bytes per logged
//                     entry, weighted by each class's *balancer influence*
//                     (the share of its cells the placement decisions
//                     actually act on, fed back per epoch and remembered
//                     with exponential decay) — until the projected entry
//                     cost fits;
//  * under budget  -> while the TCM is still moving (relative ABS distance
//                     above threshold), halve every class's gap — the
//                     paper's convergence loop, now budget-gated;
//  * converged     -> instead of freezing, coarsen to a cheap *sentinel*
//                     rate and keep watching: a TCM-distance spike
//                     (phase change) restores the converged gaps and
//                     re-arms full adaptation.
//
// With per_node set, the budget is enforced against each worker node's own
// overhead fraction (profiling cost a node pays over that node's application
// progress): the back-off targets the classes dominating the *worst
// offending node's* cost via per-(node, class) gap shifts in the sampling
// plan, tightening stays cluster-wide but requires *every* node under
// budget, and shifts decay once their node has cooled.  This is the paper's
// locally-paid cost model (each node runs its own access checks, OAL
// shipping, and resampling) made explicit in the controller.
//
// A legacy mode reproduces the seed daemon's one-way rate decisions
// (halve-all-until-agreement, then freeze); arm it with
// GovernorConfig::legacy(threshold) through the same arm() entry point as
// the closed loop.  One deliberate accounting difference: resampled-object
// counts now report only objects of classes whose gap actually moved, where
// the seed revisited the whole heap.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"
#include "governor/overhead_meter.hpp"
#include "profiling/sampling.hpp"

namespace djvm {

struct BalancerFeedback;  // balance/balancer_feedback.hpp

/// How the governor is driving the sampling plan.
enum class GovernorMode : std::uint8_t {
  kDisarmed,    ///< passive: epochs are observed but rates never change
  kLegacyOneWay,///< seed behaviour: tighten-only, freeze on convergence
  kClosedLoop,  ///< budgeted bidirectional control with phase detection
};

/// Controller state (kConverged is terminal only in legacy mode).
enum class GovernorState : std::uint8_t {
  kIdle,       ///< disarmed / before the first epoch
  kAdapting,   ///< chasing convergence under the budget
  kConverged,  ///< legacy terminal state
  kSentinel,   ///< converged; watching a cheap sentinel rate for phase change
};

/// What the governor did this epoch (one action per epoch keeps the loop
/// stable; the hysteresis dead-band prevents tighten/back-off oscillation).
enum class GovernorAction : std::uint8_t {
  kNone,
  kTighten,   ///< halved gaps (rate up)
  kBackOff,   ///< doubled gaps on worst benefit/cost classes (rate down)
  kConverge,  ///< distance under threshold; entered sentinel (or froze, legacy)
  kRearm,     ///< phase change detected; restored converged gaps, re-adapting
};

/// Stable operator-facing names (timeline JSONL, exporters); not subject to
/// enum renames.
[[nodiscard]] constexpr const char* to_string(GovernorMode m) noexcept {
  switch (m) {
    case GovernorMode::kDisarmed: return "disarmed";
    case GovernorMode::kLegacyOneWay: return "legacy-one-way";
    case GovernorMode::kClosedLoop: return "closed-loop";
  }
  return "?";
}
[[nodiscard]] constexpr const char* to_string(GovernorState s) noexcept {
  switch (s) {
    case GovernorState::kIdle: return "idle";
    case GovernorState::kAdapting: return "adapting";
    case GovernorState::kConverged: return "converged";
    case GovernorState::kSentinel: return "sentinel";
  }
  return "?";
}
[[nodiscard]] constexpr const char* to_string(GovernorAction a) noexcept {
  switch (a) {
    case GovernorAction::kNone: return "none";
    case GovernorAction::kTighten: return "tighten";
    case GovernorAction::kBackOff: return "backoff";
    case GovernorAction::kConverge: return "converge";
    case GovernorAction::kRearm: return "rearm";
  }
  return "?";
}

struct GovernorConfig {
  /// Overhead budget as a fraction of application time (0.02 = 2%).
  double overhead_budget = 0.02;
  /// Enforce the budget per worker node: back off only the classes
  /// dominating the *worst offending node's* cost (via per-node gap shifts)
  /// and tighten cluster-wide only when every node is under budget.  Off
  /// reproduces the PR 1 cluster-aggregate policy, under which one hot node
  /// can run far over budget while the average looks fine.
  bool per_node = false;
  /// Per-node overhead budget; 0 inherits overhead_budget.
  double node_budget = 0.0;
  /// Convergence threshold on relative ABS distance between epoch TCMs.
  double distance_threshold = 0.05;
  /// Dead-band half-width around the budget: tighten only below
  /// budget*(1-hysteresis), back off only above budget*(1+hysteresis).
  double hysteresis = 0.25;
  /// A relative distance above phase_spike_factor * distance_threshold
  /// while in sentinel re-arms full adaptation.
  double phase_spike_factor = 3.0;
  /// Gap doublings applied when entering sentinel (2 -> 4x coarser watch).
  std::uint32_t sentinel_coarsen_shifts = 2;
  /// Nominal gaps never exceed this (keeps the sentinel observable).
  std::uint32_t max_nominal_gap = 1u << 16;
  /// Rolling window (epochs) of the overhead meter.
  std::size_t meter_window = 4;
  /// Back-off victim scoring: kInfluenceWeighted (default) multiplies the
  /// bytes-per-entry benefit/cost score by each class's balancer influence
  /// share (fed via observe_balancer_feedback), so back-off sheds the cells
  /// the balancer ignores; kBytesPerEntry is the legacy heuristic, kept for
  /// ablation.  Until the first feedback arrives, influence scoring falls
  /// back to bytes-per-entry (there is nothing to weight by yet).
  BackoffScoring scoring = BackoffScoring::kInfluenceWeighted;
  /// Exponential-decay memory of the influence table: each observation
  /// folds in as share_new = decay * share_old + (1 - decay) * observed, so
  /// one quiet epoch cannot zero a class the balancer has been acting on.
  double influence_decay = 0.5;
  OverheadCosts costs{};
  /// Run the seed's one-way convergence loop (tighten-only, freeze on
  /// convergence) instead of the closed-loop controller; only
  /// distance_threshold applies.  Build with GovernorConfig::legacy().
  bool legacy_one_way = false;

  /// Config for the paper's Section II.B.2 one-way convergence loop at
  /// `threshold` — the migration target for the retired
  /// CorrelationDaemon::enable_adaptation / Governor::arm_legacy APIs.
  [[nodiscard]] static GovernorConfig legacy(double threshold) {
    GovernorConfig cfg;
    cfg.distance_threshold = threshold;
    cfg.legacy_one_way = true;
    return cfg;
  }

  /// The budget one node is held to (node_budget unless unset).
  [[nodiscard]] double effective_node_budget() const noexcept {
    return node_budget > 0.0 ? node_budget : overhead_budget;
  }
};

class Governor {
 public:
  explicit Governor(SamplingPlan& plan, GovernorConfig cfg = {});

  // --- arming ---------------------------------------------------------------
  /// Arms the controller under `cfg` — closed-loop control by default, the
  /// seed-compatible one-way convergence loop when cfg.legacy_one_way (see
  /// GovernorConfig::legacy).  Re-arming resets controller state and
  /// restarts the overhead meter (the new config may change its cost model
  /// or window).
  void arm(GovernorConfig cfg);
  void disarm();
  /// Re-arms in the current mode with the current config, discarding
  /// convergence progress (the daemon's clear() path); no-op when disarmed.
  void reset();

  [[nodiscard]] GovernorMode mode() const noexcept { return mode_; }
  [[nodiscard]] GovernorState state() const noexcept { return state_; }
  [[nodiscard]] bool armed() const noexcept { return mode_ != GovernorMode::kDisarmed; }
  /// True once the TCM has settled (legacy kConverged or sentinel watch).
  [[nodiscard]] bool converged() const noexcept {
    return state_ == GovernorState::kConverged || state_ == GovernorState::kSentinel;
  }

  // --- the per-epoch control step -------------------------------------------
  struct EpochOutcome {
    GovernorAction action = GovernorAction::kNone;
    bool rate_changed = false;
    std::size_t resampled_objects = 0;
    /// Rolling overhead fraction after folding in this epoch's sample.
    double overhead_fraction = 0.0;
    /// Worst per-node rolling fraction and the node carrying it (unset when
    /// no per-node samples have been recorded; filled in every mode so
    /// benches can watch per-node cost even under the cluster-wide policy).
    std::optional<NodeId> offender;
    double offender_fraction = 0.0;
  };

  /// Called once per daemon epoch with the TCM movement (nullopt on the
  /// first epoch) and the epoch's measured costs.  Per-class benefit/cost
  /// inputs are read from the plan's epoch stats (see
  /// SamplingPlan::epoch_stats), which the daemon refreshes before calling.
  EpochOutcome on_epoch(std::optional<double> rel_distance,
                        const OverheadSample& sample);

  // --- balancer feedback ------------------------------------------------------
  /// Folds one epoch's per-class placement influence (exported by the
  /// balancer side, see balance/balancer_feedback.hpp) into the decayed
  /// influence table the back-off scoring reads.  Invalid feedback (an epoch
  /// with no attributable cells) is ignored rather than decaying the table —
  /// a quiet epoch is no evidence the balancer stopped caring.
  void observe_balancer_feedback(const BalancerFeedback& fb);
  /// Decayed influence share of one class in [0, inf): the fraction of the
  /// class's correlation mass the balancer acts on (0 before any feedback,
  /// and for classes the balancer has never seen).
  [[nodiscard]] double influence_share(ClassId id) const noexcept {
    const auto i = static_cast<std::size_t>(id);
    return i < influence_.size() ? influence_[i] : 0.0;
  }
  /// True once at least one valid feedback epoch has been folded in (until
  /// then influence scoring falls back to bytes-per-entry).
  [[nodiscard]] bool influence_seen() const noexcept { return influence_seen_; }

  // --- migration execution ----------------------------------------------------
  /// One executed mid-run migration, recorded by the facade's execution
  /// stage.  Persisted in snapshots (v5) so per-thread cooldowns and the
  /// executed history survive restarts alongside the influence table.
  struct ExecutedMigration {
    std::uint64_t epoch = 0;  ///< epochs_seen() when the move executed
    ThreadId thread = kInvalidThread;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double gain_bytes = 0.0;        ///< planner locality gain for the move
    double sim_cost_seconds = 0.0;  ///< simulated cost billed to the migrant
    std::uint64_t prefetched_bytes = 0;
  };
  /// Retained-history cap; the total counter keeps counting past it.
  static constexpr std::size_t kMigrationHistoryCap = 256;

  /// Appends one executed migration to the bounded history and stamps the
  /// thread's cooldown epoch.  Survives reset()/re-arm (it is a run log, not
  /// controller state) and is persisted by snapshots.
  void record_migration(const ExecutedMigration& m);
  /// Executed-migration history, oldest first (at most kMigrationHistoryCap).
  [[nodiscard]] const std::vector<ExecutedMigration>& migration_history()
      const noexcept {
    return migration_history_;
  }
  /// Total migrations ever recorded, including entries aged out of history.
  [[nodiscard]] std::uint64_t migrations_executed() const noexcept {
    return migrations_executed_;
  }
  /// True while `thread` sits in its post-migration cooldown: it migrated
  /// fewer than `cooldown_epochs` governor epochs ago.
  [[nodiscard]] bool in_cooldown(ThreadId thread,
                                 std::uint32_t cooldown_epochs) const noexcept;
  /// Execution-stage admission: false while the armed closed-loop
  /// controller's rolling overhead fraction sits above the back-off band
  /// (budget * (1 + hysteresis)) — the same line that triggers rate back-off
  /// parks migration work, whose wall cost lands in the very next sample.
  /// Disarmed and legacy governors never veto.
  [[nodiscard]] bool allow_migration_work() const noexcept;

  // --- tenant budget handshake ------------------------------------------------
  /// One tenant's lease from the cluster budget arbiter: identity, the grant
  /// currently governing this instance, and the arbitration bookkeeping that
  /// explains it (fair share, starvation floor, borrow/lend history).
  /// Persisted in snapshots (v7) so a recovered tenant resumes under its
  /// last grant instead of snapping back to the static config budget.
  struct TenantLease {
    TenantId tenant = 0;
    std::uint32_t tier = 0;       ///< priority tier (0 = most important)
    double weight = 1.0;          ///< fair-share weight at registration
    double granted_budget = 0.0;  ///< the arbiter's current grant (fraction)
    double fair_share = 0.0;      ///< weight-proportional slice of the ceiling
    double floor = 0.0;           ///< guaranteed minimum grant
    std::uint64_t borrowed_epochs = 0;  ///< epochs granted above fair share
    std::uint64_t lent_epochs = 0;      ///< epochs granted below fair share
  };

  /// Applies an arbiter grant: swaps the overhead budget the controller
  /// enforces *without* resetting controller state — a per-epoch grant
  /// change must not wipe convergence progress or restart the meter the way
  /// re-arming does.  The hysteresis bands, per-node inheritance
  /// (node_budget == 0), and migration admission all follow the new budget
  /// from the next on_epoch.
  void set_budget(double overhead_budget) noexcept {
    cfg_.overhead_budget = overhead_budget;
  }
  /// Installs/updates the arbiter lease (also applies its granted budget).
  void adopt_lease(const TenantLease& lease) {
    lease_ = lease;
    if (lease.granted_budget > 0.0) set_budget(lease.granted_budget);
  }
  [[nodiscard]] const std::optional<TenantLease>& lease() const noexcept {
    return lease_;
  }

  // --- degraded mode ----------------------------------------------------------
  /// Quarantines a failed node: it no longer competes for worst-offender
  /// back-off (its overhead fraction is a ghost of pre-failure samples) and
  /// it is excluded from the cluster-tighten quorum, so a dead node can
  /// neither attract per-node back-offs nor hold the whole cluster's rates
  /// hostage by never reporting "under budget" again.  Quarantine is
  /// substrate state, not convergence progress: it survives reset()/re-arm
  /// (like the migration history) and is not persisted in snapshots — a
  /// recovered run re-detects its failures.
  void quarantine_node(NodeId node);
  [[nodiscard]] bool is_quarantined(NodeId node) const noexcept {
    for (const NodeId q : quarantined_) {
      if (q == node) return true;
    }
    return false;
  }
  [[nodiscard]] const std::vector<NodeId>& quarantined_nodes() const noexcept {
    return quarantined_;
  }

  // --- observability ---------------------------------------------------------
  [[nodiscard]] OverheadMeter& meter() noexcept { return meter_; }
  [[nodiscard]] const OverheadMeter& meter() const noexcept { return meter_; }
  [[nodiscard]] const GovernorConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] std::size_t epochs_seen() const noexcept { return epochs_; }
  [[nodiscard]] std::size_t rearms() const noexcept { return rearms_; }
  /// Nominal gaps captured at the moment of convergence, indexed by
  /// ClassId (empty before first convergence; 0 marks a class that was not
  /// registered when the capture ran).
  [[nodiscard]] const std::vector<std::uint32_t>& converged_gaps() const noexcept {
    return converged_gaps_;
  }

  [[nodiscard]] SamplingPlan& plan() noexcept { return plan_; }
  [[nodiscard]] const SamplingPlan& plan() const noexcept { return plan_; }

 private:
  friend struct SnapshotAccess;  // snapshot.cpp (de)serializes private state

  /// Restarts the meter and wipes convergence progress; every (re)arm path
  /// and the disarmed reset() branch funnel through here.
  void reset_controller_state(GovernorState state);
  /// One-way convergence at `threshold` (arm() routes here via
  /// GovernorConfig::legacy_one_way; reset() re-arms through it).
  void arm_legacy(double threshold);
  EpochOutcome legacy_step(std::optional<double> rel_distance);
  EpochOutcome closed_loop_step(std::optional<double> rel_distance,
                                bool budget_known);

  /// Worst per-node rolling fraction among non-quarantined nodes (nullopt
  /// when every sampled node is quarantined or none were sampled).
  [[nodiscard]] std::optional<NodeId> worst_live_node() const;

  /// Benefit/cost score of one class from its epoch stats: estimated shared
  /// bytes per logged entry, weighted by the class's decayed balancer
  /// influence share under kInfluenceWeighted (a small floor keeps plain
  /// bytes-per-entry as the tiebreak among zero-influence classes).
  [[nodiscard]] double backoff_score(ClassId id,
                                     const ClassEpochStats& stats) const;
  /// Doubles gaps on the worst benefit/cost classes until the projected
  /// per-entry cost fits `shrink_to` (fraction of current cost to keep).
  std::size_t back_off(double shrink_to);
  /// Per-node variant: bumps `node`'s gap *shifts* on the classes dominating
  /// that node's entry cost (read from the plan's per-node epoch stats) and
  /// resamples only the copies that node caches.
  std::size_t back_off_node(NodeId node, double shrink_to);
  /// Decrements gap shifts on nodes that have cooled well under the node
  /// budget (rolling and epoch fraction both below half of it), restoring
  /// their rates toward the cluster view.  Returns objects resampled; sets
  /// `any` when at least one shift moved.
  std::size_t relax_node_shifts(bool& any);
  /// Halves every class's gap (clamped at full sampling).  Returns objects
  /// resampled; sets `any` when at least one gap moved.
  std::size_t tighten(bool& any);
  void capture_converged_gaps();
  std::size_t enter_sentinel();
  std::size_t restore_converged_gaps();

  SamplingPlan& plan_;
  GovernorConfig cfg_;
  OverheadMeter meter_;
  GovernorMode mode_ = GovernorMode::kDisarmed;
  GovernorState state_ = GovernorState::kIdle;
  std::size_t epochs_ = 0;
  std::size_t rearms_ = 0;
  /// Spike checks skipped after a sentinel-entry rate change (the coarser
  /// rate itself moves the map once; that is not a phase change).
  std::size_t grace_ = 0;
  /// Per-node back-off epochs skipped after one fired: the resampling pass
  /// it triggers is charged to the *offending node's* next sample, so
  /// re-evaluating before that transient drains would actuate against the
  /// controller's own transition cost and spiral the gaps to the ceiling.
  std::size_t node_settle_ = 0;
  std::vector<std::uint32_t> converged_gaps_;
  /// ClassId-indexed decayed influence shares (see observe_balancer_feedback)
  /// and whether any feedback was ever folded in.
  std::vector<double> influence_;
  bool influence_seen_ = false;
  /// Executed-migration run log (bounded, oldest first), total count, and
  /// the ThreadId-indexed epoch stamp of each thread's last migration
  /// (kNeverMigrated when it never moved) for cooldown checks.
  std::vector<ExecutedMigration> migration_history_;
  std::uint64_t migrations_executed_ = 0;
  std::vector<std::uint64_t> last_migration_epoch_;
  static constexpr std::uint64_t kNeverMigrated = ~0ull;
  /// Failed nodes excluded from offender scoring and the tighten quorum
  /// (small sorted-insert list; clusters are tens of nodes).
  std::vector<NodeId> quarantined_;
  /// Arbiter lease (nullopt when standalone); persisted in snapshot v7.
  std::optional<TenantLease> lease_;
};

}  // namespace djvm
