#include "governor/overhead_meter.hpp"

#include <algorithm>
#include <limits>

namespace djvm {

OverheadMeter::OverheadMeter(OverheadCosts costs, std::size_t window)
    : costs_(costs), window_(std::max<std::size_t>(1, window)) {
  ring_.resize(window_);
}

namespace {
double reducible_seconds(const OverheadSample& sample, const OverheadCosts& costs) {
  return sample.access_check_seconds +
         static_cast<double>(sample.wire_bytes) * costs.seconds_per_wire_byte +
         static_cast<double>(sample.resampled_objects) *
             costs.seconds_per_resampled_object +
         costs.coordinator_weight * sample.build_seconds;
}
}  // namespace

double OverheadMeter::profiling_seconds(const OverheadSample& sample) const {
  return reducible_seconds(sample, costs_) + sample.fixed_seconds;
}

void OverheadMeter::record(const OverheadSample& sample) {
  Entry& e = ring_[next_];
  e.app_seconds = sample.app_seconds;
  e.reducible_seconds = reducible_seconds(sample, costs_);
  e.fixed_seconds = sample.fixed_seconds;
  e.build_seconds = sample.build_seconds;

  // Grow the node table first so every known node gets a slot this epoch
  // (zeros mean "no cost observed here"), keeping the windows aligned.
  for (const NodeOverheadSample& ns : sample.nodes) {
    if (ns.node == kInvalidNode) continue;
    if (node_rings_.size() <= ns.node) {
      node_rings_.resize(ns.node + 1, std::vector<Entry>(window_));
    }
  }
  for (auto& ring : node_rings_) ring[next_] = Entry{};
  for (const NodeOverheadSample& ns : sample.nodes) {
    if (ns.node == kInvalidNode) continue;
    Entry& ne = node_rings_[ns.node][next_];
    ne.app_seconds += ns.app_seconds;
    ne.reducible_seconds +=
        ns.access_check_seconds +
        static_cast<double>(ns.wire_bytes) * costs_.seconds_per_wire_byte +
        static_cast<double>(ns.resampled_objects) *
            costs_.seconds_per_resampled_object;
    ne.fixed_seconds += ns.fixed_seconds;
  }

  next_ = (next_ + 1) % window_;
  filled_ = std::min(filled_ + 1, window_);
  ++epochs_;
}

namespace {
double fraction(double prof, double app) {
  if (app > 0.0) return prof / app;
  if (prof > 0.0) return std::numeric_limits<double>::infinity();
  return 0.0;
}
}  // namespace

double OverheadMeter::epoch_fraction() const {
  if (filled_ == 0) return 0.0;
  const Entry& e = ring_[(next_ + window_ - 1) % window_];
  return fraction(e.reducible_seconds + e.fixed_seconds, e.app_seconds);
}

double OverheadMeter::rolling_fraction() const {
  double prof = 0.0, app = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) {
    prof += ring_[i].reducible_seconds + ring_[i].fixed_seconds;
    app += ring_[i].app_seconds;
  }
  return fraction(prof, app);
}

double OverheadMeter::rolling_reducible_fraction() const {
  double prof = 0.0, app = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) {
    prof += ring_[i].reducible_seconds;
    app += ring_[i].app_seconds;
  }
  return fraction(prof, app);
}

double OverheadMeter::coordinator_fraction() const {
  double build = 0.0, app = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) {
    build += ring_[i].build_seconds;
    app += ring_[i].app_seconds;
  }
  return fraction(build, app);
}

double OverheadMeter::node_rolling_fraction(NodeId node) const {
  if (node >= node_rings_.size()) return 0.0;
  const std::vector<Entry>& ring = node_rings_[node];
  double prof = 0.0, app = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) {
    prof += ring[i].reducible_seconds + ring[i].fixed_seconds;
    app += ring[i].app_seconds;
  }
  return fraction(prof, app);
}

double OverheadMeter::node_rolling_reducible_fraction(NodeId node) const {
  if (node >= node_rings_.size()) return 0.0;
  const std::vector<Entry>& ring = node_rings_[node];
  double prof = 0.0, app = 0.0;
  for (std::size_t i = 0; i < filled_; ++i) {
    prof += ring[i].reducible_seconds;
    app += ring[i].app_seconds;
  }
  return fraction(prof, app);
}

double OverheadMeter::node_epoch_fraction(NodeId node) const {
  if (node >= node_rings_.size() || filled_ == 0) return 0.0;
  const Entry& e = node_rings_[node][(next_ + window_ - 1) % window_];
  return fraction(e.reducible_seconds + e.fixed_seconds, e.app_seconds);
}

std::optional<NodeId> OverheadMeter::worst_node() const {
  std::optional<NodeId> worst;
  double worst_frac = -1.0;
  for (std::size_t n = 0; n < node_rings_.size(); ++n) {
    const double f = node_rolling_fraction(static_cast<NodeId>(n));
    if (f > worst_frac) {
      worst_frac = f;
      worst = static_cast<NodeId>(n);
    }
  }
  return worst;
}

}  // namespace djvm
