#include "governor/overhead_meter.hpp"

#include <algorithm>

namespace djvm {

OverheadMeter::OverheadMeter(OverheadCosts costs, std::size_t window)
    : costs_(costs), window_(std::max<std::size_t>(1, window)) {}

namespace {
double reducible_seconds(const OverheadSample& sample, const OverheadCosts& costs) {
  return sample.access_check_seconds +
         static_cast<double>(sample.wire_bytes) * costs.seconds_per_wire_byte +
         static_cast<double>(sample.resampled_objects) *
             costs.seconds_per_resampled_object +
         costs.coordinator_weight * sample.build_seconds;
}
}  // namespace

double OverheadMeter::profiling_seconds(const OverheadSample& sample) const {
  return reducible_seconds(sample, costs_) + sample.fixed_seconds;
}

void OverheadMeter::record(const OverheadSample& sample) {
  if (tenants_.size() <= sample.tenant) {
    tenants_.resize(sample.tenant + 1);
    for (TenantWindow& tw : tenants_) {
      if (tw.ring.empty()) tw.ring.resize(window_);
    }
  }
  TenantWindow& tw = tenants_[sample.tenant];
  last_tenant_ = sample.tenant;

  Entry& e = tw.ring[tw.next];
  e.app_seconds = sample.app_seconds;
  e.reducible_seconds = reducible_seconds(sample, costs_);
  e.fixed_seconds = sample.fixed_seconds;
  e.build_seconds = sample.build_seconds;
  e.signal = sample.app_seconds > 0.0;

  // Grow this tenant's node table first so every node it has ever reported
  // gets a slot this epoch (zeros mean "no cost observed here"), keeping the
  // tenant's windows aligned.  Other tenants' rings are untouched: a peer's
  // idle epoch must not consume the window slot a busy tenant just filled.
  for (const NodeOverheadSample& ns : sample.nodes) {
    if (ns.node == kInvalidNode) continue;
    if (tw.node_rings.size() <= ns.node) {
      tw.node_rings.resize(ns.node + 1, std::vector<Entry>(window_));
    }
  }
  for (auto& ring : tw.node_rings) ring[tw.next] = Entry{};
  for (const NodeOverheadSample& ns : sample.nodes) {
    if (ns.node == kInvalidNode) continue;
    Entry& ne = tw.node_rings[ns.node][tw.next];
    ne.app_seconds += ns.app_seconds;
    ne.reducible_seconds +=
        ns.access_check_seconds +
        static_cast<double>(ns.wire_bytes) * costs_.seconds_per_wire_byte +
        static_cast<double>(ns.resampled_objects) *
            costs_.seconds_per_resampled_object;
    ne.fixed_seconds += ns.fixed_seconds;
    ne.signal = ne.signal || ns.app_seconds > 0.0;
  }

  tw.next = (tw.next + 1) % window_;
  tw.filled = std::min(tw.filled + 1, window_);
  ++epochs_;
}

const OverheadMeter::TenantWindow* OverheadMeter::window_for(
    TenantId tenant) const {
  if (tenant >= tenants_.size()) return nullptr;
  return &tenants_[tenant];
}

// An epoch that made no application progress carries no rate signal: a cost
// observed against zero app seconds (e.g. a resampling transient charged to
// a node that sat the epoch out) used to read as an infinite fraction, so
// worst_node() elected an idle node and the governor backed off a node that
// ran nothing.  Such epochs are skipped; a window with no signal reads 0.

namespace {
/// Sums prof/app over the signal-carrying entries of one window and divides;
/// `pick` selects which seconds of an entry count as profiling.
template <typename Pick>
double window_fraction(const std::vector<OverheadMeter::Entry>& ring,
                       std::size_t filled, Pick pick) {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < filled; ++i) {
    if (!ring[i].signal) continue;
    any = true;
    prof += pick(ring[i]);
    app += ring[i].app_seconds;
  }
  return any && app > 0.0 ? prof / app : 0.0;
}

/// Accumulates prof/app over the signal slots of one window (for the
/// cross-tenant aggregates, which divide once at the end).
template <typename Pick>
void window_sums(const std::vector<OverheadMeter::Entry>& ring,
                 std::size_t filled, Pick pick, double& prof, double& app,
                 bool& any) {
  for (std::size_t i = 0; i < filled; ++i) {
    if (!ring[i].signal) continue;
    any = true;
    prof += pick(ring[i]);
    app += ring[i].app_seconds;
  }
}
}  // namespace

double OverheadMeter::epoch_fraction() const {
  return epoch_fraction(last_tenant_);
}

double OverheadMeter::epoch_fraction(TenantId tenant) const {
  const TenantWindow* tw = window_for(tenant);
  if (tw == nullptr || tw->filled == 0) return 0.0;
  const Entry& e = tw->ring[(tw->next + window_ - 1) % window_];
  if (!e.signal) return 0.0;
  return (e.reducible_seconds + e.fixed_seconds) / e.app_seconds;
}

double OverheadMeter::rolling_fraction() const {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (const TenantWindow& tw : tenants_) {
    window_sums(
        tw.ring, tw.filled,
        [](const Entry& e) { return e.reducible_seconds + e.fixed_seconds; },
        prof, app, any);
  }
  return any && app > 0.0 ? prof / app : 0.0;
}

double OverheadMeter::rolling_reducible_fraction() const {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (const TenantWindow& tw : tenants_) {
    window_sums(tw.ring, tw.filled,
                [](const Entry& e) { return e.reducible_seconds; }, prof, app,
                any);
  }
  return any && app > 0.0 ? prof / app : 0.0;
}

double OverheadMeter::coordinator_fraction() const {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (const TenantWindow& tw : tenants_) {
    window_sums(tw.ring, tw.filled,
                [](const Entry& e) { return e.build_seconds; }, prof, app,
                any);
  }
  return any && app > 0.0 ? prof / app : 0.0;
}

double OverheadMeter::rolling_fraction(TenantId tenant) const {
  const TenantWindow* tw = window_for(tenant);
  if (tw == nullptr) return 0.0;
  return window_fraction(tw->ring, tw->filled, [](const Entry& e) {
    return e.reducible_seconds + e.fixed_seconds;
  });
}

double OverheadMeter::rolling_reducible_fraction(TenantId tenant) const {
  const TenantWindow* tw = window_for(tenant);
  if (tw == nullptr) return 0.0;
  return window_fraction(tw->ring, tw->filled,
                         [](const Entry& e) { return e.reducible_seconds; });
}

std::size_t OverheadMeter::node_count() const noexcept {
  std::size_t count = 0;
  for (const TenantWindow& tw : tenants_) {
    count = std::max(count, tw.node_rings.size());
  }
  return count;
}

double OverheadMeter::node_rolling_fraction(NodeId node) const {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (const TenantWindow& tw : tenants_) {
    if (node >= tw.node_rings.size()) continue;
    window_sums(
        tw.node_rings[node], tw.filled,
        [](const Entry& e) { return e.reducible_seconds + e.fixed_seconds; },
        prof, app, any);
  }
  return any && app > 0.0 ? prof / app : 0.0;
}

double OverheadMeter::node_rolling_reducible_fraction(NodeId node) const {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (const TenantWindow& tw : tenants_) {
    if (node >= tw.node_rings.size()) continue;
    window_sums(tw.node_rings[node], tw.filled,
                [](const Entry& e) { return e.reducible_seconds; }, prof, app,
                any);
  }
  return any && app > 0.0 ? prof / app : 0.0;
}

double OverheadMeter::node_epoch_fraction(NodeId node) const {
  return node_epoch_fraction(last_tenant_, node);
}

double OverheadMeter::node_rolling_fraction(TenantId tenant,
                                            NodeId node) const {
  const TenantWindow* tw = window_for(tenant);
  if (tw == nullptr || node >= tw->node_rings.size()) return 0.0;
  return window_fraction(tw->node_rings[node], tw->filled, [](const Entry& e) {
    return e.reducible_seconds + e.fixed_seconds;
  });
}

double OverheadMeter::node_epoch_fraction(TenantId tenant, NodeId node) const {
  const TenantWindow* tw = window_for(tenant);
  if (tw == nullptr || node >= tw->node_rings.size() || tw->filled == 0) {
    return 0.0;
  }
  const Entry& e = tw->node_rings[node][(tw->next + window_ - 1) % window_];
  if (!e.signal) return 0.0;
  return (e.reducible_seconds + e.fixed_seconds) / e.app_seconds;
}

std::optional<NodeId> OverheadMeter::worst_node() const {
  std::optional<NodeId> worst;
  double worst_frac = -1.0;
  const std::size_t nodes = node_count();
  for (std::size_t n = 0; n < nodes; ++n) {
    const double f = node_rolling_fraction(static_cast<NodeId>(n));
    if (f > worst_frac) {
      worst_frac = f;
      worst = static_cast<NodeId>(n);
    }
  }
  return worst;
}

std::optional<NodeId> OverheadMeter::worst_node(TenantId tenant) const {
  const TenantWindow* tw = window_for(tenant);
  if (tw == nullptr) return std::nullopt;
  std::optional<NodeId> worst;
  double worst_frac = -1.0;
  for (std::size_t n = 0; n < tw->node_rings.size(); ++n) {
    const double f = node_rolling_fraction(tenant, static_cast<NodeId>(n));
    if (f > worst_frac) {
      worst_frac = f;
      worst = static_cast<NodeId>(n);
    }
  }
  return worst;
}

}  // namespace djvm
