#include "governor/overhead_meter.hpp"

#include <algorithm>

namespace djvm {

OverheadMeter::OverheadMeter(OverheadCosts costs, std::size_t window)
    : costs_(costs), window_(std::max<std::size_t>(1, window)) {
  ring_.resize(window_);
}

namespace {
double reducible_seconds(const OverheadSample& sample, const OverheadCosts& costs) {
  return sample.access_check_seconds +
         static_cast<double>(sample.wire_bytes) * costs.seconds_per_wire_byte +
         static_cast<double>(sample.resampled_objects) *
             costs.seconds_per_resampled_object +
         costs.coordinator_weight * sample.build_seconds;
}
}  // namespace

double OverheadMeter::profiling_seconds(const OverheadSample& sample) const {
  return reducible_seconds(sample, costs_) + sample.fixed_seconds;
}

void OverheadMeter::record(const OverheadSample& sample) {
  Entry& e = ring_[next_];
  e.app_seconds = sample.app_seconds;
  e.reducible_seconds = reducible_seconds(sample, costs_);
  e.fixed_seconds = sample.fixed_seconds;
  e.build_seconds = sample.build_seconds;
  e.signal = sample.app_seconds > 0.0;

  // Grow the node table first so every known node gets a slot this epoch
  // (zeros mean "no cost observed here"), keeping the windows aligned.
  for (const NodeOverheadSample& ns : sample.nodes) {
    if (ns.node == kInvalidNode) continue;
    if (node_rings_.size() <= ns.node) {
      node_rings_.resize(ns.node + 1, std::vector<Entry>(window_));
    }
  }
  for (auto& ring : node_rings_) ring[next_] = Entry{};
  for (const NodeOverheadSample& ns : sample.nodes) {
    if (ns.node == kInvalidNode) continue;
    Entry& ne = node_rings_[ns.node][next_];
    ne.app_seconds += ns.app_seconds;
    ne.reducible_seconds +=
        ns.access_check_seconds +
        static_cast<double>(ns.wire_bytes) * costs_.seconds_per_wire_byte +
        static_cast<double>(ns.resampled_objects) *
            costs_.seconds_per_resampled_object;
    ne.fixed_seconds += ns.fixed_seconds;
    ne.signal = ne.signal || ns.app_seconds > 0.0;
  }

  next_ = (next_ + 1) % window_;
  filled_ = std::min(filled_ + 1, window_);
  ++epochs_;
}

// An epoch that made no application progress carries no rate signal: a cost
// observed against zero app seconds (e.g. a resampling transient charged to
// a node that sat the epoch out) used to read as an infinite fraction, so
// worst_node() elected an idle node and the governor backed off a node that
// ran nothing.  Such epochs are skipped; a window with no signal reads 0.

double OverheadMeter::epoch_fraction() const {
  if (filled_ == 0) return 0.0;
  const Entry& e = ring_[(next_ + window_ - 1) % window_];
  if (!e.signal) return 0.0;
  return (e.reducible_seconds + e.fixed_seconds) / e.app_seconds;
}

namespace {
/// Sums prof/app over the signal-carrying entries of one window and divides;
/// `pick` selects which seconds of an entry count as profiling.
template <typename Pick>
double window_fraction(const std::vector<OverheadMeter::Entry>& ring,
                       std::size_t filled, Pick pick) {
  double prof = 0.0, app = 0.0;
  bool any = false;
  for (std::size_t i = 0; i < filled; ++i) {
    if (!ring[i].signal) continue;
    any = true;
    prof += pick(ring[i]);
    app += ring[i].app_seconds;
  }
  return any && app > 0.0 ? prof / app : 0.0;
}
}  // namespace

double OverheadMeter::rolling_fraction() const {
  return window_fraction(ring_, filled_, [](const Entry& e) {
    return e.reducible_seconds + e.fixed_seconds;
  });
}

double OverheadMeter::rolling_reducible_fraction() const {
  return window_fraction(ring_, filled_,
                         [](const Entry& e) { return e.reducible_seconds; });
}

double OverheadMeter::coordinator_fraction() const {
  return window_fraction(ring_, filled_,
                         [](const Entry& e) { return e.build_seconds; });
}

double OverheadMeter::node_rolling_fraction(NodeId node) const {
  if (node >= node_rings_.size()) return 0.0;
  return window_fraction(node_rings_[node], filled_, [](const Entry& e) {
    return e.reducible_seconds + e.fixed_seconds;
  });
}

double OverheadMeter::node_rolling_reducible_fraction(NodeId node) const {
  if (node >= node_rings_.size()) return 0.0;
  return window_fraction(node_rings_[node], filled_,
                         [](const Entry& e) { return e.reducible_seconds; });
}

double OverheadMeter::node_epoch_fraction(NodeId node) const {
  if (node >= node_rings_.size() || filled_ == 0) return 0.0;
  const Entry& e = node_rings_[node][(next_ + window_ - 1) % window_];
  if (!e.signal) return 0.0;
  return (e.reducible_seconds + e.fixed_seconds) / e.app_seconds;
}

std::optional<NodeId> OverheadMeter::worst_node() const {
  std::optional<NodeId> worst;
  double worst_frac = -1.0;
  for (std::size_t n = 0; n < node_rings_.size(); ++n) {
    const double f = node_rolling_fraction(static_cast<NodeId>(n));
    if (f > worst_frac) {
      worst_frac = f;
      worst = static_cast<NodeId>(n);
    }
  }
  return worst;
}

}  // namespace djvm
