// Cluster budget arbiter: one global profiling-overhead ceiling, many
// tenants.
//
// Each tenant runs its own governor against its own leased budget; the
// arbiter re-divides the cluster's global ceiling between them every epoch.
// The mechanism is borrowing with reclaim-on-demand: a tenant whose measured
// rolling overhead sits well under its fair share is a *lender* — part of
// its unused headroom flows into a pool that *borrowers* (hot tenants) draw
// from in priority order (tier ascending, then weight descending, then id).
// Because grants are recomputed from scratch each epoch, reclaim is
// automatic: the moment a lender's own demand rises it stops lending and its
// next grant snaps back toward its fair share — no explicit revocation
// protocol.  Guarantees, enforced structurally:
//
//   - sum(grants) <= global_budget every epoch (the pool only redistributes
//     headroom that was actually lent);
//   - every tenant keeps at least floor_share of its fair share (the
//     starvation floor), whatever the tiers above it demand;
//   - a borrower never holds more than max_boost times its fair share;
//   - a degraded tenant (lost nodes — see the reliability substrate) cannot
//     borrow, and lends its headroom like an idle tenant: a tenant limping
//     on partial data must not starve healthy peers' budgets.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "governor/governor.hpp"

namespace djvm {

/// One tenant's per-epoch report to the arbiter: its measured rolling
/// overhead fraction (from its own governor's meter) and its health.
struct TenantReport {
  TenantId tenant = 0;
  /// Rolling profiling-overhead fraction over the tenant's window.
  double rolling_fraction = 0.0;
  /// True when the tenant's last epoch ran degraded (lost nodes).
  bool degraded = false;
};

/// One arbitration round's outcome: the recomputed leases plus the audit
/// trail a cluster timeline exports.
struct ArbitrationOutcome {
  std::uint64_t epoch = 0;        ///< 0-based arbitration round
  double global_budget = 0.0;     ///< the ceiling this round divided
  double granted_total = 0.0;     ///< sum of grants (<= global_budget)
  std::size_t lenders = 0;        ///< tenants granted below fair share
  std::size_t borrowers = 0;      ///< tenants granted above fair share
  /// Real seconds this decision cost; the coordinator bills it into the
  /// tenants' next-epoch coordinator buckets (EpochRequest::bill_coordinator).
  double decision_seconds = 0.0;
  /// The recomputed lease per registered tenant (registration order).
  std::vector<Governor::TenantLease> leases;
};

/// The per-epoch budget arbiter.  Single-threaded, deterministic: grants
/// depend only on the knobs, the registered tenants, and the last reports —
/// decision_seconds is measured wall time but never feeds back into grants.
class BudgetArbiter {
 public:
  explicit BudgetArbiter(ArbiterKnobs knobs = {});

  /// Registers a tenant (idempotent by id; re-registration updates tier and
  /// weight).  Returns its initial lease: the fair split over the tenants
  /// registered so far.  Registering does not re-lease existing tenants —
  /// call arbitrate() after the fleet is assembled to seed everyone.
  const Governor::TenantLease& register_tenant(const TenantKnobs& tenant);

  /// Records one tenant's epoch report; unknown tenants are ignored.
  void report(const TenantReport& r);

  /// Recomputes every registered tenant's grant from the last reports.
  ArbitrationOutcome arbitrate();

  [[nodiscard]] const Governor::TenantLease* lease(TenantId tenant) const;
  [[nodiscard]] std::size_t tenant_count() const noexcept;
  [[nodiscard]] const ArbiterKnobs& knobs() const noexcept { return knobs_; }
  /// Cumulative real seconds spent in arbitrate().
  [[nodiscard]] double billed_seconds() const noexcept { return billed_seconds_; }

 private:
  struct Slot {
    bool registered = false;
    TenantKnobs knobs;
    TenantReport last;
    Governor::TenantLease lease;
  };

  [[nodiscard]] Slot* slot(TenantId tenant);

  ArbiterKnobs knobs_;
  std::vector<Slot> slots_;  ///< dense by tenant id
  std::uint64_t epoch_ = 0;
  double billed_seconds_ = 0.0;
};

}  // namespace djvm
