#include "governor/snapshot.hpp"

#include <cmath>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <limits>

#include "common/crc32.hpp"
#include "runtime/klass.hpp"

namespace djvm {

namespace {

void put_bytes(std::vector<std::uint8_t>& out, const void* p, std::size_t n) {
  const auto* b = static_cast<const std::uint8_t*>(p);
  out.insert(out.end(), b, b + n);
}

template <typename T>
void put(std::vector<std::uint8_t>& out, T v) {
  static_assert(std::is_trivially_copyable_v<T>);
  put_bytes(out, &v, sizeof(T));
}

/// Writes `bytes` to `path` atomically: the payload lands in `path`.tmp and
/// is renamed over the target only once fully written, so a crash mid-write
/// cannot destroy the previous good snapshot — the exact failure the
/// crash-recovery snapshots exist to survive.  Shared by the blocking and
/// async save paths so both keep the same crash semantics.
bool write_file(const std::string& path, const std::vector<std::uint8_t>& bytes) {
  const std::string tmp = path + ".tmp";
  {
    std::ofstream f(tmp, std::ios::binary | std::ios::trunc);
    if (!f) return false;
    f.write(reinterpret_cast<const char*>(bytes.data()),
            static_cast<std::streamsize>(bytes.size()));
    if (!f) return false;
  }
  return std::rename(tmp.c_str(), path.c_str()) == 0;
}

/// Bounds-checked sequential reader.
class Reader {
 public:
  explicit Reader(const std::vector<std::uint8_t>& bytes)
      : bytes_(bytes), size_(bytes.size()) {}

  template <typename T>
  bool get(T& v) {
    static_assert(std::is_trivially_copyable_v<T>);
    if (pos_ + sizeof(T) > size_) return false;
    std::memcpy(&v, bytes_.data() + pos_, sizeof(T));
    pos_ += sizeof(T);
    return true;
  }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  [[nodiscard]] std::size_t remaining() const noexcept {
    return size_ - pos_;
  }
  /// Shrinks the readable window to the first `n` bytes (v6 excludes the
  /// CRC footer from field parsing: once verified, the payload must be
  /// exhausted exactly at the footer boundary).
  void truncate(std::size_t n) noexcept {
    if (n < size_) size_ = n;
  }

 private:
  const std::vector<std::uint8_t>& bytes_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

/// v6+ carries a trailing u32 CRC32 over every preceding byte.  Verifies it
/// and narrows `r` to the payload; pre-v6 versions pass through untouched.
/// Returns false on a missing or mismatched footer.
bool check_crc_footer(const std::vector<std::uint8_t>& bytes,
                      std::uint32_t version, Reader& r) {
  if (version < kSnapshotVersionV6) return true;
  if (bytes.size() < sizeof(std::uint32_t)) return false;
  const std::size_t payload = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored = 0;
  std::memcpy(&stored, bytes.data() + payload, sizeof(stored));
  if (stored != crc32(bytes.data(), payload)) return false;
  r.truncate(payload);
  return true;
}

/// Sanity ceiling on ThreadIds in a v5 migration entry: far above any thread
/// count the simulator runs, and it bounds the cooldown-stamp table the
/// decoder rebuilds (a forged id near 2^32 would otherwise size a
/// multi-gigabyte allocation before validation could finish).
constexpr std::uint32_t kMaxSnapshotThreads = 1u << 20;

}  // namespace

/// Friend of Governor: the only place private controller state crosses the
/// serialization boundary.
struct SnapshotAccess {
  static void encode(const Governor& gov, const SquareMatrix& tcm,
                     std::vector<std::uint8_t>& out) {
    put<std::uint32_t>(out, kSnapshotMagic);
    put<std::uint32_t>(out, kSnapshotVersion);
    put<std::uint8_t>(out, static_cast<std::uint8_t>(gov.mode_));
    put<std::uint8_t>(out, static_cast<std::uint8_t>(gov.state_));
    put<std::uint8_t>(out, gov.cfg_.per_node ? 1u : 0u);
    put<std::uint8_t>(out, 0);
    put<double>(out, gov.cfg_.overhead_budget);
    put<double>(out, gov.cfg_.distance_threshold);
    put<double>(out, gov.cfg_.hysteresis);
    put<double>(out, gov.cfg_.phase_spike_factor);
    put<double>(out, gov.cfg_.node_budget);
    put<std::uint32_t>(out, gov.cfg_.sentinel_coarsen_shifts);
    put<std::uint32_t>(out, gov.cfg_.max_nominal_gap);
    put<std::uint64_t>(out, gov.epochs_);
    put<std::uint64_t>(out, gov.rearms_);

    const std::vector<Klass>& all = gov.plan_.heap().registry().all();
    put<std::uint32_t>(out, static_cast<std::uint32_t>(all.size()));
    for (const Klass& k : all) {
      put<std::uint32_t>(out, k.id);
      put<std::uint32_t>(out, k.sampling.nominal_gap);
      put<std::uint32_t>(out, k.sampling.real_gap);
      const std::size_t idx = static_cast<std::size_t>(k.id);
      put<std::uint32_t>(out, idx < gov.converged_gaps_.size()
                                  ? gov.converged_gaps_[idx]
                                  : 0u);
      put<std::uint32_t>(out, k.sampling.initialized ? 1u : 0u);
    }

    // Per-(node, class) gap shifts: the worst-offender backoff state that
    // makes the warm start per-node, not just cluster-wide.  Trailing
    // all-zero rows are trimmed so encode(decode(x)) stays bit-exact (the
    // decoder only materializes rows up to the last nonzero shift).
    std::uint32_t shift_nodes = 0;
    for (std::size_t n = 0; n < gov.plan_.shift_node_count(); ++n) {
      for (const Klass& k : all) {
        if (gov.plan_.node_gap_shift(static_cast<NodeId>(n), k.id) != 0) {
          shift_nodes = static_cast<std::uint32_t>(n) + 1;
          break;
        }
      }
    }
    put<std::uint32_t>(out, shift_nodes);
    for (std::uint32_t n = 0; n < shift_nodes; ++n) {
      for (const Klass& k : all) {
        put<std::uint8_t>(out, static_cast<std::uint8_t>(
                                   gov.plan_.node_gap_shift(
                                       static_cast<NodeId>(n), k.id)));
      }
    }

    // v3: per-node cached-copy bookkeeping summary (registrations and
    // resampling copy visits paid).  Trailing all-zero rows are trimmed so
    // encode(decode(x)) stays bit-exact.
    std::uint32_t copy_nodes = 0;
    for (std::size_t n = 0; n < gov.plan_.bookkeeping_node_count(); ++n) {
      if (gov.plan_.copy_registrations(static_cast<NodeId>(n)) != 0 ||
          gov.plan_.resample_visits(static_cast<NodeId>(n)) != 0) {
        copy_nodes = static_cast<std::uint32_t>(n) + 1;
      }
    }
    put<std::uint32_t>(out, copy_nodes);
    for (std::uint32_t n = 0; n < copy_nodes; ++n) {
      put<std::uint64_t>(out, gov.plan_.copy_registrations(static_cast<NodeId>(n)));
      put<std::uint64_t>(out, gov.plan_.resample_visits(static_cast<NodeId>(n)));
    }

    // v4: backoff scoring mode + the decayed balancer-influence table.
    // Zero-influence classes are trimmed so encode(decode(x)) stays
    // bit-exact (the decoder only materializes the listed entries).
    put<std::uint8_t>(out, static_cast<std::uint8_t>(gov.cfg_.scoring));
    put<std::uint8_t>(out, gov.influence_seen_ ? 1u : 0u);
    put<std::uint16_t>(out, 0);
    put<double>(out, gov.cfg_.influence_decay);
    std::uint32_t influence_count = 0;
    for (std::size_t c = 0; c < gov.influence_.size(); ++c) {
      if (gov.influence_[c] != 0.0) ++influence_count;
    }
    put<std::uint32_t>(out, influence_count);
    for (std::size_t c = 0; c < gov.influence_.size(); ++c) {
      if (gov.influence_[c] == 0.0) continue;
      put<std::uint32_t>(out, static_cast<std::uint32_t>(c));
      put<double>(out, gov.influence_[c]);
    }

    // v5: executed-migration history (the facade's execution-stage log).
    // Per-thread cooldown stamps are not stored — the decoder rebuilds them
    // from the entries, which is exactly how the live governor derived them.
    put<std::uint64_t>(out, gov.migrations_executed_);
    put<std::uint32_t>(out,
                       static_cast<std::uint32_t>(gov.migration_history_.size()));
    for (const Governor::ExecutedMigration& m : gov.migration_history_) {
      put<std::uint64_t>(out, m.epoch);
      put<std::uint32_t>(out, m.thread);
      put<std::uint16_t>(out, m.from);
      put<std::uint16_t>(out, m.to);
      put<double>(out, m.gain_bytes);
      put<double>(out, m.sim_cost_seconds);
      put<std::uint64_t>(out, m.prefetched_bytes);
    }

    // v7: tenant budget lease (absent for standalone governors).  The grant
    // itself already lives in the encoded overhead_budget (set_budget writes
    // through cfg_); the lease records the arbitration context behind it.
    put<std::uint8_t>(out, gov.lease_.has_value() ? 1u : 0u);
    if (gov.lease_.has_value()) {
      const Governor::TenantLease& l = *gov.lease_;
      put<std::uint32_t>(out, l.tenant);
      put<std::uint32_t>(out, l.tier);
      put<double>(out, l.weight);
      put<double>(out, l.granted_budget);
      put<double>(out, l.fair_share);
      put<double>(out, l.floor);
      put<std::uint64_t>(out, l.borrowed_epochs);
      put<std::uint64_t>(out, l.lent_epochs);
    }

    put<std::uint64_t>(out, tcm.size());
    for (double v : tcm.raw()) put<double>(out, v);

    // v6: integrity footer over everything above.  Must stay the final
    // field — the decoder locates it from the end of the blob.
    put<std::uint32_t>(out, crc32(out.data(), out.size()));
  }

  static bool decode(const std::vector<std::uint8_t>& bytes, Governor& gov,
                     SquareMatrix& tcm) {
    Reader r(bytes);
    std::uint32_t magic = 0, version = 0;
    if (!r.get(magic) || magic != kSnapshotMagic) return false;
    if (!r.get(version) || version < kSnapshotVersionV1 ||
        version > kSnapshotVersion) {
      return false;
    }
    // Checksum before structure: a corrupt v6 blob must fail here, never by
    // luck of which field it tore.
    if (!check_crc_footer(bytes, version, r)) return false;
    const bool v1 = version == kSnapshotVersionV1;

    std::uint8_t mode = 0, state = 0, flags = 0, reserved = 0;
    GovernorConfig cfg = gov.cfg_;  // meter costs/window stay machine-local
    std::uint64_t epochs = 0, rearms = 0;
    if (!r.get(mode) || !r.get(state) || !r.get(flags) || !r.get(reserved)) {
      return false;
    }
    if (!r.get(cfg.overhead_budget) || !r.get(cfg.distance_threshold) ||
        !r.get(cfg.hysteresis) || !r.get(cfg.phase_spike_factor)) {
      return false;
    }
    if (v1) {
      // v1's flags byte was reserved padding; the per-node policy knobs
      // (cfg.per_node, cfg.node_budget) stay whatever this machine's
      // governor was configured with.
    } else {
      if (flags > 1u) return false;  // unknown flag bits: corruption
      if (!r.get(cfg.node_budget)) return false;
      cfg.per_node = (flags & 1u) != 0;
    }
    if (!r.get(cfg.sentinel_coarsen_shifts) || !r.get(cfg.max_nominal_gap) ||
        !r.get(epochs) || !r.get(rearms)) {
      return false;
    }
    if (mode > static_cast<std::uint8_t>(GovernorMode::kClosedLoop) ||
        state > static_cast<std::uint8_t>(GovernorState::kSentinel)) {
      return false;
    }
    // Armed modes only ever produce specific states; an inconsistent pair
    // (e.g. closed loop + kConverged, which closed_loop_step never leaves)
    // would wedge the restored controller.  Disarmed governors may carry
    // any terminal state for reporting.
    const auto gm = static_cast<GovernorMode>(mode);
    const auto gs = static_cast<GovernorState>(state);
    if (gm == GovernorMode::kLegacyOneWay && gs != GovernorState::kAdapting &&
        gs != GovernorState::kConverged) {
      return false;
    }
    if (gm == GovernorMode::kClosedLoop && gs != GovernorState::kAdapting &&
        gs != GovernorState::kSentinel) {
      return false;
    }
    // Config corruption that survives the structural checks would wedge the
    // controller (NaN budget disables every comparison; max gap 0 inverts
    // the sentinel): reject anything outside sane ranges.
    const auto sane = [](double v) { return std::isfinite(v) && v >= 0.0; };
    if (!sane(cfg.overhead_budget) || !sane(cfg.distance_threshold) ||
        !sane(cfg.hysteresis) || !sane(cfg.phase_spike_factor) ||
        !sane(cfg.node_budget) || cfg.max_nominal_gap == 0 ||
        cfg.sentinel_coarsen_shifts > 31) {
      return false;
    }

    std::uint32_t class_count = 0;
    if (!r.get(class_count)) return false;
    struct ClassGap {
      ClassId id;
      std::uint32_t nominal, real, converged, flags;
    };
    // A corrupt count must be rejected before it sizes an allocation.
    if (static_cast<std::uint64_t>(class_count) * (5 * sizeof(std::uint32_t)) >
        r.remaining()) {
      return false;
    }
    std::vector<ClassGap> gaps(class_count);
    const KlassRegistry& reg = gov.plan_.heap().registry();
    for (ClassGap& g : gaps) {
      if (!r.get(g.id) || !r.get(g.nominal) || !r.get(g.real) ||
          !r.get(g.converged) || !r.get(g.flags)) {
        return false;
      }
      if (static_cast<std::size_t>(g.id) >= reg.size()) return false;
      // A rated class with a zero gap field would silently flip to full
      // sampling on load (gap 0 clamps/behaves as 1): corruption, reject.
      if ((g.flags & 1u) != 0 && (g.nominal == 0 || g.real == 0)) return false;
    }

    // v2+: per-(node, class) gap shift table; a v1 snapshot has none, so a
    // restored per-node governor starts with every node on the cluster view.
    std::uint32_t shift_nodes = 0;
    std::vector<std::uint8_t> shifts;
    if (!v1) {
      if (!r.get(shift_nodes)) return false;
      const std::uint64_t cells =
          static_cast<std::uint64_t>(shift_nodes) * class_count;
      // NodeId is 16-bit; a wider count (or a table that cannot fit in the
      // remaining bytes) is corruption, checked before the allocation.
      if (shift_nodes > std::numeric_limits<NodeId>::max()) return false;
      if (cells > r.remaining()) return false;
      shifts.resize(static_cast<std::size_t>(cells));
      for (std::uint8_t& s : shifts) {
        if (!r.get(s)) return false;
        if (s > 31) return false;  // beyond any gap the encoder can produce
      }
    }

    // v3+: per-node cached-copy bookkeeping summary.  Older files simply
    // restart the counters at zero.
    std::uint32_t copy_nodes = 0;
    std::vector<std::uint64_t> copy_regs, copy_visits;
    if (version >= kSnapshotVersionV3) {
      if (!r.get(copy_nodes)) return false;
      if (copy_nodes > std::numeric_limits<NodeId>::max()) return false;
      if (static_cast<std::uint64_t>(copy_nodes) * 2 * sizeof(std::uint64_t) >
          r.remaining()) {
        return false;
      }
      copy_regs.resize(copy_nodes);
      copy_visits.resize(copy_nodes);
      for (std::uint32_t n = 0; n < copy_nodes; ++n) {
        if (!r.get(copy_regs[n]) || !r.get(copy_visits[n])) return false;
      }
      // The encoder trims trailing all-zero rows; a padded table would
      // re-encode differently (corruption or a foreign writer).
      if (copy_nodes > 0 && copy_regs[copy_nodes - 1] == 0 &&
          copy_visits[copy_nodes - 1] == 0) {
        return false;
      }
    }

    // v4: backoff scoring + influence table.  Pre-v4 files carry neither;
    // the restored governor keeps its machine-local scoring mode and
    // whatever influence it has already learned this run.
    bool have_v4 = false;
    std::uint8_t scoring = 0, influence_seen = 0;
    std::vector<std::pair<std::uint32_t, double>> influence_entries;
    if (version >= kSnapshotVersionV4) {
      have_v4 = true;
      std::uint16_t reserved16 = 0;
      if (!r.get(scoring) || !r.get(influence_seen) || !r.get(reserved16)) {
        return false;
      }
      if (scoring > static_cast<std::uint8_t>(BackoffScoring::kInfluenceWeighted) ||
          influence_seen > 1u || reserved16 != 0) {
        return false;
      }
      if (!r.get(cfg.influence_decay)) return false;
      if (!std::isfinite(cfg.influence_decay) || cfg.influence_decay < 0.0 ||
          cfg.influence_decay > 1.0) {
        return false;
      }
      std::uint32_t influence_count = 0;
      if (!r.get(influence_count)) return false;
      // An influence table without the seen flag would re-encode differently
      // (the encoder only writes entries a feedback epoch produced).
      if (influence_seen == 0 && influence_count != 0) return false;
      if (static_cast<std::uint64_t>(influence_count) *
              (sizeof(std::uint32_t) + sizeof(double)) >
          r.remaining()) {
        return false;
      }
      influence_entries.resize(influence_count);
      std::uint64_t last_id = 0;
      for (std::uint32_t i = 0; i < influence_count; ++i) {
        if (!r.get(influence_entries[i].first) ||
            !r.get(influence_entries[i].second)) {
          return false;
        }
        // Entries are written in ascending class order, trimmed of zeros;
        // out-of-order, duplicate, unknown-class, or non-positive values are
        // corruption (or a foreign writer).
        if (influence_entries[i].first >= reg.size()) return false;
        if (i > 0 && influence_entries[i].first <= last_id) return false;
        last_id = influence_entries[i].first;
        if (!std::isfinite(influence_entries[i].second) ||
            influence_entries[i].second <= 0.0) {
          return false;
        }
      }
      cfg.scoring = static_cast<BackoffScoring>(scoring);
    }

    // v5: executed-migration history.  Pre-v5 files carry none; the restored
    // governor keeps whatever history it has already accumulated this run.
    bool have_v5 = false;
    std::uint64_t migrations_executed = 0;
    std::vector<Governor::ExecutedMigration> migration_history;
    if (version >= kSnapshotVersionV5) {
      have_v5 = true;
      std::uint32_t count = 0;
      if (!r.get(migrations_executed) || !r.get(count)) return false;
      // The encoder never retains more than the cap, and the total counts
      // every entry the bounded history ever held.
      if (count > Governor::kMigrationHistoryCap) return false;
      if (migrations_executed < count) return false;
      constexpr std::size_t kEntryBytes = sizeof(std::uint64_t) +
                                          sizeof(std::uint32_t) +
                                          2 * sizeof(std::uint16_t) +
                                          2 * sizeof(double) +
                                          sizeof(std::uint64_t);
      if (static_cast<std::uint64_t>(count) * kEntryBytes > r.remaining()) {
        return false;
      }
      migration_history.resize(count);
      std::uint64_t prev_epoch = 0;
      for (Governor::ExecutedMigration& m : migration_history) {
        if (!r.get(m.epoch) || !r.get(m.thread) || !r.get(m.from) ||
            !r.get(m.to) || !r.get(m.gain_bytes) ||
            !r.get(m.sim_cost_seconds) || !r.get(m.prefetched_bytes)) {
          return false;
        }
        // The history is chronological and every executed move names two
        // distinct live nodes, a real thread, and a positive planner gain
        // (the execution stage records nothing else); the thread bound also
        // caps the cooldown-stamp table rebuilt below.
        if (m.epoch < prev_epoch || m.epoch > epochs) return false;
        prev_epoch = m.epoch;
        if (m.thread >= kMaxSnapshotThreads) return false;
        if (m.from == m.to || m.from == kInvalidNode || m.to == kInvalidNode) {
          return false;
        }
        if (!std::isfinite(m.gain_bytes) || m.gain_bytes <= 0.0) return false;
        if (!std::isfinite(m.sim_cost_seconds) || m.sim_cost_seconds < 0.0) {
          return false;
        }
      }
    }

    // v7: tenant budget lease.  Pre-v7 files have no opinion on tenancy, so
    // the live governor keeps whatever lease it already holds.
    bool have_v7 = false;
    bool has_lease = false;
    Governor::TenantLease lease;
    if (version >= kSnapshotVersionV7) {
      have_v7 = true;
      std::uint8_t lease_flag = 0;
      if (!r.get(lease_flag)) return false;
      if (lease_flag > 1u) return false;
      has_lease = lease_flag != 0;
      if (has_lease) {
        if (!r.get(lease.tenant) || !r.get(lease.tier) ||
            !r.get(lease.weight) || !r.get(lease.granted_budget) ||
            !r.get(lease.fair_share) || !r.get(lease.floor) ||
            !r.get(lease.borrowed_epochs) || !r.get(lease.lent_epochs)) {
          return false;
        }
        // A lease with a non-positive weight or a NaN grant would wedge the
        // next arbitration round the same way a NaN budget wedges the
        // controller: corruption, reject.
        if (!std::isfinite(lease.weight) || lease.weight <= 0.0) return false;
        if (!sane(lease.granted_budget) || !sane(lease.fair_share) ||
            !sane(lease.floor)) {
          return false;
        }
        if (lease.floor > lease.granted_budget && lease.granted_budget > 0.0) {
          return false;  // the arbiter never grants below the floor
        }
      }
    }

    std::uint64_t n = 0;
    if (!r.get(n)) return false;
    if (n != 0 && (n > r.remaining() / sizeof(double) / n)) return false;
    SquareMatrix m(static_cast<std::size_t>(n));
    for (double& v : m.raw()) {
      if (!r.get(v)) return false;
    }
    if (!r.exhausted()) return false;

    // All validation passed: apply.
    gov.cfg_ = cfg;
    gov.mode_ = static_cast<GovernorMode>(mode);
    gov.state_ = static_cast<GovernorState>(state);
    gov.epochs_ = static_cast<std::size_t>(epochs);
    gov.rearms_ = static_cast<std::size_t>(rearms);
    // A restored sentinel gets a grace epoch: the warm-started workload's
    // first map will differ from the stored one without that being a phase
    // change.
    gov.grace_ = gov.state_ == GovernorState::kSentinel ? 1 : 0;
    if (have_v4) {
      gov.influence_.clear();
      for (const auto& [id, value] : influence_entries) {
        if (gov.influence_.size() <= id) gov.influence_.resize(id + 1, 0.0);
        gov.influence_[id] = value;
      }
      gov.influence_seen_ = influence_seen != 0;
    }
    if (have_v5) {
      gov.migration_history_ = std::move(migration_history);
      gov.migrations_executed_ = migrations_executed;
      // Rebuild the per-thread cooldown stamps; entries are chronological,
      // so the last write per thread wins, as it did live.
      gov.last_migration_epoch_.clear();
      for (const Governor::ExecutedMigration& m : gov.migration_history_) {
        if (gov.last_migration_epoch_.size() <= m.thread) {
          gov.last_migration_epoch_.resize(static_cast<std::size_t>(m.thread) + 1,
                                           Governor::kNeverMigrated);
        }
        gov.last_migration_epoch_[m.thread] = m.epoch;
      }
    }
    if (have_v7) {
      gov.lease_ = has_lease ? std::optional(lease) : std::nullopt;
    }
    gov.converged_gaps_.assign(reg.size(), 0);  // 0 = not captured
    // Only classes whose gaps or shifts actually move need the paper's
    // change-notice resampling walk.  Restoring into an already-warm world
    // (same rates, same shifts) then resamples nothing — the restored
    // governor drives the cached-copy plan immediately, with no full
    // resample storm billed to the first epoch.
    std::vector<std::uint8_t> changed(reg.size(), 0);
    const auto mark_changed = [&changed](ClassId id) {
      if (static_cast<std::size_t>(id) < changed.size()) {
        changed[static_cast<std::size_t>(id)] = 1;
      }
    };
    // Shifts: any class shifted before or after the load is affected.
    for (std::size_t n = 0; n < gov.plan_.shift_node_count(); ++n) {
      for (const Klass& k : reg.all()) {
        if (gov.plan_.node_gap_shift(static_cast<NodeId>(n), k.id) != 0) {
          mark_changed(k.id);
        }
      }
    }
    for (std::uint32_t nn = 0; nn < shift_nodes; ++nn) {
      for (std::uint32_t c = 0; c < class_count; ++c) {
        if (shifts[static_cast<std::size_t>(nn) * class_count + c] != 0) {
          mark_changed(gaps[c].id);
        }
      }
    }
    for (const ClassGap& g : gaps) {
      if ((g.flags & 1u) == 0) continue;
      const SamplingInfo& live = reg.at(g.id).sampling;
      if (!live.initialized || live.nominal_gap != g.nominal ||
          live.real_gap != g.real) {
        mark_changed(g.id);
      }
    }
    // Node state: v2+ restores the stored shift table; v1 seeds every node
    // from the cluster view (no shifts).
    gov.plan_.clear_node_gap_shifts();
    for (std::uint32_t nn = 0; nn < shift_nodes; ++nn) {
      for (std::uint32_t c = 0; c < class_count; ++c) {
        const std::uint8_t s =
            shifts[static_cast<std::size_t>(nn) * class_count + c];
        if (s != 0) {
          gov.plan_.set_node_gap_shift(static_cast<NodeId>(nn), gaps[c].id, s);
        }
      }
    }
    for (const ClassGap& g : gaps) {
      // A class that never had a rate assigned keeps its placeholder gaps
      // and, crucially, its uninitialized flag, so its first allocation in
      // the warm-started run still inherits the cluster default rate.
      if ((g.flags & 1u) != 0) {
        gov.plan_.set_nominal_gap(g.id, g.nominal);
        // Apply the *stored* real gap rather than trusting the recompute:
        // bit-exactness must survive a future change to the nominal->prime
        // mapping (tie-breaking, say) between writer and reader builds.
        gov.plan_.heap().registry().at(g.id).sampling.real_gap = g.real;
      }
      gov.converged_gaps_[static_cast<std::size_t>(g.id)] = g.converged;
    }
    std::vector<ClassId> to_resample;
    for (std::size_t c = 0; c < changed.size(); ++c) {
      if (changed[c] != 0) to_resample.push_back(static_cast<ClassId>(c));
    }
    gov.plan_.resample_classes(to_resample);
    // Seeded last: the targeted resample above books its own visits, but the
    // restored totals must be exactly the stored ones (bit-exact re-encode).
    gov.plan_.seed_copy_bookkeeping(std::move(copy_regs), std::move(copy_visits));
    tcm = std::move(m);
    return true;
  }
};

std::vector<std::uint8_t> encode_snapshot(const Governor& gov,
                                          const SquareMatrix& tcm) {
  std::vector<std::uint8_t> out;
  SnapshotAccess::encode(gov, tcm, out);
  return out;
}

bool decode_snapshot(const std::vector<std::uint8_t>& bytes, Governor& gov,
                     SquareMatrix& tcm) {
  return SnapshotAccess::decode(bytes, gov, tcm);
}

bool save_snapshot(const std::string& path, const Governor& gov,
                   const SquareMatrix& tcm) {
  return write_file(path, encode_snapshot(gov, tcm));
}

bool load_snapshot(const std::string& path, Governor& gov, SquareMatrix& tcm) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  std::vector<std::uint8_t> bytes((std::istreambuf_iterator<char>(f)),
                                  std::istreambuf_iterator<char>());
  return decode_snapshot(bytes, gov, tcm);
}

std::optional<std::size_t> recover_snapshot(
    const std::vector<std::string>& candidates, Governor& gov,
    SquareMatrix& tcm) {
  for (std::size_t i = 0; i < candidates.size(); ++i) {
    // load_snapshot leaves the governor untouched unless the blob passes
    // every check (decode validates fully before applying), so trying a
    // corrupt newer candidate costs nothing.
    if (load_snapshot(candidates[i], gov, tcm)) return i;
  }
  return std::nullopt;
}

std::vector<std::string> recover_timeline(const std::string& path, bool* torn) {
  if (torn != nullptr) *torn = false;
  std::vector<std::string> lines;
  std::ifstream f(path, std::ios::binary);
  if (!f) return lines;
  std::string content((std::istreambuf_iterator<char>(f)),
                      std::istreambuf_iterator<char>());
  std::size_t start = 0;
  while (start < content.size()) {
    const std::size_t nl = content.find('\n', start);
    if (nl == std::string::npos) {
      // Bytes past the last newline are a line the crash cut short — the
      // batched append writes whole '\n'-terminated lines, so a complete
      // line always carries its terminator.
      if (torn != nullptr) *torn = true;
      break;
    }
    lines.emplace_back(content, start, nl - start);
    start = nl + 1;
  }
  return lines;
}

// --- parse_snapshot -----------------------------------------------------------
//
// Mirrors SnapshotAccess::decode field for field but keeps only the
// structural checks: counts vs remaining bytes, enum ranges, finiteness,
// shift/flag bounds, full consumption.  Registry-dependent checks (known
// class ids, trim invariants that assume this build's encoder) are dropped —
// an exporter must read files from other runs and other registry layouts.

bool parse_snapshot(const std::vector<std::uint8_t>& bytes, SnapshotInfo& out) {
  Reader r(bytes);
  std::uint32_t magic = 0;
  if (!r.get(magic) || magic != kSnapshotMagic) return false;
  if (!r.get(out.version) || out.version < kSnapshotVersionV1 ||
      out.version > kSnapshotVersion) {
    return false;
  }
  if (!check_crc_footer(bytes, out.version, r)) return false;
  const bool v1 = out.version == kSnapshotVersionV1;

  std::uint8_t flags = 0, reserved = 0;
  if (!r.get(out.mode) || !r.get(out.state) || !r.get(flags) ||
      !r.get(reserved)) {
    return false;
  }
  if (!r.get(out.overhead_budget) || !r.get(out.distance_threshold) ||
      !r.get(out.hysteresis) || !r.get(out.phase_spike_factor)) {
    return false;
  }
  out.node_budget = 0.0;
  out.per_node = false;
  if (!v1) {
    if (flags > 1u) return false;
    if (!r.get(out.node_budget)) return false;
    out.per_node = (flags & 1u) != 0;
  }
  if (!r.get(out.sentinel_coarsen_shifts) || !r.get(out.max_nominal_gap) ||
      !r.get(out.epochs_seen) || !r.get(out.rearms)) {
    return false;
  }
  if (out.mode > static_cast<std::uint8_t>(GovernorMode::kClosedLoop) ||
      out.state > static_cast<std::uint8_t>(GovernorState::kSentinel)) {
    return false;
  }
  const auto sane = [](double v) { return std::isfinite(v) && v >= 0.0; };
  if (!sane(out.overhead_budget) || !sane(out.distance_threshold) ||
      !sane(out.hysteresis) || !sane(out.phase_spike_factor) ||
      !sane(out.node_budget) || out.sentinel_coarsen_shifts > 31) {
    return false;
  }

  std::uint32_t class_count = 0;
  if (!r.get(class_count)) return false;
  if (static_cast<std::uint64_t>(class_count) * (5 * sizeof(std::uint32_t)) >
      r.remaining()) {
    return false;
  }
  out.classes.assign(class_count, {});
  for (SnapshotInfo::ClassGap& g : out.classes) {
    std::uint32_t class_flags = 0;
    if (!r.get(g.id) || !r.get(g.nominal_gap) || !r.get(g.real_gap) ||
        !r.get(g.converged_gap) || !r.get(class_flags)) {
      return false;
    }
    g.rated = (class_flags & 1u) != 0;
  }

  out.shift_nodes = 0;
  out.node_gap_shifts.clear();
  if (!v1) {
    if (!r.get(out.shift_nodes)) return false;
    const std::uint64_t cells =
        static_cast<std::uint64_t>(out.shift_nodes) * class_count;
    if (out.shift_nodes > std::numeric_limits<NodeId>::max()) return false;
    if (cells > r.remaining()) return false;
    out.node_gap_shifts.resize(static_cast<std::size_t>(cells));
    for (std::uint8_t& s : out.node_gap_shifts) {
      if (!r.get(s)) return false;
      if (s > 31) return false;
    }
  }

  out.copy_nodes.clear();
  if (out.version >= kSnapshotVersionV3) {
    std::uint32_t copy_count = 0;
    if (!r.get(copy_count)) return false;
    if (copy_count > std::numeric_limits<NodeId>::max()) return false;
    if (static_cast<std::uint64_t>(copy_count) * 2 * sizeof(std::uint64_t) >
        r.remaining()) {
      return false;
    }
    out.copy_nodes.assign(copy_count, {});
    for (SnapshotInfo::CopyNode& c : out.copy_nodes) {
      if (!r.get(c.registrations) || !r.get(c.resample_visits)) return false;
    }
  }

  out.backoff_scoring = 0;
  out.influence_seen = false;
  out.influence_decay = 0.0;
  out.influence.clear();
  if (out.version >= kSnapshotVersionV4) {
    std::uint8_t influence_seen = 0;
    std::uint16_t reserved16 = 0;
    if (!r.get(out.backoff_scoring) || !r.get(influence_seen) ||
        !r.get(reserved16)) {
      return false;
    }
    if (out.backoff_scoring >
            static_cast<std::uint8_t>(BackoffScoring::kInfluenceWeighted) ||
        influence_seen > 1u || reserved16 != 0) {
      return false;
    }
    out.influence_seen = influence_seen != 0;
    if (!r.get(out.influence_decay)) return false;
    if (!std::isfinite(out.influence_decay) || out.influence_decay < 0.0 ||
        out.influence_decay > 1.0) {
      return false;
    }
    std::uint32_t influence_count = 0;
    if (!r.get(influence_count)) return false;
    if (static_cast<std::uint64_t>(influence_count) *
            (sizeof(std::uint32_t) + sizeof(double)) >
        r.remaining()) {
      return false;
    }
    out.influence.assign(influence_count, {});
    std::uint64_t last_id = 0;
    for (std::uint32_t i = 0; i < influence_count; ++i) {
      if (!r.get(out.influence[i].first) || !r.get(out.influence[i].second)) {
        return false;
      }
      if (i > 0 && out.influence[i].first <= last_id) return false;
      last_id = out.influence[i].first;
      if (!std::isfinite(out.influence[i].second) ||
          out.influence[i].second <= 0.0) {
        return false;
      }
    }
  }

  out.migrations_executed = 0;
  out.migrations.clear();
  if (out.version >= kSnapshotVersionV5) {
    std::uint32_t count = 0;
    if (!r.get(out.migrations_executed) || !r.get(count)) return false;
    if (count > Governor::kMigrationHistoryCap) return false;
    if (out.migrations_executed < count) return false;
    constexpr std::size_t kEntryBytes =
        sizeof(std::uint64_t) + sizeof(std::uint32_t) +
        2 * sizeof(std::uint16_t) + 2 * sizeof(double) + sizeof(std::uint64_t);
    if (static_cast<std::uint64_t>(count) * kEntryBytes > r.remaining()) {
      return false;
    }
    out.migrations.assign(count, {});
    std::uint64_t prev_epoch = 0;
    for (SnapshotInfo::Migration& m : out.migrations) {
      if (!r.get(m.epoch) || !r.get(m.thread) || !r.get(m.from) ||
          !r.get(m.to) || !r.get(m.gain_bytes) || !r.get(m.sim_cost_seconds) ||
          !r.get(m.prefetched_bytes)) {
        return false;
      }
      if (m.epoch < prev_epoch || m.epoch > out.epochs_seen) return false;
      prev_epoch = m.epoch;
      if (m.from == m.to || m.from == kInvalidNode || m.to == kInvalidNode) {
        return false;
      }
      if (!std::isfinite(m.gain_bytes) || m.gain_bytes <= 0.0) return false;
      if (!std::isfinite(m.sim_cost_seconds) || m.sim_cost_seconds < 0.0) {
        return false;
      }
    }
  }

  out.has_lease = false;
  out.lease = {};
  if (out.version >= kSnapshotVersionV7) {
    std::uint8_t lease_flag = 0;
    if (!r.get(lease_flag)) return false;
    if (lease_flag > 1u) return false;
    out.has_lease = lease_flag != 0;
    if (out.has_lease) {
      if (!r.get(out.lease.tenant) || !r.get(out.lease.tier) ||
          !r.get(out.lease.weight) || !r.get(out.lease.granted_budget) ||
          !r.get(out.lease.fair_share) || !r.get(out.lease.floor) ||
          !r.get(out.lease.borrowed_epochs) || !r.get(out.lease.lent_epochs)) {
        return false;
      }
      if (!std::isfinite(out.lease.weight) || out.lease.weight <= 0.0) {
        return false;
      }
      if (!sane(out.lease.granted_budget) || !sane(out.lease.fair_share) ||
          !sane(out.lease.floor)) {
        return false;
      }
    }
  }

  std::uint64_t n = 0;
  if (!r.get(n)) return false;
  if (n != 0 && (n > r.remaining() / sizeof(double) / n)) return false;
  SquareMatrix m(static_cast<std::size_t>(n));
  for (double& v : m.raw()) {
    if (!r.get(v)) return false;
    if (!std::isfinite(v)) return false;
  }
  if (!r.exhausted()) return false;
  out.tcm = std::move(m);
  return true;
}

// --- SnapshotWriter -----------------------------------------------------------

SnapshotWriter::SnapshotWriter() : worker_([this] { worker_loop(); }) {}

SnapshotWriter::~SnapshotWriter() {
  {
    std::lock_guard<std::mutex> lk(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  worker_.join();
}

void SnapshotWriter::save_async(const std::string& path, const Governor& gov,
                                const SquareMatrix& tcm) {
  // Encode outside the lock: the caller owns the governor/plan state, and
  // the worker never touches back_.
  back_.clear();
  SnapshotAccess::encode(gov, tcm, back_);
  {
    std::lock_guard<std::mutex> lk(mu_);
    if (has_pending_) ++coalesced_;  // still queued: the newer state wins
    pending_path_ = path;
    pending_.swap(back_);  // capacities circulate between the two slots
    has_pending_ = true;
    ++submitted_;
  }
  work_cv_.notify_one();
}

void SnapshotWriter::append_async(const std::string& path,
                                  std::string_view line) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    append_path_ = path;
    append_pending_.append(line);
    has_append_ = true;
    ++appended_;
  }
  work_cv_.notify_one();
}

void SnapshotWriter::flush() {
  std::unique_lock<std::mutex> lk(mu_);
  idle_cv_.wait(lk,
                [this] { return !has_pending_ && !has_append_ && !writing_; });
}

std::uint64_t SnapshotWriter::submitted() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return submitted_;
}

std::uint64_t SnapshotWriter::completed() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return completed_;
}

std::uint64_t SnapshotWriter::coalesced() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return coalesced_;
}

std::uint64_t SnapshotWriter::appended() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return appended_;
}

std::uint64_t SnapshotWriter::append_writes() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return append_writes_;
}

bool SnapshotWriter::all_ok() const noexcept {
  std::lock_guard<std::mutex> lk(mu_);
  return all_ok_;
}

void SnapshotWriter::worker_loop() {
  std::vector<std::uint8_t> front;   // worker-owned write buffer
  std::string append_front;          // worker-owned append batch
  std::string path;
  std::unique_lock<std::mutex> lk(mu_);
  for (;;) {
    work_cv_.wait(lk, [this] { return has_pending_ || has_append_ || stop_; });
    if (!has_pending_ && !has_append_) break;  // stop with nothing queued
    if (has_pending_) {
      path = std::move(pending_path_);
      front.swap(pending_);
      has_pending_ = false;
      writing_ = true;
      lk.unlock();
      const bool ok = write_file(path, front);
      lk.lock();
      writing_ = false;
      ++completed_;
      if (!ok) all_ok_ = false;
    }
    if (has_append_) {
      path = append_path_;
      append_front.clear();
      append_front.swap(append_pending_);  // capacity circulates back on swap
      has_append_ = false;
      writing_ = true;
      lk.unlock();
      bool ok = false;
      {
        std::ofstream f(path, std::ios::binary | std::ios::app);
        if (f) {
          f.write(append_front.data(),
                  static_cast<std::streamsize>(append_front.size()));
          ok = static_cast<bool>(f);
        }
      }
      lk.lock();
      writing_ = false;
      ++append_writes_;
      if (!ok) all_ok_ = false;
    }
    idle_cv_.notify_all();
  }
}

}  // namespace djvm
