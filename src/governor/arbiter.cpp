#include "governor/arbiter.hpp"

#include <algorithm>
#include <chrono>

namespace djvm {

BudgetArbiter::BudgetArbiter(ArbiterKnobs knobs) : knobs_(knobs) {}

BudgetArbiter::Slot* BudgetArbiter::slot(TenantId tenant) {
  if (tenant >= slots_.size()) return nullptr;
  Slot& s = slots_[tenant];
  return s.registered ? &s : nullptr;
}

const Governor::TenantLease& BudgetArbiter::register_tenant(
    const TenantKnobs& tenant) {
  if (slots_.size() <= tenant.id) slots_.resize(tenant.id + 1);
  Slot& s = slots_[tenant.id];
  s.registered = true;
  s.knobs = tenant;
  s.last = TenantReport{tenant.id, 0.0, false};
  s.lease.tenant = tenant.id;
  s.lease.tier = tenant.tier;
  s.lease.weight = tenant.weight;
  // Seed with the fair split over the tenants registered so far; the first
  // arbitrate() recomputes everyone.
  double wsum = 0.0;
  for (const Slot& o : slots_) {
    if (o.registered) wsum += o.knobs.weight;
  }
  const double fair =
      wsum > 0.0 ? knobs_.global_budget * tenant.weight / wsum : 0.0;
  s.lease.fair_share = fair;
  s.lease.floor = knobs_.floor_share * fair;
  s.lease.granted_budget = fair;
  return s.lease;
}

void BudgetArbiter::report(const TenantReport& r) {
  if (Slot* s = slot(r.tenant)) s->last = r;
}

std::size_t BudgetArbiter::tenant_count() const noexcept {
  std::size_t n = 0;
  for (const Slot& s : slots_) n += s.registered ? 1 : 0;
  return n;
}

const Governor::TenantLease* BudgetArbiter::lease(TenantId tenant) const {
  if (tenant >= slots_.size() || !slots_[tenant].registered) return nullptr;
  return &slots_[tenant].lease;
}

ArbitrationOutcome BudgetArbiter::arbitrate() {
  const auto t0 = std::chrono::steady_clock::now();
  ArbitrationOutcome out;
  out.epoch = epoch_++;
  out.global_budget = knobs_.global_budget;

  double wsum = 0.0;
  for (const Slot& s : slots_) {
    if (s.registered) wsum += s.knobs.weight;
  }
  if (wsum > 0.0) {
    // Pass 1: fair shares, floors, and the lending pool.  A lender's grant
    // drops toward its measured demand (never below its floor); the
    // difference to its fair share is what the pool can hand out.  Demand is
    // clamped to fair first so an over-budget report cannot mint budget.
    double pool = 0.0;
    std::vector<TenantId> hot;
    for (Slot& s : slots_) {
      if (!s.registered) continue;
      const double fair = knobs_.global_budget * s.knobs.weight / wsum;
      const double floor = knobs_.floor_share * fair;
      s.lease.tier = s.knobs.tier;
      s.lease.weight = s.knobs.weight;
      s.lease.fair_share = fair;
      s.lease.floor = floor;
      const double demand = std::min(s.last.rolling_fraction, fair);
      // The lend test is against the fair entitlement, not the previous
      // grant: a boosted grant would otherwise inflate the threshold and
      // flap a still-hot borrower into the lender role the round after it
      // borrowed.
      const bool lender =
          s.last.degraded ||
          s.last.rolling_fraction < knobs_.lend_threshold * fair;
      if (lender) {
        const double grant =
            std::max(floor, fair - knobs_.lend_ratio * (fair - demand));
        pool += fair - grant;
        s.lease.granted_budget = grant;
      } else {
        s.lease.granted_budget = fair;
        // Only healthy tenants whose demand presses against their fair share
        // draw from the pool.
        if (!s.last.degraded &&
            s.last.rolling_fraction >= knobs_.lend_threshold * fair) {
          hot.push_back(s.lease.tenant);
        }
      }
    }

    // Pass 2: borrowers draw the pool in priority order — tier ascending,
    // weight descending, id ascending — each capped at max_boost * fair.
    // Greedy by design: a tier-0 borrower drains the pool before tier-1 sees
    // it, which is exactly the priority semantics the floors bound.
    std::sort(hot.begin(), hot.end(), [&](TenantId a, TenantId b) {
      const Slot& sa = slots_[a];
      const Slot& sb = slots_[b];
      if (sa.knobs.tier != sb.knobs.tier) return sa.knobs.tier < sb.knobs.tier;
      if (sa.knobs.weight != sb.knobs.weight)
        return sa.knobs.weight > sb.knobs.weight;
      return a < b;
    });
    for (const TenantId id : hot) {
      if (pool <= 0.0) break;
      Slot& s = slots_[id];
      const double cap = knobs_.max_boost * s.lease.fair_share;
      const double take =
          std::min(pool, std::max(0.0, cap - s.lease.granted_budget));
      if (take <= 0.0) continue;
      s.lease.granted_budget += take;
      pool -= take;
    }

    for (Slot& s : slots_) {
      if (!s.registered) continue;
      if (s.lease.granted_budget > s.lease.fair_share + 1e-12) {
        ++s.lease.borrowed_epochs;
        ++out.borrowers;
      } else if (s.lease.granted_budget < s.lease.fair_share - 1e-12) {
        ++s.lease.lent_epochs;
        ++out.lenders;
      }
      out.granted_total += s.lease.granted_budget;
      out.leases.push_back(s.lease);
    }
  }

  out.decision_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();
  billed_seconds_ += out.decision_seconds;
  return out;
}

}  // namespace djvm
