// Rolling profiling-overhead meter for the closed-loop governor.
//
// The profiling stack's costs are scattered across subsystems: the GOS
// charges access-check and OAL log-service time to thread clocks, the
// network bills OAL wire bytes (kOalEntryWireBytes per entry plus the
// interval header), the daemon measures real TCM build seconds, and every
// rate change pays a heap-wide resampling pass.  The meter folds one
// `OverheadSample` per daemon epoch into a rolling window and reports the
// overhead *fraction* — profiling seconds per application second — that the
// governor compares against its operator-set budget.
//
// Worker-side costs (access checks, wire transfer, resampling) execute on
// the nodes running application threads and count fully.  Coordinator-side
// TCM build time runs on a dedicated machine in the paper's setup, so it is
// reported separately and folded in under a configurable weight
// (default 0: the paper's "does not add to execution time" assumption).
#pragma once

#include <cstddef>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/types.hpp"

namespace djvm {

/// One worker node's slice of an epoch's costs.  The paper's profiling costs
/// are paid *locally* — each node runs its own access checks, ships its own
/// OALs, and resamples its own cached objects — so the governor budgets each
/// node against its own application progress, not the cluster average.
struct NodeOverheadSample {
  NodeId node = 0;
  /// Application progress of this node's threads (profiling time already
  /// subtracted, as in OverheadSample::app_seconds).
  double app_seconds = 0.0;
  /// Rate-dependent profiling CPU this node paid (OAL log service, footprint
  /// re-arms, measured OAL send time).
  double access_check_seconds = 0.0;
  /// Rate-independent profiling CPU (stack-sampling timers on this node).
  double fixed_seconds = 0.0;
  /// OAL payload shipped from this node (priced by the cost model only when
  /// the sample is unmeasured; measured pumps fold send time into
  /// access_check_seconds).
  std::uint64_t wire_bytes = 0;
  /// Resampling copy visits this node paid last epoch (it walked the
  /// objects it caches, wherever they are homed).
  std::uint64_t resampled_objects = 0;
};

/// Per-epoch cost observations, assembled by the Djvm pump hook (or by the
/// daemon itself from the records when running standalone).
struct OverheadSample {
  /// True when a pump hook measured worker-side costs directly.  When false
  /// (standalone daemon use) wire bytes are derived from the epoch's
  /// records; such samples are observational only — with no measured app
  /// time the governor suspends budget enforcement on them.
  bool measured = false;
  /// Tenant the epoch belongs to.  Meters namespace their window state per
  /// (tenant, node): a shared cluster meter fed by several tenants must not
  /// let one tenant's idle epoch overwrite the signal another tenant just
  /// recorded for the same node.  Standalone runs leave this 0.
  TenantId tenant = 0;
  /// Application progress this epoch: summed per-thread simulated seconds,
  /// with the profiling costs charged to thread clocks subtracted back out
  /// (so the fraction is profiling per *application* second, not
  /// profiling/(app+profiling)).
  double app_seconds = 0.0;
  /// Worker CPU in *rate-dependent* profiling paths this epoch (OAL log
  /// service, footprint re-arm touches) — reducible by coarsening gaps.
  double access_check_seconds = 0.0;
  /// Worker CPU in *rate-independent* profiling this epoch (stack-sampling
  /// timers): part of the budgeted fraction, but coarsening sampling gaps
  /// cannot reduce it, so the back-off controller must not chase it.
  double fixed_seconds = 0.0;
  /// Coordinator CPU this epoch (real seconds): TCM construction plus the
  /// per-class cell attribution and any caller-supplied coordinator work
  /// (the facade's migration-planner/feedback run).  The daemon *adds* its
  /// construction time to whatever the caller pre-filled here.
  double build_seconds = 0.0;
  /// OAL payload shipped to the coordinator this epoch.
  std::uint64_t wire_bytes = 0;
  /// Objects visited by resampling passes triggered last epoch.
  std::uint64_t resampled_objects = 0;
  /// Per-node slices of the costs above (empty when the caller only has
  /// cluster aggregates; the cluster fields are NOT derived from this list,
  /// both views are recorded as given).
  std::vector<NodeOverheadSample> nodes;
};

/// Conversion constants from event counts to seconds, calibrated to the
/// simulated testbed (see SimCosts: Fast Ethernet, 120 ns log service).
struct OverheadCosts {
  /// Wire seconds per OAL payload byte (12.5 MB/s Fast Ethernet).
  double seconds_per_wire_byte = 80e-9;
  /// Seconds per object visited in a resampling pass (sampled-bit
  /// recompute: one registry lookup + modulo).
  double seconds_per_resampled_object = 15e-9;
  /// Weight of coordinator build seconds in the budgeted fraction (0 = the
  /// paper's dedicated-machine assumption).
  double coordinator_weight = 0.0;
};

/// Rolling window of per-epoch overhead samples.
class OverheadMeter {
 public:
  explicit OverheadMeter(OverheadCosts costs = {}, std::size_t window = 4);

  void record(const OverheadSample& sample);

  /// Budgeted profiling seconds implied by one sample under the cost model.
  [[nodiscard]] double profiling_seconds(const OverheadSample& sample) const;

  /// Overhead fraction of the most recent epoch alone (0 when that epoch
  /// carried no signal — see rolling_fraction).
  [[nodiscard]] double epoch_fraction() const;

  /// Overhead fraction over the rolling window:
  /// sum(profiling seconds) / sum(app seconds).  Epochs with zero
  /// application progress carry no rate signal and are skipped — cost
  /// observed against an idle epoch (e.g. a resampling transient billed to
  /// a node that ran nothing) must not read as infinite overhead, or the
  /// controller would back off a node with no work to protect.  A window
  /// with no signal at all reads 0.
  [[nodiscard]] double rolling_fraction() const;

  /// The rate-dependent share of rolling_fraction(): what gap coarsening
  /// can actually reduce (entry CPU + wire + resampling + weighted build);
  /// excludes OverheadSample::fixed_seconds.
  [[nodiscard]] double rolling_reducible_fraction() const;

  /// Coordinator-side fraction over the window (reported, not budgeted
  /// unless coordinator_weight > 0).
  [[nodiscard]] double coordinator_fraction() const;

  // --- per-node views --------------------------------------------------------
  /// Number of nodes that have appeared in recorded samples (node ids are
  /// dense; a node that never appeared reads as zero overhead).
  [[nodiscard]] std::size_t node_count() const noexcept;
  /// Rolling overhead fraction of one node: its profiling seconds over its
  /// own app seconds (same no-signal skipping as rolling_fraction, so an
  /// idle node never reads as the worst offender).
  [[nodiscard]] double node_rolling_fraction(NodeId node) const;
  /// The rate-dependent share of node_rolling_fraction.
  [[nodiscard]] double node_rolling_reducible_fraction(NodeId node) const;
  /// One node's most recent epoch alone (the most recently recorded
  /// tenant's slot — exactly the pre-tenant behavior for a meter fed by a
  /// single tenant; multi-tenant callers use the tenant-qualified overload).
  [[nodiscard]] double node_epoch_fraction(NodeId node) const;
  /// Node with the highest rolling fraction (ties break toward the lowest
  /// id); nullopt when no per-node samples were ever recorded.
  [[nodiscard]] std::optional<NodeId> worst_node() const;

  // --- per-tenant views ------------------------------------------------------
  // Window state is namespaced per (tenant, node): each tenant's samples
  // advance only that tenant's rings, so an idle tenant's zero-app epochs
  // can never mark a shared node as no-signal for a busy one.  The
  // unqualified queries above aggregate across tenants (identical to the
  // old behavior when all samples carry one tenant id).
  /// Number of tenants that have appeared in recorded samples.
  [[nodiscard]] std::size_t tenant_count() const noexcept { return tenants_.size(); }
  /// One tenant's rolling overhead fraction over its own window.
  [[nodiscard]] double rolling_fraction(TenantId tenant) const;
  /// The rate-dependent share of rolling_fraction(tenant).
  [[nodiscard]] double rolling_reducible_fraction(TenantId tenant) const;
  /// One tenant's most recent epoch alone.
  [[nodiscard]] double epoch_fraction(TenantId tenant) const;
  /// One (tenant, node) rolling fraction.
  [[nodiscard]] double node_rolling_fraction(TenantId tenant, NodeId node) const;
  /// One (tenant, node) most recent epoch alone.
  [[nodiscard]] double node_epoch_fraction(TenantId tenant, NodeId node) const;
  /// The tenant's worst node by rolling fraction.
  [[nodiscard]] std::optional<NodeId> worst_node(TenantId tenant) const;

  [[nodiscard]] std::size_t epochs() const noexcept { return epochs_; }
  [[nodiscard]] std::size_t window() const noexcept { return window_; }
  [[nodiscard]] const OverheadCosts& costs() const noexcept { return costs_; }

  /// One window slot (public so the window-summing helper can see it).
  struct Entry {
    double app_seconds = 0.0;
    double reducible_seconds = 0.0;  ///< shrinks when gaps coarsen
    double fixed_seconds = 0.0;      ///< rate-independent profiling CPU
    double build_seconds = 0.0;
    /// False when the epoch made no application progress here: no-signal
    /// slots are skipped by every fraction, never read as infinite overhead.
    bool signal = false;
  };

 private:
  /// One tenant's rolling window: a cluster ring plus per-node rings that
  /// share this tenant's next/filled so its windows stay epoch-aligned.
  /// Another tenant recording an epoch never touches these.
  struct TenantWindow {
    std::vector<Entry> ring;
    std::vector<std::vector<Entry>> node_rings;
    std::size_t next = 0;
    std::size_t filled = 0;
  };

  [[nodiscard]] const TenantWindow* window_for(TenantId tenant) const;

  OverheadCosts costs_;
  std::size_t window_;
  /// Dense per-tenant windows (tenant ids are small and dense; standalone
  /// meters hold exactly one entry for tenant 0).
  std::vector<TenantWindow> tenants_;
  /// Tenant of the most recent record(): epoch_fraction() and
  /// node_epoch_fraction(node) keep their "latest recorded epoch" meaning.
  TenantId last_tenant_ = 0;
  std::size_t epochs_ = 0;
};

}  // namespace djvm
