#include "export/pprof.hpp"

namespace djvm::pprof {

void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v) {
  while (v >= 0x80) {
    out.push_back(static_cast<std::uint8_t>(v) | 0x80);
    v >>= 7;
  }
  out.push_back(static_cast<std::uint8_t>(v));
}

bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& v) {
  v = 0;
  for (std::uint32_t shift = 0; shift < 64; shift += 7) {
    if (pos >= in.size()) return false;
    const std::uint8_t b = in[pos++];
    v |= static_cast<std::uint64_t>(b & 0x7F) << shift;
    if ((b & 0x80) == 0) return true;
  }
  return false;  // 10th byte still had the continuation bit: malformed
}

void put_tag(std::vector<std::uint8_t>& out, std::uint32_t field,
             std::uint32_t wire_type) {
  put_varint(out, (static_cast<std::uint64_t>(field) << 3) | wire_type);
}

void put_varint_field(std::vector<std::uint8_t>& out, std::uint32_t field,
                      std::uint64_t v) {
  put_tag(out, field, 0);
  put_varint(out, v);
}

void put_bytes_field(std::vector<std::uint8_t>& out, std::uint32_t field,
                     std::span<const std::uint8_t> bytes) {
  put_tag(out, field, 2);
  put_varint(out, bytes.size());
  out.insert(out.end(), bytes.begin(), bytes.end());
}

void put_string_field(std::vector<std::uint8_t>& out, std::uint32_t field,
                      std::string_view s) {
  put_tag(out, field, 2);
  put_varint(out, s.size());
  out.insert(out.end(), s.begin(), s.end());
}

std::int64_t StringTable::id(std::string_view s) {
  const auto it = index_.find(std::string(s));
  if (it != index_.end()) return it->second;
  const auto idx = static_cast<std::int64_t>(strings_.size());
  strings_.emplace_back(s);
  index_.emplace(strings_.back(), idx);
  return idx;
}

void ProfileBuilder::add_sample_type(std::string_view type,
                                     std::string_view unit) {
  sample_types_.push_back(ValueTypeRec{strings_.id(type), strings_.id(unit)});
}

std::uint64_t ProfileBuilder::function_id(std::string_view name) {
  const auto it = function_index_.find(std::string(name));
  if (it != function_index_.end()) return it->second;
  function_names_.push_back(strings_.id(name));
  const std::uint64_t id = function_names_.size();  // 1-based
  function_index_.emplace(name, id);
  return id;
}

std::uint64_t ProfileBuilder::location_id(std::string_view function_name) {
  const std::uint64_t fn = function_id(function_name);
  const auto it = location_index_.find(fn);
  if (it != location_index_.end()) return it->second;
  location_functions_.push_back(fn);
  const std::uint64_t id = location_functions_.size();  // 1-based
  location_index_.emplace(fn, id);
  return id;
}

void ProfileBuilder::add_sample(
    std::span<const std::uint64_t> root_first_locations,
    std::span<const std::int64_t> values) {
  SampleRec rec;
  rec.locations.assign(root_first_locations.begin(),
                       root_first_locations.end());
  rec.values.assign(values.begin(), values.end());
  rec.values.resize(sample_types_.size(), 0);
  samples_.push_back(std::move(rec));
}

std::vector<std::uint8_t> ProfileBuilder::encode() const {
  std::vector<std::uint8_t> out;
  std::vector<std::uint8_t> msg;     // submessage scratch
  std::vector<std::uint8_t> packed;  // packed repeated scratch

  // sample_type (field 1): one ValueType per declared slot.
  for (const ValueTypeRec& vt : sample_types_) {
    msg.clear();
    put_varint_field(msg, 1, static_cast<std::uint64_t>(vt.type));
    put_varint_field(msg, 2, static_cast<std::uint64_t>(vt.unit));
    put_bytes_field(out, 1, msg);
  }

  // sample (field 2): location_id stacks are stored leaf-first in the
  // format; the builder collected them root-first.
  for (const SampleRec& s : samples_) {
    msg.clear();
    packed.clear();
    for (auto it = s.locations.rbegin(); it != s.locations.rend(); ++it) {
      put_varint(packed, *it);
    }
    if (!packed.empty()) put_bytes_field(msg, 1, packed);
    packed.clear();
    for (const std::int64_t v : s.values) {
      put_varint(packed, static_cast<std::uint64_t>(v));
    }
    put_bytes_field(msg, 2, packed);
    put_bytes_field(out, 2, msg);
  }

  // location (field 4): id + one Line pointing at the function.
  std::vector<std::uint8_t> line;
  for (std::size_t i = 0; i < location_functions_.size(); ++i) {
    msg.clear();
    put_varint_field(msg, 1, i + 1);
    line.clear();
    put_varint_field(line, 1, location_functions_[i]);
    put_bytes_field(msg, 4, line);
    put_bytes_field(out, 4, msg);
  }

  // function (field 5): id + name (system_name mirrors name).
  for (std::size_t i = 0; i < function_names_.size(); ++i) {
    msg.clear();
    put_varint_field(msg, 1, i + 1);
    put_varint_field(msg, 2, static_cast<std::uint64_t>(function_names_[i]));
    put_varint_field(msg, 3, static_cast<std::uint64_t>(function_names_[i]));
    put_bytes_field(out, 5, msg);
  }

  // string_table (field 6): every interned string, "" first.
  for (const std::string& s : strings_.strings()) {
    put_string_field(out, 6, s);
  }

  // period_type (11) + period (12): nominal, keeps pprof's header tidy.
  if (!sample_types_.empty()) {
    msg.clear();
    put_varint_field(msg, 1,
                     static_cast<std::uint64_t>(sample_types_[0].type));
    put_varint_field(msg, 2,
                     static_cast<std::uint64_t>(sample_types_[0].unit));
    put_bytes_field(out, 11, msg);
    put_varint_field(out, 12, 1);
  }
  return out;
}

}  // namespace djvm::pprof
