// Dependency-free pprof `profile.proto` writer.
//
// pprof (and every tool that speaks its format: `go tool pprof`, speedscope,
// Grafana Phlare/Pyroscope) consumes a gzip-or-raw protobuf `Profile`
// message.  Pulling in protobuf for a dozen fields is absurd for a profiler
// whose whole point is low overhead, so this is the wire format by hand:
// varints, length-delimited submessages, packed repeated fields, and the
// Profile string table with its mandatory "" at index 0.
//
// Only the subset of profile.proto the exporters emit is implemented:
//   Profile  { sample_type=1, sample=2, location=4, function=5,
//              string_table=6, period_type=11, period=12 }
//   ValueType{ type=1, unit=2 }
//   Sample   { location_id=1 (packed), value=2 (packed) }
//   Location { id=1, line=4 }
//   Line     { function_id=1, line=2 }
//   Function { id=1, name=2, system_name=3 }
//
// The encoding primitives (varint, zigzag) are exposed so tests can pin the
// edge values (0, 127, 128, 2^64-1, int64 min/max) independently of any
// profile structure, and so a stdlib-Python reader in CI can round-trip the
// output with no protobuf dependency on that side either.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace djvm::pprof {

/// Appends `v` as a base-128 varint (LEB128, protobuf wire order).
void put_varint(std::vector<std::uint8_t>& out, std::uint64_t v);

/// Reads one varint at `pos` (advanced past it).  Returns false on
/// truncation or a varint longer than 10 bytes.
bool get_varint(std::span<const std::uint8_t> in, std::size_t& pos,
                std::uint64_t& v);

/// ZigZag mapping for signed varints (sint64): 0,-1,1,-2 -> 0,1,2,3.
[[nodiscard]] constexpr std::uint64_t zigzag(std::int64_t v) noexcept {
  return (static_cast<std::uint64_t>(v) << 1) ^
         static_cast<std::uint64_t>(v >> 63);
}
[[nodiscard]] constexpr std::int64_t unzigzag(std::uint64_t v) noexcept {
  return static_cast<std::int64_t>(v >> 1) ^
         -static_cast<std::int64_t>(v & 1);
}

/// Appends a field tag: (field_number << 3) | wire_type.
void put_tag(std::vector<std::uint8_t>& out, std::uint32_t field,
             std::uint32_t wire_type);

/// Varint-typed field (wire type 0).  Protobuf omits default-valued fields;
/// callers skip zeros themselves where that matters.
void put_varint_field(std::vector<std::uint8_t>& out, std::uint32_t field,
                      std::uint64_t v);

/// Length-delimited field (wire type 2) holding raw bytes / an encoded
/// submessage / a UTF-8 string.
void put_bytes_field(std::vector<std::uint8_t>& out, std::uint32_t field,
                     std::span<const std::uint8_t> bytes);
void put_string_field(std::vector<std::uint8_t>& out, std::uint32_t field,
                      std::string_view s);

/// Deduplicating Profile string table: index 0 is always "" (required by
/// profile.proto), repeated interning of the same string returns the same
/// index.
class StringTable {
 public:
  StringTable() { id(""); }

  /// Index of `s`, interning it on first sight.
  std::int64_t id(std::string_view s);

  [[nodiscard]] const std::vector<std::string>& strings() const noexcept {
    return strings_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return strings_.size(); }

 private:
  std::vector<std::string> strings_;
  std::unordered_map<std::string, std::int64_t> index_;
};

/// Incremental Profile builder: declare sample types, intern functions and
/// locations (deduplicated by name), append samples, then encode() the whole
/// message.  Samples shorter than the declared sample-type list are
/// zero-padded so every sample carries one value per type, as the format
/// requires.
class ProfileBuilder {
 public:
  /// Interns a string (exposed for label/unit reuse).
  std::int64_t str(std::string_view s) { return strings_.id(s); }

  /// Declares the next sample value slot; call once per slot before any
  /// sample() call.
  void add_sample_type(std::string_view type, std::string_view unit);

  /// Function id for `name` (interned once per distinct name; ids are 1-based
  /// — 0 means "no function" in the format).
  std::uint64_t function_id(std::string_view name);

  /// Location id wrapping one function (one Line, line number 0); interned
  /// once per function.
  std::uint64_t location_id(std::string_view function_name);

  /// Appends one sample: a root-first location stack (pprof stores leaf
  /// first; this builder reverses on encode) and one value per declared
  /// sample type (missing trailing values read 0).
  void add_sample(std::span<const std::uint64_t> root_first_locations,
                  std::span<const std::int64_t> values);

  [[nodiscard]] std::size_t sample_count() const noexcept {
    return samples_.size();
  }
  [[nodiscard]] std::size_t sample_type_count() const noexcept {
    return sample_types_.size();
  }
  [[nodiscard]] std::size_t string_count() const noexcept {
    return strings_.size();
  }

  /// Serializes the Profile message (uncompressed; pprof auto-detects).
  [[nodiscard]] std::vector<std::uint8_t> encode() const;

 private:
  struct ValueTypeRec {
    std::int64_t type;
    std::int64_t unit;
  };
  struct SampleRec {
    std::vector<std::uint64_t> locations;  ///< root first
    std::vector<std::int64_t> values;
  };

  StringTable strings_;
  std::vector<ValueTypeRec> sample_types_;
  std::vector<std::int64_t> function_names_;  ///< index = function id - 1
  std::vector<std::uint64_t> location_functions_;  ///< index = location id - 1
  std::vector<SampleRec> samples_;
  std::unordered_map<std::string, std::uint64_t> function_index_;
  std::unordered_map<std::uint64_t, std::uint64_t> location_index_;
};

}  // namespace djvm::pprof
