#include "export/exporter.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

#include "export/pprof.hpp"
#include "governor/governor.hpp"

namespace djvm {

namespace {

std::string thread_name(std::size_t t) {
  return "thread:" + std::to_string(t);
}

std::string node_name(std::size_t n) { return "node:" + std::to_string(n); }

/// Influence shares are fractions in [0, 1]; integer sample values need a
/// fixed point, and millionths keep six digits of the share.
std::int64_t to_millionths(double share) {
  return static_cast<std::int64_t>(std::llround(share * 1e6));
}

void json_escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

std::string json_num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

}  // namespace

std::size_t nonzero_pair_cells(const SquareMatrix& tcm) {
  std::size_t cells = 0;
  for (std::size_t i = 0; i < tcm.size(); ++i) {
    for (std::size_t j = i + 1; j < tcm.size(); ++j) {
      if (tcm.at(i, j) != 0.0) ++cells;
    }
  }
  return cells;
}

std::string class_display_name(std::uint32_t id,
                               std::span<const std::string> class_names) {
  if (id < class_names.size() && !class_names[id].empty()) {
    return class_names[id];
  }
  return "class#" + std::to_string(id);
}

std::vector<std::uint8_t> export_pprof(const SnapshotInfo& info,
                                       std::span<const std::string> class_names,
                                       PprofExportStats* stats) {
  pprof::ProfileBuilder b;
  b.add_sample_type("shared-bytes", "bytes");
  b.add_sample_type("sampling-gap", "count");
  b.add_sample_type("influence", "millionths");
  b.add_sample_type("copy-registrations", "count");
  b.add_sample_type("resample-visits", "count");
  PprofExportStats out_stats;

  // Thread-pair samples: the correlation map, one sample per nonzero cell.
  // Exactly two frames each — validators count 2-frame samples to cross
  // check against the snapshot's pair-cell count.
  for (std::size_t i = 0; i < info.tcm.size(); ++i) {
    for (std::size_t j = i + 1; j < info.tcm.size(); ++j) {
      const double w = info.tcm.at(i, j);
      if (w == 0.0) continue;
      const std::uint64_t locs[2] = {b.location_id(thread_name(i)),
                                     b.location_id(thread_name(j))};
      const std::int64_t values[1] = {
          static_cast<std::int64_t>(std::llround(w))};
      b.add_sample(locs, values);
      ++out_stats.pair_samples;
    }
  }

  // Per-class samples: the plan's gaps plus the influence table, one
  // single-frame sample per class entry.
  std::vector<double> influence_of;
  for (const auto& [id, share] : info.influence) {
    if (influence_of.size() <= id) influence_of.resize(id + 1, 0.0);
    influence_of[id] = share;
  }
  for (const SnapshotInfo::ClassGap& g : info.classes) {
    const std::uint64_t locs[1] = {
        b.location_id(class_display_name(g.id, class_names))};
    const double share =
        g.id < influence_of.size() ? influence_of[g.id] : 0.0;
    const std::int64_t values[3] = {0, g.nominal_gap, to_millionths(share)};
    b.add_sample(locs, values);
    ++out_stats.class_samples;
  }

  // Per-node samples: the cached-copy bookkeeping.
  for (std::size_t n = 0; n < info.copy_nodes.size(); ++n) {
    const std::uint64_t locs[1] = {b.location_id(node_name(n))};
    const std::int64_t values[5] = {
        0, 0, 0,
        static_cast<std::int64_t>(info.copy_nodes[n].registrations),
        static_cast<std::int64_t>(info.copy_nodes[n].resample_visits)};
    b.add_sample(locs, values);
    ++out_stats.node_samples;
  }

  if (stats != nullptr) *stats = out_stats;
  return b.encode();
}

std::string export_collapsed(const SnapshotInfo& info,
                             std::span<const std::string> class_names) {
  std::string out;
  const auto line = [&out](const std::string& stack, std::uint64_t w) {
    if (w == 0) return;
    out += stack;
    out += ' ';
    out += std::to_string(w);
    out += '\n';
  };

  // Correlation mass: one two-frame line per nonzero pair cell.
  for (std::size_t i = 0; i < info.tcm.size(); ++i) {
    for (std::size_t j = i + 1; j < info.tcm.size(); ++j) {
      const double w = info.tcm.at(i, j);
      if (w <= 0.0) continue;
      line(thread_name(i) + ";" + thread_name(j),
           static_cast<std::uint64_t>(std::llround(w)));
    }
  }

  // Governor attribution, node -> class -> action: per-node back-off depth
  // (weight = the gap multiplier the shift imposes, 2^shift) ...
  for (std::size_t n = 0; n < info.shift_nodes; ++n) {
    for (std::size_t c = 0; c < info.classes.size(); ++c) {
      const std::uint8_t shift = info.shift_at(n, c);
      if (shift == 0) continue;
      line(node_name(n) + ";" +
               class_display_name(info.classes[c].id, class_names) +
               ";action:backoff",
           std::uint64_t{1} << shift);
    }
  }
  // ... per-node cached-copy bookkeeping ...
  for (std::size_t n = 0; n < info.copy_nodes.size(); ++n) {
    line(node_name(n) + ";action:copy-register",
         info.copy_nodes[n].registrations);
    line(node_name(n) + ";action:resample",
         info.copy_nodes[n].resample_visits);
  }
  // ... and the class influence shares.
  for (const auto& [id, share] : info.influence) {
    line(class_display_name(id, class_names) + ";action:influence",
         static_cast<std::uint64_t>(std::max<std::int64_t>(
             0, to_millionths(share))));
  }
  return out;
}

std::string export_snapshot_json(const SnapshotInfo& info,
                                 std::span<const std::string> class_names) {
  std::string out = "{";
  out += "\"version\":" + std::to_string(info.version);
  out += ",\"mode\":\"";
  out += to_string(static_cast<GovernorMode>(info.mode));
  out += "\",\"state\":\"";
  out += to_string(static_cast<GovernorState>(info.state));
  out += "\",\"per_node\":";
  out += info.per_node ? "true" : "false";
  out += ",\"overhead_budget\":" + json_num(info.overhead_budget);
  out += ",\"node_budget\":" + json_num(info.node_budget);
  out += ",\"distance_threshold\":" + json_num(info.distance_threshold);
  out += ",\"hysteresis\":" + json_num(info.hysteresis);
  out += ",\"phase_spike_factor\":" + json_num(info.phase_spike_factor);
  out += ",\"epochs_seen\":" + std::to_string(info.epochs_seen);
  out += ",\"rearms\":" + std::to_string(info.rearms);

  out += ",\"classes\":[";
  for (std::size_t c = 0; c < info.classes.size(); ++c) {
    const SnapshotInfo::ClassGap& g = info.classes[c];
    if (c != 0) out += ',';
    out += "{\"id\":" + std::to_string(g.id) + ",\"name\":\"";
    json_escape_into(out, class_display_name(g.id, class_names));
    out += "\",\"nominal_gap\":" + std::to_string(g.nominal_gap);
    out += ",\"real_gap\":" + std::to_string(g.real_gap);
    out += ",\"converged_gap\":" + std::to_string(g.converged_gap);
    out += ",\"rated\":";
    out += g.rated ? "true" : "false";
    out += '}';
  }
  out += ']';

  out += ",\"copy_nodes\":[";
  for (std::size_t n = 0; n < info.copy_nodes.size(); ++n) {
    if (n != 0) out += ',';
    out += "{\"registrations\":" +
           std::to_string(info.copy_nodes[n].registrations) +
           ",\"resample_visits\":" +
           std::to_string(info.copy_nodes[n].resample_visits) + "}";
  }
  out += ']';

  out += ",\"influence\":[";
  for (std::size_t i = 0; i < info.influence.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"class\":\"";
    json_escape_into(out,
                     class_display_name(info.influence[i].first, class_names));
    out += "\",\"share\":" + json_num(info.influence[i].second) + "}";
  }
  out += ']';

  // v5 executed-migration history (empty arrays for older snapshots).
  out += ",\"migrations_executed\":" + std::to_string(info.migrations_executed);
  out += ",\"migrations\":[";
  for (std::size_t i = 0; i < info.migrations.size(); ++i) {
    const SnapshotInfo::Migration& m = info.migrations[i];
    if (i != 0) out += ',';
    out += "{\"epoch\":" + std::to_string(m.epoch);
    out += ",\"thread\":" + std::to_string(m.thread);
    out += ",\"from\":" + std::to_string(m.from);
    out += ",\"to\":" + std::to_string(m.to);
    out += ",\"gain_bytes\":" + json_num(m.gain_bytes);
    out += ",\"sim_cost_seconds\":" + json_num(m.sim_cost_seconds);
    out += ",\"prefetched_bytes\":" + std::to_string(m.prefetched_bytes);
    out += '}';
  }
  out += ']';

  double total_shared = 0.0;
  for (std::size_t i = 0; i < info.tcm.size(); ++i) {
    for (std::size_t j = i + 1; j < info.tcm.size(); ++j) {
      total_shared += info.tcm.at(i, j);
    }
  }
  out += ",\"tcm_dim\":" + std::to_string(info.tcm.size());
  out += ",\"pair_cells\":" + std::to_string(nonzero_pair_cells(info.tcm));
  out += ",\"total_shared_bytes\":" + json_num(total_shared);
  out += "}\n";
  return out;
}

std::string collapsed_from_stacks(std::span<const JavaStack> stacks,
                                  std::span<const std::uint64_t> weights) {
  std::string out;
  for (std::size_t t = 0; t < stacks.size(); ++t) {
    const std::uint64_t w = t < weights.size() ? weights[t] : 0;
    if (w == 0) continue;
    out += thread_name(t);
    for (const Frame& f : stacks[t].frames()) {
      out += ";m";
      out += std::to_string(f.method);
    }
    out += ' ';
    out += std::to_string(w);
    out += '\n';
  }
  return out;
}

}  // namespace djvm
