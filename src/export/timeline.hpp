// Per-epoch JSONL metrics timeline.
//
// One JSON object per governed epoch, appended to a flat file through the
// async SnapshotWriter: a week of epochs becomes a greppable, plottable log
// (jq, pandas, grafana-agent tailing) instead of state that died with the
// process.  Schema (stable keys; consumers must ignore unknown keys):
//
//   {"epoch":N, "tenant":T, "state":"sentinel", "action":"none",
//    "overhead":0.018, "offender":2, "offender_overhead":0.031,
//    "node_overhead":[...], "densify_seconds":..., "build_seconds":...,
//    "intervals":N, "entries":N, "rel_distance":0.04|null,
//    "rate_changed":bool, "resampled_objects":N,
//    "retained_objects":N, "retained_readers":N, "dropped_objects":N,
//    "ring":{"published":N, "entries":N, "backpressure":N, "dropped":N},
//    "traffic":{"object-data":B, "oal":B, "control":B, "migration":B},
//    "faults":{"degraded":bool, "lost_nodes":[N,...],
//      "dropped":{per-category msgs}, "retries":{per-category attempts},
//      "backoff_ns":NS},
//    "migration_seconds":..., "migrations":[{"thread":T, "from":N, "to":N,
//      "gain_bytes":B, "score":S, "sim_cost":NS, "prefetched_bytes":B,
//      "homes_migrated":N, "executed":bool}, ...],
//    "lease":null|{"tenant":T, "tier":N, "weight":W, "granted":G,
//      "fair_share":F, "floor":F, "borrowed_epochs":N, "lent_epochs":N},
//    "influence_top":[{"class":"name","share":0.4}, ...]}
//
// A multi-tenant cluster coordinator additionally appends one arbitration
// line per round to its own JSONL log:
//
//   {"epoch":N, "global_budget":G, "granted_total":T, "lenders":N,
//    "borrowers":N, "decision_seconds":S, "cluster_overhead":O,
//    "leases":[{lease object as above}, ...]}
#pragma once

#include <string>

#include "governor/arbiter.hpp"
#include "profiling/correlation_daemon.hpp"
#include "runtime/klass.hpp"

namespace djvm {

/// Renders one epoch as a single JSON line (trailing '\n' included).
/// `top_k` bounds the influence_top array; the registry supplies class
/// names for it.  `tenant` stamps the line (0 for standalone runs — the
/// pre-tenant schema plus one key; consumers ignore unknown keys).
[[nodiscard]] std::string timeline_line(const EpochResult& epoch,
                                        const Governor& governor,
                                        const KlassRegistry& registry,
                                        std::size_t top_k,
                                        TenantId tenant = 0);

/// Renders one arbitration round as a single JSON line (trailing '\n'
/// included); `cluster_overhead` is the shared meter's aggregate rolling
/// fraction after the round.
[[nodiscard]] std::string arbitration_line(const ArbitrationOutcome& round,
                                           double cluster_overhead);

}  // namespace djvm
