// Snapshot -> operator artifact converters.
//
// A snapshot (governor state + converged TCM + per-class gaps, see
// governor/snapshot.hpp) is an opaque host-endian binary; these converters
// turn a parsed `SnapshotInfo` into the three formats fleet tooling already
// speaks, entirely offline — no live governor, no registry, no run:
//
//  * export_pprof      — a pprof `profile.proto` Profile.  The correlation
//                        map becomes weighted thread-pair samples (stack
//                        [thread:i, thread:j], value = shared bytes), the
//                        per-class gap/influence tables and the per-node
//                        copy bookkeeping become single-frame samples in
//                        their own value slots.  `go tool pprof`,
//                        speedscope, Pyroscope et al. read it directly.
//  * export_collapsed  — flamegraph "collapsed stack" lines
//                        (`a;b;c <weight>`), folding governor attribution as
//                        node -> class -> action paths, ready for
//                        flamegraph.pl or speedscope.
//  * export_snapshot_json — the whole SnapshotInfo as one JSON object, for
//                        jq/scripts; carries `pair_cells` so validators can
//                        cross-check the pprof sample count independently.
//
// `collapsed_from_stacks` folds live stackprof JavaStack frames (which carry
// method ids only — the simulated runtime has no method name table) into the
// same collapsed format, for callers that want an execution-shape flamegraph
// next to the correlation one.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "governor/snapshot.hpp"
#include "stack/javastack.hpp"

namespace djvm {

/// What export_pprof emitted (CI cross-checks these against the snapshot).
struct PprofExportStats {
  std::size_t pair_samples = 0;   ///< one per nonzero upper-triangle TCM cell
  std::size_t class_samples = 0;  ///< one per snapshot class entry
  std::size_t node_samples = 0;   ///< one per copy-bookkeeping node row
};

/// Nonzero strict-upper-triangle cells of a symmetric map — the number of
/// thread-pair samples an export of it produces.
[[nodiscard]] std::size_t nonzero_pair_cells(const SquareMatrix& tcm);

/// Display name for a snapshot class id: `class_names[id]` when present and
/// nonempty, else "class#<id>".  Snapshots do not store names; callers with
/// a live registry pass its names, offline callers pass {}.
[[nodiscard]] std::string class_display_name(
    std::uint32_t id, std::span<const std::string> class_names);

/// Serializes `info` as an uncompressed pprof Profile (see file comment).
[[nodiscard]] std::vector<std::uint8_t> export_pprof(
    const SnapshotInfo& info, std::span<const std::string> class_names,
    PprofExportStats* stats = nullptr);

/// Serializes `info` as flamegraph collapsed-stack lines.
[[nodiscard]] std::string export_collapsed(
    const SnapshotInfo& info, std::span<const std::string> class_names);

/// Serializes `info` as one JSON object (trailing newline included).
[[nodiscard]] std::string export_snapshot_json(
    const SnapshotInfo& info, std::span<const std::string> class_names);

/// Folds per-thread stacks into collapsed lines `thread:<t>;m<id>;... <w>`
/// (root-first frame order, weight from `weights`, thread index = span
/// position).  Stacks whose weight is 0 are skipped.
[[nodiscard]] std::string collapsed_from_stacks(
    std::span<const JavaStack> stacks, std::span<const std::uint64_t> weights);

}  // namespace djvm
