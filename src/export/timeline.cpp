#include "export/timeline.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace djvm {

namespace {

std::string num(double v) {
  if (!std::isfinite(v)) return "0";
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.9g", v);
  return buf;
}

void escape_into(std::string& out, std::string_view s) {
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
}

}  // namespace

namespace {
void lease_into(std::string& out, const Governor::TenantLease& l) {
  out += "{\"tenant\":" + std::to_string(l.tenant);
  out += ",\"tier\":" + std::to_string(l.tier);
  out += ",\"weight\":" + num(l.weight);
  out += ",\"granted\":" + num(l.granted_budget);
  out += ",\"fair_share\":" + num(l.fair_share);
  out += ",\"floor\":" + num(l.floor);
  out += ",\"borrowed_epochs\":" + std::to_string(l.borrowed_epochs);
  out += ",\"lent_epochs\":" + std::to_string(l.lent_epochs);
  out += '}';
}
}  // namespace

std::string timeline_line(const EpochResult& epoch, const Governor& governor,
                          const KlassRegistry& registry, std::size_t top_k,
                          TenantId tenant) {
  std::string out = "{";
  out += "\"epoch\":" + std::to_string(epoch.epoch);
  out += ",\"tenant\":" + std::to_string(tenant);
  out += ",\"state\":\"";
  out += to_string(governor.state());
  out += "\",\"action\":\"";
  out += to_string(epoch.action);
  out += "\",\"overhead\":" + num(epoch.overhead_fraction);
  if (epoch.offender.has_value()) {
    out += ",\"offender\":" + std::to_string(*epoch.offender);
    out += ",\"offender_overhead\":" + num(epoch.offender_fraction);
  } else {
    out += ",\"offender\":null,\"offender_overhead\":0";
  }
  out += ",\"node_overhead\":[";
  for (std::size_t n = 0; n < epoch.node_fractions.size(); ++n) {
    if (n != 0) out += ',';
    out += num(epoch.node_fractions[n]);
  }
  out += ']';
  out += ",\"densify_seconds\":" + num(epoch.densify_seconds);
  out += ",\"build_seconds\":" + num(epoch.build_seconds);
  out += ",\"intervals\":" + std::to_string(epoch.intervals);
  out += ",\"entries\":" + std::to_string(epoch.entries);
  out += ",\"rel_distance\":";
  out += epoch.rel_distance.has_value() ? num(*epoch.rel_distance) : "null";
  out += ",\"rate_changed\":";
  out += epoch.rate_changed ? "true" : "false";
  out += ",\"resampled_objects\":" + std::to_string(epoch.resampled_objects);
  out += ",\"retained_objects\":" + std::to_string(epoch.retained_objects);
  out += ",\"retained_readers\":" + std::to_string(epoch.retained_readers);
  out += ",\"dropped_objects\":" + std::to_string(epoch.dropped_objects);

  out += ",\"ring\":{";
  out += "\"published\":" + std::to_string(epoch.ring_published);
  out += ",\"entries\":" + std::to_string(epoch.ring_entries);
  out += ",\"backpressure\":" + std::to_string(epoch.ring_backpressure);
  out += ",\"dropped\":" + std::to_string(epoch.ring_dropped);
  out += '}';

  out += ",\"traffic\":{";
  for (std::size_t c = 0; c < epoch.traffic_bytes.size(); ++c) {
    if (c != 0) out += ',';
    out += '"';
    out += to_string(static_cast<MsgCategory>(c));
    out += "\":" + std::to_string(epoch.traffic_bytes[c]);
  }
  out += '}';

  // Fault-plan telemetry: transport drops/retries per category, backoff wait,
  // and the degraded marker naming nodes whose partials this epoch lost.
  out += ",\"faults\":{\"degraded\":";
  out += epoch.degraded ? "true" : "false";
  out += ",\"lost_nodes\":[";
  for (std::size_t i = 0; i < epoch.lost_nodes.size(); ++i) {
    if (i != 0) out += ',';
    out += std::to_string(epoch.lost_nodes[i]);
  }
  out += "],\"dropped\":{";
  for (std::size_t c = 0; c < epoch.dropped_msgs.size(); ++c) {
    if (c != 0) out += ',';
    out += '"';
    out += to_string(static_cast<MsgCategory>(c));
    out += "\":" + std::to_string(epoch.dropped_msgs[c]);
  }
  out += "},\"retries\":{";
  for (std::size_t c = 0; c < epoch.retries.size(); ++c) {
    if (c != 0) out += ',';
    out += '"';
    out += to_string(static_cast<MsgCategory>(c));
    out += "\":" + std::to_string(epoch.retries[c]);
  }
  out += "},\"backoff_ns\":" + std::to_string(epoch.backoff_ns);
  out += '}';

  // Migration events: the epoch's execution stage, executed and deferred
  // alike (executed=false means planned-but-deferred or dry-run logged).
  out += ",\"migration_seconds\":" + num(epoch.migration_seconds);
  out += ",\"migrations\":[";
  for (std::size_t i = 0; i < epoch.migrations.size(); ++i) {
    const EpochResult::MigrationEvent& m = epoch.migrations[i];
    if (i != 0) out += ',';
    out += "{\"thread\":" + std::to_string(m.thread);
    out += ",\"from\":" + std::to_string(m.from);
    out += ",\"to\":" + std::to_string(m.to);
    out += ",\"gain_bytes\":" + num(m.gain_bytes);
    out += ",\"score\":" + num(m.score);
    out += ",\"sim_cost\":" + std::to_string(m.sim_cost);
    out += ",\"prefetched_bytes\":" + std::to_string(m.prefetched_bytes);
    out += ",\"homes_migrated\":" + std::to_string(m.homes_migrated);
    out += ",\"executed\":";
    out += m.executed ? "true" : "false";
    out += '}';
  }
  out += ']';

  // Budget lease, when a cluster arbiter governs this tenant.
  out += ",\"lease\":";
  if (governor.lease().has_value()) {
    lease_into(out, *governor.lease());
  } else {
    out += "null";
  }

  // Influence top-k: the classes whose correlation mass placement decisions
  // act on most, by the governor's decayed share.
  std::vector<std::pair<double, ClassId>> shares;
  for (const Klass& k : registry.all()) {
    const double s = governor.influence_share(k.id);
    if (s > 0.0) shares.emplace_back(s, k.id);
  }
  std::sort(shares.begin(), shares.end(), [](const auto& a, const auto& b) {
    return a.first > b.first || (a.first == b.first && a.second < b.second);
  });
  if (shares.size() > top_k) shares.resize(top_k);
  out += ",\"influence_top\":[";
  for (std::size_t i = 0; i < shares.size(); ++i) {
    if (i != 0) out += ',';
    out += "{\"class\":\"";
    escape_into(out, registry.at(shares[i].second).name);
    out += "\",\"share\":" + num(shares[i].first) + "}";
  }
  out += "]}\n";
  return out;
}

std::string arbitration_line(const ArbitrationOutcome& round,
                             double cluster_overhead) {
  std::string out = "{";
  out += "\"epoch\":" + std::to_string(round.epoch);
  out += ",\"global_budget\":" + num(round.global_budget);
  out += ",\"granted_total\":" + num(round.granted_total);
  out += ",\"lenders\":" + std::to_string(round.lenders);
  out += ",\"borrowers\":" + std::to_string(round.borrowers);
  out += ",\"decision_seconds\":" + num(round.decision_seconds);
  out += ",\"cluster_overhead\":" + num(cluster_overhead);
  out += ",\"leases\":[";
  for (std::size_t i = 0; i < round.leases.size(); ++i) {
    if (i != 0) out += ',';
    lease_into(out, round.leases[i]);
  }
  out += "]}\n";
  return out;
}

}  // namespace djvm
