#include "cluster/coordinator.hpp"

#include "export/timeline.hpp"

namespace djvm {

ClusterCoordinator::ClusterCoordinator(ArbiterKnobs knobs, OverheadCosts costs,
                                       std::size_t meter_window)
    : arbiter_(knobs), meter_(costs, meter_window) {}

TenantContext ClusterCoordinator::add_tenant(const Config& cfg) {
  slots_.push_back(Slot{std::make_unique<Djvm>(cfg)});
  Djvm& vm = *slots_.back().vm;
  const Governor::TenantLease& seed =
      arbiter_.register_tenant(cfg.tenant);
  vm.governor().adopt_lease(seed);
  return vm.tenant();
}

void ClusterCoordinator::set_arbitration_log(const std::string& path) {
  log_.open(path, std::ios::trunc);
}

ClusterCoordinator::ClusterEpoch ClusterCoordinator::run_epoch() {
  ClusterEpoch out;
  out.tenants.reserve(slots_.size());
  const double bill =
      slots_.empty() ? 0.0 : bill_carry_ / static_cast<double>(slots_.size());
  bill_carry_ = 0.0;
  for (Slot& s : slots_) {
    EpochRequest req;
    req.bill_coordinator(bill);
    EpochResult r = s.vm->run_epoch(req);
    // The shared meter sees the exact sample the tenant's own governor ran
    // on; the tenant id it carries keeps the shared windows namespaced.
    meter_.record(r.sample);
    TenantReport rep;
    rep.tenant = s.vm->config().tenant.id;
    rep.rolling_fraction = s.vm->governor().meter().rolling_fraction();
    rep.degraded = r.degraded;
    arbiter_.report(rep);
    out.tenants.push_back(std::move(r));
  }
  out.arbitration = arbiter_.arbitrate();
  bill_carry_ = out.arbitration.decision_seconds;
  for (const Governor::TenantLease& lease : out.arbitration.leases) {
    for (Slot& s : slots_) {
      if (s.vm->config().tenant.id == lease.tenant) {
        s.vm->governor().adopt_lease(lease);
        break;
      }
    }
  }
  out.cluster_overhead = meter_.rolling_fraction();
  if (log_.is_open()) {
    log_ << arbitration_line(out.arbitration, out.cluster_overhead);
    log_.flush();
  }
  return out;
}

}  // namespace djvm
