// Cluster coordinator: several tenants' DJVMs under one overhead ceiling.
//
// Each tenant is a full Djvm (its own heap, GOS, daemon, governor) built
// from its own Config; the coordinator owns them all, runs their governed
// epochs in lockstep, feeds a *shared* multi-tenant OverheadMeter from each
// epoch's assembled sample (windows namespaced per (tenant, node) — one
// tenant's idle epoch never clobbers another's signal), and lets the
// BudgetArbiter re-divide the global budget between the tenants' governors
// every epoch.  The arbiter's decision time is real coordinator work: it is
// billed into the tenants' next-epoch coordinator buckets, split evenly,
// through EpochRequest::bill_coordinator.  Each round can be appended to an
// arbitration JSONL log (see export/timeline.hpp arbitration_line).
#pragma once

#include <fstream>
#include <memory>
#include <string>
#include <vector>

#include "core/djvm.hpp"
#include "governor/arbiter.hpp"

namespace djvm {

class ClusterCoordinator {
 public:
  explicit ClusterCoordinator(ArbiterKnobs knobs = {}, OverheadCosts costs = {},
                              std::size_t meter_window = 4);

  /// Builds a tenant VM from `cfg`, registers it with the arbiter, and hands
  /// its governor the initial (fair-split) lease.  The tenant id must be
  /// unique within this coordinator.  Returns the tenant's session handle.
  TenantContext add_tenant(const Config& cfg);

  [[nodiscard]] std::size_t tenant_count() const noexcept {
    return slots_.size();
  }
  /// Tenant VM by slot index (add_tenant order).
  [[nodiscard]] Djvm& vm(std::size_t slot) { return *slots_[slot].vm; }
  [[nodiscard]] TenantContext tenant(std::size_t slot) {
    return slots_[slot].vm->tenant();
  }

  [[nodiscard]] BudgetArbiter& arbiter() noexcept { return arbiter_; }
  /// The shared cluster meter (fed per-tenant; its unqualified fractions
  /// aggregate across tenants — the cluster-ceiling view).
  [[nodiscard]] const OverheadMeter& meter() const noexcept { return meter_; }

  /// Starts (truncates) the per-round arbitration JSONL log.
  void set_arbitration_log(const std::string& path);

  /// One cluster round's results: every tenant's epoch, the arbitration that
  /// followed, and the shared meter's aggregate rolling fraction after it.
  struct ClusterEpoch {
    std::vector<EpochResult> tenants;  ///< slot order
    ArbitrationOutcome arbitration;
    double cluster_overhead = 0.0;
  };

  /// Runs one governed epoch per tenant (billing the previous round's
  /// arbitration share), feeds the shared meter and the arbiter's reports,
  /// arbitrates, and pushes the recomputed leases back into the tenants'
  /// governors.  The caller drives each tenant's application work between
  /// rounds.
  ClusterEpoch run_epoch();

 private:
  struct Slot {
    std::unique_ptr<Djvm> vm;
  };

  BudgetArbiter arbiter_;
  OverheadMeter meter_;
  std::vector<Slot> slots_;
  std::ofstream log_;
  /// Last round's arbitration seconds, billed into the next round's epochs.
  double bill_carry_ = 0.0;
};

}  // namespace djvm
