#include "baseline/page_dsm.hpp"

namespace djvm {

void PageCorrelationTracker::on_access(ThreadId thread, ObjectId obj) {
  const ObjectMeta& m = heap_.meta(obj);
  const std::uint64_t first = m.vaddr / page_size_;
  const std::uint64_t last = (m.vaddr + (m.size_bytes ? m.size_bytes - 1 : 0)) / page_size_;
  auto& pages = live_pages_[thread];
  for (std::uint64_t p = first; p <= last; ++p) pages.insert(p);
}

void PageCorrelationTracker::on_interval_close(ThreadId thread) {
  auto it = live_pages_.find(thread);
  if (it == live_pages_.end()) return;
  for (std::uint64_t p : it->second) page_threads_[p].insert(thread);
  it->second.clear();
}

SquareMatrix PageCorrelationTracker::build_tcm() const {
  SquareMatrix tcm(threads_);
  for (const auto& [page, ts] : page_threads_) {
    (void)page;
    std::vector<ThreadId> v(ts.begin(), ts.end());
    for (std::size_t i = 0; i < v.size(); ++i) {
      for (std::size_t j = i + 1; j < v.size(); ++j) {
        if (v[i] < threads_ && v[j] < threads_) {
          tcm.add_symmetric(v[i], v[j], static_cast<double>(page_size_));
        }
      }
    }
  }
  return tcm;
}

void PageCorrelationTracker::reset() {
  live_pages_.clear();
  page_threads_.clear();
}

}  // namespace djvm
