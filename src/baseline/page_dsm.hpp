// Page-grain active correlation tracking — the D-CVM-style baseline.
//
// Page-based DSM systems (Thitikamol & Keleher's active correlation tracking)
// can only observe sharing at page granularity: every object access is
// attributed to the 4 KB page(s) backing the object, and the correlation map
// is built from page-level coincidence.  For fine-grained applications this
// *induces* false sharing — unrelated objects co-located on a page make their
// accessors look correlated — which is exactly the distortion the paper's
// Fig. 1(b) shows and its object-grain technique avoids.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "runtime/heap.hpp"

namespace djvm {

/// Observes the raw access stream and accumulates a page-grain (induced)
/// thread correlation map.  Register it via the facade's access observers.
class PageCorrelationTracker {
 public:
  PageCorrelationTracker(const Heap& heap, std::uint32_t threads,
                         std::uint32_t page_size = 4096)
      : heap_(heap), threads_(threads), page_size_(page_size) {}

  /// Records `thread` touching every page that backs `obj` (at-most-once per
  /// page per interval).
  void on_access(ThreadId thread, ObjectId obj);

  /// Closes `thread`'s interval (its page set is folded into the totals).
  void on_interval_close(ThreadId thread);

  /// Builds the induced TCM: for each page, every thread pair that touched
  /// it in some interval shares the full page size (that is all a page-grain
  /// system can know).
  [[nodiscard]] SquareMatrix build_tcm() const;

  [[nodiscard]] std::uint64_t pages_tracked() const noexcept {
    return page_threads_.size();
  }
  void reset();

 private:
  const Heap& heap_;
  std::uint32_t threads_;
  std::uint32_t page_size_;
  /// Per-thread pages touched in the current interval.
  std::unordered_map<ThreadId, std::unordered_set<std::uint64_t>> live_pages_;
  /// page -> set of threads that ever shared an interval on it.
  std::unordered_map<std::uint64_t, std::unordered_set<ThreadId>> page_threads_;
};

}  // namespace djvm
