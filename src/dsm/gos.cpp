#include "dsm/gos.hpp"

#include <algorithm>
#include <cassert>

#include "profiling/ingest.hpp"
#include "runtime/object.hpp"

namespace djvm {

namespace {
/// Allocation bookkeeping cost.
constexpr SimTime kAllocCost = 60;
/// Per-request fixed bytes of a fetch request / control message payload.
constexpr std::uint64_t kRequestBytes = 32;
}  // namespace

Gos::Gos(Heap& heap, Network& net, SamplingPlan& plan, const Config& cfg)
    : heap_(heap), net_(net), plan_(plan), cfg_(cfg), costs_(cfg.costs),
      nodes_(cfg.nodes), locks_(cfg.nodes), tracking_(cfg.oal_transfer),
      node_stats_(cfg.nodes) {
  last_write_epoch_.reserve(1024);
  // Hand the plan the copy sets so resampling walks (and their cost
  // attribution) follow what each node actually caches.
  plan_.set_copy_view(this);
  refresh_dispatch();
}

Gos::~Gos() { plan_.set_copy_view(nullptr); }

void Gos::refresh_dispatch() {
  std::uint32_t d = 0;
  if (tracking_ != OalTransfer::kDisabled) d |= kDispatchTracking;
  if (footprinting_) d |= kDispatchFootprint;
  if (observe_ && hooks_ != nullptr) d |= kDispatchObserve;
  if (stack_sampling_) d |= kDispatchStack;
  dispatch_ = d;
  for (ThreadState& ts : threads_) ts.dispatch = d;
}

ThreadId Gos::spawn_thread(NodeId node) {
  assert(node < nodes_.size());
  ThreadState ts;
  ts.node = node;
  ts.dispatch = dispatch_;
  threads_.push_back(std::move(ts));
  if (ingest_ != nullptr) {
    ingest_->ensure_lanes(static_cast<std::uint32_t>(threads_.size()));
  }
  return static_cast<ThreadId>(threads_.size() - 1);
}

void Gos::attach_ingest(IngestHub* hub) {
  ingest_ = hub;
  if (ingest_ != nullptr && !threads_.empty()) {
    ingest_->ensure_lanes(static_cast<std::uint32_t>(threads_.size()));
  }
}

void Gos::grow_node(NodeState& ns) const {
  const std::size_t n = heap_.object_count();
  if (ns.state.size() < n) {
    ns.state.resize(n, static_cast<std::uint8_t>(CopyState::kInvalid));
    ns.fetch_epoch.resize(n, 0);
  }
}

ObjectId Gos::alloc(ClassId klass, NodeId home) {
  const ObjectId id = heap_.alloc(klass, home);
  plan_.on_alloc(id);
  NodeState& ns = nodes_[home];
  grow_node(ns);
  ns.state[static_cast<std::size_t>(id)] = static_cast<std::uint8_t>(CopyState::kHome);
  grow_to(last_write_epoch_, heap_.object_count(), 0u);
  return id;
}

ObjectId Gos::alloc_array(ClassId klass, NodeId home, std::uint32_t length) {
  const ObjectId id = heap_.alloc_array(klass, home, length);
  plan_.on_alloc(id);
  NodeState& ns = nodes_[home];
  grow_node(ns);
  ns.state[static_cast<std::size_t>(id)] = static_cast<std::uint8_t>(CopyState::kHome);
  grow_to(last_write_epoch_, heap_.object_count(), 0u);
  return id;
}

ObjectId Gos::alloc_for_thread(ThreadId t, ClassId klass) {
  threads_[t].clock.advance(kAllocCost);
  return alloc(klass, threads_[t].node);
}

ObjectId Gos::alloc_array_for_thread(ThreadId t, ClassId klass, std::uint32_t length) {
  threads_[t].clock.advance(kAllocCost);
  return alloc_array(klass, threads_[t].node, length);
}

bool Gos::node_has_copy(NodeId node, ObjectId obj) const {
  const NodeState& ns = nodes_[node];
  const auto oi = static_cast<std::size_t>(obj);
  if (oi >= ns.state.size()) return heap_.meta(obj).home == node;
  const auto st = static_cast<CopyState>(ns.state[oi]);
  if (st == CopyState::kHome) return true;
  if (st == CopyState::kInvalid) return false;
  const std::uint32_t we =
      oi < last_write_epoch_.size() ? last_write_epoch_[oi] : 0;
  return !(we > ns.fetch_epoch[oi] && we <= ns.view_epoch);
}

void Gos::access(ThreadId t, ObjectId obj, bool is_write) {
  ThreadState& ts = threads_[t];
  ts.clock.advance(costs_.access_fast_path);
  ++stats_.accesses;

  NodeState& ns = nodes_[ts.node];
  const auto oi = static_cast<std::size_t>(obj);
  if (oi >= ns.state.size()) [[unlikely]] {
    grow_node(ns);
    grow_to(last_write_epoch_, heap_.object_count(), 0u);
  }

  // --- consistency check (the inlined 2-bit state test) ---------------------
  const auto st = static_cast<CopyState>(ns.state[oi]);
  bool valid;
  if (st == CopyState::kHome) {
    valid = true;
  } else if (st == CopyState::kInvalid) {
    valid = false;
  } else {
    // Lazy invalidation: stale only if a newer release exists that this node
    // has synchronized past (HLRC write-notice semantics).
    const std::uint32_t we = last_write_epoch_[oi];
    valid = !(we > ns.fetch_epoch[oi] && we <= ns.view_epoch);
  }
  if (!valid) [[unlikely]] {
    object_fault(ts, ns, obj);
  }

  // --- per-object bookkeeping (one record, one cache line) -------------------
  // The merged ObjectBook serves the OAL, footprint, and dirty stamp checks;
  // one [[unlikely]] size check covers all three (the seed's write path grew
  // its stamp array unconditionally on every write).
  const std::uint32_t dispatch = ts.dispatch;
  if ((dispatch & (kDispatchTracking | kDispatchFootprint)) != 0 || is_write) {
    if (oi >= ts.book.size()) [[unlikely]] {
      grow_to(ts.book, heap_.object_count(), ObjectBook{});
    }
    ObjectBook& bk = ts.book[oi];

    // --- correlation tracking (false-invalid overlay) ------------------------
    // The interval stamp gates first: the false-invalid overlay traps the
    // FIRST access to each object per interval into the service routine,
    // which cancels the overlay and logs iff the object is sampled.
    // Re-accesses take a single well-predicted branch.
    if (dispatch & kDispatchTracking) {
      if (bk.oal_stamp != ts.interval_stamp) [[unlikely]] {
        bk.oal_stamp = ts.interval_stamp;
        // The *accessing* node's copy bit decides: a per-(node, class) gap
        // shift changes what that node logs, wherever the object is homed.
        if (plan_.is_sampled(ts.node, obj)) log_access(ts, obj);
      }
    }

    // --- sticky-set footprinting (repeated re-armed tracking) ----------------
    if (dispatch & kDispatchFootprint) {
      if (ts.clock.now() >= ts.fp_next_boundary) [[unlikely]] {
        refresh_footprint_state(ts);
      }
      if (ts.fp_on_phase && plan_.is_sampled(ts.node, obj)) {
        footprint_touch(ts, bk, obj);
      }
    }

    // --- dirty tracking for writes -------------------------------------------
    if (is_write) {
      if (bk.dirty_stamp != ts.release_stamp) {
        bk.dirty_stamp = ts.release_stamp;
        ts.dirty.push_back(obj);
        if (static_cast<CopyState>(ns.state[oi]) == CopyState::kValid) {
          ns.state[oi] = static_cast<std::uint8_t>(CopyState::kDirty);
        }
      }
    }
  }

  // --- raw access observation (baseline / oracle) ----------------------------
  if (dispatch & kDispatchObserve) [[unlikely]] {
    hooks_->on_access(t, obj, is_write);
  }

  // --- stack-sampling timer ---------------------------------------------------
  if (dispatch & kDispatchStack) {
    if (ts.clock.now() >= ts.next_stack_sample) [[unlikely]] {
      ts.next_stack_sample = ts.clock.now() + stack_gap_;
      ++stats_.stack_samples;
      if (hooks_) hooks_->on_stack_sample(t);
    }
  }
}

void Gos::object_fault(ThreadState& ts, NodeState& ns, ObjectId obj) {
  ts.clock.advance(costs_.access_fault_fixed);
  const ObjectMeta& m = heap_.meta(obj);
  const SimTime dt = net_.round_trip(ts.node, m.home, MsgCategory::kObjectData,
                                     kRequestBytes, m.size_bytes + kRequestBytes);
  ts.clock.advance(dt);
  const auto oi = static_cast<std::size_t>(obj);
  ns.state[oi] = static_cast<std::uint8_t>(CopyState::kValid);
  ns.fetch_epoch[oi] = global_epoch_;
  // Fault-in registers the copy's sampled bit under the caching node's
  // effective gap (and counts the registration for the snapshot summary).
  plan_.note_copy_registered(ts.node, obj);
  ++stats_.object_faults;
  stats_.fault_bytes += m.size_bytes;
}

void Gos::log_access(ThreadState& ts, ObjectId obj) {
  ts.clock.advance(kLogServiceCost);
  // Bytes and gap come from the logging node's own copy view, so the HT
  // weight matches the selection probability this node sampled under.
  ts.oal.push_back(OalEntry{obj, heap_.meta(obj).klass,
                            plan_.sample_bytes(ts.node, obj),
                            plan_.gap_of(ts.node, obj)});
  ++stats_.oal_entries;
  ++node_stats_[ts.node].oal_entries;
}

void Gos::refresh_footprint_state(ThreadState& ts) {
  const SimTime now = ts.clock.now();
  ts.fp_tick = static_cast<std::uint32_t>(now / fp_rearm_) + 1;
  ts.fp_on_phase = fp_mode_ == FootprintTimerMode::kNonstop ||
                   ((now / fp_phase_) & 1) == 0;
  const SimTime next_tick = static_cast<SimTime>(ts.fp_tick) * fp_rearm_;
  const SimTime next_phase = (now / fp_phase_ + 1) * fp_phase_;
  ts.fp_next_boundary = std::min(next_tick, next_phase);
}

void Gos::footprint_touch(ThreadState& ts, ObjectBook& bk, ObjectId obj) {
  const std::uint32_t tick = ts.fp_tick;
  if (bk.fp_stamp == tick) return;
  bk.fp_stamp = tick;
  ts.clock.advance(kFootprintServiceCost);
  if (bk.fp_count == 0) ts.fp_objects.push_back(obj);
  ++bk.fp_count;
  ++stats_.footprint_touches;
  ++node_stats_[ts.node].footprint_touches;
}

std::vector<FootprintTouch> Gos::footprint_touches(ThreadId t) const {
  const ThreadState& ts = threads_[t];
  std::vector<FootprintTouch> out;
  out.reserve(ts.fp_objects.size());
  for (ObjectId obj : ts.fp_objects) {
    out.push_back(FootprintTouch{obj, ts.book[static_cast<std::size_t>(obj)].fp_count});
  }
  return out;
}

void Gos::flush_dirty(ThreadId t) {
  ThreadState& ts = threads_[t];
  if (ts.dirty.empty()) {
    ++ts.release_stamp;
    return;
  }
  ++global_epoch_;
  NodeState& ns = nodes_[ts.node];
  grow_node(ns);
  for (ObjectId obj : ts.dirty) {
    const ObjectMeta& m = heap_.meta(obj);
    const auto oi = static_cast<std::size_t>(obj);
    grow_to(last_write_epoch_, heap_.object_count(), 0u);
    last_write_epoch_[oi] = global_epoch_;
    if (m.home != ts.node) {
      // Diff propagation to home (simplified: whole-object diff payload).
      const SimTime dt = net_.send(
          {ts.node, m.home, MsgCategory::kObjectData, m.size_bytes / 2 + kRequestBytes, false});
      ts.clock.advance(dt);
      ++stats_.diffs_sent;
      stats_.diff_bytes += m.size_bytes / 2;
      // Our copy holds the latest content.
      ns.state[oi] = static_cast<std::uint8_t>(CopyState::kValid);
      ns.fetch_epoch[oi] = global_epoch_;
    }
  }
  ts.dirty.clear();
  ++ts.release_stamp;
}

void Gos::close_interval(ThreadId t, NodeId sync_dest) {
  ThreadState& ts = threads_[t];
  if (hooks_) hooks_->on_interval_close(t);
  for (ObjectId obj : ts.fp_objects) {
    ts.book[static_cast<std::size_t>(obj)].fp_count = 0;
  }
  ts.fp_objects.clear();
  if (tracking_ != OalTransfer::kDisabled && !ts.oal.empty()) {
    if (tracking_ == OalTransfer::kSend) {
      const bool piggy = cfg_.piggyback_oals && sync_dest == coordinator_;
      const std::uint64_t wire =
          kIntervalHeaderWireBytes + ts.oal.size() * kOalEntryWireBytes;
      const SimTime dt =
          net_.send({ts.node, coordinator_, MsgCategory::kOal, wire, piggy});
      ts.clock.advance(dt);
      ++stats_.oal_messages;
      stats_.oal_send_ns += dt;
    }
    if (ingest_ != nullptr) {
      // Lock-free hand-off: the OAL goes straight into this thread's lane
      // arena (lane index == thread id), no IntervalRecord materialized —
      // unless the observational record tap is on, which ALSO materializes
      // a record for offline consumers (never fed to the daemon).
      if (record_tap_) {
        IntervalRecord rec;
        rec.thread = t;
        rec.interval = ts.interval_id;
        rec.node = ts.node;
        rec.start_pc = ts.interval_start_pc;
        rec.end_pc = ts.phase_pc;
        rec.entries = ts.oal;
        records_.push_back(std::move(rec));
      }
      ingest_->append(t, t, ts.interval_id, ts.node, ts.interval_start_pc,
                      ts.phase_pc, ts.oal);
      ts.oal.clear();
    } else {
      IntervalRecord rec;
      rec.thread = t;
      rec.interval = ts.interval_id;
      rec.node = ts.node;
      rec.start_pc = ts.interval_start_pc;
      rec.end_pc = ts.phase_pc;
      rec.entries.swap(ts.oal);
      // Keep the working buffer's capacity in the hot path's favour.
      ts.oal.reserve(rec.entries.size());
      records_.push_back(std::move(rec));
    }
  } else {
    ts.oal.clear();
  }
  ts.interval_start_pc = ts.phase_pc;
  ++ts.interval_stamp;  // re-arms at-most-once tracking (false-invalid reset)
  ++ts.interval_id;
  ++stats_.intervals_closed;
}

void Gos::acquire(ThreadId t, LockId lock) {
  ThreadState& ts = threads_[t];
  LockState& ls = locks_.state(lock);
  close_interval(t, ls.home);
  const SimTime dt =
      net_.round_trip(ts.node, ls.home, MsgCategory::kControl, kRequestBytes, kRequestBytes);
  ts.clock.advance(dt);
  // Serialize behind the previous holder.
  ts.clock.align_to(ls.last_release);
  ++ls.acquisitions;
  // Acquire semantics: this thread (and its node's cache) now sees all
  // released writes.
  ts.view_epoch = global_epoch_;
  nodes_[ts.node].view_epoch = global_epoch_;
  ++stats_.lock_acquires;
}

void Gos::release(ThreadId t, LockId lock) {
  ThreadState& ts = threads_[t];
  LockState& ls = locks_.state(lock);
  flush_dirty(t);
  close_interval(t, ls.home);
  const SimTime dt =
      net_.send({ts.node, ls.home, MsgCategory::kControl, kRequestBytes, false});
  ts.clock.advance(dt);
  ls.last_release = std::max(ls.last_release, ts.clock.now());
}

void Gos::barrier_all() {
  std::vector<ThreadId> all(threads_.size());
  for (std::size_t i = 0; i < all.size(); ++i) all[i] = static_cast<ThreadId>(i);
  barrier(all);
}

void Gos::barrier(std::span<const ThreadId> group) {
  // Release phase: every thread flushes its writes and reports arrival to the
  // master (node 0); OALs piggyback on the arrival message when the
  // coordinator lives there.
  const NodeId master = 0;
  SimTime latest = 0;
  for (ThreadId t : group) {
    ThreadState& ts = threads_[t];
    flush_dirty(t);
    close_interval(t, master);
    const SimTime dt =
        net_.send({ts.node, master, MsgCategory::kControl, kRequestBytes, false});
    ts.clock.advance(dt);
    latest = std::max(latest, ts.clock.now());
  }
  // Master broadcasts the go signal; everyone leaves at the same instant
  // (the slowest broadcast leg defines the release time, keeping the BSP
  // execution deterministic).
  SimTime slowest_leg = 0;
  for (ThreadId t : group) {
    ThreadState& ts = threads_[t];
    const SimTime dt =
        net_.send({master, ts.node, MsgCategory::kControl, kRequestBytes, false});
    slowest_leg = std::max(slowest_leg, dt);
  }
  for (ThreadId t : group) {
    ThreadState& ts = threads_[t];
    ts.clock.align_to(latest + slowest_leg);
    ts.view_epoch = global_epoch_;
    nodes_[ts.node].view_epoch = global_epoch_;
  }
  ++stats_.barriers;
}

void Gos::move_thread(ThreadId t, NodeId to) {
  assert(to < nodes_.size());
  ThreadState& ts = threads_[t];
  ts.node = to;
  // The migrant carries its happens-before knowledge: merge it into the
  // destination's view so copies staler than the writes this thread has
  // synchronized with are (lazily) invalidated.  Without this, migrating to
  // a node that sat out recent barriers would read stale data.
  NodeState& dst = nodes_[to];
  dst.view_epoch = std::max(dst.view_epoch, ts.view_epoch);
}

void Gos::prefetch(ThreadId t, std::span<const ObjectId> objs, MsgCategory category) {
  if (objs.empty()) return;
  ThreadState& ts = threads_[t];
  NodeState& ns = nodes_[ts.node];
  grow_node(ns);
  std::uint64_t bytes = 0;
  for (ObjectId obj : objs) {
    const auto oi = static_cast<std::size_t>(obj);
    if (node_has_copy(ts.node, obj)) continue;
    const ObjectMeta& m = heap_.meta(obj);
    bytes += m.size_bytes;
    ns.state[oi] = static_cast<std::uint8_t>(CopyState::kValid);
    ns.fetch_epoch[oi] = global_epoch_;
    plan_.note_copy_registered(ts.node, obj);
    ++stats_.prefetched_objects;
  }
  if (bytes == 0) return;
  stats_.prefetched_bytes += bytes;
  // One aggregated request/reply pair (the point of prefetching: one round
  // trip instead of many).
  const SimTime dt = net_.round_trip(
      ts.node, heap_.meta(objs.front()).home, category,
      kRequestBytes + 8 * objs.size(), bytes + kRequestBytes);
  ts.clock.advance(dt);
}

void Gos::migrate_home(ObjectId obj, NodeId to) {
  ObjectMeta& m = heap_.meta(obj);
  if (m.home == to) return;
  const NodeId from = m.home;
  net_.send({from, to, MsgCategory::kObjectData,
             m.size_bytes + kRequestBytes, false});
  NodeState& dst = nodes_[to];
  NodeState& src = nodes_[from];
  grow_node(dst);
  grow_node(src);
  const auto oi = static_cast<std::size_t>(obj);
  dst.state[oi] = static_cast<std::uint8_t>(CopyState::kHome);
  dst.fetch_epoch[oi] = global_epoch_;
  src.state[oi] = static_cast<std::uint8_t>(CopyState::kValid);
  src.fetch_epoch[oi] = global_epoch_;
  heap_.set_home(obj, to);
  // Re-key the object's sampling state under the new home right away (the
  // old home's gap shift must not linger until the next full resample) and
  // re-register the old home's retained payload as an ordinary cached copy.
  plan_.on_home_migrated(obj, from, to);
  ++stats_.home_migrations;
}

std::size_t Gos::migrate_homes(std::span<const ObjectId> objs, NodeId to) {
  if (objs.empty()) return 0;
  NodeState& dst = nodes_[to];
  grow_node(dst);
  // Payload is accumulated per source node so each source ships one
  // aggregated message (the batched analog of prefetch); the per-object
  // state flips and sampling re-keys are identical to migrate_home.
  std::vector<std::uint64_t> bytes_from(nodes_.size(), 0);
  std::size_t moved = 0;
  for (ObjectId obj : objs) {
    const ObjectMeta& m = heap_.meta(obj);
    if (m.home == to) continue;  // also skips duplicates already moved
    const NodeId from = m.home;
    NodeState& src = nodes_[from];
    grow_node(src);
    const auto oi = static_cast<std::size_t>(obj);
    bytes_from[from] += m.size_bytes;
    dst.state[oi] = static_cast<std::uint8_t>(CopyState::kHome);
    dst.fetch_epoch[oi] = global_epoch_;
    src.state[oi] = static_cast<std::uint8_t>(CopyState::kValid);
    src.fetch_epoch[oi] = global_epoch_;
    heap_.set_home(obj, to);
    plan_.on_home_migrated(obj, from, to);
    ++stats_.home_migrations;
    ++moved;
  }
  for (std::size_t from = 0; from < bytes_from.size(); ++from) {
    if (bytes_from[from] == 0) continue;
    net_.send({static_cast<NodeId>(from), to, MsgCategory::kObjectData,
               bytes_from[from] + kRequestBytes, false});
  }
  return moved;
}

void Gos::enable_stack_sampling(SimTime gap) {
  stack_sampling_ = true;
  stack_gap_ = std::max<SimTime>(1, gap);
  for (ThreadState& ts : threads_) {
    ts.next_stack_sample = ts.clock.now() + stack_gap_;
  }
  refresh_dispatch();
}

void Gos::disable_stack_sampling() {
  stack_sampling_ = false;
  refresh_dispatch();
}

void Gos::enable_footprinting(FootprintTimerMode mode, SimTime phase, SimTime rearm) {
  footprinting_ = true;
  fp_mode_ = mode;
  fp_phase_ = std::max<SimTime>(1, phase);
  fp_rearm_ = std::max<SimTime>(1, rearm);
  for (ThreadState& ts : threads_) {
    ts.fp_next_boundary = 0;  // force a refresh on the next access
  }
  refresh_dispatch();
}

void Gos::disable_footprinting() {
  footprinting_ = false;
  refresh_dispatch();
}

std::vector<IntervalRecord> Gos::drain_records() {
  std::vector<IntervalRecord> out;
  out.swap(records_);
  return out;
}

}  // namespace djvm
