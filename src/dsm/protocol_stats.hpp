// Counters describing GOS protocol activity; benches read deltas of these.
#pragma once

#include <cstdint>

namespace djvm {

struct ProtocolStats {
  // consistency protocol
  std::uint64_t accesses = 0;          ///< read/write calls (fast + slow path)
  std::uint64_t object_faults = 0;     ///< remote fetches from home
  std::uint64_t fault_bytes = 0;       ///< payload bytes faulted in
  std::uint64_t diffs_sent = 0;        ///< dirty objects flushed at release
  std::uint64_t diff_bytes = 0;
  std::uint64_t lock_acquires = 0;
  std::uint64_t barriers = 0;
  std::uint64_t intervals_closed = 0;
  std::uint64_t home_migrations = 0;
  std::uint64_t prefetched_objects = 0;
  std::uint64_t prefetched_bytes = 0;

  // profiling activity
  std::uint64_t oal_entries = 0;       ///< access-log events (O1 cost driver)
  std::uint64_t oal_messages = 0;      ///< interval records shipped
  /// Simulated nanoseconds Network::send actually charged to thread clocks
  /// for shipping OALs (includes latency/piggyback/local-delivery effects a
  /// flat bytes-per-second model misses; the governor's pump hook uses it).
  std::uint64_t oal_send_ns = 0;
  std::uint64_t footprint_touches = 0; ///< repeated-tracking service entries
  std::uint64_t stack_samples = 0;     ///< stack sampler invocations

  void reset() { *this = ProtocolStats{}; }
};

/// Per-worker-node slice of the profiling counters above.  The governor's
/// pump hook reads deltas of these to assemble per-node overhead samples, so
/// a single hot node blowing its local budget stays visible even when the
/// cluster-wide aggregate looks fine.
struct NodeProfilingStats {
  std::uint64_t oal_entries = 0;       ///< access-log events on this node
  std::uint64_t footprint_touches = 0; ///< repeated-tracking entries on this node

  void reset() { *this = NodeProfilingStats{}; }
};

}  // namespace djvm
