// Distributed lock bookkeeping for the GOS.
//
// Locks are homed round-robin across nodes (a common DSM design); acquiring
// a lock costs a control round trip to its home and serializes behind the
// previous holder's release time in simulated time.
#pragma once

#include <cstdint>
#include <vector>

#include "common/sim_clock.hpp"
#include "common/types.hpp"

namespace djvm {

/// State of one distributed lock.
struct LockState {
  NodeId home = 0;
  SimTime last_release = 0;  ///< simulated instant of the latest release
  std::uint64_t acquisitions = 0;
};

/// Table of distributed locks, created on first use.
class LockTable {
 public:
  explicit LockTable(std::uint32_t nodes) : nodes_(nodes) {}

  /// Lock home assignment: round-robin by id.
  [[nodiscard]] LockState& state(LockId id) {
    if (id >= locks_.size()) {
      const std::size_t old = locks_.size();
      locks_.resize(id + 1);
      for (std::size_t i = old; i < locks_.size(); ++i) {
        locks_[i].home = static_cast<NodeId>(i % nodes_);
      }
    }
    return locks_[id];
  }

  [[nodiscard]] std::size_t count() const noexcept { return locks_.size(); }

 private:
  std::uint32_t nodes_;
  std::vector<LockState> locks_;
};

}  // namespace djvm
