// Global Object Space: the home-based lazy-release-consistency (HLRC) object
// sharing layer of the distributed JVM (paper Section II.A, Fig. 2).
//
// Every shared object has a *home node* (its creator).  Other nodes hold
// cache copies, fetched on access fault and lazily invalidated: a copy
// becomes stale only when (a) some thread released a newer version and
// (b) the caching node has synchronized (acquire/barrier) past that release.
// Writes are flushed home as diffs at release time.
//
// The profiling subsystems hang off this class:
//  * correlation tracking — the false-invalid overlay forces the first access
//    to each sampled object per interval through the service routine, which
//    appends an OAL entry (at-most-once logging);
//  * sticky-set footprinting — a timer re-arms tracking on sampled objects
//    every `footprint_rearm`, recording repeated in-interval touches;
//  * stack sampling — a per-thread simulated-time timer fires the sampler.
#pragma once

#include <cstdint>
#include <functional>
#include <span>
#include <vector>

#include "common/config.hpp"
#include "common/sim_clock.hpp"
#include "common/types.hpp"
#include "dsm/locks.hpp"
#include "dsm/protocol_stats.hpp"
#include "net/network.hpp"
#include "profiling/oal.hpp"
#include "profiling/sampling.hpp"
#include "runtime/heap.hpp"

namespace djvm {

class IngestHub;

/// Simulated cost of the GOS service routine handling a correlation-fault
/// (log + cancel false-invalid), with no network involved.  Public so the
/// governor's pump hook can convert `ProtocolStats::oal_entries` deltas
/// back into the CPU time the GOS charged for them.
inline constexpr SimTime kLogServiceCost = 120;
/// Simulated cost of a footprinting re-arm touch (service entry only).
inline constexpr SimTime kFootprintServiceCost = 80;

/// Repeated-tracking observation for one object within one interval: how
/// many distinct re-arm ticks (ticks advance every Config::footprint_rearm
/// of simulated time) the thread touched it at.  Objects touched at >= 2
/// ticks are sticky candidates (Fig. 4).
struct FootprintTouch {
  ObjectId obj = kInvalidObject;
  std::uint32_t ticks = 0;
};

/// The Global Object Space.  Implements CopySetView so the sampling plan's
/// resampling walks cover exactly the copies each node caches (the paper's
/// locally-paid resampling cost) instead of the objects it homes.
class Gos : public CopySetView {
 public:
  /// Observer interface for the subsystems layered on the GOS.  Callbacks
  /// fire outside the hot path (timer crossings, interval boundaries) except
  /// `on_access`, which fires per access only when observation is enabled.
  class Hooks {
   public:
    virtual ~Hooks() = default;
    /// Stack-sampling timer crossed for `thread`.
    virtual void on_stack_sample(ThreadId thread) { (void)thread; }
    /// `thread` is about to close its current interval (footprint touches
    /// for the interval are still readable at this point).
    virtual void on_interval_close(ThreadId thread) { (void)thread; }
    /// Raw access trace (enabled via set_observe_accesses; used by the
    /// page-based baseline and by oracle recorders in benches).
    virtual void on_access(ThreadId thread, ObjectId obj, bool write) {
      (void)thread;
      (void)obj;
      (void)write;
    }
  };

  Gos(Heap& heap, Network& net, SamplingPlan& plan, const Config& cfg);
  ~Gos() override;

  // --- threads --------------------------------------------------------------
  ThreadId spawn_thread(NodeId node);
  [[nodiscard]] std::uint32_t thread_count() const noexcept {
    return static_cast<std::uint32_t>(threads_.size());
  }
  [[nodiscard]] NodeId thread_node(ThreadId t) const { return threads_[t].node; }
  [[nodiscard]] SimClock& clock(ThreadId t) { return threads_[t].clock; }
  [[nodiscard]] IntervalId interval_of(ThreadId t) const { return threads_[t].interval_id; }
  /// Labels the running phase (the paper's interval context start/end PC).
  void set_phase(ThreadId t, std::uint32_t pc) { threads_[t].phase_pc = pc; }

  // --- allocation (via GOS so sampling tags stay fresh) -----------------------
  ObjectId alloc(ClassId klass, NodeId home);
  ObjectId alloc_array(ClassId klass, NodeId home, std::uint32_t length);
  ObjectId alloc_for_thread(ThreadId t, ClassId klass);
  ObjectId alloc_array_for_thread(ThreadId t, ClassId klass, std::uint32_t length);

  // --- the access hot path ---------------------------------------------------
  void read(ThreadId t, ObjectId obj) { access(t, obj, false); }
  void write(ThreadId t, ObjectId obj) { access(t, obj, true); }

  // --- synchronisation -------------------------------------------------------
  void acquire(ThreadId t, LockId lock);
  void release(ThreadId t, LockId lock);
  /// Barrier across every spawned thread.
  void barrier_all();
  /// Barrier across a subset (all threads of a workload phase).
  void barrier(std::span<const ThreadId> group);

  // --- migration & locality mechanisms ---------------------------------------
  /// Reassigns the thread's node.  Its current interval continues (the
  /// at-most-once log survives migration, as in Fig. 4's analysis).
  void move_thread(ThreadId t, NodeId to);
  /// Bulk-fetches `objs` into `t`'s node cache (one aggregated message).
  void prefetch(ThreadId t, std::span<const ObjectId> objs,
                MsgCategory category = MsgCategory::kObjectData);
  /// Moves an object's home to `to`, transferring its payload.
  void migrate_home(ObjectId obj, NodeId to);
  /// Batched home migration: moves every object in `objs` not already homed
  /// at `to`, shipping one aggregated payload per source node instead of a
  /// message per object (the follow-the-thread path of the execution stage).
  /// Sampling state is re-keyed per object exactly as migrate_home does.
  /// Returns the number of homes actually moved.
  std::size_t migrate_homes(std::span<const ObjectId> objs, NodeId to);

  // --- profiling configuration ------------------------------------------------
  // Each setter refreshes the per-thread dispatch mask, so the access hot
  // path tests one precomputed word instead of cascading over the tracking /
  // footprinting / observe / stack-sampling flags on every access.
  void set_tracking(OalTransfer mode) {
    tracking_ = mode;
    refresh_dispatch();
  }
  [[nodiscard]] OalTransfer tracking() const noexcept { return tracking_; }
  void set_coordinator(NodeId n) { coordinator_ = n; }
  [[nodiscard]] NodeId coordinator() const noexcept { return coordinator_; }
  void set_hooks(Hooks* hooks) {
    hooks_ = hooks;
    refresh_dispatch();
  }
  void enable_stack_sampling(SimTime gap);
  void disable_stack_sampling();
  void enable_footprinting(FootprintTimerMode mode, SimTime phase, SimTime rearm);
  void disable_footprinting();
  void set_observe_accesses(bool on) {
    observe_ = on;
    refresh_dispatch();
  }

  /// Routes interval OALs through per-thread lock-free ingest lanes instead
  /// of materializing IntervalRecords (see profiling/ingest.hpp): each
  /// interval close appends the thread's OAL straight into its lane's open
  /// arena.  Wire accounting (kSend shipping, piggybacking) is unchanged —
  /// only the hand-off representation differs.  Lanes are sized for the
  /// already-spawned threads immediately and grown on every later spawn.
  /// Pass nullptr to detach (subsequent closes build records again).
  void attach_ingest(IngestHub* hub);
  [[nodiscard]] IngestHub* ingest() const noexcept { return ingest_; }

  /// Observational record tap: with a hub attached, each interval close
  /// ALSO materializes an IntervalRecord into the drain_records() stream
  /// (a copy of what went into the lane arena).  For offline consumers —
  /// ablation benches, reducer comparisons — that need per-record views the
  /// arena transport no longer materializes; the tapped records are never
  /// fed to the daemon.  Off by default so nothing accumulates.
  void set_record_tap(bool on) noexcept { record_tap_ = on; }
  [[nodiscard]] bool record_tap() const noexcept { return record_tap_; }

  // --- profiling outputs -------------------------------------------------------
  /// Interval records delivered to the coordinator so far (moves them out).
  std::vector<IntervalRecord> drain_records();
  [[nodiscard]] std::size_t pending_records() const noexcept { return records_.size(); }
  /// Per-object distinct-tick counts for `t`'s current interval (built on
  /// demand from the internal counters).
  [[nodiscard]] std::vector<FootprintTouch> footprint_touches(ThreadId t) const;

  [[nodiscard]] const ProtocolStats& stats() const noexcept { return stats_; }
  /// Profiling activity attributed to one worker node (the node a thread ran
  /// on when it paid the cost; threads that migrate charge their new node).
  [[nodiscard]] const NodeProfilingStats& node_stats(NodeId node) const {
    return node_stats_[node];
  }
  void reset_stats() {
    stats_.reset();
    for (NodeProfilingStats& ns : node_stats_) ns.reset();
  }

  [[nodiscard]] Heap& heap() noexcept { return heap_; }
  [[nodiscard]] Network& net() noexcept { return net_; }
  [[nodiscard]] SamplingPlan& plan() noexcept { return plan_; }
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }

  // --- CopySetView (the sampling plan's window into the copy sets) -----------
  /// True when `node` holds a valid (or home) copy of `obj` right now.
  [[nodiscard]] bool node_has_copy(NodeId node, ObjectId obj) const override;
  [[nodiscard]] std::uint32_t copy_node_count() const override {
    return static_cast<std::uint32_t>(nodes_.size());
  }

 private:
  struct NodeState {
    std::vector<std::uint8_t> state;        ///< CopyState per object
    std::vector<std::uint32_t> fetch_epoch; ///< release epoch of cached copy
    std::uint32_t view_epoch = 0;           ///< last sync'ed global epoch
  };

  /// Per-(thread, object) profiling bookkeeping, merged into one record so a
  /// single cache line serves every per-access stamp check (OAL at-most-once,
  /// dirty tracking, footprint re-arm) — the seed kept four parallel arrays
  /// and touched up to four cache lines per access.
  struct ObjectBook {
    std::uint32_t oal_stamp = 0;   ///< interval epoch of the last OAL log
    std::uint32_t dirty_stamp = 0; ///< release epoch of the last dirty mark
    std::uint32_t fp_stamp = 0;    ///< last footprint re-arm tick tag
    std::uint32_t fp_count = 0;    ///< distinct footprint ticks this interval
  };

  /// Per-thread dispatch mask bits: which per-access profiling branches are
  /// live.  Precomputed on every configuration change so the hot path reads
  /// one word off the ThreadState instead of the flag cascade.
  enum : std::uint32_t {
    kDispatchTracking = 1u << 0,
    kDispatchFootprint = 1u << 1,
    kDispatchObserve = 1u << 2,
    kDispatchStack = 1u << 3,
  };

  struct ThreadState {
    NodeId node = 0;
    SimClock clock;
    /// Latest global release epoch this thread has synchronized past; when
    /// the thread migrates, this is merged into the destination node's view
    /// so the migrant cannot read copies staler than its happens-before
    /// knowledge (a node left idle across barriers keeps an old view).
    std::uint32_t view_epoch = 0;
    IntervalId interval_id = 0;
    std::uint32_t interval_stamp = 1;  ///< at-most-once epoch for OAL logging
    std::uint32_t dispatch = 0;        ///< precomputed per-access branch mask
    std::uint32_t phase_pc = 0;
    std::uint32_t interval_start_pc = 0;
    std::vector<OalEntry> oal;
    std::vector<ObjectBook> book;           ///< merged per-object stamp records
    std::vector<ObjectId> dirty;            ///< written since last release
    std::uint32_t release_stamp = 1;
    // footprinting
    std::vector<ObjectId> fp_objects;       ///< objects touched this interval
    std::uint32_t fp_tick = 0;              ///< cached current re-arm tick
    bool fp_on_phase = true;                ///< cached on/off phase flag
    SimTime fp_next_boundary = 0;           ///< when tick/phase must be recomputed
    // stack sampling
    SimTime next_stack_sample = 0;
  };

  void access(ThreadId t, ObjectId obj, bool is_write);
  void object_fault(ThreadState& ts, NodeState& ns, ObjectId obj);
  void log_access(ThreadState& ts, ObjectId obj);
  void footprint_touch(ThreadState& ts, ObjectBook& bk, ObjectId obj);
  void refresh_footprint_state(ThreadState& ts);
  void refresh_dispatch();
  void flush_dirty(ThreadId t);
  void close_interval(ThreadId t, NodeId sync_dest);
  void grow_node(NodeState& ns) const;
  template <typename T>
  static void grow_to(std::vector<T>& v, std::size_t n, T fill) {
    if (v.size() < n) v.resize(n, fill);
  }

  Heap& heap_;
  Network& net_;
  SamplingPlan& plan_;
  Config cfg_;
  SimCosts costs_;

  std::vector<NodeState> nodes_;
  std::vector<ThreadState> threads_;
  LockTable locks_;
  std::uint32_t global_epoch_ = 1;
  std::vector<std::uint32_t> last_write_epoch_;

  OalTransfer tracking_ = OalTransfer::kDisabled;
  NodeId coordinator_ = 0;
  IngestHub* ingest_ = nullptr;
  bool record_tap_ = false;
  Hooks* hooks_ = nullptr;
  bool observe_ = false;
  /// Mask inherited by freshly spawned threads (refresh_dispatch keeps the
  /// live threads' copies in sync).
  std::uint32_t dispatch_ = 0;

  // stack sampling timer
  bool stack_sampling_ = false;
  SimTime stack_gap_ = 0;

  // footprinting timer
  bool footprinting_ = false;
  FootprintTimerMode fp_mode_ = FootprintTimerMode::kNonstop;
  SimTime fp_phase_ = 1;
  SimTime fp_rearm_ = 1;

  std::vector<IntervalRecord> records_;
  ProtocolStats stats_;
  std::vector<NodeProfilingStats> node_stats_;  ///< indexed by NodeId
};

}  // namespace djvm
