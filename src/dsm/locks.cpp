#include "dsm/locks.hpp"

// LockTable is header-only today; this translation unit anchors the module.

namespace djvm {}  // namespace djvm
