// Sticky-set resolution (paper Section III.A.3).
//
// Invoked lazily at thread-migration time: starting from the stack-invariant
// references (topmost first), trace the object graph selecting prefetch
// candidates until the per-class estimated footprint is met.  Sampled objects
// act as *landmarks*: they are scattered uniformly over the true sticky set,
// so a traversal direction that has not met a landmark for t x gap objects of
// a class is probably outside the set and gets pruned (t > 1 is a tolerance
// for imperfect sampling uniformity).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "profiling/sampling.hpp"
#include "runtime/heap.hpp"
#include "sticky/footprint.hpp"

namespace djvm {

/// Statistics of one resolution run (tests assert pruning behaviour).
struct ResolutionStats {
  std::size_t objects_visited = 0;
  std::size_t landmarks_met = 0;
  std::size_t paths_pruned = 0;
  std::size_t roots_used = 0;
};

/// Output of sticky-set resolution: the prefetch candidate set.
struct ResolutionResult {
  std::vector<ObjectId> prefetch;
  std::uint64_t bytes = 0;
  ResolutionStats stats;
};

/// Resolves the sticky set to prefetch for a migrating thread.
///
/// `roots`   — stack-invariant references, topmost first;
/// `budget`  — per-class footprint estimate from FootprintTracker;
/// `tolerance` — the paper's `t` parameter (> 1).
[[nodiscard]] ResolutionResult resolve_sticky_set(const Heap& heap,
                                                  const SamplingPlan& plan,
                                                  std::span<const ObjectId> roots,
                                                  const ClassFootprint& budget,
                                                  double tolerance);

}  // namespace djvm
