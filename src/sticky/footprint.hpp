// Sticky-set footprinting (paper Section III.A.1).
//
// The *sticky set* of a would-be migrant thread is the set of objects it
// accessed before the migration point and will access again after it within
// the same HLRC interval — exactly those cause post-migration remote faults.
// Footprinting estimates the set's size and per-class composition: repeated
// (re-armed) object sampling within an interval records which sampled objects
// a thread touches at multiple re-arm ticks; their Horvitz-Thompson-scaled
// bytes, grouped by class, form the *sticky-set footprint* that the load
// balancer weighs against migration gains.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/types.hpp"
#include "dsm/gos.hpp"
#include "profiling/sampling.hpp"
#include "runtime/heap.hpp"

namespace djvm {

/// Per-class byte composition of a sticky set estimate.
struct ClassFootprint {
  std::unordered_map<ClassId, double> bytes;

  [[nodiscard]] double total() const noexcept {
    double s = 0.0;
    for (const auto& [c, b] : bytes) s += b;
    return s;
  }
  [[nodiscard]] double of(ClassId c) const noexcept {
    auto it = bytes.find(c);
    return it == bytes.end() ? 0.0 : it->second;
  }
};

/// Aggregates footprint touches per thread across intervals.
class FootprintTracker {
 public:
  FootprintTracker(const Heap& heap, const SamplingPlan& plan)
      : heap_(heap), plan_(plan) {}

  /// Consumes the touches of one closing interval for `t`.  An object is a
  /// sticky candidate when it was touched at >= 2 distinct re-arm ticks
  /// (accessed repeatedly through the interval, Fig. 4's criterion).
  void on_interval_close(ThreadId t, std::span<const FootprintTouch> touches);

  /// Average per-class footprint over all closed intervals of `t` that
  /// produced sticky candidates.
  [[nodiscard]] ClassFootprint footprint(ThreadId t) const;

  /// Sticky candidates seen in the most recent closed interval of `t`.
  [[nodiscard]] const std::vector<ObjectId>& last_sticky(ThreadId t) const;

  /// Intervals aggregated for `t`.
  [[nodiscard]] std::size_t intervals(ThreadId t) const;

  void reset();

 private:
  struct PerThread {
    std::unordered_map<ClassId, double> sum_bytes;
    std::size_t intervals = 0;
    std::vector<ObjectId> last_sticky;
  };

  const Heap& heap_;
  const SamplingPlan& plan_;
  mutable std::vector<PerThread> threads_;
  void ensure(ThreadId t) const;
};

}  // namespace djvm
