#include "sticky/resolution.hpp"

#include <deque>
#include <unordered_map>

namespace djvm {

ResolutionResult resolve_sticky_set(const Heap& heap, const SamplingPlan& plan,
                                    std::span<const ObjectId> roots,
                                    const ClassFootprint& budget,
                                    double tolerance) {
  ResolutionResult out;
  const double budget_total = budget.total();
  if (budget_total <= 0.0 || roots.empty()) return out;

  std::vector<std::uint8_t> visited(heap.object_count(), 0);
  std::unordered_map<ClassId, double> added;
  std::unordered_map<ClassId, double> since_landmark;
  double added_total = 0.0;

  auto class_gap = [&](ClassId c) {
    return heap.registry().at(c).sampling.real_gap;
  };

  // Process roots in order (topmost stack-invariants first); each root seeds
  // a BFS wave.  If one root's wave cannot find enough objects, the next
  // root continues the search.
  for (ObjectId root : roots) {
    if (added_total >= budget_total) break;
    if (root >= heap.object_count()) continue;
    if (visited[static_cast<std::size_t>(root)]) continue;
    ++out.stats.roots_used;

    std::deque<ObjectId> frontier;
    frontier.push_back(root);
    visited[static_cast<std::size_t>(root)] = 1;

    while (!frontier.empty() && added_total < budget_total) {
      const ObjectId obj = frontier.front();
      frontier.pop_front();
      ++out.stats.objects_visited;

      const ObjectMeta& m = heap.meta(obj);
      const ClassId c = m.klass;
      const double class_budget = budget.of(c);

      // Landmark accounting: sampled objects are uniformly scattered over
      // the true sticky set; going too long without one means we are tracing
      // in a wrong direction.
      bool prune = false;
      if (plan.is_sampled(obj)) {
        since_landmark[c] = 0.0;
        ++out.stats.landmarks_met;
      } else {
        const double limit = tolerance * static_cast<double>(class_gap(c));
        if ((since_landmark[c] += 1.0) > limit) {
          prune = true;
          ++out.stats.paths_pruned;
        }
      }

      // Select the object if its class still has budget (resolution is
      // per-class: "prefetch each type of sticky objects until the per-class
      // estimated footprint is hit").  Classes outside the footprint are
      // traversed through but not prefetched.
      if (class_budget > 0.0 && added[c] < class_budget) {
        out.prefetch.push_back(obj);
        added[c] += static_cast<double>(m.size_bytes);
        added_total += static_cast<double>(m.size_bytes);
        out.bytes += m.size_bytes;
      }

      if (prune) continue;  // stop expanding this direction
      for (ObjectId next : m.refs) {
        if (next == kInvalidObject || next >= heap.object_count()) continue;
        if (!visited[static_cast<std::size_t>(next)]) {
          visited[static_cast<std::size_t>(next)] = 1;
          frontier.push_back(next);
        }
      }
    }
  }
  return out;
}

}  // namespace djvm
