#include "sticky/footprint.hpp"

#include <algorithm>

namespace djvm {

void FootprintTracker::ensure(ThreadId t) const {
  if (threads_.size() <= t) threads_.resize(static_cast<std::size_t>(t) + 1);
}

void FootprintTracker::on_interval_close(ThreadId t,
                                         std::span<const FootprintTouch> touches) {
  ensure(t);
  PerThread& pt = threads_[t];
  if (touches.empty()) return;

  std::vector<ObjectId> sticky;
  std::unordered_map<ClassId, double> interval_bytes;
  for (const FootprintTouch& touch : touches) {
    // Touched at fewer than 2 distinct re-arm ticks: accessed once, will not
    // re-fault after migration (Fig. 4's criterion).
    if (touch.ticks < 2) continue;
    sticky.push_back(touch.obj);
    const ObjectMeta& m = heap_.meta(touch.obj);
    interval_bytes[m.klass] +=
        static_cast<double>(plan_.estimated_full_bytes(touch.obj));
  }
  if (sticky.empty()) return;

  std::sort(sticky.begin(), sticky.end());
  pt.last_sticky = std::move(sticky);
  for (const auto& [c, b] : interval_bytes) pt.sum_bytes[c] += b;
  ++pt.intervals;
}

ClassFootprint FootprintTracker::footprint(ThreadId t) const {
  ensure(t);
  const PerThread& pt = threads_[t];
  ClassFootprint fp;
  if (pt.intervals == 0) return fp;
  for (const auto& [c, b] : pt.sum_bytes) {
    fp.bytes[c] = b / static_cast<double>(pt.intervals);
  }
  return fp;
}

const std::vector<ObjectId>& FootprintTracker::last_sticky(ThreadId t) const {
  ensure(t);
  return threads_[t].last_sticky;
}

std::size_t FootprintTracker::intervals(ThreadId t) const {
  ensure(t);
  return threads_[t].intervals;
}

void FootprintTracker::reset() { threads_.clear(); }

}  // namespace djvm
