// Adaptive stack sampling (paper Section III.B, Fig. 7/8).
//
// Periodic snapshots of a thread's Java frames discover *stack-invariant
// references*: slots whose object reference persists across samples.  Those
// are the likely entry points of the thread's sticky set (a linked list's
// head, a tree's root...).  The four optimizations of the paper are all
// implemented:
//   1. timer-based phases       — the caller (GOS timer) decides when to fire;
//   2. two-phase scanning       — top-down to the first visited frame, then
//                                 bottom-up raw-capturing unvisited frames;
//   3. lazy extraction          — first visit stores a raw slot image; slot
//                                 content is extracted only on second visit;
//   4. compare-by-probing       — the shrinking old sample probes the new
//                                 frame, so frequent comparisons get cheaper.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "runtime/heap.hpp"
#include "stack/javastack.hpp"

namespace djvm {

/// Work counters for one `sample()` call; the facade converts these into
/// simulated time and tests assert on them (e.g. lazy mode must extract far
/// fewer frames than it raw-captures on recursion-heavy stacks).
struct StackSampleWork {
  std::uint32_t frames_walked = 0;
  std::uint32_t raw_captures = 0;     ///< frames snapshotted in native form
  std::uint32_t raw_slots_copied = 0;
  std::uint32_t extractions = 0;      ///< raw -> extracted conversions
  std::uint32_t slots_extracted = 0;  ///< slots inspected via the GC interface
  std::uint32_t comparisons = 0;      ///< compare-by-probing invocations
  std::uint32_t slots_probed = 0;
  std::uint32_t slots_removed = 0;    ///< non-invariant slots dropped
  std::uint32_t samples_purged = 0;   ///< stale samples of popped frames
};

/// Lifetime statistics of one thread's sampler.
struct StackSamplerStats {
  std::uint64_t samples = 0;
  std::uint64_t raw_captures = 0;
  std::uint64_t extractions = 0;
  std::uint64_t comparisons = 0;
  std::uint64_t slots_probed = 0;
  std::uint64_t slots_removed = 0;
};

/// Stack sampler for a single thread.
class StackSampler {
 public:
  StackSampler(const Heap& heap, ExtractionMode mode, std::uint32_t invariant_min_rounds)
      : heap_(heap), mode_(mode), min_rounds_(invariant_min_rounds) {}

  /// Takes one sample of `stack` (the SAMPLE-STACK algorithm of Fig. 8).
  StackSampleWork sample(JavaStack& stack);

  /// Object references currently considered stack-invariant, ordered
  /// topmost-frame-first (the resolution heuristic starts from the most
  /// recent invariants).  Only slots that survived at least
  /// `invariant_min_rounds` comparisons qualify.
  [[nodiscard]] std::vector<ObjectId> invariant_refs(const JavaStack& stack) const;

  [[nodiscard]] const StackSamplerStats& stats() const noexcept { return stats_; }

  /// Number of retained frame samples (for tests).
  [[nodiscard]] std::size_t retained_samples() const noexcept { return samples_.size(); }

 private:
  /// Retained per-frame sample.  Raw samples hold the full slot image;
  /// extracted samples hold only (slot index, value) pairs for slots that
  /// passed the GC-interface object-pointer check.
  struct FrameSampleRec {
    bool raw = false;
    std::uint32_t comparisons = 0;
    std::vector<std::uint64_t> raw_slots;
    std::vector<std::pair<std::uint16_t, std::uint64_t>> slots;
  };

  void extract(FrameSampleRec& rec, StackSampleWork& work);
  void capture(const Frame& frame, StackSampleWork& work);
  void compare_by_probing(FrameSampleRec& rec, const Frame& frame,
                          StackSampleWork& work);
  /// The GC interface: is this bit pattern a valid object pointer?
  [[nodiscard]] bool valid_ref(std::uint64_t raw) const {
    return looks_like_ref(raw) && heap_.is_valid_object(decode_ref(raw));
  }

  const Heap& heap_;
  ExtractionMode mode_;
  std::uint32_t min_rounds_;
  std::unordered_map<FrameId, FrameSampleRec> samples_;
  StackSamplerStats stats_;
};

/// One sampler per thread plus shared configuration.
class StackSamplerManager {
 public:
  StackSamplerManager(const Heap& heap, ExtractionMode mode,
                      std::uint32_t invariant_min_rounds)
      : heap_(heap), mode_(mode), min_rounds_(invariant_min_rounds) {}

  /// Grows to cover `count` threads.
  void ensure_threads(std::size_t count);

  StackSampleWork sample(ThreadId t, JavaStack& stack);
  [[nodiscard]] std::vector<ObjectId> invariant_refs(ThreadId t,
                                                     const JavaStack& stack) const;
  [[nodiscard]] const StackSamplerStats& stats(ThreadId t) const {
    return samplers_.at(t).stats();
  }
  [[nodiscard]] std::size_t thread_count() const noexcept { return samplers_.size(); }

 private:
  const Heap& heap_;
  ExtractionMode mode_;
  std::uint32_t min_rounds_;
  std::vector<StackSampler> samplers_;
};

}  // namespace djvm
