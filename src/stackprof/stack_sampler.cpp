#include "stackprof/stack_sampler.hpp"

#include <algorithm>
#include <unordered_set>

namespace djvm {

void StackSampler::extract(FrameSampleRec& rec, StackSampleWork& work) {
  rec.slots.clear();
  for (std::size_t i = 0; i < rec.raw_slots.size(); ++i) {
    ++work.slots_extracted;
    const std::uint64_t v = rec.raw_slots[i];
    if (valid_ref(v)) {
      rec.slots.emplace_back(static_cast<std::uint16_t>(i), v);
    }
  }
  rec.raw_slots.clear();
  rec.raw_slots.shrink_to_fit();
  rec.raw = false;
  ++work.extractions;
  ++stats_.extractions;
}

void StackSampler::capture(const Frame& frame, StackSampleWork& work) {
  FrameSampleRec rec;
  if (mode_ == ExtractionMode::kLazy) {
    // Raw native-format snapshot; content extraction deferred to the second
    // visit (most temporary frames never get one and are discarded cheaply).
    rec.raw = true;
    rec.raw_slots = frame.slots;
    work.raw_slots_copied += static_cast<std::uint32_t>(frame.slots.size());
  } else {
    rec.raw = true;
    rec.raw_slots = frame.slots;
    work.raw_slots_copied += static_cast<std::uint32_t>(frame.slots.size());
    extract(rec, work);
  }
  ++work.raw_captures;
  ++stats_.raw_captures;
  samples_[frame.id] = std::move(rec);
}

void StackSampler::compare_by_probing(FrameSampleRec& rec, const Frame& frame,
                                      StackSampleWork& work) {
  // The old sample probes the new frame: only slots still present in the old
  // sample are compared, so repeated comparisons shrink the work.
  auto& slots = rec.slots;
  std::size_t kept = 0;
  for (std::size_t i = 0; i < slots.size(); ++i) {
    ++work.slots_probed;
    ++stats_.slots_probed;
    const auto [idx, old_val] = slots[i];
    const std::uint64_t cur =
        idx < frame.slot_count() ? frame.slot(idx) : ~std::uint64_t{0};
    if (cur == old_val) {
      slots[kept++] = slots[i];
    } else {
      ++work.slots_removed;
      ++stats_.slots_removed;
    }
  }
  slots.resize(kept);
  ++rec.comparisons;
  ++work.comparisons;
  ++stats_.comparisons;
}

StackSampleWork StackSampler::sample(JavaStack& stack) {
  StackSampleWork work;
  ++stats_.samples;
  if (stack.empty()) {
    samples_.clear();
    return work;
  }

  // Lazily discard samples of frames that are gone ("if it is not visited for
  // the second time, it will be discarded on the next stack sampling").
  std::unordered_set<FrameId> live;
  live.reserve(stack.depth());
  for (const Frame& f : stack.frames()) live.insert(f.id);
  for (auto it = samples_.begin(); it != samples_.end();) {
    if (!live.contains(it->first)) {
      ++work.samples_purged;
      it = samples_.erase(it);
    } else {
      ++it;
    }
  }

  // --- top-down phase: find the first visited frame -------------------------
  auto frames = stack.frames();
  std::ptrdiff_t first_visited = static_cast<std::ptrdiff_t>(frames.size()) - 1;
  while (first_visited >= 0 && !frames[static_cast<std::size_t>(first_visited)].visited) {
    --first_visited;
    ++work.frames_walked;
  }

  // --- process the first visited frame --------------------------------------
  if (first_visited >= 0) {
    Frame& frame = frames[static_cast<std::size_t>(first_visited)];
    auto it = samples_.find(frame.id);
    if (it != samples_.end()) {
      FrameSampleRec& rec = it->second;
      if (rec.raw) extract(rec, work);  // CONVERT-RAW-SAMPLE
      compare_by_probing(rec, frame, work);
    } else {
      // A visited frame without a retained sample can only appear after an
      // external reset; re-capture it.
      capture(frame, work);
    }
    // Frames *below* stay untouched: they were compared when they were the
    // first visited frame, and nothing above them has changed since.
  }

  // --- bottom-up phase: raw-capture the unvisited frames above --------------
  for (std::size_t j = static_cast<std::size_t>(first_visited + 1); j < frames.size();
       ++j) {
    Frame& frame = frames[j];
    frame.visited = true;  // SET-VISITED
    capture(frame, work);
    ++work.frames_walked;
  }
  return work;
}

std::vector<ObjectId> StackSampler::invariant_refs(const JavaStack& stack) const {
  std::vector<ObjectId> out;
  std::unordered_set<ObjectId> seen;
  auto frames = stack.frames();
  // Topmost-first: the resolution heuristic prefers recent invariants.
  for (std::size_t i = frames.size(); i-- > 0;) {
    auto it = samples_.find(frames[i].id);
    if (it == samples_.end()) continue;
    const FrameSampleRec& rec = it->second;
    if (rec.raw || rec.comparisons < min_rounds_) continue;
    for (const auto& [idx, val] : rec.slots) {
      if (!valid_ref(val)) continue;
      const ObjectId obj = decode_ref(val);
      if (seen.insert(obj).second) out.push_back(obj);
    }
  }
  return out;
}

void StackSamplerManager::ensure_threads(std::size_t count) {
  while (samplers_.size() < count) {
    samplers_.emplace_back(heap_, mode_, min_rounds_);
  }
}

StackSampleWork StackSamplerManager::sample(ThreadId t, JavaStack& stack) {
  ensure_threads(static_cast<std::size_t>(t) + 1);
  return samplers_[t].sample(stack);
}

std::vector<ObjectId> StackSamplerManager::invariant_refs(ThreadId t,
                                                          const JavaStack& stack) const {
  if (t >= samplers_.size()) return {};
  return samplers_[t].invariant_refs(stack);
}

}  // namespace djvm
