// Message model for the simulated cluster interconnect.
//
// The paper's Table III accounts protocol traffic by category: GOS object
// data, OAL (profiling) traffic, and control messages (locks, barriers,
// write notices).  Each simulated message carries its category so the
// Network can keep byte-exact per-category counters.
#pragma once

#include <cstdint>
#include <string>

#include "common/types.hpp"

namespace djvm {

/// Traffic category for accounting (mirrors the paper's breakdown).
enum class MsgCategory : std::uint8_t {
  kObjectData,    ///< object fetches/replies, diffs (GOS data traffic)
  kOal,           ///< object-access-list "jumbo" messages to the coordinator
  kControl,       ///< lock grants, barrier arrivals, write notices
  kMigration,     ///< thread context + prefetch bundles
  kCount,
};

[[nodiscard]] constexpr const char* to_string(MsgCategory c) noexcept {
  switch (c) {
    case MsgCategory::kObjectData: return "object-data";
    case MsgCategory::kOal: return "oal";
    case MsgCategory::kControl: return "control";
    case MsgCategory::kMigration: return "migration";
    default: return "?";
  }
}

/// One simulated message.  Payloads are modelled by size only; the simulator
/// moves actual data through direct function calls, which keeps the model
/// deterministic while the byte accounting stays exact.
struct Message {
  NodeId src = kInvalidNode;
  NodeId dst = kInvalidNode;
  MsgCategory category = MsgCategory::kControl;
  std::uint64_t payload_bytes = 0;
  /// True when this message rode on another one (the paper piggybacks OALs
  /// on lock/barrier requests going to the same destination); piggybacked
  /// messages pay no extra latency, only payload transfer time.
  bool piggybacked = false;
};

/// Fixed protocol header cost added to every non-piggybacked message.
inline constexpr std::uint64_t kMessageHeaderBytes = 64;

}  // namespace djvm
