// Simulated cluster interconnect with per-category traffic accounting.
//
// Models a Fast-Ethernet-class switched network (the HKU Gideon 300 testbed):
// each message pays a fixed one-way latency plus payload / bandwidth.  The
// profilers and the GOS report every transfer here; the bench harnesses read
// back byte counts per category to reproduce Table III's volume columns.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/sim_clock.hpp"
#include "net/message.hpp"

namespace djvm {

/// Per-category traffic counters.
struct TrafficStats {
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> bytes{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> messages{};

  [[nodiscard]] std::uint64_t bytes_of(MsgCategory c) const noexcept {
    return bytes[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t messages_of(MsgCategory c) const noexcept {
    return messages[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t s = 0;
    for (auto b : bytes) s += b;
    return s;
  }
  void reset() noexcept {
    bytes.fill(0);
    messages.fill(0);
  }
};

/// Per-source-node traffic accounting: what each worker node spent sending,
/// by category.  `send_ns` is the simulated time `send` returned (and the
/// caller charged to a thread clock on that node), so per-node overhead
/// samples can price wire cost exactly as it was actually paid — latency,
/// piggybacking, and local-delivery effects included.
struct NodeTraffic {
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> bytes{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> messages{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> send_ns{};
};

/// The interconnect.  `send` accounts the message and returns the simulated
/// time the transfer takes from the sender's perspective; callers advance
/// their thread's SimClock with it (round trips call send twice).
class Network {
 public:
  explicit Network(SimCosts costs) : costs_(costs) {}

  /// Accounts one message and returns its simulated one-way duration.
  SimTime send(const Message& msg) noexcept;

  /// Convenience: request/reply round trip; returns total simulated time.
  SimTime round_trip(NodeId a, NodeId b, MsgCategory category,
                     std::uint64_t request_bytes, std::uint64_t reply_bytes) noexcept;

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }

  /// Traffic sent *from* `node` (zeros for a node that never sent).
  [[nodiscard]] const NodeTraffic& node_traffic(NodeId node) const noexcept {
    static const NodeTraffic kEmpty{};
    return node < node_traffic_.size() ? node_traffic_[node] : kEmpty;
  }
  void reset_stats() noexcept {
    stats_.reset();
    node_traffic_.clear();
  }

  [[nodiscard]] const SimCosts& costs() const noexcept { return costs_; }

 private:
  SimCosts costs_;
  TrafficStats stats_;
  std::vector<NodeTraffic> node_traffic_;  ///< indexed by source NodeId
};

}  // namespace djvm
