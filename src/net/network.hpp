// Simulated cluster interconnect with per-category traffic accounting.
//
// Models a Fast-Ethernet-class switched network (the HKU Gideon 300 testbed):
// each message pays a fixed one-way latency plus payload / bandwidth.  The
// profilers and the GOS report every transfer here; the bench harnesses read
// back byte counts per category to reproduce Table III's volume columns.
//
// An optional FaultInjector (net/faults.hpp) makes the wire unreliable:
// send() then consults the seeded fault plan for drops, latency spikes, and
// dead/partitioned endpoints, and the reliable-transport entry points
// (try_send / send_reliable / round_trip) retry with exponential backoff,
// billing retry bytes and backoff wait into the same per-category and
// per-node counters the overhead meter prices.  With no injector attached,
// every path is bit-identical to the fault-free build.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "common/sim_clock.hpp"
#include "net/message.hpp"

namespace djvm {

class FaultInjector;

/// Per-category traffic counters.  `dropped` / `retries` / `backoff_ns`
/// stay zero unless a fault injector is attached: dropped counts messages
/// lost on the wire (their bytes are still billed — the sender spent them),
/// retries counts re-send attempts beyond the first, and backoff_ns is the
/// simulated time reliable senders spent waiting between attempts.
struct TrafficStats {
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> bytes{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> messages{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> dropped{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> retries{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> backoff_ns{};

  [[nodiscard]] std::uint64_t bytes_of(MsgCategory c) const noexcept {
    return bytes[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t messages_of(MsgCategory c) const noexcept {
    return messages[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t dropped_of(MsgCategory c) const noexcept {
    return dropped[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t retries_of(MsgCategory c) const noexcept {
    return retries[static_cast<std::size_t>(c)];
  }
  [[nodiscard]] std::uint64_t total_bytes() const noexcept {
    std::uint64_t s = 0;
    for (auto b : bytes) s += b;
    return s;
  }
  [[nodiscard]] std::uint64_t total_dropped() const noexcept {
    std::uint64_t s = 0;
    for (auto d : dropped) s += d;
    return s;
  }
  [[nodiscard]] std::uint64_t total_retries() const noexcept {
    std::uint64_t s = 0;
    for (auto r : retries) s += r;
    return s;
  }
  [[nodiscard]] std::uint64_t total_backoff_ns() const noexcept {
    std::uint64_t s = 0;
    for (auto b : backoff_ns) s += b;
    return s;
  }
  void reset() noexcept {
    bytes.fill(0);
    messages.fill(0);
    dropped.fill(0);
    retries.fill(0);
    backoff_ns.fill(0);
  }
};

/// Per-source-node traffic accounting: what each worker node spent sending,
/// by category.  `send_ns` is the simulated time `send` returned (and the
/// caller charged to a thread clock on that node), so per-node overhead
/// samples can price wire cost exactly as it was actually paid — latency,
/// piggybacking, local-delivery, and under faults also spike/retry/backoff
/// effects included.
struct NodeTraffic {
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> bytes{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> messages{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> send_ns{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> dropped{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> retries{};
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)> backoff_ns{};
};

/// Result of one reliable-transport operation.
struct SendOutcome {
  SimTime elapsed = 0;        ///< sender-side simulated time, waits included
  bool delivered = false;     ///< false = dropped (all retries exhausted)
  std::uint32_t attempts = 0; ///< 1 for a first-try delivery
};

/// The interconnect.  `send` accounts the message and returns the simulated
/// time the transfer takes from the sender's perspective; callers advance
/// their thread's SimClock with it (round trips call send twice).
class Network {
 public:
  explicit Network(SimCosts costs) : costs_(costs) {}

  /// Accounts one message and returns its simulated one-way duration.
  /// Fire-and-forget: under an attached injector the message may be dropped
  /// (counted, bytes billed) with no signal to the caller — use try_send or
  /// send_reliable where delivery matters.
  SimTime send(const Message& msg) noexcept { return try_send(msg).elapsed; }

  /// One attempt with the fate visible.
  SendOutcome try_send(const Message& msg) noexcept;

  /// At-least-once delivery: retries with exponential backoff per the fault
  /// plan's retry policy (max_retries / retry_backoff_ns), billing each
  /// attempt's bytes and each wait into the sender's counters.  Without an
  /// injector this is exactly one send that always delivers.
  SendOutcome send_reliable(const Message& msg) noexcept;

  /// Convenience: request/reply round trip over the reliable path; returns
  /// total simulated time including any retries and backoff.  When `ok` is
  /// non-null it reports whether both directions delivered.
  SimTime round_trip(NodeId a, NodeId b, MsgCategory category,
                     std::uint64_t request_bytes, std::uint64_t reply_bytes,
                     bool* ok = nullptr) noexcept;

  [[nodiscard]] const TrafficStats& stats() const noexcept { return stats_; }

  /// Traffic sent *from* `node` (zeros for a node that never sent).
  [[nodiscard]] const NodeTraffic& node_traffic(NodeId node) const noexcept {
    static const NodeTraffic kEmpty{};
    return node < node_traffic_.size() ? node_traffic_[node] : kEmpty;
  }
  void reset_stats() noexcept {
    stats_.reset();
    node_traffic_.clear();
  }

  /// Attach (or detach, with nullptr) the fault plan.  The injector is owned
  /// by the caller and must outlive the Network's use of it.
  void set_fault_injector(FaultInjector* injector) noexcept {
    faults_ = injector;
  }
  [[nodiscard]] FaultInjector* fault_injector() const noexcept {
    return faults_;
  }

  [[nodiscard]] const SimCosts& costs() const noexcept { return costs_; }

 private:
  NodeTraffic& node_slot(NodeId node) noexcept {
    if (node_traffic_.size() <= node) node_traffic_.resize(node + 1);
    return node_traffic_[node];
  }

  SimCosts costs_;
  TrafficStats stats_;
  std::vector<NodeTraffic> node_traffic_;  ///< indexed by source NodeId
  FaultInjector* faults_ = nullptr;
};

}  // namespace djvm
