#include "net/network.hpp"

#include "net/faults.hpp"

namespace djvm {

SendOutcome Network::try_send(const Message& msg) noexcept {
  const auto idx = static_cast<std::size_t>(msg.category);
  const std::uint64_t wire_bytes =
      msg.payload_bytes + (msg.piggybacked ? 0 : kMessageHeaderBytes);
  stats_.bytes[idx] += wire_bytes;
  stats_.messages[idx] += 1;
  SimTime t;
  if (msg.src == msg.dst) {
    // Local delivery: no wire cost, tiny copy cost.
    t = costs_.transfer_time(msg.payload_bytes) / 64;
  } else {
    t = costs_.transfer_time(wire_bytes);
    if (!msg.piggybacked) t += costs_.message_latency;
  }
  bool delivered = true;
  if (faults_ != nullptr) {
    const MessageFate fate = faults_->on_message(msg);
    // A spiked message still pays its inflated wire time even when the plan
    // also drops it elsewhere in the path; a dropped message bills its bytes
    // and send time — the sender spent them either way.
    t += fate.extra_ns;
    if (fate.dropped) {
      delivered = false;
      stats_.dropped[idx] += 1;
    }
  }
  if (msg.src != kInvalidNode) {
    NodeTraffic& nt = node_slot(msg.src);
    nt.bytes[idx] += wire_bytes;
    nt.messages[idx] += 1;
    nt.send_ns[idx] += t;
    if (!delivered) nt.dropped[idx] += 1;
  }
  return {t, delivered, 1};
}

SendOutcome Network::send_reliable(const Message& msg) noexcept {
  SendOutcome out = try_send(msg);
  if (out.delivered || faults_ == nullptr) return out;
  const auto idx = static_cast<std::size_t>(msg.category);
  const FaultKnobs& plan = faults_->plan();
  SimTime backoff = plan.retry_backoff_ns;
  while (out.attempts <= plan.max_retries) {
    // Bill the backoff wait before the re-send: the sender really sat out
    // that simulated time, and the overhead meter prices send_ns.
    out.elapsed += backoff;
    stats_.backoff_ns[idx] += backoff;
    stats_.retries[idx] += 1;
    if (msg.src != kInvalidNode) {
      NodeTraffic& nt = node_slot(msg.src);
      nt.backoff_ns[idx] += backoff;
      nt.retries[idx] += 1;
      nt.send_ns[idx] += backoff;
    }
    backoff *= 2;
    const SendOutcome attempt = try_send(msg);
    out.elapsed += attempt.elapsed;
    out.attempts += 1;
    if (attempt.delivered) {
      out.delivered = true;
      return out;
    }
    // A dead or partitioned destination can never deliver: stop burning the
    // retry budget once the plan says the path is severed.
    if (!faults_->reachable(msg.src, msg.dst)) break;
  }
  return out;
}

SimTime Network::round_trip(NodeId a, NodeId b, MsgCategory category,
                            std::uint64_t request_bytes,
                            std::uint64_t reply_bytes, bool* ok) noexcept {
  const SendOutcome req = send_reliable({a, b, category, request_bytes, false});
  if (!req.delivered) {
    // The request never arrived; there is no reply leg to bill.
    if (ok != nullptr) *ok = false;
    return req.elapsed;
  }
  const SendOutcome rep = send_reliable({b, a, category, reply_bytes, false});
  if (ok != nullptr) *ok = rep.delivered;
  return req.elapsed + rep.elapsed;
}

}  // namespace djvm
