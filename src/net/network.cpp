#include "net/network.hpp"

namespace djvm {

SimTime Network::send(const Message& msg) noexcept {
  const auto idx = static_cast<std::size_t>(msg.category);
  const std::uint64_t wire_bytes =
      msg.payload_bytes + (msg.piggybacked ? 0 : kMessageHeaderBytes);
  stats_.bytes[idx] += wire_bytes;
  stats_.messages[idx] += 1;
  SimTime t;
  if (msg.src == msg.dst) {
    // Local delivery: no wire cost, tiny copy cost.
    t = costs_.transfer_time(msg.payload_bytes) / 64;
  } else {
    t = costs_.transfer_time(wire_bytes);
    if (!msg.piggybacked) t += costs_.message_latency;
  }
  if (msg.src != kInvalidNode) {
    if (node_traffic_.size() <= msg.src) node_traffic_.resize(msg.src + 1);
    NodeTraffic& nt = node_traffic_[msg.src];
    nt.bytes[idx] += wire_bytes;
    nt.messages[idx] += 1;
    nt.send_ns[idx] += t;
  }
  return t;
}

SimTime Network::round_trip(NodeId a, NodeId b, MsgCategory category,
                            std::uint64_t request_bytes,
                            std::uint64_t reply_bytes) noexcept {
  SimTime t = send({a, b, category, request_bytes, false});
  t += send({b, a, category, reply_bytes, false});
  return t;
}

}  // namespace djvm
