#include "net/faults.hpp"

#include "common/rng.hpp"

namespace djvm {
namespace {

// Domain-separation tags keep the drop, spike, jitter, and stall streams
// independent: changing the drop probability never perturbs which messages
// spike, so fault dimensions can be varied one at a time against a fixed
// seed.
constexpr std::uint64_t kDropTag = 0xD809ull;
constexpr std::uint64_t kSpikeTag = 0x59136ull;
constexpr std::uint64_t kJitterTag = 0x717736ull;
constexpr std::uint64_t kStallTag = 0x57A11ull;

/// One draw of the schedule: SplitMix64 seeded by a mix of the plan seed, a
/// domain tag, and the decision coordinates.  Pure — the same coordinates
/// always yield the same value.
std::uint64_t draw(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                   std::uint64_t b) noexcept {
  SplitMix64 rng(seed ^ (tag * 0x9E3779B97F4A7C15ull) ^
                 (a * 0xC2B2AE3D27D4EB4Full) ^ (b * 0x165667B19E3779F9ull));
  return rng.next();
}

double draw_u01(std::uint64_t seed, std::uint64_t tag, std::uint64_t a,
                std::uint64_t b) noexcept {
  return static_cast<double>(draw(seed, tag, a, b) >> 11) * 0x1.0p-53;
}

}  // namespace

MessageFate FaultInjector::on_message(const Message& msg) noexcept {
  MessageFate fate;
  // Local delivery never touches the wire: exempt from the fault plan, and
  // it consumes no schedule slot.
  if (msg.src == msg.dst) return fate;

  // Dead nodes and severed partitions drop deterministically *without*
  // consuming a schedule slot: the survivors' drop/spike schedule stays
  // aligned with the fault-free ordinal sequence.
  if (!reachable(msg.src, msg.dst)) {
    fate.dropped = true;
    return fate;
  }

  const auto idx = static_cast<std::size_t>(msg.category);
  const std::uint64_t ordinal = counters_[idx]++;

  const double drop_p = (msg.category == MsgCategory::kObjectData)
                            ? plan_.drop_object_data
                        : (msg.category == MsgCategory::kOal) ? plan_.drop_oal
                        : (msg.category == MsgCategory::kControl)
                            ? plan_.drop_control
                            : plan_.drop_migration;
  if (drop_p > 0.0 &&
      draw_u01(plan_.fault_seed, kDropTag, idx, ordinal) < drop_p) {
    fate.dropped = true;
  }

  if (!fate.dropped && plan_.spike_probability > 0.0 &&
      draw_u01(plan_.fault_seed, kSpikeTag, idx, ordinal) <
          plan_.spike_probability) {
    fate.extra_ns += plan_.spike_ns;
    if (plan_.jitter_ns > 0) {
      fate.extra_ns += draw(plan_.fault_seed, kJitterTag, idx, ordinal) %
                       plan_.jitter_ns;
    }
  }

  if (!fate.dropped && plan_.stall_ns > 0 &&
      (node_stalled(msg.src) || node_stalled(msg.dst))) {
    fate.extra_ns += plan_.stall_ns;
  }

  // Fold the decision into the rolling schedule hash (FNV-1a over the
  // coordinates and outcome); the determinism test compares this across
  // injectors.
  std::uint64_t h = hash_ ^ (idx + 1);
  h *= 0x100000001B3ull;
  h ^= ordinal + 1;
  h *= 0x100000001B3ull;
  h ^= (fate.dropped ? 0x2ull : 0x1ull) + (fate.extra_ns << 2);
  h *= 0x100000001B3ull;
  hash_ = h;
  ++decisions_;
  return fate;
}

bool FaultInjector::node_stalled(NodeId node) const noexcept {
  if (plan_.stall_probability <= 0.0) return false;
  return draw_u01(plan_.fault_seed, kStallTag, node, epoch_) <
         plan_.stall_probability;
}

bool FaultInjector::partitioned(NodeId a, NodeId b) const noexcept {
  if (epoch_ < plan_.partition_begin || epoch_ >= plan_.partition_end)
    return false;
  return (a < plan_.partition_cut) != (b < plan_.partition_cut);
}

}  // namespace djvm
