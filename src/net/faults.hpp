// Deterministic seeded fault injection for the simulated interconnect.
//
// The injector turns one RNG seed into a reproducible fault schedule: message
// drops per traffic category, latency spikes with jitter, transient per-epoch
// node stalls, a timed full-node failure, and an epoch-windowed partition.
// Every decision is a pure function of (seed, decision kind, per-category
// message counter | node | epoch) hashed through SplitMix64 — no hidden
// state, no dependence on wall clock or call interleaving — so an identical
// seed yields a bit-identical schedule and a failure found in CI replays
// locally from the same Config (verified by tests/test_fault_injection).
//
// The Network consults the injector inside send(); with no injector attached
// the transport is bit-identical to the fault-free build.
#pragma once

#include <array>
#include <cstdint>
#include <unordered_set>

#include "common/config.hpp"
#include "common/sim_clock.hpp"
#include "net/message.hpp"

namespace djvm {

/// What the fault plan decided for one message.
struct MessageFate {
  bool dropped = false;       ///< message lost on the wire (bytes still spent)
  SimTime extra_ns = 0;       ///< latency spike + jitter + stall penalty
};

class FaultInjector {
 public:
  explicit FaultInjector(const FaultKnobs& plan) noexcept : plan_(plan) {}

  /// Advance the schedule's epoch: timed kills fire, stall and partition
  /// windows are evaluated against this value.
  void begin_epoch(std::uint64_t epoch) noexcept { epoch_ = epoch; }
  [[nodiscard]] std::uint64_t epoch() const noexcept { return epoch_; }

  /// Decide the fate of one message.  Consumes one per-category schedule
  /// slot; messages to/from dead or partitioned nodes drop deterministically
  /// without consuming a slot, so killing a node mid-run does not shift the
  /// drop/spike schedule of the survivors.
  MessageFate on_message(const Message& msg) noexcept;

  /// Explicit mid-run kill (Djvm::fail_node, bench harnesses).
  void kill_node(NodeId node) { killed_.insert(node); }

  /// Dead = explicitly killed, or the timed kill has fired.
  [[nodiscard]] bool node_dead(NodeId node) const noexcept {
    if (node == plan_.kill_node && epoch_ >= plan_.kill_epoch) return true;
    return killed_.count(node) != 0;
  }

  /// Transient stall: pure hash of (seed, node, epoch) under
  /// stall_probability; the whole epoch is stalled or it is not.
  [[nodiscard]] bool node_stalled(NodeId node) const noexcept;

  /// True while the partition window covers `epoch_` and a, b sit on
  /// opposite sides of the cut.
  [[nodiscard]] bool partitioned(NodeId a, NodeId b) const noexcept;

  /// Can a message from src currently reach dst at all?
  [[nodiscard]] bool reachable(NodeId src, NodeId dst) const noexcept {
    return !node_dead(src) && !node_dead(dst) && !partitioned(src, dst);
  }

  [[nodiscard]] const FaultKnobs& plan() const noexcept { return plan_; }

  /// Total decisions taken and a rolling hash over every (category, counter,
  /// fate) triple — two injectors with the same seed fed the same message
  /// sequence must agree on both (the determinism gate).
  [[nodiscard]] std::uint64_t decisions() const noexcept { return decisions_; }
  [[nodiscard]] std::uint64_t schedule_hash() const noexcept { return hash_; }

 private:
  FaultKnobs plan_;
  std::uint64_t epoch_ = 0;
  std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)>
      counters_{};  ///< per-category message ordinal (the schedule index)
  std::unordered_set<NodeId> killed_;
  std::uint64_t decisions_ = 0;
  std::uint64_t hash_ = 0;
};

}  // namespace djvm
