// The central correlation-computing daemon (the master JVM of Fig. 2).
//
// Collects OAL interval records from worker nodes, periodically rebuilds the
// thread correlation map, and — when adaptation is enabled — runs the
// rate-convergence loop of Section II.B.2: start coarse, tighten the gap
// stepwise, and stop once successive TCMs agree within a threshold under the
// absolute-distance metric (which the paper found more stable than the
// Euclidean one).
#pragma once

#include <chrono>
#include <cstdint>
#include <optional>
#include <vector>

#include "common/matrix.hpp"
#include "profiling/oal.hpp"
#include "profiling/sampling.hpp"
#include "profiling/tcm.hpp"

namespace djvm {

/// Outcome of one daemon epoch (a TCM rebuild over newly collected records).
struct EpochResult {
  SquareMatrix tcm;
  std::size_t intervals = 0;
  std::size_t entries = 0;
  double build_seconds = 0.0;      ///< real CPU time of the O(MN^2) build
  /// Relative ABS distance vs the previous epoch's TCM (nullopt on the
  /// first epoch).
  std::optional<double> rel_distance;
  bool rate_changed = false;       ///< adaptation tightened the gaps
  std::size_t resampled_objects = 0;
};

class CorrelationDaemon {
 public:
  CorrelationDaemon(SamplingPlan& plan, std::uint32_t threads);

  /// Delivers records (the facade drains the GOS into here).
  void submit(std::vector<IntervalRecord> records);

  /// Records waiting for the next epoch.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_.size(); }

  /// Builds a TCM over the pending records, compares with the previous
  /// epoch's map, optionally adapts the sampling rate, and clears the
  /// pending buffer (records are kept in `history` for offline analysis).
  EpochResult run_epoch();

  /// Turns on the convergence controller: while not converged, every epoch
  /// whose relative ABS distance exceeds `threshold` halves every sampled
  /// class's nominal gap (raising the rate) and triggers resampling.
  void enable_adaptation(double threshold) {
    adaptation_ = true;
    threshold_ = threshold;
    converged_ = false;
  }
  void disable_adaptation() { adaptation_ = false; }
  [[nodiscard]] bool converged() const noexcept { return converged_; }

  /// Latest epoch's TCM (empty matrix before the first epoch).
  [[nodiscard]] const SquareMatrix& latest() const noexcept { return latest_; }

  /// Builds one TCM over *all* records ever submitted (used by benches that
  /// want a whole-run map); also accumulates build-time statistics.
  SquareMatrix build_full(bool weighted = true);

  /// Total real seconds spent in TCM construction (Table III's rightmost
  /// column; the paper runs this on a dedicated machine so it does not add
  /// to execution time).
  [[nodiscard]] double total_build_seconds() const noexcept { return build_seconds_; }
  [[nodiscard]] std::size_t total_entries() const noexcept { return total_entries_; }
  [[nodiscard]] std::size_t total_intervals() const noexcept { return history_.size(); }
  [[nodiscard]] std::size_t epochs_run() const noexcept { return epochs_; }

  [[nodiscard]] const std::vector<IntervalRecord>& history() const noexcept {
    return history_;
  }
  void clear();

 private:
  SamplingPlan& plan_;
  std::uint32_t threads_;
  std::vector<IntervalRecord> pending_;
  std::vector<IntervalRecord> history_;
  SquareMatrix latest_;
  bool have_latest_ = false;

  bool adaptation_ = false;
  bool converged_ = false;
  double threshold_ = 0.05;

  double build_seconds_ = 0.0;
  std::size_t total_entries_ = 0;
  std::size_t epochs_ = 0;
};

}  // namespace djvm
