// The central correlation-computing daemon (the master JVM of Fig. 2).
//
// Collects OAL interval records from worker nodes, folds each delivered
// batch into a persistent incremental sparse accumulator (see
// profiling/tcm.hpp) as it arrives, and at each epoch densifies the window's
// map and hands its movement plus measured costs to the profiling governor,
// which owns all rate decisions: the paper's Section II.B.2 convergence loop
// in legacy mode, or the budgeted bidirectional controller with phase
// detection in closed-loop mode (see governor/governor.hpp).  Folding at
// ingest() time amortizes the old from-scratch O(MN^2) epoch rebuild across
// deliveries: the epoch boundary pays only the cheap densify.
#pragma once

#include <array>
#include <chrono>
#include <cstdint>
#include <functional>
#include <optional>
#include <vector>

#include "common/matrix.hpp"
#include "governor/governor.hpp"
#include "net/message.hpp"
#include "profiling/ingest.hpp"
#include "profiling/oal.hpp"
#include "profiling/sampling.hpp"
#include "profiling/tcm.hpp"

namespace djvm {

/// Per-MsgCategory byte counts (indexed by static_cast<size_t>(MsgCategory)).
using CategoryBytes =
    std::array<std::uint64_t, static_cast<std::size_t>(MsgCategory::kCount)>;

/// Outcome of one daemon epoch (a TCM rebuild over newly collected records).
struct EpochResult {
  SquareMatrix tcm;
  /// 0-based index of this epoch in the daemon's run.
  std::size_t epoch = 0;
  std::size_t intervals = 0;
  std::size_t entries = 0;
  /// Real CPU time of this window's TCM construction: the incremental folds
  /// paid at ingest() time plus the epoch-boundary densify.
  double build_seconds = 0.0;
  /// The epoch-boundary share of build_seconds alone (what the master
  /// actually stalls on at the epoch tick now that folding is incremental).
  double densify_seconds = 0.0;
  /// Relative ABS distance vs the previous epoch's TCM (nullopt on the
  /// first epoch).
  std::optional<double> rel_distance;
  bool rate_changed = false;       ///< the governor moved at least one gap
  std::size_t resampled_objects = 0;
  GovernorAction action = GovernorAction::kNone;
  /// Per-class cell attribution of this epoch's window against the balancer
  /// placement handed to set_influence_placement (empty when no placement
  /// was set or the window held no cells): which classes produced the cut
  /// vs the node-local pair mass, per-(class, thread) mass for suggestion
  /// attribution, and HT-weighted remote-home mass.  The facade folds this
  /// plus the planner's suggestions into a BalancerFeedback for the
  /// governor's influence-weighted back-off scoring.
  TcmClassAttribution cells;
  /// Rolling overhead fraction after folding in this epoch's sample (the
  /// meter keeps recording even while the governor is disarmed).
  double overhead_fraction = 0.0;
  /// Worst per-node rolling fraction and its node, when per-node samples
  /// were recorded (tracked under every policy, so a cluster-governed run
  /// still exposes the hot node it is ignoring).
  std::optional<NodeId> offender;
  double offender_fraction = 0.0;
  /// Rolling per-node overhead fractions after this epoch, indexed by node
  /// (empty when no per-node samples were ever recorded).
  std::vector<double> node_fractions;
  /// Cluster-wide per-category traffic deltas over this epoch.  The daemon
  /// never sees the network; the pump (Djvm::run_governed_epoch) fills these
  /// from its Network counters for the timeline.
  CategoryBytes traffic_bytes{};
  /// Same per source node (empty when the pump does not track nodes).
  std::vector<CategoryBytes> node_traffic_bytes;
  /// Retention telemetry (zero when retention is off): whole-run accumulator
  /// population after this epoch's merge/compact, and cumulative evictions.
  std::size_t retained_objects = 0;
  std::size_t retained_readers = 0;
  std::size_t dropped_objects = 0;
  /// Ingest-ring telemetry over this epoch (all zero before the first
  /// ingest()): arenas published and entries carried by the
  /// lanes, and publishes that found their outbound ring full (the arena is
  /// then parked producer-side and re-offered — a counted stall).
  /// ring_dropped exists to prove the invariant the bench gate checks: the
  /// ingest path has no drop branch, so it is structurally zero, and a
  /// nonzero value in a timeline is a bug, not a tuning problem.
  std::uint64_t ring_published = 0;
  std::uint64_t ring_entries = 0;
  std::uint64_t ring_backpressure = 0;
  std::uint64_t ring_dropped = 0;
  /// One migration the facade's execution stage ran (or would have run, for
  /// deferred/dry-run entries) this epoch.  Filled by the pump after the
  /// daemon epoch returns — the daemon itself never moves threads.
  struct MigrationEvent {
    ThreadId thread = kInvalidThread;
    NodeId from = kInvalidNode;
    NodeId to = kInvalidNode;
    double gain_bytes = 0.0;  ///< planner locality gain
    double score = 0.0;       ///< planner gain/cost score
    SimTime sim_cost = 0;     ///< simulated cost billed to the migrant
    std::uint64_t prefetched_bytes = 0;
    std::size_t homes_migrated = 0;  ///< follow-the-thread home moves
    bool executed = false;  ///< false: deferred (cap/veto) or dry-run
  };
  std::vector<MigrationEvent> migrations;
  /// Real CPU the execution stage spent this epoch (resolution + prefetch +
  /// home migration bookkeeping); billed into the *next* epoch's overhead
  /// sample alongside the planner carry.
  double migration_seconds = 0.0;
  /// Fault-plan transport telemetry over this epoch (all zero on a fault-free
  /// run): per-category messages the injector dropped, per-category retries
  /// the reliable transport spent, and the total backoff wait it billed into
  /// sender clocks.  Filled by the pump from its Network counters.
  CategoryBytes dropped_msgs{};
  CategoryBytes retries{};
  std::uint64_t backoff_ns = 0;
  /// The fully assembled overhead sample this epoch's decision ran on (the
  /// caller's measured costs plus the daemon's fills: build time, wire
  /// bytes, resampling carry).  A cluster coordinator re-records it into a
  /// shared multi-tenant meter — the sample carries its tenant id, so the
  /// shared meter's per-(tenant, node) windows stay namespaced.
  OverheadSample sample;
  /// Degraded-mode marker: true when at least one node's profiling partials
  /// were lost this epoch (node dead, partitioned, or its reduction-tree
  /// exchange exhausted its retries), with the nodes named in `lost_nodes`.
  /// The map in `tcm` is then *incomplete*, not wrong — accuracy benches
  /// compare surviving-node objects only and treat the rest as missing data.
  /// Filled by the pump (the daemon itself never sees the network).
  bool degraded = false;
  std::vector<NodeId> lost_nodes;
};

/// Long-haul retention policy for the daemon's whole-run accumulator (see
/// TcmAccumulator::compact).  Off by default: the accumulator then grows
/// with every object the workload ever touches, the pre-retention behavior.
struct RetentionPolicy {
  /// Evict/decay objects untouched for this many epochs; 0 = retention off.
  std::uint32_t idle_epochs = 0;
  /// Stale-object byte decay per pass in [0, 1); 0 drops stale objects
  /// outright.  Decayed objects whose mass falls below one byte are dropped.
  double decay = 0.0;
  /// Run the compact pass every this many epochs (staleness accrues every
  /// epoch regardless; the period only amortizes the pass itself).
  std::uint32_t compact_period = 4;

  [[nodiscard]] bool active() const noexcept { return idle_epochs != 0; }
};

class CorrelationDaemon {
 public:
  CorrelationDaemon(SamplingPlan& plan, std::uint32_t threads);

  /// The only delivery path: drains every published arena out of `hub`
  /// (round-robin across lanes) and folds each into the window accumulator.
  /// With `quiesced` (the default — the simulator's producers run on this
  /// same thread) it also collects parked and still-open arenas via
  /// take_stranded(), so an epoch boundary observes every appended entry.
  /// Pass false only when producer threads are still appending concurrently.
  /// Drained arenas are recycled back to their lanes at the next run_epoch
  /// (their slices back the epoch's statistics until then).  Returns the
  /// number of arenas consumed.  Raw IntervalRecords never reach the daemon:
  /// the old submit() compatibility wrapper (and the record history it kept
  /// alive) is gone, and build_full folds through the whole-run accumulator
  /// (weighted only).
  std::size_t ingest(IngestHub& hub, bool quiesced = true);

  /// Installs a liveness predicate consulted at ingest() time: arena slices
  /// whose logging node fails it are dropped before the fold, so a killed
  /// node's un-shipped intervals die with it exactly as they did when the
  /// pump erased its raw records.  An empty function (the default) keeps
  /// everything and costs nothing.
  void set_node_filter(std::function<bool(NodeId)> alive) {
    node_filter_ = std::move(alive);
  }

  /// Ingested arena slices waiting for the next epoch.
  [[nodiscard]] std::size_t pending() const noexcept { return pending_slices_; }

  /// Densifies the window accumulator into this epoch's TCM, compares with
  /// the previous epoch's map, refreshes the plan's per-class epoch stats,
  /// and delegates the rate decision to the governor.  `sample` carries the
  /// epoch's measured costs (the Djvm pump hook assembles it from
  /// GOS/network deltas); fields left zero are filled in from the slices
  /// themselves (entries, wire bytes) and the build timers.  Consumes the
  /// pending arenas and window accumulator, merging the window into the
  /// whole-run accumulator behind build_full().
  EpochResult run_epoch(OverheadSample sample = {});

  /// Hands the daemon the balancer's current thread-to-node placement; the
  /// next run_epoch splits the window's pair mass by owning class into cut
  /// vs local shares against it (EpochResult::cells), answered sparsely off
  /// the window accumulator before it is consumed.  An empty vector turns
  /// attribution off.
  void set_influence_placement(std::vector<NodeId> node_of_thread) {
    influence_placement_ = std::move(node_of_thread);
  }
  [[nodiscard]] const std::vector<NodeId>& influence_placement() const noexcept {
    return influence_placement_;
  }

  /// The governor owning all rate decisions for this daemon.
  [[nodiscard]] Governor& governor() noexcept { return governor_; }
  [[nodiscard]] const Governor& governor() const noexcept { return governor_; }

  /// Installs the long-haul retention policy.  Without it the whole-run
  /// accumulator grows with every object the workload ever touches; with
  /// retention active each epoch's merge is followed by periodic compaction
  /// that evicts stale objects.  Set it before the first epoch; switching
  /// mid-run only bounds growth from that point on.
  void set_retention(RetentionPolicy policy) noexcept { retention_ = policy; }
  [[nodiscard]] const RetentionPolicy& retention() const noexcept {
    return retention_;
  }

  /// Rate control lives entirely on the governor: arm the paper's one-way
  /// convergence loop with governor().arm(GovernorConfig::legacy(t)), the
  /// closed-loop controller with a full GovernorConfig, and stop with
  /// governor().disarm().
  [[nodiscard]] bool converged() const noexcept { return governor_.converged(); }

  /// Seeds the previous-epoch map (snapshot warm start): the next epoch's
  /// distance is computed against `tcm` instead of starting cold.  Returns
  /// false (daemon stays cold) when the map's dimension does not match this
  /// daemon's thread count — e.g. a snapshot from a differently-sized run.
  bool seed_latest(SquareMatrix tcm) {
    if (tcm.size() != threads_) return false;
    latest_ = std::move(tcm);
    have_latest_ = true;
    return true;
  }

  /// Latest epoch's TCM (empty matrix before the first epoch).
  [[nodiscard]] const SquareMatrix& latest() const noexcept { return latest_; }

  /// Builds one HT-weighted TCM over *all* entries ever ingested (used by
  /// benches that want a whole-run map); also accumulates build-time
  /// statistics.  The whole-run accumulator is fed incrementally by every
  /// run_epoch, so this only merges the unconsumed window in and densifies —
  /// repeated calls pay nothing for already-consumed epochs.  Raw records
  /// never existed for ingested entries, so an unweighted variant is not
  /// available (benches that need per-record views tap the Gos record stream
  /// instead — see Gos::set_record_tap).
  SquareMatrix build_full();

  /// Total real seconds spent in TCM construction (Table III's rightmost
  /// column; the paper runs this on a dedicated machine so it does not add
  /// to execution time).
  [[nodiscard]] double total_build_seconds() const noexcept { return build_seconds_; }
  [[nodiscard]] std::size_t total_entries() const noexcept { return total_entries_; }
  /// Interval slices consumed over the run (the records themselves never
  /// reach the daemon, but the count survives).
  [[nodiscard]] std::size_t total_intervals() const noexcept {
    return intervals_seen_;
  }
  [[nodiscard]] std::size_t epochs_run() const noexcept { return epochs_; }

  void clear();

 private:
  /// Sanitizes one arena's entries (class ids beyond the registry untag) and
  /// folds it into the window.
  void fold_arena(OalArena& arena);
  /// Compacts one arena in place, dropping slices whose node fails the
  /// installed liveness predicate (no-op without one).
  void filter_arena(OalArena& arena) const;
  /// Recycles consumed pending arenas back to their lanes.
  void release_pending_arenas();

  SamplingPlan& plan_;
  std::uint32_t threads_;
  Governor governor_;
  /// Ingest state: the hub ingest() last drained (arenas are recycled to
  /// it), the drained-but-unconsumed arenas backing the next epoch's stats,
  /// and the ring-counter snapshot per-epoch telemetry deltas against.
  IngestHub* hub_ = nullptr;
  std::vector<OalArena*> pending_arenas_;
  std::size_t pending_slices_ = 0;
  IngestCounters ring_snapshot_;
  /// Liveness predicate applied to arena slices at ingest() (empty = keep all).
  std::function<bool(NodeId)> node_filter_;
  /// Incremental sparse accumulator over the current window: every ingest()
  /// folds its arenas in, so the epoch boundary only densifies.
  TcmAccumulator window_;
  /// Fold time already paid for the current window (ingest-side share of the
  /// next epoch's build_seconds).
  double window_fold_seconds_ = 0.0;
  /// Whole-run accumulator behind build_full(), fed eagerly by every
  /// run_epoch's window merge and, under retention, bounded by compact().
  TcmAccumulator full_;
  RetentionPolicy retention_;
  std::size_t intervals_seen_ = 0;   ///< records consumed (backs total_intervals)
  std::size_t dropped_objects_ = 0;  ///< cumulative retention evictions
  SquareMatrix latest_;
  bool have_latest_ = false;
  /// Balancer placement the per-class cell attribution is computed against
  /// (empty = attribution off).
  std::vector<NodeId> influence_placement_;

  double build_seconds_ = 0.0;
  std::size_t total_entries_ = 0;
  std::size_t epochs_ = 0;
  /// Resampling triggered by last epoch's decision; its cost is metered in
  /// the following epoch's sample (the pass runs after the decision).
  std::uint64_t carryover_resampled_ = 0;
  /// Same, attributed to the node that paid each copy visit — the node that
  /// walked its own cached copies (feeds the per-node slices of the next
  /// epoch's sample).
  std::vector<std::uint64_t> carryover_resampled_by_node_;
};

}  // namespace djvm
