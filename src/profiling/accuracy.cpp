#include "profiling/accuracy.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace djvm {

double euclidean_error(const SquareMatrix& a, const SquareMatrix& b) {
  assert(a.size() == b.size());
  double num = 0.0;
  double den = 0.0;
  const auto& av = a.raw();
  const auto& bv = b.raw();
  for (std::size_t i = 0; i < av.size(); ++i) {
    const double d = av[i] - bv[i];
    num += d * d;
    den += bv[i] * bv[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : 1.0;
  return std::sqrt(num) / std::sqrt(den);
}

double absolute_error(const SquareMatrix& a, const SquareMatrix& b) {
  assert(a.size() == b.size());
  double num = 0.0;
  double den = 0.0;
  const auto& av = a.raw();
  const auto& bv = b.raw();
  for (std::size_t i = 0; i < av.size(); ++i) {
    num += std::abs(av[i] - bv[i]);
    den += bv[i];
  }
  if (den == 0.0) return num == 0.0 ? 0.0 : 1.0;
  return num / den;
}

double accuracy_from_error(double error) {
  return std::clamp(1.0 - error, 0.0, 1.0);
}

}  // namespace djvm
