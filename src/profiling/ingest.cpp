#include "profiling/ingest.hpp"

#include <algorithm>

namespace djvm {

IngestHub::IngestHub(IngestConfig cfg) : cfg_(cfg) {
  cfg_.arena_entries = std::max<std::uint32_t>(1, cfg_.arena_entries);
  cfg_.ring_depth = std::max<std::uint32_t>(1, cfg_.ring_depth);
}

IngestHub::~IngestHub() {
  // Arenas are owned by their lane's registry; rings and parked queues hold
  // raw pointers into it, so destruction order is: drop the queue views
  // (trivially, with the lanes), then the registry frees every arena exactly
  // once.  Callers must have quiesced producers and consumer by now.
}

void IngestHub::ensure_lanes(std::uint32_t count) {
  if (lane_count_.load(std::memory_order_acquire) >= count) return;
  std::lock_guard<std::mutex> lock(lanes_mutex_);
  while (lanes_.size() < count) {
    lanes_.push_back(std::make_unique<Lane>(cfg_));
  }
  lane_count_.store(static_cast<std::uint32_t>(lanes_.size()),
                    std::memory_order_release);
}

OalArena* IngestHub::ensure_open(Lane& ln, std::uint32_t lane) {
  if (ln.open != nullptr && ln.open->entries.size() < cfg_.arena_entries) {
    return ln.open;
  }
  if (ln.open != nullptr) {
    publish(ln, ln.open);
    ln.open = nullptr;
  }
  OalArena* a = nullptr;
  if (!ln.recycled.pop(a)) {
    auto fresh = std::make_unique<OalArena>();
    fresh->lane = lane;
    fresh->entries.reserve(cfg_.arena_entries);
    // Worst case one slice per entry (sparse single-entry intervals): reserve
    // up front so the hot path never reallocates either vector.
    fresh->intervals.reserve(cfg_.arena_entries);
    a = fresh.get();
    ln.owned.push_back(std::move(fresh));
    ln.allocated.fetch_add(1, std::memory_order_relaxed);
  }
  ln.open = a;
  return a;
}

void IngestHub::publish(Lane& ln, OalArena* arena) {
  // Re-offer parked arenas first: FIFO keeps a lane's slices in interval
  // order, and a drained consumer frees ring slots between epochs.
  while (!ln.parked.empty()) {
    if (!ln.outbound.push(ln.parked.front())) break;
    ln.parked.pop_front();
  }
  const std::uint64_t n = arena->entries.size();
  if (!ln.parked.empty() || !ln.outbound.push(arena)) {
    // Full ring: the arena stays with the producer — a counted stall, never
    // a drop.  It is still *published* for the loss accounting (the entries
    // exist and will reach the consumer via a later re-offer or
    // take_stranded).
    ln.backpressure.fetch_add(1, std::memory_order_relaxed);
    ln.parked.push_back(arena);
  }
  ln.published.fetch_add(1, std::memory_order_relaxed);
  ln.entries_published.fetch_add(n, std::memory_order_relaxed);
}

void IngestHub::append_slow(Lane& ln, std::uint32_t lane, ThreadId thread,
                            IntervalId interval, NodeId node,
                            std::uint32_t start_pc, std::uint32_t end_pc,
                            std::span<const OalEntry> entries) {
  if (entries.empty()) return;
  std::size_t off = 0;
  while (off < entries.size()) {
    OalArena* a = ensure_open(ln, lane);
    const std::size_t room = cfg_.arena_entries - a->entries.size();
    const std::size_t take = std::min(room, entries.size() - off);
    const auto begin = static_cast<std::uint32_t>(a->entries.size());
    a->entries.insert(a->entries.end(), entries.begin() + off,
                      entries.begin() + off + take);
    a->intervals.push_back(ArenaInterval{
        thread, interval, node, start_pc, end_pc, begin,
        static_cast<std::uint32_t>(begin + take)});
    off += take;
    if (a->entries.size() >= cfg_.arena_entries) {
      publish(ln, a);
      ln.open = nullptr;
    }
  }
}

void IngestHub::flush(std::uint32_t lane) {
  Lane& ln = *lanes_[lane];
  if (ln.open == nullptr) return;
  if (ln.open->empty()) return;  // keep the empty arena open for reuse
  publish(ln, ln.open);
  ln.open = nullptr;
}

void IngestHub::count_drained(Lane& ln, const OalArena& arena) {
  ln.drained.fetch_add(1, std::memory_order_relaxed);
  ln.entries_drained.fetch_add(arena.entries.size(), std::memory_order_relaxed);
}

OalArena* IngestHub::try_pop() {
  const std::uint32_t n = lane_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    Lane& ln = *lanes_[(rr_ + i) % n];
    OalArena* a = nullptr;
    if (ln.outbound.pop(a)) {
      rr_ = (rr_ + i + 1) % n;
      count_drained(ln, *a);
      return a;
    }
  }
  return nullptr;
}

void IngestHub::recycle(OalArena* arena) {
  Lane& ln = *lanes_[arena->lane];
  arena->clear();
  ln.spare.push_back(arena);
  // Top up the recycle ring from the spare pile (LIFO is fine: recycled
  // arenas are interchangeable).
  while (!ln.spare.empty() && ln.recycled.push(ln.spare.back())) {
    ln.spare.pop_back();
  }
}

std::vector<OalArena*> IngestHub::take_stranded() {
  std::vector<OalArena*> out;
  const std::uint32_t n = lane_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    Lane& ln = *lanes_[i];
    // Parked first (they were published before anything still open).
    while (!ln.parked.empty()) {
      OalArena* a = ln.parked.front();
      ln.parked.pop_front();
      count_drained(ln, *a);
      out.push_back(a);
    }
    if (ln.open != nullptr && !ln.open->empty()) {
      OalArena* a = ln.open;
      ln.open = nullptr;
      // Open arenas were never published: count both sides here so the
      // published == drained invariant closes.
      ln.published.fetch_add(1, std::memory_order_relaxed);
      ln.entries_published.fetch_add(a->entries.size(),
                                     std::memory_order_relaxed);
      count_drained(ln, *a);
      out.push_back(a);
    }
  }
  return out;
}

IngestCounters IngestHub::counters() const {
  IngestCounters c;
  const std::uint32_t n = lane_count_.load(std::memory_order_acquire);
  for (std::uint32_t i = 0; i < n; ++i) {
    const Lane& ln = *lanes_[i];
    c.arenas_published += ln.published.load(std::memory_order_relaxed);
    c.entries_published += ln.entries_published.load(std::memory_order_relaxed);
    c.backpressure_events += ln.backpressure.load(std::memory_order_relaxed);
    c.arenas_drained += ln.drained.load(std::memory_order_relaxed);
    c.entries_drained += ln.entries_drained.load(std::memory_order_relaxed);
    c.arenas_allocated += ln.allocated.load(std::memory_order_relaxed);
  }
  return c;
}

}  // namespace djvm
