#include "profiling/distributed_tcm.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

namespace djvm {

std::uint64_t NodePartial::wire_bytes() const noexcept {
  std::uint64_t bytes = 16;  // header
  for (const ObjectAccessSummary& s : summaries) {
    bytes += 8 + s.readers.size() * 12;  // object id + (thread, bytes) pairs
  }
  return bytes;
}

std::vector<NodePartial> DistributedTcmReducer::local_reduce(
    std::span<const IntervalRecord> records, bool weighted) {
  // One pass over the records, maintaining a per-node object index — no
  // record copies (each worker node reduces only what it produced).
  struct NodeState {
    std::size_t partial_index;
    std::unordered_map<ObjectId, std::size_t> index;
  };
  std::unordered_map<NodeId, NodeState> by_node;
  std::vector<NodePartial> out;

  for (const IntervalRecord& r : records) {
    auto [nit, fresh] = by_node.try_emplace(r.node, NodeState{out.size(), {}});
    if (fresh) {
      NodePartial p;
      p.node = r.node;
      out.push_back(std::move(p));
    }
    NodeState& ns = nit->second;
    auto& summaries = out[ns.partial_index].summaries;
    for (const OalEntry& e : r.entries) {
      const double bytes = weighted
                               ? static_cast<double>(e.bytes) * e.gap
                               : static_cast<double>(e.bytes);
      auto [oit, inserted] = ns.index.try_emplace(e.obj, summaries.size());
      if (inserted) {
        summaries.push_back(ObjectAccessSummary{e.obj, {}});
      }
      auto& readers = summaries[oit->second].readers;
      auto rit = std::find_if(readers.begin(), readers.end(),
                              [&](const auto& p) { return p.first == r.thread; });
      if (rit == readers.end()) {
        readers.emplace_back(r.thread, bytes);
      } else {
        rit->second = std::max(rit->second, bytes);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const NodePartial& a, const NodePartial& b) { return a.node < b.node; });
  return out;
}

namespace {

using ObjectIndex = std::unordered_map<ObjectId, std::size_t>;

void merge_indexed(NodePartial& a, ObjectIndex& index, NodePartial& b) {
  // The child partial is consumed: fresh objects move their reader lists
  // over instead of reallocating them (the merge is allocation-bound).
  for (ObjectAccessSummary& s : b.summaries) {
    auto [it, inserted] = index.try_emplace(s.obj, a.summaries.size());
    if (inserted) {
      a.summaries.push_back(std::move(s));
      continue;
    }
    auto& readers = a.summaries[it->second].readers;
    for (const auto& [tid, bytes] : s.readers) {
      auto rit = std::find_if(readers.begin(), readers.end(),
                              [&](const auto& p) { return p.first == tid; });
      if (rit == readers.end()) {
        readers.emplace_back(tid, bytes);
      } else {
        rit->second = std::max(rit->second, bytes);
      }
    }
  }
}

}  // namespace

void DistributedTcmReducer::merge(NodePartial& a, const NodePartial& b) {
  ObjectIndex index;
  index.reserve(a.summaries.size());
  for (std::size_t i = 0; i < a.summaries.size(); ++i) {
    index.emplace(a.summaries[i].obj, i);
  }
  NodePartial copy = b;  // public API keeps b intact; tree_reduce moves
  merge_indexed(a, index, copy);
}

NodePartial DistributedTcmReducer::tree_reduce(std::vector<NodePartial> partials,
                                               Network* net) {
  if (partials.empty()) return NodePartial{};
  // Binary tree: in each round, partial i+stride merges into partial i.
  // Destination indices persist across rounds so each surviving partial's
  // object index is built exactly once.
  std::vector<ObjectIndex> indices(partials.size());
  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      NodePartial& child = partials[i + stride];
      if (net != nullptr) {
        net->send({child.node, partials[i].node, MsgCategory::kOal,
                   child.wire_bytes(), false});
      }
      if (indices[i].empty() && !partials[i].summaries.empty()) {
        indices[i].reserve(partials[i].summaries.size());
        for (std::size_t k = 0; k < partials[i].summaries.size(); ++k) {
          indices[i].emplace(partials[i].summaries[k].obj, k);
        }
      }
      merge_indexed(partials[i], indices[i], child);
    }
  }
  return std::move(partials.front());
}

SquareMatrix DistributedTcmReducer::accrue_parallel(
    std::span<const ObjectAccessSummary> summaries, std::uint32_t threads,
    unsigned threads_hw) {
  if (threads_hw <= 1 || summaries.size() < 1024) {
    return TcmBuilder::accrue(summaries, threads);
  }
  const unsigned workers = std::min<unsigned>(
      threads_hw, std::max(1u, std::thread::hardware_concurrency()));
  // Each worker folds its object shard into a sparse upper-triangular
  // accumulator; shards partition the *objects*, so the partials cover
  // disjoint object sets and merge by plain pair-array addition — no dense
  // N x N matrix per worker, and one densify at the end.
  std::vector<TcmAccumulator> partials(workers, TcmAccumulator(threads));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (summaries.size() + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(summaries.size(), lo + chunk);
      for (std::size_t k = lo; k < hi; ++k) {
        partials[w].add_readers(summaries[k].obj, summaries[k].readers);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  TcmAccumulator& merged = partials.front();
  for (unsigned w = 1; w < workers; ++w) {
    merged.merge_disjoint_objects(partials[w]);
  }
  return merged.dense();
}

SquareMatrix DistributedTcmReducer::build(std::span<const IntervalRecord> records,
                                          std::uint32_t threads, bool weighted,
                                          unsigned threads_hw, Network* net) {
  std::vector<NodePartial> partials = local_reduce(records, weighted);
  NodePartial merged = tree_reduce(std::move(partials), net);
  return accrue_parallel(merged.summaries, threads, threads_hw);
}

}  // namespace djvm
