#include "profiling/distributed_tcm.hpp"

#include <algorithm>
#include <thread>
#include <unordered_map>

#include "profiling/ingest.hpp"

namespace djvm {

std::uint64_t NodePartial::wire_bytes() const noexcept {
  std::uint64_t bytes = 16;  // header
  for (const ObjectAccessSummary& s : summaries) {
    bytes += 8 + s.readers.size() * 12;  // object id + (thread, bytes) pairs
  }
  return bytes;
}

std::uint64_t NodeCsrPartial::wire_bytes() const noexcept {
  // Same pricing as NodePartial: 16-byte header, 8 bytes per object id,
  // 12 bytes per (thread, bytes) reader entry.  CSR offsets are implicit in
  // the wire framing (length-prefixed reader runs), so they cost nothing.
  return 16 + arena.objects.size() * 8 + arena.readers.size() * 12;
}

std::vector<NodePartial> DistributedTcmReducer::local_reduce(
    std::span<const IntervalRecord> records, bool weighted) {
  // One pass over the records, maintaining a per-node object index — no
  // record copies (each worker node reduces only what it produced).
  struct NodeState {
    std::size_t partial_index;
    std::unordered_map<ObjectId, std::size_t> index;
  };
  std::unordered_map<NodeId, NodeState> by_node;
  std::vector<NodePartial> out;

  for (const IntervalRecord& r : records) {
    auto [nit, fresh] = by_node.try_emplace(r.node, NodeState{out.size(), {}});
    if (fresh) {
      NodePartial p;
      p.node = r.node;
      out.push_back(std::move(p));
    }
    NodeState& ns = nit->second;
    auto& summaries = out[ns.partial_index].summaries;
    for (const OalEntry& e : r.entries) {
      const double bytes = weighted
                               ? static_cast<double>(e.bytes) * e.gap
                               : static_cast<double>(e.bytes);
      auto [oit, inserted] = ns.index.try_emplace(e.obj, summaries.size());
      if (inserted) {
        summaries.push_back(ObjectAccessSummary{e.obj, {}});
      }
      auto& readers = summaries[oit->second].readers;
      auto rit = std::find_if(readers.begin(), readers.end(),
                              [&](const auto& p) { return p.first == r.thread; });
      if (rit == readers.end()) {
        readers.emplace_back(r.thread, bytes);
      } else {
        rit->second = std::max(rit->second, bytes);
      }
    }
  }
  std::sort(out.begin(), out.end(),
            [](const NodePartial& a, const NodePartial& b) { return a.node < b.node; });
  return out;
}

namespace {

/// Per-node bucket accumulator over a small node set: linear scan instead of
/// a hash map (cluster node counts are tens, not thousands, and the scan is
/// one cache line).
template <typename Bucket>
Bucket& node_bucket(std::vector<std::pair<NodeId, Bucket>>& buckets,
                    NodeId node) {
  for (auto& [id, b] : buckets) {
    if (id == node) return b;
  }
  buckets.emplace_back(node, Bucket{});
  return buckets.back().second;
}

}  // namespace

std::vector<NodeCsrPartial> DistributedTcmReducer::local_reduce_csr(
    std::span<const IntervalRecord> records, bool weighted,
    ArenaScratch& scratch) {
  std::vector<std::pair<NodeId, std::vector<const IntervalRecord*>>> buckets;
  for (const IntervalRecord& r : records) {
    node_bucket(buckets, r.node).push_back(&r);
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<NodeCsrPartial> out;
  out.reserve(buckets.size());
  for (auto& [node, recs] : buckets) {
    NodeCsrPartial p;
    p.node = node;
    p.arena = TcmBuilder::reorganize_arena(
        std::span<const IntervalRecord* const>(recs), weighted, scratch);
    out.push_back(std::move(p));
  }
  return out;
}

std::vector<NodeCsrPartial> DistributedTcmReducer::local_reduce_csr(
    std::span<const OalArena* const> logs, bool weighted,
    ArenaScratch& scratch) {
  // Bucket interval *slices* per node: one drained arena can mix slices from
  // many threads, and (with thread migration) many nodes.
  std::vector<std::pair<NodeId, std::vector<ArenaSliceRef>>> buckets;
  for (const OalArena* log : logs) {
    for (std::uint32_t s = 0; s < log->intervals.size(); ++s) {
      node_bucket(buckets, log->intervals[s].node)
          .push_back(ArenaSliceRef{log, s});
    }
  }
  std::sort(buckets.begin(), buckets.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  std::vector<NodeCsrPartial> out;
  out.reserve(buckets.size());
  for (auto& [node, slices] : buckets) {
    NodeCsrPartial p;
    p.node = node;
    p.arena = TcmBuilder::reorganize_arena(
        std::span<const ArenaSliceRef>(slices), weighted, scratch);
    out.push_back(std::move(p));
  }
  return out;
}

namespace {

using ObjectIndex = std::unordered_map<ObjectId, std::size_t>;

void merge_indexed(NodePartial& a, ObjectIndex& index, NodePartial& b) {
  // The child partial is consumed: fresh objects move their reader lists
  // over instead of reallocating them (the merge is allocation-bound).
  for (ObjectAccessSummary& s : b.summaries) {
    auto [it, inserted] = index.try_emplace(s.obj, a.summaries.size());
    if (inserted) {
      a.summaries.push_back(std::move(s));
      continue;
    }
    auto& readers = a.summaries[it->second].readers;
    for (const auto& [tid, bytes] : s.readers) {
      auto rit = std::find_if(readers.begin(), readers.end(),
                              [&](const auto& p) { return p.first == tid; });
      if (rit == readers.end()) {
        readers.emplace_back(tid, bytes);
      } else {
        rit->second = std::max(rit->second, bytes);
      }
    }
  }
}

}  // namespace

void DistributedTcmReducer::merge(NodePartial& a, const NodePartial& b) {
  ObjectIndex index;
  index.reserve(a.summaries.size());
  for (std::size_t i = 0; i < a.summaries.size(); ++i) {
    index.emplace(a.summaries[i].obj, i);
  }
  NodePartial copy = b;  // public API keeps b intact; tree_reduce moves
  merge_indexed(a, index, copy);
}

NodePartial DistributedTcmReducer::tree_reduce(std::vector<NodePartial> partials,
                                               Network* net,
                                               std::vector<NodeId>* lost_nodes) {
  if (partials.empty()) return NodePartial{};
  // Binary tree: in each round, partial i+stride merges into partial i.
  // Destination indices persist across rounds so each surviving partial's
  // object index is built exactly once.
  std::vector<ObjectIndex> indices(partials.size());
  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      NodePartial& child = partials[i + stride];
      if (net != nullptr) {
        const SendOutcome o = net->send_reliable(
            {child.node, partials[i].node, MsgCategory::kOal,
             child.wire_bytes(), false});
        if (!o.delivered) {
          // The child's subtree never arrives: the merged map loses that
          // contribution (missing data, not wrong data).  The child keeps
          // its summaries so a later repair pass could re-ship them.
          if (lost_nodes != nullptr) lost_nodes->push_back(child.node);
          continue;
        }
      }
      if (indices[i].empty() && !partials[i].summaries.empty()) {
        indices[i].reserve(partials[i].summaries.size());
        for (std::size_t k = 0; k < partials[i].summaries.size(); ++k) {
          indices[i].emplace(partials[i].summaries[k].obj, k);
        }
      }
      merge_indexed(partials[i], indices[i], child);
    }
  }
  return std::move(partials.front());
}

void DistributedTcmReducer::merge_csr(NodeCsrPartial& a, const NodeCsrPartial& b,
                                      ArenaScratch& scratch) {
  a.arena = TcmBuilder::merge_arenas(a.arena, b.arena, scratch);
}

NodeCsrPartial DistributedTcmReducer::tree_reduce_csr(
    std::vector<NodeCsrPartial> partials, Network* net, ArenaScratch& scratch,
    std::vector<NodeId>* lost_nodes) {
  if (partials.empty()) return NodeCsrPartial{};
  // Same binary tree as tree_reduce; each level merges arena-to-arena
  // through the bucket sort, so no level re-hashes.
  for (std::size_t stride = 1; stride < partials.size(); stride *= 2) {
    for (std::size_t i = 0; i + stride < partials.size(); i += 2 * stride) {
      NodeCsrPartial& child = partials[i + stride];
      if (net != nullptr) {
        const SendOutcome o = net->send_reliable(
            {child.node, partials[i].node, MsgCategory::kOal,
             child.wire_bytes(), false});
        if (!o.delivered) {
          if (lost_nodes != nullptr) lost_nodes->push_back(child.node);
          child.arena = ReaderArena{};  // undeliverable; free its buffers
          continue;
        }
      }
      merge_csr(partials[i], child, scratch);
      child.arena = ReaderArena{};  // free the consumed child's buffers
    }
  }
  return std::move(partials.front());
}

SquareMatrix DistributedTcmReducer::accrue_parallel(const ReaderArena& arena,
                                                    std::uint32_t threads,
                                                    unsigned threads_hw) {
  if (threads_hw <= 1 || arena.object_count() < 1024) {
    return TcmBuilder::accrue_sparse(arena, threads).densify();
  }
  const unsigned workers = std::min<unsigned>(
      threads_hw, std::max(1u, std::thread::hardware_concurrency()));
  // The CSR offsets give natural object shards: worker w accrues objects
  // [lo, hi) into a private upper-triangular accumulator, and the partials
  // sum cell-wise at the end — disjoint object ranges contribute independent
  // pair updates, so no synchronization inside the loop.
  std::vector<UpperTriangle> partials(workers, UpperTriangle(threads));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (arena.object_count() + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(arena.object_count(), lo + chunk);
      UpperTriangle& pairs = partials[w];
      for (std::size_t k = lo; k < hi; ++k) {
        const auto r = arena.readers_of(k);
        for (std::size_t i = 0; i < r.size(); ++i) {
          if (r[i].first >= threads) continue;
          for (std::size_t j = i + 1; j < r.size(); ++j) {
            if (r[j].first >= threads) continue;
            pairs.add(r[i].first, r[j].first,
                      std::min(r[i].second, r[j].second));
          }
        }
      }
    });
  }
  for (std::thread& t : pool) t.join();
  UpperTriangle& merged = partials.front();
  for (unsigned w = 1; w < workers; ++w) {
    merged += partials[w];
  }
  return merged.densify();
}

SquareMatrix DistributedTcmReducer::accrue_parallel(
    std::span<const ObjectAccessSummary> summaries, std::uint32_t threads,
    unsigned threads_hw) {
  if (threads_hw <= 1 || summaries.size() < 1024) {
    return TcmBuilder::accrue(summaries, threads);
  }
  const unsigned workers = std::min<unsigned>(
      threads_hw, std::max(1u, std::thread::hardware_concurrency()));
  // Each worker folds its object shard into a sparse upper-triangular
  // accumulator; shards partition the *objects*, so the partials cover
  // disjoint object sets and merge by plain pair-array addition — no dense
  // N x N matrix per worker, and one densify at the end.
  std::vector<TcmAccumulator> partials(workers, TcmAccumulator(threads));
  std::vector<std::thread> pool;
  pool.reserve(workers);
  const std::size_t chunk = (summaries.size() + workers - 1) / workers;
  for (unsigned w = 0; w < workers; ++w) {
    pool.emplace_back([&, w] {
      const std::size_t lo = w * chunk;
      const std::size_t hi = std::min(summaries.size(), lo + chunk);
      for (std::size_t k = lo; k < hi; ++k) {
        partials[w].add_readers(summaries[k].obj, summaries[k].readers);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  TcmAccumulator& merged = partials.front();
  for (unsigned w = 1; w < workers; ++w) {
    merged.merge_disjoint_objects(partials[w]);
  }
  return merged.dense();
}

SquareMatrix DistributedTcmReducer::build(std::span<const IntervalRecord> records,
                                          std::uint32_t threads, bool weighted,
                                          unsigned threads_hw, Network* net,
                                          std::vector<NodeId>* lost_nodes) {
  ArenaScratch scratch;
  std::vector<NodeCsrPartial> partials =
      local_reduce_csr(records, weighted, scratch);
  NodeCsrPartial merged =
      tree_reduce_csr(std::move(partials), net, scratch, lost_nodes);
  return accrue_parallel(merged.arena, threads, threads_hw);
}

SquareMatrix DistributedTcmReducer::build(std::span<const OalArena* const> logs,
                                          std::uint32_t threads, bool weighted,
                                          unsigned threads_hw, Network* net,
                                          std::vector<NodeId>* lost_nodes) {
  ArenaScratch scratch;
  std::vector<NodeCsrPartial> partials =
      local_reduce_csr(logs, weighted, scratch);
  NodeCsrPartial merged =
      tree_reduce_csr(std::move(partials), net, scratch, lost_nodes);
  return accrue_parallel(merged.arena, threads, threads_hw);
}

}  // namespace djvm
