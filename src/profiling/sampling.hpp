// Adaptive per-class object sampling (paper Section II.B).
//
// Each class carries a *nominal* sampling gap (a power of two) and a *real*
// gap (the nearest prime, to defeat cyclic allocation patterns).  An object
// is sampled iff one of its sequence numbers is divisible by the real gap;
// arrays own one sequence number per element, and a sampled array logs an
// *amortized* sample size of (sampled elements x element size) instead of its
// full length, which keeps correlation estimates unbiased across array sizes.
//
// Rates use the paper's nX notation: "nX" = n sampled objects per 4 KB page,
// i.e. nominal gap = page_size / (instance_size * n), clamped to >= 1 (full).
//
// On top of the cluster-wide per-class gap, each worker node may carry a
// *gap shift* per class: the node's effective nominal gap is the class gap
// doubled `shift` times (effective real gap = its nearest prime).
//
// Sampling state is kept **per cached copy**, the paper's cost model: "upon
// receiving a change notice for a specific class, every thread will iterate
// through all objects of that class *it caches*".  Each node reads (and
// recomputes) the sampled bit of its own copy under its *own* effective gap,
// so a per-(node, class) shift changes what that node samples and logs — and
// the resampling walk it pays for covers the objects it caches, not the
// objects it happens to home.  The legacy home-node model (the object's home
// owns one cluster-wide bit; resampling visits are billed to homes) is kept
// behind CostAttribution::kHomeNode for ablation benches.
#pragma once

#include <algorithm>
#include <cstdint>
#include <vector>

#include "common/config.hpp"
#include "common/types.hpp"
#include "runtime/heap.hpp"

namespace djvm {

/// Per-class activity accumulated over one daemon epoch, the governor's
/// benefit/cost input: `entries` drives the cost side (each OAL entry pays
/// fixed CPU + wire bytes), `estimated_bytes` (Horvitz-Thompson scaled) the
/// benefit side (correlation information contributed to the TCM).
struct ClassEpochStats {
  std::uint64_t entries = 0;
  std::uint64_t estimated_bytes = 0;  ///< logged bytes x gap (HT estimate)
};

/// Read-only view of the GOS per-node copy sets.  The plan uses it to walk
/// exactly the copies a node caches during per-node resampling passes and to
/// attribute cluster-wide resampling visits to every caching node.  Without
/// a registered view (standalone plans in unit tests) each object is treated
/// as cached only at its home, which degenerates to the home-node model.
class CopySetView {
 public:
  virtual ~CopySetView() = default;
  /// True when `node` currently holds a valid (or home) copy of `obj`.
  [[nodiscard]] virtual bool node_has_copy(NodeId node, ObjectId obj) const = 0;
  /// Number of nodes in the cluster the copy sets span.
  [[nodiscard]] virtual std::uint32_t copy_node_count() const = 0;
};

/// Cluster-wide sampling state: per-class gaps plus cached sampled bits and
/// amortized sample sizes (recomputed on rate changes, the paper's
/// "resampling" pass).  The base arrays hold the cluster view (no shift);
/// nodes carrying gap shifts get their own per-copy view on top.
class SamplingPlan {
 public:
  explicit SamplingPlan(Heap& heap);

  // --- rate configuration --------------------------------------------------
  /// Applies rate `rate_x` (nX) to every registered class and makes it the
  /// default inherited by classes registered later; 0 = full sampling.
  void set_rate_all(std::uint32_t rate_x);

  /// Applies rate `rate_x` to one class; 0 = full sampling.
  void set_rate(ClassId id, std::uint32_t rate_x);

  /// Sets a class's nominal gap directly (real gap = nearest prime; a
  /// nominal gap of 1 means full sampling, real gap 1).
  void set_nominal_gap(ClassId id, std::uint32_t nominal);

  /// Halves the class's nominal gap (doubles its sampling rate); saturates
  /// at full sampling.  Returns the new nominal gap.
  std::uint32_t halve_gap(ClassId id);

  /// Doubles the class's nominal gap (halves its rate).
  std::uint32_t double_gap(ClassId id);

  [[nodiscard]] std::uint32_t real_gap(ClassId id) const;
  [[nodiscard]] std::uint32_t nominal_gap(ClassId id) const;

  // --- cost attribution model ----------------------------------------------
  /// Switches between the cached-copy model (default: each caching node owns
  /// its copy's bit and pays its own resampling) and the legacy home-node
  /// model (one cluster-wide bit under the home's gap, visits billed to
  /// homes).  Changing the model recomputes every bit.
  void set_cost_attribution(CostAttribution mode);
  [[nodiscard]] CostAttribution cost_attribution() const noexcept {
    return attribution_;
  }

  /// Registers (or clears, with nullptr) the GOS copy sets the resampling
  /// walks iterate.  The view must outlive its registration; the GOS
  /// deregisters itself on destruction.
  void set_copy_view(const CopySetView* view) noexcept { copies_ = view; }
  [[nodiscard]] const CopySetView* copy_view() const noexcept { return copies_; }

  // --- per-(node, class) effective gaps -------------------------------------
  /// Sets `node`'s backoff shift for class `id` (effective nominal gap =
  /// class nominal << shift).  A shift of 0 restores the cluster gap.  Does
  /// not resample; pair with resample_classes_on_node.
  void set_node_gap_shift(NodeId node, ClassId id, std::uint32_t shift);
  [[nodiscard]] std::uint32_t node_gap_shift(NodeId node, ClassId id) const;
  /// Drops every per-node shift back to the cluster view (snapshot loads and
  /// governor re-arms).  Does not resample.
  void clear_node_gap_shifts();
  /// True when any (node, class) carries a nonzero shift.
  [[nodiscard]] bool has_node_gap_shifts() const;
  /// Number of node rows in the shift table (<= cluster nodes; rows appear
  /// when a node first receives a shift).
  [[nodiscard]] std::size_t shift_node_count() const noexcept {
    return node_shift_.size();
  }
  [[nodiscard]] std::uint32_t effective_nominal_gap(NodeId node, ClassId id) const;
  [[nodiscard]] std::uint32_t effective_real_gap(NodeId node, ClassId id) const;

  /// The nX rate implied by `rate_x` for a class of instance size `s`:
  /// nominal gap = max(1, page / (s * n)).  Exposed for tests.
  [[nodiscard]] static std::uint32_t nominal_gap_for_rate(std::uint32_t instance_size,
                                                          std::uint32_t rate_x);

  // --- per-object queries (hot path) ---------------------------------------
  /// Cluster-view sampled bit (under the class base gap; under the home
  /// node's effective gap in the legacy home-node model).
  [[nodiscard]] bool is_sampled(ObjectId obj) const {
    return obj < sampled_.size() && sampled_[static_cast<std::size_t>(obj)] != 0;
  }
  /// Sampled bit of `node`'s copy, under that node's effective gap.  Nodes
  /// without a per-copy view (no shifts) read the cluster view.
  [[nodiscard]] bool is_sampled(NodeId node, ObjectId obj) const {
    const auto ni = static_cast<std::size_t>(node);
    if (ni < node_views_.size() && node_views_[ni].active) [[unlikely]] {
      const NodeView& v = node_views_[ni];
      return obj < v.sampled.size() && v.sampled[static_cast<std::size_t>(obj)] != 0;
    }
    return is_sampled(obj);
  }
  /// Amortized sample size in bytes (0 when unsampled): full object size for
  /// scalars, sampled_elements x element_size for arrays.
  [[nodiscard]] std::uint32_t sample_bytes(ObjectId obj) const {
    return obj < sample_bytes_.size() ? sample_bytes_[static_cast<std::size_t>(obj)] : 0;
  }
  /// Amortized sample size of `node`'s copy under that node's effective gap.
  [[nodiscard]] std::uint32_t sample_bytes(NodeId node, ObjectId obj) const {
    const auto ni = static_cast<std::size_t>(node);
    if (ni < node_views_.size() && node_views_[ni].active) [[unlikely]] {
      const NodeView& v = node_views_[ni];
      return obj < v.bytes.size() ? v.bytes[static_cast<std::size_t>(obj)] : 0;
    }
    return sample_bytes(obj);
  }
  /// Gap cached per object at the last (re)sample, so the logging hot path
  /// avoids a registry lookup.  Out-of-range objects (never registered with
  /// the plan) report 0 = unsampled — returning 1 here would treat an
  /// unknown object as sampled-every-access and inflate Horvitz-Thompson
  /// estimates built from its entries.
  [[nodiscard]] std::uint32_t gap_of(ObjectId obj) const {
    return obj < sample_gap_.size() ? sample_gap_[static_cast<std::size_t>(obj)] : 0;
  }
  /// Gap of `node`'s copy at its last (re)sample (0 = unregistered).
  [[nodiscard]] std::uint32_t gap_of(NodeId node, ObjectId obj) const {
    const auto ni = static_cast<std::size_t>(node);
    if (ni < node_views_.size() && node_views_[ni].active) [[unlikely]] {
      const NodeView& v = node_views_[ni];
      return obj < v.gap.size() ? v.gap[static_cast<std::size_t>(obj)] : 0;
    }
    return gap_of(obj);
  }
  /// Horvitz-Thompson estimate of the object's full byte contribution:
  /// sample_bytes x gap.  For arrays this reconstructs ~ length x elem size;
  /// for scalars, size x gap compensates the 1/gap selection probability.
  [[nodiscard]] std::uint64_t estimated_full_bytes(ObjectId obj) const;

  // --- maintenance ----------------------------------------------------------
  /// Tags a freshly allocated object (called from the GOS allocation path).
  void on_alloc(ObjectId obj);

  /// Re-registers a copy's sampled bit when `node` faults it in (or
  /// prefetches it): the bit is recomputed under the *caching* node's
  /// current effective gap, so a copy fetched after a shift moved is never
  /// read stale.  Also counts the registration (snapshot v3 summary).
  void note_copy_registered(NodeId node, ObjectId obj);

  /// Home migration: recomputes the object's bits so the legacy home-node
  /// model re-keys it under the *new* home's gap shift immediately (instead
  /// of keeping the old home's decision until the next full resample), and
  /// re-registers the old home's now-cached copy.
  void on_home_migrated(ObjectId obj, NodeId from, NodeId to);

  /// Recomputes sampled bits for every object of class `id` ("Upon receiving
  /// a change notice for a specific class, every thread will iterate through
  /// all objects of that class it caches...").  Returns copy visits paid:
  /// one per (caching node, object) pair under cached-copy attribution, one
  /// per object under the home-node model.
  std::size_t resample_class(ClassId id);

  /// Recomputes sampled bits for every object of the listed classes in a
  /// single heap pass (rate changes touching several classes would
  /// otherwise pay one full scan per class).  Returns copy visits paid.
  std::size_t resample_classes(const std::vector<ClassId>& ids);

  /// Like resample_classes, but walks only the objects `node` actually
  /// caches (home copies included) and recomputes that node's view alone —
  /// a per-node gap shift only invalidates that node's copy bits.  Under
  /// the home-node model the walk degenerates to objects homed at `node`.
  std::size_t resample_classes_on_node(NodeId node, const std::vector<ClassId>& ids);

  /// Full resampling pass over the heap; returns copy visits paid.
  std::size_t resample_all();

  /// Copy visits paid by resampling passes since the last drain, attributed
  /// to the node that did the walk (the node caching the copy pays the
  /// recompute).  The daemon drains this to build per-node overhead samples.
  [[nodiscard]] std::vector<std::uint64_t> drain_resampled_by_node();

  // --- per-node copy bookkeeping (snapshot v3 summary) ----------------------
  /// Cumulative copy-bit registrations on `node` (fault-ins, prefetches,
  /// re-registrations after home migration).
  [[nodiscard]] std::uint64_t copy_registrations(NodeId node) const {
    return node < copy_registrations_.size() ? copy_registrations_[node] : 0;
  }
  /// Cumulative resampling copy visits `node` has paid (never drained).
  [[nodiscard]] std::uint64_t resample_visits(NodeId node) const {
    return node < resample_visits_.size() ? resample_visits_[node] : 0;
  }
  /// Node rows present in either bookkeeping counter.
  [[nodiscard]] std::size_t bookkeeping_node_count() const noexcept {
    return std::max(copy_registrations_.size(), resample_visits_.size());
  }
  /// Restores the bookkeeping counters from a snapshot (absolute values;
  /// the decode path calls this after its own resample so the restored
  /// totals are exactly the stored ones).
  void seed_copy_bookkeeping(std::vector<std::uint64_t> registrations,
                             std::vector<std::uint64_t> visits);

  /// Count of sampled elements in an array [start_seq, start_seq+len) under
  /// gap `g` (number of multiples of g in that range).  Exposed for tests.
  [[nodiscard]] static std::uint32_t sampled_elements(std::uint32_t start_seq,
                                                      std::uint32_t length,
                                                      std::uint32_t gap);

  /// Total number of cluster-view sampled objects (for tests/benches).
  [[nodiscard]] std::uint64_t sampled_count() const;
  /// Number of objects sampled in `node`'s effective view (its per-copy view
  /// when it has one, the cluster view otherwise).
  [[nodiscard]] std::uint64_t sampled_count(NodeId node) const;

  // --- per-epoch class stats (governor benefit/cost inputs) -----------------
  /// Resets the per-class accumulators (cluster and per-node) at the start
  /// of a daemon epoch.
  void begin_epoch_stats();
  /// Accumulates one OAL entry of class `id` (`gap` = real gap at logging).
  void note_epoch_entry(ClassId id, std::uint32_t bytes, std::uint32_t gap);
  /// Attributes one OAL entry to the worker node that logged it (the daemon
  /// reads the node off the interval record); cluster totals are kept by
  /// note_epoch_entry, which the daemon calls alongside.
  void note_epoch_node_entry(NodeId node, ClassId id, std::uint32_t bytes,
                             std::uint32_t gap);
  /// Per-class stats of the current epoch, indexed by ClassId (may be
  /// shorter than the registry if trailing classes logged nothing).
  [[nodiscard]] const std::vector<ClassEpochStats>& epoch_stats() const noexcept {
    return epoch_stats_;
  }
  /// Per-node per-class stats of the current epoch, indexed [node][class]
  /// (rows appear when a node first logs; may be shorter than the cluster).
  [[nodiscard]] const std::vector<std::vector<ClassEpochStats>>& node_epoch_stats()
      const noexcept {
    return node_epoch_stats_;
  }

  [[nodiscard]] const Heap& heap() const noexcept { return heap_; }
  [[nodiscard]] Heap& heap() noexcept { return heap_; }

 private:
  /// Per-copy view of one node carrying gap shifts: the sampled bit,
  /// amortized bytes, and gap of *this node's* copy of each object.
  /// Materialized lazily (copied from the cluster view) when the node first
  /// receives a shift; inactive nodes read the base arrays.
  struct NodeView {
    bool active = false;
    std::vector<std::uint8_t> sampled;
    std::vector<std::uint32_t> bytes;
    std::vector<std::uint32_t> gap;
  };

  void recompute(ObjectId obj);
  void recompute_node_view(NodeView& view, NodeId node, ObjectId obj);
  void ensure_node_view(NodeId node);
  /// True when `node` holds a copy of `obj` (home counts); falls back to
  /// home-only when no copy view is registered.
  [[nodiscard]] bool node_caches(NodeId node, ObjectId obj) const;
  /// Charges one cluster-resample visit of `obj` to every caching node and
  /// returns the visits charged.
  std::size_t note_resampled_copies(ObjectId obj);
  /// Re-derives the cached effective real gap for (node, id) after the
  /// class's base gap or the node's shift moved.
  void refresh_node_gap(NodeId node, ClassId id);
  void note_resampled(NodeId payer) {
    if (resampled_by_node_.size() <= payer) resampled_by_node_.resize(payer + 1, 0);
    ++resampled_by_node_[payer];
    if (resample_visits_.size() <= payer) resample_visits_.resize(payer + 1, 0);
    ++resample_visits_[payer];
  }

  Heap& heap_;
  std::uint32_t default_rate_x_ = 0;
  CostAttribution attribution_ = CostAttribution::kCachedCopy;
  const CopySetView* copies_ = nullptr;
  std::vector<std::uint8_t> sampled_;
  std::vector<std::uint32_t> sample_bytes_;
  std::vector<std::uint32_t> sample_gap_;
  std::vector<NodeView> node_views_;
  std::vector<ClassEpochStats> epoch_stats_;
  std::vector<std::vector<ClassEpochStats>> node_epoch_stats_;
  /// Per-node backoff doublings on top of the class nominal gap, and the
  /// cached effective real gap where the shift is nonzero (0 = use base).
  std::vector<std::vector<std::uint8_t>> node_shift_;
  std::vector<std::vector<std::uint32_t>> node_real_gap_;
  /// Drainable window of resample visits (per paying node) plus the
  /// cumulative totals and registration counts (snapshot v3 summary).
  std::vector<std::uint64_t> resampled_by_node_;
  std::vector<std::uint64_t> resample_visits_;
  std::vector<std::uint64_t> copy_registrations_;
};

}  // namespace djvm
