// Adaptive per-class object sampling (paper Section II.B).
//
// Each class carries a *nominal* sampling gap (a power of two) and a *real*
// gap (the nearest prime, to defeat cyclic allocation patterns).  An object
// is sampled iff one of its sequence numbers is divisible by the real gap;
// arrays own one sequence number per element, and a sampled array logs an
// *amortized* sample size of (sampled elements x element size) instead of its
// full length, which keeps correlation estimates unbiased across array sizes.
//
// Rates use the paper's nX notation: "nX" = n sampled objects per 4 KB page,
// i.e. nominal gap = page_size / (instance_size * n), clamped to >= 1 (full).
//
// On top of the cluster-wide per-class gap, each worker node may carry a
// *gap shift* per class: the node's effective nominal gap is the class gap
// doubled `shift` times (effective real gap = its nearest prime).  Objects
// apply the shift of their *home* node, so the per-node governor can coarsen
// one hot node's costliest classes without touching the rest of the cluster.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"
#include "runtime/heap.hpp"

namespace djvm {

/// Per-class activity accumulated over one daemon epoch, the governor's
/// benefit/cost input: `entries` drives the cost side (each OAL entry pays
/// fixed CPU + wire bytes), `estimated_bytes` (Horvitz-Thompson scaled) the
/// benefit side (correlation information contributed to the TCM).
struct ClassEpochStats {
  std::uint64_t entries = 0;
  std::uint64_t estimated_bytes = 0;  ///< logged bytes x gap (HT estimate)
};

/// Cluster-wide sampling state: per-class gaps plus per-object cached
/// sampled bits and amortized sample sizes (recomputed on rate changes, the
/// paper's "resampling" pass).
class SamplingPlan {
 public:
  explicit SamplingPlan(Heap& heap);

  // --- rate configuration --------------------------------------------------
  /// Applies rate `rate_x` (nX) to every registered class and makes it the
  /// default inherited by classes registered later; 0 = full sampling.
  void set_rate_all(std::uint32_t rate_x);

  /// Applies rate `rate_x` to one class; 0 = full sampling.
  void set_rate(ClassId id, std::uint32_t rate_x);

  /// Sets a class's nominal gap directly (real gap = nearest prime; a
  /// nominal gap of 1 means full sampling, real gap 1).
  void set_nominal_gap(ClassId id, std::uint32_t nominal);

  /// Halves the class's nominal gap (doubles its sampling rate); saturates
  /// at full sampling.  Returns the new nominal gap.
  std::uint32_t halve_gap(ClassId id);

  /// Doubles the class's nominal gap (halves its rate).
  std::uint32_t double_gap(ClassId id);

  [[nodiscard]] std::uint32_t real_gap(ClassId id) const;
  [[nodiscard]] std::uint32_t nominal_gap(ClassId id) const;

  // --- per-(node, class) effective gaps -------------------------------------
  /// Sets `node`'s backoff shift for class `id` (effective nominal gap =
  /// class nominal << shift).  A shift of 0 restores the cluster gap.  Does
  /// not resample; pair with resample_classes_on_node.
  void set_node_gap_shift(NodeId node, ClassId id, std::uint32_t shift);
  [[nodiscard]] std::uint32_t node_gap_shift(NodeId node, ClassId id) const;
  /// Drops every per-node shift back to the cluster view (snapshot loads and
  /// governor re-arms).  Does not resample.
  void clear_node_gap_shifts();
  /// True when any (node, class) carries a nonzero shift.
  [[nodiscard]] bool has_node_gap_shifts() const;
  /// Number of node rows in the shift table (<= cluster nodes; rows appear
  /// when a node first receives a shift).
  [[nodiscard]] std::size_t shift_node_count() const noexcept {
    return node_shift_.size();
  }
  [[nodiscard]] std::uint32_t effective_nominal_gap(NodeId node, ClassId id) const;
  [[nodiscard]] std::uint32_t effective_real_gap(NodeId node, ClassId id) const;

  /// The nX rate implied by `rate_x` for a class of instance size `s`:
  /// nominal gap = max(1, page / (s * n)).  Exposed for tests.
  [[nodiscard]] static std::uint32_t nominal_gap_for_rate(std::uint32_t instance_size,
                                                          std::uint32_t rate_x);

  // --- per-object queries (hot path) ---------------------------------------
  [[nodiscard]] bool is_sampled(ObjectId obj) const {
    return obj < sampled_.size() && sampled_[static_cast<std::size_t>(obj)] != 0;
  }
  /// Amortized sample size in bytes (0 when unsampled): full object size for
  /// scalars, sampled_elements x element_size for arrays.
  [[nodiscard]] std::uint32_t sample_bytes(ObjectId obj) const {
    return obj < sample_bytes_.size() ? sample_bytes_[static_cast<std::size_t>(obj)] : 0;
  }
  /// Class gap cached per object at the last (re)sample, so the logging hot
  /// path avoids a registry lookup.
  [[nodiscard]] std::uint32_t gap_of(ObjectId obj) const {
    return obj < sample_gap_.size() ? sample_gap_[static_cast<std::size_t>(obj)] : 1;
  }
  /// Horvitz-Thompson estimate of the object's full byte contribution:
  /// sample_bytes x gap.  For arrays this reconstructs ~ length x elem size;
  /// for scalars, size x gap compensates the 1/gap selection probability.
  [[nodiscard]] std::uint64_t estimated_full_bytes(ObjectId obj) const;

  // --- maintenance ----------------------------------------------------------
  /// Tags a freshly allocated object (called from the GOS allocation path).
  void on_alloc(ObjectId obj);

  /// Recomputes sampled bits for every object of class `id` ("Upon receiving
  /// a change notice for a specific class, every thread will iterate through
  /// all objects of that class it caches...").  Returns objects visited.
  std::size_t resample_class(ClassId id);

  /// Recomputes sampled bits for every object of the listed classes in a
  /// single heap pass (rate changes touching several classes would
  /// otherwise pay one full scan per class).  Returns objects visited.
  std::size_t resample_classes(const std::vector<ClassId>& ids);

  /// Like resample_classes, but only objects homed at `node` (a per-node gap
  /// shift only invalidates that node's cached sampled bits).
  std::size_t resample_classes_on_node(NodeId node, const std::vector<ClassId>& ids);

  /// Full resampling pass over the heap; returns objects visited.
  std::size_t resample_all();

  /// Objects visited by resampling passes since the last drain, attributed
  /// to each object's home node (the node that pays the recompute).  The
  /// daemon drains this to build per-node overhead samples.
  [[nodiscard]] std::vector<std::uint64_t> drain_resampled_by_node();

  /// Count of sampled elements in an array [start_seq, start_seq+len) under
  /// gap `g` (number of multiples of g in that range).  Exposed for tests.
  [[nodiscard]] static std::uint32_t sampled_elements(std::uint32_t start_seq,
                                                      std::uint32_t length,
                                                      std::uint32_t gap);

  /// Total number of currently sampled objects (for tests/benches).
  [[nodiscard]] std::uint64_t sampled_count() const;

  // --- per-epoch class stats (governor benefit/cost inputs) -----------------
  /// Resets the per-class accumulators (cluster and per-node) at the start
  /// of a daemon epoch.
  void begin_epoch_stats();
  /// Accumulates one OAL entry of class `id` (`gap` = real gap at logging).
  void note_epoch_entry(ClassId id, std::uint32_t bytes, std::uint32_t gap);
  /// Attributes one OAL entry to the worker node that logged it (the daemon
  /// reads the node off the interval record); cluster totals are kept by
  /// note_epoch_entry, which the daemon calls alongside.
  void note_epoch_node_entry(NodeId node, ClassId id, std::uint32_t bytes,
                             std::uint32_t gap);
  /// Per-class stats of the current epoch, indexed by ClassId (may be
  /// shorter than the registry if trailing classes logged nothing).
  [[nodiscard]] const std::vector<ClassEpochStats>& epoch_stats() const noexcept {
    return epoch_stats_;
  }
  /// Per-node per-class stats of the current epoch, indexed [node][class]
  /// (rows appear when a node first logs; may be shorter than the cluster).
  [[nodiscard]] const std::vector<std::vector<ClassEpochStats>>& node_epoch_stats()
      const noexcept {
    return node_epoch_stats_;
  }

  [[nodiscard]] const Heap& heap() const noexcept { return heap_; }
  [[nodiscard]] Heap& heap() noexcept { return heap_; }

 private:
  void recompute(ObjectId obj);
  /// Re-derives the cached effective real gap for (node, id) after the
  /// class's base gap or the node's shift moved.
  void refresh_node_gap(NodeId node, ClassId id);
  void note_resampled(NodeId home) {
    if (resampled_by_node_.size() <= home) resampled_by_node_.resize(home + 1, 0);
    ++resampled_by_node_[home];
  }

  Heap& heap_;
  std::uint32_t default_rate_x_ = 0;
  std::vector<std::uint8_t> sampled_;
  std::vector<std::uint32_t> sample_bytes_;
  std::vector<std::uint32_t> sample_gap_;
  std::vector<ClassEpochStats> epoch_stats_;
  std::vector<std::vector<ClassEpochStats>> node_epoch_stats_;
  /// Per-node backoff doublings on top of the class nominal gap, and the
  /// cached effective real gap where the shift is nonzero (0 = use base).
  std::vector<std::vector<std::uint8_t>> node_shift_;
  std::vector<std::vector<std::uint32_t>> node_real_gap_;
  std::vector<std::uint64_t> resampled_by_node_;
};

}  // namespace djvm
