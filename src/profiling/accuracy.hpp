// Correlation-map accuracy metrics (paper Section II.B.2, formulae 1 and 2).
//
// Given two TCMs A and B, the distance is
//   E_EUC = sqrt(sum (a_ij - b_ij)^2) / sqrt(sum b_ij^2)      (eq. 1)
//   E_ABS = sum |a_ij - b_ij| / sum b_ij                      (eq. 2)
// and accuracy = 1 - E.  When B is the full-sampling map, this is *absolute*
// accuracy; when both are sampled and A samples less frequently than B, it is
// *relative* accuracy (the only kind the online controller can observe).
#pragma once

#include "common/matrix.hpp"

namespace djvm {

/// Euclidean (Frobenius) relative distance, eq. (1).
[[nodiscard]] double euclidean_error(const SquareMatrix& a, const SquareMatrix& b);

/// Absolute relative distance, eq. (2).
[[nodiscard]] double absolute_error(const SquareMatrix& a, const SquareMatrix& b);

/// 1 - E, clamped to [0, 1].
[[nodiscard]] double accuracy_from_error(double error);

}  // namespace djvm
