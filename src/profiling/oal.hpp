// Object access lists (OALs) and per-interval records (paper Section II.A).
//
// By the at-most-once property of HLRC, a thread logs each sampled shared
// object at most once per interval.  On interval close the OAL — accessed
// object id and (amortized) size — is packed with the interval context into a
// jumbo message for the central coordinator, piggybacked on lock/barrier
// traffic when possible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace djvm {

/// One OAL entry.  `bytes` is the amortized sample size at logging time;
/// `gap` is the class's real sampling gap at logging time so the TCM builder
/// can apply Horvitz-Thompson scaling even after later rate changes.
struct OalEntry {
  ObjectId obj = kInvalidObject;
  ClassId klass = kInvalidClass;
  std::uint32_t bytes = 0;
  std::uint32_t gap = 1;
};

/// Wire size of one OAL entry: the paper ships "accessed object id and size"
/// — the id and byte fields exactly.  `klass` and `gap` are coordinator-side
/// context reconstructed from the id, never shipped, so they do not appear
/// in the sum.  Derived from the shipped fields so adding or widening one
/// moves the constant with it (a hand-kept 12 silently under-bills traffic).
inline constexpr std::uint64_t kOalEntryWireBytes =
    sizeof(OalEntry::obj) + sizeof(OalEntry::bytes);
static_assert(kOalEntryWireBytes == 12,
              "OAL wire entry is an 8-byte object id + 4-byte size; a shipped "
              "field changed — update every reader of kOalEntryWireBytes");
static_assert(sizeof(OalEntry) == 24,
              "OalEntry gained or lost a field; decide whether it ships and "
              "update kOalEntryWireBytes accordingly");

/// A closed interval's access log, as shipped to the coordinator.
struct IntervalRecord {
  ThreadId thread = kInvalidThread;
  IntervalId interval = 0;
  NodeId node = kInvalidNode;
  /// Interval context: the paper delimits intervals by start/end bytecode
  /// PCs; workloads label phases with small integers serving that role.
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;
  std::vector<OalEntry> entries;

  [[nodiscard]] std::uint64_t wire_bytes() const noexcept;
};

/// Interval context header: every header field ships (thread id, interval
/// id, source node, start/end bytecode PC) plus two bytes of wire padding
/// that keep the entry payload 4-byte aligned for the coordinator's bulk
/// decode.  Derived the same way as the entry size: field changes move the
/// constant, and the static_assert forces the pad to be revisited.
inline constexpr std::uint64_t kIntervalHeaderWirePad = 2;
inline constexpr std::uint64_t kIntervalHeaderWireBytes =
    sizeof(IntervalRecord::thread) + sizeof(IntervalRecord::interval) +
    sizeof(IntervalRecord::node) + sizeof(IntervalRecord::start_pc) +
    sizeof(IntervalRecord::end_pc) + kIntervalHeaderWirePad;
static_assert(kIntervalHeaderWireBytes == 24,
              "interval header layout changed — update the wire pad (entry "
              "payload must stay 4-byte aligned) and every reader of "
              "kIntervalHeaderWireBytes");

inline std::uint64_t IntervalRecord::wire_bytes() const noexcept {
  return kIntervalHeaderWireBytes + entries.size() * kOalEntryWireBytes;
}

}  // namespace djvm
