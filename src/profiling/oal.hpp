// Object access lists (OALs) and per-interval records (paper Section II.A).
//
// By the at-most-once property of HLRC, a thread logs each sampled shared
// object at most once per interval.  On interval close the OAL — accessed
// object id and (amortized) size — is packed with the interval context into a
// jumbo message for the central coordinator, piggybacked on lock/barrier
// traffic when possible.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace djvm {

/// One OAL entry.  `bytes` is the amortized sample size at logging time;
/// `gap` is the class's real sampling gap at logging time so the TCM builder
/// can apply Horvitz-Thompson scaling even after later rate changes.
struct OalEntry {
  ObjectId obj = kInvalidObject;
  ClassId klass = kInvalidClass;
  std::uint32_t bytes = 0;
  std::uint32_t gap = 1;
};

/// Wire size of one OAL entry: the paper ships "accessed object id and size"
/// (8-byte id + 4-byte size).
inline constexpr std::uint64_t kOalEntryWireBytes = 12;
/// Interval context header: thread id, interval id, start/end bytecode PC.
inline constexpr std::uint64_t kIntervalHeaderWireBytes = 24;

/// A closed interval's access log, as shipped to the coordinator.
struct IntervalRecord {
  ThreadId thread = kInvalidThread;
  IntervalId interval = 0;
  NodeId node = kInvalidNode;
  /// Interval context: the paper delimits intervals by start/end bytecode
  /// PCs; workloads label phases with small integers serving that role.
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;
  std::vector<OalEntry> entries;

  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return kIntervalHeaderWireBytes + entries.size() * kOalEntryWireBytes;
  }
};

}  // namespace djvm
