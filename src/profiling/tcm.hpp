// Thread correlation map (TCM) construction (paper Section II.A).
//
// The coordinator reorganizes per-thread OALs into per-object reader lists
// and then accrues, for every pair of threads that touched an object in the
// profiled window, the object's byte contribution.  With sampling, each
// logged entry carries its class gap at logging time; multiplying by the gap
// (Horvitz-Thompson weighting) makes the sampled TCM an unbiased estimate of
// the full-sampling map, so the paper's error metrics compare like with like.
//
// Two pipelines share the same semantics:
//
//  * `TcmBuilder::build_reference` — the textbook O(MN^2)-style pipeline the
//    seed shipped: a hash map from object id to a per-object `vector<pair>`
//    of readers (one rehash + one linear reader scan per entry), then a
//    dense accrual into a fresh SquareMatrix.  Kept verbatim as the oracle
//    for equivalence tests and as the "dense from scratch" side of
//    `bench_tcm_scale`.
//  * the incremental sparse pipeline — `reorganize_arena` bucket-sorts a
//    batch's entries into one contiguous CSR arena (no per-object vectors,
//    no hashing while object ids stay compact), and `TcmAccumulator` folds
//    such batches into a persistent sparse state: per-object reader lists
//    threaded through one pool, pair weights in a flat upper-triangular
//    accumulator.  Work per fold is O(sum over objects of readers^2) for
//    *new* information only — re-logged entries that do not raise a reader's
//    byte value cost a short list walk and no pair updates — and the dense
//    N x N matrix is materialized only on demand (`dense()`).
//
// `TcmBuilder::build` routes through the sparse pipeline; tests assert the
// two pipelines agree within 1e-9 (bit-exact in practice, since byte weights
// are integer-valued doubles).
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "profiling/oal.hpp"

namespace djvm {

struct OalArena;  // profiling/ingest.hpp

/// Reference to one interval slice inside an ingest log arena — the unit the
/// distributed reducer buckets per node (a drained arena mixes slices from
/// many threads, and with thread migration potentially many nodes).
struct ArenaSliceRef {
  const OalArena* log = nullptr;
  std::uint32_t slice = 0;  ///< index into OalArena::intervals
};

/// Per-object access summary produced by OAL reorganization.
struct ObjectAccessSummary {
  ObjectId obj = kInvalidObject;
  /// (thread, weighted bytes) — byte value is the maximum over the window's
  /// intervals, Horvitz-Thompson scaled when `weighted` was requested.
  std::vector<std::pair<ThreadId, double>> readers;
};

/// One batch of OAL entries reorganized into a flat CSR arena: object k's
/// deduplicated readers live in `readers[offsets[k] .. offsets[k+1])`.  One
/// contiguous buffer instead of a `vector<pair>` per object, built by bucket
/// sort (direct-indexed while object ids stay compact, spilling to a hash
/// map otherwise) with stamp-based per-thread dedup inside each segment.
struct ReaderArena {
  std::vector<ObjectId> objects;                     ///< unique objects, first-appearance order
  std::vector<ClassId> klass;                        ///< class of each object (parallel to objects)
  std::vector<std::uint32_t> offsets;                ///< size objects.size() + 1
  std::vector<std::pair<ThreadId, double>> readers;  ///< CSR payload, max-combined per thread

  [[nodiscard]] std::size_t object_count() const noexcept { return objects.size(); }
  [[nodiscard]] std::span<const std::pair<ThreadId, double>> readers_of(
      std::size_t k) const noexcept {
    return {readers.data() + offsets[k], offsets[k + 1] - offsets[k]};
  }
};

/// Object id -> dense slot assignment shared by the arena reorganize and the
/// accumulator: direct-indexed while ids stay compact (heap ids are
/// allocated densely, the common case for every producer in the tree), with
/// a hash-map spill past the cap so one stray sparse id cannot size an
/// allocation.
class ObjectSlotMap {
 public:
  /// Slot of `obj`, assigning the next dense slot on first sight (`fresh`
  /// reports which).
  std::int32_t get_or_assign(ObjectId obj, bool& fresh);
  /// True when `obj` already holds a slot.
  [[nodiscard]] bool contains(ObjectId obj) const;
  [[nodiscard]] std::int32_t count() const noexcept { return count_; }
  /// Forgets the listed objects' slots in O(listed) (callers track their
  /// touched set; the direct table keeps its allocation).
  void release(std::span<const ObjectId> touched);

 private:
  std::vector<std::int32_t> table_;  ///< ObjectId -> slot (-1 = unassigned)
  std::unordered_map<ObjectId, std::int32_t> spill_;  ///< ids past the cap
  std::int32_t count_ = 0;
};

/// Reusable scratch for `reorganize_arena`: the slot map, bucket counters,
/// flattened-entry buffers, and per-thread dedup stamps are released — not
/// freed — between calls, so steady-state folding (one arena per submit()
/// batch) stops re-allocating and re-zeroing the O(max object id) direct
/// table on every delivery.
struct ArenaScratch {
  ObjectSlotMap slots;
  std::vector<std::uint32_t> counts;    ///< per-slot bucket sizes
  std::vector<std::uint32_t> flat_slot; ///< flattened entries: object slot...
  std::vector<std::pair<ThreadId, double>> flat_reader;  ///< ...and payload
  std::vector<std::uint32_t> cursor;    ///< scatter cursors
  std::vector<std::uint64_t> stamp;     ///< per-thread dedup stamps
  std::vector<std::uint32_t> pos;       ///< per-thread write-back positions
  std::uint64_t epoch = 0;  ///< stamp epoch, persists across calls (never reset)
};

/// Builds TCMs out of interval records.
class TcmBuilder {
 public:
  /// Step 1: reorganize per-thread interval records into the flat CSR arena
  /// (bucket sort, no per-object allocations).
  [[nodiscard]] static ReaderArena reorganize_arena(
      std::span<const IntervalRecord> records, bool weighted);

  /// Scratch-reusing variant (the accumulator's per-batch fold path).
  [[nodiscard]] static ReaderArena reorganize_arena(
      std::span<const IntervalRecord> records, bool weighted,
      ArenaScratch& scratch);

  /// Reorganize over non-contiguous records (the distributed reducer's
  /// per-node buckets reference records in place instead of copying them).
  [[nodiscard]] static ReaderArena reorganize_arena(
      std::span<const IntervalRecord* const> records, bool weighted,
      ArenaScratch& scratch);

  /// Same reorganize over one ingest log arena (see profiling/ingest.hpp):
  /// the drained-ring fold path.  The log's interval slices provide the
  /// logging thread per entry range; no IntervalRecord is ever materialized.
  [[nodiscard]] static ReaderArena reorganize_arena(const OalArena& log,
                                                   bool weighted,
                                                   ArenaScratch& scratch);

  /// Reorganize over individual arena slices (the distributed reducer's
  /// per-node buckets of drained arenas).
  [[nodiscard]] static ReaderArena reorganize_arena(
      std::span<const ArenaSliceRef> slices, bool weighted,
      ArenaScratch& scratch);

  /// Merges two CSR arenas into one (reader lists union per object,
  /// max-combining per thread) through the same bucket-sort machinery — the
  /// reduction-tree step of the distributed reducer, with no per-object
  /// hashing (the slot map is direct-indexed like every other pass).  Byte
  /// values are already weighted; they pass through untouched.
  [[nodiscard]] static ReaderArena merge_arenas(const ReaderArena& a,
                                                const ReaderArena& b,
                                                ArenaScratch& scratch);

  /// Compatibility shim over `reorganize_arena` returning the per-object
  /// summary form the distributed reducer's NodePartial monoid speaks.
  [[nodiscard]] static std::vector<ObjectAccessSummary> reorganize(
      std::span<const IntervalRecord> records, bool weighted);

  /// Step 2 (reference): accrue shared bytes per thread pair from summaries
  /// into a dense matrix.  Cell (i, j) accumulates min(bytes_i, bytes_j) per
  /// object shared by threads i and j.
  [[nodiscard]] static SquareMatrix accrue(
      std::span<const ObjectAccessSummary> summaries, std::uint32_t threads);

  /// Step 2 (sparse): accrue an arena into an upper-triangular accumulator.
  [[nodiscard]] static UpperTriangle accrue_sparse(const ReaderArena& arena,
                                                   std::uint32_t threads);

  /// Convenience: reorganize + accrue via the sparse pipeline.
  [[nodiscard]] static SquareMatrix build(std::span<const IntervalRecord> records,
                                          std::uint32_t threads,
                                          bool weighted = true);

  /// The seed's textbook pipeline (hash-map reorganize + dense accrual),
  /// kept as the equivalence oracle and bench baseline.
  [[nodiscard]] static SquareMatrix build_reference(
      std::span<const IntervalRecord> records, std::uint32_t threads,
      bool weighted = true);
};

/// Per-class decomposition of an accumulator's pair mass against a thread
/// placement — the sparse answer to "which classes produced these cells".
/// Every pair cell the accumulator holds came from one object, and every
/// object belongs to one class, so the walk over the per-object reader lists
/// splits each cell's mass by the owning class without densifying a per-class
/// matrix (classes x N^2 would defeat the sparse pipeline).  All vectors are
/// ClassId-indexed and may be shorter than the registry when trailing classes
/// contributed nothing.
struct TcmClassAttribution {
  /// Pair mass crossing node boundaries under the given placement — the
  /// class's contribution to the co-location partition cut.
  std::vector<double> cut_bytes;
  /// Pair mass kept node-local (the class's already-satisfied share).
  std::vector<double> local_bytes;
  /// Per-(class, thread) pair mass, for attributing thread-level balancer
  /// decisions (migration suggestions) back to the classes that drove them.
  std::vector<std::vector<double>> thread_mass;
  /// HT-weighted bytes of entries whose object is homed away from the node
  /// that logged them (thread-home-affinity mass).  Filled by callers that
  /// know homes (the daemon); the accumulator itself never sees the heap.
  std::vector<double> home_mass;

  [[nodiscard]] bool empty() const noexcept {
    // home_mass counts: an epoch of purely single-reader remote-home traffic
    // (no co-access pairs at all) still carries influence evidence.
    return cut_bytes.empty() && local_bytes.empty() && home_mass.empty();
  }
  /// Total pair mass seen (cut + local over every class).
  [[nodiscard]] double total_pair_bytes() const noexcept {
    double t = 0.0;
    for (double v : cut_bytes) t += v;
    for (double v : local_bytes) t += v;
    return t;
  }
  /// Pair mass of one class (0 for classes past the vectors).
  [[nodiscard]] double class_pair_bytes(ClassId id) const noexcept {
    const auto i = static_cast<std::size_t>(id);
    return (i < cut_bytes.size() ? cut_bytes[i] : 0.0) +
           (i < local_bytes.size() ? local_bytes[i] : 0.0);
  }
};

/// Result of one `TcmAccumulator::compact` retention pass.
struct TcmCompactStats {
  std::size_t dropped_objects = 0;  ///< stale objects fully evicted
  std::size_t decayed_objects = 0;  ///< stale objects down-weighted, kept
  std::size_t freed_readers = 0;    ///< pool nodes returned to the free list
};

/// Persistent incremental sparse TCM accumulator: fold record batches in as
/// deltas (`add`), merge partials (`merge`), and densify on demand.  The
/// invariant maintained per object o and thread pair {i, j} is
/// pair(i, j) == min(bytes_i(o), bytes_j(o)) summed over objects, so folding
/// batches one at a time, in any split, yields exactly the map a from-scratch
/// build over the concatenated batches produces.
///
/// Long-haul retention: a whole-run accumulator grows with every object the
/// workload ever touches, which is unbounded on a server that runs for
/// weeks.  The retention pass (`advance_epoch` + `compact`) bounds it: an
/// object untouched for `idle_epochs` retention epochs either decays (every
/// reader byte value scaled by `decay`, the pair mass it contributed scaled
/// to match — the invariant above is preserved exactly, just over decayed
/// byte values) or, when `decay` is 0 or the decayed mass has shrunk below
/// one byte, is dropped outright (its exact pair contribution subtracted,
/// its reader nodes returned to a free list, its slot compacted away).
/// Because every drop/decay is recomputed from the object's own reader list,
/// live objects are never perturbed: the map restricted to touched objects
/// stays bit-for-bit the map a from-scratch build over their records yields.
class TcmAccumulator {
 public:
  explicit TcmAccumulator(std::uint32_t threads, bool weighted = true);

  /// Folds one batch of records in as a delta (arena-reorganized first, so
  /// in-batch duplicates cost one stamp check, not a reader-list walk).
  void add(std::span<const IntervalRecord> records);

  /// Folds one drained ingest log arena in as a delta — identical semantics
  /// to add(records) over the records the arena's slices describe, with no
  /// per-interval vectors in between.
  void add(const OalArena& log);

  /// Folds an already-reorganized CSR arena in (the distributed reducer's
  /// accrual path; byte values are already weighted).
  void add(const ReaderArena& arena);

  /// Folds one object's (thread, already-weighted bytes) reader list in.
  /// `klass` tags the object for per-class cell attribution; kInvalidClass
  /// (partials built outside the record path) leaves it untagged, and those
  /// objects are skipped by attribute_cells.  Callers must bound `klass`
  /// against their class registry: attribute_cells sizes its class-indexed
  /// vectors by the largest tag seen (the daemon sanitizes record entries
  /// at submit() for exactly this reason).
  void add_readers(ObjectId obj,
                   std::span<const std::pair<ThreadId, double>> readers,
                   ClassId klass = kInvalidClass);

  /// Splits the accumulated pair mass by owning class against
  /// `node_of_thread` (the balancer's current co-location partition): for
  /// every object, each reader-pair cell min(bytes_i, bytes_j) lands in the
  /// object's class as cut mass (readers on different nodes) or local mass.
  /// Threads beyond `node_of_thread` count as local (no placement claim).
  /// Sparse: walks the reader lists, never densifies.  home_mass is left
  /// empty for the caller to fill.
  [[nodiscard]] TcmClassAttribution attribute_cells(
      std::span<const NodeId> node_of_thread) const;

  /// Merges another accumulator over the same thread count (the reduction
  /// monoid: per-object reader lists union with max-combining; pair weights
  /// are replayed so cross-partial pairs appear).
  void merge(const TcmAccumulator& other);

  /// Merge fast path for partials over *disjoint object sets* (parallel
  /// accrual shards): reader lists move over and pair arrays simply add.
  /// Asserts disjointness in debug builds.
  void merge_disjoint_objects(const TcmAccumulator& other);

  /// Drops all accumulated state (keeps allocations for reuse).
  void reset();

  /// Advances the retention clock: objects folded in after this call are
  /// stamped with the new epoch.  Call once per profiling epoch when
  /// retention is on; never calling it keeps every object forever (the
  /// pre-retention behavior).
  void advance_epoch() noexcept { ++epoch_; }
  [[nodiscard]] std::uint32_t epoch() const noexcept { return epoch_; }

  /// One retention pass: objects untouched for at least `idle_epochs`
  /// retention epochs are decayed (readers scaled by `decay` in (0, 1),
  /// pair mass adjusted to keep the accumulator invariant) or dropped
  /// (`decay` == 0, or the decayed mass fell below one byte).  Idempotent
  /// within one epoch: a second pass finds nothing new to decay and nothing
  /// left to drop.  O(stale reader-list mass + tracked objects).
  TcmCompactStats compact(std::uint32_t idle_epochs, double decay);

  /// Payload bytes currently held (vector capacities + pair cells).  The
  /// ObjectSlotMap's direct index table is excluded: it is O(max object id
  /// ever seen) by design and shared-capacity across resets, so it would
  /// drown the signal this accessor exists to expose — whether retention
  /// keeps the per-object state bounded.
  [[nodiscard]] std::size_t memory_bytes() const noexcept;

  /// Densifies the pair accumulator into the symmetric N x N map.
  [[nodiscard]] SquareMatrix dense() const { return pairs_.densify(); }

  [[nodiscard]] std::uint32_t threads() const noexcept { return threads_; }
  [[nodiscard]] bool weighted() const noexcept { return weighted_; }
  /// Objects with at least one folded reader.
  [[nodiscard]] std::size_t objects_tracked() const noexcept {
    return touched_.size();
  }
  /// Total (object, thread) reader entries currently held (free-listed pool
  /// nodes excluded).
  [[nodiscard]] std::size_t reader_entries() const noexcept {
    return live_readers_;
  }
  [[nodiscard]] const UpperTriangle& pairs() const noexcept { return pairs_; }

 private:
  /// Reader-list node in the shared pool (per-object singly linked list; the
  /// lists are short — most objects have few readers — so pointer chasing
  /// through one contiguous pool beats a vector allocation per object).
  struct Reader {
    ThreadId thread;
    double bytes;
    std::int32_t next;
  };

  static constexpr std::int32_t kNone = -1;
  /// decay_epoch_ sentinel: slot never decayed.
  static constexpr std::uint32_t kNeverDecayed = 0xFFFFFFFFu;

  std::int32_t assign_slot(ObjectId obj);

  void add_one(ObjectId obj, ThreadId thread, double bytes);

  /// Pool node for a new list head, reusing the free list when possible.
  std::int32_t alloc_reader(ThreadId thread, double bytes, std::int32_t next);

  std::uint32_t threads_;
  bool weighted_;
  ObjectSlotMap slots_;
  ArenaScratch scratch_;                  ///< reused by add()'s reorganize
  std::vector<ObjectId> touched_;         ///< slot -> object id
  std::vector<ClassId> klass_;            ///< slot -> owning class (cell attribution)
  std::vector<std::int32_t> heads_;       ///< slot -> first Reader index (kNone = empty)
  std::vector<std::uint32_t> last_touch_; ///< slot -> retention epoch last folded
  std::vector<std::uint32_t> decay_epoch_;///< slot -> epoch last decayed
  std::vector<Reader> pool_;
  UpperTriangle pairs_;
  std::int32_t free_head_ = kNone;        ///< freed pool nodes, chained via next
  std::size_t live_readers_ = 0;
  std::uint32_t epoch_ = 0;               ///< retention clock
};

}  // namespace djvm
