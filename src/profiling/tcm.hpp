// Thread correlation map (TCM) construction (paper Section II.A).
//
// The coordinator reorganizes per-thread OALs into per-object lists of
// (thread, bytes) — O(MN) — and then accrues, for every pair of threads that
// touched an object in the profiled window, the object's byte contribution —
// O(MN^2).  With sampling, each logged entry carries its class gap at logging
// time; multiplying by the gap (Horvitz-Thompson weighting) makes the sampled
// TCM an unbiased estimate of the full-sampling map, so the paper's error
// metrics compare like with like.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "common/types.hpp"
#include "profiling/oal.hpp"

namespace djvm {

/// Per-object access summary produced by OAL reorganization.
struct ObjectAccessSummary {
  ObjectId obj = kInvalidObject;
  /// (thread, weighted bytes) — byte value is the maximum over the window's
  /// intervals, Horvitz-Thompson scaled when `weighted` was requested.
  std::vector<std::pair<ThreadId, double>> readers;
};

/// Builds TCMs out of interval records.
class TcmBuilder {
 public:
  /// Step 1: reorganize per-thread interval records into per-object lists.
  /// O(M N) in objects M and threads N.
  [[nodiscard]] static std::vector<ObjectAccessSummary> reorganize(
      std::span<const IntervalRecord> records, bool weighted);

  /// Step 2: accrue shared bytes per thread pair.  O(M N^2).
  /// Cell (i, j) accumulates min(bytes_i, bytes_j) per object shared by
  /// threads i and j.
  [[nodiscard]] static SquareMatrix accrue(
      std::span<const ObjectAccessSummary> summaries, std::uint32_t threads);

  /// Convenience: reorganize + accrue.
  [[nodiscard]] static SquareMatrix build(std::span<const IntervalRecord> records,
                                          std::uint32_t threads,
                                          bool weighted = true);
};

}  // namespace djvm
