#include "profiling/correlation_daemon.hpp"

#include <algorithm>
#include <chrono>

#include "profiling/accuracy.hpp"

namespace djvm {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

CorrelationDaemon::CorrelationDaemon(SamplingPlan& plan, std::uint32_t threads)
    : plan_(plan),
      threads_(threads),
      governor_(plan),
      latest_(threads) {}

void CorrelationDaemon::submit(std::vector<IntervalRecord> records) {
  for (IntervalRecord& r : records) {
    total_entries_ += r.entries.size();
    pending_.push_back(std::move(r));
  }
}

EpochResult CorrelationDaemon::run_epoch(OverheadSample sample) {
  EpochResult out;
  out.intervals = pending_.size();
  std::uint64_t wire_bytes = 0;
  // Per-class benefit/cost stats feed only the closed-loop back-off; the
  // legacy and disarmed paths skip the per-entry pass.  Each entry is also
  // attributed to the worker node whose interval shipped it, so the
  // per-node back-off can see which classes dominate one node's cost.
  const bool class_stats = governor_.mode() == GovernorMode::kClosedLoop;
  if (class_stats) plan_.begin_epoch_stats();
  for (const IntervalRecord& r : pending_) {
    out.entries += r.entries.size();
    wire_bytes += r.wire_bytes();
    if (class_stats) {
      for (const OalEntry& e : r.entries) {
        plan_.note_epoch_entry(e.klass, e.bytes, e.gap);
        plan_.note_epoch_node_entry(r.node, e.klass, e.bytes, e.gap);
      }
    }
  }

  const auto t0 = std::chrono::steady_clock::now();
  out.tcm = TcmBuilder::build(pending_, threads_, /*weighted=*/true);
  out.build_seconds = seconds_since(t0);
  build_seconds_ += out.build_seconds;
  ++epochs_;

  if (have_latest_) {
    out.rel_distance = absolute_error(out.tcm, latest_);
  }

  // Fill in what the caller did not measure, then let the governor decide.
  sample.build_seconds = out.build_seconds;
  if (!sample.measured) {
    sample.wire_bytes = wire_bytes;
    // Observational per-node slices derived from the records themselves
    // (no app time was measured, so the governor will not budget on them,
    // but the per-node wire view stays visible).
    if (sample.nodes.empty()) {
      for (const IntervalRecord& r : pending_) {
        if (r.node == kInvalidNode) continue;
        auto it = std::find_if(sample.nodes.begin(), sample.nodes.end(),
                               [&](const NodeOverheadSample& ns) {
                                 return ns.node == r.node;
                               });
        if (it == sample.nodes.end()) {
          sample.nodes.push_back(NodeOverheadSample{});
          it = sample.nodes.end() - 1;
          it->node = r.node;
        }
        it->wire_bytes += r.wire_bytes();
      }
    }
  }
  sample.resampled_objects += carryover_resampled_;
  // Resampling passes run *after* a decision, so their per-node cost lands
  // in the next epoch's sample — attributed to the node that walked its own
  // cached copies, and merged only into node slices the pump already
  // measured (a node absent from a measured sample has no app time to
  // budget against).
  for (NodeOverheadSample& ns : sample.nodes) {
    if (ns.node < carryover_resampled_by_node_.size()) {
      ns.resampled_objects += carryover_resampled_by_node_[ns.node];
    }
  }
  plan_.drain_resampled_by_node();  // discard passes not owed to the governor
  const Governor::EpochOutcome decision =
      governor_.on_epoch(out.rel_distance, sample);
  out.rate_changed = decision.rate_changed;
  out.resampled_objects = decision.resampled_objects;
  out.action = decision.action;
  out.overhead_fraction = decision.overhead_fraction;
  out.offender = decision.offender;
  out.offender_fraction = decision.offender_fraction;
  carryover_resampled_ = decision.resampled_objects;
  carryover_resampled_by_node_ = plan_.drain_resampled_by_node();

  latest_ = out.tcm;
  have_latest_ = true;
  for (IntervalRecord& r : pending_) history_.push_back(std::move(r));
  pending_.clear();
  return out;
}

SquareMatrix CorrelationDaemon::build_full(bool weighted) {
  // Fold any pending records into history first.
  for (IntervalRecord& r : pending_) history_.push_back(std::move(r));
  pending_.clear();
  const auto t0 = std::chrono::steady_clock::now();
  SquareMatrix tcm = TcmBuilder::build(history_, threads_, weighted);
  build_seconds_ += seconds_since(t0);
  latest_ = tcm;
  have_latest_ = true;
  return tcm;
}

void CorrelationDaemon::clear() {
  pending_.clear();
  history_.clear();
  latest_ = SquareMatrix(threads_);
  have_latest_ = false;
  governor_.reset();  // clearing discards convergence progress too
  build_seconds_ = 0.0;
  total_entries_ = 0;
  epochs_ = 0;
  carryover_resampled_ = 0;
  carryover_resampled_by_node_.clear();
}

}  // namespace djvm
