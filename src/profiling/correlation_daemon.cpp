#include "profiling/correlation_daemon.hpp"

#include <algorithm>
#include <chrono>

#include "profiling/accuracy.hpp"

namespace djvm {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

CorrelationDaemon::CorrelationDaemon(SamplingPlan& plan, std::uint32_t threads)
    : plan_(plan),
      threads_(threads),
      governor_(plan),
      window_(threads, /*weighted=*/true),
      full_(threads, /*weighted=*/true),
      latest_(threads) {}

void CorrelationDaemon::fold_arena(OalArena& arena) {
  // Entries are external input: a class id beyond the registry must not tag
  // the accumulator (the tag sizes class-indexed attribution vectors — the
  // same invariant note_epoch_entry enforces on the epoch stats).  Untagged
  // entries still fold into the map; they just carry no attribution.
  const std::size_t classes = plan_.heap().registry().size();
  for (OalEntry& e : arena.entries) {
    if (e.klass != kInvalidClass && e.klass >= classes) {
      e.klass = kInvalidClass;
    }
  }
  window_.add(arena);
  total_entries_ += arena.entries.size();
}

void CorrelationDaemon::filter_arena(OalArena& arena) const {
  if (!node_filter_) return;
  bool any_dead = false;
  for (const ArenaInterval& iv : arena.intervals) {
    if (!node_filter_(iv.node)) {
      any_dead = true;
      break;
    }
  }
  if (!any_dead) return;
  // Compact in place: the arena is recycled (and cleared) after the epoch
  // anyway, so dropping a dead node's slices here loses exactly the
  // un-shipped intervals that would have died with the node.
  std::vector<OalEntry> entries;
  entries.reserve(arena.entries.size());
  std::vector<ArenaInterval> intervals;
  intervals.reserve(arena.intervals.size());
  for (const ArenaInterval& iv : arena.intervals) {
    if (!node_filter_(iv.node)) continue;
    ArenaInterval kept = iv;
    kept.begin = static_cast<std::uint32_t>(entries.size());
    entries.insert(entries.end(), arena.entries.begin() + iv.begin,
                   arena.entries.begin() + iv.end);
    kept.end = static_cast<std::uint32_t>(entries.size());
    intervals.push_back(kept);
  }
  arena.entries = std::move(entries);
  arena.intervals = std::move(intervals);
}

std::size_t CorrelationDaemon::ingest(IngestHub& hub, bool quiesced) {
  const auto t0 = std::chrono::steady_clock::now();
  if (hub_ != &hub) {
    hub_ = &hub;
    ring_snapshot_ = IngestCounters{};  // deltas restart against the new hub
  }
  std::size_t consumed = 0;
  const auto consume = [&](OalArena* a) {
    filter_arena(*a);
    fold_arena(*a);
    pending_slices_ += a->intervals.size();
    pending_arenas_.push_back(a);
    ++consumed;
  };
  while (OalArena* a = hub.try_pop()) consume(a);
  if (quiesced) {
    for (OalArena* a : hub.take_stranded()) consume(a);
  }
  window_fold_seconds_ += seconds_since(t0);
  return consumed;
}

EpochResult CorrelationDaemon::run_epoch(OverheadSample sample) {
  EpochResult out;
  out.intervals = pending_slices_;
  std::uint64_t wire_bytes = 0;
  // Per-class benefit/cost stats feed only the closed-loop back-off; the
  // legacy and disarmed paths skip the per-entry pass.  Each entry is also
  // attributed to the worker node whose interval shipped it, so the
  // per-node back-off can see which classes dominate one node's cost.
  const bool class_stats = governor_.mode() == GovernorMode::kClosedLoop;
  const bool want_cells = !influence_placement_.empty();
  std::vector<double> home_mass;
  if (class_stats) plan_.begin_epoch_stats();
  const Heap& heap = plan_.heap();
  // Walk the drained arena slices (each carries the interval header context
  // a record would have).  Thread-home-affinity mass: HT-weighted bytes the
  // logging node accessed on objects homed elsewhere — cells the balancer's
  // home-aware planner acts on even without a co-located peer.
  for (const OalArena* a : pending_arenas_) {
    out.entries += a->entries.size();
    wire_bytes += a->wire_bytes();
    if (class_stats || want_cells) {
      for (const ArenaInterval& iv : a->intervals) {
        for (std::uint32_t i = iv.begin; i < iv.end; ++i) {
          const OalEntry& e = a->entries[i];
          if (class_stats) {
            plan_.note_epoch_entry(e.klass, e.bytes, e.gap);
            plan_.note_epoch_node_entry(iv.node, e.klass, e.bytes, e.gap);
          }
          if (want_cells && iv.node != kInvalidNode &&
              e.klass != kInvalidClass && e.obj < heap.object_count() &&
              heap.meta(e.obj).home != iv.node) {
            if (home_mass.size() <= e.klass) home_mass.resize(e.klass + 1, 0.0);
            home_mass[e.klass] +=
                static_cast<double>(e.bytes) * static_cast<double>(e.gap);
          }
        }
      }
    }
  }

  // Per-class cell attribution runs against the window accumulator *before*
  // it is consumed below: the sparse reader lists are the only place the
  // "which classes produced these cells" question can still be answered
  // without densifying per class.  Its O(sum readers^2) walk is coordinator
  // map work like the folds, so it is timed into build_seconds below.
  double attribution_seconds = 0.0;
  if (want_cells) {
    const auto ta = std::chrono::steady_clock::now();
    out.cells = window_.attribute_cells(influence_placement_);
    out.cells.home_mass = std::move(home_mass);
    attribution_seconds = seconds_since(ta);
  }

  // The window's folds already ran at ingest() time; the epoch boundary only
  // densifies the sparse accumulator.  build_seconds keeps its meaning (full
  // construction cost of this window's map) so the governor's budget model
  // is unchanged; densify_seconds is the part the master stalls on here.
  const auto t0 = std::chrono::steady_clock::now();
  out.tcm = window_.dense();
  out.densify_seconds = seconds_since(t0);

  // Merge the consumed window into the whole-run accumulator (ingested
  // entries have no raw records to re-fold later, so build_full's map is fed
  // eagerly here); under retention, periodically evict stale objects too.
  // Coordinator map work like the folds, so it is timed into build_seconds.
  double retention_seconds = 0.0;
  {
    const auto tr = std::chrono::steady_clock::now();
    full_.merge(window_);
    if (retention_.active()) {
      full_.advance_epoch();
      if (retention_.compact_period != 0 &&
          full_.epoch() % retention_.compact_period == 0) {
        dropped_objects_ +=
            full_.compact(retention_.idle_epochs, retention_.decay)
                .dropped_objects;
      }
      out.retained_objects = full_.objects_tracked();
      out.retained_readers = full_.reader_entries();
      out.dropped_objects = dropped_objects_;
    }
    retention_seconds = seconds_since(tr);
  }

  out.build_seconds = window_fold_seconds_ + out.densify_seconds +
                      attribution_seconds + retention_seconds;
  window_.reset();
  window_fold_seconds_ = 0.0;
  build_seconds_ += out.build_seconds;
  out.epoch = epochs_;
  ++epochs_;

  if (have_latest_) {
    out.rel_distance = absolute_error(out.tcm, latest_);
  }

  // Fill in what the caller did not measure, then let the governor decide.
  // Added rather than assigned: a caller-supplied build_seconds carries
  // coordinator work done outside the daemon (the facade's migration-planner
  // and feedback run from the previous epoch), which must stay visible to
  // the meter's coordinator bucket alongside this epoch's map construction.
  sample.build_seconds += out.build_seconds;
  if (!sample.measured) {
    sample.wire_bytes = wire_bytes;
    // Observational per-node slices derived from the records themselves
    // (no app time was measured, so the governor will not budget on them,
    // but the per-node wire view stays visible).
    if (sample.nodes.empty()) {
      const auto bill_node = [&](NodeId node, std::uint64_t bytes) {
        if (node == kInvalidNode) return;
        auto it = std::find_if(
            sample.nodes.begin(), sample.nodes.end(),
            [&](const NodeOverheadSample& ns) { return ns.node == node; });
        if (it == sample.nodes.end()) {
          sample.nodes.push_back(NodeOverheadSample{});
          it = sample.nodes.end() - 1;
          it->node = node;
        }
        it->wire_bytes += bytes;
      };
      for (const OalArena* a : pending_arenas_) {
        for (const ArenaInterval& iv : a->intervals) {
          bill_node(iv.node, kIntervalHeaderWireBytes +
                                 std::uint64_t(iv.end - iv.begin) *
                                     kOalEntryWireBytes);
        }
      }
    }
  }
  sample.resampled_objects += carryover_resampled_;
  // Resampling passes run *after* a decision, so their per-node cost lands
  // in the next epoch's sample — attributed to the node that walked its own
  // cached copies, and merged only into node slices the pump already
  // measured (a node absent from a measured sample has no app time to
  // budget against).
  for (NodeOverheadSample& ns : sample.nodes) {
    if (ns.node < carryover_resampled_by_node_.size()) {
      ns.resampled_objects += carryover_resampled_by_node_[ns.node];
    }
  }
  static_cast<void>(  // discard passes not owed to the governor
      plan_.drain_resampled_by_node());
  if (hub_ != nullptr) {
    // Ring telemetry over this epoch, and the producer-stall bill: every
    // backpressure event parked an arena on a worker thread, which is
    // rate-dependent worker CPU exactly like the log service itself.
    const IngestCounters now = hub_->counters();
    out.ring_published = now.arenas_published - ring_snapshot_.arenas_published;
    out.ring_entries =
        now.entries_published - ring_snapshot_.entries_published;
    out.ring_backpressure =
        now.backpressure_events - ring_snapshot_.backpressure_events;
    ring_snapshot_ = now;
    sample.access_check_seconds +=
        static_cast<double>(out.ring_backpressure) * kRingBackpressureSeconds;
  }
  const Governor::EpochOutcome decision =
      governor_.on_epoch(out.rel_distance, sample);
  out.sample = sample;
  out.rate_changed = decision.rate_changed;
  out.resampled_objects = decision.resampled_objects;
  out.action = decision.action;
  out.overhead_fraction = decision.overhead_fraction;
  out.offender = decision.offender;
  out.offender_fraction = decision.offender_fraction;
  carryover_resampled_ = decision.resampled_objects;
  carryover_resampled_by_node_ = plan_.drain_resampled_by_node();
  const OverheadMeter& meter = governor_.meter();
  out.node_fractions.resize(meter.node_count());
  for (std::size_t n = 0; n < out.node_fractions.size(); ++n) {
    out.node_fractions[n] = meter.node_rolling_fraction(static_cast<NodeId>(n));
  }

  latest_ = out.tcm;
  have_latest_ = true;
  intervals_seen_ += pending_slices_;
  release_pending_arenas();
  return out;
}

void CorrelationDaemon::release_pending_arenas() {
  if (hub_ != nullptr) {
    for (OalArena* a : pending_arenas_) hub_->recycle(a);
  }
  pending_arenas_.clear();
  pending_slices_ = 0;
}

SquareMatrix CorrelationDaemon::build_full() {
  // The whole-run map *is* the whole-run accumulator (fed eagerly by every
  // run_epoch's window merge) plus whatever sits in the unconsumed window.
  // The accumulated state carries HT-weighted bytes only — ingested entries
  // never had raw records to re-weigh.
  intervals_seen_ += pending_slices_;
  const auto tr = std::chrono::steady_clock::now();
  release_pending_arenas();
  full_.merge(window_);
  window_.reset();
  SquareMatrix tcm = full_.dense();
  build_seconds_ += window_fold_seconds_ + seconds_since(tr);
  window_fold_seconds_ = 0.0;
  latest_ = tcm;
  have_latest_ = true;
  return tcm;
}

void CorrelationDaemon::clear() {
  release_pending_arenas();
  hub_ = nullptr;
  ring_snapshot_ = IngestCounters{};
  window_.reset();
  window_fold_seconds_ = 0.0;
  full_.reset();
  latest_ = SquareMatrix(threads_);
  have_latest_ = false;
  governor_.reset();  // clearing discards convergence progress too
  build_seconds_ = 0.0;
  total_entries_ = 0;
  intervals_seen_ = 0;
  dropped_objects_ = 0;
  epochs_ = 0;
  carryover_resampled_ = 0;
  carryover_resampled_by_node_.clear();
}

}  // namespace djvm
