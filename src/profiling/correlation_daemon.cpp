#include "profiling/correlation_daemon.hpp"

#include <chrono>

#include "profiling/accuracy.hpp"

namespace djvm {

namespace {
double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0).count();
}
}  // namespace

CorrelationDaemon::CorrelationDaemon(SamplingPlan& plan, std::uint32_t threads)
    : plan_(plan), threads_(threads), latest_(threads) {}

void CorrelationDaemon::submit(std::vector<IntervalRecord> records) {
  for (IntervalRecord& r : records) {
    total_entries_ += r.entries.size();
    pending_.push_back(std::move(r));
  }
}

EpochResult CorrelationDaemon::run_epoch() {
  EpochResult out;
  out.intervals = pending_.size();
  for (const IntervalRecord& r : pending_) out.entries += r.entries.size();

  const auto t0 = std::chrono::steady_clock::now();
  out.tcm = TcmBuilder::build(pending_, threads_, /*weighted=*/true);
  out.build_seconds = seconds_since(t0);
  build_seconds_ += out.build_seconds;
  ++epochs_;

  if (have_latest_) {
    out.rel_distance = absolute_error(out.tcm, latest_);
  }

  if (adaptation_ && !converged_ && out.rel_distance.has_value()) {
    if (*out.rel_distance > threshold_) {
      // Tighten: halve every class's nominal gap (classes already at full
      // sampling stay there).
      bool any = false;
      for (Klass& k : plan_.heap().registry().all()) {
        if (k.sampling.nominal_gap > 1) {
          plan_.halve_gap(k.id);
          any = true;
        }
      }
      if (any) {
        out.resampled_objects = plan_.resample_all();
        out.rate_changed = true;
      } else {
        converged_ = true;  // everything already at full sampling
      }
    } else {
      converged_ = true;
    }
  }

  latest_ = out.tcm;
  have_latest_ = true;
  for (IntervalRecord& r : pending_) history_.push_back(std::move(r));
  pending_.clear();
  return out;
}

SquareMatrix CorrelationDaemon::build_full(bool weighted) {
  // Fold any pending records into history first.
  for (IntervalRecord& r : pending_) history_.push_back(std::move(r));
  pending_.clear();
  const auto t0 = std::chrono::steady_clock::now();
  SquareMatrix tcm = TcmBuilder::build(history_, threads_, weighted);
  build_seconds_ += seconds_since(t0);
  latest_ = tcm;
  have_latest_ = true;
  return tcm;
}

void CorrelationDaemon::clear() {
  pending_.clear();
  history_.clear();
  latest_ = SquareMatrix(threads_);
  have_latest_ = false;
  converged_ = false;
  build_seconds_ = 0.0;
  total_entries_ = 0;
  epochs_ = 0;
}

}  // namespace djvm
