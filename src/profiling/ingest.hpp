// Lock-free OAL ingest: per-thread log arenas handed to the correlation
// daemon over single-producer/single-consumer rings.
//
// The seed ingest path built one heap-allocated IntervalRecord per interval
// close and funneled batches through CorrelationDaemon::submit() — a serial
// hand-off whose allocation and copying costs grow with thread count (the
// ROADMAP's named scaling cliff).  Here each worker thread owns a *lane*:
//
//   producer (worker thread)                 consumer (daemon pump)
//   ------------------------                 ----------------------
//   append() into the open fixed-size  ->   outbound SPSC ring  ->  fold
//   OalArena; publish when full              (arena pointers)        & recycle
//                                       <-   recycled SPSC ring  <-
//
// No locks anywhere on the hot path: the rings are bounded power-of-two
// SPSC queues with acquire/release head/tail, and arenas are reused through
// the recycle ring so steady state allocates nothing.  When the outbound
// ring is full the arena is *parked* producer-side (a backpressure event,
// counted so the overhead meter and the timeline can see the stall) and
// re-offered before the next publish — entries are never dropped, silently
// or otherwise; the counters prove it (published == drained + in flight).
#pragma once

#include <atomic>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "profiling/oal.hpp"

namespace djvm {

/// One closed interval's slice of an arena's entry log.  A single interval
/// may split across arenas when it fills one mid-append; each slice then
/// carries the full header (and is billed one header of wire bytes — the
/// price of fixed-size arenas, visible in the accounting rather than hidden).
struct ArenaInterval {
  ThreadId thread = kInvalidThread;
  IntervalId interval = 0;
  NodeId node = kInvalidNode;
  std::uint32_t start_pc = 0;
  std::uint32_t end_pc = 0;
  std::uint32_t begin = 0;  ///< entry range [begin, end) in OalArena::entries
  std::uint32_t end = 0;
};

/// A fixed-capacity OAL log arena: the unit of hand-off between a producer
/// lane and the daemon.  Entries from many intervals share one contiguous
/// buffer; `intervals` indexes the slices.
struct OalArena {
  std::uint32_t lane = 0;  ///< owning producer lane (routes recycling)
  std::vector<OalEntry> entries;
  std::vector<ArenaInterval> intervals;

  [[nodiscard]] bool empty() const noexcept { return entries.empty(); }
  /// Wire size if shipped to the coordinator: one interval header per slice
  /// plus the shipped entry fields (see oal.hpp for the derivations).
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept {
    return intervals.size() * kIntervalHeaderWireBytes +
           entries.size() * kOalEntryWireBytes;
  }
  void clear() noexcept {
    entries.clear();
    intervals.clear();
  }
};

/// Bounded lock-free single-producer/single-consumer ring.  Exactly one
/// thread may call push() and exactly one may call pop(); capacity rounds up
/// to a power of two.  A full ring rejects the push (the caller owns the
/// backpressure policy) — nothing blocks and nothing is overwritten.
template <typename T>
class SpscRing {
 public:
  explicit SpscRing(std::size_t capacity) {
    std::size_t cap = 1;
    while (cap < capacity) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  /// Producer only.  False when the ring is full (the value is untouched).
  [[nodiscard]] bool push(T value) {
    const std::size_t t = tail_.load(std::memory_order_relaxed);
    if (t - head_.load(std::memory_order_acquire) == slots_.size()) {
      return false;
    }
    slots_[t & mask_] = std::move(value);
    tail_.store(t + 1, std::memory_order_release);
    return true;
  }

  /// Consumer only.  False when the ring is empty (`out` is untouched).
  [[nodiscard]] bool pop(T& out) {
    const std::size_t h = head_.load(std::memory_order_relaxed);
    if (h == tail_.load(std::memory_order_acquire)) return false;
    out = std::move(slots_[h & mask_]);
    head_.store(h + 1, std::memory_order_release);
    return true;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  /// Approximate occupancy (exact from either endpoint's own thread).
  [[nodiscard]] std::size_t size() const noexcept {
    return tail_.load(std::memory_order_acquire) -
           head_.load(std::memory_order_acquire);
  }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  /// Consumer and producer cursors on separate cache lines: the whole point
  /// of SPSC is that each side writes only its own.
  alignas(64) std::atomic<std::size_t> head_{0};
  alignas(64) std::atomic<std::size_t> tail_{0};
};

/// Modeled worker-side cost of one backpressure event: the producer parks
/// the arena on its overflow deque and re-offers it later — a few hundred
/// nanoseconds of pointer shuffling on the worker thread.  The daemon bills
/// this into the epoch sample's rate-dependent bucket so a chronically full
/// ring surfaces on the overhead meter instead of hiding in lost throughput.
inline constexpr double kRingBackpressureSeconds = 400e-9;

/// Ingest tuning knobs (Config::ingest carries these).
struct IngestConfig {
  /// Entries per arena.  Larger arenas amortize the ring hand-off further
  /// but delay delivery of a slow thread's entries until flush.
  std::uint32_t arena_entries = 4096;
  /// Arenas per ring (outbound and recycled each); rounds up to a power of
  /// two.  Depth bounds how far a lane can run ahead of the daemon before
  /// backpressure parks arenas producer-side.
  std::uint32_t ring_depth = 8;
};

/// Aggregated hub counters (sums over lanes; each is monotonic).  The loss
/// invariant the bench gate checks: entries_published == entries_drained
/// once every producer has flushed and the consumer has drained — there is
/// no drop path, and backpressure_events counts the stalls instead.
struct IngestCounters {
  std::uint64_t arenas_published = 0;
  std::uint64_t entries_published = 0;
  std::uint64_t backpressure_events = 0;  ///< publishes that found the ring full
  std::uint64_t arenas_drained = 0;
  std::uint64_t entries_drained = 0;
  std::uint64_t arenas_allocated = 0;  ///< lifetime allocations (recycling hides reuse)
};

/// The ingest hub: one lane per producer thread, the daemon as the single
/// consumer.  Producer-side calls (append/flush on lane i) must come from
/// lane i's owning thread; consumer-side calls (try_pop/recycle/
/// take_stranded) from the single draining thread.  ensure_lanes may be
/// called concurrently with consumption (growth takes a mutex no hot-path
/// call touches).
class IngestHub {
 public:
  explicit IngestHub(IngestConfig cfg = {});
  ~IngestHub();
  IngestHub(const IngestHub&) = delete;
  IngestHub& operator=(const IngestHub&) = delete;

  /// Grows the lane table to at least `count` lanes (never shrinks).
  void ensure_lanes(std::uint32_t count);
  [[nodiscard]] std::uint32_t lane_count() const noexcept {
    return lane_count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] const IngestConfig& config() const noexcept { return cfg_; }

  // --- producer side ---------------------------------------------------------
  /// Appends one closed interval's entries to `lane`'s open arena, splitting
  /// across arenas when one fills (full arenas publish immediately).  The
  /// common case — the interval fits the open arena — stays inline so a
  /// sparse interval close costs two bounds checks and two appends; arena
  /// turnover and splits take the out-of-line slow path.
  void append(std::uint32_t lane, ThreadId thread, IntervalId interval,
              NodeId node, std::uint32_t start_pc, std::uint32_t end_pc,
              std::span<const OalEntry> entries) {
    Lane& ln = *lanes_[lane];
    OalArena* a = ln.open;
    if (a == nullptr || entries.empty() ||
        a->entries.size() + entries.size() > cfg_.arena_entries) {
      append_slow(ln, lane, thread, interval, node, start_pc, end_pc, entries);
      return;
    }
    const auto begin = static_cast<std::uint32_t>(a->entries.size());
    a->entries.insert(a->entries.end(), entries.begin(), entries.end());
    a->intervals.push_back(
        ArenaInterval{thread, interval, node, start_pc, end_pc, begin,
                      static_cast<std::uint32_t>(begin + entries.size())});
    if (a->entries.size() >= cfg_.arena_entries) {
      publish(ln, a);
      ln.open = nullptr;
    }
  }
  /// Publishes `lane`'s open arena even if only partially filled (epoch
  /// boundary, producer exit).  No-op when the open arena is empty.
  void flush(std::uint32_t lane);

  // --- consumer side ---------------------------------------------------------
  /// Pops the next published arena, round-robin across lanes; nullptr when
  /// every outbound ring is empty.  The caller must hand the arena back via
  /// recycle() when done.
  [[nodiscard]] OalArena* try_pop();
  /// Returns a drained arena to its lane for reuse.
  void recycle(OalArena* arena);
  /// Collects arenas the rings cannot carry — parked (backpressured) and
  /// open ones — from every lane.  Caller must guarantee every producer has
  /// quiesced (joined, or running on the consumer's own thread, the
  /// simulator's case): this reads producer-side state directly.
  [[nodiscard]] std::vector<OalArena*> take_stranded();

  [[nodiscard]] IngestCounters counters() const;

 private:
  struct Lane {
    explicit Lane(const IngestConfig& cfg)
        : outbound(cfg.ring_depth), recycled(cfg.ring_depth) {}

    SpscRing<OalArena*> outbound;  ///< producer -> consumer (full arenas)
    SpscRing<OalArena*> recycled;  ///< consumer -> producer (empty arenas)

    // Producer-side state (owning thread + destructor/take_stranded only).
    OalArena* open = nullptr;
    std::deque<OalArena*> parked;  ///< FIFO backpressure overflow
    std::vector<std::unique_ptr<OalArena>> owned;  ///< allocation registry

    // Consumer-side state.
    std::vector<OalArena*> spare;  ///< recycle-ring overflow, retried later

    // Single-writer counters, read cross-thread by counters().
    std::atomic<std::uint64_t> published{0};
    std::atomic<std::uint64_t> entries_published{0};
    std::atomic<std::uint64_t> backpressure{0};
    std::atomic<std::uint64_t> allocated{0};
    std::atomic<std::uint64_t> drained{0};
    std::atomic<std::uint64_t> entries_drained{0};
  };

  /// Open arena with at least one entry of room (publishing a full one and
  /// pulling from the recycle ring / allocating as needed).  Producer side.
  OalArena* ensure_open(Lane& ln, std::uint32_t lane);
  /// append() cases the inline fast path rejects: no open arena yet, or the
  /// interval does not fit and must split across arenas.
  void append_slow(Lane& ln, std::uint32_t lane, ThreadId thread,
                   IntervalId interval, NodeId node, std::uint32_t start_pc,
                   std::uint32_t end_pc, std::span<const OalEntry> entries);
  /// Offers `arena` to the outbound ring, draining parked arenas first so
  /// FIFO order holds; parks it (counted) when the ring is full.
  void publish(Lane& ln, OalArena* arena);
  void count_drained(Lane& ln, const OalArena& arena);

  IngestConfig cfg_;
  /// Lane storage: pointers are stable across growth (unique_ptr), so
  /// hot-path access never takes lanes_mutex_ — only growth does.
  std::vector<std::unique_ptr<Lane>> lanes_;
  mutable std::mutex lanes_mutex_;
  std::atomic<std::uint32_t> lane_count_{0};
  std::uint32_t rr_ = 0;  ///< consumer round-robin cursor
};

}  // namespace djvm
