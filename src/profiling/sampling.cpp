#include "profiling/sampling.hpp"

#include <algorithm>
#include <cassert>

#include "common/primes.hpp"

namespace djvm {

SamplingPlan::SamplingPlan(Heap& heap) : heap_(heap) {
  sampled_.reserve(1024);
  sample_bytes_.reserve(1024);
  // Tag anything allocated before the plan was attached.
  for (ObjectId o = 0; o < heap_.object_count(); ++o) on_alloc(o);
}

std::uint32_t SamplingPlan::nominal_gap_for_rate(std::uint32_t instance_size,
                                                 std::uint32_t rate_x) {
  if (rate_x == 0) return 1;  // full sampling
  const std::uint64_t denom = static_cast<std::uint64_t>(instance_size) * rate_x;
  if (denom == 0) return 1;
  const std::uint64_t gap = kPageSize / denom;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(1, gap));
}

void SamplingPlan::set_nominal_gap(ClassId id, std::uint32_t nominal) {
  Klass& k = heap_.registry().at(id);
  k.sampling.nominal_gap = std::max<std::uint32_t>(1, nominal);
  k.sampling.real_gap =
      (k.sampling.nominal_gap <= 1)
          ? 1
          : static_cast<std::uint32_t>(nearest_prime(k.sampling.nominal_gap));
  k.sampling.initialized = true;
  // Shifted nodes derive their effective gap from the base: keep their
  // cached real gaps in step with the new nominal.
  for (std::size_t n = 0; n < node_shift_.size(); ++n) {
    refresh_node_gap(static_cast<NodeId>(n), id);
  }
}

void SamplingPlan::set_rate(ClassId id, std::uint32_t rate_x) {
  const Klass& k = heap_.registry().at(id);
  set_nominal_gap(id, nominal_gap_for_rate(k.instance_size, rate_x));
}

void SamplingPlan::set_rate_all(std::uint32_t rate_x) {
  default_rate_x_ = rate_x;
  for (Klass& k : heap_.registry().all()) set_rate(k.id, rate_x);
  resample_all();
}

std::uint32_t SamplingPlan::halve_gap(ClassId id) {
  Klass& k = heap_.registry().at(id);
  const std::uint32_t next = std::max<std::uint32_t>(1, k.sampling.nominal_gap / 2);
  set_nominal_gap(id, next);
  return next;
}

std::uint32_t SamplingPlan::double_gap(ClassId id) {
  Klass& k = heap_.registry().at(id);
  set_nominal_gap(id, k.sampling.nominal_gap * 2);
  return k.sampling.nominal_gap;
}

std::uint32_t SamplingPlan::real_gap(ClassId id) const {
  return heap_.registry().at(id).sampling.real_gap;
}

std::uint32_t SamplingPlan::nominal_gap(ClassId id) const {
  return heap_.registry().at(id).sampling.nominal_gap;
}

void SamplingPlan::set_cost_attribution(CostAttribution mode) {
  if (mode == attribution_) return;
  attribution_ = mode;
  // The base arrays change meaning (home-keyed bits vs cluster view) and
  // per-copy views only exist in the cached-copy model: recompute from
  // scratch.  The visits this pass books are drained by the next caller.
  if (attribution_ == CostAttribution::kHomeNode) {
    node_views_.clear();
  } else {
    // Nodes already carrying shifts need their own view under the new model.
    for (std::size_t n = 0; n < node_shift_.size(); ++n) {
      for (std::uint8_t s : node_shift_[n]) {
        if (s != 0) {
          ensure_node_view(static_cast<NodeId>(n));
          break;
        }
      }
    }
  }
  resample_all();
}

namespace {
/// Effective nominal gaps are clamped here so a large base gap with a large
/// shift cannot overflow (and the prime lookup stays in a sane range).
constexpr std::uint64_t kMaxEffectiveNominal = 1u << 24;
constexpr std::uint32_t kMaxNodeShift = 31;

/// The core sampling decision for one object under one gap.
struct SampleBits {
  std::uint8_t sampled = 0;
  std::uint32_t bytes = 0;
};

SampleBits compute_bits(const ObjectMeta& m, const Klass& k, std::uint32_t gap) {
  SampleBits out;
  if (k.is_array) {
    const std::uint32_t n = SamplingPlan::sampled_elements(m.start_seq, m.length, gap);
    out.sampled = n > 0 ? 1 : 0;
    out.bytes = n * k.instance_size;
  } else {
    const bool s = (gap <= 1) || (m.start_seq % gap == 0);
    out.sampled = s ? 1 : 0;
    out.bytes = s ? m.size_bytes : 0;
  }
  return out;
}
}  // namespace

void SamplingPlan::refresh_node_gap(NodeId node, ClassId id) {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  if (ni >= node_shift_.size() || ci >= node_shift_[ni].size()) return;
  const std::uint32_t shift = node_shift_[ni][ci];
  if (shift == 0) {
    node_real_gap_[ni][ci] = 0;  // 0 = fall through to the base real gap
    return;
  }
  const Klass& k = heap_.registry().at(id);
  const std::uint64_t nominal = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(k.sampling.nominal_gap) << shift,
      kMaxEffectiveNominal);
  node_real_gap_[ni][ci] =
      nominal <= 1 ? 1 : static_cast<std::uint32_t>(nearest_prime(nominal));
}

void SamplingPlan::ensure_node_view(NodeId node) {
  if (attribution_ != CostAttribution::kCachedCopy) return;
  const auto ni = static_cast<std::size_t>(node);
  if (node_views_.size() <= ni) node_views_.resize(ni + 1);
  NodeView& v = node_views_[ni];
  if (v.active) return;
  // Seed the view from the cluster view: a node picking up its first shift
  // agrees with the base on every class it has no shift for, and the
  // resampling walk the caller pairs with the shift refreshes the rest.
  v.sampled = sampled_;
  v.bytes = sample_bytes_;
  v.gap = sample_gap_;
  v.active = true;
}

void SamplingPlan::set_node_gap_shift(NodeId node, ClassId id, std::uint32_t shift) {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  const std::size_t classes = heap_.registry().size();
  assert(ci < classes);
  if (node_shift_.size() <= ni) {
    node_shift_.resize(ni + 1);
    node_real_gap_.resize(ni + 1);
  }
  for (std::size_t n = 0; n < node_shift_.size(); ++n) {
    if (node_shift_[n].size() < classes) {
      node_shift_[n].resize(classes, 0);
      node_real_gap_[n].resize(classes, 0);
    }
  }
  node_shift_[ni][ci] =
      static_cast<std::uint8_t>(std::min(shift, kMaxNodeShift));
  refresh_node_gap(node, id);
  if (shift != 0) ensure_node_view(node);
}

std::uint32_t SamplingPlan::node_gap_shift(NodeId node, ClassId id) const {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  if (ni >= node_shift_.size() || ci >= node_shift_[ni].size()) return 0;
  return node_shift_[ni][ci];
}

void SamplingPlan::clear_node_gap_shifts() {
  node_shift_.clear();
  node_real_gap_.clear();
  // With every shift gone each node's view would only restate the cluster
  // view; drop the copies so the hot path goes back to the base arrays.
  node_views_.clear();
}

bool SamplingPlan::has_node_gap_shifts() const {
  for (const auto& row : node_shift_) {
    for (std::uint8_t s : row) {
      if (s != 0) return true;
    }
  }
  return false;
}

std::uint32_t SamplingPlan::effective_nominal_gap(NodeId node, ClassId id) const {
  const Klass& k = heap_.registry().at(id);
  const std::uint32_t shift = node_gap_shift(node, id);
  if (shift == 0) return k.sampling.nominal_gap;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(k.sampling.nominal_gap) << shift,
      kMaxEffectiveNominal));
}

std::uint32_t SamplingPlan::effective_real_gap(NodeId node, ClassId id) const {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  if (ni >= node_real_gap_.size() || ci >= node_real_gap_[ni].size() ||
      node_real_gap_[ni][ci] == 0) {
    return heap_.registry().at(id).sampling.real_gap;
  }
  return node_real_gap_[ni][ci];
}

std::uint32_t SamplingPlan::sampled_elements(std::uint32_t start_seq,
                                             std::uint32_t length,
                                             std::uint32_t gap) {
  if (gap <= 1) return length;
  // Multiples of gap in [start_seq, start_seq + length - 1].
  const std::uint64_t hi = static_cast<std::uint64_t>(start_seq) + length - 1;
  const std::uint64_t lo = start_seq;
  return static_cast<std::uint32_t>(hi / gap - (lo - 1) / gap);
}

void SamplingPlan::recompute_node_view(NodeView& view, NodeId node, ObjectId obj) {
  const ObjectMeta& m = heap_.meta(obj);
  const Klass& k = heap_.registry().at(m.klass);
  const std::uint32_t gap = effective_real_gap(node, m.klass);
  const auto idx = static_cast<std::size_t>(obj);
  if (view.sampled.size() <= idx) {
    view.sampled.resize(idx + 1, 0);
    view.bytes.resize(idx + 1, 0);
    view.gap.resize(idx + 1, 1);
  }
  const SampleBits bits = compute_bits(m, k, gap);
  view.sampled[idx] = bits.sampled;
  view.bytes[idx] = bits.bytes;
  view.gap[idx] = gap;
}

void SamplingPlan::recompute(ObjectId obj) {
  const ObjectMeta& m = heap_.meta(obj);
  const Klass& k = heap_.registry().at(m.klass);
  // Cluster view: under the cached-copy model the base bit is the class base
  // gap (nodes without shifts all agree on it); the legacy model keys the
  // one cluster-wide bit to the *home* node's effective gap instead.
  const std::uint32_t gap = attribution_ == CostAttribution::kHomeNode
                                ? effective_real_gap(m.home, m.klass)
                                : k.sampling.real_gap;
  const auto idx = static_cast<std::size_t>(obj);
  const SampleBits bits = compute_bits(m, k, gap);
  sample_gap_[idx] = gap;
  sampled_[idx] = bits.sampled;
  sample_bytes_[idx] = bits.bytes;
  for (std::size_t n = 0; n < node_views_.size(); ++n) {
    if (node_views_[n].active) {
      recompute_node_view(node_views_[n], static_cast<NodeId>(n), obj);
    }
  }
}

void SamplingPlan::on_alloc(ObjectId obj) {
  const auto idx = static_cast<std::size_t>(obj);
  if (idx >= sampled_.size()) {
    sampled_.resize(idx + 1, 0);
    sample_bytes_.resize(idx + 1, 0);
    sample_gap_.resize(idx + 1, 1);
  }
  // Classes loaded after the cluster-wide rate was chosen inherit it on
  // their first allocation (class loading is lazy in a JVM).
  Klass& k = heap_.registry().at(heap_.meta(obj).klass);
  if (!k.sampling.initialized) set_rate(k.id, default_rate_x_);
  recompute(obj);
}

bool SamplingPlan::node_caches(NodeId node, ObjectId obj) const {
  if (copies_ != nullptr) return copies_->node_has_copy(node, obj);
  return heap_.meta(obj).home == node;
}

void SamplingPlan::note_copy_registered(NodeId node, ObjectId obj) {
  if (node == kInvalidNode) return;
  if (copy_registrations_.size() <= node) copy_registrations_.resize(node + 1, 0);
  ++copy_registrations_[node];
  // A shifted node's view is only guaranteed fresh for copies it held when
  // the shift moved (the per-node resample walks cached copies only): a
  // fresh fault-in recomputes the bit under the node's current gap.
  const auto ni = static_cast<std::size_t>(node);
  if (ni < node_views_.size() && node_views_[ni].active) {
    recompute_node_view(node_views_[ni], node, obj);
  }
}

void SamplingPlan::on_home_migrated(ObjectId obj, NodeId from, NodeId to) {
  // Under the legacy home-node model the cluster-wide bit is keyed to the
  // home's gap shift: re-key it under the new home *now* rather than letting
  // the old home's decision linger until the next full resample.  Under the
  // cached-copy model the base bit is home-independent, but the recompute
  // keeps every active view fresh too.  The new home pays the visit.
  recompute(obj);
  note_resampled(to);
  // The old home keeps the payload as an ordinary cached copy now.
  note_copy_registered(from, obj);
}

std::size_t SamplingPlan::note_resampled_copies(ObjectId obj) {
  // "Every thread will iterate through all objects of that class it caches":
  // each caching node pays one visit for its own copy.  Without copy-set
  // knowledge (or under the legacy model) the home pays a single visit.
  if (attribution_ == CostAttribution::kCachedCopy && copies_ != nullptr) {
    std::size_t visits = 0;
    const std::uint32_t nodes = copies_->copy_node_count();
    for (std::uint32_t n = 0; n < nodes; ++n) {
      if (copies_->node_has_copy(static_cast<NodeId>(n), obj)) {
        note_resampled(static_cast<NodeId>(n));
        ++visits;
      }
    }
    if (visits > 0) return visits;
  }
  note_resampled(heap_.meta(obj).home);
  return 1;
}

std::size_t SamplingPlan::resample_class(ClassId id) {
  return resample_classes({id});
}

std::size_t SamplingPlan::resample_classes(const std::vector<ClassId>& ids) {
  if (ids.empty()) return 0;
  std::vector<std::uint8_t> wanted(heap_.registry().size(), 0);
  for (ClassId id : ids) {
    if (static_cast<std::size_t>(id) < wanted.size()) {
      wanted[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::size_t visited = 0;
  for (ObjectId o = 0; o < heap_.object_count(); ++o) {
    const ObjectMeta& m = heap_.meta(o);
    if (static_cast<std::size_t>(m.klass) < wanted.size() &&
        wanted[static_cast<std::size_t>(m.klass)] != 0) {
      recompute(o);
      visited += note_resampled_copies(o);
    }
  }
  return visited;
}

std::size_t SamplingPlan::resample_classes_on_node(NodeId node,
                                                   const std::vector<ClassId>& ids) {
  if (ids.empty()) return 0;
  std::vector<std::uint8_t> wanted(heap_.registry().size(), 0);
  for (ClassId id : ids) {
    if (static_cast<std::size_t>(id) < wanted.size()) {
      wanted[static_cast<std::size_t>(id)] = 1;
    }
  }
  const auto ni = static_cast<std::size_t>(node);
  NodeView* view = ni < node_views_.size() && node_views_[ni].active
                       ? &node_views_[ni]
                       : nullptr;
  std::size_t visited = 0;
  for (ObjectId o = 0; o < heap_.object_count(); ++o) {
    const ObjectMeta& m = heap_.meta(o);
    if (static_cast<std::size_t>(m.klass) >= wanted.size() ||
        wanted[static_cast<std::size_t>(m.klass)] == 0) {
      continue;
    }
    if (attribution_ == CostAttribution::kCachedCopy) {
      // The walk covers exactly the copies this node holds — remote-homed
      // objects it caches included, objects it homes but also everything it
      // pulled in.  The walking node pays every visit.
      if (!node_caches(node, o)) continue;
      if (view != nullptr) {
        recompute_node_view(*view, node, o);
      } else {
        recompute(o);  // no shifts anywhere: the base view is this node's view
      }
    } else {
      if (m.home != node) continue;
      recompute(o);
    }
    note_resampled(node);
    ++visited;
  }
  return visited;
}

std::size_t SamplingPlan::resample_all() {
  const std::size_t n = heap_.object_count();
  if (sampled_.size() < n) {
    sampled_.resize(n, 0);
    sample_bytes_.resize(n, 0);
    sample_gap_.resize(n, 1);
  }
  std::size_t visited = 0;
  for (ObjectId o = 0; o < n; ++o) {
    recompute(o);
    visited += note_resampled_copies(o);
  }
  return visited;
}

std::vector<std::uint64_t> SamplingPlan::drain_resampled_by_node() {
  std::vector<std::uint64_t> out;
  out.swap(resampled_by_node_);
  return out;
}

void SamplingPlan::seed_copy_bookkeeping(std::vector<std::uint64_t> registrations,
                                         std::vector<std::uint64_t> visits) {
  copy_registrations_ = std::move(registrations);
  resample_visits_ = std::move(visits);
}

std::uint64_t SamplingPlan::estimated_full_bytes(ObjectId obj) const {
  const auto idx = static_cast<std::size_t>(obj);
  if (idx >= sampled_.size() || sampled_[idx] == 0) return 0;
  // sample_gap_ is the gap cached at the last (re)sample — the same gap the
  // sampled bit and amortized size were computed under, so the HT estimate
  // stays consistent.
  return static_cast<std::uint64_t>(sample_bytes_[idx]) * sample_gap_[idx];
}

void SamplingPlan::begin_epoch_stats() {
  epoch_stats_.assign(heap_.registry().size(), ClassEpochStats{});
  for (auto& row : node_epoch_stats_) {
    row.assign(heap_.registry().size(), ClassEpochStats{});
  }
}

void SamplingPlan::note_epoch_entry(ClassId id, std::uint32_t bytes,
                                    std::uint32_t gap) {
  const auto idx = static_cast<std::size_t>(id);
  // Entries come from externally submitted records: an unknown class id
  // (e.g. a default-initialized kInvalidClass) must not size the vector.
  if (idx >= heap_.registry().size()) return;
  if (idx >= epoch_stats_.size()) epoch_stats_.resize(idx + 1);
  ClassEpochStats& s = epoch_stats_[idx];
  ++s.entries;
  s.estimated_bytes += static_cast<std::uint64_t>(bytes) * std::max<std::uint32_t>(1, gap);
}

void SamplingPlan::note_epoch_node_entry(NodeId node, ClassId id,
                                         std::uint32_t bytes, std::uint32_t gap) {
  const auto ci = static_cast<std::size_t>(id);
  if (ci >= heap_.registry().size()) return;
  const auto ni = static_cast<std::size_t>(node);
  // Records come from external submission: an invalid node id must not size
  // the table (kInvalidNode is the u16 all-ones sentinel).
  if (node == kInvalidNode) return;
  if (node_epoch_stats_.size() <= ni) node_epoch_stats_.resize(ni + 1);
  auto& row = node_epoch_stats_[ni];
  if (row.size() <= ci) row.resize(heap_.registry().size());
  ClassEpochStats& s = row[ci];
  ++s.entries;
  s.estimated_bytes += static_cast<std::uint64_t>(bytes) * std::max<std::uint32_t>(1, gap);
}

std::uint64_t SamplingPlan::sampled_count() const {
  std::uint64_t n = 0;
  for (std::uint8_t b : sampled_) n += b;
  return n;
}

std::uint64_t SamplingPlan::sampled_count(NodeId node) const {
  const auto ni = static_cast<std::size_t>(node);
  if (ni >= node_views_.size() || !node_views_[ni].active) return sampled_count();
  std::uint64_t n = 0;
  for (std::uint8_t b : node_views_[ni].sampled) n += b;
  return n;
}

}  // namespace djvm
