#include "profiling/sampling.hpp"

#include <algorithm>
#include <cassert>

#include "common/primes.hpp"

namespace djvm {

SamplingPlan::SamplingPlan(Heap& heap) : heap_(heap) {
  sampled_.reserve(1024);
  sample_bytes_.reserve(1024);
  // Tag anything allocated before the plan was attached.
  for (ObjectId o = 0; o < heap_.object_count(); ++o) on_alloc(o);
}

std::uint32_t SamplingPlan::nominal_gap_for_rate(std::uint32_t instance_size,
                                                 std::uint32_t rate_x) {
  if (rate_x == 0) return 1;  // full sampling
  const std::uint64_t denom = static_cast<std::uint64_t>(instance_size) * rate_x;
  if (denom == 0) return 1;
  const std::uint64_t gap = kPageSize / denom;
  return static_cast<std::uint32_t>(std::max<std::uint64_t>(1, gap));
}

void SamplingPlan::set_nominal_gap(ClassId id, std::uint32_t nominal) {
  Klass& k = heap_.registry().at(id);
  k.sampling.nominal_gap = std::max<std::uint32_t>(1, nominal);
  k.sampling.real_gap =
      (k.sampling.nominal_gap <= 1)
          ? 1
          : static_cast<std::uint32_t>(nearest_prime(k.sampling.nominal_gap));
  k.sampling.initialized = true;
  // Shifted nodes derive their effective gap from the base: keep their
  // cached real gaps in step with the new nominal.
  for (std::size_t n = 0; n < node_shift_.size(); ++n) {
    refresh_node_gap(static_cast<NodeId>(n), id);
  }
}

void SamplingPlan::set_rate(ClassId id, std::uint32_t rate_x) {
  const Klass& k = heap_.registry().at(id);
  set_nominal_gap(id, nominal_gap_for_rate(k.instance_size, rate_x));
}

void SamplingPlan::set_rate_all(std::uint32_t rate_x) {
  default_rate_x_ = rate_x;
  for (Klass& k : heap_.registry().all()) set_rate(k.id, rate_x);
  resample_all();
}

std::uint32_t SamplingPlan::halve_gap(ClassId id) {
  Klass& k = heap_.registry().at(id);
  const std::uint32_t next = std::max<std::uint32_t>(1, k.sampling.nominal_gap / 2);
  set_nominal_gap(id, next);
  return next;
}

std::uint32_t SamplingPlan::double_gap(ClassId id) {
  Klass& k = heap_.registry().at(id);
  set_nominal_gap(id, k.sampling.nominal_gap * 2);
  return k.sampling.nominal_gap;
}

std::uint32_t SamplingPlan::real_gap(ClassId id) const {
  return heap_.registry().at(id).sampling.real_gap;
}

std::uint32_t SamplingPlan::nominal_gap(ClassId id) const {
  return heap_.registry().at(id).sampling.nominal_gap;
}

namespace {
/// Effective nominal gaps are clamped here so a large base gap with a large
/// shift cannot overflow (and the prime lookup stays in a sane range).
constexpr std::uint64_t kMaxEffectiveNominal = 1u << 24;
constexpr std::uint32_t kMaxNodeShift = 31;
}  // namespace

void SamplingPlan::refresh_node_gap(NodeId node, ClassId id) {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  if (ni >= node_shift_.size() || ci >= node_shift_[ni].size()) return;
  const std::uint32_t shift = node_shift_[ni][ci];
  if (shift == 0) {
    node_real_gap_[ni][ci] = 0;  // 0 = fall through to the base real gap
    return;
  }
  const Klass& k = heap_.registry().at(id);
  const std::uint64_t nominal = std::min<std::uint64_t>(
      static_cast<std::uint64_t>(k.sampling.nominal_gap) << shift,
      kMaxEffectiveNominal);
  node_real_gap_[ni][ci] =
      nominal <= 1 ? 1 : static_cast<std::uint32_t>(nearest_prime(nominal));
}

void SamplingPlan::set_node_gap_shift(NodeId node, ClassId id, std::uint32_t shift) {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  const std::size_t classes = heap_.registry().size();
  assert(ci < classes);
  if (node_shift_.size() <= ni) {
    node_shift_.resize(ni + 1);
    node_real_gap_.resize(ni + 1);
  }
  for (std::size_t n = 0; n < node_shift_.size(); ++n) {
    if (node_shift_[n].size() < classes) {
      node_shift_[n].resize(classes, 0);
      node_real_gap_[n].resize(classes, 0);
    }
  }
  node_shift_[ni][ci] =
      static_cast<std::uint8_t>(std::min(shift, kMaxNodeShift));
  refresh_node_gap(node, id);
}

std::uint32_t SamplingPlan::node_gap_shift(NodeId node, ClassId id) const {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  if (ni >= node_shift_.size() || ci >= node_shift_[ni].size()) return 0;
  return node_shift_[ni][ci];
}

void SamplingPlan::clear_node_gap_shifts() {
  node_shift_.clear();
  node_real_gap_.clear();
}

bool SamplingPlan::has_node_gap_shifts() const {
  for (const auto& row : node_shift_) {
    for (std::uint8_t s : row) {
      if (s != 0) return true;
    }
  }
  return false;
}

std::uint32_t SamplingPlan::effective_nominal_gap(NodeId node, ClassId id) const {
  const Klass& k = heap_.registry().at(id);
  const std::uint32_t shift = node_gap_shift(node, id);
  if (shift == 0) return k.sampling.nominal_gap;
  return static_cast<std::uint32_t>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(k.sampling.nominal_gap) << shift,
      kMaxEffectiveNominal));
}

std::uint32_t SamplingPlan::effective_real_gap(NodeId node, ClassId id) const {
  const auto ni = static_cast<std::size_t>(node);
  const auto ci = static_cast<std::size_t>(id);
  if (ni >= node_real_gap_.size() || ci >= node_real_gap_[ni].size() ||
      node_real_gap_[ni][ci] == 0) {
    return heap_.registry().at(id).sampling.real_gap;
  }
  return node_real_gap_[ni][ci];
}

std::uint32_t SamplingPlan::sampled_elements(std::uint32_t start_seq,
                                             std::uint32_t length,
                                             std::uint32_t gap) {
  if (gap <= 1) return length;
  // Multiples of gap in [start_seq, start_seq + length - 1].
  const std::uint64_t hi = static_cast<std::uint64_t>(start_seq) + length - 1;
  const std::uint64_t lo = start_seq;
  return static_cast<std::uint32_t>(hi / gap - (lo - 1) / gap);
}

void SamplingPlan::recompute(ObjectId obj) {
  const ObjectMeta& m = heap_.meta(obj);
  const Klass& k = heap_.registry().at(m.klass);
  // The object's home node owns its sampling decision: a per-node backoff
  // shift coarsens that node's objects without touching the rest.
  const std::uint32_t gap = effective_real_gap(m.home, m.klass);
  const auto idx = static_cast<std::size_t>(obj);
  sample_gap_[idx] = gap;
  if (k.is_array) {
    const std::uint32_t n = sampled_elements(m.start_seq, m.length, gap);
    sampled_[idx] = n > 0 ? 1 : 0;
    sample_bytes_[idx] = n * k.instance_size;
  } else {
    const bool s = (gap <= 1) || (m.start_seq % gap == 0);
    sampled_[idx] = s ? 1 : 0;
    sample_bytes_[idx] = s ? m.size_bytes : 0;
  }
}

void SamplingPlan::on_alloc(ObjectId obj) {
  const auto idx = static_cast<std::size_t>(obj);
  if (idx >= sampled_.size()) {
    sampled_.resize(idx + 1, 0);
    sample_bytes_.resize(idx + 1, 0);
    sample_gap_.resize(idx + 1, 1);
  }
  // Classes loaded after the cluster-wide rate was chosen inherit it on
  // their first allocation (class loading is lazy in a JVM).
  Klass& k = heap_.registry().at(heap_.meta(obj).klass);
  if (!k.sampling.initialized) set_rate(k.id, default_rate_x_);
  recompute(obj);
}

std::size_t SamplingPlan::resample_class(ClassId id) {
  return resample_classes({id});
}

std::size_t SamplingPlan::resample_classes(const std::vector<ClassId>& ids) {
  if (ids.empty()) return 0;
  std::vector<std::uint8_t> wanted(heap_.registry().size(), 0);
  for (ClassId id : ids) {
    if (static_cast<std::size_t>(id) < wanted.size()) {
      wanted[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::size_t visited = 0;
  for (ObjectId o = 0; o < heap_.object_count(); ++o) {
    const ObjectMeta& m = heap_.meta(o);
    if (static_cast<std::size_t>(m.klass) < wanted.size() &&
        wanted[static_cast<std::size_t>(m.klass)] != 0) {
      recompute(o);
      note_resampled(m.home);
      ++visited;
    }
  }
  return visited;
}

std::size_t SamplingPlan::resample_classes_on_node(NodeId node,
                                                   const std::vector<ClassId>& ids) {
  if (ids.empty()) return 0;
  std::vector<std::uint8_t> wanted(heap_.registry().size(), 0);
  for (ClassId id : ids) {
    if (static_cast<std::size_t>(id) < wanted.size()) {
      wanted[static_cast<std::size_t>(id)] = 1;
    }
  }
  std::size_t visited = 0;
  for (ObjectId o = 0; o < heap_.object_count(); ++o) {
    const ObjectMeta& m = heap_.meta(o);
    if (m.home == node && static_cast<std::size_t>(m.klass) < wanted.size() &&
        wanted[static_cast<std::size_t>(m.klass)] != 0) {
      recompute(o);
      note_resampled(m.home);
      ++visited;
    }
  }
  return visited;
}

std::size_t SamplingPlan::resample_all() {
  const std::size_t n = heap_.object_count();
  if (sampled_.size() < n) {
    sampled_.resize(n, 0);
    sample_bytes_.resize(n, 0);
    sample_gap_.resize(n, 1);
  }
  for (ObjectId o = 0; o < n; ++o) {
    recompute(o);
    note_resampled(heap_.meta(o).home);
  }
  return n;
}

std::vector<std::uint64_t> SamplingPlan::drain_resampled_by_node() {
  std::vector<std::uint64_t> out;
  out.swap(resampled_by_node_);
  return out;
}

std::uint64_t SamplingPlan::estimated_full_bytes(ObjectId obj) const {
  const auto idx = static_cast<std::size_t>(obj);
  if (idx >= sampled_.size() || sampled_[idx] == 0) return 0;
  // sample_gap_ is the effective (per-node) gap cached at the last
  // (re)sample — the same gap the sampled bit and amortized size were
  // computed under, so the HT estimate stays consistent.
  return static_cast<std::uint64_t>(sample_bytes_[idx]) * sample_gap_[idx];
}

void SamplingPlan::begin_epoch_stats() {
  epoch_stats_.assign(heap_.registry().size(), ClassEpochStats{});
  for (auto& row : node_epoch_stats_) {
    row.assign(heap_.registry().size(), ClassEpochStats{});
  }
}

void SamplingPlan::note_epoch_entry(ClassId id, std::uint32_t bytes,
                                    std::uint32_t gap) {
  const auto idx = static_cast<std::size_t>(id);
  // Entries come from externally submitted records: an unknown class id
  // (e.g. a default-initialized kInvalidClass) must not size the vector.
  if (idx >= heap_.registry().size()) return;
  if (idx >= epoch_stats_.size()) epoch_stats_.resize(idx + 1);
  ClassEpochStats& s = epoch_stats_[idx];
  ++s.entries;
  s.estimated_bytes += static_cast<std::uint64_t>(bytes) * std::max<std::uint32_t>(1, gap);
}

void SamplingPlan::note_epoch_node_entry(NodeId node, ClassId id,
                                         std::uint32_t bytes, std::uint32_t gap) {
  const auto ci = static_cast<std::size_t>(id);
  if (ci >= heap_.registry().size()) return;
  const auto ni = static_cast<std::size_t>(node);
  // Records come from external submission: an invalid node id must not size
  // the table (kInvalidNode is the u16 all-ones sentinel).
  if (node == kInvalidNode) return;
  if (node_epoch_stats_.size() <= ni) node_epoch_stats_.resize(ni + 1);
  auto& row = node_epoch_stats_[ni];
  if (row.size() <= ci) row.resize(heap_.registry().size());
  ClassEpochStats& s = row[ci];
  ++s.entries;
  s.estimated_bytes += static_cast<std::uint64_t>(bytes) * std::max<std::uint32_t>(1, gap);
}

std::uint64_t SamplingPlan::sampled_count() const {
  std::uint64_t n = 0;
  for (std::uint8_t b : sampled_) n += b;
  return n;
}

}  // namespace djvm
