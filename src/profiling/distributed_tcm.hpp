// Distributed / parallel TCM reduction (the paper's future work: "it is
// desirable to have distributed algorithms for deducing correlation maps in
// a more scalable way", Section VI).
//
// Instead of shipping every OAL to one coordinator that does the whole
// O(MN^2) accrual, each node reduces its *local* interval records into
// per-object partial summaries; the summaries are then merged pairwise up a
// reduction tree (like an MPI_Reduce over a custom monoid) and the pair
// accrual runs once over the merged summaries — optionally sharded across
// worker threads, since distinct objects contribute independent updates.
//
// The result is bit-identical to the centralized TcmBuilder (tests assert
// this); what changes is where the work happens and how it scales.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "net/network.hpp"
#include "profiling/tcm.hpp"

namespace djvm {

/// Per-node partial reduction state: per-object (thread, bytes) summaries
/// built from that node's interval records only.
struct NodePartial {
  NodeId node = kInvalidNode;
  std::vector<ObjectAccessSummary> summaries;

  /// Wire size when shipped up the reduction tree: object id + per-reader
  /// (thread id, bytes) entries.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept;
};

/// Distributed TCM reduction.
class DistributedTcmReducer {
 public:
  /// Phase 1: each node reduces its own records.  `records` may contain
  /// records from many nodes; they are grouped by IntervalRecord::node.
  [[nodiscard]] static std::vector<NodePartial> local_reduce(
      std::span<const IntervalRecord> records, bool weighted);

  /// Merges `b` into `a` (the reduction monoid: per-object reader lists
  /// union, byte values combined by max — the same rule reorganize() uses
  /// across intervals).
  static void merge(NodePartial& a, const NodePartial& b);

  /// Phase 2: binary reduction tree over the partials.  When `net` is given,
  /// each merge step accounts one message carrying the child partial (so the
  /// traffic of the distributed scheme can be compared against centralized
  /// OAL shipping).  Returns the fully merged partial.
  [[nodiscard]] static NodePartial tree_reduce(std::vector<NodePartial> partials,
                                               Network* net = nullptr);

  /// Phase 3: pair accrual over merged summaries, sharded over `threads_hw`
  /// worker threads (1 = sequential).  Shards partition the objects (each
  /// object's summary appears once), so workers fold into private sparse
  /// upper-triangular accumulators whose pair arrays simply add at the end —
  /// no dense N x N matrix per worker, one densify for the final map.
  [[nodiscard]] static SquareMatrix accrue_parallel(
      std::span<const ObjectAccessSummary> summaries, std::uint32_t threads,
      unsigned threads_hw);

  /// Full pipeline: local reduce -> tree reduce -> (parallel) accrual.
  [[nodiscard]] static SquareMatrix build(std::span<const IntervalRecord> records,
                                          std::uint32_t threads, bool weighted,
                                          unsigned threads_hw = 1,
                                          Network* net = nullptr);
};

}  // namespace djvm
