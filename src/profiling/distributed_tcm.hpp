// Distributed / parallel TCM reduction (the paper's future work: "it is
// desirable to have distributed algorithms for deducing correlation maps in
// a more scalable way", Section VI).
//
// Instead of shipping every OAL to one coordinator that does the whole
// O(MN^2) accrual, each node reduces its *local* interval records into
// per-object partial summaries; the summaries are then merged pairwise up a
// reduction tree (like an MPI_Reduce over a custom monoid) and the pair
// accrual runs once over the merged summaries — optionally sharded across
// worker threads, since distinct objects contribute independent updates.
//
// The result is bit-identical to the centralized TcmBuilder (tests assert
// this); what changes is where the work happens and how it scales.
//
// Two partial representations coexist:
//
//  * `NodePartial` — the original per-object `vector<pair>` summaries behind
//    a hash map.  Every reduction level re-hashes and re-scans reader
//    vectors; kept verbatim as the equivalence oracle.
//  * `NodeCsrPartial` — the same monoid carried as a flat CSR `ReaderArena`
//    end-to-end: local reduce bucket-sorts records (or drained ingest
//    arenas) straight into per-node CSR partials, and every level of the
//    reduction tree merges CSR-to-CSR through the same bucket-sort
//    machinery — no level re-hashes, no per-object vectors anywhere.
//    `build()` routes through this pipeline.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "net/network.hpp"
#include "profiling/tcm.hpp"

namespace djvm {

/// Per-node partial reduction state: per-object (thread, bytes) summaries
/// built from that node's interval records only.
struct NodePartial {
  NodeId node = kInvalidNode;
  std::vector<ObjectAccessSummary> summaries;

  /// Wire size when shipped up the reduction tree: object id + per-reader
  /// (thread id, bytes) entries.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept;
};

/// Per-node partial in flat CSR form (see ReaderArena): the representation
/// the reduction tree carries end-to-end so no level re-hashes.  Byte values
/// inside the arena are already Horvitz-Thompson weighted when requested.
struct NodeCsrPartial {
  NodeId node = kInvalidNode;
  ReaderArena arena;

  /// Wire size when shipped up the reduction tree.  Priced identically to
  /// NodePartial (header + object id + (thread, bytes) reader entries) so
  /// traffic comparisons between the two pipelines measure representation
  /// compactness on the wire, not an accounting difference.
  [[nodiscard]] std::uint64_t wire_bytes() const noexcept;
};

/// Distributed TCM reduction.
class DistributedTcmReducer {
 public:
  /// Phase 1: each node reduces its own records.  `records` may contain
  /// records from many nodes; they are grouped by IntervalRecord::node.
  [[nodiscard]] static std::vector<NodePartial> local_reduce(
      std::span<const IntervalRecord> records, bool weighted);

  /// Phase 1, CSR: buckets records per node (no hashing — record pointers
  /// are grouped by a linear node scan) and reorganizes each bucket straight
  /// into a CSR partial.  Partials come back sorted by node id.
  [[nodiscard]] static std::vector<NodeCsrPartial> local_reduce_csr(
      std::span<const IntervalRecord> records, bool weighted,
      ArenaScratch& scratch);

  /// Phase 1, CSR, over drained ingest log arenas: interval slices bucket
  /// per node (one arena may mix slices from many threads and nodes), then
  /// each bucket reorganizes in place — no IntervalRecord is materialized
  /// anywhere between the producer's append and the per-node partial.
  [[nodiscard]] static std::vector<NodeCsrPartial> local_reduce_csr(
      std::span<const OalArena* const> logs, bool weighted,
      ArenaScratch& scratch);

  /// Merges `b` into `a` (the reduction monoid: per-object reader lists
  /// union, byte values combined by max — the same rule reorganize() uses
  /// across intervals).
  static void merge(NodePartial& a, const NodePartial& b);

  /// Phase 2: binary reduction tree over the partials.  When `net` is given,
  /// each merge step ships the child partial over the *reliable* transport
  /// (retry/backoff per the network's fault plan) and accounts its traffic,
  /// so the distributed scheme can be compared against centralized OAL
  /// shipping.  A child whose exchange exhausts its retries (dead node,
  /// partition, relentless drops) is excluded from the merge — the map is
  /// then incomplete, not wrong — and its node id is appended to
  /// `lost_nodes` when given.  Returns the fully merged partial.
  [[nodiscard]] static NodePartial tree_reduce(
      std::vector<NodePartial> partials, Network* net = nullptr,
      std::vector<NodeId>* lost_nodes = nullptr);

  /// Merges `b` into `a` in CSR form (TcmBuilder::merge_arenas — a bucket
  /// sort, not a hash probe per object).
  static void merge_csr(NodeCsrPartial& a, const NodeCsrPartial& b,
                        ArenaScratch& scratch);

  /// Phase 2, CSR: the same binary reduction tree over CSR partials.  Every
  /// level merges arena-to-arena; `net` accounting, retry semantics, and
  /// lost-partial reporting match tree_reduce.
  [[nodiscard]] static NodeCsrPartial tree_reduce_csr(
      std::vector<NodeCsrPartial> partials, Network* net,
      ArenaScratch& scratch, std::vector<NodeId>* lost_nodes = nullptr);

  /// Phase 3: pair accrual over merged summaries, sharded over `threads_hw`
  /// worker threads (1 = sequential).  Shards partition the objects (each
  /// object's summary appears once), so workers fold into private sparse
  /// upper-triangular accumulators whose pair arrays simply add at the end —
  /// no dense N x N matrix per worker, one densify for the final map.
  [[nodiscard]] static SquareMatrix accrue_parallel(
      std::span<const ObjectAccessSummary> summaries, std::uint32_t threads,
      unsigned threads_hw);

  /// Phase 3, CSR: pair accrual over the merged arena.  The CSR offsets give
  /// natural object shards — workers accrue disjoint object ranges into
  /// private upper-triangular accumulators that sum at the end.
  [[nodiscard]] static SquareMatrix accrue_parallel(const ReaderArena& arena,
                                                    std::uint32_t threads,
                                                    unsigned threads_hw);

  /// Full pipeline, routed through the CSR partials end-to-end:
  /// local_reduce_csr -> tree_reduce_csr -> (parallel) accrual.
  /// `lost_nodes` collects nodes whose partials the reduction tree could not
  /// deliver (see tree_reduce); the returned map omits their contribution.
  [[nodiscard]] static SquareMatrix build(std::span<const IntervalRecord> records,
                                          std::uint32_t threads, bool weighted,
                                          unsigned threads_hw = 1,
                                          Network* net = nullptr,
                                          std::vector<NodeId>* lost_nodes = nullptr);

  /// Full CSR pipeline over drained ingest log arenas.
  [[nodiscard]] static SquareMatrix build(std::span<const OalArena* const> logs,
                                          std::uint32_t threads, bool weighted,
                                          unsigned threads_hw = 1,
                                          Network* net = nullptr,
                                          std::vector<NodeId>* lost_nodes = nullptr);
};

}  // namespace djvm
