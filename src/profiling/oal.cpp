#include "profiling/oal.hpp"

// IntervalRecord is a plain data carrier; this translation unit exists to
// anchor the module and host future serialization helpers.

namespace djvm {}  // namespace djvm
