#include "profiling/tcm.hpp"

#include <algorithm>
#include <cassert>

#include "profiling/ingest.hpp"

namespace djvm {

namespace {

/// Direct-index tables stop growing past this many object ids; rarer sparse
/// ids (nothing in the tree produces them, but the API accepts any id) go
/// through a hash map instead of sizing an allocation.
constexpr ObjectId kDirectSlotCap = 1ull << 24;

}  // namespace

// --- ObjectSlotMap ------------------------------------------------------------

std::int32_t ObjectSlotMap::get_or_assign(ObjectId obj, bool& fresh) {
  if (obj < kDirectSlotCap) [[likely]] {
    if (obj >= table_.size()) {
      table_.resize(static_cast<std::size_t>(obj) + 1, -1);
    }
    std::int32_t& cell = table_[static_cast<std::size_t>(obj)];
    fresh = cell < 0;
    if (fresh) cell = count_++;
    return cell;
  }
  auto [it, inserted] = spill_.try_emplace(obj, count_);
  fresh = inserted;
  if (inserted) ++count_;
  return it->second;
}

bool ObjectSlotMap::contains(ObjectId obj) const {
  if (obj < kDirectSlotCap) {
    return obj < table_.size() && table_[static_cast<std::size_t>(obj)] >= 0;
  }
  return spill_.count(obj) != 0;
}

void ObjectSlotMap::release(std::span<const ObjectId> touched) {
  for (const ObjectId obj : touched) {
    if (obj < kDirectSlotCap) {
      table_[static_cast<std::size_t>(obj)] = -1;
    }
  }
  spill_.clear();
  count_ = 0;
}

// --- arena reorganize ---------------------------------------------------------

namespace {

/// The shared bucket-sort machinery behind every reorganize/merge variant:
/// `for_each` must invoke its argument once per (thread, object, class,
/// already-scaled bytes) tuple, in any order, any number of times per
/// (thread, object).  Pass 1 flattens through the direct-indexed slot map,
/// pass 2 prefix-sums + scatters, pass 3 stamp-dedups each segment in place
/// with max-combining.
template <typename ForEach>
ReaderArena reorganize_impl(ArenaScratch& s, std::size_t total_hint,
                            ForEach&& for_each) {
  ReaderArena arena;
  s.counts.clear();
  s.flat_slot.clear();
  s.flat_reader.clear();

  // Pass 1: flatten entries, assigning dense object slots in first-appearance
  // order (direct-indexed bucket "hash" — object ids are dense heap ids) and
  // counting each slot's bucket size.
  s.flat_slot.reserve(total_hint);
  s.flat_reader.reserve(total_hint);

  ThreadId max_thread = 0;
  for_each([&](ThreadId thread, ObjectId obj, ClassId klass, double bytes) {
    bool fresh = false;
    const std::int32_t slot = s.slots.get_or_assign(obj, fresh);
    if (fresh) {
      arena.objects.push_back(obj);
      arena.klass.push_back(klass);
      s.counts.push_back(0);
    }
    ++s.counts[static_cast<std::size_t>(slot)];
    max_thread = std::max(max_thread, thread);
    s.flat_slot.push_back(static_cast<std::uint32_t>(slot));
    s.flat_reader.emplace_back(thread, bytes);
  });

  // Pass 2: prefix sums + scatter into the contiguous buffer (bucket sort).
  const std::size_t object_count = arena.objects.size();
  arena.offsets.assign(object_count + 1, 0);
  for (std::size_t k = 0; k < object_count; ++k) {
    arena.offsets[k + 1] = arena.offsets[k] + s.counts[k];
  }
  s.cursor.assign(arena.offsets.begin(), arena.offsets.end() - 1);
  arena.readers.resize(s.flat_reader.size());
  for (std::size_t i = 0; i < s.flat_reader.size(); ++i) {
    arena.readers[s.cursor[s.flat_slot[i]]++] = s.flat_reader[i];
  }

  // Pass 3: dedup each segment by thread with max-combining.  Stamps are
  // direct-indexed by thread id (thread ids are dense too) and epoch-tagged,
  // so reuse across calls never needs a re-zeroing pass; the write cursor
  // trails the read cursor, so compaction is in place.
  if (s.stamp.size() <= max_thread) {
    s.stamp.resize(static_cast<std::size_t>(max_thread) + 1, 0);
    s.pos.resize(static_cast<std::size_t>(max_thread) + 1, 0);
  }
  std::uint32_t write = 0;
  for (std::size_t k = 0; k < object_count; ++k) {
    const std::uint64_t epoch = ++s.epoch;
    const std::uint32_t lo = arena.offsets[k];
    const std::uint32_t hi = arena.offsets[k + 1];
    arena.offsets[k] = write;
    for (std::uint32_t r = lo; r < hi; ++r) {
      const auto [thread, bytes] = arena.readers[r];
      const auto ti = static_cast<std::size_t>(thread);
      if (s.stamp[ti] != epoch) {
        s.stamp[ti] = epoch;
        s.pos[ti] = write;
        arena.readers[write++] = {thread, bytes};
      } else if (bytes > arena.readers[s.pos[ti]].second) {
        arena.readers[s.pos[ti]].second = bytes;
      }
    }
  }
  arena.offsets[object_count] = write;
  arena.readers.resize(write);

  // Release the slot assignments (the direct table keeps its allocation for
  // the next call).
  s.slots.release(arena.objects);
  return arena;
}

}  // namespace

ReaderArena TcmBuilder::reorganize_arena(std::span<const IntervalRecord> records,
                                         bool weighted) {
  ArenaScratch scratch;
  return reorganize_arena(records, weighted, scratch);
}

ReaderArena TcmBuilder::reorganize_arena(std::span<const IntervalRecord> records,
                                         bool weighted, ArenaScratch& s) {
  std::size_t total_entries = 0;
  for (const IntervalRecord& rec : records) total_entries += rec.entries.size();
  return reorganize_impl(s, total_entries, [&](auto&& emit) {
    for (const IntervalRecord& rec : records) {
      for (const OalEntry& e : rec.entries) {
        const double bytes = weighted
                                 ? static_cast<double>(e.bytes) * e.gap
                                 : static_cast<double>(e.bytes);
        emit(rec.thread, e.obj, e.klass, bytes);
      }
    }
  });
}

ReaderArena TcmBuilder::reorganize_arena(
    std::span<const IntervalRecord* const> records, bool weighted,
    ArenaScratch& s) {
  std::size_t total_entries = 0;
  for (const IntervalRecord* rec : records) total_entries += rec->entries.size();
  return reorganize_impl(s, total_entries, [&](auto&& emit) {
    for (const IntervalRecord* rec : records) {
      for (const OalEntry& e : rec->entries) {
        const double bytes = weighted
                                 ? static_cast<double>(e.bytes) * e.gap
                                 : static_cast<double>(e.bytes);
        emit(rec->thread, e.obj, e.klass, bytes);
      }
    }
  });
}

ReaderArena TcmBuilder::reorganize_arena(const OalArena& log, bool weighted,
                                         ArenaScratch& s) {
  return reorganize_impl(s, log.entries.size(), [&](auto&& emit) {
    for (const ArenaInterval& iv : log.intervals) {
      for (std::uint32_t i = iv.begin; i < iv.end; ++i) {
        const OalEntry& e = log.entries[i];
        const double bytes = weighted
                                 ? static_cast<double>(e.bytes) * e.gap
                                 : static_cast<double>(e.bytes);
        emit(iv.thread, e.obj, e.klass, bytes);
      }
    }
  });
}

ReaderArena TcmBuilder::reorganize_arena(std::span<const ArenaSliceRef> slices,
                                         bool weighted, ArenaScratch& s) {
  std::size_t total_entries = 0;
  for (const ArenaSliceRef& ref : slices) {
    const ArenaInterval& iv = ref.log->intervals[ref.slice];
    total_entries += iv.end - iv.begin;
  }
  return reorganize_impl(s, total_entries, [&](auto&& emit) {
    for (const ArenaSliceRef& ref : slices) {
      const ArenaInterval& iv = ref.log->intervals[ref.slice];
      for (std::uint32_t i = iv.begin; i < iv.end; ++i) {
        const OalEntry& e = ref.log->entries[i];
        const double bytes = weighted
                                 ? static_cast<double>(e.bytes) * e.gap
                                 : static_cast<double>(e.bytes);
        emit(iv.thread, e.obj, e.klass, bytes);
      }
    }
  });
}

ReaderArena TcmBuilder::merge_arenas(const ReaderArena& a, const ReaderArena& b,
                                     ArenaScratch& s) {
  const auto feed = [](const ReaderArena& src, auto& emit) {
    for (std::size_t k = 0; k < src.object_count(); ++k) {
      for (const auto& [thread, bytes] : src.readers_of(k)) {
        emit(thread, src.objects[k], src.klass[k], bytes);
      }
    }
  };
  return reorganize_impl(s, a.readers.size() + b.readers.size(),
                         [&](auto&& emit) {
                           feed(a, emit);
                           feed(b, emit);
                         });
}

std::vector<ObjectAccessSummary> TcmBuilder::reorganize(
    std::span<const IntervalRecord> records, bool weighted) {
  const ReaderArena arena = reorganize_arena(records, weighted);
  std::vector<ObjectAccessSummary> summaries;
  summaries.reserve(arena.object_count());
  for (std::size_t k = 0; k < arena.object_count(); ++k) {
    const auto readers = arena.readers_of(k);
    summaries.push_back(ObjectAccessSummary{
        arena.objects[k], {readers.begin(), readers.end()}});
  }
  return summaries;
}

// --- accrual ------------------------------------------------------------------

SquareMatrix TcmBuilder::accrue(std::span<const ObjectAccessSummary> summaries,
                                std::uint32_t threads) {
  SquareMatrix tcm(threads);
  for (const ObjectAccessSummary& s : summaries) {
    const auto& r = s.readers;
    for (std::size_t i = 0; i < r.size(); ++i) {
      for (std::size_t j = i + 1; j < r.size(); ++j) {
        const double shared = std::min(r[i].second, r[j].second);
        if (r[i].first < threads && r[j].first < threads) {
          tcm.add_symmetric(r[i].first, r[j].first, shared);
        }
      }
    }
  }
  return tcm;
}

UpperTriangle TcmBuilder::accrue_sparse(const ReaderArena& arena,
                                        std::uint32_t threads) {
  UpperTriangle pairs(threads);
  for (std::size_t k = 0; k < arena.object_count(); ++k) {
    const auto r = arena.readers_of(k);
    for (std::size_t i = 0; i < r.size(); ++i) {
      if (r[i].first >= threads) continue;
      for (std::size_t j = i + 1; j < r.size(); ++j) {
        if (r[j].first >= threads) continue;
        pairs.add(r[i].first, r[j].first, std::min(r[i].second, r[j].second));
      }
    }
  }
  return pairs;
}

SquareMatrix TcmBuilder::build(std::span<const IntervalRecord> records,
                               std::uint32_t threads, bool weighted) {
  return accrue_sparse(reorganize_arena(records, weighted), threads).densify();
}

SquareMatrix TcmBuilder::build_reference(std::span<const IntervalRecord> records,
                                         std::uint32_t threads, bool weighted) {
  // The seed's pipeline, preserved verbatim: per-object summaries behind a
  // hash map (one rehash + one linear reader scan per entry, one vector per
  // object), then dense accrual — the oracle the sparse pipeline is measured
  // and verified against.
  std::unordered_map<ObjectId, std::size_t> index;
  std::vector<ObjectAccessSummary> summaries;
  index.reserve(1024);
  for (const IntervalRecord& rec : records) {
    for (const OalEntry& e : rec.entries) {
      const double bytes = weighted
                               ? static_cast<double>(e.bytes) * e.gap
                               : static_cast<double>(e.bytes);
      auto [it, inserted] = index.try_emplace(e.obj, summaries.size());
      if (inserted) {
        summaries.push_back(ObjectAccessSummary{e.obj, {}});
      }
      auto& readers = summaries[it->second].readers;
      auto rit = std::find_if(readers.begin(), readers.end(),
                              [&](const auto& p) { return p.first == rec.thread; });
      if (rit == readers.end()) {
        readers.emplace_back(rec.thread, bytes);
      } else {
        rit->second = std::max(rit->second, bytes);
      }
    }
  }
  return accrue(summaries, threads);
}

// --- incremental accumulator --------------------------------------------------

TcmAccumulator::TcmAccumulator(std::uint32_t threads, bool weighted)
    : threads_(threads), weighted_(weighted), pairs_(threads) {}

std::int32_t TcmAccumulator::assign_slot(ObjectId obj) {
  bool fresh = false;
  const std::int32_t slot = slots_.get_or_assign(obj, fresh);
  if (fresh) {
    touched_.push_back(obj);
    klass_.push_back(kInvalidClass);
    heads_.push_back(kNone);
    last_touch_.push_back(epoch_);
    decay_epoch_.push_back(kNeverDecayed);
  }
  return slot;
}

std::int32_t TcmAccumulator::alloc_reader(ThreadId thread, double bytes,
                                          std::int32_t next) {
  ++live_readers_;
  if (free_head_ != kNone) {
    const std::int32_t r = free_head_;
    free_head_ = pool_[r].next;
    pool_[r] = Reader{thread, bytes, next};
    return r;
  }
  pool_.push_back(Reader{thread, bytes, next});
  return static_cast<std::int32_t>(pool_.size()) - 1;
}

void TcmAccumulator::add_one(ObjectId obj, ThreadId thread, double bytes) {
  if (thread >= threads_) return;  // beyond the map's dimension (as accrue)
  const std::int32_t slot = assign_slot(obj);
  last_touch_[static_cast<std::size_t>(slot)] = epoch_;
  std::int32_t& head = heads_[static_cast<std::size_t>(slot)];

  std::int32_t found = kNone;
  for (std::int32_t r = head; r != kNone; r = pool_[r].next) {
    if (pool_[r].thread == thread) {
      found = r;
      break;
    }
  }
  if (found != kNone) {
    const double old = pool_[found].bytes;
    if (bytes <= old) return;  // max-combining: nothing new to contribute
    // Raising this reader's byte value moves every pair it participates in
    // by min(new, other) - min(old, other); the invariant pair == min(cur_i,
    // cur_j) per object is preserved.
    for (std::int32_t r = head; r != kNone; r = pool_[r].next) {
      if (r == found) continue;
      const double other = pool_[r].bytes;
      const double delta = std::min(bytes, other) - std::min(old, other);
      if (delta > 0.0) pairs_.add(thread, pool_[r].thread, delta);
    }
    pool_[found].bytes = bytes;
    return;
  }
  // First sighting of this (object, thread): pair up with every reader
  // already on the object's list.
  for (std::int32_t r = head; r != kNone; r = pool_[r].next) {
    pairs_.add(thread, pool_[r].thread, std::min(bytes, pool_[r].bytes));
  }
  head = alloc_reader(thread, bytes, head);
}

void TcmAccumulator::add(std::span<const IntervalRecord> records) {
  // Arena-reorganize the batch first: in-batch duplicates collapse under a
  // stamp check instead of paying a reader-list walk each.  The scratch
  // persists across folds, so steady-state batches allocate only the
  // arena's own payload.
  const ReaderArena arena =
      TcmBuilder::reorganize_arena(records, weighted_, scratch_);
  for (std::size_t k = 0; k < arena.object_count(); ++k) {
    add_readers(arena.objects[k], arena.readers_of(k), arena.klass[k]);
  }
}

void TcmAccumulator::add(const OalArena& log) {
  const ReaderArena arena =
      TcmBuilder::reorganize_arena(log, weighted_, scratch_);
  for (std::size_t k = 0; k < arena.object_count(); ++k) {
    add_readers(arena.objects[k], arena.readers_of(k), arena.klass[k]);
  }
}

void TcmAccumulator::add(const ReaderArena& arena) {
  for (std::size_t k = 0; k < arena.object_count(); ++k) {
    add_readers(arena.objects[k], arena.readers_of(k), arena.klass[k]);
  }
}

void TcmAccumulator::add_readers(
    ObjectId obj, std::span<const std::pair<ThreadId, double>> readers,
    ClassId klass) {
  for (const auto& [thread, bytes] : readers) add_one(obj, thread, bytes);
  if (klass == kInvalidClass) return;
  // Tag only objects that actually hold a slot (every reader could have been
  // beyond the map's dimension, in which case add_one assigned nothing).
  if (slots_.contains(obj)) {
    bool fresh = false;
    klass_[static_cast<std::size_t>(slots_.get_or_assign(obj, fresh))] = klass;
  }
}

TcmClassAttribution TcmAccumulator::attribute_cells(
    std::span<const NodeId> node_of_thread) const {
  TcmClassAttribution out;
  const auto node_of = [&](ThreadId t) {
    return t < node_of_thread.size() ? node_of_thread[t] : kInvalidNode;
  };
  const auto grow = [&](std::size_t c) {
    if (out.cut_bytes.size() <= c) {
      out.cut_bytes.resize(c + 1, 0.0);
      out.local_bytes.resize(c + 1, 0.0);
      out.thread_mass.resize(c + 1);
    }
    if (out.thread_mass[c].empty()) out.thread_mass[c].resize(threads_, 0.0);
  };
  for (std::size_t slot = 0; slot < touched_.size(); ++slot) {
    const ClassId klass = klass_[slot];
    if (klass == kInvalidClass) continue;  // untagged partial: no attribution
    const auto c = static_cast<std::size_t>(klass);
    for (std::int32_t i = heads_[slot]; i != kNone; i = pool_[i].next) {
      for (std::int32_t j = pool_[i].next; j != kNone; j = pool_[j].next) {
        const double w = std::min(pool_[i].bytes, pool_[j].bytes);
        if (w <= 0.0) continue;
        grow(c);
        const NodeId ni = node_of(pool_[i].thread);
        const NodeId nj = node_of(pool_[j].thread);
        // Unplaced threads make no cross-node claim: count them local.
        if (ni != nj && ni != kInvalidNode && nj != kInvalidNode) {
          out.cut_bytes[c] += w;
        } else {
          out.local_bytes[c] += w;
        }
        out.thread_mass[c][pool_[i].thread] += w;
        out.thread_mass[c][pool_[j].thread] += w;
      }
    }
  }
  return out;
}

void TcmAccumulator::merge(const TcmAccumulator& other) {
  assert(threads_ == other.threads_);
  // Replay the other partial's reader lists: cross-partial pairs appear as
  // the readers land, and pairs internal to `other` are reconstructed, so
  // the merged state is exactly what one accumulator over both streams
  // would hold.
  for (std::size_t slot = 0; slot < other.touched_.size(); ++slot) {
    const ObjectId obj = other.touched_[slot];
    for (std::int32_t r = other.heads_[slot]; r != kNone; r = other.pool_[r].next) {
      add_one(obj, other.pool_[r].thread, other.pool_[r].bytes);
    }
    if (other.klass_[slot] != kInvalidClass && slots_.contains(obj)) {
      bool fresh = false;
      klass_[static_cast<std::size_t>(slots_.get_or_assign(obj, fresh))] =
          other.klass_[slot];
    }
  }
}

void TcmAccumulator::merge_disjoint_objects(const TcmAccumulator& other) {
  assert(threads_ == other.threads_);
  for (std::size_t slot = 0; slot < other.touched_.size(); ++slot) {
    const ObjectId obj = other.touched_[slot];
    assert(!slots_.contains(obj) &&
           "merge_disjoint_objects requires disjoint object sets");
    const std::int32_t dst = assign_slot(obj);
    klass_[static_cast<std::size_t>(dst)] = other.klass_[slot];
    last_touch_[static_cast<std::size_t>(dst)] = epoch_;
    // Move the reader list over node by node (pool indices re-based).
    for (std::int32_t r = other.heads_[slot]; r != kNone; r = other.pool_[r].next) {
      heads_[static_cast<std::size_t>(dst)] =
          alloc_reader(other.pool_[r].thread, other.pool_[r].bytes,
                       heads_[static_cast<std::size_t>(dst)]);
    }
  }
  // Disjoint objects contribute disjoint pair updates: partial sums add.
  pairs_ += other.pairs_;
}

void TcmAccumulator::reset() {
  slots_.release(touched_);
  touched_.clear();
  klass_.clear();
  heads_.clear();
  last_touch_.clear();
  decay_epoch_.clear();
  pool_.clear();
  pairs_.clear();
  free_head_ = kNone;
  live_readers_ = 0;
  epoch_ = 0;
}

TcmCompactStats TcmAccumulator::compact(std::uint32_t idle_epochs,
                                        double decay) {
  TcmCompactStats stats;
  if (idle_epochs == 0) return stats;  // age 0 would evict the live epoch too
  bool any_dead = false;
  for (std::size_t slot = 0; slot < touched_.size(); ++slot) {
    if (heads_[slot] == kNone) continue;  // already evicted, awaiting compact
    const std::uint32_t age = epoch_ - last_touch_[slot];
    if (age < idle_epochs) continue;

    if (decay > 0.0) {
      if (decay_epoch_[slot] == epoch_) continue;  // idempotent per epoch
      double max_bytes = 0.0;
      for (std::int32_t r = heads_[slot]; r != kNone; r = pool_[r].next) {
        max_bytes = std::max(max_bytes, pool_[r].bytes);
      }
      if (decay * max_bytes >= 1.0) {
        // Scaling every reader of this object by d scales each of its pair
        // contributions min(b_i, b_j) by d as well: subtract the (1 - d)
        // share, then scale the bytes, and the invariant holds over the
        // decayed values.
        for (std::int32_t i = heads_[slot]; i != kNone; i = pool_[i].next) {
          for (std::int32_t j = pool_[i].next; j != kNone; j = pool_[j].next) {
            const double w = std::min(pool_[i].bytes, pool_[j].bytes);
            if (w > 0.0) {
              pairs_.add(pool_[i].thread, pool_[j].thread, -(1.0 - decay) * w);
            }
          }
        }
        for (std::int32_t r = heads_[slot]; r != kNone; r = pool_[r].next) {
          pool_[r].bytes *= decay;
        }
        decay_epoch_[slot] = epoch_;
        ++stats.decayed_objects;
        continue;
      }
      // Decayed to less than a byte: dust — fall through to the drop path.
    }

    // Drop outright: subtract this object's exact pair contribution (byte
    // values are the ones the adds accumulated, so never-decayed objects
    // cancel exactly), return its reader nodes to the free list.
    for (std::int32_t i = heads_[slot]; i != kNone; i = pool_[i].next) {
      for (std::int32_t j = pool_[i].next; j != kNone; j = pool_[j].next) {
        const double w = std::min(pool_[i].bytes, pool_[j].bytes);
        if (w > 0.0) pairs_.add(pool_[i].thread, pool_[j].thread, -w);
      }
    }
    for (std::int32_t r = heads_[slot]; r != kNone;) {
      const std::int32_t next = pool_[r].next;
      pool_[r].next = free_head_;
      free_head_ = r;
      r = next;
      --live_readers_;
      ++stats.freed_readers;
    }
    heads_[slot] = kNone;
    any_dead = true;
    ++stats.dropped_objects;
  }

  if (any_dead) {
    // Compact the slot arrays in place (stable order), then re-assign
    // sequential slots: get_or_assign hands out 0, 1, 2... in call order, so
    // survivor k lands back at slot k.
    slots_.release(touched_);
    std::size_t w = 0;
    for (std::size_t slot = 0; slot < touched_.size(); ++slot) {
      if (heads_[slot] == kNone) continue;
      touched_[w] = touched_[slot];
      klass_[w] = klass_[slot];
      heads_[w] = heads_[slot];
      last_touch_[w] = last_touch_[slot];
      decay_epoch_[w] = decay_epoch_[slot];
      ++w;
    }
    touched_.resize(w);
    klass_.resize(w);
    heads_.resize(w);
    last_touch_.resize(w);
    decay_epoch_.resize(w);
    for (std::size_t k = 0; k < w; ++k) {
      bool fresh = false;
      const std::int32_t s = slots_.get_or_assign(touched_[k], fresh);
      assert(fresh && s == static_cast<std::int32_t>(k));
      (void)s;
    }
  }
  return stats;
}

std::size_t TcmAccumulator::memory_bytes() const noexcept {
  return touched_.capacity() * sizeof(ObjectId) +
         klass_.capacity() * sizeof(ClassId) +
         heads_.capacity() * sizeof(std::int32_t) +
         last_touch_.capacity() * sizeof(std::uint32_t) +
         decay_epoch_.capacity() * sizeof(std::uint32_t) +
         pool_.capacity() * sizeof(Reader) +
         pairs_.cell_count() * sizeof(double);
}

}  // namespace djvm
