#include "profiling/tcm.hpp"

#include <algorithm>
#include <unordered_map>

namespace djvm {

std::vector<ObjectAccessSummary> TcmBuilder::reorganize(
    std::span<const IntervalRecord> records, bool weighted) {
  // obj -> dense summary index.
  std::unordered_map<ObjectId, std::size_t> index;
  std::vector<ObjectAccessSummary> summaries;
  index.reserve(1024);

  for (const IntervalRecord& rec : records) {
    for (const OalEntry& e : rec.entries) {
      const double bytes = weighted
                               ? static_cast<double>(e.bytes) * e.gap
                               : static_cast<double>(e.bytes);
      auto [it, inserted] = index.try_emplace(e.obj, summaries.size());
      if (inserted) {
        summaries.push_back(ObjectAccessSummary{e.obj, {}});
      }
      auto& readers = summaries[it->second].readers;
      auto rit = std::find_if(readers.begin(), readers.end(),
                              [&](const auto& p) { return p.first == rec.thread; });
      if (rit == readers.end()) {
        readers.emplace_back(rec.thread, bytes);
      } else {
        rit->second = std::max(rit->second, bytes);
      }
    }
  }
  return summaries;
}

SquareMatrix TcmBuilder::accrue(std::span<const ObjectAccessSummary> summaries,
                                std::uint32_t threads) {
  SquareMatrix tcm(threads);
  for (const ObjectAccessSummary& s : summaries) {
    const auto& r = s.readers;
    for (std::size_t i = 0; i < r.size(); ++i) {
      for (std::size_t j = i + 1; j < r.size(); ++j) {
        const double shared = std::min(r[i].second, r[j].second);
        if (r[i].first < threads && r[j].first < threads) {
          tcm.add_symmetric(r[i].first, r[j].first, shared);
        }
      }
    }
  }
  return tcm;
}

SquareMatrix TcmBuilder::build(std::span<const IntervalRecord> records,
                               std::uint32_t threads, bool weighted) {
  return accrue(reorganize(records, weighted), threads);
}

}  // namespace djvm
