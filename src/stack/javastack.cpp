#include "stack/javastack.hpp"

#include <cassert>

namespace djvm {

std::size_t JavaStack::push(MethodId method, std::size_t nslots) {
  Frame f;
  f.id = next_id_++;
  f.method = method;
  f.visited = false;  // method prologue clears the visited flag
  f.slots.assign(nslots, 0);
  frames_.push_back(std::move(f));
  return frames_.size() - 1;
}

void JavaStack::pop() {
  assert(!frames_.empty());
  frames_.pop_back();
}

std::uint64_t JavaStack::context_bytes() const noexcept {
  std::uint64_t total = 64;  // thread control block
  for (const Frame& f : frames_) total += f.context_bytes();
  return total;
}

}  // namespace djvm
