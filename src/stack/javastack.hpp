// Per-thread Java stack and the RAII frame guard workloads use.
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "stack/frame.hpp"

namespace djvm {

/// A thread's Java stack.  Index 0 is the bottom (main) frame; the top is the
/// most recently pushed frame.  Frame ids are monotonic and never reused, so
/// the stack sampler can tell a popped-and-repushed frame from a surviving
/// one even at equal depth.
class JavaStack {
 public:
  /// Pushes a frame for `method` with `nslots` zeroed slots; returns its
  /// depth index.  The visited flag starts cleared (method prologue).
  std::size_t push(MethodId method, std::size_t nslots);

  /// Pops the top frame.
  void pop();

  [[nodiscard]] bool empty() const noexcept { return frames_.empty(); }
  [[nodiscard]] std::size_t depth() const noexcept { return frames_.size(); }

  [[nodiscard]] Frame& frame(std::size_t depth_index) { return frames_.at(depth_index); }
  [[nodiscard]] const Frame& frame(std::size_t depth_index) const {
    return frames_.at(depth_index);
  }
  [[nodiscard]] Frame& top() { return frames_.back(); }
  [[nodiscard]] const Frame& top() const { return frames_.back(); }

  [[nodiscard]] std::span<const Frame> frames() const noexcept { return frames_; }
  [[nodiscard]] std::span<Frame> frames() noexcept { return frames_; }

  /// Total context bytes for thread migration (all frames).
  [[nodiscard]] std::uint64_t context_bytes() const noexcept;

  /// Lifetime count of pushes (frames created).
  [[nodiscard]] std::uint64_t frames_created() const noexcept { return next_id_ - 1; }

 private:
  std::vector<Frame> frames_;
  FrameId next_id_ = 1;
};

/// RAII helper: pushes a frame on construction, pops it on destruction.
/// Workload code uses it to mirror its own call structure onto the Java
/// stack, e.g. during octree recursion.
class FrameGuard {
 public:
  FrameGuard(JavaStack& stack, MethodId method, std::size_t nslots)
      : stack_(stack), index_(stack.push(method, nslots)) {}
  ~FrameGuard() { stack_.pop(); }
  FrameGuard(const FrameGuard&) = delete;
  FrameGuard& operator=(const FrameGuard&) = delete;

  [[nodiscard]] Frame& frame() { return stack_.frame(index_); }
  void set_ref(std::size_t slot, ObjectId obj) { frame().set_ref(slot, obj); }
  void set_prim(std::size_t slot, std::uint64_t v) { frame().set_prim(slot, v); }

 private:
  JavaStack& stack_;
  std::size_t index_;
};

}  // namespace djvm
