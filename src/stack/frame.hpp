// Java stack frames.
//
// The JVM is a stack machine: every bytecode reaches its operands through the
// current frame's slots.  Kaffe (the base JVM of JESSICA2) lays Java frames
// out 1:1 over native frames, which is what lets the paper's profiler extract
// slot contents directly.  We model a frame as a flat slot array of 64-bit
// values; reference slots carry a tag so the "GC interface" can tell object
// pointers from primitive bit patterns, as a precise JVM would.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace djvm {

/// Tag marking a slot value as an object reference.  Real JVMs distinguish
/// pointers via GC maps; the tag plays that role here.
inline constexpr std::uint64_t kRefTag = 0x4A56'0000'0000'0000ULL;  // "JV"
inline constexpr std::uint64_t kRefTagMask = 0xFFFF'0000'0000'0000ULL;

[[nodiscard]] constexpr std::uint64_t encode_ref(ObjectId id) noexcept {
  return kRefTag | id;
}
[[nodiscard]] constexpr bool looks_like_ref(std::uint64_t raw) noexcept {
  return (raw & kRefTagMask) == kRefTag;
}
[[nodiscard]] constexpr ObjectId decode_ref(std::uint64_t raw) noexcept {
  return raw & ~kRefTagMask;
}

/// Identifier of a Java method (index into a method table kept by the app).
using MethodId = std::uint32_t;

/// One Java frame.  `visited` is the flag the paper's two-phase scanning
/// relies on; the JIT clears it in every method prologue, which here means
/// every freshly pushed frame starts unvisited.
struct Frame {
  FrameId id = kInvalidFrame;
  MethodId method = 0;
  bool visited = false;
  std::vector<std::uint64_t> slots;

  void set_ref(std::size_t slot, ObjectId obj) { slots.at(slot) = encode_ref(obj); }
  void set_prim(std::size_t slot, std::uint64_t v) { slots.at(slot) = v & ~kRefTagMask; }
  [[nodiscard]] std::uint64_t slot(std::size_t i) const { return slots.at(i); }
  [[nodiscard]] std::size_t slot_count() const noexcept { return slots.size(); }

  /// Bytes this frame contributes to a migrated thread context.
  [[nodiscard]] std::uint64_t context_bytes() const noexcept {
    return 32 + slots.size() * 8;  // saved %EBP/%EIP/method info + slots
  }
};

}  // namespace djvm
