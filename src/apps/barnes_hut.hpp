// Barnes-Hut: hierarchical N-body simulation (paper Section IV, benchmark 2).
//
// 4K bodies in *two galaxies*; each thread simulates a continuous chunk of
// bodies.  Sharing is irregular and fine-grained (each Body is < 100 bytes),
// with strong locality between threads of the same galaxy — the structure
// page-based trackers cannot see (Fig. 1).  The octree is rebuilt every
// round; force computation recursively traverses it with a theta opening
// criterion, mirroring the recursion onto the Java stack (the paper notes
// the stack-sampling cost of BH's "recursive method calls during octree
// traversal").
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/workload.hpp"

namespace djvm {

struct BarnesHutParams {
  std::uint32_t bodies = 4096;
  std::uint32_t rounds = 5;
  double theta = 0.7;           ///< opening criterion
  double dt = 0.025;            ///< leapfrog step
  std::uint32_t leaf_capacity = 8;
  std::uint32_t flops_per_interaction = 60;
  double galaxy_separation = 40.0;
  double galaxy_radius = 10.0;
};

class BarnesHutWorkload final : public Workload {
 public:
  explicit BarnesHutWorkload(BarnesHutParams p = {}) : p_(p) {}

  [[nodiscard]] WorkloadInfo info() const override;
  void build(Djvm& djvm) override;
  void run(Djvm& djvm) override;
  [[nodiscard]] double checksum() const override;

  [[nodiscard]] const BarnesHutParams& params() const noexcept { return p_; }
  [[nodiscard]] ObjectId body_object(std::uint32_t i) const { return body_objs_[i]; }
  /// Ground-truth galaxy of body i (0 or 1), for locality tests.
  [[nodiscard]] int galaxy_of(std::uint32_t i) const {
    return i < p_.bodies / 2 ? 0 : 1;
  }

 private:
  struct BodyData {
    std::array<double, 3> pos{};
    std::array<double, 3> vel{};
    std::array<double, 3> acc{};
    double mass = 1.0;
  };
  /// Octree node (native mirror of the Cell/Leaf GOS objects).
  struct TreeNode {
    bool leaf = true;
    std::array<double, 3> center{};
    double half = 0.0;
    std::array<double, 3> com{};
    double mass = 0.0;
    std::array<std::int32_t, 8> child{};
    std::vector<std::uint32_t> bodies;
    ObjectId cell_obj = kInvalidObject;  ///< Cell or Leaf GOS object
    ObjectId body_arr = kInvalidObject;  ///< Body[] for leaves
  };

  void build_tree(Djvm& djvm, ThreadId builder);
  void insert_body(std::uint32_t b, std::int32_t node);
  std::int32_t make_node(const std::array<double, 3>& center, double half);
  void compute_mass(std::int32_t node);
  void materialize_tree(Djvm& djvm, ThreadId builder);
  void force_on_body(Djvm& djvm, ThreadId t, std::uint32_t b, std::int32_t node,
                     std::uint64_t& interactions);
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> chunk(std::uint32_t t,
                                                              std::uint32_t threads) const;

  BarnesHutParams p_;
  ClassId body_class_ = kInvalidClass;
  ClassId vect_class_ = kInvalidClass;
  ClassId cell_class_ = kInvalidClass;
  ClassId leaf_class_ = kInvalidClass;
  ClassId body_array_class_ = kInvalidClass;

  std::vector<BodyData> data_;
  std::vector<ObjectId> body_objs_;
  std::vector<ObjectId> pos_objs_;  ///< Vect3 per body
  std::vector<ObjectId> vel_objs_;  ///< Vect3 per body
  std::vector<TreeNode> tree_;
  std::int32_t root_ = -1;
  std::uint64_t total_interactions_ = 0;
};

}  // namespace djvm
