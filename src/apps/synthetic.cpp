#include "apps/synthetic.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace djvm {

namespace {
constexpr MethodId kMethodSynthetic = 30;
}

WorkloadInfo SyntheticWorkload::info() const {
  return WorkloadInfo{
      .name = "Synthetic",
      .dataset = std::to_string(p_.objects) + " objects",
      .rounds = p_.rounds,
      .granularity = "Configurable",
      .object_size_desc = std::to_string(p_.object_size) + " bytes each",
  };
}

void SyntheticWorkload::build(Djvm& djvm) {
  auto& reg = djvm.registry();
  obj_class_ = reg.find("SynObject").value_or(kInvalidClass);
  if (obj_class_ == kInvalidClass) {
    obj_class_ = reg.register_class("SynObject", p_.object_size, 0);
  }
  if (p_.arrays > 0) {
    arr_class_ = reg.find("SynArray[]").value_or(kInvalidClass);
    if (arr_class_ == kInvalidClass) {
      arr_class_ = reg.register_array_class("SynArray[]", p_.array_elem_size);
    }
  }

  const std::uint32_t threads = djvm.thread_count();
  assert(threads > 0);
  pools_.assign(threads, {});

  auto pool_index = [&](std::uint32_t i) -> std::uint32_t {
    switch (p_.pattern) {
      case SharingPattern::kPartitioned:
        return (i * threads) / p_.objects;  // contiguous blocks
      case SharingPattern::kPairShared:
        // Pool per thread pair; both threads of the pair use it.
        return ((i * threads) / p_.objects) & ~1u;
      case SharingPattern::kAllShared:
        return 0;
      case SharingPattern::kCyclic:
        // Allocation striped with a fixed period: object i belongs to
        // thread (i % period) % threads, so all of a thread's objects share
        // a residue class modulo the period.
        return (i % p_.cyclic_period) % threads;
    }
    return 0;
  };

  for (std::uint32_t i = 0; i < p_.objects; ++i) {
    const std::uint32_t owner = std::min(pool_index(i), threads - 1);
    const NodeId home = djvm.gos().thread_node(static_cast<ThreadId>(owner));
    const ObjectId obj = djvm.gos().alloc(obj_class_, home);
    if (p_.pattern == SharingPattern::kPairShared) {
      pools_[owner].push_back(obj);
      if (owner + 1 < threads) pools_[owner + 1].push_back(obj);
    } else if (p_.pattern == SharingPattern::kAllShared) {
      for (auto& pool : pools_) pool.push_back(obj);
    } else if (p_.pattern == SharingPattern::kCyclic) {
      // Cyclic allocation WITH pair sharing: thread pairs (0,1), (2,3), ...
      // share each striped object, so the ground-truth TCM is block-diagonal
      // while a gap that divides the stripe period samples only one
      // residue class of owners (the aliasing pathology).
      pools_[owner].push_back(obj);
      const std::uint32_t partner = owner ^ 1u;
      if (partner < threads) pools_[partner].push_back(obj);
    } else {
      pools_[owner].push_back(obj);
    }
  }
  for (std::uint32_t a = 0; a < p_.arrays; ++a) {
    const std::uint32_t owner = a % threads;
    const NodeId home = djvm.gos().thread_node(static_cast<ThreadId>(owner));
    const ObjectId arr = djvm.gos().alloc_array(arr_class_, home, p_.array_len);
    pools_[owner].push_back(arr);
    if (p_.pattern == SharingPattern::kPairShared && owner + 1 < threads) {
      pools_[owner + 1].push_back(arr);
    }
  }
}

void SyntheticWorkload::run(Djvm& djvm) {
  const std::uint32_t threads = djvm.thread_count();
  Gos& gos = djvm.gos();
  SplitMix64 rng(djvm.config().seed ^ 0x5F37ULL);

  for (std::uint32_t round = 0; round < p_.rounds; ++round) {
    for (ThreadId t = 0; t < threads; ++t) {
      gos.set_phase(t, round);
      const auto& pool = pools_[t];
      if (pool.empty()) continue;
      FrameGuard phase(djvm.stack(t), kMethodSynthetic, 2);
      phase.set_ref(0, pool.front());
      for (std::uint32_t a = 0; a < p_.accesses_per_round; ++a) {
        const ObjectId obj = pool[a % pool.size()];
        phase.set_ref(1, obj);
        if ((a & 7u) == 0) {
          gos.write(t, obj);
        } else {
          gos.read(t, obj);
        }
        checksum_ += static_cast<double>(rng.next() & 0xFF);
        gos.clock(t).advance(20 * djvm.config().costs.compute_per_flop);
      }
    }
    gos.barrier_all();
  }
}

}  // namespace djvm
