#include "apps/barnes_hut.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace djvm {

namespace {
constexpr MethodId kMethodMain = 10;
constexpr MethodId kMethodForcePhase = 11;
constexpr MethodId kMethodTraverse = 12;
constexpr MethodId kMethodUpdate = 13;

double dist2(const std::array<double, 3>& a, const std::array<double, 3>& b) {
  double s = 0.0;
  for (int k = 0; k < 3; ++k) {
    const double d = a[k] - b[k];
    s += d * d;
  }
  return s;
}
}  // namespace

WorkloadInfo BarnesHutWorkload::info() const {
  return WorkloadInfo{
      .name = "Barnes-Hut",
      .dataset = std::to_string(p_.bodies / 1024) + "K bodies",
      .rounds = p_.rounds,
      .granularity = "Fine",
      .object_size_desc = "each body less than 100 bytes",
  };
}

std::pair<std::uint32_t, std::uint32_t> BarnesHutWorkload::chunk(
    std::uint32_t t, std::uint32_t threads) const {
  const std::uint32_t per = p_.bodies / threads;
  const std::uint32_t extra = p_.bodies % threads;
  const std::uint32_t lo = t * per + std::min(t, extra);
  return {lo, lo + per + (t < extra ? 1 : 0)};
}

void BarnesHutWorkload::build(Djvm& djvm) {
  auto& reg = djvm.registry();
  auto get_or = [&](const char* name, auto&& make) {
    if (auto id = reg.find(name)) return *id;
    return make();
  };
  body_class_ = get_or("Body", [&] { return reg.register_class("Body", 88, 2); });
  vect_class_ = get_or("Vect3", [&] { return reg.register_class("Vect3", 24, 0); });
  cell_class_ = get_or("Cell", [&] { return reg.register_class("Cell", 80, 8); });
  leaf_class_ = get_or("Leaf", [&] { return reg.register_class("Leaf", 64, 1); });
  body_array_class_ = get_or("Body[]", [&] {
    return reg.register_array_class("Body[]", 8, /*elements_are_refs=*/true);
  });

  const std::uint32_t threads = djvm.thread_count();
  assert(threads > 0);
  data_.resize(p_.bodies);
  body_objs_.resize(p_.bodies);
  pos_objs_.resize(p_.bodies);
  vel_objs_.resize(p_.bodies);

  // Two galaxies: bodies [0, N/2) around centre A, [N/2, N) around centre B,
  // each galaxy's bodies sorted along x so adjacent threads own adjacent
  // regions (costzone-like locality).
  SplitMix64 rng(djvm.config().seed ^ 0xB0D1E5ULL);
  const double sep = p_.galaxy_separation / 2.0;
  for (std::uint32_t i = 0; i < p_.bodies; ++i) {
    const int g = galaxy_of(i);
    const double cx = g == 0 ? -sep : sep;
    BodyData& b = data_[i];
    for (int k = 0; k < 3; ++k) {
      b.pos[k] = rng.uniform(-p_.galaxy_radius, p_.galaxy_radius);
    }
    b.pos[0] += cx;
    // Mild rotation about the galaxy centre.
    b.vel[0] = -0.05 * (b.pos[1] - 0.0);
    b.vel[1] = 0.05 * (b.pos[0] - cx);
    b.vel[2] = rng.uniform(-0.01, 0.01);
    b.mass = 1.0 + rng.next_double();
  }
  const std::uint32_t half = p_.bodies / 2;
  auto by_x = [&](std::uint32_t a, std::uint32_t b) {
    return data_[a].pos[0] < data_[b].pos[0];
  };
  std::vector<std::uint32_t> order(p_.bodies);
  for (std::uint32_t i = 0; i < p_.bodies; ++i) order[i] = i;
  std::sort(order.begin(), order.begin() + half, by_x);
  std::sort(order.begin() + half, order.end(), by_x);
  std::vector<BodyData> sorted(p_.bodies);
  for (std::uint32_t i = 0; i < p_.bodies; ++i) sorted[i] = data_[order[i]];
  data_ = std::move(sorted);

  // Allocate Body + Vect3 objects homed at the owning thread's node.
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto [lo, hi] = chunk(t, threads);
    const NodeId home = djvm.gos().thread_node(static_cast<ThreadId>(t));
    for (std::uint32_t i = lo; i < hi; ++i) {
      body_objs_[i] = djvm.gos().alloc(body_class_, home);
      pos_objs_[i] = djvm.gos().alloc(vect_class_, home);
      vel_objs_[i] = djvm.gos().alloc(vect_class_, home);
      djvm.heap().set_ref(body_objs_[i], 0, pos_objs_[i]);
      djvm.heap().set_ref(body_objs_[i], 1, vel_objs_[i]);
    }
  }
}

std::int32_t BarnesHutWorkload::make_node(const std::array<double, 3>& center,
                                          double half) {
  TreeNode n;
  n.center = center;
  n.half = half;
  n.child.fill(-1);
  tree_.push_back(std::move(n));
  return static_cast<std::int32_t>(tree_.size() - 1);
}

void BarnesHutWorkload::insert_body(std::uint32_t b, std::int32_t node) {
  TreeNode* n = &tree_[static_cast<std::size_t>(node)];
  if (n->leaf) {
    n->bodies.push_back(b);
    if (n->bodies.size() <= p_.leaf_capacity || n->half < 1e-6) return;
    // Split: redistribute into octants.
    std::vector<std::uint32_t> moved = std::move(n->bodies);
    n->bodies.clear();
    n->leaf = false;
    for (std::uint32_t m : moved) {
      TreeNode& cur = tree_[static_cast<std::size_t>(node)];
      int oct = 0;
      for (int k = 0; k < 3; ++k) {
        if (data_[m].pos[k] >= cur.center[k]) oct |= 1 << k;
      }
      if (cur.child[oct] < 0) {
        std::array<double, 3> c = cur.center;
        const double h = cur.half / 2.0;
        for (int k = 0; k < 3; ++k) c[k] += (oct & (1 << k)) ? h : -h;
        const std::int32_t fresh = make_node(c, h);
        tree_[static_cast<std::size_t>(node)].child[oct] = fresh;
      }
      insert_body(m, tree_[static_cast<std::size_t>(node)].child[oct]);
    }
    return;
  }
  int oct = 0;
  for (int k = 0; k < 3; ++k) {
    if (data_[b].pos[k] >= n->center[k]) oct |= 1 << k;
  }
  if (n->child[oct] < 0) {
    std::array<double, 3> c = n->center;
    const double h = n->half / 2.0;
    for (int k = 0; k < 3; ++k) c[k] += (oct & (1 << k)) ? h : -h;
    const std::int32_t fresh = make_node(c, h);
    tree_[static_cast<std::size_t>(node)].child[oct] = fresh;
    n = &tree_[static_cast<std::size_t>(node)];
  }
  insert_body(b, tree_[static_cast<std::size_t>(node)].child[oct]);
}

void BarnesHutWorkload::compute_mass(std::int32_t node) {
  TreeNode& n = tree_[static_cast<std::size_t>(node)];
  n.mass = 0.0;
  n.com = {0.0, 0.0, 0.0};
  if (n.leaf) {
    for (std::uint32_t b : n.bodies) {
      n.mass += data_[b].mass;
      for (int k = 0; k < 3; ++k) n.com[k] += data_[b].mass * data_[b].pos[k];
    }
  } else {
    for (std::int32_t c : n.child) {
      if (c < 0) continue;
      compute_mass(c);
      const TreeNode& ch = tree_[static_cast<std::size_t>(c)];
      n.mass += ch.mass;
      for (int k = 0; k < 3; ++k) n.com[k] += ch.mass * ch.com[k];
    }
  }
  if (n.mass > 0.0) {
    for (int k = 0; k < 3; ++k) n.com[k] /= n.mass;
  }
}

void BarnesHutWorkload::materialize_tree(Djvm& djvm, ThreadId builder) {
  // Allocate fresh Cell/Leaf GOS objects for this round's tree (tree nodes
  // are rebuilt every round, churning sequence numbers as a real run would).
  Gos& gos = djvm.gos();
  for (TreeNode& n : tree_) {
    if (n.leaf) {
      n.cell_obj = gos.alloc_for_thread(builder, leaf_class_);
      if (!n.bodies.empty()) {
        n.body_arr = gos.alloc_array_for_thread(
            builder, body_array_class_, static_cast<std::uint32_t>(n.bodies.size()));
        djvm.heap().set_ref(n.cell_obj, 0, n.body_arr);
        for (std::uint32_t b : n.bodies) {
          djvm.heap().add_ref(n.body_arr, body_objs_[b]);
        }
      }
    } else {
      n.cell_obj = gos.alloc_for_thread(builder, cell_class_);
    }
    gos.write(builder, n.cell_obj);
  }
  // Wire child references after every node has an object.
  for (TreeNode& n : tree_) {
    if (n.leaf) continue;
    for (int i = 0; i < 8; ++i) {
      if (n.child[i] >= 0) {
        djvm.heap().set_ref(n.cell_obj, static_cast<std::size_t>(i),
                            tree_[static_cast<std::size_t>(n.child[i])].cell_obj);
      }
    }
  }
}

void BarnesHutWorkload::build_tree(Djvm& djvm, ThreadId builder) {
  tree_.clear();
  // Bounding cube.
  double lo = data_[0].pos[0];
  double hi = lo;
  for (const BodyData& b : data_) {
    for (int k = 0; k < 3; ++k) {
      lo = std::min(lo, b.pos[k]);
      hi = std::max(hi, b.pos[k]);
    }
  }
  const double half = (hi - lo) / 2.0 + 1e-3;
  const std::array<double, 3> center = {(hi + lo) / 2.0, (hi + lo) / 2.0,
                                        (hi + lo) / 2.0};
  root_ = make_node(center, half);
  for (std::uint32_t b = 0; b < p_.bodies; ++b) {
    djvm.gos().read(builder, body_objs_[b]);
    insert_body(b, root_);
  }
  compute_mass(root_);
  materialize_tree(djvm, builder);
  djvm.gos().clock(builder).advance(
      static_cast<SimTime>(p_.bodies) * 40 * djvm.config().costs.compute_per_flop);
}

void BarnesHutWorkload::force_on_body(Djvm& djvm, ThreadId t, std::uint32_t b,
                                      std::int32_t node,
                                      std::uint64_t& interactions) {
  const TreeNode& n = tree_[static_cast<std::size_t>(node)];
  Gos& gos = djvm.gos();
  gos.read(t, n.cell_obj);

  BodyData& body = data_[b];
  const double d2 = dist2(body.pos, n.com) + 1e-9;

  auto interact = [&](const std::array<double, 3>& pos, double mass) {
    const double r2 = dist2(body.pos, pos) + 0.05;  // softening
    const double inv = 1.0 / std::sqrt(r2);
    const double f = mass * inv * inv * inv;
    for (int k = 0; k < 3; ++k) body.acc[k] += f * (pos[k] - body.pos[k]);
    ++interactions;
  };

  if (n.leaf) {
    if (n.body_arr != kInvalidObject) gos.read(t, n.body_arr);
    for (std::uint32_t ob : n.bodies) {
      if (ob == b) continue;
      gos.read(t, body_objs_[ob]);
      gos.read(t, pos_objs_[ob]);
      interact(data_[ob].pos, data_[ob].mass);
    }
    return;
  }
  const double size = 2.0 * n.half;
  if (size * size < p_.theta * p_.theta * d2) {
    interact(n.com, n.mass);  // far enough: use the cell's centre of mass
    return;
  }
  FrameGuard rec(djvm.stack(t), kMethodTraverse, 3);
  rec.set_ref(0, n.cell_obj);
  rec.set_ref(1, body_objs_[b]);
  for (std::int32_t c : n.child) {
    if (c >= 0) force_on_body(djvm, t, b, c, interactions);
  }
}

void BarnesHutWorkload::run(Djvm& djvm) {
  const std::uint32_t threads = djvm.thread_count();
  Gos& gos = djvm.gos();
  const SimTime per_interaction =
      static_cast<SimTime>(p_.flops_per_interaction) * djvm.config().costs.compute_per_flop;

  std::vector<std::size_t> root_frames(threads);
  for (ThreadId t = 0; t < threads; ++t) {
    root_frames[t] = djvm.stack(t).push(kMethodMain, 3);
  }

  for (std::uint32_t round = 0; round < p_.rounds; ++round) {
    // Phase 0: thread 0 rebuilds the octree.
    gos.set_phase(0, round * 3);
    build_tree(djvm, 0);
    gos.barrier_all();

    // The per-thread main frame holds invariant refs: this round's root cell
    // and the thread's first body.
    for (ThreadId t = 0; t < threads; ++t) {
      const auto [lo, hi] = chunk(t, threads);
      Frame& f = djvm.stack(t).frame(root_frames[t]);
      f.set_ref(0, tree_[static_cast<std::size_t>(root_)].cell_obj);
      f.set_ref(1, body_objs_[lo]);
      f.set_prim(2, hi - lo);
    }

    // Phase 1: force computation.
    for (ThreadId t = 0; t < threads; ++t) {
      gos.set_phase(t, round * 3 + 1);
      const auto [lo, hi] = chunk(t, threads);
      FrameGuard phase(djvm.stack(t), kMethodForcePhase, 2);
      phase.set_ref(0, tree_[static_cast<std::size_t>(root_)].cell_obj);
      std::uint64_t interactions = 0;
      for (std::uint32_t b = lo; b < hi; ++b) {
        phase.set_ref(1, body_objs_[b]);
        gos.read(t, body_objs_[b]);
        gos.read(t, pos_objs_[b]);
        data_[b].acc = {0.0, 0.0, 0.0};
        force_on_body(djvm, t, b, root_, interactions);
        gos.clock(t).advance(per_interaction *
                             std::max<std::uint64_t>(1, interactions));
        total_interactions_ += interactions;
        interactions = 0;
      }
    }
    gos.barrier_all();

    // Phase 2: position/velocity update (leapfrog).
    for (ThreadId t = 0; t < threads; ++t) {
      gos.set_phase(t, round * 3 + 2);
      const auto [lo, hi] = chunk(t, threads);
      FrameGuard phase(djvm.stack(t), kMethodUpdate, 1);
      for (std::uint32_t b = lo; b < hi; ++b) {
        phase.set_ref(0, body_objs_[b]);
        gos.write(t, body_objs_[b]);
        gos.write(t, pos_objs_[b]);
        gos.write(t, vel_objs_[b]);
        BodyData& bd = data_[b];
        for (int k = 0; k < 3; ++k) {
          bd.vel[k] += bd.acc[k] * p_.dt;
          bd.pos[k] += bd.vel[k] * p_.dt;
        }
        gos.clock(t).advance(12 * djvm.config().costs.compute_per_flop);
      }
    }
    gos.barrier_all();
  }

  for (ThreadId t = 0; t < threads; ++t) djvm.stack(t).pop();
}

double BarnesHutWorkload::checksum() const {
  double s = 0.0;
  for (const BodyData& b : data_) {
    for (int k = 0; k < 3; ++k) s += b.pos[k] + b.vel[k];
  }
  return s;
}

}  // namespace djvm
