// Common interface of the benchmark applications (paper Section IV, Table I).
//
// Workloads are C++ re-implementations of the paper's SPLASH-2 Java ports.
// They do *real* numeric work (so wall-clock overhead percentages are
// meaningful) while issuing every shared-object access through the GOS and
// mirroring their call structure onto the per-thread Java stacks (so the
// stack sampler sees realistic frames).  Execution is deterministic: threads
// run round-robin within BSP phases separated by GOS barriers.
#pragma once

#include <cstdint>
#include <string>

#include "core/djvm.hpp"
#include "dsm/protocol_stats.hpp"
#include "net/network.hpp"

namespace djvm {

/// Row of the paper's Table I.
struct WorkloadInfo {
  std::string name;
  std::string dataset;           ///< problem size, e.g. "2K x 2K"
  std::uint32_t rounds = 0;
  std::string granularity;       ///< "Coarse" / "Fine" / "Medium"
  std::string object_size_desc;  ///< e.g. "each row at least several KB"
};

/// A runnable benchmark application.
class Workload {
 public:
  virtual ~Workload() = default;

  [[nodiscard]] virtual WorkloadInfo info() const = 0;

  /// Allocates the shared data structures (threads must already be spawned).
  virtual void build(Djvm& djvm) = 0;

  /// Executes all rounds to completion.
  virtual void run(Djvm& djvm) = 0;

  /// Deterministic numeric digest of the computed result; tests use it to
  /// assert that profiling does not perturb the computation.
  [[nodiscard]] virtual double checksum() const = 0;
};

/// Measurements around one build+run.
struct RunMetrics {
  double build_seconds = 0.0;   ///< real wall time of build()
  double run_seconds = 0.0;     ///< real wall time of run()
  SimTime max_sim_time = 0;     ///< latest thread clock at completion
  ProtocolStats protocol{};     ///< GOS counters for the run
  TrafficStats traffic{};       ///< per-category network bytes for the run
};

/// Builds and runs `w` on `djvm`, measuring wall time and collecting
/// protocol/traffic deltas for the run() portion.
RunMetrics execute_workload(Djvm& djvm, Workload& w);

}  // namespace djvm
