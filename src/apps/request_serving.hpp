// Request-serving workload: the multi-tenant host's application shape.
//
// Unlike the BSP SPLASH-2 ports, this models a server JVM: thousands of
// short-lived sessions arrive, each picks a *request class* from a
// Zipf-skewed popularity distribution, touches that class's slice of a
// shared hot-state pool plus a few session-scratch objects, and retires.
// The popularity ranking rotates on a seeded *diurnal schedule* — every
// `phase_period` epochs the hot request classes shift, which is exactly the
// phase change a profiling governor's sentinel must catch and a cluster
// arbiter must re-budget around (a tenant whose traffic wakes up stops
// lending and reclaims its fair share).
//
// Deterministic: all arrival and access randomness comes from SplitMix64
// streams seeded from the params, so two runs (or two transport configs)
// serve byte-identical access sequences.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/workload.hpp"

namespace djvm {

struct RequestServingParams {
  std::uint32_t request_classes = 8;  ///< distinct request types (Zipf-ranked)
  double zipf_s = 1.1;                ///< Zipf exponent (higher = more skew)
  std::uint32_t hot_objects = 2048;   ///< shared hot-state pool, split per class
  std::uint32_t object_size = 64;
  std::uint32_t scratch_per_thread = 8;   ///< recycled session-scratch objects
  std::uint32_t session_ops = 32;         ///< hot-state accesses per session
  std::uint32_t sessions_per_epoch = 512; ///< across all threads, per epoch
  std::uint32_t epochs = 8;               ///< rounds served by run()
  std::uint32_t phase_period = 16;        ///< epochs between diurnal shifts
  std::uint64_t seed = 42;
};

class RequestServingApp final : public Workload {
 public:
  explicit RequestServingApp(RequestServingParams p = {}) : p_(p) {}

  [[nodiscard]] WorkloadInfo info() const override;
  void build(Djvm& djvm) override;
  /// Serves run-phase epochs back to back (hosts that pump the governor per
  /// epoch call serve_epoch directly instead).
  void run(Djvm& djvm) override;
  [[nodiscard]] double checksum() const override { return checksum_; }

  /// Serves one epoch's worth of sessions, round-robin across the spawned
  /// threads, and closes it with a cluster barrier (the epoch's sync point —
  /// pending OALs ship there).  Advances the diurnal schedule.
  void serve_epoch(Djvm& djvm);

  /// Epochs served so far.
  [[nodiscard]] std::uint32_t epochs_served() const noexcept { return epoch_; }
  /// Current diurnal phase (rotation applied to the popularity ranking).
  [[nodiscard]] std::uint32_t phase() const noexcept {
    return p_.phase_period == 0 ? 0 : epoch_ / p_.phase_period;
  }
  /// Sessions retired so far.
  [[nodiscard]] std::uint64_t sessions_served() const noexcept {
    return sessions_;
  }
  /// The request class the diurnal schedule currently ranks hottest.
  [[nodiscard]] std::uint32_t hottest_class() const noexcept {
    return phase() % p_.request_classes;
  }

 private:
  /// Zipf-sample a popularity rank from `u` in [0, 1).
  [[nodiscard]] std::uint32_t sample_rank(double u) const;

  RequestServingParams p_;
  ClassId hot_class_ = kInvalidClass;
  ClassId scratch_class_ = kInvalidClass;
  std::vector<ObjectId> hot_pool_;                 ///< class k owns its slice
  std::vector<std::vector<ObjectId>> scratch_;     ///< per thread, recycled
  std::vector<double> zipf_cdf_;                   ///< by popularity rank
  std::uint32_t epoch_ = 0;
  std::uint64_t sessions_ = 0;
  double checksum_ = 0.0;
};

}  // namespace djvm
