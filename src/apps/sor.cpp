#include "apps/sor.hpp"

#include <cassert>

#include "common/rng.hpp"

namespace djvm {

namespace {
constexpr MethodId kMethodSorRun = 1;
constexpr MethodId kMethodSorPhase = 2;
}  // namespace

WorkloadInfo SorWorkload::info() const {
  return WorkloadInfo{
      .name = "SOR",
      .dataset = std::to_string(p_.rows / 1024) + "K x " + std::to_string(p_.cols / 1024) + "K",
      .rounds = p_.rounds,
      .granularity = "Coarse",
      .object_size_desc = "each row at least several KB",
  };
}

std::pair<std::uint32_t, std::uint32_t> SorWorkload::block(std::uint32_t t,
                                                           std::uint32_t threads) const {
  const std::uint32_t per = p_.rows / threads;
  const std::uint32_t extra = p_.rows % threads;
  const std::uint32_t lo = 1 + t * per + std::min(t, extra);
  const std::uint32_t hi = lo + per + (t < extra ? 1 : 0);
  return {lo, hi};
}

void SorWorkload::build(Djvm& djvm) {
  auto& reg = djvm.registry();
  double_array_ = reg.find("double[]").value_or(kInvalidClass);
  if (double_array_ == kInvalidClass) {
    double_array_ = reg.register_array_class("double[]", 8);
  }
  matrix_class_ = reg.find("SorMatrix").value_or(kInvalidClass);
  if (matrix_class_ == kInvalidClass) {
    matrix_class_ = reg.register_class("SorMatrix", 32, 1);
  }

  const std::uint32_t threads = djvm.thread_count();
  assert(threads > 0);
  const std::uint32_t total_rows = p_.rows + 2;
  row_objs_.resize(total_rows);
  grid_.assign(total_rows, std::vector<double>(p_.cols + 2, 0.0));

  // The matrix root lives at node 0; rows are homed where their owning
  // thread runs ("home copies reside in the nodes which are the first to
  // create them").
  matrix_root_ = djvm.gos().alloc(matrix_class_, 0);
  SplitMix64 rng(djvm.config().seed);
  for (std::uint32_t r = 0; r < total_rows; ++r) {
    // Owner of interior row r is the thread whose block contains it; border
    // rows go with their adjacent block.
    std::uint32_t owner = 0;
    for (std::uint32_t t = 0; t < threads; ++t) {
      const auto [lo, hi] = block(t, threads);
      if ((r >= lo && r < hi) || (t == 0 && r < lo) ||
          (t == threads - 1 && r >= hi)) {
        owner = t;
        if (r >= lo && r < hi) break;
      }
    }
    const NodeId home = djvm.gos().thread_node(static_cast<ThreadId>(owner));
    row_objs_[r] = djvm.gos().alloc_array(double_array_, home, p_.cols + 2);
    djvm.heap().add_ref(matrix_root_, row_objs_[r]);
    for (double& v : grid_[r]) v = rng.uniform(0.0, 1.0);
  }
}

void SorWorkload::relax_row(std::uint32_t r) {
  auto& row = grid_[r];
  const auto& up = grid_[r - 1];
  const auto& down = grid_[r + 1];
  const double omega = p_.omega;
  const double rest = 1.0 - omega;
  for (std::size_t c = 1; c + 1 < row.size(); ++c) {
    row[c] = omega * 0.25 * (up[c] + down[c] + row[c - 1] + row[c + 1]) +
             rest * row[c];
  }
}

void SorWorkload::run(Djvm& djvm) {
  const std::uint32_t threads = djvm.thread_count();
  Gos& gos = djvm.gos();
  const SimTime flop_cost =
      static_cast<SimTime>(p_.flops_per_point) * djvm.config().costs.compute_per_flop;

  // One long-lived bottom frame per thread holding the invariant matrix-root
  // reference (stack invariants in SOR point at the matrix descriptor).
  std::vector<std::size_t> root_frames(threads);
  for (ThreadId t = 0; t < threads; ++t) {
    root_frames[t] = djvm.stack(t).push(kMethodSorRun, 4);
    djvm.stack(t).frame(root_frames[t]).set_ref(0, matrix_root_);
  }

  for (std::uint32_t iter = 0; iter < p_.rounds; ++iter) {
    for (std::uint32_t color = 0; color < 2; ++color) {
      for (ThreadId t = 0; t < threads; ++t) {
        gos.set_phase(t, iter * 2 + color);
        const auto [lo, hi] = block(t, threads);
        FrameGuard phase(djvm.stack(t), kMethodSorPhase, 4);
        phase.set_ref(0, matrix_root_);
        for (std::uint32_t r = lo; r < hi; ++r) {
          if ((r & 1u) != color) continue;
          // Temporary slot updates mirror what the JIT'ed loop would keep in
          // its frame: the current row and its neighbours.
          phase.set_ref(1, row_objs_[r]);
          phase.set_ref(2, row_objs_[r - 1]);
          phase.set_ref(3, row_objs_[r + 1]);
          gos.read(t, row_objs_[r - 1]);
          gos.read(t, row_objs_[r + 1]);
          gos.read(t, row_objs_[r]);
          gos.write(t, row_objs_[r]);
          relax_row(r);
          gos.clock(t).advance(flop_cost * p_.cols);
        }
      }
      gos.barrier_all();
    }
  }

  for (ThreadId t = 0; t < threads; ++t) djvm.stack(t).pop();
}

double SorWorkload::checksum() const {
  double s = 0.0;
  for (const auto& row : grid_) {
    for (double v : row) s += v;
  }
  return s;
}

}  // namespace djvm
