#include "apps/request_serving.hpp"

#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace djvm {

namespace {
constexpr MethodId kMethodServe = 40;
constexpr MethodId kMethodSession = 41;
}  // namespace

WorkloadInfo RequestServingApp::info() const {
  return WorkloadInfo{
      .name = "RequestServing",
      .dataset = std::to_string(p_.request_classes) + " classes / " +
                 std::to_string(p_.hot_objects) + " hot objects",
      .rounds = p_.epochs,
      .granularity = "Fine",
      .object_size_desc = std::to_string(p_.object_size) + " bytes each",
  };
}

std::uint32_t RequestServingApp::sample_rank(double u) const {
  // Binary search the precomputed Zipf CDF; ranks are dense and small.
  std::uint32_t lo = 0;
  std::uint32_t hi = static_cast<std::uint32_t>(zipf_cdf_.size()) - 1;
  while (lo < hi) {
    const std::uint32_t mid = (lo + hi) / 2;
    if (u < zipf_cdf_[mid]) {
      hi = mid;
    } else {
      lo = mid + 1;
    }
  }
  return lo;
}

void RequestServingApp::build(Djvm& djvm) {
  assert(p_.request_classes > 0 && p_.hot_objects >= p_.request_classes);
  auto& reg = djvm.registry();
  hot_class_ = reg.find("ReqHotState").value_or(kInvalidClass);
  if (hot_class_ == kInvalidClass) {
    hot_class_ = reg.register_class("ReqHotState", p_.object_size, 0);
  }
  scratch_class_ = reg.find("ReqSession").value_or(kInvalidClass);
  if (scratch_class_ == kInvalidClass) {
    scratch_class_ = reg.register_class("ReqSession", p_.object_size, 0);
  }

  const std::uint32_t threads = djvm.thread_count();
  assert(threads > 0);

  // Hot state: class k's slice is homed round-robin so every node serves a
  // share of every request class (the co-location the balancer can improve).
  hot_pool_.reserve(p_.hot_objects);
  for (std::uint32_t i = 0; i < p_.hot_objects; ++i) {
    const NodeId home =
        djvm.gos().thread_node(static_cast<ThreadId>(i % threads));
    hot_pool_.push_back(djvm.gos().alloc(hot_class_, home));
  }
  // Session scratch: a small recycled pool per thread (sessions are too
  // short-lived to allocate fresh objects per arrival; a server reuses its
  // arena the same way).
  scratch_.assign(threads, {});
  for (std::uint32_t t = 0; t < threads; ++t) {
    const NodeId home = djvm.gos().thread_node(static_cast<ThreadId>(t));
    for (std::uint32_t i = 0; i < p_.scratch_per_thread; ++i) {
      scratch_[t].push_back(djvm.gos().alloc(scratch_class_, home));
    }
  }

  // Zipf CDF over popularity ranks: P(rank r) ~ 1 / (r + 1)^s.
  zipf_cdf_.assign(p_.request_classes, 0.0);
  double mass = 0.0;
  for (std::uint32_t r = 0; r < p_.request_classes; ++r) {
    mass += 1.0 / std::pow(static_cast<double>(r + 1), p_.zipf_s);
    zipf_cdf_[r] = mass;
  }
  for (double& c : zipf_cdf_) c /= mass;
}

void RequestServingApp::serve_epoch(Djvm& djvm) {
  const std::uint32_t threads = djvm.thread_count();
  Gos& gos = djvm.gos();
  const std::uint32_t slice =
      std::max(1u, p_.hot_objects / p_.request_classes);
  // The diurnal schedule rotates which *actual* class each popularity rank
  // maps to: rank r serves class (r + phase) mod classes, so every
  // phase_period epochs the hot slice of the pool shifts wholesale.
  const std::uint32_t rotation = phase() % p_.request_classes;
  for (ThreadId t = 0; t < threads; ++t) gos.set_phase(t, epoch_);

  for (std::uint32_t i = 0; i < p_.sessions_per_epoch; ++i) {
    const auto t = static_cast<ThreadId>(i % threads);
    // Per-session stream: seeded by global session ordinal, not by epoch
    // wall state, so the arrival sequence is reproducible across hosts.
    SplitMix64 rng(p_.seed ^ (sessions_ * 0x9E3779B97F4A7C15ULL + 1));
    const std::uint32_t rank = sample_rank(rng.next_double());
    const std::uint32_t klass = (rank + rotation) % p_.request_classes;
    const std::uint32_t base = klass * slice;

    FrameGuard serve(djvm.stack(t), kMethodServe, 1);
    FrameGuard session(djvm.stack(t), kMethodSession, 2);
    const std::vector<ObjectId>& scratch = scratch_[t];
    session.set_ref(0, scratch[static_cast<std::size_t>(
                           rng.next_below(scratch.size()))]);
    for (std::uint32_t op = 0; op < p_.session_ops; ++op) {
      const ObjectId obj =
          hot_pool_[base + static_cast<std::uint32_t>(
                               rng.next_below(slice))];
      session.set_ref(1, obj);
      // Server mix: mostly reads of hot state, occasional writes (session
      // commits), plus a scratch touch every few ops.
      if ((op & 7u) == 7u) {
        gos.write(t, obj);
      } else {
        gos.read(t, obj);
      }
      if ((op & 3u) == 3u) {
        const ObjectId sc = scratch[static_cast<std::size_t>(
            rng.next_below(scratch.size()))];
        gos.write(t, sc);
      }
      checksum_ += static_cast<double>(rng.next() & 0xFF);
      gos.clock(t).advance(20 * djvm.config().costs.compute_per_flop);
    }
    ++sessions_;
  }
  // One serving epoch per governor epoch: the barrier is the sync point
  // where every thread's pending OAL ships.
  gos.barrier_all();
  ++epoch_;
}

void RequestServingApp::run(Djvm& djvm) {
  for (std::uint32_t e = 0; e < p_.epochs; ++e) serve_epoch(djvm);
}

}  // namespace djvm
