#include "apps/water_spatial.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "common/rng.hpp"

namespace djvm {

namespace {
constexpr MethodId kMethodMain = 20;
constexpr MethodId kMethodInter = 21;
constexpr MethodId kMethodIntra = 22;
constexpr MethodId kMethodUpdate = 23;
}  // namespace

WorkloadInfo WaterSpatialWorkload::info() const {
  return WorkloadInfo{
      .name = "Water-Spatial",
      .dataset = std::to_string(p_.molecules) + " molecules",
      .rounds = p_.rounds,
      .granularity = "Medium",
      .object_size_desc = "each molecule about 512 bytes",
  };
}

std::uint32_t WaterSpatialWorkload::box_of(const std::array<double, 3>& pos) const {
  const std::uint32_t n = p_.boxes_per_side;
  const double extent = p_.box_size * n;
  std::uint32_t idx[3];
  for (int k = 0; k < 3; ++k) {
    double x = std::fmod(pos[k], extent);
    if (x < 0) x += extent;
    idx[k] = std::min(n - 1, static_cast<std::uint32_t>(x / p_.box_size));
  }
  return (idx[2] * n + idx[1]) * n + idx[0];
}

std::pair<std::uint32_t, std::uint32_t> WaterSpatialWorkload::slab(
    std::uint32_t t, std::uint32_t threads) const {
  const std::uint32_t boxes = p_.boxes_per_side * p_.boxes_per_side * p_.boxes_per_side;
  const std::uint32_t per = boxes / threads;
  const std::uint32_t extra = boxes % threads;
  const std::uint32_t lo = t * per + std::min(t, extra);
  return {lo, lo + per + (t < extra ? 1 : 0)};
}

void WaterSpatialWorkload::build(Djvm& djvm) {
  auto& reg = djvm.registry();
  mol_array_class_ = reg.find("double[]").value_or(kInvalidClass);
  if (mol_array_class_ == kInvalidClass) {
    mol_array_class_ = reg.register_array_class("double[]", 8);
  }
  box_class_ = reg.find("Box").value_or(kInvalidClass);
  if (box_class_ == kInvalidClass) {
    box_class_ = reg.register_class("Box", 48, 0);
  }

  const std::uint32_t threads = djvm.thread_count();
  assert(threads > 0);
  const std::uint32_t boxes = p_.boxes_per_side * p_.boxes_per_side * p_.boxes_per_side;
  box_objs_.resize(boxes);
  box_members_.assign(boxes, {});
  data_.resize(p_.molecules);
  mol_objs_.resize(p_.molecules);
  box_of_mol_.resize(p_.molecules);

  // Boxes homed at the thread owning their slab.
  for (std::uint32_t t = 0; t < threads; ++t) {
    const auto [lo, hi] = slab(t, threads);
    const NodeId home = djvm.gos().thread_node(static_cast<ThreadId>(t));
    for (std::uint32_t b = lo; b < hi; ++b) {
      box_objs_[b] = djvm.gos().alloc(box_class_, home);
    }
  }

  // Molecules: uniform positions; each is a 64-element double[] (512 bytes).
  SplitMix64 rng(djvm.config().seed ^ 0x0A7E4ULL);
  const double extent = p_.box_size * p_.boxes_per_side;
  for (std::uint32_t m = 0; m < p_.molecules; ++m) {
    for (int k = 0; k < 3; ++k) data_[m].pos[k] = rng.uniform(0.0, extent);
    for (int k = 0; k < 3; ++k) data_[m].vel[k] = rng.uniform(-0.05, 0.05);
    const std::uint32_t b = box_of(data_[m].pos);
    box_of_mol_[m] = b;
    box_members_[b].push_back(m);
    // Molecule homed with its box's owner.
    const NodeId home = djvm.heap().meta(box_objs_[b]).home;
    mol_objs_[m] = djvm.gos().alloc_array(mol_array_class_, home, 64);
    djvm.heap().add_ref(box_objs_[b], mol_objs_[m]);
  }
}

void WaterSpatialWorkload::rebin(Djvm& djvm, ThreadId t, std::uint32_t m) {
  const std::uint32_t nb = box_of(data_[m].pos);
  const std::uint32_t ob = box_of_mol_[m];
  if (nb == ob) return;
  // Box membership changes are protected by a per-box lock pair (molecule
  // migration between spatial cells).
  const LockId lock_old = static_cast<LockId>(ob);
  const LockId lock_new = static_cast<LockId>(nb);
  djvm.acquire(t, std::min(lock_old, lock_new));
  djvm.gos().write(t, box_objs_[ob]);
  djvm.gos().write(t, box_objs_[nb]);
  auto& old_list = box_members_[ob];
  old_list.erase(std::remove(old_list.begin(), old_list.end(), m), old_list.end());
  box_members_[nb].push_back(m);
  box_of_mol_[m] = nb;
  djvm.release(t, std::min(lock_old, lock_new));
}

void WaterSpatialWorkload::run(Djvm& djvm) {
  const std::uint32_t threads = djvm.thread_count();
  Gos& gos = djvm.gos();
  const std::uint32_t n = p_.boxes_per_side;
  const double cutoff2 = p_.cutoff * p_.cutoff;
  const SimTime pair_cost =
      static_cast<SimTime>(p_.flops_per_pair) * djvm.config().costs.compute_per_flop;

  std::vector<std::size_t> root_frames(threads);
  for (ThreadId t = 0; t < threads; ++t) {
    const auto [lo, hi] = slab(t, threads);
    root_frames[t] = djvm.stack(t).push(kMethodMain, 2);
    djvm.stack(t).frame(root_frames[t]).set_ref(0, box_objs_[lo]);
    djvm.stack(t).frame(root_frames[t]).set_prim(1, hi - lo);
  }

  for (std::uint32_t round = 0; round < p_.rounds; ++round) {
    // Phase 0: intra-molecular forces (own molecules only).
    for (ThreadId t = 0; t < threads; ++t) {
      gos.set_phase(t, round * 3);
      const auto [lo, hi] = slab(t, threads);
      FrameGuard phase(djvm.stack(t), kMethodIntra, 2);
      for (std::uint32_t b = lo; b < hi; ++b) {
        phase.set_ref(0, box_objs_[b]);
        gos.read(t, box_objs_[b]);
        for (std::uint32_t m : box_members_[b]) {
          phase.set_ref(1, mol_objs_[m]);
          gos.read(t, mol_objs_[m]);
          gos.write(t, mol_objs_[m]);
          MoleculeData& md = data_[m];
          md.force = {0.0, 0.0, 0.0};
          // Bond-angle style local computation.
          double e = 0.0;
          for (int k = 0; k < 3; ++k) e += std::sin(md.pos[k]) * std::cos(md.vel[k]);
          md.force[0] += 1e-3 * e;
          gos.clock(t).advance(80 * djvm.config().costs.compute_per_flop);
        }
      }
    }
    gos.barrier_all();

    // Phase 1: inter-molecular forces with the 27 neighbouring boxes.
    for (ThreadId t = 0; t < threads; ++t) {
      gos.set_phase(t, round * 3 + 1);
      const auto [lo, hi] = slab(t, threads);
      FrameGuard phase(djvm.stack(t), kMethodInter, 3);
      for (std::uint32_t b = lo; b < hi; ++b) {
        phase.set_ref(0, box_objs_[b]);
        const std::uint32_t bx = b % n;
        const std::uint32_t by = (b / n) % n;
        const std::uint32_t bz = b / (n * n);
        for (int dz = -1; dz <= 1; ++dz) {
          for (int dy = -1; dy <= 1; ++dy) {
            for (int dx = -1; dx <= 1; ++dx) {
              const std::uint32_t ox = (bx + n + static_cast<std::uint32_t>(dx + static_cast<int>(n))) % n;
              const std::uint32_t oy = (by + n + static_cast<std::uint32_t>(dy + static_cast<int>(n))) % n;
              const std::uint32_t oz = (bz + n + static_cast<std::uint32_t>(dz + static_cast<int>(n))) % n;
              const std::uint32_t nb = (oz * n + oy) * n + ox;
              gos.read(t, box_objs_[nb]);
              for (std::uint32_t mi : box_members_[b]) {
                phase.set_ref(1, mol_objs_[mi]);
                MoleculeData& a = data_[mi];
                for (std::uint32_t mj : box_members_[nb]) {
                  if (mj == mi) continue;
                  double d2 = 0.0;
                  for (int k = 0; k < 3; ++k) {
                    const double d = a.pos[k] - data_[mj].pos[k];
                    d2 += d * d;
                  }
                  if (d2 > cutoff2) continue;
                  phase.set_ref(2, mol_objs_[mj]);
                  gos.read(t, mol_objs_[mj]);
                  // Lennard-Jones-ish pair force on the owning molecule.
                  const double inv2 = 1.0 / (d2 + 0.25);
                  const double inv6 = inv2 * inv2 * inv2;
                  const double f = 24.0 * inv6 * (2.0 * inv6 - 1.0) * inv2;
                  for (int k = 0; k < 3; ++k) {
                    a.force[k] += f * (a.pos[k] - data_[mj].pos[k]);
                  }
                  gos.clock(t).advance(pair_cost);
                }
              }
            }
          }
        }
      }
    }
    gos.barrier_all();

    // Phase 2: integrate + rebin molecules that crossed box borders.
    for (ThreadId t = 0; t < threads; ++t) {
      gos.set_phase(t, round * 3 + 2);
      const auto [lo, hi] = slab(t, threads);
      FrameGuard phase(djvm.stack(t), kMethodUpdate, 1);
      std::vector<std::uint32_t> owned;
      for (std::uint32_t b = lo; b < hi; ++b) {
        for (std::uint32_t m : box_members_[b]) owned.push_back(m);
      }
      for (std::uint32_t m : owned) {
        phase.set_ref(0, mol_objs_[m]);
        gos.write(t, mol_objs_[m]);
        MoleculeData& md = data_[m];
        for (int k = 0; k < 3; ++k) {
          md.vel[k] += md.force[k] * p_.dt;
          md.pos[k] += md.vel[k] * p_.dt;
        }
        gos.clock(t).advance(18 * djvm.config().costs.compute_per_flop);
        rebin(djvm, t, m);
      }
    }
    gos.barrier_all();
  }

  for (ThreadId t = 0; t < threads; ++t) djvm.stack(t).pop();
}

double WaterSpatialWorkload::checksum() const {
  double s = 0.0;
  for (const MoleculeData& m : data_) {
    for (int k = 0; k < 3; ++k) s += m.pos[k] + m.vel[k];
  }
  return s;
}

}  // namespace djvm
