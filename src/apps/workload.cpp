#include "apps/workload.hpp"

#include <chrono>

namespace djvm {

RunMetrics execute_workload(Djvm& djvm, Workload& w) {
  RunMetrics m;
  const auto b0 = std::chrono::steady_clock::now();
  w.build(djvm);
  m.build_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - b0).count();

  djvm.gos().reset_stats();
  djvm.net().reset_stats();

  const auto r0 = std::chrono::steady_clock::now();
  w.run(djvm);
  m.run_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - r0).count();

  m.protocol = djvm.gos().stats();
  m.traffic = djvm.net().stats();
  for (ThreadId t = 0; t < djvm.thread_count(); ++t) {
    m.max_sim_time = std::max(m.max_sim_time, djvm.gos().clock(t).now());
  }
  return m;
}

}  // namespace djvm
