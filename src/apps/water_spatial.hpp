// Water-Spatial: molecular dynamics over spatial boxes (paper Section IV,
// benchmark 3).
//
// 512 water molecules (each one double[] of ~512 bytes, matching Table I's
// "each molecule about 512 bytes" and Table V's double[] class) placed in a
// 3-D grid of boxes.  Each round computes intra-molecular forces, then
// inter-molecular interactions with molecules in the 27 neighbouring boxes
// within a cutoff, then integrates positions; molecules drift between boxes
// over time ("evolving load distribution").  Box ownership is partitioned in
// z-slabs, giving the near-neighbour 3-D sharing pattern of Table I.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

#include "apps/workload.hpp"

namespace djvm {

struct WaterParams {
  std::uint32_t molecules = 512;
  std::uint32_t rounds = 5;
  double box_size = 4.0;
  std::uint32_t boxes_per_side = 4;  ///< 4^3 = 64 boxes
  double cutoff = 4.5;
  std::uint32_t flops_per_pair = 300;  ///< water potential is expensive
  double dt = 0.01;
};

class WaterSpatialWorkload final : public Workload {
 public:
  explicit WaterSpatialWorkload(WaterParams p = {}) : p_(p) {}

  [[nodiscard]] WorkloadInfo info() const override;
  void build(Djvm& djvm) override;
  void run(Djvm& djvm) override;
  [[nodiscard]] double checksum() const override;

  [[nodiscard]] const WaterParams& params() const noexcept { return p_; }
  [[nodiscard]] ObjectId molecule_object(std::uint32_t i) const { return mol_objs_[i]; }

 private:
  struct MoleculeData {
    std::array<double, 3> pos{};
    std::array<double, 3> vel{};
    std::array<double, 3> force{};
  };

  [[nodiscard]] std::uint32_t box_of(const std::array<double, 3>& pos) const;
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> slab(std::uint32_t t,
                                                             std::uint32_t threads) const;
  void rebin(Djvm& djvm, ThreadId t, std::uint32_t m);

  WaterParams p_;
  ClassId mol_array_class_ = kInvalidClass;  ///< "double[]" (one per molecule)
  ClassId box_class_ = kInvalidClass;

  std::vector<MoleculeData> data_;
  std::vector<ObjectId> mol_objs_;
  std::vector<ObjectId> box_objs_;
  std::vector<std::vector<std::uint32_t>> box_members_;
  std::vector<std::uint32_t> box_of_mol_;
};

}  // namespace djvm
