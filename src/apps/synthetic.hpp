// Synthetic sharing-pattern generator.
//
// Drives the GOS with precisely controlled access patterns so tests can
// assert exact correlation structure and the ablation benches can stress
// specific design choices:
//   * kPartitioned — each thread touches only its own pool (TCM ~ zero);
//   * kPairShared  — threads (2i, 2i+1) share a pool (block-diagonal TCM);
//   * kAllShared   — everyone touches one pool (uniform TCM);
//   * kCyclic      — allocation striped across threads with a fixed period:
//                    the adversary that breaks power-of-two sampling gaps and
//                    motivates the paper's prime-gap rule (Section II.B.1).
#pragma once

#include <cstdint>
#include <vector>

#include "apps/workload.hpp"

namespace djvm {

enum class SharingPattern : std::uint8_t {
  kPartitioned,
  kPairShared,
  kAllShared,
  kCyclic,
};

struct SyntheticParams {
  SharingPattern pattern = SharingPattern::kPairShared;
  std::uint32_t objects = 4096;         ///< total objects in the shared pool(s)
  std::uint32_t object_size = 64;       ///< bytes per scalar object
  std::uint32_t rounds = 4;
  std::uint32_t accesses_per_round = 4096;  ///< per thread
  /// kCyclic: allocation stripe period (set equal to a power-of-two nominal
  /// gap to demonstrate the aliasing pathology).
  std::uint32_t cyclic_period = 32;
  /// Also allocate this many arrays of `array_len` elements into the pool.
  std::uint32_t arrays = 0;
  std::uint32_t array_len = 256;
  std::uint32_t array_elem_size = 8;
};

class SyntheticWorkload final : public Workload {
 public:
  explicit SyntheticWorkload(SyntheticParams p = {}) : p_(p) {}

  [[nodiscard]] WorkloadInfo info() const override;
  void build(Djvm& djvm) override;
  void run(Djvm& djvm) override;
  [[nodiscard]] double checksum() const override { return checksum_; }

  [[nodiscard]] ClassId object_class() const noexcept { return obj_class_; }
  [[nodiscard]] ClassId array_class() const noexcept { return arr_class_; }
  /// Objects assigned to thread `t`'s pool (pattern-dependent).
  [[nodiscard]] const std::vector<ObjectId>& pool_of(std::uint32_t t) const {
    return pools_[t];
  }

 private:
  SyntheticParams p_;
  ClassId obj_class_ = kInvalidClass;
  ClassId arr_class_ = kInvalidClass;
  std::vector<std::vector<ObjectId>> pools_;
  double checksum_ = 0.0;
};

}  // namespace djvm
