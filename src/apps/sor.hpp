// SOR: red-black successive over-relaxation (paper Section IV, benchmark 1).
//
// An iterative linear-algebra kernel on an (n+2) x (m+2) grid whose interior
// rows are updated in two half-sweeps (red rows, then black rows) per round.
// Sharing is near-neighbour and coarse-grained: each row is one double[]
// object of at least several KB, owned by the thread holding its block;
// only block-boundary rows are shared, with the two adjacent threads.
#pragma once

#include <cstdint>
#include <vector>

#include "apps/workload.hpp"

namespace djvm {

struct SorParams {
  std::uint32_t rows = 2048;  ///< interior rows (paper: 2K x 2K, Table IV: 1K x 1K)
  std::uint32_t cols = 2048;
  std::uint32_t rounds = 10;
  double omega = 1.25;
  /// Simulated flops charged per updated grid point.
  std::uint32_t flops_per_point = 6;
};

class SorWorkload final : public Workload {
 public:
  explicit SorWorkload(SorParams p = {}) : p_(p) {}

  [[nodiscard]] WorkloadInfo info() const override;
  void build(Djvm& djvm) override;
  void run(Djvm& djvm) override;
  [[nodiscard]] double checksum() const override;

  /// Object id of row `r` (for tests).
  [[nodiscard]] ObjectId row_object(std::uint32_t r) const { return row_objs_[r]; }
  /// The matrix descriptor object referencing every row — the natural stack
  /// invariant of SOR and the entry point sticky-set resolution starts from.
  [[nodiscard]] ObjectId matrix_root() const { return matrix_root_; }
  [[nodiscard]] ClassId row_class() const noexcept { return double_array_; }
  [[nodiscard]] const SorParams& params() const noexcept { return p_; }

 private:
  void relax_row(std::uint32_t r);
  /// [lo, hi) interior row block owned by thread `t`.
  [[nodiscard]] std::pair<std::uint32_t, std::uint32_t> block(std::uint32_t t,
                                                              std::uint32_t threads) const;

  SorParams p_;
  ClassId double_array_ = kInvalidClass;
  ClassId matrix_class_ = kInvalidClass;
  ObjectId matrix_root_ = kInvalidObject;
  std::vector<ObjectId> row_objs_;       ///< (rows + 2) row objects
  std::vector<std::vector<double>> grid_;  ///< native data, (rows+2) x (cols+2)
};

}  // namespace djvm
