#include "runtime/klass.hpp"

#include <cassert>
#include <stdexcept>

namespace djvm {

ClassId KlassRegistry::register_class(std::string_view name,
                                      std::uint32_t payload_bytes,
                                      std::uint32_t ref_fields) {
  assert(!find(name).has_value() && "class names must be unique");
  Klass k;
  k.id = static_cast<ClassId>(klasses_.size());
  k.name = std::string(name);
  k.instance_size = payload_bytes;
  k.is_array = false;
  k.ref_fields = ref_fields;
  klasses_.push_back(std::move(k));
  return klasses_.back().id;
}

ClassId KlassRegistry::register_array_class(std::string_view name,
                                            std::uint32_t element_bytes,
                                            bool elements_are_refs) {
  assert(!find(name).has_value() && "class names must be unique");
  Klass k;
  k.id = static_cast<ClassId>(klasses_.size());
  k.name = std::string(name);
  k.instance_size = element_bytes;
  k.is_array = true;
  k.elements_are_refs = elements_are_refs;
  klasses_.push_back(std::move(k));
  return klasses_.back().id;
}

Klass& KlassRegistry::at(ClassId id) {
  if (id >= klasses_.size()) throw std::out_of_range("KlassRegistry::at");
  return klasses_[id];
}

const Klass& KlassRegistry::at(ClassId id) const {
  if (id >= klasses_.size()) throw std::out_of_range("KlassRegistry::at");
  return klasses_[id];
}

std::optional<ClassId> KlassRegistry::find(std::string_view name) const {
  for (const Klass& k : klasses_) {
    if (k.name == name) return k.id;
  }
  return std::nullopt;
}

std::uint32_t KlassRegistry::take_sequence(ClassId id, std::uint32_t count) {
  Klass& k = at(id);
  const std::uint32_t first = k.next_seq;
  k.next_seq += count;
  k.instances += 1;
  return first;
}

}  // namespace djvm
