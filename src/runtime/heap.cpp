#include "runtime/heap.hpp"

#include <cassert>

namespace djvm {

Heap::Heap(KlassRegistry& registry, std::uint32_t nodes)
    : registry_(registry), node_cursor_(nodes, 0) {}

ObjectId Heap::push_object(ObjectMeta meta, NodeId node) {
  assert(node < node_cursor_.size());
  registry_.at(meta.klass).bytes_allocated += meta.size_bytes;
  std::uint64_t& cursor = node_cursor_[node];
  meta.vaddr = static_cast<std::uint64_t>(node) * kNodeAddressStride + cursor;
  cursor += (meta.size_bytes + kObjectAlignment - 1) / kObjectAlignment * kObjectAlignment;
  objects_.push_back(std::move(meta));
  return static_cast<ObjectId>(objects_.size() - 1);
}

ObjectId Heap::alloc(ClassId klass, NodeId node) {
  const Klass& k = registry_.at(klass);
  assert(!k.is_array && "use alloc_array for array classes");
  ObjectMeta m;
  m.klass = klass;
  m.home = node;
  m.length = 1;
  m.size_bytes = k.instance_size;
  m.start_seq = registry_.take_sequence(klass, 1);
  return push_object(std::move(m), node);
}

ObjectId Heap::alloc_array(ClassId klass, NodeId node, std::uint32_t length) {
  const Klass& k = registry_.at(klass);
  assert(k.is_array && "use alloc for scalar classes");
  assert(length > 0);
  ObjectMeta m;
  m.klass = klass;
  m.home = node;
  m.length = length;
  m.size_bytes = k.instance_size * length;
  m.start_seq = registry_.take_sequence(klass, length);
  return push_object(std::move(m), node);
}

void Heap::set_ref(ObjectId src, std::size_t slot, ObjectId dst) {
  auto& refs = meta(src).refs;
  if (refs.size() <= slot) refs.resize(slot + 1, kInvalidObject);
  refs[slot] = dst;
}

void Heap::add_ref(ObjectId src, ObjectId dst) { meta(src).refs.push_back(dst); }

std::uint64_t Heap::bytes_at(NodeId node) const {
  std::uint64_t total = 0;
  for (const ObjectMeta& m : objects_) {
    if (m.home == node) total += m.size_bytes;
  }
  return total;
}

}  // namespace djvm
