// Object headers for the Global Object Space.
//
// Mirrors the fields the paper's techniques rely on: class id, home node,
// per-class sequence number (half-word in the paper; 32-bit here for
// simulation convenience), and length for arrays.  Reference fields are kept
// as explicit edges so sticky-set resolution can walk the object graph the
// way a prefetcher walks real heap references.
#pragma once

#include <cstdint>
#include <vector>

#include "common/types.hpp"

namespace djvm {

/// Header + graph edges of one heap object (scalar or array).
struct ObjectMeta {
  ClassId klass = kInvalidClass;
  NodeId home = kInvalidNode;
  /// First sequence number (scalars own exactly this one; an array of
  /// `length` elements owns [start_seq, start_seq + length)).
  std::uint32_t start_seq = 0;
  /// Element count; 1 for scalar instances.
  std::uint32_t length = 1;
  /// Payload size in bytes (what a remote fetch must move).
  std::uint32_t size_bytes = 0;
  /// Virtual address in the home node's address space; the page-based
  /// baseline derives page numbers from this.
  std::uint64_t vaddr = 0;
  /// Outgoing reference edges (object graph).
  std::vector<ObjectId> refs;
};

/// Per-(node, object) cache-copy consistency state, two "bits" of protocol
/// state plus the false-invalid tracking overlay described in Section II.A:
/// the *real* state lives in `real`, while `tracked` marks the false-invalid
/// overlay that forces the next access through the GOS service routine.
enum class CopyState : std::uint8_t {
  kInvalid = 0,   ///< no valid cached copy; access must fault to home
  kValid = 1,     ///< clean cached copy
  kDirty = 2,     ///< locally written since last release (diff pending)
  kHome = 3,      ///< this node is the object's home
};

}  // namespace djvm
