// Global heap directory.
//
// The simulator is a single process, so the "heap" is a global object table
// indexed by ObjectId; distribution is expressed by each object's home node
// and by per-node cache states kept in the GOS.  Allocation assigns objects
// to their creating node (the paper: "object home copies reside in the nodes
// which are the first to create them") and hands out per-class sequence
// numbers and per-node virtual addresses.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/types.hpp"
#include "runtime/klass.hpp"
#include "runtime/object.hpp"

namespace djvm {

/// Object allocation + graph storage for the whole cluster.
class Heap {
 public:
  explicit Heap(KlassRegistry& registry, std::uint32_t nodes);

  /// Allocates a scalar instance of `klass` homed at `node`.
  ObjectId alloc(ClassId klass, NodeId node);

  /// Allocates an array of `length` elements homed at `node`.
  ObjectId alloc_array(ClassId klass, NodeId node, std::uint32_t length);

  [[nodiscard]] const ObjectMeta& meta(ObjectId id) const {
    return objects_[static_cast<std::size_t>(id)];
  }
  [[nodiscard]] ObjectMeta& meta(ObjectId id) {
    return objects_[static_cast<std::size_t>(id)];
  }

  [[nodiscard]] std::size_t object_count() const noexcept { return objects_.size(); }

  /// The "GC interface" check the stack sampler uses to validate that a slot
  /// value denotes a live object (paper Section III.B).
  [[nodiscard]] bool is_valid_object(std::uint64_t raw) const noexcept {
    return raw < objects_.size();
  }

  /// Sets reference field `slot` of `src` to `dst` (grows the slot vector).
  void set_ref(ObjectId src, std::size_t slot, ObjectId dst);
  /// Appends a reference edge.
  void add_ref(ObjectId src, ObjectId dst);
  [[nodiscard]] std::span<const ObjectId> refs(ObjectId id) const {
    return objects_[static_cast<std::size_t>(id)].refs;
  }

  /// Moves an object's home (home migration support).
  void set_home(ObjectId id, NodeId node) { meta(id).home = node; }

  [[nodiscard]] const KlassRegistry& registry() const noexcept { return registry_; }
  [[nodiscard]] KlassRegistry& registry() noexcept { return registry_; }

  /// Total payload bytes homed at `node`.
  [[nodiscard]] std::uint64_t bytes_at(NodeId node) const;

 private:
  ObjectId push_object(ObjectMeta meta, NodeId node);

  KlassRegistry& registry_;
  std::vector<ObjectMeta> objects_;
  /// Per-node bump allocator for virtual addresses (baseline page mapping).
  std::vector<std::uint64_t> node_cursor_;
  static constexpr std::uint64_t kNodeAddressStride = 1ULL << 40;
  static constexpr std::uint64_t kObjectAlignment = 8;
};

}  // namespace djvm
