// Class metadata for the mini-JVM object model.
//
// The paper differentiates sampling behaviour *per class* ("we store the
// sampling-specific metadata like sampling gap as close to subclasses as
// possible", Section II.B) and allocates each object a half-word sequence
// number unique within its class.  Array classes hand out one sequence
// number per *element* (Section II.B.3's amortization scheme), so an array
// allocation consumes `length` consecutive numbers and stores only the first.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

#include "common/types.hpp"

namespace djvm {

/// Per-class sampling state, mutated at runtime by the adaptive sampler.
/// `real_gap == 1` means full sampling.  The nominal gap is kept so rate
/// changes can halve/double it and re-derive the prime real gap.
struct SamplingInfo {
  std::uint32_t nominal_gap = 1;
  std::uint32_t real_gap = 1;
  /// False until a rate has been assigned; classes registered after the
  /// cluster-wide rate was chosen inherit the plan's default on first
  /// allocation.
  bool initialized = false;
};

/// A loaded class.  For array classes `instance_size` is the *element* size
/// and objects carry their own length; for scalar classes it is the full
/// instance payload size.
struct Klass {
  ClassId id = kInvalidClass;
  std::string name;
  std::uint32_t instance_size = 0;  ///< bytes: scalar payload, or array element
  bool is_array = false;
  /// Indices of reference-typed fields within a scalar instance (slot layout
  /// used to build the object graph); for ref-array classes every element is
  /// a reference and this is empty.
  std::uint32_t ref_fields = 0;
  /// True when array elements are themselves references (e.g. Body[]).
  bool elements_are_refs = false;

  SamplingInfo sampling{};

  /// Next sequence number to hand out (starts at 1; Fig. 3 numbers from 1).
  std::uint32_t next_seq = 1;
  /// Objects allocated so far (arrays count once).
  std::uint64_t instances = 0;
  /// Total payload bytes allocated for this class (mean instance size =
  /// bytes_allocated / instances; the migration cost model uses it to turn
  /// footprint bytes into a fault-count prediction).
  std::uint64_t bytes_allocated = 0;
};

/// Registry of all classes loaded in the cluster.  Class loading in a DJVM
/// is globally coordinated, so a single registry with stable ids suffices.
class KlassRegistry {
 public:
  /// Registers a scalar class of `payload_bytes` with `ref_fields` reference
  /// slots.  Returns its id.  Names must be unique.
  ClassId register_class(std::string_view name, std::uint32_t payload_bytes,
                         std::uint32_t ref_fields = 0);

  /// Registers an array class ("double[]", "Body[]") of per-element size.
  ClassId register_array_class(std::string_view name, std::uint32_t element_bytes,
                               bool elements_are_refs = false);

  [[nodiscard]] Klass& at(ClassId id);
  [[nodiscard]] const Klass& at(ClassId id) const;
  [[nodiscard]] std::optional<ClassId> find(std::string_view name) const;
  [[nodiscard]] std::size_t size() const noexcept { return klasses_.size(); }

  /// Allocates `count` consecutive sequence numbers for class `id` and
  /// returns the first.  Scalars pass 1; arrays pass their length.
  std::uint32_t take_sequence(ClassId id, std::uint32_t count);

  [[nodiscard]] std::vector<Klass>& all() noexcept { return klasses_; }
  [[nodiscard]] const std::vector<Klass>& all() const noexcept { return klasses_; }

 private:
  std::vector<Klass> klasses_;
};

}  // namespace djvm
