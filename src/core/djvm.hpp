// The distributed JVM facade: wires every subsystem together and is the
// public entry point used by examples, tests, and the bench harnesses.
//
//   Djvm djvm(cfg);
//   djvm.spawn_threads_round_robin(cfg.threads);
//   ... allocate via djvm.gos().alloc*, access via read()/write(),
//       synchronize via barrier_all()/acquire()/release() ...
//   djvm.pump_daemon();
//   SquareMatrix tcm = djvm.daemon().build_full();
//
// Djvm implements Gos::Hooks: stack-sampling timer crossings run the per-
// thread stack sampler, interval closes feed the sticky-set footprint
// tracker, and the raw access stream fans out to registered observers (the
// page-grain baseline, oracle recorders in benches).
#pragma once

#include <functional>
#include <memory>
#include <vector>

#include "common/config.hpp"
#include "dsm/gos.hpp"
#include "migration/cost_model.hpp"
#include "migration/migration.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "governor/snapshot.hpp"
#include "profiling/correlation_daemon.hpp"
#include "profiling/sampling.hpp"
#include "runtime/heap.hpp"
#include "runtime/klass.hpp"
#include "stack/javastack.hpp"
#include "stackprof/stack_sampler.hpp"
#include "sticky/footprint.hpp"

namespace djvm {

struct MigrationSuggestion;  // balance/load_balancer.hpp

/// Observer of the raw access stream (enabled on demand).
using AccessObserver = std::function<void(ThreadId, ObjectId, bool /*write*/)>;
/// Observer of interval closes.
using IntervalObserver = std::function<void(ThreadId)>;

/// One governed epoch's request — the parameter surface run_governed_epoch()
/// had accreted implicitly, made explicit as a small builder.  The default
/// request reproduces the legacy entry point exactly, so a quiet
/// single-tenant run through the tenant API is bit-identical to the old one.
struct EpochRequest {
  /// Coordinator seconds spent outside the facade on this tenant's behalf
  /// this epoch (e.g. the cluster arbiter's billed decision share); folded
  /// into the sample's coordinator bucket exactly like the planner carry.
  double coordinator_seconds = 0.0;
  /// When false, skip this epoch's snapshot/timeline export even when the
  /// Config enables it (a cluster coordinator exporting its own merged
  /// arbitration view per epoch turns the per-tenant lines off).
  bool export_outputs = true;

  EpochRequest& bill_coordinator(double seconds) {
    coordinator_seconds += seconds;
    return *this;
  }
  EpochRequest& without_exports() {
    export_outputs = false;
    return *this;
  }
};

class TenantContext;

/// The whole distributed JVM.
class Djvm final : public Gos::Hooks {
 public:
  explicit Djvm(Config cfg);
  ~Djvm() override;
  Djvm(const Djvm&) = delete;
  Djvm& operator=(const Djvm&) = delete;

  // --- subsystem access -------------------------------------------------------
  [[nodiscard]] const Config& config() const noexcept { return cfg_; }
  [[nodiscard]] KlassRegistry& registry() noexcept { return registry_; }
  [[nodiscard]] Heap& heap() noexcept { return heap_; }
  [[nodiscard]] Network& net() noexcept { return net_; }
  [[nodiscard]] SamplingPlan& plan() noexcept { return plan_; }
  [[nodiscard]] Gos& gos() noexcept { return *gos_; }
  [[nodiscard]] CorrelationDaemon& daemon() noexcept { return daemon_; }
  [[nodiscard]] Governor& governor() noexcept { return daemon_.governor(); }
  [[nodiscard]] StackSamplerManager& stack_samplers() noexcept { return stackman_; }
  [[nodiscard]] FootprintTracker& footprints() noexcept { return fptracker_; }
  [[nodiscard]] MigrationEngine& migration() noexcept { return migration_; }
  [[nodiscard]] MigrationCostModel cost_model() const {
    return MigrationCostModel(heap_, cfg_.costs);
  }

  // --- threads -----------------------------------------------------------------
  ThreadId spawn_thread(NodeId node);
  /// Spawns `count` threads, thread i on node i % nodes.
  void spawn_threads_round_robin(std::uint32_t count);
  [[nodiscard]] std::uint32_t thread_count() const noexcept {
    return gos_->thread_count();
  }
  [[nodiscard]] JavaStack& stack(ThreadId t) { return stacks_[t]; }

  // --- convenience passthroughs (the "bytecode" API workloads program to) ------
  void read(ThreadId t, ObjectId obj) { gos_->read(t, obj); }
  void write(ThreadId t, ObjectId obj) { gos_->write(t, obj); }
  void barrier_all() { gos_->barrier_all(); }
  void acquire(ThreadId t, LockId l) { gos_->acquire(t, l); }
  void release(ThreadId t, LockId l) { gos_->release(t, l); }

  // --- profiling control ---------------------------------------------------------
  /// Applies the Config's profiling switches (sampling rate, tracking mode,
  /// stack sampling, footprinting) to the live system.
  void apply_profiling_config();

  /// Drains published ingest arenas into the correlation daemon.  With a
  /// fault injector attached, a dead node's un-shipped slices are dropped at
  /// ingest (they died with the node).
  void pump_daemon();

  /// The lock-free ingest hub routing interval OALs from worker threads to
  /// the daemon (always present: the arena transport is the only path).
  [[nodiscard]] IngestHub* ingest_hub() noexcept { return ingest_hub_.get(); }

  /// The per-epoch governor pump: drains the ingest lanes, assembles the
  /// epoch's overhead sample — cluster aggregate plus one per-node slice per
  /// worker node, from per-node GOS counters, per-source network accounting,
  /// and per-node thread-clock deltas since the previous pump, stamped with
  /// this Config's tenant id — and runs one daemon epoch under the governor.
  /// Call once per epoch (e.g. after each barrier round).  With
  /// Config::export_.snapshot_path set (and the request's exports on), the
  /// epoch's governor state + TCM are handed to the async snapshot writer
  /// afterwards.
  ///
  /// With Config::balance.max_migrations_per_epoch > 0 the pump closes the
  /// plan→execute→re-key→refeed loop: after the migration planner runs, the
  /// top-scoring suggestions are *executed* via the MigrationEngine
  /// (sticky-set prefetch from last_invariants + footprints, optional
  /// follow-the-thread home migration), capped per epoch, score- and
  /// cooldown-filtered, and vetoed entirely while the governor is over its
  /// back-off band.  Deferred moves persist as the *intended* placement the
  /// next epoch's attribution and planning score.
  EpochResult run_epoch(const EpochRequest& request = {});

  /// Deprecated legacy entry point, kept as a thin forwarding wrapper over
  /// run_epoch() with the default request (identical behavior).  New code —
  /// and anything multi-tenant — goes through TenantContext::run_epoch or
  /// run_epoch(EpochRequest) directly.
  EpochResult run_governed_epoch() { return run_epoch(); }

  /// The tenant session handle bound to this VM (identity from
  /// Config::tenant).  Cheap to construct; see TenantContext below.
  [[nodiscard]] TenantContext tenant() noexcept;

  /// Live thread→node walk (the balancer's current co-location partition).
  [[nodiscard]] std::vector<NodeId> live_thread_nodes() const;

  // --- fault tolerance ------------------------------------------------------
  /// The fault injector driving the network's fault plan (nullptr unless
  /// Config::faults.enabled, or until the first fail_node call).
  [[nodiscard]] FaultInjector* fault_injector() noexcept {
    return fault_injector_.get();
  }

  /// Fails `node` mid-run: the injector marks it dead (all traffic to/from
  /// it drops), the governor quarantines it out of offender scoring and the
  /// tighten quorum, pending planned moves targeting it are cancelled, its
  /// threads fail over round-robin to surviving nodes, and every object
  /// homed there is re-homed across the survivors through the existing
  /// Gos::migrate_homes path (sampling state re-keys via on_home_migrated).
  /// Lazily creates the injector from Config::faults when none is attached.
  /// Idempotent; a no-op when `node` is out of range or the last node alive.
  void fail_node(NodeId node);

  /// Moves admitted by the planner but deferred by the per-epoch cap or a
  /// governor veto, still awaiting execution.
  [[nodiscard]] std::size_t planned_moves_pending() const noexcept {
    return planned_moves_.size();
  }

  /// The background snapshot/timeline writer (nullptr unless
  /// Config::export_.snapshot_path or Config::export_.timeline_path is set).  Exposed so
  /// callers can flush() before inspecting the files.
  [[nodiscard]] SnapshotWriter* snapshot_writer() noexcept {
    return snapshot_writer_.get();
  }

  /// Stack-invariant refs of `t` right now (topmost first).
  [[nodiscard]] std::vector<ObjectId> invariants(ThreadId t) const {
    return stackman_.invariant_refs(t, stacks_[t]);
  }

  /// Invariants snapshotted at `t`'s most recent interval close while stack
  /// sampling was on.  Migration normally happens mid-execution; callers
  /// inspecting a finished run (whose frames are already popped) use this.
  [[nodiscard]] const std::vector<ObjectId>& last_invariants(ThreadId t) const {
    static const std::vector<ObjectId> kEmpty;
    return t < last_invariants_.size() ? last_invariants_[t] : kEmpty;
  }

  // --- observers (baseline, oracles) ---------------------------------------------
  /// Registers a raw-access observer and enables access observation.
  void add_access_observer(AccessObserver obs);
  void add_interval_observer(IntervalObserver obs);
  void clear_observers();

  // --- Gos::Hooks -----------------------------------------------------------------
  void on_stack_sample(ThreadId t) override;
  void on_interval_close(ThreadId t) override;
  void on_access(ThreadId t, ObjectId obj, bool write) override;

  /// Total simulated work done by the stack samplers, converted to SimTime
  /// and already charged to thread clocks.
  [[nodiscard]] SimTime stack_sampling_sim_cost() const noexcept {
    return stack_sampling_sim_cost_;
  }

 private:
  Config cfg_;
  KlassRegistry registry_;
  Heap heap_;
  Network net_;
  SamplingPlan plan_;
  std::unique_ptr<Gos> gos_;
  std::unique_ptr<IngestHub> ingest_hub_;
  std::vector<JavaStack> stacks_;
  StackSamplerManager stackman_;
  FootprintTracker fptracker_;
  CorrelationDaemon daemon_;
  MigrationEngine migration_;
  std::unique_ptr<SnapshotWriter> snapshot_writer_;
  std::unique_ptr<FaultInjector> fault_injector_;
  /// True once pump_daemon wired the daemon's dead-node slice filter to the
  /// fault injector (installed lazily: fail_node can create the injector
  /// mid-run).
  bool node_filter_installed_ = false;

  /// One admitted-but-deferred migration (per-epoch cap or governor veto):
  /// overrides the influence placement as the intended post-migration spot
  /// until the execution stage runs it.
  struct PlannedMove {
    ThreadId thread = kInvalidThread;
    NodeId to = kInvalidNode;
    double gain_bytes = 0.0;
    double score = 0.0;
  };

  /// The execution stage of run_governed_epoch (see Config::balance):
  /// applies deferred planned moves and fresh admitted suggestions under
  /// the cap/min-score/cooldown/veto/dry-run knobs, records events into
  /// `result`, and returns the stage's real seconds.
  double execute_migrations(EpochResult& result,
                            const std::vector<MigrationSuggestion>& suggestions,
                            const std::vector<ClassFootprint>& footprints);

  std::vector<AccessObserver> access_observers_;
  std::vector<IntervalObserver> interval_observers_;
  std::vector<std::vector<ObjectId>> last_invariants_;
  std::vector<PlannedMove> planned_moves_;
  /// Real seconds last epoch's balancer-feedback run cost (migration
  /// planner + feedback fold); billed into the next epoch's coordinator
  /// bucket, the same carryover pattern as resampling.
  double planner_carry_seconds_ = 0.0;
  /// Same carryover for the execution stage's real seconds (resolution,
  /// prefetch, home-migration bookkeeping) — its own bucket so the governor
  /// can see migration work push the budget and veto the next batch.
  double migration_carry_seconds_ = 0.0;
  SimTime stack_sampling_sim_cost_ = 0;
  /// Stack-sampler cost attributed to the node the sampled thread ran on.
  std::vector<SimTime> stack_cost_by_node_;

  /// Counters at the previous run_governed_epoch, for per-epoch deltas.
  struct PumpSnapshot {
    std::uint64_t oal_entries = 0;
    std::uint64_t footprint_touches = 0;
    std::uint64_t oal_send_ns = 0;
    SimTime thread_sim_total = 0;
    SimTime stack_cost = 0;
    // Per-node slices of the same counters (indexed by NodeId).
    std::vector<std::uint64_t> node_oal_entries;
    std::vector<std::uint64_t> node_fp_touches;
    std::vector<std::uint64_t> node_oal_send_ns;
    std::vector<SimTime> node_sim_total;
    std::vector<SimTime> node_stack_cost;
    // Per-category network byte counters (cluster and per source node), for
    // the EpochResult/timeline traffic breakdown.
    CategoryBytes cat_bytes{};
    std::vector<CategoryBytes> node_cat_bytes;
    // Fault-plan transport counters (drops, retries, backoff wait).
    CategoryBytes cat_dropped{};
    CategoryBytes cat_retries{};
    std::uint64_t backoff_ns = 0;
  } pump_snapshot_;
};

/// A tenant's session handle over one Djvm: the first-class surface a
/// multi-tenant host programs against.  It names the tenant (identity comes
/// from Config::tenant, stamped into every overhead sample and timeline
/// line), runs governed epochs via EpochRequest, and carries the budget
/// handshake with a cluster arbiter (adopt_lease / lease).  The handle is a
/// non-owning view — copy it freely; the Djvm must outlive it.
class TenantContext {
 public:
  explicit TenantContext(Djvm& vm) noexcept : vm_(&vm) {}

  [[nodiscard]] TenantId id() const noexcept { return vm_->config().tenant.id; }
  [[nodiscard]] const std::string& name() const noexcept {
    return vm_->config().tenant.name;
  }
  [[nodiscard]] std::uint32_t tier() const noexcept {
    return vm_->config().tenant.tier;
  }
  [[nodiscard]] double weight() const noexcept {
    return vm_->config().tenant.weight;
  }

  [[nodiscard]] Djvm& vm() noexcept { return *vm_; }
  [[nodiscard]] Governor& governor() noexcept { return vm_->governor(); }

  /// Runs one governed epoch for this tenant (see Djvm::run_epoch).
  EpochResult run_epoch(const EpochRequest& request = {}) {
    return vm_->run_epoch(request);
  }

  /// Adopts an arbiter-granted budget lease: the governor's budget follows
  /// the grant and the lease is carried into snapshots (v7 section).
  void adopt_lease(const Governor::TenantLease& lease) {
    vm_->governor().adopt_lease(lease);
  }
  [[nodiscard]] const std::optional<Governor::TenantLease>& lease() const noexcept {
    return vm_->governor().lease();
  }

 private:
  Djvm* vm_;
};

inline TenantContext Djvm::tenant() noexcept { return TenantContext(*this); }

}  // namespace djvm
