#include "core/djvm.hpp"

#include <algorithm>
#include <chrono>
#include <fstream>

#include "balance/balancer_feedback.hpp"
#include "balance/load_balancer.hpp"
#include "export/timeline.hpp"

namespace djvm {

namespace {
/// Converts stack-sample work counters into simulated time (nanoseconds).
SimTime stack_work_cost(const StackSampleWork& w) {
  return 200                                  // sampler entry / stack walk setup
         + 2ULL * w.raw_slots_copied          // native memcpy of raw frames
         + 6ULL * w.slots_extracted           // GC-interface pointer checks
         + 2ULL * w.slots_probed              // compare-by-probing
         + 30ULL * w.frames_walked;
}
}  // namespace

Djvm::Djvm(Config cfg)
    : cfg_(cfg),
      heap_(registry_, cfg.nodes),
      net_(cfg.costs),
      plan_(heap_),
      gos_(std::make_unique<Gos>(heap_, net_, plan_, cfg_)),
      stackman_(heap_, cfg.extraction, cfg.invariant_min_rounds),
      fptracker_(heap_, plan_),
      daemon_(plan_, cfg.threads),
      migration_(*gos_) {
  gos_->set_hooks(this);
  {
    IngestConfig icfg;
    icfg.arena_entries = cfg_.ingest.arena_entries;
    icfg.ring_depth = cfg_.ingest.ring_depth;
    ingest_hub_ = std::make_unique<IngestHub>(icfg);
    gos_->attach_ingest(ingest_hub_.get());
  }
  if (cfg_.faults.enabled) {
    fault_injector_ = std::make_unique<FaultInjector>(cfg_.faults);
    net_.set_fault_injector(fault_injector_.get());
  }
  if (!cfg_.export_.snapshot_path.empty() || !cfg_.export_.timeline_path.empty()) {
    snapshot_writer_ = std::make_unique<SnapshotWriter>();
  }
  if (!cfg_.export_.timeline_path.empty()) {
    // Fresh log per run; the per-epoch lines are appended asynchronously.
    std::ofstream truncate(cfg_.export_.timeline_path, std::ios::trunc);
  }
  apply_profiling_config();
}

Djvm::~Djvm() { gos_->set_hooks(nullptr); }

ThreadId Djvm::spawn_thread(NodeId node) {
  const ThreadId t = gos_->spawn_thread(node);
  if (stacks_.size() <= t) stacks_.resize(static_cast<std::size_t>(t) + 1);
  stackman_.ensure_threads(stacks_.size());
  return t;
}

void Djvm::spawn_threads_round_robin(std::uint32_t count) {
  for (std::uint32_t i = 0; i < count; ++i) {
    spawn_thread(static_cast<NodeId>(i % cfg_.nodes));
  }
}

void Djvm::apply_profiling_config() {
  gos_->set_tracking(cfg_.oal_transfer);
  // Attribution first: set_rate_all's resample pass must already run under
  // the configured model so its visits land on the nodes that pay.
  plan_.set_cost_attribution(cfg_.cost_attribution);
  plan_.set_rate_all(cfg_.sampling_rate_x);
  if (cfg_.stack_sampling) {
    gos_->enable_stack_sampling(cfg_.stack_sampling_gap);
  } else {
    gos_->disable_stack_sampling();
  }
  if (cfg_.footprinting) {
    gos_->enable_footprinting(cfg_.footprint_timer, cfg_.footprint_phase,
                              cfg_.footprint_rearm);
  } else {
    gos_->disable_footprinting();
  }
  if (cfg_.governor.enabled) {
    GovernorConfig gcfg;
    gcfg.overhead_budget = cfg_.governor.budget;
    gcfg.distance_threshold = cfg_.adapt_threshold;
    gcfg.per_node = cfg_.governor.per_node;
    gcfg.node_budget = cfg_.governor.node_budget;
    gcfg.scoring = cfg_.backoff_scoring;
    daemon_.governor().arm(gcfg);
  }
  RetentionPolicy retention;
  retention.idle_epochs = cfg_.retention.idle_epochs;
  retention.decay = cfg_.retention.decay;
  retention.compact_period = cfg_.retention.compact_period;
  daemon_.set_retention(retention);
  // No disarm branch: Config is immutable after construction, so
  // governor.enabled can never transition to false here — a governor armed
  // directly via governor().arm() is the caller's to tear down with
  // disarm().
}

void Djvm::pump_daemon() {
  if (fault_injector_ && !node_filter_installed_) {
    // A dead node's un-shipped interval slices died with it: the epoch's
    // map is then incomplete (missing that node's contribution), not wrong.
    daemon_.set_node_filter(
        [this](NodeId n) { return !fault_injector_->node_dead(n); });
    node_filter_installed_ = true;
  }
  // The simulator's producers run on this thread, so the hub is quiesced
  // by construction: the drain may collect open and parked arenas too.
  daemon_.ingest(*ingest_hub_);
}

EpochResult Djvm::run_epoch(const EpochRequest& request) {
  if (fault_injector_) {
    // The fault schedule's epoch advances with the governor's: timed kills
    // fire here, stall/partition windows key off the new value.
    fault_injector_->begin_epoch(daemon_.epochs_run());
    const FaultKnobs& fplan = fault_injector_->plan();
    if (fplan.kill_node != kInvalidNode &&
        fault_injector_->node_dead(fplan.kill_node) &&
        !daemon_.governor().is_quarantined(fplan.kill_node)) {
      fail_node(fplan.kill_node);  // the plan's timed kill just fired
    }
  }

  // Hand the daemon the balancer's current co-location partition (where the
  // threads actually run) so this epoch's window is attributed per class
  // against it — the influence input of the governor's back-off scoring.
  // Skipped entirely under kBytesPerEntry: the ablation path must not pay
  // the attribution walk and planner run whose result its scoring ignores.
  const bool influence_loop =
      daemon_.governor().mode() == GovernorMode::kClosedLoop &&
      daemon_.governor().config().scoring ==
          BackoffScoring::kInfluenceWeighted &&
      thread_count() > 0;
  // The execution stage needs the planner (and so the placement and cell
  // attribution) even when back-off scoring would ignore influence.
  const bool execute_stage =
      cfg_.balance.max_migrations_per_epoch > 0 && thread_count() > 0;
  if (influence_loop || execute_stage) {
    std::vector<NodeId> placement = live_thread_nodes();
    // Deferred planned moves override their threads' live nodes: attribution
    // and planning score the *intended* post-migration placement, so the
    // loop does not re-argue moves it already decided but has not yet run.
    // Executed moves need no override — they are the live nodes.
    for (const PlannedMove& p : planned_moves_) {
      if (p.thread < placement.size()) placement[p.thread] = p.to;
    }
    daemon_.set_influence_placement(std::move(placement));
  } else {
    daemon_.set_influence_placement({});
  }

  pump_daemon();

  const ProtocolStats& ps = gos_->stats();
  const std::uint32_t nodes = cfg_.nodes;
  SimTime sim_total = 0;
  std::vector<SimTime> node_sim(nodes, 0);
  for (ThreadId t = 0; t < thread_count(); ++t) {
    const SimTime now = gos_->clock(t).now();
    sim_total += now;
    // A thread that migrated mid-epoch charges its whole clock to its
    // current node — acceptable smear, since migration already implies the
    // planner believes the work belongs there.
    node_sim[gos_->thread_node(t)] += now;
  }

  // A Gos::reset_stats() between pumps restarts the counters below the
  // snapshot; treat the restarted value as the whole delta instead of
  // letting the unsigned subtraction wrap.
  const auto delta = [](std::uint64_t now, std::uint64_t then) {
    return now >= then ? now - then : now;
  };

  OverheadSample s;
  s.measured = true;
  s.tenant = cfg_.tenant.id;
  // Last epoch's balancer-feedback run (attribution consumer + migration
  // planner) and execution stage (sticky resolution, prefetch, home-move
  // bookkeeping) are coordinator work; the daemon adds this epoch's map
  // construction on top (OverheadSample::build_seconds is additive).  The
  // migration bucket is what lets the governor veto the next batch when
  // executing migrations itself pushes the budget.  The request's billed
  // coordinator share (a cluster arbiter's decision time) rides the same
  // bucket.
  s.build_seconds = planner_carry_seconds_ + migration_carry_seconds_ +
                    request.coordinator_seconds;
  planner_carry_seconds_ = 0.0;
  migration_carry_seconds_ = 0.0;
  // Worker CPU the GOS charged to thread clocks for profiling this epoch:
  // rate-dependent (OAL log service, footprint re-arm touches) vs
  // rate-independent (stack-sampler timers).
  s.access_check_seconds =
      (static_cast<double>(delta(ps.oal_entries, pump_snapshot_.oal_entries)) *
           static_cast<double>(kLogServiceCost) +
       static_cast<double>(
           delta(ps.footprint_touches, pump_snapshot_.footprint_touches)) *
           static_cast<double>(kFootprintServiceCost)) *
      1e-9;
  s.fixed_seconds =
      static_cast<double>(stack_sampling_sim_cost_ - pump_snapshot_.stack_cost) *
      1e-9;
  // OAL wire cost as Network::send actually charged it to thread clocks
  // (latency, piggybacking, and local delivery make a flat bytes/s model
  // wrong in both directions); fold the measured time into the
  // rate-dependent CPU bucket rather than re-pricing bytes in the meter.
  s.access_check_seconds +=
      static_cast<double>(delta(ps.oal_send_ns, pump_snapshot_.oal_send_ns)) *
      1e-9;
  // The thread-clock delta includes the profiling time charged above;
  // subtract it so the fraction denominator is application seconds, not
  // app + profiling.
  const double clock_delta =
      static_cast<double>(sim_total - pump_snapshot_.thread_sim_total) * 1e-9;
  s.app_seconds =
      std::max(0.0, clock_delta - s.access_check_seconds - s.fixed_seconds);

  // Per-node slices of the same accounting: each node's profiling cost over
  // each node's own application progress, so one hot node cannot hide
  // behind the cluster average.
  pump_snapshot_.node_oal_entries.resize(nodes, 0);
  pump_snapshot_.node_fp_touches.resize(nodes, 0);
  pump_snapshot_.node_oal_send_ns.resize(nodes, 0);
  pump_snapshot_.node_sim_total.resize(nodes, 0);
  pump_snapshot_.node_stack_cost.resize(nodes, 0);
  stack_cost_by_node_.resize(std::max<std::size_t>(stack_cost_by_node_.size(), nodes), 0);
  s.nodes.resize(nodes);
  const auto kOalIdx = static_cast<std::size_t>(MsgCategory::kOal);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const NodeProfilingStats& nps = gos_->node_stats(static_cast<NodeId>(n));
    const std::uint64_t send_ns =
        net_.node_traffic(static_cast<NodeId>(n)).send_ns[kOalIdx];
    NodeOverheadSample& ns = s.nodes[n];
    ns.node = static_cast<NodeId>(n);
    ns.access_check_seconds =
        (static_cast<double>(
             delta(nps.oal_entries, pump_snapshot_.node_oal_entries[n])) *
             static_cast<double>(kLogServiceCost) +
         static_cast<double>(
             delta(nps.footprint_touches, pump_snapshot_.node_fp_touches[n])) *
             static_cast<double>(kFootprintServiceCost) +
         static_cast<double>(
             delta(send_ns, pump_snapshot_.node_oal_send_ns[n]))) *
        1e-9;
    ns.fixed_seconds =
        static_cast<double>(stack_cost_by_node_[n] -
                            pump_snapshot_.node_stack_cost[n]) *
        1e-9;
    // Thread migration moves a whole clock between node sums mid-epoch, so
    // the source node's sum can drop below its snapshot: clamp through the
    // same guard as the restartable counters instead of wrapping (one smeared
    // epoch; the window absorbs it).
    const double node_clock_delta =
        static_cast<double>(delta(node_sim[n], pump_snapshot_.node_sim_total[n])) *
        1e-9;
    ns.app_seconds = std::max(
        0.0, node_clock_delta - ns.access_check_seconds - ns.fixed_seconds);

    pump_snapshot_.node_oal_entries[n] = nps.oal_entries;
    pump_snapshot_.node_fp_touches[n] = nps.footprint_touches;
    pump_snapshot_.node_oal_send_ns[n] = send_ns;
    pump_snapshot_.node_sim_total[n] = node_sim[n];
    pump_snapshot_.node_stack_cost[n] = stack_cost_by_node_[n];
  }

  pump_snapshot_.oal_entries = ps.oal_entries;
  pump_snapshot_.footprint_touches = ps.footprint_touches;
  pump_snapshot_.oal_send_ns = ps.oal_send_ns;
  pump_snapshot_.thread_sim_total = sim_total;
  pump_snapshot_.stack_cost = stack_sampling_sim_cost_;

  EpochResult result = daemon_.run_epoch(s);

  if (fault_injector_) {
    // Name the nodes whose profiling contribution this epoch's map is
    // missing: dead nodes lost their un-shipped records (see pump_daemon).
    for (std::uint32_t n = 0; n < nodes; ++n) {
      if (fault_injector_->node_dead(static_cast<NodeId>(n))) {
        result.lost_nodes.push_back(static_cast<NodeId>(n));
      }
    }
    result.degraded = !result.lost_nodes.empty();
  }

  // Per-category network traffic deltas for the timeline: TrafficStats has
  // always split bytes by MsgCategory, but nothing reported the breakdown —
  // DSM-protocol vs profiling traffic was invisible per epoch.
  const TrafficStats& ts = net_.stats();
  for (std::size_t c = 0; c < result.traffic_bytes.size(); ++c) {
    result.traffic_bytes[c] = delta(ts.bytes[c], pump_snapshot_.cat_bytes[c]);
    pump_snapshot_.cat_bytes[c] = ts.bytes[c];
    result.dropped_msgs[c] = delta(ts.dropped[c], pump_snapshot_.cat_dropped[c]);
    pump_snapshot_.cat_dropped[c] = ts.dropped[c];
    result.retries[c] = delta(ts.retries[c], pump_snapshot_.cat_retries[c]);
    pump_snapshot_.cat_retries[c] = ts.retries[c];
  }
  result.backoff_ns = delta(ts.total_backoff_ns(), pump_snapshot_.backoff_ns);
  pump_snapshot_.backoff_ns = ts.total_backoff_ns();
  pump_snapshot_.node_cat_bytes.resize(nodes);
  result.node_traffic_bytes.resize(nodes);
  for (std::uint32_t n = 0; n < nodes; ++n) {
    const NodeTraffic& nt = net_.node_traffic(static_cast<NodeId>(n));
    for (std::size_t c = 0; c < result.traffic_bytes.size(); ++c) {
      result.node_traffic_bytes[n][c] =
          delta(nt.bytes[c], pump_snapshot_.node_cat_bytes[n][c]);
      pump_snapshot_.node_cat_bytes[n][c] = nt.bytes[c];
    }
  }

  // Close the balancer -> governor loop: run the migration planner over the
  // fresh map, condense cut shares + accepted suggestions + remote-home mass
  // into per-class influence, and let the governor's next back-off weight
  // its benefit/cost scores by it.  One epoch of lag by construction (this
  // epoch's decision used last epoch's influence); the governor's
  // exponential-decay memory is what makes that sound.
  if ((influence_loop || execute_stage) && !result.cells.empty()) {
    const auto planner_t0 = std::chrono::steady_clock::now();
    // The map's dimension is cfg_.threads (fixed at daemon construction);
    // the planner indexes node_of_thread up to it, so pad past the spawned
    // threads with kInvalidNode — the planner skips unplaced threads
    // entirely, so filler neither migrates nor occupies a node's capacity.
    const Placement current =
        assemble_placement(daemon_.influence_placement(), result.tcm.size());
    // Context bytes come from the stacks (always live); sticky-set
    // footprints only exist when footprinting is on.  Missing entries fall
    // back to the planner's defaults.
    std::vector<ClassFootprint> footprints;
    std::vector<std::uint64_t> contexts(thread_count(), 1024);
    for (ThreadId t = 0; t < thread_count(); ++t) {
      // Threads spawned through gos().spawn_thread() directly have no stack
      // here (same guard as the interval-close hook): planner default.
      if (t < stacks_.size()) contexts[t] = stacks_[t].context_bytes() + 1024;
    }
    if (cfg_.footprinting) {
      footprints.resize(thread_count());
      for (ThreadId t = 0; t < thread_count(); ++t) {
        footprints[t] = fptracker_.footprint(t);
      }
    }
    const std::vector<MigrationSuggestion> suggestions = plan_migrations(
        result.tcm, current, footprints, contexts, cost_model(), cfg_.nodes,
        cfg_.costs.bytes_per_ns, /*slack=*/1);
    if (execute_stage) {
      result.migration_seconds =
          execute_migrations(result, suggestions, footprints);
      migration_carry_seconds_ += result.migration_seconds;
    }
    if (influence_loop) {
      daemon_.governor().observe_balancer_feedback(
          build_balancer_feedback(result.cells, suggestions));
    }
    // Coordinator work like the map build itself: billed to the *next*
    // epoch's sample (this epoch's decision already ran), same carryover
    // pattern as resampling cost.  The execution stage's share is carried
    // in its own bucket above, not double-billed here.
    planner_carry_seconds_ =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      planner_t0)
            .count() -
        result.migration_seconds;
  }

  if (request.export_outputs && snapshot_writer_ &&
      !cfg_.export_.snapshot_path.empty()) {
    // Every epoch snapshots for crash recovery; the encode runs here (state
    // is ours to read synchronously), the file write on the background
    // thread, and a still-queued older snapshot is simply replaced.
    snapshot_writer_->save_async(cfg_.export_.snapshot_path, daemon_.governor(),
                                 daemon_.latest());
  }
  if (request.export_outputs && snapshot_writer_ &&
      !cfg_.export_.timeline_path.empty()) {
    // The line renders here (epoch state is ours to read synchronously);
    // the append happens on the background thread, batched under disk
    // pressure, never coalesced away.
    snapshot_writer_->append_async(
        cfg_.export_.timeline_path,
        timeline_line(result, daemon_.governor(), registry_,
                      cfg_.export_.timeline_top_k, cfg_.tenant.id));
  }
  return result;
}

void Djvm::fail_node(NodeId node) {
  if (node >= cfg_.nodes) return;
  if (!fault_injector_) {
    fault_injector_ = std::make_unique<FaultInjector>(cfg_.faults);
    net_.set_fault_injector(fault_injector_.get());
    fault_injector_->begin_epoch(daemon_.epochs_run());
  }

  // Survivors, in node order (failover and re-homing round-robin over them).
  std::vector<NodeId> live;
  for (std::uint32_t n = 0; n < cfg_.nodes; ++n) {
    const auto id = static_cast<NodeId>(n);
    if (id != node && !fault_injector_->node_dead(id)) live.push_back(id);
  }
  if (live.empty()) return;  // refusing to kill the last node alive

  fault_injector_->kill_node(node);
  daemon_.governor().quarantine_node(node);

  // Cancel planned moves targeting the dead node: they were scored against a
  // placement that no longer exists, so re-planning beats re-targeting.
  std::erase_if(planned_moves_,
                [node](const PlannedMove& p) { return p.to == node; });

  // Fail threads over to the survivors.  Their current intervals continue on
  // the new node (move_thread keeps the at-most-once log), the same smear
  // rule the overhead accounting already accepts for planned migrations.
  std::size_t rr = 0;
  for (ThreadId t = 0; t < thread_count(); ++t) {
    if (gos_->thread_node(t) == node) {
      gos_->move_thread(t, live[rr++ % live.size()]);
    }
  }

  // Re-home every orphaned object across the survivors.  migrate_homes ships
  // one aggregated payload per batch and re-keys sampling state through
  // on_home_migrated; the wire transfer from the dead node is dropped by the
  // injector (the data really comes from surviving cached copies), but the
  // home directory update is what recovery needs.
  std::vector<std::vector<ObjectId>> orphans(live.size());
  for (std::size_t o = 0; o < heap_.object_count(); ++o) {
    const auto id = static_cast<ObjectId>(o);
    if (heap_.meta(id).home == node) {
      orphans[o % live.size()].push_back(id);
    }
  }
  for (std::size_t i = 0; i < live.size(); ++i) {
    if (!orphans[i].empty()) gos_->migrate_homes(orphans[i], live[i]);
  }
}

std::vector<NodeId> Djvm::live_thread_nodes() const {
  std::vector<NodeId> placement(thread_count());
  for (ThreadId t = 0; t < thread_count(); ++t) {
    placement[t] = gos_->thread_node(t);
  }
  return placement;
}

double Djvm::execute_migrations(
    EpochResult& result, const std::vector<MigrationSuggestion>& suggestions,
    const std::vector<ClassFootprint>& footprints) {
  const auto t0 = std::chrono::steady_clock::now();
  const BalanceKnobs& knobs = cfg_.balance;
  Governor& gov = daemon_.governor();
  // One admission decision per epoch: a mid-batch flip would execute a
  // placement the planner never scored as a whole.
  const bool admitted = gov.allow_migration_work();

  // Work list: deferred moves first (FIFO — they were admitted earlier), then
  // fresh suggestions in score order.  A fresh suggestion for a thread
  // supersedes its stale pending entry: the planner saw newer attribution.
  struct Candidate {
    ThreadId thread;
    NodeId to;
    double gain_bytes;
    double score;
    bool fresh;
  };
  std::vector<Candidate> work;
  work.reserve(planned_moves_.size() + suggestions.size());
  for (const PlannedMove& p : planned_moves_) {
    work.push_back({p.thread, p.to, p.gain_bytes, p.score, false});
  }
  for (const MigrationSuggestion& s : suggestions) {
    if (s.score < knobs.min_score) break;  // sorted descending by score
    std::erase_if(work, [&](const Candidate& c) {
      return !c.fresh && c.thread == s.thread;
    });
    work.push_back({s.thread, s.to, s.gain_bytes, s.score, true});
  }

  std::vector<PlannedMove> still_pending;
  std::uint32_t executed = 0;
  for (const Candidate& c : work) {
    if (c.thread >= thread_count()) continue;
    if (gos_->thread_node(c.thread) == c.to) continue;  // already there
    // A quarantined (failed) node is un-placeable: drop the candidate rather
    // than defer it — the planner will re-score the thread against the
    // surviving nodes next epoch.
    if (gov.is_quarantined(c.to)) continue;
    if (gov.in_cooldown(c.thread, knobs.cooldown_epochs)) continue;

    EpochResult::MigrationEvent ev;
    ev.thread = c.thread;
    ev.from = gos_->thread_node(c.thread);
    ev.to = c.to;
    ev.gain_bytes = c.gain_bytes;
    ev.score = c.score;

    if (knobs.dry_run) {
      // Ablation: log what *would* run under the same cap/veto, move
      // nothing, defer nothing — the run stays bit-identical to
      // execution-off so the bench band isolates the execution effect.
      if (admitted && executed < knobs.max_migrations_per_epoch) {
        ++executed;
        result.migrations.push_back(ev);
      }
      continue;
    }

    if (!admitted || executed >= knobs.max_migrations_per_epoch) {
      // Deferred, not dropped: stays the intended placement next epoch.
      still_pending.push_back({c.thread, c.to, c.gain_bytes, c.score});
      result.migrations.push_back(ev);
      continue;
    }

    static const JavaStack kNoStack;
    const JavaStack& stk = c.thread < stacks_.size() ? stacks_[c.thread] : kNoStack;
    const ClassFootprint fp =
        c.thread < footprints.size() ? footprints[c.thread] : ClassFootprint{};
    const MigrationOutcome out = migration_.migrate_with_resolution(
        c.thread, c.to, stk, last_invariants(c.thread), fp,
        cfg_.landmark_tolerance,
        knobs.follow_homes ? knobs.max_home_migrations : 0);
    ++executed;

    ev.executed = true;
    ev.sim_cost = out.sim_cost;
    ev.prefetched_bytes = out.prefetched_bytes;
    ev.homes_migrated = out.homes_migrated;
    result.migrations.push_back(ev);

    Governor::ExecutedMigration rec;
    rec.epoch = static_cast<std::uint64_t>(gov.epochs_seen());
    rec.thread = c.thread;
    rec.from = ev.from;
    rec.to = c.to;
    rec.gain_bytes = c.gain_bytes;
    rec.sim_cost_seconds = static_cast<double>(out.sim_cost) * 1e-9;
    rec.prefetched_bytes = out.prefetched_bytes;
    gov.record_migration(rec);
  }
  if (!knobs.dry_run) planned_moves_ = std::move(still_pending);
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

void Djvm::add_access_observer(AccessObserver obs) {
  access_observers_.push_back(std::move(obs));
  gos_->set_observe_accesses(true);
}

void Djvm::add_interval_observer(IntervalObserver obs) {
  interval_observers_.push_back(std::move(obs));
}

void Djvm::clear_observers() {
  access_observers_.clear();
  interval_observers_.clear();
  gos_->set_observe_accesses(false);
}

void Djvm::on_stack_sample(ThreadId t) {
  if (t >= stacks_.size()) return;
  const StackSampleWork work = stackman_.sample(t, stacks_[t]);
  const SimTime cost = stack_work_cost(work);
  gos_->clock(t).advance(cost);
  stack_sampling_sim_cost_ += cost;
  const NodeId node = gos_->thread_node(t);
  if (stack_cost_by_node_.size() <= node) stack_cost_by_node_.resize(node + 1, 0);
  stack_cost_by_node_[node] += cost;
}

void Djvm::on_interval_close(ThreadId t) {
  fptracker_.on_interval_close(t, gos_->footprint_touches(t));
  if (cfg_.stack_sampling && t < stacks_.size() && !stacks_[t].empty()) {
    if (last_invariants_.size() <= t) {
      last_invariants_.resize(static_cast<std::size_t>(t) + 1);
    }
    auto inv = stackman_.invariant_refs(t, stacks_[t]);
    if (!inv.empty()) last_invariants_[t] = std::move(inv);
  }
  for (const auto& obs : interval_observers_) obs(t);
}

void Djvm::on_access(ThreadId t, ObjectId obj, bool write) {
  for (const auto& obs : access_observers_) obs(t, obj, write);
}

}  // namespace djvm
