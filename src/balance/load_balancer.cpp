#include "balance/load_balancer.hpp"

#include <algorithm>
#include <cassert>
#include <functional>
#include <numeric>

namespace djvm {

std::vector<std::uint32_t> Placement::loads(std::uint32_t nodes) const {
  std::vector<std::uint32_t> l(nodes, 0);
  for (NodeId n : node_of_thread) {
    if (n < nodes) ++l[n];
  }
  return l;
}

Placement round_robin_placement(std::uint32_t threads, std::uint32_t nodes) {
  Placement p;
  p.node_of_thread.resize(threads);
  for (std::uint32_t t = 0; t < threads; ++t) {
    p.node_of_thread[t] = static_cast<NodeId>(t % nodes);
  }
  return p;
}

double remote_shared_bytes(const SquareMatrix& tcm, const Placement& p) {
  double remote = 0.0;
  const std::size_t n = tcm.size();
  assert(p.node_of_thread.size() >= n);
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (p.node_of_thread[i] != p.node_of_thread[j]) remote += tcm.at(i, j);
    }
  }
  return remote;
}

double local_shared_bytes(const SquareMatrix& tcm, const Placement& p) {
  double local = 0.0;
  const std::size_t n = tcm.size();
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      if (p.node_of_thread[i] == p.node_of_thread[j]) local += tcm.at(i, j);
    }
  }
  return local;
}

Placement correlation_placement(const SquareMatrix& tcm, std::uint32_t nodes,
                                std::uint32_t slack) {
  const std::uint32_t threads = static_cast<std::uint32_t>(tcm.size());
  const std::uint32_t capacity =
      nodes == 0 ? threads : (threads + nodes - 1) / nodes + slack;

  // Union-find clustering, merging heaviest TCM edges first.
  std::vector<std::uint32_t> parent(threads);
  std::vector<std::uint32_t> size(threads, 1);
  std::iota(parent.begin(), parent.end(), 0);
  std::function<std::uint32_t(std::uint32_t)> find = [&](std::uint32_t x) {
    while (parent[x] != x) {
      parent[x] = parent[parent[x]];
      x = parent[x];
    }
    return x;
  };

  struct Edge {
    double w;
    std::uint32_t i, j;
  };
  std::vector<Edge> edges;
  edges.reserve(threads * (threads - 1) / 2);
  for (std::uint32_t i = 0; i < threads; ++i) {
    for (std::uint32_t j = i + 1; j < threads; ++j) {
      const double w = tcm.at(i, j);
      if (w > 0.0) edges.push_back({w, i, j});
    }
  }
  std::stable_sort(edges.begin(), edges.end(), [](const Edge& a, const Edge& b) {
    if (a.w != b.w) return a.w > b.w;
    if (a.i != b.i) return a.i < b.i;
    return a.j < b.j;
  });
  for (const Edge& e : edges) {
    const std::uint32_t ri = find(e.i);
    const std::uint32_t rj = find(e.j);
    if (ri == rj) continue;
    if (size[ri] + size[rj] > capacity) continue;
    parent[rj] = ri;
    size[ri] += size[rj];
  }

  // Gather clusters; assign first-fit decreasing onto nodes.
  std::vector<std::vector<std::uint32_t>> clusters;
  std::vector<std::int32_t> cluster_of(threads, -1);
  for (std::uint32_t t = 0; t < threads; ++t) {
    const std::uint32_t r = find(t);
    if (cluster_of[r] < 0) {
      cluster_of[r] = static_cast<std::int32_t>(clusters.size());
      clusters.emplace_back();
    }
    clusters[static_cast<std::size_t>(cluster_of[r])].push_back(t);
  }
  std::stable_sort(clusters.begin(), clusters.end(),
                   [](const auto& a, const auto& b) { return a.size() > b.size(); });

  Placement p;
  p.node_of_thread.assign(threads, 0);
  std::vector<std::uint32_t> load(std::max<std::uint32_t>(nodes, 1), 0);
  for (const auto& cluster : clusters) {
    // Pick the least-loaded node that can take the whole cluster; fall back
    // to the least-loaded node.
    std::uint32_t best = 0;
    bool found = false;
    for (std::uint32_t n = 0; n < load.size(); ++n) {
      if (load[n] + cluster.size() <= capacity &&
          (!found || load[n] < load[best])) {
        best = n;
        found = true;
      }
    }
    if (!found) {
      best = static_cast<std::uint32_t>(
          std::min_element(load.begin(), load.end()) - load.begin());
    }
    for (std::uint32_t t : cluster) p.node_of_thread[t] = static_cast<NodeId>(best);
    load[best] += static_cast<std::uint32_t>(cluster.size());
  }
  return p;
}

namespace {

/// Shared core of the two planners: `node_value(t, n, working)` scores node
/// `n` for thread `t` against the *working* placement (the batch-consistent
/// view with earlier accepted moves applied); a move is suggested when the
/// score delta beats the modeled cost.  `on_move(t, from, to)` fires on each
/// acceptance so a caller with precomputed per-(thread, node) state can
/// update it incrementally.  One pass over the threads means no two
/// suggestions ever move the same thread.
template <typename NodeValue, typename OnMove>
std::vector<MigrationSuggestion> plan_with_value(
    std::uint32_t threads, const Placement& current,
    std::span<const ClassFootprint> footprints,
    std::span<const std::uint64_t> context_bytes, const MigrationCostModel& model,
    std::uint32_t nodes, double bytes_per_ns, std::uint32_t slack,
    NodeValue&& node_value, OnMove&& on_move) {
  Placement working = current;
  std::vector<std::uint32_t> load = working.loads(nodes);
  // Capacity is derived from the threads that actually sit on a node (the
  // sum of the loads): kInvalidNode padding for map slots with no spawned
  // thread must not inflate the ceiling into accepting infeasible moves.
  const std::uint32_t placed = std::accumulate(load.begin(), load.end(), 0u);
  const std::uint32_t capacity =
      nodes == 0 ? placed : (placed + nodes - 1) / nodes + slack;

  std::vector<MigrationSuggestion> out;
  for (std::uint32_t t = 0; t < threads; ++t) {
    const NodeId cur = working.node_of_thread[t];
    // Unplaced threads (kInvalidNode padding for map slots with no spawned
    // thread) can neither migrate nor occupy capacity.
    if (cur >= nodes) continue;
    NodeId best = cur;
    const double cur_value = node_value(t, cur, working);
    double best_value = cur_value;
    for (std::uint32_t n = 0; n < nodes; ++n) {
      if (n == cur) continue;
      if (load[n] + 1 > capacity) continue;
      const double v = node_value(t, static_cast<NodeId>(n), working);
      if (v > best_value) {
        best = static_cast<NodeId>(n);
        best_value = v;
      }
    }
    if (best == cur) continue;

    const double gain = best_value - cur_value;
    const ClassFootprint fp =
        t < footprints.size() ? footprints[t] : ClassFootprint{};
    const std::uint64_t ctx = t < context_bytes.size() ? context_bytes[t] : 1024;
    const MigrationCostEstimate est = model.estimate(ctx, fp);
    const double cost_bytes =
        static_cast<double>(est.total_with_prefetch()) * bytes_per_ns;
    if (gain <= cost_bytes) continue;

    // Accept: apply the move to the working view so later candidates score
    // against the intended batch, not the stale pre-batch placement.
    --load[cur];
    ++load[best];
    working.node_of_thread[t] = best;
    on_move(t, cur, best);

    MigrationSuggestion s;
    s.thread = t;
    s.from = cur;
    s.to = best;
    s.gain_bytes = gain;
    s.cost = est.total_with_prefetch();
    s.score = cost_bytes > 0.0 ? gain / cost_bytes : gain;
    out.push_back(s);
  }
  std::stable_sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    return a.score > b.score;
  });
  return out;
}

}  // namespace

Placement assemble_placement(std::span<const NodeId> placed, std::size_t dim) {
  Placement p;
  p.node_of_thread.assign(dim, kInvalidNode);
  for (std::size_t t = 0; t < placed.size() && t < dim; ++t) {
    p.node_of_thread[t] = placed[t];
  }
  return p;
}

std::vector<MigrationSuggestion> plan_migrations_home_aware(
    const SquareMatrix& tcm, const ThreadHomeAffinity& home,
    const Placement& current, std::span<const ClassFootprint> footprints,
    std::span<const std::uint64_t> context_bytes, const MigrationCostModel& model,
    std::uint32_t nodes, double bytes_per_ns, std::uint32_t slack,
    double home_weight) {
  const std::uint32_t threads = static_cast<std::uint32_t>(tcm.size());
  auto node_value = [&](std::uint32_t t, NodeId n, const Placement& working) {
    double pair_affinity = 0.0;
    for (std::uint32_t u = 0; u < threads; ++u) {
      if (u == t) continue;
      if (working.node_of_thread[u] == n) pair_affinity += tcm.at(t, u);
    }
    return pair_affinity + home_weight * home.at(t, n);
  };
  return plan_with_value(threads, current, footprints, context_bytes, model,
                         nodes, bytes_per_ns, slack, node_value,
                         [](std::uint32_t, NodeId, NodeId) {});
}

std::vector<MigrationSuggestion> plan_migrations(
    const SquareMatrix& tcm, const Placement& current,
    std::span<const ClassFootprint> footprints,
    std::span<const std::uint64_t> context_bytes, const MigrationCostModel& model,
    std::uint32_t nodes, double bytes_per_ns, std::uint32_t slack) {
  // The home-aware planner with home_weight 0, with the per-(thread, node)
  // affinities precomputed in one O(threads^2) pass — node_value is called
  // once per (thread, candidate node), and recomputing the thread scan
  // inside it would make the every-epoch planner run O(threads^2 x nodes).
  const std::uint32_t threads = static_cast<std::uint32_t>(tcm.size());
  std::vector<double> affinity(static_cast<std::size_t>(threads) * nodes, 0.0);
  for (std::uint32_t t = 0; t < threads; ++t) {
    for (std::uint32_t u = 0; u < threads; ++u) {
      if (u == t) continue;
      const NodeId n = current.node_of_thread[u];
      if (n < nodes) affinity[static_cast<std::size_t>(t) * nodes + n] += tcm.at(t, u);
    }
  }
  auto node_value = [&](std::uint32_t t, NodeId n, const Placement&) {
    return affinity[static_cast<std::size_t>(t) * nodes + n];
  };
  // Batch consistency for the precomputed table: when a move is accepted,
  // shift the mover's mass in every other thread's affinity row from the old
  // node's column to the new one (O(threads) per accepted move).
  auto on_move = [&](std::uint32_t t, NodeId from, NodeId to) {
    for (std::uint32_t u = 0; u < threads; ++u) {
      if (u == t) continue;
      const double w = tcm.at(u, t);
      if (w == 0.0) continue;
      affinity[static_cast<std::size_t>(u) * nodes + from] -= w;
      affinity[static_cast<std::size_t>(u) * nodes + to] += w;
    }
  };
  return plan_with_value(threads, current, footprints, context_bytes, model,
                         nodes, bytes_per_ns, slack, node_value, on_move);
}

}  // namespace djvm
