// Correlation-driven thread placement and migration planning.
//
// This module implements the paper's *intended use* of the profiles (its
// stated future work and the "Global Load Balancer" box of Fig. 2): consume
// the thread correlation map and the sticky-set footprints to (a) compute a
// locality-aware thread-to-node placement and (b) propose profitable
// migrations whose locality gain outweighs the modeled migration cost.
// It is an extension beyond the paper's measured claims and is flagged as
// such in DESIGN.md.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "balance/home_affinity.hpp"
#include "common/matrix.hpp"
#include "common/types.hpp"
#include "migration/cost_model.hpp"

namespace djvm {

/// A thread-to-node assignment.
struct Placement {
  std::vector<NodeId> node_of_thread;

  [[nodiscard]] std::uint32_t threads() const noexcept {
    return static_cast<std::uint32_t>(node_of_thread.size());
  }
  [[nodiscard]] std::vector<std::uint32_t> loads(std::uint32_t nodes) const;
};

/// Baseline: thread i -> node i % nodes.
[[nodiscard]] Placement round_robin_placement(std::uint32_t threads, std::uint32_t nodes);

/// Pads (or truncates) a live thread->node walk to `dim` map slots.  Slots
/// past the walked threads read kInvalidNode, which the planners treat as
/// *unplaced*: such a slot can neither migrate nor occupy a node's capacity.
/// The facade's influence-placement and planner paths both assemble their
/// Placement through this (the TCM's dimension is the configured thread
/// count, which may exceed the threads actually spawned).
[[nodiscard]] Placement assemble_placement(std::span<const NodeId> placed,
                                           std::size_t dim);

/// Bytes of pairwise shared data (TCM cells) crossing node boundaries under
/// `p` — the communication-cost objective the balancer minimizes.
[[nodiscard]] double remote_shared_bytes(const SquareMatrix& tcm, const Placement& p);

/// Bytes of pairwise shared data kept node-local under `p`.
[[nodiscard]] double local_shared_bytes(const SquareMatrix& tcm, const Placement& p);

/// Greedy correlation clustering: repeatedly merge the thread pair/cluster
/// with the largest shared volume subject to a per-node capacity of
/// ceil(threads / nodes) (+ `slack`), then assign clusters to nodes by
/// first-fit decreasing.  Deterministic.
[[nodiscard]] Placement correlation_placement(const SquareMatrix& tcm,
                                              std::uint32_t nodes,
                                              std::uint32_t slack = 0);

/// One proposed migration.
struct MigrationSuggestion {
  ThreadId thread = kInvalidThread;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  double gain_bytes = 0.0;   ///< cross-node shared bytes converted to local
  SimTime cost = 0;          ///< modeled migration cost (with prefetch)
  double score = 0.0;        ///< gain normalized by cost
};

/// Proposes migrations that move each thread toward its highest-affinity
/// node when the locality gain (in bytes, per the TCM) beats the modeled
/// migration cost converted to bytes via the network byte rate.  Respects
/// node capacity ceil(threads/nodes) + slack.  Suggestions are ordered by
/// descending score.
///
/// Plans are *batch-consistent*: each accepted suggestion updates the
/// working placement, so later candidates see earlier moves — capacity is
/// respected after the batch applies (a move both frees a slot at its
/// source and takes one at its target), affinity is scored against where
/// co-accessors will be rather than where they were (two partner threads
/// cannot swap past each other chasing each other's old node), and no two
/// suggestions move the same thread.  An executor applying only a prefix of
/// the batch (score order, per-epoch cap) can transiently exceed a node's
/// capacity by at most the moves it skipped; the slack term absorbs that.
[[nodiscard]] std::vector<MigrationSuggestion> plan_migrations(
    const SquareMatrix& tcm, const Placement& current,
    std::span<const ClassFootprint> footprints,
    std::span<const std::uint64_t> context_bytes, const MigrationCostModel& model,
    std::uint32_t nodes, double bytes_per_ns, std::uint32_t slack = 0);

/// Home-effect-aware variant (paper future work): a candidate node's value is
/// the pairwise TCM affinity *plus* `home_weight` times the thread's access
/// volume to objects homed there.  This catches the paper's tricky case of
/// thread pairs whose shared objects live at a third node — the plain planner
/// would bounce one thread to the other's node; this one sends both toward
/// the data's home.
[[nodiscard]] std::vector<MigrationSuggestion> plan_migrations_home_aware(
    const SquareMatrix& tcm, const ThreadHomeAffinity& home,
    const Placement& current, std::span<const ClassFootprint> footprints,
    std::span<const std::uint64_t> context_bytes, const MigrationCostModel& model,
    std::uint32_t nodes, double bytes_per_ns, std::uint32_t slack = 0,
    double home_weight = 1.0);

}  // namespace djvm
