// Home-effect-aware placement input (the paper's future work: "our active
// correlation tracking mechanism still needs to be enhanced for taking home
// effect into account ... in some tricky cases that objects shared by a pair
// of threads are homed at neither node of the threads", Section VI).
//
// The TCM only says how much two *threads* share; it cannot distinguish
// whether colocating them helps if the shared objects' home is a third node
// (every access still pays a remote fault there).  The thread-home affinity
// matrix fills that gap: cell (t, n) is the HT-weighted byte volume of
// objects thread t accessed whose home is node n.  A migration toward high
// home affinity reduces fault traffic even with no co-located peer.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "common/matrix.hpp"
#include "profiling/oal.hpp"
#include "runtime/heap.hpp"

namespace djvm {

/// threads x nodes matrix of access-volume-to-home-node.
class ThreadHomeAffinity {
 public:
  ThreadHomeAffinity(std::uint32_t threads, std::uint32_t nodes)
      : nodes_(nodes), data_(static_cast<std::size_t>(threads) * nodes, 0.0) {}

  [[nodiscard]] std::uint32_t threads() const noexcept {
    return nodes_ == 0 ? 0 : static_cast<std::uint32_t>(data_.size() / nodes_);
  }
  [[nodiscard]] std::uint32_t nodes() const noexcept { return nodes_; }

  double& at(ThreadId t, NodeId n) { return data_[static_cast<std::size_t>(t) * nodes_ + n]; }
  [[nodiscard]] double at(ThreadId t, NodeId n) const {
    return data_[static_cast<std::size_t>(t) * nodes_ + n];
  }

  /// Node with the highest affinity for `t`.
  [[nodiscard]] NodeId best_node(ThreadId t) const;

  /// Total volume thread `t` accesses remotely under placement `node_of_t`.
  [[nodiscard]] double remote_volume(ThreadId t, NodeId node_of_t) const;

 private:
  std::uint32_t nodes_;
  std::vector<double> data_;
};

/// Builds the matrix from collected interval records: every logged entry
/// contributes its HT-weighted bytes to (record.thread, home(entry.obj)).
/// Homes are read at call time, so home migrations are reflected.
[[nodiscard]] ThreadHomeAffinity build_home_affinity(
    std::span<const IntervalRecord> records, const Heap& heap,
    std::uint32_t threads, std::uint32_t nodes, bool weighted = true);

}  // namespace djvm
