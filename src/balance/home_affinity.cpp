#include "balance/home_affinity.hpp"

#include <unordered_set>

namespace djvm {

NodeId ThreadHomeAffinity::best_node(ThreadId t) const {
  NodeId best = 0;
  for (NodeId n = 1; n < nodes_; ++n) {
    if (at(t, n) > at(t, best)) best = n;
  }
  return best;
}

double ThreadHomeAffinity::remote_volume(ThreadId t, NodeId node_of_t) const {
  double remote = 0.0;
  for (NodeId n = 0; n < nodes_; ++n) {
    if (n != node_of_t) remote += at(t, n);
  }
  return remote;
}

ThreadHomeAffinity build_home_affinity(std::span<const IntervalRecord> records,
                                       const Heap& heap, std::uint32_t threads,
                                       std::uint32_t nodes, bool weighted) {
  ThreadHomeAffinity m(threads, nodes);
  // Per (thread, object) at-most-once across the window, like the TCM's
  // reorganization step.
  std::unordered_set<std::uint64_t> seen;
  for (const IntervalRecord& r : records) {
    if (r.thread >= threads) continue;
    for (const OalEntry& e : r.entries) {
      if (e.obj >= heap.object_count()) continue;
      const std::uint64_t key =
          (static_cast<std::uint64_t>(r.thread) << 48) ^ e.obj;
      if (!seen.insert(key).second) continue;
      const NodeId home = heap.meta(e.obj).home;
      if (home >= nodes) continue;
      const double bytes =
          weighted ? static_cast<double>(e.bytes) * e.gap : e.bytes;
      m.at(r.thread, home) += bytes;
    }
  }
  return m;
}

}  // namespace djvm
