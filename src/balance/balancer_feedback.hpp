// Balancer -> governor feedback: per-class placement influence.
//
// The profiles exist to feed the Global Load Balancer (Fig. 2), yet the
// governor's back-off historically scored classes by bytes-per-entry alone —
// blind to whether the balancer would ever act on those cells.  This module
// closes that loop: it condenses one epoch's balancer-side view (the
// per-class cell attribution against the current co-location partition, the
// migration suggestions the planner accepted, and the remote thread-home-
// affinity mass) into a per-class *influence* fraction — the share of each
// class's correlation mass the balancer actually acts on.  The governor
// multiplies its benefit/cost score by this fraction (with exponential-decay
// memory across epochs), so back-off sheds exactly the cells the balancer
// would ignore anyway.
#pragma once

#include <span>
#include <vector>

#include "balance/load_balancer.hpp"
#include "common/types.hpp"
#include "profiling/tcm.hpp"

namespace djvm {

/// Per-class placement influence for one epoch, as exported by the balancer
/// side and consumed by the governor (Governor::observe_balancer_feedback).
struct BalancerFeedback {
  /// ClassId-indexed influence mass in bytes: partition-cut contribution +
  /// weighted accepted-suggestion gains + weighted remote-home mass.  May be
  /// shorter than the registry (trailing classes contributed nothing).
  std::vector<double> influence;
  /// ClassId-indexed total mass of each class — pair mass plus the weighted
  /// remote-home mass (the normalizer: influence / mass is the fraction of
  /// the class's cells that matter).  Home mass counts on both sides so a
  /// class with only single-reader remote-home traffic (no co-access pairs)
  /// still earns a share instead of being shed first.
  std::vector<double> mass;
  /// Total mass across classes; 0 means the epoch carried no cells.
  double total_mass = 0.0;
  /// False when the epoch had no attributable cells (nothing to learn from).
  bool valid = false;

  /// Influence as a fraction of the class's own mass, in [0, inf) — 1 means
  /// every cell the class produced sits on the partition cut; > 1 means the
  /// suggestion/home terms add further evidence.  0 for unseen classes.
  [[nodiscard]] double share(ClassId id) const noexcept {
    const auto i = static_cast<std::size_t>(id);
    if (i >= influence.size() || i >= mass.size() || mass[i] <= 0.0) return 0.0;
    return influence[i] / mass[i];
  }
};

/// Builds the feedback aggregate from one epoch's cell attribution and the
/// planner's suggestions.  Suggestion gains are attributed to classes in
/// proportion to each class's share of the moving thread's pair mass (the
/// classes whose cells argued for the move), scaled by `suggestion_weight`;
/// remote-home mass (cells.home_mass, when the producer filled it) is folded
/// in at `home_weight`.
[[nodiscard]] BalancerFeedback build_balancer_feedback(
    const TcmClassAttribution& cells,
    std::span<const MigrationSuggestion> suggestions,
    double suggestion_weight = 1.0, double home_weight = 0.25);

}  // namespace djvm
