#include "balance/balancer_feedback.hpp"

#include <algorithm>

namespace djvm {

BalancerFeedback build_balancer_feedback(
    const TcmClassAttribution& cells,
    std::span<const MigrationSuggestion> suggestions, double suggestion_weight,
    double home_weight) {
  BalancerFeedback fb;
  const std::size_t classes =
      std::max({cells.cut_bytes.size(), cells.local_bytes.size(),
                cells.home_mass.size()});
  fb.influence.assign(classes, 0.0);
  fb.mass.assign(classes, 0.0);

  for (std::size_t c = 0; c < classes; ++c) {
    const double cut = c < cells.cut_bytes.size() ? cells.cut_bytes[c] : 0.0;
    const double local = c < cells.local_bytes.size() ? cells.local_bytes[c] : 0.0;
    // The cut contribution is the direct influence: zeroing this class's
    // cells would move remote_shared_bytes of the current partition by
    // exactly this much.  Weighted home mass counts on *both* sides of the
    // share: a class whose objects are each read by a single thread
    // remotely from their home has no pair mass at all, yet its cells are
    // exactly what the home-aware planner acts on — dividing by pair mass
    // alone would zero its share and the governor would shed it first.
    const double home = home_weight > 0.0 && c < cells.home_mass.size()
                            ? home_weight * cells.home_mass[c]
                            : 0.0;
    fb.mass[c] = cut + local + home;
    fb.total_mass += fb.mass[c];
    fb.influence[c] = cut + home;
  }

  // Accepted migration suggestions: the planner moved thread t because of
  // the pair mass it shares across the current boundary — credit the gain to
  // classes in proportion to their share of t's mass, since those are the
  // cells that argued for the move.
  if (suggestion_weight > 0.0) {
    for (const MigrationSuggestion& s : suggestions) {
      if (s.thread == kInvalidThread || s.gain_bytes <= 0.0) continue;
      double thread_total = 0.0;
      for (std::size_t c = 0; c < classes; ++c) {
        if (c < cells.thread_mass.size() &&
            s.thread < cells.thread_mass[c].size()) {
          thread_total += cells.thread_mass[c][s.thread];
        }
      }
      if (thread_total <= 0.0) continue;
      for (std::size_t c = 0; c < classes; ++c) {
        if (c < cells.thread_mass.size() &&
            s.thread < cells.thread_mass[c].size()) {
          fb.influence[c] += suggestion_weight * s.gain_bytes *
                             (cells.thread_mass[c][s.thread] / thread_total);
        }
      }
    }
  }

  fb.valid = fb.total_mass > 0.0;
  return fb;
}

}  // namespace djvm
