// Thread migration cost model (paper Section III).
//
// The *direct* cost of a migration is shipping the thread context (portable
// Java frames).  The *indirect* cost — usually dominant — is the chain of
// remote object faults the migrant suffers for its sticky set.  The model
// predicts both so the load balancer can weigh a migration's locality gain
// against what it really costs; prefetching the resolved sticky set along
// with the context converts the per-object fault round-trips into one bulk
// transfer.
#pragma once

#include <cstdint>

#include "common/sim_clock.hpp"
#include "runtime/heap.hpp"
#include "sticky/footprint.hpp"

namespace djvm {

/// Prediction for one candidate migration.
struct MigrationCostEstimate {
  SimTime direct = 0;            ///< thread context transfer
  SimTime indirect_faults = 0;   ///< predicted post-migration fault cost
  SimTime prefetch_bulk = 0;     ///< cost of shipping the sticky set eagerly
  std::uint64_t predicted_fault_count = 0;
  std::uint64_t sticky_bytes = 0;

  [[nodiscard]] SimTime total_without_prefetch() const noexcept {
    return direct + indirect_faults;
  }
  [[nodiscard]] SimTime total_with_prefetch() const noexcept {
    return direct + prefetch_bulk;
  }
  /// Simulated time saved by prefetching the sticky set.
  [[nodiscard]] SimTime prefetch_benefit() const noexcept {
    return total_without_prefetch() > total_with_prefetch()
               ? total_without_prefetch() - total_with_prefetch()
               : 0;
  }
};

/// Cost model parameterized by the simulated machine.
class MigrationCostModel {
 public:
  MigrationCostModel(const Heap& heap, SimCosts costs) : heap_(heap), costs_(costs) {}

  /// Predicts migration cost from the thread's context size and its
  /// estimated sticky-set footprint.
  [[nodiscard]] MigrationCostEstimate estimate(std::uint64_t context_bytes,
                                               const ClassFootprint& footprint) const {
    MigrationCostEstimate e;
    e.direct = costs_.message_latency + costs_.transfer_time(context_bytes);
    e.sticky_bytes = static_cast<std::uint64_t>(footprint.total());
    // Predicted fault count: footprint bytes / mean instance size per class
    // (one remote fault fetches one whole object; arrays use their measured
    // mean allocated size, not a guess).
    for (const auto& [cid, bytes] : footprint.bytes) {
      const Klass& k = heap_.registry().at(cid);
      const double mean_size =
          k.instances > 0
              ? static_cast<double>(k.bytes_allocated) /
                    static_cast<double>(k.instances)
              : static_cast<double>(k.instance_size);
      if (mean_size <= 0.0) continue;
      e.predicted_fault_count +=
          static_cast<std::uint64_t>(bytes / mean_size + 0.5);
    }
    // Each fault is a request/reply round trip plus the service entry.
    e.indirect_faults =
        e.predicted_fault_count * (2 * costs_.message_latency + costs_.access_fault_fixed) +
        costs_.transfer_time(e.sticky_bytes);
    // Prefetching ships the same bytes in one round trip.
    e.prefetch_bulk = 2 * costs_.message_latency + costs_.transfer_time(e.sticky_bytes);
    return e;
  }

 private:
  const Heap& heap_;
  SimCosts costs_;
};

}  // namespace djvm
