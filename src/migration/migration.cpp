#include "migration/migration.hpp"

namespace djvm {

MigrationOutcome MigrationEngine::migrate(ThreadId t, NodeId to,
                                          const JavaStack& stack,
                                          std::span<const ObjectId> sticky) {
  MigrationOutcome out;
  out.thread = t;
  out.from = gos_.thread_node(t);
  out.to = to;
  out.context_bytes = stack.context_bytes();

  SimClock& clock = gos_.clock(t);
  const SimTime t0 = clock.now();

  // Ship the portable Java frames.
  const SimTime dt = gos_.net().send(
      {out.from, to, MsgCategory::kMigration, out.context_bytes, false});
  clock.advance(dt);

  gos_.move_thread(t, to);

  if (!sticky.empty()) {
    const auto& stats_before = gos_.stats();
    const std::uint64_t objs_before = stats_before.prefetched_objects;
    const std::uint64_t bytes_before = stats_before.prefetched_bytes;
    gos_.prefetch(t, sticky, MsgCategory::kMigration);
    out.prefetched_objects = gos_.stats().prefetched_objects - objs_before;
    out.prefetched_bytes = gos_.stats().prefetched_bytes - bytes_before;
  }

  out.sim_cost = clock.now() - t0;
  ++count_;
  return out;
}

MigrationOutcome MigrationEngine::migrate_with_resolution(
    ThreadId t, NodeId to, const JavaStack& stack,
    std::span<const ObjectId> invariants, const ClassFootprint& footprint,
    double tolerance, std::uint32_t max_follow_homes) {
  // Resolution is lazy: it runs only now, at migration time.
  ResolutionResult res = resolve_sticky_set(gos_.heap(), gos_.plan(), invariants,
                                            footprint, tolerance);
  const NodeId from = gos_.thread_node(t);
  MigrationOutcome out = migrate(t, to, stack, res.prefetch);
  out.resolution = res.stats;
  if (max_follow_homes > 0 && to != from) {
    // The sticky set is the thread's predicted post-migration working set;
    // the slice of it homed at the node being left behind carries affinity
    // mass that just moved.  Migrate those homes along, batched.
    std::vector<ObjectId> follow;
    for (ObjectId obj : res.prefetch) {
      if (gos_.heap().meta(obj).home != from) continue;
      follow.push_back(obj);
      if (follow.size() >= max_follow_homes) break;
    }
    out.homes_migrated = gos_.migrate_homes(follow, to);
  }
  return out;
}

}  // namespace djvm
