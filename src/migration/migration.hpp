// Thread migration engine (the "migration engine" box of Fig. 2).
//
// Packs a thread's portable Java frames, ships them to the destination node,
// reassigns the thread, and optionally resolves + prefetches its sticky set
// so the predictable post-migration remote object faults are absorbed into
// one bulk transfer.
#pragma once

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "dsm/gos.hpp"
#include "migration/cost_model.hpp"
#include "stack/javastack.hpp"
#include "sticky/resolution.hpp"

namespace djvm {

/// What actually happened during one migration.
struct MigrationOutcome {
  ThreadId thread = kInvalidThread;
  NodeId from = kInvalidNode;
  NodeId to = kInvalidNode;
  std::uint64_t context_bytes = 0;
  std::uint64_t prefetched_objects = 0;
  std::uint64_t prefetched_bytes = 0;
  ResolutionStats resolution;
  /// Sticky-set objects whose *home* followed the thread (see the
  /// max_follow_homes parameter of migrate_with_resolution).
  std::size_t homes_migrated = 0;
  SimTime sim_cost = 0;  ///< simulated time spent migrating (at the thread)
};

/// Executes migrations against the GOS.
class MigrationEngine {
 public:
  explicit MigrationEngine(Gos& gos) : gos_(gos) {}

  /// Migrates `t` to `to`.  When `sticky` is non-null its objects are
  /// prefetched into the destination's cache along with the context.
  MigrationOutcome migrate(ThreadId t, NodeId to, const JavaStack& stack,
                           std::span<const ObjectId> sticky = {});

  /// Full pipeline: resolve the sticky set from stack invariants + footprint,
  /// then migrate with prefetch.  When `max_follow_homes` > 0, up to that
  /// many resolved sticky objects still homed at the *source* node also have
  /// their homes migrated to the destination in one batch — their affinity
  /// mass moves with the thread, so leaving the homes behind would turn
  /// every post-migration write flush into cross-node traffic.
  MigrationOutcome migrate_with_resolution(ThreadId t, NodeId to,
                                           const JavaStack& stack,
                                           std::span<const ObjectId> invariants,
                                           const ClassFootprint& footprint,
                                           double tolerance,
                                           std::uint32_t max_follow_homes = 0);

  [[nodiscard]] std::uint64_t migrations_done() const noexcept { return count_; }

 private:
  Gos& gos_;
  std::uint64_t count_ = 0;
};

}  // namespace djvm
