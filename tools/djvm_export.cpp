// Offline snapshot converter: any v1-v6 governor snapshot -> pprof /
// flamegraph-collapsed / JSON, without reconstructing the run.
//
//   djvm_export <snapshot.bin> [--pprof P] [--collapsed C] [--json J]
//                              [--names a,b,c]
//       Converts an existing snapshot.  With no output flags, writes all
//       three artifacts next to the input (<input>.pb, <input>.collapsed,
//       <input>.json).  Snapshots carry class ids, not names; --names
//       supplies display names by id (index = class id).
//
//   djvm_export demo <outdir>
//       Runs a short governed synthetic workload (retention + timeline
//       enabled), writing snapshot.bin and timeline.jsonl into <outdir>,
//       then converts the snapshot with the live registry's class names.
//       CI's exporter-smoke job drives this end to end.
//
// Exit status (distinct codes so scripts can tell the failure classes
// apart): 0 success, 1 bad CLI arguments, 2 unreadable input or failed
// output write, 3 corrupt snapshot (bad structure or failed v6 checksum).
// The reason always goes to stderr.
#include <cstdio>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "core/djvm.hpp"
#include "export/exporter.hpp"
#include "governor/governor.hpp"
#include "governor/snapshot.hpp"

using namespace djvm;

namespace {

// Exit codes (see file header).
constexpr int kExitUsage = 1;
constexpr int kExitIo = 2;
constexpr int kExitCorrupt = 3;

bool read_file(const std::string& path, std::vector<std::uint8_t>& out) {
  std::ifstream f(path, std::ios::binary);
  if (!f) return false;
  f.seekg(0, std::ios::end);
  const std::streamoff len = f.tellg();
  if (len < 0) return false;
  f.seekg(0, std::ios::beg);
  out.resize(static_cast<std::size_t>(len));
  f.read(reinterpret_cast<char*>(out.data()), len);
  return static_cast<bool>(f);
}

bool write_file(const std::string& path, const void* data, std::size_t size) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) return false;
  f.write(static_cast<const char*>(data), static_cast<std::streamsize>(size));
  return static_cast<bool>(f);
}

std::vector<std::string> split_names(const std::string& csv) {
  std::vector<std::string> names;
  std::istringstream is(csv);
  std::string item;
  while (std::getline(is, item, ',')) names.push_back(item);
  return names;
}

/// Parses + converts one snapshot file; empty output paths are skipped.
int convert(const std::string& input, const std::string& pprof_path,
            const std::string& collapsed_path, const std::string& json_path,
            const std::vector<std::string>& names) {
  std::vector<std::uint8_t> bytes;
  if (!read_file(input, bytes)) {
    std::cerr << "djvm_export: cannot read " << input << "\n";
    return kExitIo;
  }
  SnapshotInfo info;
  if (!parse_snapshot(bytes, info)) {
    std::cerr << "djvm_export: " << input
              << " is not a valid DJGV snapshot (corrupt, truncated, or "
                 "failed its checksum)\n";
    return kExitCorrupt;
  }
  std::cout << "parsed " << input << ": v" << info.version << ", "
            << info.classes.size() << " classes, TCM " << info.tcm.size()
            << "x" << info.tcm.size() << " (" << nonzero_pair_cells(info.tcm)
            << " nonzero pairs)\n";

  if (!pprof_path.empty()) {
    PprofExportStats stats;
    const std::vector<std::uint8_t> pb = export_pprof(info, names, &stats);
    if (!write_file(pprof_path, pb.data(), pb.size())) {
      std::cerr << "djvm_export: cannot write " << pprof_path << "\n";
      return kExitIo;
    }
    std::cout << "wrote " << pprof_path << " (" << pb.size() << " bytes, "
              << stats.pair_samples << " pair + " << stats.class_samples
              << " class + " << stats.node_samples << " node samples)\n";
  }
  if (!collapsed_path.empty()) {
    const std::string folded = export_collapsed(info, names);
    if (!write_file(collapsed_path, folded.data(), folded.size())) {
      std::cerr << "djvm_export: cannot write " << collapsed_path << "\n";
      return kExitIo;
    }
    std::cout << "wrote " << collapsed_path << "\n";
  }
  if (!json_path.empty()) {
    const std::string json = export_snapshot_json(info, names);
    if (!write_file(json_path, json.data(), json.size())) {
      std::cerr << "djvm_export: cannot write " << json_path << "\n";
      return kExitIo;
    }
    std::cout << "wrote " << json_path << "\n";
  }
  return 0;
}

/// Short governed synthetic run for CI smoke tests: two thread-pair sharing
/// phases over two object classes, retention + timeline + snapshots on.
int demo(const std::string& outdir) {
  std::error_code ec;
  std::filesystem::create_directories(outdir, ec);
  if (ec) {
    std::cerr << "djvm_export: cannot create " << outdir << ": " << ec.message()
              << "\n";
    return kExitIo;
  }

  constexpr std::uint32_t kNodes = 4;
  constexpr std::uint32_t kThreads = 8;
  constexpr std::uint32_t kEpochs = 12;
  constexpr std::uint32_t kPools = kThreads / 2;
  constexpr std::uint32_t kHotPerPool = 512;
  constexpr std::uint32_t kBulkyPerPool = 128;

  Config cfg;
  cfg.nodes = kNodes;
  cfg.threads = kThreads;
  cfg.oal_transfer = OalTransfer::kSend;
  cfg.export_.snapshot_path = outdir + "/snapshot.bin";
  cfg.export_.timeline_path = outdir + "/timeline.jsonl";
  cfg.retention.idle_epochs = 3;
  cfg.retention.compact_period = 2;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(kThreads);

  const ClassId hot = djvm.registry().register_class("DemoHot", 64);
  const ClassId bulky = djvm.registry().register_class("DemoBulky", 2048);
  std::vector<std::vector<ObjectId>> hot_pools(kPools), bulky_pools(kPools);
  for (std::uint32_t p = 0; p < kPools; ++p) {
    for (std::uint32_t i = 0; i < kHotPerPool; ++i) {
      hot_pools[p].push_back(
          djvm.gos().alloc(hot, static_cast<NodeId>(p % kNodes)));
    }
    for (std::uint32_t i = 0; i < kBulkyPerPool; ++i) {
      bulky_pools[p].push_back(
          djvm.gos().alloc(bulky, static_cast<NodeId>(p % kNodes)));
    }
  }

  djvm.plan().set_nominal_gap(hot, 64);
  djvm.plan().set_nominal_gap(bulky, 64);
  djvm.plan().resample_all();
  GovernorConfig gcfg;
  gcfg.overhead_budget = 0.04;
  gcfg.distance_threshold = 0.20;
  djvm.governor().arm(gcfg);

  for (std::uint32_t epoch = 0; epoch < kEpochs; ++epoch) {
    const bool second_half = epoch >= kEpochs / 2;
    for (ThreadId t = 0; t < kThreads; ++t) {
      djvm.gos().set_phase(t, second_half ? 2 : 1);
      std::uint64_t accesses = 0;
      const std::uint32_t pool =
          second_half ? ((t + 1) % kThreads) / 2 : t / 2;
      for (ObjectId o : bulky_pools[pool]) {
        djvm.read(t, o);
        ++accesses;
      }
      SplitMix64 rng(epoch * 1000003ULL + t);
      for (ObjectId o : hot_pools[pool]) {
        if (rng.next_double() < 0.5) {
          djvm.read(t, o);
          ++accesses;
        }
      }
      djvm.gos().clock(t).advance(accesses * 2000);
    }
    djvm.barrier_all();
    djvm.run_governed_epoch();
  }
  if (SnapshotWriter* w = djvm.snapshot_writer()) {
    w->flush();
    if (!w->all_ok()) {
      std::cerr << "djvm_export: snapshot/timeline writes failed under "
                << outdir << "\n";
      return kExitIo;
    }
  }
  std::cout << "demo run complete: " << cfg.export_.snapshot_path << ", "
            << cfg.export_.timeline_path << "\n";

  std::vector<std::string> names;
  for (const Klass& k : djvm.registry().all()) {
    if (k.id >= names.size()) names.resize(k.id + 1);
    names[k.id] = k.name;
  }
  return convert(cfg.export_.snapshot_path, outdir + "/profile.pb",
                 outdir + "/collapsed.txt", outdir + "/snapshot.json", names);
}

int usage() {
  std::cerr
      << "usage: djvm_export <snapshot.bin> [--pprof P] [--collapsed C]\n"
         "                   [--json J] [--names a,b,c]\n"
         "       djvm_export demo <outdir>\n";
  return kExitUsage;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return usage();
  if (std::strcmp(argv[1], "demo") == 0) {
    if (argc != 3) return usage();
    return demo(argv[2]);
  }

  const std::string input = argv[1];
  std::string pprof_path, collapsed_path, json_path;
  std::vector<std::string> names;
  bool any_output = false;
  for (int i = 2; i < argc; i += 2) {
    if (i + 1 >= argc) return usage();
    const std::string flag = argv[i], value = argv[i + 1];
    if (flag == "--pprof") {
      pprof_path = value;
      any_output = true;
    } else if (flag == "--collapsed") {
      collapsed_path = value;
      any_output = true;
    } else if (flag == "--json") {
      json_path = value;
      any_output = true;
    } else if (flag == "--names") {
      names = split_names(value);
    } else {
      return usage();
    }
  }
  if (!any_output) {
    pprof_path = input + ".pb";
    collapsed_path = input + ".collapsed";
    json_path = input + ".json";
  }
  return convert(input, pprof_path, collapsed_path, json_path, names);
}
