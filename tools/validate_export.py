#!/usr/bin/env python3
"""Independent validator for djvm_export artifacts (stdlib only).

Usage: validate_export.py <outdir>

Expects <outdir> to contain profile.pb, collapsed.txt, snapshot.json and
(optionally) timeline.jsonl, as produced by `djvm_export demo <outdir>`.

The pprof check is a from-scratch protobuf wire-format reader -- it shares no
code with the C++ encoder, so an encoding bug cannot validate itself.  Checks:

  * profile.pb parses end to end as a pprof Profile (valid tags, varints,
    length-delimited framing; packed and unpacked repeated fields accepted);
  * every Sample's value count == the number of declared sample_types;
  * every Sample/Location references only functions/strings that exist;
  * the number of two-location (thread-pair) samples equals snapshot.json's
    independently recorded `pair_cells`;
  * collapsed.txt lines match `frame(;frame)* <positive-int>`;
  * timeline.jsonl lines are JSON objects with the stable schema keys and
    strictly increasing epochs starting at 0.
"""

import json
import os
import re
import sys


def fail(msg: str) -> None:
    print(f"[FAIL] {msg}")
    sys.exit(1)


def ok(msg: str) -> None:
    print(f"[ OK ] {msg}")


# --- minimal protobuf wire-format reader -----------------------------------

def read_varint(buf: bytes, pos: int):
    result = 0
    shift = 0
    while True:
        if pos >= len(buf):
            fail("varint runs past end of buffer")
        b = buf[pos]
        pos += 1
        result |= (b & 0x7F) << shift
        if not (b & 0x80):
            return result, pos
        shift += 7
        if shift >= 70:
            fail("varint longer than 10 bytes")


def read_fields(buf: bytes):
    """Yields (field_number, wire_type, value) over one message's fields."""
    pos = 0
    while pos < len(buf):
        key, pos = read_varint(buf, pos)
        field, wire = key >> 3, key & 7
        if wire == 0:  # varint
            value, pos = read_varint(buf, pos)
        elif wire == 2:  # length-delimited
            length, pos = read_varint(buf, pos)
            if pos + length > len(buf):
                fail(f"field {field}: length {length} overruns buffer")
            value = buf[pos:pos + length]
            pos += length
        elif wire == 5:  # fixed32
            value = buf[pos:pos + 4]
            pos += 4
        elif wire == 1:  # fixed64
            value = buf[pos:pos + 8]
            pos += 8
        else:
            fail(f"unsupported wire type {wire} for field {field}")
        yield field, wire, value


def packed_varints(value, wire):
    """Repeated varint field: packed bytes or a single scalar."""
    if wire == 0:
        return [value]
    out = []
    pos = 0
    while pos < len(value):
        v, pos = read_varint(value, pos)
        out.append(v)
    return out


def check_pprof(path: str, expected_pair_cells: int) -> None:
    with open(path, "rb") as f:
        buf = f.read()

    sample_types = []
    samples = []          # list of (location_ids, values)
    location_ids = set()
    location_funcs = []   # function ids referenced by locations
    function_ids = set()
    function_strs = []    # string indexes referenced by functions
    strings = []

    for field, wire, value in read_fields(buf):
        if field == 1:  # ValueType sample_type
            vt = dict()
            for f2, w2, v2 in read_fields(value):
                vt[f2] = v2
            sample_types.append((vt.get(1, 0), vt.get(2, 0)))
        elif field == 2:  # Sample
            locs, vals = [], []
            for f2, w2, v2 in read_fields(value):
                if f2 == 1:
                    locs += packed_varints(v2, w2)
                elif f2 == 2:
                    vals += packed_varints(v2, w2)
            samples.append((locs, vals))
        elif field == 4:  # Location
            loc_id = None
            for f2, w2, v2 in read_fields(value):
                if f2 == 1:
                    loc_id = v2
                elif f2 == 4:  # Line
                    for f3, w3, v3 in read_fields(v2):
                        if f3 == 1:
                            location_funcs.append(v3)
            if loc_id is None or loc_id == 0:
                fail("Location without a nonzero id")
            location_ids.add(loc_id)
        elif field == 5:  # Function
            for f2, w2, v2 in read_fields(value):
                if f2 == 1:
                    function_ids.add(v2)
                elif f2 in (2, 3):
                    function_strs.append(v2)
        elif field == 6:  # string_table
            strings.append(value.decode("utf-8"))

    if not sample_types:
        fail("profile has no sample_type entries")
    if not strings or strings[0] != "":
        fail("string_table[0] must be the empty string")
    for t, u in sample_types:
        if t >= len(strings) or u >= len(strings):
            fail("sample_type references a string out of range")
    for s in function_strs:
        if s >= len(strings):
            fail("Function name references a string out of range")
    for fid in location_funcs:
        if fid not in function_ids:
            fail(f"Location references unknown function {fid}")

    pair_samples = 0
    for locs, vals in samples:
        if len(vals) != len(sample_types):
            fail(f"sample has {len(vals)} values, expected {len(sample_types)}")
        for loc in locs:
            if loc not in location_ids:
                fail(f"sample references unknown location {loc}")
        if len(locs) == 2:
            pair_samples += 1

    if pair_samples != expected_pair_cells:
        fail(f"pprof has {pair_samples} thread-pair samples, snapshot.json "
             f"says pair_cells={expected_pair_cells}")
    ok(f"profile.pb: {len(samples)} samples ({pair_samples} thread pairs), "
       f"{len(sample_types)} sample types, {len(strings)} strings")


def check_collapsed(path: str) -> None:
    line_re = re.compile(r"^[^ ;]+(;[^ ;]+)* [0-9]+$")
    count = 0
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            line = line.rstrip("\n")
            if not line:
                continue
            if not line_re.match(line):
                fail(f"collapsed.txt line {i} malformed: {line!r}")
            if int(line.rsplit(" ", 1)[1]) <= 0:
                fail(f"collapsed.txt line {i} has non-positive weight")
            count += 1
    if count == 0:
        fail("collapsed.txt has no stack lines")
    ok(f"collapsed.txt: {count} well-formed stack lines")


TIMELINE_KEYS = {
    "epoch", "state", "action", "overhead", "node_overhead",
    "densify_seconds", "build_seconds", "intervals", "entries",
    "rel_distance", "rate_changed", "traffic", "influence_top",
    "retained_objects", "retained_readers", "dropped_objects",
}


def check_timeline(path: str) -> None:
    epochs = []
    with open(path, encoding="utf-8") as f:
        for i, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                obj = json.loads(line)
            except json.JSONDecodeError as e:
                fail(f"timeline.jsonl line {i} is not JSON: {e}")
            missing = TIMELINE_KEYS - obj.keys()
            if missing:
                fail(f"timeline.jsonl line {i} missing keys: {sorted(missing)}")
            if not isinstance(obj["traffic"], dict) or not obj["traffic"]:
                fail(f"timeline.jsonl line {i}: traffic is not a nonempty map")
            epochs.append(obj["epoch"])
    if not epochs:
        fail("timeline.jsonl is empty")
    if epochs != list(range(len(epochs))):
        fail(f"timeline epochs are not 0..{len(epochs) - 1}: {epochs[:8]}...")
    ok(f"timeline.jsonl: {len(epochs)} epochs, contiguous from 0")


def main() -> None:
    if len(sys.argv) != 2:
        print(__doc__)
        sys.exit(2)
    outdir = sys.argv[1]

    snap_json = os.path.join(outdir, "snapshot.json")
    with open(snap_json, encoding="utf-8") as f:
        snap = json.load(f)
    for key in ("version", "mode", "state", "classes", "tcm_dim", "pair_cells"):
        if key not in snap:
            fail(f"snapshot.json missing key {key!r}")
    ok(f"snapshot.json: v{snap['version']}, {len(snap['classes'])} classes, "
       f"tcm_dim={snap['tcm_dim']}, pair_cells={snap['pair_cells']}")

    check_pprof(os.path.join(outdir, "profile.pb"), snap["pair_cells"])
    check_collapsed(os.path.join(outdir, "collapsed.txt"))
    timeline = os.path.join(outdir, "timeline.jsonl")
    if os.path.exists(timeline):
        check_timeline(timeline)
    else:
        print("[SKIP] no timeline.jsonl")
    print("all export artifacts validated")


if __name__ == "__main__":
    main()
