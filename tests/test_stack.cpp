// Java stacks: ref tagging, frame lifecycle, visited flags, context bytes.
#include <gtest/gtest.h>

#include "stack/javastack.hpp"

namespace djvm {
namespace {

TEST(RefTag, EncodeDecodeRoundTrip) {
  for (ObjectId id : {ObjectId{0}, ObjectId{1}, ObjectId{123456}, ObjectId{1} << 40}) {
    const std::uint64_t raw = encode_ref(id);
    EXPECT_TRUE(looks_like_ref(raw));
    EXPECT_EQ(decode_ref(raw), id);
  }
}

TEST(RefTag, PrimitivesDoNotLookLikeRefs) {
  EXPECT_FALSE(looks_like_ref(0));
  EXPECT_FALSE(looks_like_ref(42));
  EXPECT_FALSE(looks_like_ref(0xFFFFFFFFULL));
  // A double's bit pattern.
  const double d = 3.14159;
  std::uint64_t bits;
  static_assert(sizeof(bits) == sizeof(d));
  __builtin_memcpy(&bits, &d, sizeof(bits));
  EXPECT_FALSE(looks_like_ref(bits));
}

TEST(JavaStack, PushPopDepth) {
  JavaStack s;
  EXPECT_TRUE(s.empty());
  s.push(1, 4);
  s.push(2, 2);
  EXPECT_EQ(s.depth(), 2u);
  EXPECT_EQ(s.top().method, 2u);
  s.pop();
  EXPECT_EQ(s.top().method, 1u);
  s.pop();
  EXPECT_TRUE(s.empty());
}

TEST(JavaStack, FrameIdsMonotonicNeverReused) {
  JavaStack s;
  s.push(1, 1);
  const FrameId first = s.top().id;
  s.pop();
  s.push(1, 1);
  EXPECT_GT(s.top().id, first);
}

TEST(JavaStack, PrologueClearsVisited) {
  JavaStack s;
  s.push(1, 1);
  s.top().visited = true;
  s.pop();
  s.push(1, 1);
  EXPECT_FALSE(s.top().visited);  // fresh frame, fresh flag
}

TEST(JavaStack, SlotsZeroInitialized) {
  JavaStack s;
  s.push(1, 8);
  for (std::size_t i = 0; i < 8; ++i) EXPECT_EQ(s.top().slot(i), 0u);
}

TEST(JavaStack, SetRefAndPrim) {
  JavaStack s;
  s.push(1, 3);
  s.top().set_ref(0, 77);
  s.top().set_prim(1, 0xDEAD);
  EXPECT_TRUE(looks_like_ref(s.top().slot(0)));
  EXPECT_EQ(decode_ref(s.top().slot(0)), 77u);
  EXPECT_FALSE(looks_like_ref(s.top().slot(1)));
}

TEST(JavaStack, ContextBytesGrowWithFrames) {
  JavaStack s;
  const std::uint64_t empty = s.context_bytes();
  s.push(1, 10);
  const std::uint64_t one = s.context_bytes();
  EXPECT_EQ(one - empty, 32u + 80u);
  s.push(2, 0);
  EXPECT_EQ(s.context_bytes() - one, 32u);
}

TEST(JavaStack, FrameGuardIsRaii) {
  JavaStack s;
  {
    FrameGuard g(s, 5, 2);
    g.set_ref(0, 9);
    EXPECT_EQ(s.depth(), 1u);
    EXPECT_EQ(decode_ref(s.top().slot(0)), 9u);
  }
  EXPECT_TRUE(s.empty());
}

TEST(JavaStack, FrameGuardSurvivesReallocation) {
  JavaStack s;
  FrameGuard outer(s, 1, 1);
  // Push enough frames to force vector reallocation, then write through the
  // guard (it must index, not hold a dangling reference).
  std::vector<std::unique_ptr<FrameGuard>> guards;
  for (int i = 0; i < 100; ++i) {
    guards.push_back(std::make_unique<FrameGuard>(s, 2, 1));
  }
  outer.set_ref(0, 3);
  EXPECT_EQ(decode_ref(s.frame(0).slot(0)), 3u);
  guards.clear();
  EXPECT_EQ(s.depth(), 1u);
}

TEST(JavaStack, FramesCreatedCounter) {
  JavaStack s;
  for (int i = 0; i < 5; ++i) {
    s.push(1, 0);
    s.pop();
  }
  EXPECT_EQ(s.frames_created(), 5u);
}

}  // namespace
}  // namespace djvm
