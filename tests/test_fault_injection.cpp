// Fault tolerance: the seeded fault injector's determinism and fault
// dimensions, the reliable transport's retry/backoff accounting, degraded-
// mode operation end to end (node failure -> quarantine, re-homing, thread
// failover, degraded epochs), lost reduction-tree partials, and the fault
// block of the JSONL timeline.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/djvm.hpp"
#include "export/timeline.hpp"
#include "net/faults.hpp"
#include "net/network.hpp"
#include "profiling/distributed_tcm.hpp"

namespace djvm {
namespace {

Message msg(NodeId src, NodeId dst, MsgCategory cat, std::uint64_t bytes) {
  return {src, dst, cat, bytes, false};
}

// --- injector determinism ----------------------------------------------------

TEST(FaultInjector, IdenticalSeedYieldsBitIdenticalSchedule) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.fault_seed = 0x1234;
  plan.drop_oal = 0.2;
  plan.drop_control = 0.05;
  plan.spike_probability = 0.1;
  plan.spike_ns = sim_us(500);
  plan.jitter_ns = sim_us(50);
  plan.stall_probability = 0.1;
  plan.stall_ns = sim_us(200);

  FaultInjector a(plan);
  FaultInjector b(plan);
  for (std::uint64_t e = 0; e < 4; ++e) {
    a.begin_epoch(e);
    b.begin_epoch(e);
    for (int i = 0; i < 500; ++i) {
      const auto cat = static_cast<MsgCategory>(i % 4);
      const auto src = static_cast<NodeId>(i % 3);
      const auto dst = static_cast<NodeId>((i + 1) % 3);
      const MessageFate fa = a.on_message(msg(src, dst, cat, 100));
      const MessageFate fb = b.on_message(msg(src, dst, cat, 100));
      EXPECT_EQ(fa.dropped, fb.dropped);
      EXPECT_EQ(fa.extra_ns, fb.extra_ns);
    }
  }
  EXPECT_EQ(a.decisions(), b.decisions());
  EXPECT_EQ(a.schedule_hash(), b.schedule_hash());
  EXPECT_GT(a.decisions(), 0u);

  // A different seed produces a different schedule.
  plan.fault_seed = 0x5678;
  FaultInjector c(plan);
  for (std::uint64_t e = 0; e < 4; ++e) {
    c.begin_epoch(e);
    for (int i = 0; i < 500; ++i) {
      const auto cat = static_cast<MsgCategory>(i % 4);
      (void)c.on_message(
          msg(static_cast<NodeId>(i % 3), static_cast<NodeId>((i + 1) % 3),
              cat, 100));
    }
  }
  EXPECT_NE(a.schedule_hash(), c.schedule_hash());
}

TEST(FaultInjector, DropRateTracksPerCategoryProbability) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.drop_oal = 0.3;
  FaultInjector inj(plan);
  int dropped_oal = 0, dropped_ctl = 0;
  for (int i = 0; i < 2000; ++i) {
    dropped_oal += inj.on_message(msg(0, 1, MsgCategory::kOal, 64)).dropped;
    dropped_ctl += inj.on_message(msg(0, 1, MsgCategory::kControl, 64)).dropped;
  }
  // Seeded schedule: the empirical rate sits near the plan's probability.
  EXPECT_GT(dropped_oal, 2000 * 0.2);
  EXPECT_LT(dropped_oal, 2000 * 0.4);
  EXPECT_EQ(dropped_ctl, 0);  // control category has no drop probability set
}

TEST(FaultInjector, LocalMessagesAreExempt) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.drop_oal = 1.0;
  plan.spike_probability = 1.0;
  plan.spike_ns = sim_us(100);
  FaultInjector inj(plan);
  const MessageFate fate = inj.on_message(msg(2, 2, MsgCategory::kOal, 64));
  EXPECT_FALSE(fate.dropped);
  EXPECT_EQ(fate.extra_ns, 0u);
  EXPECT_EQ(inj.decisions(), 0u);  // no schedule slot consumed
}

TEST(FaultInjector, SpikesAddBoundedLatency) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.spike_probability = 1.0;
  plan.spike_ns = sim_us(500);
  plan.jitter_ns = sim_us(100);
  FaultInjector inj(plan);
  for (int i = 0; i < 100; ++i) {
    const MessageFate fate = inj.on_message(msg(0, 1, MsgCategory::kOal, 64));
    EXPECT_FALSE(fate.dropped);
    EXPECT_GE(fate.extra_ns, sim_us(500));
    EXPECT_LT(fate.extra_ns, sim_us(600));
  }
}

TEST(FaultInjector, StalledNodeTaxesItsTraffic) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.stall_probability = 1.0;  // every node stalls every epoch
  plan.stall_ns = sim_us(300);
  FaultInjector inj(plan);
  inj.begin_epoch(0);
  EXPECT_TRUE(inj.node_stalled(0));
  const MessageFate fate = inj.on_message(msg(0, 1, MsgCategory::kControl, 8));
  EXPECT_EQ(fate.extra_ns, sim_us(300));
}

TEST(FaultInjector, TimedKillFiresAtItsEpoch) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.kill_node = 2;
  plan.kill_epoch = 3;
  FaultInjector inj(plan);
  inj.begin_epoch(2);
  EXPECT_FALSE(inj.node_dead(2));
  EXPECT_FALSE(inj.on_message(msg(2, 0, MsgCategory::kOal, 64)).dropped);
  inj.begin_epoch(3);
  EXPECT_TRUE(inj.node_dead(2));
  EXPECT_TRUE(inj.on_message(msg(2, 0, MsgCategory::kOal, 64)).dropped);
  EXPECT_TRUE(inj.on_message(msg(0, 2, MsgCategory::kOal, 64)).dropped);
  EXPECT_FALSE(inj.on_message(msg(0, 1, MsgCategory::kOal, 64)).dropped);
  EXPECT_FALSE(inj.reachable(0, 2));
  EXPECT_TRUE(inj.reachable(0, 1));
}

TEST(FaultInjector, KillingANodeDoesNotShiftSurvivorSchedules) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.drop_oal = 0.3;
  FaultInjector with_kill(plan);
  FaultInjector without(plan);
  with_kill.kill_node(2);
  for (int i = 0; i < 500; ++i) {
    // The killed node's traffic drops without consuming a schedule slot...
    EXPECT_TRUE(
        with_kill.on_message(msg(2, 0, MsgCategory::kOal, 64)).dropped);
    // ...so the survivors' fates match the kill-free schedule exactly.
    const MessageFate fa = with_kill.on_message(msg(0, 1, MsgCategory::kOal, 64));
    const MessageFate fb = without.on_message(msg(0, 1, MsgCategory::kOal, 64));
    EXPECT_EQ(fa.dropped, fb.dropped);
  }
}

TEST(FaultInjector, PartitionWindowSeversTheCut) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.partition_begin = 2;
  plan.partition_end = 4;
  plan.partition_cut = 2;  // {0,1} vs {2,3}
  FaultInjector inj(plan);
  inj.begin_epoch(1);
  EXPECT_TRUE(inj.reachable(0, 3));
  inj.begin_epoch(2);
  EXPECT_FALSE(inj.reachable(0, 3));
  EXPECT_FALSE(inj.reachable(3, 0));
  EXPECT_TRUE(inj.reachable(0, 1));   // same side
  EXPECT_TRUE(inj.reachable(2, 3));   // same side
  EXPECT_TRUE(inj.on_message(msg(1, 2, MsgCategory::kControl, 8)).dropped);
  inj.begin_epoch(4);  // window is half-open: healed
  EXPECT_TRUE(inj.reachable(0, 3));
}

// --- reliable transport ------------------------------------------------------

TEST(ReliableTransport, RetriesWithExponentialBackoffUntilDelivered) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.drop_oal = 0.5;
  plan.max_retries = 8;
  plan.retry_backoff_ns = sim_us(100);
  FaultInjector inj(plan);
  Network net(SimCosts{});
  net.set_fault_injector(&inj);

  int delivered = 0;
  for (int i = 0; i < 200; ++i) {
    delivered += net.send_reliable(msg(0, 1, MsgCategory::kOal, 100)).delivered;
  }
  // At 50% drop and 8 retries, effectively everything gets through, and the
  // retry counters show the cost of making it so.
  EXPECT_EQ(delivered, 200);
  EXPECT_GT(net.stats().total_retries(), 0u);
  EXPECT_GT(net.stats().total_backoff_ns(), 0u);
  const auto oal = static_cast<std::size_t>(MsgCategory::kOal);
  EXPECT_EQ(net.node_traffic(0).retries[oal], net.stats().retries[oal]);
  EXPECT_EQ(net.node_traffic(0).backoff_ns[oal], net.stats().backoff_ns[oal]);
  // Backoff waits are billed into send_ns, so the overhead meter prices them.
  EXPECT_GE(net.node_traffic(0).send_ns[oal],
            net.node_traffic(0).backoff_ns[oal]);
}

TEST(ReliableTransport, DeadDestinationFailsFastWithoutBurningRetries) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.max_retries = 8;
  plan.retry_backoff_ns = sim_us(100);
  FaultInjector inj(plan);
  inj.kill_node(1);
  Network net(SimCosts{});
  net.set_fault_injector(&inj);

  const SendOutcome out = net.send_reliable(msg(0, 1, MsgCategory::kControl, 8));
  EXPECT_FALSE(out.delivered);
  // One initial attempt + one retry that notices the severed path: the
  // remaining budget is not burned against a node that can never answer.
  EXPECT_LE(out.attempts, 2u);

  bool ok = true;
  net.round_trip(0, 1, MsgCategory::kControl, 8, 8, &ok);
  EXPECT_FALSE(ok);
}

TEST(ReliableTransport, DroppedBytesAreStillBilledToTheSender) {
  FaultKnobs plan;
  plan.enabled = true;
  plan.drop_control = 1.0;
  plan.max_retries = 2;
  plan.retry_backoff_ns = sim_us(10);
  FaultInjector inj(plan);
  Network net(SimCosts{});
  net.set_fault_injector(&inj);

  const SendOutcome out = net.send_reliable(msg(0, 1, MsgCategory::kControl, 100));
  EXPECT_FALSE(out.delivered);
  EXPECT_EQ(out.attempts, 3u);  // initial + max_retries
  const auto ctl = static_cast<std::size_t>(MsgCategory::kControl);
  // Every attempt's bytes hit the wire counters (the sender spent them).
  EXPECT_EQ(net.stats().bytes[ctl], 3u * (100u + kMessageHeaderBytes));
  EXPECT_EQ(net.stats().dropped[ctl], 3u);
  EXPECT_EQ(net.stats().retries[ctl], 2u);
  // Exponential: 10us + 20us of backoff.
  EXPECT_EQ(net.stats().backoff_ns[ctl], sim_us(10) + sim_us(20));
}

TEST(ReliableTransport, NoInjectorMeansNoRetryArithmetic) {
  Network net(SimCosts{});
  const SendOutcome out = net.send_reliable(msg(0, 1, MsgCategory::kOal, 100));
  EXPECT_TRUE(out.delivered);
  EXPECT_EQ(out.attempts, 1u);
  EXPECT_EQ(net.stats().total_retries(), 0u);
}

// --- lost reduction-tree partials --------------------------------------------

TEST(DegradedReduce, DeadNodePartialIsSkippedAndReported) {
  // Records on three nodes; node 2 is dead, so its partial cannot ship.
  std::vector<IntervalRecord> records;
  for (NodeId n = 0; n < 3; ++n) {
    IntervalRecord r;
    r.thread = n;
    r.node = n;
    r.entries.push_back({static_cast<ObjectId>(n), 0, 64, 1});
    records.push_back(r);
  }

  FaultKnobs plan;
  plan.enabled = true;
  FaultInjector inj(plan);
  inj.kill_node(2);
  Network net(SimCosts{});
  net.set_fault_injector(&inj);

  std::vector<NodeId> lost;
  const SquareMatrix map = DistributedTcmReducer::build(
      records, /*threads=*/3, /*weighted=*/false, /*threads_hw=*/1, &net, &lost);
  ASSERT_EQ(lost.size(), 1u);
  EXPECT_EQ(lost[0], 2);
  EXPECT_EQ(map.size(), 3u);

  // Fault-free, the same records lose nothing.
  Network clean(SimCosts{});
  std::vector<NodeId> lost2;
  (void)DistributedTcmReducer::build(records, 3, false, 1, &clean, &lost2);
  EXPECT_TRUE(lost2.empty());
}

// --- degraded mode end to end ------------------------------------------------

class DegradedModeTest : public ::testing::Test {
 protected:
  static Config base_cfg() {
    Config cfg;
    cfg.nodes = 4;
    cfg.threads = 4;
    cfg.oal_transfer = OalTransfer::kSend;
    cfg.faults.enabled = true;
    return cfg;
  }

  static void drive_epoch(Djvm& d, const std::vector<ObjectId>& objs) {
    for (ThreadId t = 0; t < d.thread_count(); ++t) {
      for (ObjectId o : objs) d.read(t, o);
      d.gos().clock(t).advance(static_cast<SimTime>(objs.size()) * 4000);
    }
    d.barrier_all();
  }
};

TEST_F(DegradedModeTest, FailNodeQuarantinesRehomesAndFailsOverThreads) {
  Config cfg = base_cfg();
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  const ClassId k = djvm.registry().register_class("Hot", 256);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 32; ++i) {
    objs.push_back(djvm.gos().alloc(k, static_cast<NodeId>(i % cfg.nodes)));
  }
  drive_epoch(djvm, objs);
  (void)djvm.run_governed_epoch();

  djvm.fail_node(1);

  ASSERT_NE(djvm.fault_injector(), nullptr);
  EXPECT_TRUE(djvm.fault_injector()->node_dead(1));
  EXPECT_TRUE(djvm.governor().is_quarantined(1));
  // No thread still runs on the dead node, and no object is homed there.
  for (ThreadId t = 0; t < djvm.thread_count(); ++t) {
    EXPECT_NE(djvm.gos().thread_node(t), 1);
  }
  for (ObjectId o : objs) {
    EXPECT_NE(djvm.heap().meta(o).home, 1);
  }
  EXPECT_EQ(djvm.heap().bytes_at(1), 0u);

  // The next epoch reports itself degraded and names the lost node.
  drive_epoch(djvm, objs);
  const EpochResult res = djvm.run_governed_epoch();
  EXPECT_TRUE(res.degraded);
  ASSERT_EQ(res.lost_nodes.size(), 1u);
  EXPECT_EQ(res.lost_nodes[0], 1);

  // fail_node is idempotent and refuses to kill the last node alive.
  djvm.fail_node(1);
  djvm.fail_node(0);
  djvm.fail_node(2);
  djvm.fail_node(3);  // would be the last survivor: refused
  EXPECT_FALSE(djvm.fault_injector()->node_dead(3));
}

TEST_F(DegradedModeTest, TimedKillFromThePlanFiresDuringTheRun) {
  Config cfg = base_cfg();
  cfg.faults.kill_node = 2;
  cfg.faults.kill_epoch = 2;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  const ClassId k = djvm.registry().register_class("Hot", 256);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 32; ++i) {
    objs.push_back(djvm.gos().alloc(k, static_cast<NodeId>(i % cfg.nodes)));
  }

  bool saw_degraded = false;
  for (int e = 0; e < 4; ++e) {
    drive_epoch(djvm, objs);
    const EpochResult res = djvm.run_governed_epoch();
    if (e < 2) EXPECT_FALSE(res.degraded) << "epoch " << e;
    saw_degraded |= res.degraded;
  }
  EXPECT_TRUE(saw_degraded);
  EXPECT_TRUE(djvm.governor().is_quarantined(2));
  for (ObjectId o : objs) EXPECT_NE(djvm.heap().meta(o).home, 2);
}

TEST_F(DegradedModeTest, QuarantinedNodeIsExcludedFromOffenderScoring) {
  Config cfg = base_cfg();
  cfg.governor.enabled = true;
  cfg.governor.per_node = true;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  const ClassId k = djvm.registry().register_class("Hot", 64);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 32; ++i) {
    objs.push_back(djvm.gos().alloc(k, static_cast<NodeId>(i % cfg.nodes)));
  }
  drive_epoch(djvm, objs);
  (void)djvm.run_governed_epoch();
  djvm.fail_node(1);
  drive_epoch(djvm, objs);
  const EpochResult res = djvm.run_governed_epoch();
  if (res.offender.has_value()) EXPECT_NE(*res.offender, 1);
  EXPECT_EQ(djvm.governor().quarantined_nodes(),
            std::vector<NodeId>{1});
}

// --- timeline fault block ----------------------------------------------------

TEST(TimelineFaults, DegradedEpochRendersFaultBlock) {
  EpochResult epoch;
  epoch.epoch = 7;
  epoch.degraded = true;
  epoch.lost_nodes = {1, 3};
  epoch.dropped_msgs[static_cast<std::size_t>(MsgCategory::kOal)] = 12;
  epoch.retries[static_cast<std::size_t>(MsgCategory::kOal)] = 34;
  epoch.backoff_ns = 5600;

  KlassRegistry reg;
  Heap heap(reg, 1);
  SamplingPlan plan(heap);
  Governor gov(plan);
  const std::string line = timeline_line(epoch, gov, reg, 4);
  EXPECT_NE(line.find("\"faults\":{\"degraded\":true"), std::string::npos);
  EXPECT_NE(line.find("\"lost_nodes\":[1,3]"), std::string::npos);
  EXPECT_NE(line.find("\"oal\":12"), std::string::npos);
  EXPECT_NE(line.find("\"oal\":34"), std::string::npos);
  EXPECT_NE(line.find("\"backoff_ns\":5600"), std::string::npos);
}

}  // namespace
}  // namespace djvm
