// Adaptive object sampling: gap derivation, nX rates, array amortization,
// resampling, Horvitz-Thompson estimates, and statistical uniformity.
#include <gtest/gtest.h>

#include "common/primes.hpp"
#include "profiling/sampling.hpp"

namespace djvm {
namespace {

class SamplingTest : public ::testing::Test {
 protected:
  KlassRegistry reg;
  Heap heap{reg, 2};
  SamplingPlan plan{heap};
};

TEST_F(SamplingTest, RateZeroMeansFullSampling) {
  const ClassId c = reg.register_class("X", 64);
  plan.set_rate(c, 0);
  EXPECT_EQ(plan.real_gap(c), 1u);
  const ObjectId o = heap.alloc(c, 0);
  plan.on_alloc(o);
  EXPECT_TRUE(plan.is_sampled(o));
}

TEST_F(SamplingTest, NominalGapForRateFormula) {
  // gap = page / (size * n): 64-byte class at 1X -> 4096/64 = 64.
  EXPECT_EQ(SamplingPlan::nominal_gap_for_rate(64, 1), 64u);
  EXPECT_EQ(SamplingPlan::nominal_gap_for_rate(64, 4), 16u);
  EXPECT_EQ(SamplingPlan::nominal_gap_for_rate(64, 64), 1u);
  // Objects larger than a page: gap clamps to 1 (every object sampled) —
  // the reason SOR's KB-sized rows always run at effectively full sampling.
  EXPECT_EQ(SamplingPlan::nominal_gap_for_rate(8192, 1), 1u);
}

TEST_F(SamplingTest, RealGapIsNearestPrime) {
  const ClassId c = reg.register_class("X", 64);
  plan.set_rate(c, 1);  // nominal 64
  EXPECT_EQ(plan.nominal_gap(c), 64u);
  EXPECT_EQ(plan.real_gap(c), 67u);  // paper's example: 64 -> 67
  plan.set_rate(c, 2);  // nominal 32
  EXPECT_EQ(plan.real_gap(c), 31u);
}

TEST_F(SamplingTest, HalveAndDoubleGap) {
  const ClassId c = reg.register_class("X", 8);
  plan.set_nominal_gap(c, 128);
  EXPECT_EQ(plan.real_gap(c), 127u);
  plan.halve_gap(c);
  EXPECT_EQ(plan.nominal_gap(c), 64u);
  EXPECT_EQ(plan.real_gap(c), 67u);
  plan.double_gap(c);
  EXPECT_EQ(plan.nominal_gap(c), 128u);
  // Halving saturates at full sampling.
  for (int i = 0; i < 10; ++i) plan.halve_gap(c);
  EXPECT_EQ(plan.real_gap(c), 1u);
}

TEST_F(SamplingTest, ScalarSampledIffSeqDivisible) {
  const ClassId c = reg.register_class("X", 8);
  plan.set_nominal_gap(c, 3);  // real gap 3
  ASSERT_EQ(plan.real_gap(c), 3u);
  int sampled = 0;
  for (int i = 0; i < 30; ++i) {
    const ObjectId o = heap.alloc(c, 0);
    plan.on_alloc(o);
    const bool expect = heap.meta(o).start_seq % 3 == 0;
    EXPECT_EQ(plan.is_sampled(o), expect);
    sampled += plan.is_sampled(o);
  }
  EXPECT_EQ(sampled, 10);
}

TEST_F(SamplingTest, SampledElementsCountsMultiplesInRange) {
  // Fig. 3(b): arrays starting at arbitrary sequence numbers.
  EXPECT_EQ(SamplingPlan::sampled_elements(1, 4, 3), 1u);    // {3}
  EXPECT_EQ(SamplingPlan::sampled_elements(5, 5, 3), 2u);    // {6, 9}
  EXPECT_EQ(SamplingPlan::sampled_elements(10, 3, 3), 1u);   // {12}
  EXPECT_EQ(SamplingPlan::sampled_elements(1, 4, 7), 0u);    // none in 1..4
  EXPECT_EQ(SamplingPlan::sampled_elements(1, 12, 1), 12u);  // full sampling
}

TEST_F(SamplingTest, ArraySampledIffAnyElementSampled) {
  const ClassId c = reg.register_array_class("A[]", 4);
  plan.set_nominal_gap(c, 7);  // real gap 7
  ASSERT_EQ(plan.real_gap(c), 7u);
  // First array: seqs 1..4 -> no multiple of 7 -> unsampled.
  const ObjectId a = heap.alloc_array(c, 0, 4);
  plan.on_alloc(a);
  EXPECT_FALSE(plan.is_sampled(a));
  EXPECT_EQ(plan.sample_bytes(a), 0u);
  // Second array: seqs 5..14 -> {7, 14} -> sampled, amortized 2 elements.
  const ObjectId b = heap.alloc_array(c, 0, 10);
  plan.on_alloc(b);
  EXPECT_TRUE(plan.is_sampled(b));
  EXPECT_EQ(plan.sample_bytes(b), 2u * 4u);
}

TEST_F(SamplingTest, AmortizedBytesNotWholeArray) {
  // The array-bias fix: a sampled large array logs only its sampled
  // elements' bytes, not its full size.
  const ClassId c = reg.register_array_class("A[]", 8);
  plan.set_nominal_gap(c, 31);
  const ObjectId big = heap.alloc_array(c, 0, 3100);
  plan.on_alloc(big);
  ASSERT_TRUE(plan.is_sampled(big));
  EXPECT_EQ(plan.sample_bytes(big), 100u * 8u);
  EXPECT_LT(plan.sample_bytes(big), heap.meta(big).size_bytes);
}

TEST_F(SamplingTest, EstimatedFullBytesReconstructsArraySize) {
  const ClassId c = reg.register_array_class("A[]", 8);
  plan.set_nominal_gap(c, 31);
  const ObjectId a = heap.alloc_array(c, 0, 3100);
  plan.on_alloc(a);
  const double est = static_cast<double>(plan.estimated_full_bytes(a));
  const double real = static_cast<double>(heap.meta(a).size_bytes);
  EXPECT_NEAR(est / real, 1.0, 0.05);
}

TEST_F(SamplingTest, EstimatedFullBytesScalarHtWeight) {
  const ClassId c = reg.register_class("X", 40);
  plan.set_nominal_gap(c, 5);
  ASSERT_EQ(plan.real_gap(c), 5u);
  for (int i = 0; i < 5; ++i) {
    const ObjectId o = heap.alloc(c, 0);
    plan.on_alloc(o);
    if (plan.is_sampled(o)) {
      EXPECT_EQ(plan.estimated_full_bytes(o), 40u * 5u);
    } else {
      EXPECT_EQ(plan.estimated_full_bytes(o), 0u);
    }
  }
}

TEST_F(SamplingTest, ResampleAfterGapChange) {
  const ClassId c = reg.register_class("X", 8);
  plan.set_nominal_gap(c, 4);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 100; ++i) {
    objs.push_back(heap.alloc(c, 0));
    plan.on_alloc(objs.back());
  }
  const std::uint64_t before = plan.sampled_count();
  plan.set_nominal_gap(c, 2);
  plan.resample_class(c);
  const std::uint64_t after = plan.sampled_count();
  EXPECT_GT(after, before);  // tighter gap samples more objects
}

TEST_F(SamplingTest, ResampleClassTouchesOnlyThatClass) {
  const ClassId x = reg.register_class("X", 8);
  const ClassId y = reg.register_class("Y", 8);
  for (int i = 0; i < 10; ++i) {
    plan.on_alloc(heap.alloc(x, 0));
    plan.on_alloc(heap.alloc(y, 0));
  }
  EXPECT_EQ(plan.resample_class(x), 10u);
  EXPECT_EQ(plan.resample_all(), 20u);
}

TEST_F(SamplingTest, GapOfOutOfRangeReportsUnsampled) {
  const ClassId c = reg.register_class("X", 8);
  plan.set_nominal_gap(c, 4);
  const ObjectId o = heap.alloc(c, 0);
  plan.on_alloc(o);
  EXPECT_EQ(plan.gap_of(o), plan.real_gap(c));
  // Boundary: objects the plan has never registered are *unsampled* (gap 0).
  // The old fallback of 1 read as sampled-every-access, inflating any
  // Horvitz-Thompson estimate built from a bogus entry by 1/gap.
  EXPECT_EQ(plan.gap_of(o + 1), 0u);
  EXPECT_EQ(plan.gap_of(kInvalidObject), 0u);
  EXPECT_FALSE(plan.is_sampled(o + 1));
  EXPECT_EQ(plan.sample_bytes(o + 1), 0u);
  EXPECT_EQ(plan.estimated_full_bytes(o + 1), 0u);
}

TEST_F(SamplingTest, NodeViewTracksTheNodesEffectiveGap) {
  const ClassId c = reg.register_class("X", 8);
  plan.set_nominal_gap(c, 4);
  // Homed at node 1: with no copy view registered, the per-node resampling
  // walk falls back to exactly the objects a node homes.
  std::vector<ObjectId> objs;
  for (int i = 0; i < 30; ++i) {
    objs.push_back(heap.alloc(c, 1));
    plan.on_alloc(objs.back());
  }
  // Without a shift, node queries fall through to the cluster view.
  for (ObjectId o : objs) {
    EXPECT_EQ(plan.is_sampled(1, o), plan.is_sampled(o));
    EXPECT_EQ(plan.gap_of(1, o), plan.gap_of(o));
  }

  plan.set_node_gap_shift(1, c, 2);
  plan.resample_classes_on_node(1, {c});
  const std::uint32_t shifted = plan.effective_real_gap(1, c);
  for (ObjectId o : objs) {
    const std::uint32_t seq = heap.meta(o).start_seq;
    // Node 1's copy view samples under its shifted gap...
    EXPECT_EQ(plan.is_sampled(1, o), seq % shifted == 0);
    EXPECT_EQ(plan.gap_of(1, o), shifted);
    EXPECT_EQ(plan.sample_bytes(1, o), seq % shifted == 0 ? 8u : 0u);
    // ...while the cluster view (and any unshifted node) is untouched.
    EXPECT_EQ(plan.is_sampled(o), seq % plan.real_gap(c) == 0);
    EXPECT_EQ(plan.is_sampled(0, o), plan.is_sampled(o));
  }
}

TEST_F(SamplingTest, NodeViewAmortizesArraysUnderShiftedGap) {
  const ClassId c = reg.register_array_class("A[]", 4);
  plan.set_nominal_gap(c, 4);
  const ObjectId a = heap.alloc_array(c, 1, 100);
  plan.on_alloc(a);
  plan.set_node_gap_shift(1, c, 3);  // 4 << 3 = 32 -> prime 31
  plan.resample_classes_on_node(1, {c});
  ASSERT_EQ(plan.effective_real_gap(1, c), 31u);
  const std::uint32_t n = SamplingPlan::sampled_elements(
      heap.meta(a).start_seq, 100, 31);
  EXPECT_EQ(plan.sample_bytes(1, a), n * 4u);
  EXPECT_GT(plan.sample_bytes(a), plan.sample_bytes(1, a));
}

TEST_F(SamplingTest, PlanTagsPreexistingObjectsAtConstruction) {
  KlassRegistry reg2;
  Heap heap2(reg2, 1);
  const ClassId c = reg2.register_class("X", 8);
  const ObjectId o = heap2.alloc(c, 0);
  SamplingPlan plan2(heap2);  // object allocated before the plan existed
  EXPECT_TRUE(plan2.is_sampled(o));
}

// --- statistical properties -------------------------------------------------

// HT-estimated total bytes over a large scalar population should match the
// true total within a few percent at any prime gap.
class HtEstimateSweep : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(HtEstimateSweep, UnbiasedTotalEstimate) {
  KlassRegistry reg;
  Heap heap(reg, 1);
  SamplingPlan plan(heap);
  const ClassId c = reg.register_class("X", 64);
  plan.set_nominal_gap(c, GetParam());
  const int n = 200000;
  double est = 0.0;
  for (int i = 0; i < n; ++i) {
    const ObjectId o = heap.alloc(c, 0);
    plan.on_alloc(o);
    est += static_cast<double>(plan.estimated_full_bytes(o));
  }
  const double real = 64.0 * n;
  EXPECT_NEAR(est / real, 1.0, 0.02) << "gap=" << GetParam();
}

INSTANTIATE_TEST_SUITE_P(Gaps, HtEstimateSweep,
                         ::testing::Values(2, 4, 8, 16, 32, 64, 128, 256, 512));

// Sampled sequence numbers must spread uniformly over the allocation order —
// the property the prime gap protects under cyclic allocation.
TEST(SamplingUniformity, SampledObjectsSpreadOverAllocationOrder) {
  KlassRegistry reg;
  Heap heap(reg, 1);
  SamplingPlan plan(heap);
  const ClassId c = reg.register_class("X", 64);
  plan.set_nominal_gap(c, 64);  // real 67
  const int n = 67 * 300;
  std::vector<int> deciles(10, 0);
  for (int i = 0; i < n; ++i) {
    const ObjectId o = heap.alloc(c, 0);
    plan.on_alloc(o);
    if (plan.is_sampled(o)) ++deciles[static_cast<std::size_t>(i * 10LL / n)];
  }
  for (int d = 0; d < 10; ++d) EXPECT_NEAR(deciles[d], 30, 2) << "decile " << d;
}

}  // namespace
}  // namespace djvm
