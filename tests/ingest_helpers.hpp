// Test helper: feed hand-built IntervalRecords to a CorrelationDaemon
// through the arena ingest path (the only delivery path since submit()'s
// retirement).  Declare the feeder BEFORE the daemon uses it each epoch —
// the daemon recycles drained arenas back into the feeder's hub at its next
// run_epoch/build_full, so the hub must outlive those calls.
#pragma once

#include <cstdint>
#include <vector>

#include "profiling/correlation_daemon.hpp"
#include "profiling/ingest.hpp"
#include "profiling/oal.hpp"

namespace djvm {

class RecordFeeder {
 public:
  explicit RecordFeeder(IngestConfig cfg = {}) : hub_(cfg) {}

  /// Publishes `records` through the hub (one lane per thread id, one slice
  /// per record) and drains them into `daemon` via ingest().
  void feed(CorrelationDaemon& daemon, std::vector<IntervalRecord> records) {
    std::uint32_t lanes = 1;
    for (const IntervalRecord& r : records) {
      if (r.thread + 1u > lanes) lanes = r.thread + 1u;
    }
    hub_.ensure_lanes(lanes);
    for (const IntervalRecord& r : records) {
      hub_.append(r.thread, r.thread, r.interval, r.node, r.start_pc, r.end_pc,
                  r.entries);
    }
    for (std::uint32_t lane = 0; lane < lanes; ++lane) hub_.flush(lane);
    daemon.ingest(hub_);
  }

  [[nodiscard]] IngestHub& hub() noexcept { return hub_; }

 private:
  IngestHub hub_;
};

}  // namespace djvm
