// Thread migration: context shipping, sticky-set prefetch, cost model.
#include <gtest/gtest.h>

#include "dsm/gos.hpp"
#include "migration/cost_model.hpp"
#include "migration/migration.hpp"
#include "stack/javastack.hpp"

namespace djvm {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    cfg.nodes = 4;
    cfg.threads = 2;
    heap = std::make_unique<Heap>(reg, cfg.nodes);
    plan = std::make_unique<SamplingPlan>(*heap);
    net = std::make_unique<Network>(cfg.costs);
    gos = std::make_unique<Gos>(*heap, *net, *plan, cfg);
    gos->spawn_thread(0);
    gos->spawn_thread(1);
    klass = reg.register_class("Node", 256, 2);
  }

  ObjectId make(NodeId home = 0) { return gos->alloc(klass, home); }

  Config cfg;
  KlassRegistry reg;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SamplingPlan> plan;
  std::unique_ptr<Network> net;
  std::unique_ptr<Gos> gos;
  ClassId klass = kInvalidClass;
};

TEST_F(MigrationTest, MigrateMovesThreadAndShipsContext) {
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 8);
  const MigrationOutcome out = engine.migrate(0, 2, stack);
  EXPECT_EQ(gos->thread_node(0), 2);
  EXPECT_EQ(out.from, 0);
  EXPECT_EQ(out.to, 2);
  EXPECT_EQ(out.context_bytes, stack.context_bytes());
  EXPECT_GT(out.sim_cost, 0u);
  EXPECT_GT(net->stats().bytes_of(MsgCategory::kMigration), 0u);
  EXPECT_EQ(engine.migrations_done(), 1u);
}

TEST_F(MigrationTest, WithoutPrefetchMigrantRefaults) {
  std::vector<ObjectId> objs;
  for (int i = 0; i < 10; ++i) objs.push_back(make(0));
  for (ObjectId o : objs) gos->read(0, o);  // home accesses: no faults
  ASSERT_EQ(gos->stats().object_faults, 0u);

  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 2);
  engine.migrate(0, 2, stack);
  for (ObjectId o : objs) gos->read(0, o);  // all remote now
  EXPECT_EQ(gos->stats().object_faults, 10u);
}

TEST_F(MigrationTest, PrefetchAbsorbsPostMigrationFaults) {
  std::vector<ObjectId> objs;
  for (int i = 0; i < 10; ++i) objs.push_back(make(0));
  for (ObjectId o : objs) gos->read(0, o);

  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 2);
  const MigrationOutcome out = engine.migrate(0, 2, stack, objs);
  EXPECT_EQ(out.prefetched_objects, 10u);
  EXPECT_EQ(out.prefetched_bytes, 10u * 256u);
  for (ObjectId o : objs) gos->read(0, o);
  EXPECT_EQ(gos->stats().object_faults, 0u);
}

TEST_F(MigrationTest, MigrateWithResolutionPrefetchesGraph) {
  // root -> a -> b chain; footprint budget covers all three.
  const ObjectId root = make(0);
  const ObjectId a = make(0);
  const ObjectId b = make(0);
  heap->add_ref(root, a);
  heap->add_ref(a, b);
  ClassFootprint fp;
  fp.bytes[klass] = 3 * 256.0;
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 1);
  const MigrationOutcome out = engine.migrate_with_resolution(
      0, 3, stack, std::vector<ObjectId>{root}, fp, 4.0);
  EXPECT_EQ(out.prefetched_objects, 3u);
  gos->read(0, root);
  gos->read(0, a);
  gos->read(0, b);
  EXPECT_EQ(gos->stats().object_faults, 0u);
}

TEST_F(MigrationTest, CostModelDirectScalesWithContext) {
  MigrationCostModel model(*heap, cfg.costs);
  ClassFootprint none;
  const auto small = model.estimate(1024, none);
  const auto big = model.estimate(1024 * 1024, none);
  EXPECT_GT(big.direct, small.direct);
  EXPECT_EQ(small.predicted_fault_count, 0u);
}

TEST_F(MigrationTest, CostModelPredictsFaultsFromFootprint) {
  MigrationCostModel model(*heap, cfg.costs);
  ClassFootprint fp;
  fp.bytes[klass] = 256.0 * 20;  // ~20 objects of 256 B
  const auto est = model.estimate(1024, fp);
  EXPECT_NEAR(static_cast<double>(est.predicted_fault_count), 20.0, 1.0);
  EXPECT_GT(est.indirect_faults, est.prefetch_bulk);
  EXPECT_GT(est.prefetch_benefit(), 0u);
}

TEST_F(MigrationTest, PrefetchBenefitGrowsWithStickySetSize) {
  MigrationCostModel model(*heap, cfg.costs);
  ClassFootprint small_fp, big_fp;
  small_fp.bytes[klass] = 256.0 * 4;
  big_fp.bytes[klass] = 256.0 * 400;
  EXPECT_GT(model.estimate(1024, big_fp).prefetch_benefit(),
            model.estimate(1024, small_fp).prefetch_benefit());
}

TEST_F(MigrationTest, OutcomeResolutionStatsPropagated) {
  const ObjectId root = make(0);
  ClassFootprint fp;
  fp.bytes[klass] = 256.0;
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 1);
  const MigrationOutcome out = engine.migrate_with_resolution(
      0, 1, stack, std::vector<ObjectId>{root}, fp, 2.0);
  EXPECT_GE(out.resolution.objects_visited, 1u);
  EXPECT_EQ(out.resolution.roots_used, 1u);
}

}  // namespace
}  // namespace djvm
