// Thread migration: context shipping, sticky-set prefetch, cost model,
// follow-the-thread home migration, and the governed execution stage.
#include <gtest/gtest.h>

#include "core/djvm.hpp"
#include "dsm/gos.hpp"
#include "migration/cost_model.hpp"
#include "migration/migration.hpp"
#include "stack/javastack.hpp"

namespace djvm {
namespace {

class MigrationTest : public ::testing::Test {
 protected:
  MigrationTest() {
    cfg.nodes = 4;
    cfg.threads = 2;
    heap = std::make_unique<Heap>(reg, cfg.nodes);
    plan = std::make_unique<SamplingPlan>(*heap);
    net = std::make_unique<Network>(cfg.costs);
    gos = std::make_unique<Gos>(*heap, *net, *plan, cfg);
    gos->spawn_thread(0);
    gos->spawn_thread(1);
    klass = reg.register_class("Node", 256, 2);
  }

  ObjectId make(NodeId home = 0) { return gos->alloc(klass, home); }

  Config cfg;
  KlassRegistry reg;
  std::unique_ptr<Heap> heap;
  std::unique_ptr<SamplingPlan> plan;
  std::unique_ptr<Network> net;
  std::unique_ptr<Gos> gos;
  ClassId klass = kInvalidClass;
};

TEST_F(MigrationTest, MigrateMovesThreadAndShipsContext) {
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 8);
  const MigrationOutcome out = engine.migrate(0, 2, stack);
  EXPECT_EQ(gos->thread_node(0), 2);
  EXPECT_EQ(out.from, 0);
  EXPECT_EQ(out.to, 2);
  EXPECT_EQ(out.context_bytes, stack.context_bytes());
  EXPECT_GT(out.sim_cost, 0u);
  EXPECT_GT(net->stats().bytes_of(MsgCategory::kMigration), 0u);
  EXPECT_EQ(engine.migrations_done(), 1u);
}

TEST_F(MigrationTest, WithoutPrefetchMigrantRefaults) {
  std::vector<ObjectId> objs;
  for (int i = 0; i < 10; ++i) objs.push_back(make(0));
  for (ObjectId o : objs) gos->read(0, o);  // home accesses: no faults
  ASSERT_EQ(gos->stats().object_faults, 0u);

  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 2);
  engine.migrate(0, 2, stack);
  for (ObjectId o : objs) gos->read(0, o);  // all remote now
  EXPECT_EQ(gos->stats().object_faults, 10u);
}

TEST_F(MigrationTest, PrefetchAbsorbsPostMigrationFaults) {
  std::vector<ObjectId> objs;
  for (int i = 0; i < 10; ++i) objs.push_back(make(0));
  for (ObjectId o : objs) gos->read(0, o);

  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 2);
  const MigrationOutcome out = engine.migrate(0, 2, stack, objs);
  EXPECT_EQ(out.prefetched_objects, 10u);
  EXPECT_EQ(out.prefetched_bytes, 10u * 256u);
  for (ObjectId o : objs) gos->read(0, o);
  EXPECT_EQ(gos->stats().object_faults, 0u);
}

TEST_F(MigrationTest, MigrateWithResolutionPrefetchesGraph) {
  // root -> a -> b chain; footprint budget covers all three.
  const ObjectId root = make(0);
  const ObjectId a = make(0);
  const ObjectId b = make(0);
  heap->add_ref(root, a);
  heap->add_ref(a, b);
  ClassFootprint fp;
  fp.bytes[klass] = 3 * 256.0;
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 1);
  const MigrationOutcome out = engine.migrate_with_resolution(
      0, 3, stack, std::vector<ObjectId>{root}, fp, 4.0);
  EXPECT_EQ(out.prefetched_objects, 3u);
  gos->read(0, root);
  gos->read(0, a);
  gos->read(0, b);
  EXPECT_EQ(gos->stats().object_faults, 0u);
}

TEST_F(MigrationTest, CostModelDirectScalesWithContext) {
  MigrationCostModel model(*heap, cfg.costs);
  ClassFootprint none;
  const auto small = model.estimate(1024, none);
  const auto big = model.estimate(1024 * 1024, none);
  EXPECT_GT(big.direct, small.direct);
  EXPECT_EQ(small.predicted_fault_count, 0u);
}

TEST_F(MigrationTest, CostModelPredictsFaultsFromFootprint) {
  MigrationCostModel model(*heap, cfg.costs);
  ClassFootprint fp;
  fp.bytes[klass] = 256.0 * 20;  // ~20 objects of 256 B
  const auto est = model.estimate(1024, fp);
  EXPECT_NEAR(static_cast<double>(est.predicted_fault_count), 20.0, 1.0);
  EXPECT_GT(est.indirect_faults, est.prefetch_bulk);
  EXPECT_GT(est.prefetch_benefit(), 0u);
}

TEST_F(MigrationTest, PrefetchBenefitGrowsWithStickySetSize) {
  MigrationCostModel model(*heap, cfg.costs);
  ClassFootprint small_fp, big_fp;
  small_fp.bytes[klass] = 256.0 * 4;
  big_fp.bytes[klass] = 256.0 * 400;
  EXPECT_GT(model.estimate(1024, big_fp).prefetch_benefit(),
            model.estimate(1024, small_fp).prefetch_benefit());
}

TEST_F(MigrationTest, OutcomeResolutionStatsPropagated) {
  const ObjectId root = make(0);
  ClassFootprint fp;
  fp.bytes[klass] = 256.0;
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 1);
  const MigrationOutcome out = engine.migrate_with_resolution(
      0, 1, stack, std::vector<ObjectId>{root}, fp, 2.0);
  EXPECT_GE(out.resolution.objects_visited, 1u);
  EXPECT_EQ(out.resolution.roots_used, 1u);
}

TEST_F(MigrationTest, MigrateHomesBatchesAndSkipsDuplicates) {
  const ObjectId a = make(0);
  const ObjectId b = make(0);
  const ObjectId c = make(1);
  const std::uint64_t data_before = net->stats().bytes_of(MsgCategory::kObjectData);
  const std::vector<ObjectId> batch = {a, b, c, a};  // duplicate a
  const std::size_t moved = gos->migrate_homes(batch, 2);
  EXPECT_EQ(moved, 3u);  // duplicate already home at 2 on second visit
  EXPECT_EQ(heap->meta(a).home, 2);
  EXPECT_EQ(heap->meta(b).home, 2);
  EXPECT_EQ(heap->meta(c).home, 2);
  EXPECT_GT(net->stats().bytes_of(MsgCategory::kObjectData), data_before);
  // Moving again to the same node is a no-op.
  EXPECT_EQ(gos->migrate_homes(batch, 2), 0u);
}

TEST_F(MigrationTest, FollowHomesMigratesStickySetHomes) {
  // Sticky chain homed at the source node: with follow enabled the homes
  // land at the destination along with the thread.
  const ObjectId root = make(0);
  const ObjectId child = make(0);
  heap->add_ref(root, child);
  ClassFootprint fp;
  fp.bytes[klass] = 2 * 256.0;
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 1);
  const MigrationOutcome out = engine.migrate_with_resolution(
      0, 3, stack, std::vector<ObjectId>{root}, fp, 4.0,
      /*max_follow_homes=*/8);
  EXPECT_EQ(out.homes_migrated, 2u);
  EXPECT_EQ(heap->meta(root).home, 3);
  EXPECT_EQ(heap->meta(child).home, 3);
}

TEST_F(MigrationTest, FollowHomesRespectsCapAndOffSwitch) {
  const ObjectId root = make(0);
  const ObjectId child = make(0);
  heap->add_ref(root, child);
  ClassFootprint fp;
  fp.bytes[klass] = 2 * 256.0;
  MigrationEngine engine(*gos);
  JavaStack stack;
  stack.push(1, 1);
  {
    const MigrationOutcome out = engine.migrate_with_resolution(
        0, 3, stack, std::vector<ObjectId>{root}, fp, 4.0,
        /*max_follow_homes=*/1);
    EXPECT_EQ(out.homes_migrated, 1u);
  }
  // Off by default: the second object's home stays put.
  {
    const MigrationOutcome out = engine.migrate_with_resolution(
        1, 2, stack, std::vector<ObjectId>{root}, fp, 4.0);
    EXPECT_EQ(out.homes_migrated, 0u);
  }
}

// --- governed execution stage ------------------------------------------------

class ExecutionStageTest : public ::testing::Test {
 protected:
  static Config base_cfg(std::uint32_t nodes, std::uint32_t threads) {
    Config cfg;
    cfg.nodes = nodes;
    cfg.threads = threads;
    cfg.oal_transfer = OalTransfer::kSend;
    cfg.balance.max_migrations_per_epoch = 1;
    cfg.balance.min_score = 0.0;
    cfg.balance.cooldown_epochs = 0;
    return cfg;
  }

  /// One epoch of work: partner pairs (2k, 2k+1) hammer their shared
  /// objects, clocks advance, barrier closes the intervals.
  static void drive_epoch(Djvm& d,
                          const std::vector<std::vector<ObjectId>>& pair_objs) {
    for (ThreadId t = 0; t < d.thread_count(); ++t) {
      const auto& objs = pair_objs[t / 2];
      for (int r = 0; r < 4; ++r) {
        for (ObjectId o : objs) d.read(t, o);
      }
      d.gos().clock(t).advance(pair_objs[0].size() * 4000);
    }
    d.barrier_all();
  }
};

TEST_F(ExecutionStageTest, ExecutesPlannedMigrationAndCollocatesPartners) {
  Config cfg = base_cfg(2, 2);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);  // partners start split
  const ClassId k = djvm.registry().register_class("Hot", 256);
  std::vector<std::vector<ObjectId>> pair_objs(1);
  for (int i = 0; i < 64; ++i) pair_objs[0].push_back(djvm.gos().alloc(k, 0));

  bool saw_executed = false;
  for (int e = 0; e < 6 && !saw_executed; ++e) {
    drive_epoch(djvm, pair_objs);
    const EpochResult res = djvm.run_governed_epoch();
    for (const auto& m : res.migrations) saw_executed |= m.executed;
  }
  ASSERT_TRUE(saw_executed) << "no migration executed in 6 epochs";
  EXPECT_EQ(djvm.gos().thread_node(0), djvm.gos().thread_node(1));
  EXPECT_GT(djvm.governor().migrations_executed(), 0u);
  EXPECT_FALSE(djvm.governor().migration_history().empty());
  const auto& rec = djvm.governor().migration_history().back();
  EXPECT_NE(rec.from, rec.to);
  EXPECT_GT(rec.gain_bytes, 0.0);
}

TEST_F(ExecutionStageTest, PerEpochCapDefersExtraMovesThenDrains) {
  // Two split pairs both want collocation; cap 1 admits one per epoch and
  // defers the rest as the intended placement for the next epoch.
  Config cfg = base_cfg(2, 4);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);  // (0,2) node 0, (1,3) node 1
  const ClassId k = djvm.registry().register_class("Hot", 256);
  std::vector<std::vector<ObjectId>> pair_objs(2);
  for (int p = 0; p < 2; ++p) {
    for (int i = 0; i < 64; ++i) {
      pair_objs[p].push_back(djvm.gos().alloc(k, static_cast<NodeId>(p)));
    }
  }
  std::size_t max_executed_per_epoch = 0;
  for (int e = 0; e < 10; ++e) {
    drive_epoch(djvm, pair_objs);
    const EpochResult res = djvm.run_governed_epoch();
    std::size_t executed = 0;
    for (const auto& m : res.migrations) executed += m.executed ? 1u : 0u;
    max_executed_per_epoch = std::max(max_executed_per_epoch, executed);
  }
  EXPECT_LE(max_executed_per_epoch, 1u);
  EXPECT_EQ(djvm.gos().thread_node(0), djvm.gos().thread_node(1));
  EXPECT_EQ(djvm.gos().thread_node(2), djvm.gos().thread_node(3));
  EXPECT_GE(djvm.governor().migrations_executed(), 2u);
}

TEST_F(ExecutionStageTest, DryRunLogsButMovesNothing) {
  Config cfg = base_cfg(2, 2);
  cfg.balance.dry_run = true;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  const ClassId k = djvm.registry().register_class("Hot", 256);
  std::vector<std::vector<ObjectId>> pair_objs(1);
  for (int i = 0; i < 64; ++i) pair_objs[0].push_back(djvm.gos().alloc(k, 0));

  const NodeId n0 = djvm.gos().thread_node(0);
  const NodeId n1 = djvm.gos().thread_node(1);
  bool saw_logged = false;
  for (int e = 0; e < 6; ++e) {
    drive_epoch(djvm, pair_objs);
    const EpochResult res = djvm.run_governed_epoch();
    for (const auto& m : res.migrations) {
      saw_logged = true;
      EXPECT_FALSE(m.executed);
    }
  }
  EXPECT_TRUE(saw_logged) << "dry-run never logged a would-be migration";
  EXPECT_EQ(djvm.gos().thread_node(0), n0);
  EXPECT_EQ(djvm.gos().thread_node(1), n1);
  EXPECT_EQ(djvm.governor().migrations_executed(), 0u);
  EXPECT_EQ(djvm.planned_moves_pending(), 0u);
  EXPECT_EQ(djvm.migration().migrations_done(), 0u);
}

TEST_F(ExecutionStageTest, ExecutionOffByDefault) {
  Config cfg = base_cfg(2, 2);
  cfg.balance.max_migrations_per_epoch = 0;  // the default
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  const ClassId k = djvm.registry().register_class("Hot", 256);
  std::vector<std::vector<ObjectId>> pair_objs(1);
  for (int i = 0; i < 64; ++i) pair_objs[0].push_back(djvm.gos().alloc(k, 0));
  for (int e = 0; e < 3; ++e) {
    drive_epoch(djvm, pair_objs);
    const EpochResult res = djvm.run_governed_epoch();
    EXPECT_TRUE(res.migrations.empty());
  }
  EXPECT_EQ(djvm.migration().migrations_done(), 0u);
  EXPECT_EQ(djvm.gos().thread_node(0), 0);
  EXPECT_EQ(djvm.gos().thread_node(1), 1);
}

}  // namespace
}  // namespace djvm
