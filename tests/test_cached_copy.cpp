// Cached-copy sampling-cost attribution: the accessing node's copy bit
// drives logging, resampling walks cover exactly the copies a node caches
// (and bill the walker), fault-in registers bits under the current shift,
// and home migration re-keys sampling state immediately.
#include <gtest/gtest.h>

#include <vector>

#include "core/djvm.hpp"

namespace djvm {
namespace {

/// Two nodes, one thread each; a pool of `count` objects homed at node 0
/// that node 1 only ever caches.
struct World {
  explicit World(std::uint32_t count, CostAttribution attr = CostAttribution::kCachedCopy) {
    Config cfg;
    cfg.nodes = 2;
    cfg.threads = 2;
    cfg.oal_transfer = OalTransfer::kLocalOnly;
    cfg.cost_attribution = attr;
    djvm = std::make_unique<Djvm>(cfg);
    // These tests inspect per-entry gaps via drain_records(), which only
    // materializes records when the observational tap is on.
    djvm->gos().set_record_tap(true);
    djvm->spawn_threads_round_robin(2);
    hot = djvm->registry().register_class("Hot", 64);
    for (std::uint32_t i = 0; i < count; ++i) {
      pool.push_back(djvm->gos().alloc(hot, 0));
    }
  }

  /// Every thread reads the whole pool, then a barrier closes intervals.
  void run_epoch() {
    for (ThreadId t = 0; t < 2; ++t) {
      for (ObjectId o : pool) djvm->read(t, o);
    }
    djvm->barrier_all();
  }

  std::unique_ptr<Djvm> djvm;
  ClassId hot = kInvalidClass;
  std::vector<ObjectId> pool;
};

TEST(CachedCopySampling, AccessingNodeGapControlsWhatItLogs) {
  World w(60);
  SamplingPlan& plan = w.djvm->plan();
  plan.set_nominal_gap(w.hot, 4);
  plan.resample_all();

  // Epoch 0 faults node 1's copies in; both nodes log under the base gap.
  w.run_epoch();
  w.djvm->gos().drain_records();

  // Shift only node 1 (the caching node) and resample its copies.
  plan.set_node_gap_shift(1, w.hot, 2);
  plan.resample_classes_on_node(1, {w.hot});
  const std::uint32_t base_gap = plan.real_gap(w.hot);
  const std::uint32_t shifted_gap = plan.effective_real_gap(1, w.hot);
  ASSERT_GT(shifted_gap, base_gap);

  w.run_epoch();
  std::size_t node0_entries = 0, node1_entries = 0;
  for (const IntervalRecord& r : w.djvm->gos().drain_records()) {
    for (const OalEntry& e : r.entries) {
      if (r.node == 0) {
        ++node0_entries;
        EXPECT_EQ(e.gap, base_gap);  // the home keeps the cluster view
      } else {
        ++node1_entries;
        EXPECT_EQ(e.gap, shifted_gap);  // the caching node logs coarser
      }
    }
  }
  // The shift changed what the *accessing* node logs, not what the home
  // logs: node 0's entry count is unchanged, node 1 logs strictly less.
  EXPECT_GT(node0_entries, 0u);
  EXPECT_GT(node1_entries, 0u);
  EXPECT_LT(node1_entries, node0_entries);
}

TEST(CachedCopySampling, NodeResampleWalksCachedCopiesAndBillsWalker) {
  World w(40);
  SamplingPlan& plan = w.djvm->plan();
  plan.set_nominal_gap(w.hot, 4);
  plan.resample_all();
  w.run_epoch();  // node 1 faults the whole pool into its cache
  plan.drain_resampled_by_node();

  plan.set_node_gap_shift(1, w.hot, 1);
  const std::size_t visited = plan.resample_classes_on_node(1, {w.hot});
  // Node 1 homes nothing, but caches the whole pool: the walk covers all 40
  // remote-homed copies — the exact objects the old home-keyed walk missed.
  EXPECT_EQ(visited, 40u);
  const std::vector<std::uint64_t> billed = plan.drain_resampled_by_node();
  ASSERT_GE(billed.size(), 2u);
  EXPECT_EQ(billed[0], 0u);   // the home did not pay for node 1's walk
  EXPECT_EQ(billed[1], 40u);  // the walking node pays for its own copies
}

TEST(CachedCopySampling, ClusterResampleBillsEveryCachingNode) {
  World w(40);
  SamplingPlan& plan = w.djvm->plan();
  plan.set_nominal_gap(w.hot, 4);
  w.run_epoch();  // both nodes hold copies now (node 0 homes, node 1 caches)
  plan.drain_resampled_by_node();

  plan.set_nominal_gap(w.hot, 8);
  const std::size_t visited = plan.resample_class(w.hot);
  // "Every thread will iterate through all objects of that class it
  // caches": one visit per (caching node, object) pair.
  EXPECT_EQ(visited, 80u);
  const std::vector<std::uint64_t> billed = plan.drain_resampled_by_node();
  ASSERT_GE(billed.size(), 2u);
  EXPECT_EQ(billed[0], 40u);
  EXPECT_EQ(billed[1], 40u);
}

TEST(CachedCopySampling, FaultInRegistersBitUnderCurrentShift) {
  World w(40);
  SamplingPlan& plan = w.djvm->plan();
  plan.set_nominal_gap(w.hot, 4);
  plan.resample_all();
  w.run_epoch();  // pool cached on node 1

  // One more object node 1 has never seen.
  const ObjectId late = w.djvm->gos().alloc(w.hot, 0);

  plan.set_node_gap_shift(1, w.hot, 2);
  plan.resample_classes_on_node(1, {w.hot});  // walks cached copies only
  const std::uint32_t shifted_gap = plan.effective_real_gap(1, w.hot);
  const std::uint64_t regs_before = plan.copy_registrations(1);

  // Fault-in registers the fresh copy's bit under node 1's *current* gap —
  // without this the view would keep the pre-shift decision it was seeded
  // with when the view materialized.
  w.djvm->read(1, late);
  EXPECT_GT(plan.copy_registrations(1), regs_before);
  EXPECT_EQ(plan.gap_of(1, late), shifted_gap);
  const bool expect_sampled =
      shifted_gap <= 1 || w.djvm->heap().meta(late).start_seq % shifted_gap == 0;
  EXPECT_EQ(plan.is_sampled(1, late), expect_sampled);
  // The cluster view (and the home) still sees the base gap.
  EXPECT_EQ(plan.gap_of(late), plan.real_gap(w.hot));
}

TEST(CachedCopySampling, MigrateHomeRekeysLegacyBitImmediately) {
  // Legacy home-node model: the cluster-wide bit is keyed to the home's gap
  // shift, so migration must re-key it under the new home right away.
  World w(64, CostAttribution::kHomeNode);
  SamplingPlan& plan = w.djvm->plan();
  ASSERT_EQ(plan.cost_attribution(), CostAttribution::kHomeNode);
  plan.set_nominal_gap(w.hot, 4);
  plan.set_node_gap_shift(0, w.hot, 3);
  plan.resample_classes_on_node(0, {w.hot});

  const std::uint32_t base_gap = plan.real_gap(w.hot);
  const std::uint32_t coarse_gap = plan.effective_real_gap(0, w.hot);
  // An object sampled at the base gap but not under the old home's coarse
  // gap: after migrating to the (unshifted) node 1 its bit must flip back
  // without waiting for the next full resample.
  ObjectId victim = kInvalidObject;
  for (ObjectId o : w.pool) {
    const std::uint32_t seq = w.djvm->heap().meta(o).start_seq;
    if (seq % base_gap == 0 && seq % coarse_gap != 0) {
      victim = o;
      break;
    }
  }
  ASSERT_NE(victim, kInvalidObject);
  ASSERT_FALSE(plan.is_sampled(victim));
  ASSERT_EQ(plan.gap_of(victim), coarse_gap);

  w.djvm->gos().migrate_home(victim, 1);
  EXPECT_TRUE(plan.is_sampled(victim));
  EXPECT_EQ(plan.gap_of(victim), base_gap);
}

TEST(CachedCopySampling, MigrateHomeReregistersOldHomesCopy) {
  World w(8);
  SamplingPlan& plan = w.djvm->plan();
  const std::uint64_t regs_before = plan.copy_registrations(0);
  w.djvm->gos().migrate_home(w.pool[0], 1);
  // The old home keeps the payload as an ordinary cached copy and its
  // registration is counted (snapshot v3 summary input).
  EXPECT_EQ(plan.copy_registrations(0), regs_before + 1);
  EXPECT_TRUE(w.djvm->gos().node_has_copy(0, w.pool[0]));
  EXPECT_TRUE(w.djvm->gos().node_has_copy(1, w.pool[0]));
}

TEST(CachedCopySampling, ConfigKnobSelectsAttributionModel) {
  World home_world(4, CostAttribution::kHomeNode);
  EXPECT_EQ(home_world.djvm->plan().cost_attribution(), CostAttribution::kHomeNode);
  World copy_world(4);
  EXPECT_EQ(copy_world.djvm->plan().cost_attribution(), CostAttribution::kCachedCopy);
}

}  // namespace
}  // namespace djvm
