// Simulated interconnect: cost model and per-category byte accounting.
#include <gtest/gtest.h>

#include "net/network.hpp"

namespace djvm {
namespace {

SimCosts costs() { return SimCosts{}; }

TEST(Network, LatencyPlusBandwidth) {
  Network net(costs());
  const SimTime t = net.send({0, 1, MsgCategory::kControl, 0, false});
  // 64-byte header at 0.0125 B/ns = 5120 ns + 100 us latency.
  EXPECT_EQ(t, sim_us(100) + 5120);
}

TEST(Network, PiggybackedSkipsLatencyAndHeader) {
  Network net(costs());
  const SimTime t = net.send({0, 1, MsgCategory::kOal, 1000, true});
  EXPECT_EQ(t, net.costs().transfer_time(1000));
  EXPECT_EQ(net.stats().bytes_of(MsgCategory::kOal), 1000u);
}

TEST(Network, NonPiggybackedAddsHeaderBytes) {
  Network net(costs());
  net.send({0, 1, MsgCategory::kOal, 1000, false});
  EXPECT_EQ(net.stats().bytes_of(MsgCategory::kOal), 1000u + kMessageHeaderBytes);
}

TEST(Network, LocalDeliveryIsCheap) {
  Network net(costs());
  const SimTime local = net.send({2, 2, MsgCategory::kObjectData, 4096, false});
  const SimTime remote = net.send({0, 1, MsgCategory::kObjectData, 4096, false});
  EXPECT_LT(local, remote / 10);
}

TEST(Network, CategoriesAccountedSeparately) {
  Network net(costs());
  net.send({0, 1, MsgCategory::kObjectData, 100, true});
  net.send({0, 1, MsgCategory::kOal, 200, true});
  net.send({0, 1, MsgCategory::kControl, 300, true});
  net.send({0, 1, MsgCategory::kMigration, 400, true});
  EXPECT_EQ(net.stats().bytes_of(MsgCategory::kObjectData), 100u);
  EXPECT_EQ(net.stats().bytes_of(MsgCategory::kOal), 200u);
  EXPECT_EQ(net.stats().bytes_of(MsgCategory::kControl), 300u);
  EXPECT_EQ(net.stats().bytes_of(MsgCategory::kMigration), 400u);
  EXPECT_EQ(net.stats().total_bytes(), 1000u);
}

TEST(Network, MessageCounts) {
  Network net(costs());
  for (int i = 0; i < 7; ++i) net.send({0, 1, MsgCategory::kControl, 10, false});
  EXPECT_EQ(net.stats().messages_of(MsgCategory::kControl), 7u);
}

TEST(Network, RoundTripIsTwoSends) {
  Network net(costs());
  const SimTime rt = net.round_trip(0, 1, MsgCategory::kObjectData, 32, 4096);
  Network net2(costs());
  const SimTime a = net2.send({0, 1, MsgCategory::kObjectData, 32, false});
  const SimTime b = net2.send({1, 0, MsgCategory::kObjectData, 4096, false});
  EXPECT_EQ(rt, a + b);
  EXPECT_EQ(net.stats().messages_of(MsgCategory::kObjectData), 2u);
}

TEST(Network, ResetStats) {
  Network net(costs());
  net.send({0, 1, MsgCategory::kControl, 10, false});
  net.reset_stats();
  EXPECT_EQ(net.stats().total_bytes(), 0u);
  EXPECT_EQ(net.stats().messages_of(MsgCategory::kControl), 0u);
}

TEST(Network, BiggerPayloadTakesLonger) {
  Network net(costs());
  const SimTime small = net.send({0, 1, MsgCategory::kObjectData, 100, false});
  const SimTime big = net.send({0, 1, MsgCategory::kObjectData, 100000, false});
  EXPECT_GT(big, small);
}

TEST(Network, RoundTripBillsEachDirectionToItsSourceNode) {
  Network net(costs());
  net.round_trip(0, 1, MsgCategory::kObjectData, 32, 4096);
  // Request: node 0 sent 32 + header; reply: node 1 sent 4096 + header.
  const auto idx = static_cast<std::size_t>(MsgCategory::kObjectData);
  EXPECT_EQ(net.node_traffic(0).bytes[idx], 32u + kMessageHeaderBytes);
  EXPECT_EQ(net.node_traffic(0).messages[idx], 1u);
  EXPECT_EQ(net.node_traffic(1).bytes[idx], 4096u + kMessageHeaderBytes);
  EXPECT_EQ(net.node_traffic(1).messages[idx], 1u);
  // Each node's send_ns matches what a lone send of its direction costs.
  Network solo(costs());
  const SimTime req = solo.send({0, 1, MsgCategory::kObjectData, 32, false});
  const SimTime rep = solo.send({1, 0, MsgCategory::kObjectData, 4096, false});
  EXPECT_EQ(net.node_traffic(0).send_ns[idx], static_cast<std::uint64_t>(req));
  EXPECT_EQ(net.node_traffic(1).send_ns[idx], static_cast<std::uint64_t>(rep));
}

TEST(Network, FaultFreeTransportCountsNoDropsOrRetries) {
  Network net(costs());
  const SendOutcome one = net.try_send({0, 1, MsgCategory::kOal, 100, false});
  EXPECT_TRUE(one.delivered);
  EXPECT_EQ(one.attempts, 1u);
  const SendOutcome rel = net.send_reliable({0, 1, MsgCategory::kOal, 100, false});
  EXPECT_TRUE(rel.delivered);
  EXPECT_EQ(rel.attempts, 1u);
  bool ok = false;
  net.round_trip(0, 1, MsgCategory::kControl, 8, 8, &ok);
  EXPECT_TRUE(ok);
  EXPECT_EQ(net.stats().total_dropped(), 0u);
  EXPECT_EQ(net.stats().total_retries(), 0u);
  EXPECT_EQ(net.stats().total_backoff_ns(), 0u);
  EXPECT_EQ(net.node_traffic(0).dropped[static_cast<std::size_t>(MsgCategory::kOal)], 0u);
  EXPECT_EQ(net.node_traffic(0).retries[static_cast<std::size_t>(MsgCategory::kOal)], 0u);
}

TEST(Network, NodeCountersSumToClusterCounters) {
  Network net(costs());
  net.send({0, 1, MsgCategory::kOal, 100, false});
  net.send({1, 0, MsgCategory::kOal, 200, false});
  net.send({2, 0, MsgCategory::kControl, 50, false});
  const auto oal = static_cast<std::size_t>(MsgCategory::kOal);
  const auto ctl = static_cast<std::size_t>(MsgCategory::kControl);
  EXPECT_EQ(net.node_traffic(0).bytes[oal] + net.node_traffic(1).bytes[oal],
            net.stats().bytes[oal]);
  EXPECT_EQ(net.node_traffic(2).bytes[ctl], net.stats().bytes[ctl]);
}

TEST(MsgCategory, Names) {
  EXPECT_STREQ(to_string(MsgCategory::kObjectData), "object-data");
  EXPECT_STREQ(to_string(MsgCategory::kOal), "oal");
  EXPECT_STREQ(to_string(MsgCategory::kControl), "control");
  EXPECT_STREQ(to_string(MsgCategory::kMigration), "migration");
}

}  // namespace
}  // namespace djvm
