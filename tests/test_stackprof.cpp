// Stack sampling: two-phase scanning, lazy extraction, compare-by-probing,
// invariant mining, sample purging — the behaviours of Fig. 7/8.
#include <gtest/gtest.h>

#include "runtime/heap.hpp"
#include "stackprof/stack_sampler.hpp"

namespace djvm {
namespace {

class StackProfTest : public ::testing::Test {
 protected:
  StackProfTest() : heap(reg, 1) {
    klass = reg.register_class("X", 16);
    for (int i = 0; i < 32; ++i) objs.push_back(heap.alloc(klass, 0));
  }

  KlassRegistry reg;
  Heap heap;
  ClassId klass;
  std::vector<ObjectId> objs;
};

TEST_F(StackProfTest, FirstSampleVisitsAllFramesRaw) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 4);
  s.push(2, 4);
  s.push(3, 4);
  const StackSampleWork w = sampler.sample(s);
  EXPECT_EQ(w.raw_captures, 3u);
  EXPECT_EQ(w.extractions, 0u);  // lazy: nothing extracted on first visit
  for (const Frame& f : s.frames()) EXPECT_TRUE(f.visited);
}

TEST_F(StackProfTest, SecondSampleExtractsAndCompares) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 4);
  s.top().set_ref(0, objs[0]);
  sampler.sample(s);
  const StackSampleWork w = sampler.sample(s);
  EXPECT_EQ(w.extractions, 1u);   // raw -> extracted on second visit
  EXPECT_EQ(w.comparisons, 1u);
  EXPECT_EQ(w.raw_captures, 0u);  // nothing new on the stack
}

TEST_F(StackProfTest, ImmediateModeExtractsOnFirstVisit) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 2);
  JavaStack s;
  s.push(1, 4);
  s.top().set_ref(0, objs[0]);
  const StackSampleWork w = sampler.sample(s);
  EXPECT_EQ(w.extractions, 1u);
  EXPECT_EQ(w.slots_extracted, 4u);
}

TEST_F(StackProfTest, TopDownStopsAtFirstVisitedFrame) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 2);  // bottom
  s.push(2, 2);
  sampler.sample(s);   // both visited now
  s.push(3, 2);        // new top frame
  const StackSampleWork w = sampler.sample(s);
  // Only the new frame is captured; frame 2 is compared; frame 1 untouched.
  EXPECT_EQ(w.raw_captures, 1u);
  EXPECT_EQ(w.comparisons, 1u);
}

TEST_F(StackProfTest, TemporaryFramesNeverExtractedUnderLazyMode) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 4);  // long-lived bottom frame
  std::uint32_t total_extractions = 0;
  for (int round = 0; round < 20; ++round) {
    s.push(100 + round, 8);  // short-lived top frame, popped before next sample
    s.top().set_ref(0, objs[static_cast<std::size_t>(round) % objs.size()]);
    const StackSampleWork w = sampler.sample(s);
    total_extractions += w.extractions;
    s.pop();
  }
  // Only the bottom frame is ever extracted (once, on its second visit);
  // the 20 temporary frames cost raw captures only.
  EXPECT_EQ(total_extractions, 1u);
}

TEST_F(StackProfTest, ProbingRemovesChangedSlots) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 3);
  s.top().set_ref(0, objs[0]);  // will stay
  s.top().set_ref(1, objs[1]);  // will change
  sampler.sample(s);
  s.top().set_ref(1, objs[2]);
  const StackSampleWork w = sampler.sample(s);
  EXPECT_EQ(w.slots_removed, 1u);
  const auto inv = sampler.invariant_refs(s);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], objs[0]);
}

TEST_F(StackProfTest, ProbingShrinksWorkOverTime) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 8);
  for (int i = 0; i < 8; ++i) s.top().set_ref(static_cast<std::size_t>(i), objs[static_cast<std::size_t>(i)]);
  sampler.sample(s);
  // Change all but one slot; after the next comparison only 1 slot remains,
  // so subsequent probes touch 1 slot instead of 8.
  for (int i = 1; i < 8; ++i) s.top().set_ref(static_cast<std::size_t>(i), objs[static_cast<std::size_t>(8 + i)]);
  const StackSampleWork w1 = sampler.sample(s);
  EXPECT_EQ(w1.slots_probed, 8u);
  const StackSampleWork w2 = sampler.sample(s);
  EXPECT_EQ(w2.slots_probed, 1u);
}

TEST_F(StackProfTest, InvariantsRequireMinRounds) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 2);
  s.top().set_ref(0, objs[5]);
  sampler.sample(s);  // raw capture
  sampler.sample(s);  // extract + compare #1
  EXPECT_TRUE(sampler.invariant_refs(s).empty());  // 1 < min_rounds
  sampler.sample(s);  // compare #2
  const auto inv = sampler.invariant_refs(s);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], objs[5]);
}

TEST_F(StackProfTest, PrimitiveSlotsNeverBecomeInvariants) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 2);
  s.top().set_prim(0, 42);   // constant primitive: survives comparisons
  s.top().set_ref(1, objs[0]);
  sampler.sample(s);
  sampler.sample(s);
  const auto inv = sampler.invariant_refs(s);
  ASSERT_EQ(inv.size(), 1u);  // only the reference qualifies
  EXPECT_EQ(inv[0], objs[0]);
}

TEST_F(StackProfTest, DanglingRefValuesRejectedByGcInterface) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 1);
  // A ref-tagged value beyond the heap: must fail the validity check.
  s.top().slots[0] = encode_ref(ObjectId{999999});
  sampler.sample(s);
  sampler.sample(s);
  EXPECT_TRUE(sampler.invariant_refs(s).empty());
}

TEST_F(StackProfTest, BottomFrameOnlyComparedWhenItBecomesFirstVisited) {
  // The two-phase scan compares only the first visited frame from the top;
  // lower frames keep their previous samples untouched (Fig. 7 state 5).
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 1);
  s.top().set_ref(0, objs[1]);  // bottom frame
  s.push(2, 1);
  s.top().set_ref(0, objs[2]);  // top frame
  sampler.sample(s);
  sampler.sample(s);  // compares the top frame only
  const auto inv = sampler.invariant_refs(s);
  ASSERT_EQ(inv.size(), 1u);
  EXPECT_EQ(inv[0], objs[2]);  // bottom never compared yet -> not invariant
}

TEST_F(StackProfTest, InvariantsOrderedTopmostFirst) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 1);
  s.top().set_ref(0, objs[1]);  // bottom frame invariant
  s.push(2, 1);
  s.top().set_ref(0, objs[2]);
  sampler.sample(s);
  sampler.sample(s);  // top compared
  s.pop();
  sampler.sample(s);  // bottom becomes first visited -> compared
  s.push(3, 1);
  s.top().set_ref(0, objs[2]);  // fresh top frame
  sampler.sample(s);  // new top raw-captured, bottom compared again
  sampler.sample(s);  // new top compared -> invariant
  const auto inv = sampler.invariant_refs(s);
  ASSERT_EQ(inv.size(), 2u);
  EXPECT_EQ(inv[0], objs[2]);  // topmost first
  EXPECT_EQ(inv[1], objs[1]);
}

TEST_F(StackProfTest, DuplicateRefsAcrossFramesDeduplicated) {
  StackSampler sampler(heap, ExtractionMode::kImmediate, 1);
  JavaStack s;
  s.push(1, 1);
  s.top().set_ref(0, objs[3]);
  s.push(2, 1);
  s.top().set_ref(0, objs[3]);
  sampler.sample(s);
  sampler.sample(s);
  EXPECT_EQ(sampler.invariant_refs(s).size(), 1u);
}

TEST_F(StackProfTest, PoppedFrameSamplesPurged) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 2);
  s.push(2, 2);
  sampler.sample(s);
  EXPECT_EQ(sampler.retained_samples(), 2u);
  s.pop();
  const StackSampleWork w = sampler.sample(s);
  EXPECT_EQ(w.samples_purged, 1u);
  EXPECT_EQ(sampler.retained_samples(), 1u);
}

TEST_F(StackProfTest, EmptyStackClearsSamples) {
  StackSampler sampler(heap, ExtractionMode::kLazy, 2);
  JavaStack s;
  s.push(1, 2);
  sampler.sample(s);
  s.pop();
  sampler.sample(s);
  EXPECT_EQ(sampler.retained_samples(), 0u);
}

TEST_F(StackProfTest, Fig7Scenario) {
  // Reproduces the five-state walkthrough of Fig. 7.
  StackSampler sampler(heap, ExtractionMode::kLazy, 1);
  JavaStack s;
  // State 1: frames A, B, C (bottom to top) — all raw.
  s.push(1, 2);  // A
  s.frame(0).set_ref(0, objs[10]);
  s.push(2, 2);  // B
  s.frame(1).set_ref(0, objs[11]);
  s.push(3, 2);  // C
  StackSampleWork w = sampler.sample(s);
  EXPECT_EQ(w.raw_captures, 3u);
  // State 2: C gone, D on top; B is the first visited frame -> extracted
  // and compared; A untouched (still raw).
  s.pop();       // C
  s.push(4, 2);  // D
  w = sampler.sample(s);
  EXPECT_EQ(w.extractions, 1u);   // B only
  EXPECT_EQ(w.comparisons, 1u);
  EXPECT_EQ(w.raw_captures, 1u);  // D
  // State 3: B and D gone, E and F on top; now A is first visited ->
  // its raw sample is processed and compared.
  s.pop();       // D
  s.pop();       // B
  s.push(5, 2);  // E
  s.push(6, 2);  // F
  w = sampler.sample(s);
  EXPECT_EQ(w.extractions, 1u);  // A
  EXPECT_EQ(w.comparisons, 1u);
  EXPECT_EQ(w.raw_captures, 2u);  // E, F
  // State 4: E and F gone, G pushed; A compared again.
  s.pop();
  s.pop();
  s.push(7, 2);  // G
  w = sampler.sample(s);
  EXPECT_EQ(w.comparisons, 1u);  // A again
  EXPECT_EQ(w.extractions, 0u);  // A already extracted
  // State 5: G survives; G is now the first visited frame -> processed;
  // A left untouched.
  w = sampler.sample(s);
  EXPECT_EQ(w.extractions, 1u);   // G's raw sample processed
  EXPECT_EQ(w.comparisons, 1u);   // G compared, A untouched
  EXPECT_EQ(w.raw_captures, 0u);
  // A's invariant ref survived throughout.
  const auto inv = sampler.invariant_refs(s);
  EXPECT_NE(std::find(inv.begin(), inv.end(), objs[10]), inv.end());
}

TEST_F(StackProfTest, ManagerGrowsPerThread) {
  StackSamplerManager mgr(heap, ExtractionMode::kLazy, 2);
  JavaStack s0, s1;
  s0.push(1, 1);
  s1.push(1, 1);
  mgr.sample(0, s0);
  mgr.sample(5, s1);
  EXPECT_GE(mgr.thread_count(), 6u);
  EXPECT_EQ(mgr.stats(0).samples, 1u);
  EXPECT_EQ(mgr.stats(5).samples, 1u);
}

}  // namespace
}  // namespace djvm
