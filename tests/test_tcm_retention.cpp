// TcmAccumulator long-haul retention: drop/decay correctness against the
// reference pipeline, idempotent compaction, merge-after-compact, and the
// free-list keeping pool growth bounded under object churn.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.hpp"
#include "profiling/distributed_tcm.hpp"
#include "profiling/tcm.hpp"

namespace djvm {
namespace {

constexpr std::uint32_t kThreads = 8;

IntervalRecord rec(ThreadId t, IntervalId i, std::vector<OalEntry> entries) {
  IntervalRecord r;
  r.thread = t;
  r.interval = i;
  r.node = static_cast<NodeId>(t % 2);
  r.entries = std::move(entries);
  return r;
}

/// Random records over object ids in [base, base + span).
std::vector<IntervalRecord> stream_over(std::uint64_t seed, ObjectId base,
                                        std::uint64_t span, int records,
                                        int entries_per_record) {
  SplitMix64 rng(seed);
  std::vector<IntervalRecord> out;
  for (int i = 0; i < records; ++i) {
    const auto t = static_cast<ThreadId>(rng.next_below(kThreads));
    IntervalRecord r = rec(t, static_cast<IntervalId>(i), {});
    for (int e = 0; e < entries_per_record; ++e) {
      OalEntry entry;
      entry.obj = base + rng.next_below(span);
      entry.klass = 0;
      entry.bytes = static_cast<std::uint32_t>(8 + rng.next_below(256));
      entry.gap = static_cast<std::uint32_t>(1 + rng.next_below(16));
      r.entries.push_back(entry);
    }
    out.push_back(std::move(r));
  }
  return out;
}

void expect_maps_near(const SquareMatrix& a, const SquareMatrix& b,
                      const char* what, double tol = 1e-9) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    for (std::size_t j = 0; j < a.size(); ++j) {
      EXPECT_NEAR(a.at(i, j), b.at(i, j), tol)
          << what << " cell (" << i << "," << j << ")";
    }
  }
}

TEST(TcmRetention, DropStaleMatchesReferenceOverLiveRecords) {
  // Stale objects [0, 64) folded only at epoch 0; live objects [1000, 1064)
  // re-folded every epoch.  After the stale set ages out, the accumulator
  // must equal a from-scratch reference build over the live records alone.
  const auto stale = stream_over(/*seed=*/1, /*base=*/0, /*span=*/64,
                                 /*records=*/40, /*entries=*/12);
  const auto live = stream_over(/*seed=*/2, /*base=*/1000, /*span=*/64,
                                /*records=*/40, /*entries=*/12);

  TcmAccumulator acc(kThreads);
  acc.add(stale);
  acc.add(live);
  for (int epoch = 0; epoch < 4; ++epoch) {
    acc.advance_epoch();
    acc.add(live);  // identical records: max-combining leaves values as-is
  }
  const TcmCompactStats stats = acc.compact(/*idle_epochs=*/3, /*decay=*/0.0);
  EXPECT_GT(stats.dropped_objects, 0u);
  EXPECT_EQ(stats.decayed_objects, 0u);
  EXPECT_GT(stats.freed_readers, 0u);

  expect_maps_near(acc.dense(),
                   TcmBuilder::build_reference(live, kThreads),
                   "post-drop map vs live-records reference");
  // Every stale object evicted, every live object kept.
  std::size_t live_objects = 0;
  {
    TcmAccumulator probe(kThreads);
    probe.add(live);
    live_objects = probe.objects_tracked();
  }
  EXPECT_EQ(acc.objects_tracked(), live_objects);
}

TEST(TcmRetention, CompactIsIdempotentWithinAnEpoch) {
  const auto records = stream_over(3, 0, 128, 60, 10);
  for (const double decay : {0.0, 0.5}) {
    TcmAccumulator acc(kThreads);
    acc.add(records);
    for (int i = 0; i < 5; ++i) acc.advance_epoch();
    const TcmCompactStats first = acc.compact(2, decay);
    EXPECT_GT(first.dropped_objects + first.decayed_objects, 0u);
    const SquareMatrix after_first = acc.dense();
    const TcmCompactStats second = acc.compact(2, decay);
    EXPECT_EQ(second.dropped_objects, 0u) << "decay=" << decay;
    EXPECT_EQ(second.decayed_objects, 0u) << "decay=" << decay;
    EXPECT_EQ(second.freed_readers, 0u) << "decay=" << decay;
    expect_maps_near(acc.dense(), after_first, "second compact is a no-op");
  }
}

TEST(TcmRetention, DecayScalesStalePairMassExactly) {
  // One stale object (threads 0/1, 100 bytes each) and one live object
  // (threads 2/3, 80 bytes each), unweighted so the expected cells are
  // plain minima.
  TcmAccumulator acc(kThreads, /*weighted=*/false);
  const std::vector<std::pair<ThreadId, double>> stale_readers = {{0, 100.0},
                                                                  {1, 100.0}};
  const std::vector<std::pair<ThreadId, double>> live_readers = {{2, 80.0},
                                                                 {3, 80.0}};
  acc.add_readers(7, stale_readers, 0);
  acc.add_readers(8, live_readers, 0);
  for (int i = 0; i < 3; ++i) {
    acc.advance_epoch();
    acc.add_readers(8, live_readers, 0);
  }

  TcmCompactStats stats = acc.compact(/*idle_epochs=*/2, /*decay=*/0.5);
  EXPECT_EQ(stats.decayed_objects, 1u);
  EXPECT_EQ(stats.dropped_objects, 0u);
  SquareMatrix m = acc.dense();
  EXPECT_NEAR(m.at(0, 1), 50.0, 1e-9);  // stale pair halved
  EXPECT_NEAR(m.at(2, 3), 80.0, 1e-9);  // live pair untouched

  // Repeated epochs of decay shrink the stale mass geometrically until the
  // dust threshold (decayed max byte value < 1) drops the object outright.
  std::size_t tracked_before = acc.objects_tracked();
  for (int round = 0; round < 16 && acc.objects_tracked() == tracked_before;
       ++round) {
    acc.advance_epoch();
    acc.add_readers(8, live_readers, 0);
    acc.compact(2, 0.5);
  }
  EXPECT_EQ(acc.objects_tracked(), tracked_before - 1);
  m = acc.dense();
  EXPECT_NEAR(m.at(0, 1), 0.0, 1e-9);
  EXPECT_NEAR(m.at(2, 3), 80.0, 1e-9);
}

TEST(TcmRetention, MergeAfterCompactMatchesReference) {
  const auto stale = stream_over(4, 0, 64, 30, 10);
  const auto live = stream_over(5, 500, 64, 30, 10);
  const auto incoming = stream_over(6, 800, 64, 30, 10);

  TcmAccumulator acc(kThreads);
  acc.add(stale);
  acc.add(live);
  for (int i = 0; i < 4; ++i) {
    acc.advance_epoch();
    acc.add(live);
  }
  ASSERT_GT(acc.compact(3, 0.0).dropped_objects, 0u);

  // Merging a fresh partial into a compacted accumulator must behave as if
  // the dropped objects never existed.
  TcmAccumulator partial(kThreads);
  partial.add(incoming);
  acc.merge(partial);

  std::vector<IntervalRecord> surviving = live;
  surviving.insert(surviving.end(), incoming.begin(), incoming.end());
  expect_maps_near(acc.dense(),
                   TcmBuilder::build_reference(surviving, kThreads),
                   "merge-after-compact vs reference");
  // And the distributed reducer over the same surviving records agrees —
  // compaction composes with the reduction monoid.
  expect_maps_near(acc.dense(),
                   DistributedTcmReducer::build(surviving, kThreads,
                                                /*weighted=*/true),
                   "merge-after-compact vs distributed reducer");
}

TEST(TcmRetention, FreeListBoundsPoolUnderChurn) {
  // A sliding object population: each epoch folds a fresh window of objects
  // and compaction retires windows older than the idle bound.  The pool and
  // slot arrays must plateau instead of growing with total objects ever seen.
  constexpr std::uint64_t kWindow = 256;
  constexpr int kEpochs = 40;
  TcmAccumulator acc(kThreads);
  std::size_t mem_mid = 0;
  for (int epoch = 0; epoch < kEpochs; ++epoch) {
    const auto batch =
        stream_over(100 + epoch, static_cast<ObjectId>(epoch) * kWindow,
                    kWindow, 20, 8);
    acc.add(batch);
    acc.advance_epoch();
    acc.compact(/*idle_epochs=*/3, /*decay=*/0.0);
    if (epoch == kEpochs / 2) mem_mid = acc.memory_bytes();
  }
  // Live state covers at most idle_epochs + 1 windows at any point.
  EXPECT_LE(acc.objects_tracked(), (3 + 1) * kWindow);
  // Capacities reached steady state by mid-run: no further growth after.
  EXPECT_GT(mem_mid, 0u);
  EXPECT_LE(acc.memory_bytes(), mem_mid);
}

}  // namespace
}  // namespace djvm
