// Async double-buffered snapshot writer: content parity with the blocking
// path, latest-wins coalescing, flush semantics, and the Djvm per-epoch
// snapshot hook.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/djvm.hpp"
#include "governor/snapshot.hpp"

namespace djvm {
namespace {

std::vector<std::uint8_t> slurp(const std::string& path) {
  std::ifstream f(path, std::ios::binary);
  return {std::istreambuf_iterator<char>(f), std::istreambuf_iterator<char>()};
}

class SnapshotWriterTest : public ::testing::Test {
 protected:
  SnapshotWriterTest() : heap(reg, 2), plan(heap) {
    klass = reg.register_class("X", 64);
    plan.set_nominal_gap(klass, 16);
  }

  KlassRegistry reg;
  Heap heap;
  SamplingPlan plan;
  ClassId klass = kInvalidClass;
};

TEST_F(SnapshotWriterTest, AsyncWriteMatchesBlockingWrite) {
  Governor gov(plan);
  gov.arm(GovernorConfig{});
  SquareMatrix tcm(3);
  tcm.at(0, 1) = 42.0;
  tcm.at(1, 0) = 42.0;

  const std::string sync_path = ::testing::TempDir() + "writer_sync.bin";
  const std::string async_path = ::testing::TempDir() + "writer_async.bin";
  ASSERT_TRUE(save_snapshot(sync_path, gov, tcm));
  {
    SnapshotWriter writer;
    writer.save_async(async_path, gov, tcm);
    writer.flush();
    EXPECT_EQ(writer.submitted(), 1u);
    EXPECT_EQ(writer.completed(), 1u);
    EXPECT_EQ(writer.coalesced(), 0u);
    EXPECT_TRUE(writer.all_ok());
  }
  EXPECT_EQ(slurp(async_path), slurp(sync_path));

  // And the async file round-trips through the normal loader.
  Governor gov2(plan);
  SquareMatrix tcm2;
  ASSERT_TRUE(load_snapshot(async_path, gov2, tcm2));
  EXPECT_EQ(tcm2, tcm);
  std::remove(sync_path.c_str());
  std::remove(async_path.c_str());
}

TEST_F(SnapshotWriterTest, CoalescesToLatestUnderBackPressure) {
  Governor gov(plan);
  gov.arm(GovernorConfig{});
  const std::string path = ::testing::TempDir() + "writer_coalesce.bin";

  SquareMatrix last;
  SnapshotWriter writer;
  const int kSubmits = 200;
  for (int i = 0; i < kSubmits; ++i) {
    SquareMatrix tcm(2);
    tcm.at(0, 1) = static_cast<double>(i);
    tcm.at(1, 0) = static_cast<double>(i);
    writer.save_async(path, gov, tcm);
    last = tcm;
  }
  writer.flush();
  EXPECT_EQ(writer.submitted(), static_cast<std::uint64_t>(kSubmits));
  EXPECT_EQ(writer.completed() + writer.coalesced(),
            static_cast<std::uint64_t>(kSubmits));
  EXPECT_GE(writer.completed(), 1u);
  EXPECT_TRUE(writer.all_ok());

  // Whatever was coalesced away, the file on disk is the *latest* snapshot.
  Governor gov2(plan);
  SquareMatrix tcm2;
  ASSERT_TRUE(load_snapshot(path, gov2, tcm2));
  EXPECT_EQ(tcm2, last);
  std::remove(path.c_str());
}

TEST_F(SnapshotWriterTest, DestructorDrainsPendingWrite) {
  Governor gov(plan);
  SquareMatrix tcm(2);
  tcm.at(0, 1) = 7.0;
  tcm.at(1, 0) = 7.0;
  const std::string path = ::testing::TempDir() + "writer_drain.bin";
  {
    SnapshotWriter writer;
    writer.save_async(path, gov, tcm);
    // No flush: destruction must still complete the queued write.
  }
  Governor gov2(plan);
  SquareMatrix tcm2;
  ASSERT_TRUE(load_snapshot(path, gov2, tcm2));
  EXPECT_EQ(tcm2, tcm);
  std::remove(path.c_str());
}

TEST_F(SnapshotWriterTest, ReportsFailedWrites) {
  Governor gov(plan);
  SquareMatrix tcm(2);
  SnapshotWriter writer;
  writer.save_async("/nonexistent-dir/snapshot.bin", gov, tcm);
  writer.flush();
  EXPECT_FALSE(writer.all_ok());
  EXPECT_EQ(writer.completed(), 1u);
}

TEST_F(SnapshotWriterTest, AppendChannelPreservesEveryLineInOrder) {
  const std::string path = ::testing::TempDir() + "writer_append.jsonl";
  std::remove(path.c_str());
  const int kLines = 500;
  {
    SnapshotWriter writer;
    for (int i = 0; i < kLines; ++i) {
      writer.append_async(path, "line " + std::to_string(i) + "\n");
    }
    writer.flush();
    EXPECT_EQ(writer.appended(), static_cast<std::uint64_t>(kLines));
    // Lines batch into fewer append-mode writes but are never dropped.
    EXPECT_GE(writer.append_writes(), 1u);
    EXPECT_LE(writer.append_writes(), static_cast<std::uint64_t>(kLines));
    EXPECT_TRUE(writer.all_ok());
  }
  std::ifstream f(path);
  std::string line;
  int n = 0;
  while (std::getline(f, line)) {
    EXPECT_EQ(line, "line " + std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, kLines);
  std::remove(path.c_str());
}

TEST_F(SnapshotWriterTest, AppendsInterleaveWithSnapshotsSafely) {
  Governor gov(plan);
  gov.arm(GovernorConfig{});
  const std::string snap = ::testing::TempDir() + "writer_mixed.bin";
  const std::string log = ::testing::TempDir() + "writer_mixed.jsonl";
  std::remove(log.c_str());

  SquareMatrix last;
  SnapshotWriter writer;
  const int kRounds = 100;
  for (int i = 0; i < kRounds; ++i) {
    SquareMatrix tcm(2);
    tcm.at(0, 1) = static_cast<double>(i);
    tcm.at(1, 0) = static_cast<double>(i);
    writer.save_async(snap, gov, tcm);
    writer.append_async(log, std::to_string(i) + "\n");
    last = tcm;
  }
  writer.flush();
  EXPECT_EQ(writer.appended(), static_cast<std::uint64_t>(kRounds));
  EXPECT_TRUE(writer.all_ok());

  // Snapshots coalesce to the latest; the log keeps every line.
  Governor gov2(plan);
  SquareMatrix tcm2;
  ASSERT_TRUE(load_snapshot(snap, gov2, tcm2));
  EXPECT_EQ(tcm2, last);
  std::ifstream f(log);
  std::string line;
  int n = 0;
  while (std::getline(f, line)) {
    EXPECT_EQ(line, std::to_string(n));
    ++n;
  }
  EXPECT_EQ(n, kRounds);
  std::remove(snap.c_str());
  std::remove(log.c_str());
}

TEST_F(SnapshotWriterTest, DestructorDrainsPendingAppends) {
  const std::string path = ::testing::TempDir() + "writer_append_drain.jsonl";
  std::remove(path.c_str());
  {
    SnapshotWriter writer;
    writer.append_async(path, "only line\n");
    // No flush: destruction must still write the buffered line.
  }
  std::ifstream f(path);
  std::string line;
  ASSERT_TRUE(static_cast<bool>(std::getline(f, line)));
  EXPECT_EQ(line, "only line");
  std::remove(path.c_str());
}

TEST(DjvmSnapshotHook, GovernedEpochsSnapshotEveryEpoch) {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 2;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  cfg.governor.enabled = true;
  cfg.export_.snapshot_path = ::testing::TempDir() + "djvm_epoch_snapshot.bin";

  Djvm djvm(cfg);
  ASSERT_NE(djvm.snapshot_writer(), nullptr);
  djvm.spawn_threads_round_robin(cfg.threads);
  const ClassId k = djvm.registry().register_class("X", 64);
  std::vector<ObjectId> objs;
  for (int i = 0; i < 32; ++i) objs.push_back(djvm.gos().alloc(k, 0));

  const int kEpochs = 3;
  for (int e = 0; e < kEpochs; ++e) {
    for (ThreadId t = 0; t < cfg.threads; ++t) {
      for (ObjectId o : objs) djvm.read(t, o);
    }
    djvm.barrier_all();
    djvm.run_governed_epoch();
  }
  djvm.snapshot_writer()->flush();
  EXPECT_EQ(djvm.snapshot_writer()->submitted(),
            static_cast<std::uint64_t>(kEpochs));
  EXPECT_TRUE(djvm.snapshot_writer()->all_ok());

  // The snapshot restores into a fresh same-shaped world.
  Djvm djvm2(cfg);
  djvm2.registry().register_class("X", 64);
  SquareMatrix tcm;
  ASSERT_TRUE(load_snapshot(cfg.export_.snapshot_path, djvm2.governor(), tcm));
  EXPECT_EQ(tcm.size(), djvm.daemon().latest().size());
  std::remove(cfg.export_.snapshot_path.c_str());
}

TEST(DjvmSnapshotHook, NoWriterWithoutPath) {
  Config cfg;
  cfg.nodes = 1;
  cfg.threads = 1;
  Djvm djvm(cfg);
  EXPECT_EQ(djvm.snapshot_writer(), nullptr);
}

}  // namespace
}  // namespace djvm
