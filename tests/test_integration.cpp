// End-to-end pipelines: sampled TCM accuracy vs full-sampling ground truth,
// adaptive convergence on a live workload, stack-invariant mining inside a
// running application, sticky-set prefetch cutting post-migration faults,
// and the page-grain baseline's induced distortion.
#include <gtest/gtest.h>

#include "apps/barnes_hut.hpp"
#include "apps/sor.hpp"
#include "apps/synthetic.hpp"
#include "baseline/page_dsm.hpp"
#include "profiling/accuracy.hpp"

namespace djvm {
namespace {

SquareMatrix run_bh_tcm(std::uint32_t rate_x, std::uint32_t threads = 8) {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = threads;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  cfg.sampling_rate_x = rate_x;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  BarnesHutParams p;
  p.bodies = 512;
  p.rounds = 2;
  BarnesHutWorkload w(p);
  execute_workload(djvm, w);
  djvm.pump_daemon();
  return djvm.daemon().build_full();
}

TEST(Integration, SampledTcmApproximatesFullSampling) {
  const SquareMatrix full = run_bh_tcm(0);
  ASSERT_GT(full.total(), 0.0);
  // Moderate sampling (16X on fine-grained objects) must stay close in the
  // ABS metric — the paper reports >= 95% at most rates; small heaps are
  // noisier, so require 80% here.
  const SquareMatrix sampled = run_bh_tcm(16);
  const double acc = accuracy_from_error(absolute_error(sampled, full));
  EXPECT_GT(acc, 0.80) << "accuracy=" << acc;
}

TEST(Integration, AccuracyImprovesWithRate) {
  const SquareMatrix full = run_bh_tcm(0);
  const double acc_coarse =
      accuracy_from_error(absolute_error(run_bh_tcm(1), full));
  const double acc_fine =
      accuracy_from_error(absolute_error(run_bh_tcm(32), full));
  EXPECT_GE(acc_fine, acc_coarse - 0.05);  // monotone modulo small noise
}

TEST(Integration, SorEffectivelyFullSamplingAtAnyRate) {
  // SOR's rows are larger than a page, so every array is sampled at any
  // rate (the paper's explanation of its N/A cells and perfect footprints).
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 4;
  cfg.sampling_rate_x = 1;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  SorWorkload w(SorParams{.rows = 32, .cols = 1024, .rounds = 1});
  w.build(djvm);
  djvm.plan().set_rate_all(1);
  std::size_t sampled = 0, rows = 0;
  for (std::uint32_t r = 0; r < 34; ++r) {
    ++rows;
    sampled += djvm.plan().is_sampled(w.row_object(r));
  }
  EXPECT_EQ(sampled, rows);
}

TEST(Integration, AdaptiveDaemonConvergesOnStableWorkload) {
  Config cfg;
  cfg.nodes = 4;
  cfg.threads = 4;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  cfg.sampling_rate_x = 1;  // start coarse
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  djvm.daemon().governor().arm(djvm::GovernorConfig::legacy(0.10));

  SyntheticParams p;
  p.pattern = SharingPattern::kPairShared;
  p.objects = 2048;
  p.rounds = 8;
  p.accesses_per_round = 2048;
  SyntheticWorkload w(p);
  w.build(djvm);
  w.run(djvm);
  djvm.pump_daemon();
  djvm.daemon().run_epoch();
  // Re-run the same stable pattern; the next epoch's map must match and the
  // controller either converges or tightens toward convergence.
  w.run(djvm);
  djvm.pump_daemon();
  const EpochResult e = djvm.daemon().run_epoch();
  EXPECT_TRUE(djvm.daemon().converged() || e.rate_changed);
}

TEST(Integration, StackInvariantsFoundInRunningSor) {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 2;
  cfg.stack_sampling = true;
  cfg.stack_sampling_gap = sim_ms(4);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  SorWorkload w(SorParams{.rows = 64, .cols = 512, .rounds = 4});
  execute_workload(djvm, w);
  EXPECT_GT(djvm.gos().stats().stack_samples, 0u);
  EXPECT_GT(djvm.stack_samplers().stats(0).comparisons, 0u);
}

TEST(Integration, FootprintingFindsStickyRowsInSor) {
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 2;
  cfg.footprinting = true;
  cfg.footprint_timer = FootprintTimerMode::kNonstop;
  cfg.footprint_rearm = sim_ms(1);
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  SorWorkload w(SorParams{.rows = 64, .cols = 2048, .rounds = 4});
  execute_workload(djvm, w);
  // Interior rows are read as neighbours of two updated rows per phase, so
  // sticky candidates must appear.
  EXPECT_GT(djvm.gos().stats().footprint_touches, 0u);
  const ClassFootprint fp0 = djvm.footprints().footprint(0);
  EXPECT_GT(fp0.total(), 0.0);
}

TEST(Integration, MigrationWithResolutionCutsFaults) {
  auto run = [](bool prefetch) -> std::uint64_t {
    Config cfg;
    cfg.nodes = 2;
    cfg.threads = 2;
    cfg.footprinting = true;
    cfg.footprint_timer = FootprintTimerMode::kNonstop;
    cfg.footprint_rearm = sim_ms(1);
    cfg.stack_sampling = true;
    cfg.stack_sampling_gap = sim_ms(2);
    Djvm djvm(cfg);
    djvm.spawn_threads_round_robin(cfg.threads);
    SorWorkload w(SorParams{.rows = 64, .cols = 2048, .rounds = 2});
    execute_workload(djvm, w);

    // Migrate thread 0 to node 1 and replay its block once.
    const std::uint64_t faults_before = djvm.gos().stats().object_faults;
    const ClassFootprint fp = djvm.footprints().footprint(0);
    JavaStack& stack = djvm.stack(0);
    stack.push(1, 2);
    stack.top().set_ref(0, w.row_object(1));
    if (prefetch) {
      // Roots: the first rows of the thread's block (standing in for the
      // mined invariants, which the popped workload frames no longer hold).
      std::vector<ObjectId> roots{w.row_object(1)};
      djvm.migration().migrate_with_resolution(0, 1, stack, roots, fp, 4.0);
    } else {
      djvm.migration().migrate(0, 1, stack);
    }
    for (std::uint32_t r = 1; r <= 32; ++r) {
      djvm.gos().read(0, w.row_object(r));
    }
    stack.pop();
    return djvm.gos().stats().object_faults - faults_before;
  };
  const std::uint64_t without = run(false);
  const std::uint64_t with = run(true);
  EXPECT_GT(without, 0u);
  EXPECT_LT(with, without);
}

TEST(Integration, PageBaselineInflatesBarnesHutCorrelation) {
  // Fig. 1: the induced (page-grain) map shows correlation mass where the
  // inherent (object-grain) map has none, because small bodies share pages.
  Config cfg;
  cfg.nodes = 2;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kLocalOnly;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  PageCorrelationTracker pages(djvm.heap(), cfg.threads);
  djvm.add_access_observer(
      [&](ThreadId t, ObjectId o, bool) { pages.on_access(t, o); });
  djvm.add_interval_observer([&](ThreadId t) { pages.on_interval_close(t); });

  BarnesHutParams p;
  p.bodies = 512;
  p.rounds = 2;
  BarnesHutWorkload w(p);
  execute_workload(djvm, w);
  djvm.pump_daemon();
  const SquareMatrix inherent = djvm.daemon().build_full();
  const SquareMatrix induced = pages.build_tcm();

  // Contrast = mean same-galaxy cell / mean cross-galaxy cell; the inherent
  // map must separate the galaxies far better than the induced one.
  auto contrast = [&](const SquareMatrix& m) {
    double same = 0.0, cross = 0.0;
    int sn = 0, cn = 0;
    for (std::size_t i = 0; i < 8; ++i) {
      for (std::size_t j = i + 1; j < 8; ++j) {
        if ((i < 4) == (j < 4)) {
          same += m.at(i, j);
          ++sn;
        } else {
          cross += m.at(i, j);
          ++cn;
        }
      }
    }
    return (same / sn) / std::max(1.0, cross / cn);
  };
  EXPECT_GT(contrast(inherent), contrast(induced));
}

TEST(Integration, OalTrafficSmallShareOfGosTraffic) {
  // Table III: OAL volume is a few percent of GOS data volume below 16X.
  Config cfg;
  cfg.nodes = 8;
  cfg.threads = 8;
  cfg.oal_transfer = OalTransfer::kSend;
  cfg.sampling_rate_x = 4;
  Djvm djvm(cfg);
  djvm.spawn_threads_round_robin(cfg.threads);
  BarnesHutParams p;
  p.bodies = 512;
  p.rounds = 2;
  BarnesHutWorkload w(p);
  const RunMetrics m = execute_workload(djvm, w);
  const double oal = static_cast<double>(m.traffic.bytes_of(MsgCategory::kOal));
  const double gos = static_cast<double>(m.traffic.bytes_of(MsgCategory::kObjectData) +
                                         m.traffic.bytes_of(MsgCategory::kControl));
  ASSERT_GT(gos, 0.0);
  EXPECT_LT(oal / gos, 0.25);
  EXPECT_GT(oal, 0.0);
}

}  // namespace
}  // namespace djvm
